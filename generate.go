package tesc

import (
	"math/rand/v2"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

// The generators below expose the repository's synthetic graph models
// through the public API so example programs and downstream users can
// produce realistic test beds without real datasets. Each mirrors one of
// the paper's three evaluation graphs; see DESIGN.md §3 for the
// correspondence argument.

// RandomCommunityGraph generates a planted-partition graph: communities
// blocks of size nodes each, with expected intra-community degree
// degreeIn and inter-community degree degreeOut per node. With
// degreeIn+degreeOut ≈ 7.4 it matches the paper's DBLP co-author graph
// profile.
func RandomCommunityGraph(communities, size int, degreeIn, degreeOut float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0xdb19))
	g := graphgen.PlantedPartition(graphgen.PlantedPartitionConfig{
		Communities: communities,
		Size:        size,
		DegreeIn:    degreeIn,
		DegreeOut:   degreeOut,
	}, rng)
	return &Graph{g: g}
}

// RandomPowerLawGraph generates an R-MAT graph with 2^scaleExp nodes and
// about edgeFactor·2^scaleExp edges, with Graph500 skew — the paper's
// Twitter-style scalability substrate.
func RandomPowerLawGraph(scaleExp, edgeFactor int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0x7317))
	cfg := graphgen.DefaultTwitterSurrogate(scaleExp)
	cfg.EdgeFactor = edgeFactor
	return &Graph{g: graphgen.RMAT(cfg, rng)}
}

// RandomHubGraph generates a graph with hubs very-high-degree nodes
// (each wired to hubDegree random others) over a sparse random
// background — the paper's Intrusion-network profile: tiny diameter,
// 2-vicinities covering much of the graph.
func RandomHubGraph(n, hubs, hubDegree int, backgroundDegree float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0x1d05))
	return &Graph{g: graphgen.HubGraph(n, hubs, hubDegree, backgroundDegree, rng)}
}

// RandomCoauthorshipGraph generates a clique-based co-authorship graph
// ("papers" are author cliques inside communities), the closest stand-in
// for the paper's DBLP dataset: community structure, average degree
// ≈7.4 and the high clustering coefficient that makes 1-hop density
// correlations measurable. scale = 1.0 yields ≈100k nodes.
func RandomCoauthorshipGraph(scale float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0xc0a0))
	return &Graph{g: graphgen.Coauthorship(graphgen.DefaultCoauthorship(scale), rng)}
}

// IntrusionLayout describes the subnet structure of a graph produced by
// RandomIntrusionGraph, so callers can plant alerts subnet by subnet.
type IntrusionLayout struct {
	cfg graphgen.IntrusionConfig
}

// NumSubnets returns the number of host subnets.
func (l IntrusionLayout) NumSubnets() int { return l.cfg.NumSubnets() }

// SubnetMembers returns the host node IDs of subnet s.
func (l IntrusionLayout) SubnetMembers(s int) []int {
	ms := l.cfg.SubnetMembers(s)
	out := make([]int, len(ms))
	for i, v := range ms {
		out[i] = int(v)
	}
	return out
}

// Hubs returns the number of router hubs (node IDs 0..Hubs-1).
func (l IntrusionLayout) Hubs() int { return l.cfg.Hubs }

// RandomIntrusionGraph generates the Intrusion-network surrogate: host
// subnets modeled as cliques, each wired to one of a few router hubs
// whose degree is ≈ n/4 — the structure behind the paper's intrusion
// alert case studies (tiny diameter, 2-vicinities covering much of the
// graph).
func RandomIntrusionGraph(n int, seed uint64) (*Graph, IntrusionLayout) {
	rng := rand.New(rand.NewPCG(seed, 0x1d05))
	cfg := graphgen.DefaultIntrusion(n)
	return &Graph{g: graphgen.Intrusion(cfg, rng)}, IntrusionLayout{cfg: cfg}
}

// RandomSmallWorldGraph generates a Watts–Strogatz ring lattice with k
// neighbors per side rewired with probability beta.
func RandomSmallWorldGraph(n, k int, beta float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0x5311))
	return &Graph{g: graphgen.WattsStrogatz(n, k, beta, rng)}
}

// CommunityOf returns the community index of node v for graphs produced
// by RandomCommunityGraph with the given block size.
func CommunityOf(v, size int) int { return v / size }

// GraphStats summarizes a graph's structure.
type GraphStats struct {
	Nodes      int
	Edges      int64
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	Components int
}

// Stats scans the graph and returns summary statistics.
func (g *Graph) Stats() GraphStats {
	s := graph.ComputeStats(g.g)
	return GraphStats{
		Nodes:      s.Nodes,
		Edges:      s.Edges,
		MinDegree:  s.MinDegree,
		MaxDegree:  s.MaxDegree,
		AvgDegree:  s.AvgDegree,
		Components: s.Components,
	}
}
