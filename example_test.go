package tesc_test

import (
	"fmt"

	"tesc"
)

// The simplest possible use: build a graph, test two events.
func ExampleCorrelation() {
	// two triangles joined by a bridge
	g, err := tesc.BuildGraph(7, [][2]int{
		{0, 1}, {0, 2}, {1, 2},
		{2, 3}, {3, 4},
		{4, 5}, {4, 6}, {5, 6},
	})
	if err != nil {
		panic(err)
	}

	// event A on the left triangle, event B on the right one
	res, err := tesc.Correlation(g, []int{0, 1, 2}, []int{4, 5, 6}, tesc.Options{
		H:          1,
		SampleSize: 7, // tiny graph: use every reference node
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("verdict: %s (tau %+.2f)\n", res.Verdict, res.Tau)
	// Output: verdict: negative (tau -0.71)
}

// Transaction correlation ignores the graph: identical occurrence sets
// give perfect association.
func ExampleTransactionCorrelation() {
	g, _ := tesc.BuildGraph(6, [][2]int{{0, 1}, {2, 3}, {4, 5}})
	tc, err := tesc.TransactionCorrelation(g, []int{0, 2}, []int{0, 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tau_b = %.0f\n", tc.TauB)
	// Output: tau_b = 1
}

// Importance sampling (§4.2, Algorithm 2) needs the |V^h_v| vicinity
// index. Build it once per graph — an offline step — then reuse it
// across any number of tests at levels up to maxLevel.
func ExampleGraph_BuildVicinityIndex() {
	g := tesc.RandomCommunityGraph(10, 20, 6, 1, 1)
	idx, err := g.BuildVicinityIndex(2, 0) // maxLevel 2, GOMAXPROCS workers
	if err != nil {
		panic(err)
	}
	// Two events planted in the same community attract.
	res, err := tesc.Correlation(g, []int{0, 1, 2}, []int{3, 4, 5}, tesc.Options{
		H:      2,
		Method: tesc.Importance,
		Index:  idx,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sampler: %s, verdict: %s\n", res.Sampler, res.Verdict)
	// Output: sampler: importance, verdict: positive
}
