// Package tesc measures Two-Event Structural Correlations on graphs.
//
// It is a from-scratch Go implementation of Guan, Yan & Kaplan,
// "Measuring Two-Event Structural Correlations on Graphs" (PVLDB 5(11),
// 2012): given two events occurring on the nodes of a graph — product
// purchases in a social network, alert types in a computer network — the
// TESC test decides whether the events attract or repulse each other in
// the graph's structure, with rigorous statistical significance.
//
// # Quick start
//
//	g, err := tesc.BuildGraph(numNodes, edges)
//	res, err := tesc.Correlation(g, occurrencesOfA, occurrencesOfB, tesc.Options{H: 1})
//	if res.Significant && res.Z > 0 { /* the events attract */ }
//
// The test samples reference nodes from the joint vicinity of the two
// events, measures both events' densities around every reference node,
// and aggregates pairwise concordance of the density changes with
// Kendall's τ; under the independence null hypothesis τ is asymptotically
// normal, giving z-scores and p-values without randomization.
//
// Four reference-node sampling strategies are available (Options.Method):
// Batch BFS enumerates the reference population exactly; importance
// sampling and whole-graph sampling avoid the enumeration and scale to
// graphs with tens of millions of nodes; rejection sampling is mainly of
// theoretical interest. Importance and rejection sampling need a
// precomputed vicinity-size index (Graph.BuildVicinityIndex).
package tesc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"tesc/internal/baseline"
	"tesc/internal/core"
	"tesc/internal/graph"
	"tesc/internal/graphio"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

// Graph is an immutable undirected graph. Node IDs are dense integers
// 0..NumNodes-1.
type Graph struct {
	g *graph.Graph
}

// BuildGraph constructs a graph with n nodes from an undirected edge
// list. Duplicate edges and self-loops are dropped.
func BuildGraph(n int, edges [][2]int) (*Graph, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("tesc: edge (%d,%d) outside node range [0,%d)", e[0], e[1], n)
		}
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadGraph parses a whitespace-separated edge list ("u v" per line, '#'
// comments, optional "# nodes N" header).
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graphio.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadGraphMax is ReadGraph with a cap on the node universe: IDs or a
// "# nodes N" header at or above maxNodes fail instead of allocating.
// Use it on untrusted input, where a single hostile line ("0 2000000000")
// would otherwise demand gigabytes.
func ReadGraphMax(r io.Reader, maxNodes int) (*Graph, error) {
	g, err := graphio.ReadEdgeListMax(r, maxNodes)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// WriteGraph writes the graph in the ReadGraph edge-list format.
func (g *Graph) WriteGraph(w io.Writer) error { return graphio.WriteEdgeList(w, g.g) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.g.NumEdges() }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return g.g.Degree(graph.NodeID(v)) }

// Neighbors returns the sorted neighbor IDs of node v.
func (g *Graph) Neighbors(v int) []int {
	ns := g.g.Neighbors(graph.NodeID(v))
	out := make([]int, len(ns))
	for i, u := range ns {
		out[i] = int(u)
	}
	return out
}

// Internal exposes the internal representation for the repository's own
// benchmark and experiment drivers. Not part of the stable API.
func (g *Graph) Internal() *graph.Graph { return g.g }

// FromInternal wraps an internal graph (e.g. one deserialized by the
// snapshot subsystem) in the public type. Not part of the stable API.
func FromInternal(g *graph.Graph) *Graph { return &Graph{g: g} }

// EdgeChange is one edge mutation: the insertion (Insert == true) or
// deletion of the undirected edge {U, V}.
type EdgeChange struct {
	U, V   int
	Insert bool
}

// ApplyEdgeChanges returns a fresh graph snapshot with the changes
// applied, leaving g untouched (graphs are immutable; a dynamic graph
// is a succession of snapshots). No-op changes — inserting a present
// edge, deleting an absent one — are skipped; the second return value
// lists the changes that actually took effect, in order, which is
// exactly what VicinityIndex.ApplyDelta must be fed to repair an index
// across the transition. Self-loops and out-of-range endpoints fail
// without applying anything.
func (g *Graph) ApplyEdgeChanges(changes []EdgeChange) (*Graph, []EdgeChange, error) {
	n := g.NumNodes()
	staged := make([]graph.EdgeChange, len(changes))
	for i, c := range changes {
		if c.U < 0 || c.U >= n || c.V < 0 || c.V >= n {
			return nil, nil, fmt.Errorf("tesc: edge (%d,%d) outside node range [0,%d)", c.U, c.V, n)
		}
		if c.U == c.V {
			return nil, nil, fmt.Errorf("tesc: self-loop (%d,%d) not allowed", c.U, c.V)
		}
		staged[i] = graph.EdgeChange{U: graph.NodeID(c.U), V: graph.NodeID(c.V), Insert: c.Insert}
	}
	d := graph.NewDelta(g.g)
	effective, err := d.Apply(staged)
	if err != nil {
		return nil, nil, err
	}
	applied := make([]EdgeChange, len(effective))
	for i, c := range effective {
		applied[i] = EdgeChange{U: int(c.U), V: int(c.V), Insert: c.Insert}
	}
	return &Graph{g: d.Compact()}, applied, nil
}

// VicinityIndex holds precomputed per-node vicinity sizes |V^h_v|,
// required by the Importance and Rejection sampling methods. Build once
// per graph and reuse across tests (§4.2 of the paper: the index is an
// offline, O(|V|)-space structure).
type VicinityIndex struct {
	idx *vicinity.Index
}

// BuildVicinityIndex precomputes |V^h_v| for h = 1..maxLevel using the
// given number of worker goroutines (0 = GOMAXPROCS).
func (g *Graph) BuildVicinityIndex(maxLevel, workers int) (*VicinityIndex, error) {
	idx, err := vicinity.Build(g.g, maxLevel, vicinity.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &VicinityIndex{idx: idx}, nil
}

// Clone returns an independent copy of the index, for copy-on-write
// maintenance: clone, ApplyDelta on the clone, publish the clone, while
// readers of the original keep a consistent view.
func (x *VicinityIndex) Clone() *VicinityIndex {
	return &VicinityIndex{idx: x.idx.Clone()}
}

// Internal exposes the internal index for the repository's own snapshot
// and benchmark drivers. Not part of the stable API.
func (x *VicinityIndex) Internal() *vicinity.Index { return x.idx }

// VicinityIndexFromInternal wraps an internal index (e.g. one
// deserialized by the snapshot subsystem) in the public type. Not part
// of the stable API.
func VicinityIndexFromInternal(idx *vicinity.Index) *VicinityIndex {
	return &VicinityIndex{idx: idx}
}

// ApplyDelta repairs the index in place after the graph changed from
// the one it was built on to g by the given effective edge changes
// (the second return of Graph.ApplyEdgeChanges), rebinding it to g.
// Only nodes within maxLevel hops of a flipped endpoint — in the old or
// the new snapshot — can have a stale |V^h_v| (§4.2's locality), so
// only those entries are recomputed, via bounded multi-source BFS
// instead of a full O(|V|·BFS) rebuild. Returns the number of
// recomputed entries. workers sizes the recompute pool (0 = GOMAXPROCS).
//
// The index must afterwards only be used with g (the samplers enforce
// this). Not safe to call concurrently with queries on the same index;
// use Clone for copy-on-write.
func (x *VicinityIndex) ApplyDelta(g *Graph, changes []EdgeChange, workers int) (int, error) {
	dirty, err := x.ApplyDeltaDirty(g, changes, workers)
	return len(dirty), err
}

// ApplyDeltaDirty is ApplyDelta surfacing the repaired node IDs
// themselves instead of just their count. The repaired set is exactly
// the set of nodes whose h-vicinities (h ≤ MaxLevel) the delta can
// have perturbed, so consumers that cache any per-node vicinity
// quantity — the monitor subsystem's standing-query density caches —
// invalidate precisely this set and keep everything else.
func (x *VicinityIndex) ApplyDeltaDirty(g *Graph, changes []EdgeChange, workers int) ([]int, error) {
	staged := make([]graph.EdgeChange, len(changes))
	for i, c := range changes {
		staged[i] = graph.EdgeChange{U: graph.NodeID(c.U), V: graph.NodeID(c.V), Insert: c.Insert}
	}
	dirty, err := x.idx.ApplyDeltaDirty(g.g, staged, vicinity.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	out := make([]int, len(dirty))
	for i, v := range dirty {
		out[i] = int(v)
	}
	return out, nil
}

// MaxLevel returns the largest vicinity level the index covers.
func (x *VicinityIndex) MaxLevel() int { return x.idx.MaxLevel() }

// BuiltFor reports whether the index is bound to exactly this graph
// snapshot — the consistency invariant the index-backed samplers check
// before use.
func (x *VicinityIndex) BuiltFor(g *Graph) bool { return x.idx.Graph() == g.g }

// EnginePool is a free list of BFS traversal engines bound to one graph
// snapshot. Each engine owns O(NumNodes) scratch (an epoch-stamped mark
// array plus frontier buffers), so a serving tier that runs many
// correlation queries against the same graph should create one pool per
// graph snapshot and pass it via Options.Engines / ScreenOptions.Engines:
// queries then reuse warm scratch instead of allocating it per request.
// Safe for concurrent use. Invalidate by dropping the pool when the
// graph snapshot is replaced (tescd keys its pools by graph version).
type EnginePool struct {
	p *graph.EnginePool
}

// NewEnginePool returns an empty engine pool bound to g.
func (g *Graph) NewEnginePool() *EnginePool {
	return &EnginePool{p: graph.NewEnginePool(g.g)}
}

// Method selects a reference-node sampling strategy.
type Method int

const (
	// BatchBFS (§4.1, Algorithm 1) enumerates the full reference
	// population with one multi-source BFS, then samples uniformly.
	// Best when the population is small; cost grows with |V^h_{a∪b}|.
	BatchBFS Method = iota
	// Importance (§4.2, Algorithm 2) draws reference nodes through
	// random event-node vicinities and corrects the bias with the
	// weighted estimator t̃ (Eq. 8). Cost depends on the sample size n,
	// not the population. Requires Options.Index.
	Importance
	// WholeGraph (§4.3, Algorithm 3) tests uniformly random nodes for
	// eligibility. Efficient only when the reference population covers
	// much of the graph (large events and/or vicinity level).
	WholeGraph
	// Rejection (§4.2, procedure RejectSamp) yields exactly uniform
	// reference nodes at the cost of two BFS per draw plus rejections.
	// Included for completeness. Requires Options.Index.
	Rejection
)

// String names the method.
func (m Method) String() string {
	switch m {
	case BatchBFS:
		return "batch-bfs"
	case Importance:
		return "importance"
	case WholeGraph:
		return "whole-graph"
	case Rejection:
		return "rejection"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Tail selects the alternative hypothesis of the test.
type Tail int

const (
	// BothTails tests for any correlation (two-sided).
	BothTails Tail = iota
	// PositiveTail tests for attraction only (one-sided, the paper's
	// positive-correlation experiments).
	PositiveTail
	// NegativeTail tests for repulsion only.
	NegativeTail
)

func (t Tail) alternative() stats.Alternative {
	switch t {
	case PositiveTail:
		return stats.Greater
	case NegativeTail:
		return stats.Less
	default:
		return stats.TwoSided
	}
}

// Options configures a TESC test. Zero values select the paper's
// defaults where meaningful: SampleSize 900, Alpha 0.05, BatchBFS
// sampling, two-sided alternative. H must be set explicitly (≥ 1).
type Options struct {
	// H is the vicinity level defining V^h_v, the set of nodes within h
	// hops (§2, Definition 1); the paper studies h = 1, 2, 3 throughout
	// §5's experiments.
	H int
	// SampleSize is the number of reference nodes drawn from the joint
	// vicinity V^h_{a∪b} (default 900, the sample size §5.2.1 fixes
	// after its convergence study).
	SampleSize int
	// Method selects the reference-node sampling strategy of §4
	// (default BatchBFS, the exact-enumeration Algorithm 1).
	Method Method
	// ImportanceBatch, when Method == Importance, draws this many
	// reference nodes per event-node BFS (§5.2.2; the paper uses 3 for
	// h=2 and 6 for h=3). 0 or 1 disables batching.
	ImportanceBatch int
	// Index is the precomputed |V^h_v| index of §4.2, required by the
	// Importance and Rejection methods (see Graph.BuildVicinityIndex).
	Index *VicinityIndex
	// Tail selects the alternative hypothesis (default BothTails);
	// §5.2's recall experiments run one-tailed tests matching the
	// planted sign.
	Tail Tail
	// Alpha is the significance level of the hypothesis test
	// (default 0.05, the level §5 uses throughout).
	Alpha float64
	// Seed makes the run deterministic; 0 selects a fixed default seed,
	// so identical calls always agree — the property that lets §5-style
	// experiments be replayed exactly.
	Seed uint64
	// UseSpearman switches the rank statistic from Kendall's τ (the
	// paper's measure, §3) to Spearman's ρ, the alternative its §8
	// mentions. Incompatible with Method == Importance.
	UseSpearman bool
	// IntensityA and IntensityB optionally weight each occurrence (§6's
	// event-intensity extension, e.g. how often an author used a
	// keyword). When non-nil they must have length NumNodes, be zero
	// outside the corresponding occurrence list, and positive on it.
	IntensityA, IntensityB []float64
	// Engines, when non-nil and bound to this graph, lends pooled BFS
	// engines to the density evaluator and the BatchBFS sampler so
	// repeated queries stop allocating O(NumNodes) scratch each (see
	// Graph.NewEnginePool). Results are identical with or without it.
	Engines *EnginePool
	// Ctx, when non-nil, lets the caller abandon the test: the density
	// phase (the dominant cost) checks it between chunks of traversals
	// and returns an error wrapping the context's cause
	// (errors.Is with context.Canceled / context.DeadlineExceeded
	// works). tescd threads each HTTP request's context through here so
	// disconnected clients stop burning BFS work. Nil runs to
	// completion.
	Ctx context.Context
}

// Result reports a TESC test.
type Result struct {
	// Tau is the estimated correlation in [-1, 1] (Kendall's τ of the
	// two events' reference densities; the weighted estimator t̃ for the
	// Importance method).
	Tau float64
	// Z is the significance score: under independence Z is standard
	// normal, so |Z| > 2.33 means one-tailed p < 0.01.
	Z float64
	// P is the p-value under the configured Tail.
	P float64
	// Significant is P < Alpha.
	Significant bool
	// Verdict is "positive", "negative" or "independent".
	Verdict string
	// N is the number of distinct reference nodes used.
	N int
	// Sampler names the strategy that produced the reference sample.
	Sampler string
	// Population is the enumerated reference population size |V^h_{a∪b}|
	// when the sampler materialized it (BatchBFS), -1 otherwise.
	Population int
	// SamplerBFS counts the h-hop BFS traversals spent selecting
	// reference nodes; DensityBFS those spent computing densities
	// (always N). Together they characterize a method's cost (§4.4).
	SamplerBFS int64
	DensityBFS int64
}

// ErrNoEventNodes is returned when both events have no occurrences.
var ErrNoEventNodes = errors.New("tesc: both events have no occurrences")

// Correlation runs the TESC hypothesis test between the two events whose
// occurrence node lists are va and vb.
func Correlation(g *Graph, va, vb []int, opts Options) (Result, error) {
	if opts.H < 1 {
		return Result{}, fmt.Errorf("tesc: Options.H must be >= 1 (the vicinity level)")
	}
	sa, err := toNodeSet(g, va)
	if err != nil {
		return Result{}, err
	}
	sb, err := toNodeSet(g, vb)
	if err != nil {
		return Result{}, err
	}
	problem, err := core.NewProblem(g.g, sa, sb)
	if err != nil {
		if errors.Is(err, core.ErrNoEventNodes) {
			return Result{}, ErrNoEventNodes
		}
		return Result{}, err
	}
	if opts.IntensityA != nil || opts.IntensityB != nil {
		if err := problem.SetIntensities(opts.IntensityA, opts.IntensityB); err != nil {
			return Result{}, err
		}
	}

	copts := core.Options{
		H:           opts.H,
		SampleSize:  opts.SampleSize,
		Alternative: opts.Tail.alternative(),
		Alpha:       opts.Alpha,
		Ctx:         opts.Ctx,
	}
	if opts.Engines != nil {
		copts.Engines = opts.Engines.p
	}
	if opts.UseSpearman {
		copts.Statistic = core.SpearmanRho
	}
	if copts.SampleSize == 0 {
		copts.SampleSize = 900
	}
	if copts.Alpha == 0 {
		copts.Alpha = 0.05
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x7e5c
	}
	copts.Rand = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	sampler, err := makeSampler(opts)
	if err != nil {
		return Result{}, err
	}
	copts.Sampler = sampler

	res, err := core.Test(problem, copts)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Tau:         res.Tau,
		Z:           res.Z,
		P:           res.P,
		Significant: res.Significant,
		Verdict:     res.Verdict(),
		N:           res.N,
		Sampler:     res.SamplerName,
		Population:  res.SamplerStats.Population,
		SamplerBFS:  res.SamplerStats.BFSCount,
		DensityBFS:  res.DensityBFS,
	}, nil
}

func makeSampler(opts Options) (core.Sampler, error) {
	switch opts.Method {
	case BatchBFS:
		s := &core.BatchBFSSampler{}
		if opts.Engines != nil {
			s.Engines = opts.Engines.p
		}
		return s, nil
	case Importance:
		if opts.Index == nil {
			return nil, fmt.Errorf("tesc: Importance sampling requires Options.Index (see Graph.BuildVicinityIndex)")
		}
		return &core.ImportanceSampler{Index: opts.Index.idx, BatchSize: opts.ImportanceBatch}, nil
	case WholeGraph:
		return &core.WholeGraphSampler{}, nil
	case Rejection:
		if opts.Index == nil {
			return nil, fmt.Errorf("tesc: Rejection sampling requires Options.Index (see Graph.BuildVicinityIndex)")
		}
		return &core.RejectionSampler{Index: opts.Index.idx}, nil
	default:
		return nil, fmt.Errorf("tesc: unknown method %v", opts.Method)
	}
}

// TCResult reports the Transaction Correlation baseline: nodes treated
// as isolated transactions, association measured by Kendall's τ_b over
// the binary event indicators (the comparison columns of the paper's
// Tables 1–4).
type TCResult struct {
	TauB float64
	Z    float64
	P    float64 // two-sided
}

// TransactionCorrelation computes the TC baseline between two events.
func TransactionCorrelation(g *Graph, va, vb []int) (TCResult, error) {
	sa, err := toNodeSet(g, va)
	if err != nil {
		return TCResult{}, err
	}
	sb, err := toNodeSet(g, vb)
	if err != nil {
		return TCResult{}, err
	}
	r, err := baseline.TransactionCorrelation(sa, sb)
	if err != nil {
		return TCResult{}, err
	}
	return TCResult{TauB: r.TauB, Z: r.Z, P: r.PValue(stats.TwoSided)}, nil
}

func toNodeSet(g *Graph, nodes []int) (*graph.NodeSet, error) {
	n := g.NumNodes()
	ids := make([]graph.NodeID, len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("tesc: node %d outside [0,%d)", v, n)
		}
		ids[i] = graph.NodeID(v)
	}
	return graph.NewNodeSet(n, ids), nil
}
