// Command tescapi renders the service's OpenAPI 3.0 document from the
// canonical route table and wire types in package api. The document is
// generated, never hand-edited: the api package is the single source
// of truth for the HTTP contract, and docs/openapi.yaml is its
// committed rendering.
//
// Usage:
//
//	tescapi                            # write the document to stdout
//	tescapi -o docs/openapi.yaml       # regenerate the committed spec
//	tescapi -check docs/openapi.yaml   # drift gate: exit non-zero if stale
//
// CI runs the -check form: a route or field changed without
// regenerating the spec fails the build.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"tesc/api"
)

func main() {
	out := flag.String("o", "", "write the generated document to this path instead of stdout")
	check := flag.String("check", "", "compare the generated document against this file; exit 1 on drift")
	flag.Parse()

	doc := api.OpenAPI()
	switch {
	case *check != "":
		committed, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tescapi: %v\n", err)
			os.Exit(1)
		}
		if !bytes.Equal(committed, doc) {
			fmt.Fprintf(os.Stderr, "tescapi: %s is stale — regenerate with: go run ./cmd/tescapi -o %s\n", *check, *check)
			os.Exit(1)
		}
		fmt.Printf("tescapi: %s is up to date (%d bytes)\n", *check, len(doc))
	case *out != "":
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tescapi: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tescapi: wrote %s (%d bytes)\n", *out, len(doc))
	default:
		os.Stdout.Write(doc)
	}
}
