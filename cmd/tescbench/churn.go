package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tesc"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/monitor"
	"tesc/internal/screen"
	"tesc/internal/server"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

// churnConfig parameterizes the -churn workload: FlipStream mutation
// batches interleaved with standing-query re-screens, reporting
// incremental re-screen latency against a from-scratch screen at the
// same epoch — the serving-tier payoff of the monitor subsystem's
// dirty-set scheduler.
type churnConfig struct {
	Scale      float64 // coauthorship surrogate scale (1.0 = ~100k nodes)
	H          int
	SampleSize int
	Batches    int // mutation batches
	Flips      int // edge flips per batch
	Occ        int // occurrences per event
	Region     int // nodes of the community region events cluster in
	Seed       uint64
}

// churnWorld is the evolving state driven by runChurn, mirroring the
// serving tier's ordering contract (notify before publish).
type churnWorld struct {
	mgr *monitor.Manager

	mu    sync.Mutex
	g     *graph.Graph
	store *events.Store
	epoch uint64
}

func (w *churnWorld) snap() (*graph.Graph, *events.Store, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.g, w.store, w.epoch
}

// runChurn executes the churn benchmark and prints the report.
func runChurn(cfg churnConfig, w io.Writer) error {
	if cfg.H < 1 || cfg.Batches < 1 || cfg.Flips < 1 {
		return fmt.Errorf("churn: h, batches and flips must all be >= 1")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	fmt.Fprintf(w, "== churn workload: standing-query re-screen vs full re-screen ==\n")
	g := tesc.RandomCoauthorshipGraph(cfg.Scale, cfg.Seed).Internal()
	n := g.NumNodes()
	region := cfg.Region
	if region > n {
		region = n
	}
	b := events.NewBuilder(n)
	for _, name := range []string{"churn-a", "churn-b"} {
		for i := 0; i < cfg.Occ; i++ {
			b.Add(name, graph.NodeID(rng.IntN(region)))
		}
	}
	world := &churnWorld{mgr: monitor.NewManager(), g: g, store: b.Build(), epoch: 1}
	fmt.Fprintf(w, "graph: %d nodes, %d edges; events: 2 x %d occurrences in a %d-node region; h=%d n=%d\n",
		n, g.NumEdges(), cfg.Occ, region, cfg.H, cfg.SampleSize)

	def := monitor.Definition{
		A: "churn-a", B: "churn-b",
		H:          cfg.H,
		SampleSize: cfg.SampleSize,
		Seed:       cfg.Seed ^ 0x5eed,
		Mode:       monitor.Manual,
	}
	mon, err := world.mgr.Create("churn", def, world.snap)
	if err != nil {
		return err
	}
	def = mon.Def()

	fullCfg := screen.Config{
		H:           def.H,
		SampleSize:  def.SampleSize,
		Alpha:       def.Alpha,
		Alternative: stats.TwoSided,
		Seed:        def.Seed,
	}
	pairs := [][2]string{{def.A, def.B}}

	// Phase 1 — the monitor path: stream mutation batches, timing only
	// the incremental re-screens. The full-screen comparison runs in a
	// second phase over a deterministic replay of the same batches, so
	// neither path's allocation/GC bill leaks into the other's timings.
	stream := graphgen.NewFlipStream(g, 0.5, rng)
	incMS := make([]float64, 0, cfg.Batches)
	fullMS := make([]float64, 0, cfg.Batches)
	batches := make([][]graph.EdgeChange, 0, cfg.Batches)
	samples := make([]monitor.Sample, 0, cfg.Batches)
	var reused, recomputed, dirtyTotal int64
	for batch := 0; batch < cfg.Batches; batch++ {
		changes := stream.Take(cfg.Flips)
		world.mu.Lock()
		oldG, epoch := world.g, world.epoch
		world.mu.Unlock()
		d := graph.NewDelta(oldG)
		applied, err := d.Apply(changes)
		if err != nil {
			return err
		}
		newG := d.Compact()
		batches = append(batches, applied)
		// Pay the dirty ball once, like the serving tier does, and
		// account its size (the "<= 1% of nodes touched" criterion).
		dirty, err := vicinity.DirtySet(oldG, newG, applied, def.H)
		if err != nil {
			return err
		}
		dirtyTotal += int64(len(dirty))
		world.mgr.NotifyEdgeDelta("churn", oldG, newG, applied, epoch+1, dirty, def.H)
		world.mu.Lock()
		world.g = newG
		world.epoch++
		world.mu.Unlock()

		// Collect the mutation pipeline's garbage (Compact builds a
		// whole successor CSR) before timing, so the re-screen numbers
		// measure the re-screen, not inherited allocator debt. Both
		// phases get the same treatment.
		runtime.GC()
		start := time.Now()
		sample, ran, err := mon.Refresh(false)
		if err != nil {
			return err
		}
		if !ran {
			return fmt.Errorf("churn: batch %d did not trigger a re-screen", batch)
		}
		incMS = append(incMS, float64(time.Since(start).Microseconds())/1000)
		samples = append(samples, sample)
		reused += sample.Reused
		recomputed += sample.Recomputed
	}

	// Phase 2 — the from-scratch path: replay the identical batch
	// sequence and run a cold screen at every epoch, checking
	// bit-identity against the monitor's recorded samples.
	replayG := g
	runtime.GC()
	for batch, applied := range batches {
		d := graph.NewDelta(replayG)
		if _, err := d.Apply(applied); err != nil {
			return err
		}
		replayG = d.Compact()
		runtime.GC()
		start := time.Now()
		full, err := screen.Run(replayG, world.store, pairs, fullCfg)
		if err != nil {
			return err
		}
		fullMS = append(fullMS, float64(time.Since(start).Microseconds())/1000)
		fp := full.Pairs[0]
		s := samples[batch]
		if fp.Tau != s.Tau || fp.Z != s.Z || fp.P != s.P {
			return fmt.Errorf("churn: batch %d diverged from from-scratch run (tau %v vs %v)", batch, s.Tau, fp.Tau)
		}
	}

	incMean, incP50 := meanMedian(incMS)
	fullMean, fullP50 := meanMedian(fullMS)
	evals := reused + recomputed
	fmt.Fprintf(w, "batches: %d x %d flips; dirty ball: %.0f nodes/batch (%.2f%% of graph)\n",
		cfg.Batches, cfg.Flips, float64(dirtyTotal)/float64(cfg.Batches),
		100*float64(dirtyTotal)/float64(cfg.Batches)/float64(n))
	fmt.Fprintf(w, "incremental re-screen:  mean %8.3f ms   p50 %8.3f ms\n", incMean, incP50)
	fmt.Fprintf(w, "full re-screen:         mean %8.3f ms   p50 %8.3f ms\n", fullMean, fullP50)
	fmt.Fprintf(w, "speedup (mean):         %8.2fx\n", fullMean/incMean)
	fmt.Fprintf(w, "density evaluations:    %d reused / %d total (%.1f%% served from cache)\n",
		reused, evals, 100*float64(reused)/float64(evals))
	fmt.Fprintf(w, "results: bit-identical to from-scratch screen at every epoch\n")
	return nil
}

func meanMedian(xs []float64) (mean, median float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, v := range sorted {
		mean += v
	}
	return mean / float64(len(sorted)), sorted[len(sorted)/2]
}

// runSoak drives a live in-process tescd with FlipStream mutations
// against standing monitors for the given duration: one edge mutator,
// one event mutator, concurrent monitor readers and a manual-monitor
// refresher, with auto monitors re-screening on their debounce timers
// throughout. Built for the nightly -race job: its value is the
// interleavings, not the numbers.
func runSoak(d time.Duration, seed uint64, w io.Writer) error {
	srv := server.New(server.Config{IndexCacheCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	base := ts.URL
	client := ts.Client()

	g := tesc.RandomCoauthorshipGraph(0.2, seed) // ~20k nodes
	rng := rand.New(rand.NewPCG(seed, seed^77))
	var va, vb []int
	for i := 0; i < 200; i++ {
		va = append(va, rng.IntN(4000))
		vb = append(vb, rng.IntN(4000))
	}
	var sb strings.Builder
	if err := g.WriteGraph(&sb); err != nil {
		return err
	}
	if err := postJSON(client, base+"/v1/graphs", map[string]any{"name": "soak", "edge_list": sb.String()}, nil); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	if err := postJSON(client, base+"/v1/graphs/soak/events",
		map[string]any{"events": map[string][]int{"soak-a": va, "soak-b": vb}}, nil); err != nil {
		return fmt.Errorf("registering events: %w", err)
	}
	var manual struct {
		ID string `json:"id"`
	}
	for i, body := range []map[string]any{
		{"a": "soak-a", "b": "soak-b", "h": 2, "sample_size": 300, "seed": 1, "debounce_ms": 25},
		{"a": "soak-a", "b": "soak-b", "h": 1, "sample_size": 300, "seed": 2, "debounce_ms": 10},
		{"a": "soak-a", "b": "soak-b", "h": 1, "sample_size": 200, "seed": 3, "policy": "manual"},
	} {
		var out struct {
			ID string `json:"id"`
		}
		if err := postJSON(client, base+"/v1/graphs/soak/monitors", body, &out); err != nil {
			return fmt.Errorf("registering monitor %d: %w", i, err)
		}
		if body["policy"] == "manual" {
			manual = out
		}
	}

	deadline := time.Now().Add(d)
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	spawn := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				select {
				case errc <- err:
				default:
				}
			}
		}()
	}

	// Edge mutator: FlipStream batches. The stream mirrors the server's
	// edge set because this is the only goroutine mutating edges.
	spawn(func() error {
		stream := graphgen.NewFlipStream(g.Internal(), 0.5, rand.New(rand.NewPCG(seed^1, 3)))
		for time.Now().Before(deadline) {
			flips := stream.Take(1 + rng.IntN(8))
			var ins, del [][2]int
			for _, c := range flips {
				p := [2]int{int(c.U), int(c.V)}
				if c.Insert {
					ins = append(ins, p)
				} else {
					del = append(del, p)
				}
			}
			if err := postJSON(client, base+"/v1/graphs/soak/edges",
				map[string]any{"insert": ins, "delete": del}, nil); err != nil {
				return fmt.Errorf("edge mutator: %w", err)
			}
		}
		return nil
	})
	// Event mutator: occurrences of the monitored pair flicker.
	spawn(func() error {
		erng := rand.New(rand.NewPCG(seed^2, 9))
		for time.Now().Before(deadline) {
			node := erng.IntN(4000)
			name := []string{"soak-a", "soak-b"}[erng.IntN(2)]
			if err := postJSON(client, base+"/v1/graphs/soak/events",
				map[string]any{"events": map[string][]int{name: {node}}}, nil); err != nil {
				return fmt.Errorf("event mutator: %w", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})
	// Manual-monitor refresher.
	spawn(func() error {
		for time.Now().Before(deadline) {
			if err := postJSON(client, base+"/v1/graphs/soak/monitors/"+manual.ID+"/refresh", map[string]any{}, nil); err != nil {
				return fmt.Errorf("refresher: %w", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	})
	// Readers: monitor listings and healthz.
	for r := 0; r < 2; r++ {
		spawn(func() error {
			for time.Now().Before(deadline) {
				resp, err := client.Get(base + "/v1/graphs/soak/monitors")
				if err != nil {
					return fmt.Errorf("reader: %w", err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				resp, err = client.Get(base + "/healthz")
				if err != nil {
					return fmt.Errorf("reader: %w", err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(time.Millisecond)
			}
			return nil
		})
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}
	// One final synchronous drain so lingering debounce timers are
	// exercised before the listener dies.
	if err := postJSON(client, base+"/v1/graphs/soak/monitors/"+manual.ID+"/refresh?force=1", map[string]any{}, nil); err != nil {
		return err
	}

	mons := srv.Monitors()
	if mons.Reruns() == 0 {
		return fmt.Errorf("soak: no monitor re-screens happened in %v", d)
	}
	fmt.Fprintf(w, "== soak (%v) ==\n", d)
	fmt.Fprintf(w, "monitors: %d active, %d re-screens, %d density evals reused, %d recomputed\n",
		mons.Active(), mons.Reruns(), mons.NodesReused(), mons.NodesRecomputed())
	return nil
}
