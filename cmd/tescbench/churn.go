package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tesc"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/monitor"
	"tesc/internal/screen"
	"tesc/internal/server"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
	"tesc/internal/wal"
)

// churnConfig parameterizes the -churn workload: FlipStream mutation
// batches interleaved with standing-query re-screens, reporting
// incremental re-screen latency against a from-scratch screen at the
// same epoch — the serving-tier payoff of the monitor subsystem's
// dirty-set scheduler.
type churnConfig struct {
	Scale      float64 // coauthorship surrogate scale (1.0 = ~100k nodes)
	H          int
	SampleSize int
	Batches    int // mutation batches
	Flips      int // edge flips per batch
	Occ        int // occurrences per event
	Region     int // nodes of the community region events cluster in
	Seed       uint64
	// Fsync lists WAL policies ("always", "interval", "off") to time
	// the mutation log against; empty skips the WAL column.
	Fsync []string
}

// churnWorld is the evolving state driven by runChurn, mirroring the
// serving tier's ordering contract (notify before publish).
type churnWorld struct {
	mgr *monitor.Manager

	mu    sync.Mutex
	g     *graph.Graph
	store *events.Store
	epoch uint64
}

func (w *churnWorld) snap() (*graph.Graph, *events.Store, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.g, w.store, w.epoch
}

// runChurn executes the churn benchmark and prints the report.
func runChurn(cfg churnConfig, w io.Writer) error {
	if cfg.H < 1 || cfg.Batches < 1 || cfg.Flips < 1 {
		return fmt.Errorf("churn: h, batches and flips must all be >= 1")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	fmt.Fprintf(w, "== churn workload: standing-query re-screen vs full re-screen ==\n")
	g := tesc.RandomCoauthorshipGraph(cfg.Scale, cfg.Seed).Internal()
	n := g.NumNodes()
	region := cfg.Region
	if region > n {
		region = n
	}
	b := events.NewBuilder(n)
	for _, name := range []string{"churn-a", "churn-b"} {
		for i := 0; i < cfg.Occ; i++ {
			b.Add(name, graph.NodeID(rng.IntN(region)))
		}
	}
	world := &churnWorld{mgr: monitor.NewManager(), g: g, store: b.Build(), epoch: 1}
	fmt.Fprintf(w, "graph: %d nodes, %d edges; events: 2 x %d occurrences in a %d-node region; h=%d n=%d\n",
		n, g.NumEdges(), cfg.Occ, region, cfg.H, cfg.SampleSize)

	def := monitor.Definition{
		A: "churn-a", B: "churn-b",
		H:          cfg.H,
		SampleSize: cfg.SampleSize,
		Seed:       cfg.Seed ^ 0x5eed,
		Mode:       monitor.Manual,
	}
	mon, err := world.mgr.Create("churn", def, world.snap)
	if err != nil {
		return err
	}
	def = mon.Def()

	fullCfg := screen.Config{
		H:           def.H,
		SampleSize:  def.SampleSize,
		Alpha:       def.Alpha,
		Alternative: stats.TwoSided,
		Seed:        def.Seed,
	}
	pairs := [][2]string{{def.A, def.B}}

	// Phase 1 — the monitor path: stream mutation batches, timing only
	// the incremental re-screens. The full-screen comparison runs in a
	// second phase over a deterministic replay of the same batches, so
	// neither path's allocation/GC bill leaks into the other's timings.
	stream := graphgen.NewFlipStream(g, 0.5, rng)
	incMS := make([]float64, 0, cfg.Batches)
	fullMS := make([]float64, 0, cfg.Batches)
	batches := make([][]graph.EdgeChange, 0, cfg.Batches)
	samples := make([]monitor.Sample, 0, cfg.Batches)
	var reused, recomputed, dirtyTotal int64
	for batch := 0; batch < cfg.Batches; batch++ {
		changes := stream.Take(cfg.Flips)
		world.mu.Lock()
		oldG, epoch := world.g, world.epoch
		world.mu.Unlock()
		d := graph.NewDelta(oldG)
		applied, err := d.Apply(changes)
		if err != nil {
			return err
		}
		newG := d.Compact()
		batches = append(batches, applied)
		// Pay the dirty ball once, like the serving tier does, and
		// account its size (the "<= 1% of nodes touched" criterion).
		dirty, err := vicinity.DirtySet(oldG, newG, applied, def.H)
		if err != nil {
			return err
		}
		dirtyTotal += int64(len(dirty))
		world.mgr.NotifyEdgeDelta("churn", oldG, newG, applied, epoch+1, dirty, def.H)
		world.mu.Lock()
		world.g = newG
		world.epoch++
		world.mu.Unlock()

		// Collect the mutation pipeline's garbage (Compact builds a
		// whole successor CSR) before timing, so the re-screen numbers
		// measure the re-screen, not inherited allocator debt. Both
		// phases get the same treatment.
		runtime.GC()
		start := time.Now()
		sample, ran, err := mon.Refresh(false)
		if err != nil {
			return err
		}
		if !ran {
			return fmt.Errorf("churn: batch %d did not trigger a re-screen", batch)
		}
		incMS = append(incMS, float64(time.Since(start).Microseconds())/1000)
		samples = append(samples, sample)
		reused += sample.Reused
		recomputed += sample.Recomputed
	}

	// Phase 2 — the from-scratch path: replay the identical batch
	// sequence and run a cold screen at every epoch, checking
	// bit-identity against the monitor's recorded samples.
	replayG := g
	runtime.GC()
	for batch, applied := range batches {
		d := graph.NewDelta(replayG)
		if _, err := d.Apply(applied); err != nil {
			return err
		}
		replayG = d.Compact()
		runtime.GC()
		start := time.Now()
		full, err := screen.Run(replayG, world.store, pairs, fullCfg)
		if err != nil {
			return err
		}
		fullMS = append(fullMS, float64(time.Since(start).Microseconds())/1000)
		fp := full.Pairs[0]
		s := samples[batch]
		if fp.Tau != s.Tau || fp.Z != s.Z || fp.P != s.P {
			return fmt.Errorf("churn: batch %d diverged from from-scratch run (tau %v vs %v)", batch, s.Tau, fp.Tau)
		}
	}

	incMean, incP50 := meanMedian(incMS)
	fullMean, fullP50 := meanMedian(fullMS)
	evals := reused + recomputed
	fmt.Fprintf(w, "batches: %d x %d flips; dirty ball: %.0f nodes/batch (%.2f%% of graph)\n",
		cfg.Batches, cfg.Flips, float64(dirtyTotal)/float64(cfg.Batches),
		100*float64(dirtyTotal)/float64(cfg.Batches)/float64(n))
	fmt.Fprintf(w, "incremental re-screen:  mean %8.3f ms   p50 %8.3f ms\n", incMean, incP50)
	fmt.Fprintf(w, "full re-screen:         mean %8.3f ms   p50 %8.3f ms\n", fullMean, fullP50)
	fmt.Fprintf(w, "speedup (mean):         %8.2fx\n", fullMean/incMean)
	fmt.Fprintf(w, "density evaluations:    %d reused / %d total (%.1f%% served from cache)\n",
		reused, evals, 100*float64(reused)/float64(evals))
	fmt.Fprintf(w, "results: bit-identical to from-scratch screen at every epoch\n")
	if len(cfg.Fsync) > 0 {
		if err := churnFsyncColumn(batches, cfg.Fsync, w); err != nil {
			return err
		}
	}
	return nil
}

// churnFsyncColumn times the mutation WAL's append path — the cost
// every acknowledged edge batch now pays before publication — for the
// same batch sequence the churn phases used, one row per fsync policy.
// The spread between "off" and "always" is the price of the
// no-lost-acks durability contract on this hardware.
func churnFsyncColumn(batches [][]graph.EdgeChange, policies []string, w io.Writer) error {
	fmt.Fprintf(w, "wal append (per batch, %d batches):\n", len(batches))
	for _, name := range policies {
		policy, err := wal.ParsePolicy(name)
		if err != nil {
			return fmt.Errorf("churn: %w", err)
		}
		dir, err := os.MkdirTemp("", "tescbench-wal-")
		if err != nil {
			return err
		}
		lg, _, err := wal.Open(dir, wal.Options{FS: wal.OSFS{}, Policy: policy})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		appendMS := make([]float64, 0, len(batches))
		epoch := uint64(1)
		for _, applied := range batches {
			changes := make([]wal.EdgeChange, len(applied))
			for i, c := range applied {
				changes[i] = wal.EdgeChange{U: int(c.U), V: int(c.V), Insert: c.Insert}
			}
			epoch++
			start := time.Now()
			err := lg.Append(&wal.Record{Kind: wal.KindEdges, Graph: "churn", Epoch: epoch, GraphVersion: epoch, Changes: changes})
			appendMS = append(appendMS, float64(time.Since(start).Microseconds())/1000)
			if err != nil {
				lg.Close()
				os.RemoveAll(dir)
				return err
			}
		}
		fsyncs := lg.Fsyncs()
		lg.Close()
		os.RemoveAll(dir)
		mean, p50 := meanMedian(appendMS)
		fmt.Fprintf(w, "  fsync=%-9s mean %8.4f ms   p50 %8.4f ms   (%d fsyncs)\n", name, mean, p50, fsyncs)
	}
	return nil
}

func meanMedian(xs []float64) (mean, median float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, v := range sorted {
		mean += v
	}
	return mean / float64(len(sorted)), sorted[len(sorted)/2]
}

// runSoak drives a live in-process tescd with FlipStream mutations
// against standing monitors for the given duration: one edge mutator,
// one event mutator, concurrent monitor readers and a manual-monitor
// refresher, with auto monitors re-screening on their debounce timers
// throughout. Built for the nightly -race job: its value is the
// interleavings, not the numbers.
func runSoak(d time.Duration, seed uint64, w io.Writer) error {
	srv := server.New(server.Config{IndexCacheCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	base := ts.URL
	client := ts.Client()

	g := tesc.RandomCoauthorshipGraph(0.2, seed) // ~20k nodes
	rng := rand.New(rand.NewPCG(seed, seed^77))
	var va, vb []int
	for i := 0; i < 200; i++ {
		va = append(va, rng.IntN(4000))
		vb = append(vb, rng.IntN(4000))
	}
	var sb strings.Builder
	if err := g.WriteGraph(&sb); err != nil {
		return err
	}
	if err := postJSON(client, base+"/v1/graphs", map[string]any{"name": "soak", "edge_list": sb.String()}, nil); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	if err := postJSON(client, base+"/v1/graphs/soak/events",
		map[string]any{"events": map[string][]int{"soak-a": va, "soak-b": vb}}, nil); err != nil {
		return fmt.Errorf("registering events: %w", err)
	}
	var manual struct {
		ID string `json:"id"`
	}
	for i, body := range []map[string]any{
		{"a": "soak-a", "b": "soak-b", "h": 2, "sample_size": 300, "seed": 1, "debounce_ms": 25},
		{"a": "soak-a", "b": "soak-b", "h": 1, "sample_size": 300, "seed": 2, "debounce_ms": 10},
		{"a": "soak-a", "b": "soak-b", "h": 1, "sample_size": 200, "seed": 3, "policy": "manual"},
	} {
		var out struct {
			ID string `json:"id"`
		}
		if err := postJSON(client, base+"/v1/graphs/soak/monitors", body, &out); err != nil {
			return fmt.Errorf("registering monitor %d: %w", i, err)
		}
		if body["policy"] == "manual" {
			manual = out
		}
	}

	deadline := time.Now().Add(d)
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	spawn := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				select {
				case errc <- err:
				default:
				}
			}
		}()
	}

	// Edge mutator: FlipStream batches. The stream mirrors the server's
	// edge set because this is the only goroutine mutating edges.
	spawn(func() error {
		stream := graphgen.NewFlipStream(g.Internal(), 0.5, rand.New(rand.NewPCG(seed^1, 3)))
		for time.Now().Before(deadline) {
			flips := stream.Take(1 + rng.IntN(8))
			var ins, del [][2]int
			for _, c := range flips {
				p := [2]int{int(c.U), int(c.V)}
				if c.Insert {
					ins = append(ins, p)
				} else {
					del = append(del, p)
				}
			}
			if err := postJSON(client, base+"/v1/graphs/soak/edges",
				map[string]any{"insert": ins, "delete": del}, nil); err != nil {
				return fmt.Errorf("edge mutator: %w", err)
			}
		}
		return nil
	})
	// Event mutator: occurrences of the monitored pair flicker.
	spawn(func() error {
		erng := rand.New(rand.NewPCG(seed^2, 9))
		for time.Now().Before(deadline) {
			node := erng.IntN(4000)
			name := []string{"soak-a", "soak-b"}[erng.IntN(2)]
			if err := postJSON(client, base+"/v1/graphs/soak/events",
				map[string]any{"events": map[string][]int{name: {node}}}, nil); err != nil {
				return fmt.Errorf("event mutator: %w", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})
	// Manual-monitor refresher.
	spawn(func() error {
		for time.Now().Before(deadline) {
			if err := postJSON(client, base+"/v1/graphs/soak/monitors/"+manual.ID+"/refresh", map[string]any{}, nil); err != nil {
				return fmt.Errorf("refresher: %w", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	})
	// Readers: monitor listings and healthz.
	for r := 0; r < 2; r++ {
		spawn(func() error {
			for time.Now().Before(deadline) {
				resp, err := client.Get(base + "/v1/graphs/soak/monitors")
				if err != nil {
					return fmt.Errorf("reader: %w", err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				resp, err = client.Get(base + "/healthz")
				if err != nil {
					return fmt.Errorf("reader: %w", err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(time.Millisecond)
			}
			return nil
		})
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}
	// One final synchronous drain so lingering debounce timers are
	// exercised before the listener dies.
	if err := postJSON(client, base+"/v1/graphs/soak/monitors/"+manual.ID+"/refresh?force=1", map[string]any{}, nil); err != nil {
		return err
	}

	mons := srv.Monitors()
	if mons.Reruns() == 0 {
		return fmt.Errorf("soak: no monitor re-screens happened in %v", d)
	}
	fmt.Fprintf(w, "== soak (%v) ==\n", d)
	fmt.Fprintf(w, "monitors: %d active, %d re-screens, %d density evals reused, %d recomputed\n",
		mons.Active(), mons.Reruns(), mons.NodesReused(), mons.NodesRecomputed())
	return nil
}

// runSoakRecover exercises the durability contract end to end on the
// real filesystem: a tescd with a data directory ingests FlipStream
// edge batches over HTTP, is torn down — srv.Kill() on odd cycles (a
// crash: nothing flushed beyond what the WAL fsynced), srv.Close() on
// even ones (clean shutdown: snapshots flushed, WAL compacted) — and
// rebooted from snapshot + WAL tail. Every cycle asserts the recovered
// epoch equals the last acknowledged one: zero lost acks, by
// construction of the fsync=always append-before-publish path. Built
// for the nightly job; see docs/DURABILITY.md.
func runSoakRecover(d time.Duration, seed uint64, w io.Writer) error {
	dir, err := os.MkdirTemp("", "tescbench-soak-recover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	boot := func() (*server.Server, *httptest.Server, error) {
		srv := server.New(server.Config{
			IndexCacheCapacity: 4,
			DataDir:            dir,
			// A debounce longer than any cycle forces crash recovery to
			// run through the WAL tail, not a conveniently fresh snapshot.
			CheckpointDelay: time.Hour,
			FsyncPolicy:     "always",
		})
		if _, err := srv.LoadData(); err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv.Handler()), nil
	}

	srv, ts, err := boot()
	if err != nil {
		return err
	}
	g := tesc.RandomCommunityGraph(4, 500, 6, 0.5, seed)
	var sb strings.Builder
	if err := g.WriteGraph(&sb); err != nil {
		return err
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/graphs", map[string]any{"name": "soak", "edge_list": sb.String()}, nil); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	reg, ok := srv.Registry().Get("soak")
	if !ok {
		return fmt.Errorf("graph vanished after registration")
	}
	wantEpoch := reg.Epoch()

	rng := rand.New(rand.NewPCG(seed, seed^99))
	deadline := time.Now().Add(d)
	var cycles, crashes, batches int
	var replayed uint64
	for {
		// Stream a cycle of mutation batches. The FlipStream mirrors the
		// recovered edge set, so flips stay genuine and every acked batch
		// bumps the epoch by exactly one.
		entry, ok := srv.Registry().Get("soak")
		if !ok {
			return fmt.Errorf("cycle %d: graph missing after recovery", cycles)
		}
		stream := graphgen.NewFlipStream(entry.Graph().Internal(), 0.5, rand.New(rand.NewPCG(seed^uint64(cycles), 3)))
		for i := 0; i < 10+rng.IntN(20); i++ {
			var ins, del [][2]int
			for _, c := range stream.Take(1 + rng.IntN(8)) {
				p := [2]int{int(c.U), int(c.V)}
				if c.Insert {
					ins = append(ins, p)
				} else {
					del = append(del, p)
				}
			}
			if err := postJSON(ts.Client(), ts.URL+"/v1/graphs/soak/edges",
				map[string]any{"insert": ins, "delete": del}, nil); err != nil {
				return fmt.Errorf("cycle %d: edge batch: %w", cycles, err)
			}
			wantEpoch++
			batches++
		}
		cycles++

		crash := cycles%2 == 1
		ts.Close()
		if crash {
			crashes++
			srv.Kill()
		} else {
			srv.Close()
		}

		if srv, ts, err = boot(); err != nil {
			return fmt.Errorf("cycle %d: reboot: %w", cycles, err)
		}
		entry, ok = srv.Registry().Get("soak")
		if !ok {
			return fmt.Errorf("cycle %d: graph lost across restart", cycles)
		}
		if got := entry.Epoch(); got != wantEpoch {
			return fmt.Errorf("cycle %d: recovered epoch %d, want %d — lost acknowledged mutations", cycles, got, wantEpoch)
		}
		var health struct {
			WALReplayed uint64 `json:"wal_replayed"`
		}
		if err := getJSON(ts.Client(), ts.URL+"/healthz", &health); err != nil {
			return fmt.Errorf("cycle %d: healthz: %w", cycles, err)
		}
		if crash && health.WALReplayed == 0 {
			return fmt.Errorf("cycle %d: crash recovery replayed no WAL records", cycles)
		}
		if !crash && health.WALReplayed != 0 {
			return fmt.Errorf("cycle %d: clean restart replayed %d WAL records, want 0", cycles, health.WALReplayed)
		}
		replayed += health.WALReplayed

		if !time.Now().Before(deadline) {
			srv.Close()
			ts.Close()
			break
		}
	}
	fmt.Fprintf(w, "== soak-recover (%v) ==\n", d)
	fmt.Fprintf(w, "cycles: %d (%d crash, %d clean); batches acked: %d; WAL records replayed: %d; final epoch: %d\n",
		cycles, crashes, cycles-crashes, batches, replayed, wantEpoch)
	fmt.Fprintf(w, "epoch continuity held on every restart: zero lost acknowledged mutations\n")
	return nil
}

// getJSON decodes a GET response body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
