package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"tesc"
	"tesc/api"
	"tesc/client"
	"tesc/internal/cluster"
	"tesc/internal/replica"
	"tesc/internal/server"
)

// soakClusterNode is one in-process tescd of the cluster soak.
type soakClusterNode struct {
	dir string
	srv *server.Server
	ts  *httptest.Server
}

func newSoakClusterNode(readOnly bool) (*soakClusterNode, error) {
	dir, err := os.MkdirTemp("", "tescbench-soak-cluster-")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		IndexCacheCapacity: 4,
		DataDir:            dir,
		CheckpointDelay:    time.Hour,
		FsyncPolicy:        "off", // soak durability is the replica tier, not fsync latency
		ReadOnly:           readOnly,
	})
	if _, err := srv.LoadData(); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return &soakClusterNode{dir: dir, srv: srv, ts: httptest.NewServer(srv.Handler())}, nil
}

func (n *soakClusterNode) close() {
	n.ts.Close()
	n.srv.Close()
	os.RemoveAll(n.dir)
}

// soakClusterMember is an owner plus one replica following it.
type soakClusterMember struct {
	name  string
	owner *soakClusterNode
	rep   *soakClusterNode
	fol   *replica.Follower
}

func newSoakClusterMember(name string) (*soakClusterMember, error) {
	m := &soakClusterMember{name: name}
	var err error
	if m.owner, err = newSoakClusterNode(false); err != nil {
		return nil, err
	}
	if m.rep, err = newSoakClusterNode(true); err != nil {
		m.owner.close()
		return nil, err
	}
	m.fol = replica.New(&replica.HTTPTransport{Base: m.owner.ts.URL}, m.rep.srv.FollowerState(), nil)
	m.rep.srv.AttachFollower(m.fol)
	return m, nil
}

func (m *soakClusterMember) converge(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	return m.fol.CatchUp(cctx, time.Millisecond)
}

func (m *soakClusterMember) close() {
	m.owner.close()
	m.rep.close()
}

// clusterOracle mirrors every successful cluster mutation onto a
// single node; reads through the coordinator must match its answers.
type clusterOracle struct {
	node *soakClusterNode
	cl   *client.Client
}

// soakNormalize re-encodes a JSON body canonically with wall-clock
// fields zeroed, mirroring the e2e test's equivalence relation.
func soakNormalize(raw []byte) (string, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("normalizing %q: %w", raw, err)
	}
	var scrub func(any)
	scrub = func(x any) {
		switch n := x.(type) {
		case map[string]any:
			for _, k := range []string{"created", "finished", "elapsed_ms"} {
				if _, ok := n[k]; ok {
					n[k] = nil
				}
			}
			for _, vv := range n {
				scrub(vv)
			}
		case []any:
			for _, vv := range n {
				scrub(vv)
			}
		}
	}
	scrub(v)
	out, err := json.Marshal(v)
	return string(out), err
}

func soakDoRaw(method, url string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// compareRead issues the same read against the coordinator and the
// oracle and fails unless the bodies are byte-equivalent (modulo
// wall-clock fields).
func compareRead(coordURL, oracleURL, method, path string, body any) error {
	cCode, cRaw, err := soakDoRaw(method, coordURL+path, body)
	if err != nil {
		return err
	}
	oCode, oRaw, err := soakDoRaw(method, oracleURL+path, body)
	if err != nil {
		return err
	}
	if cCode != oCode {
		return fmt.Errorf("%s %s: coordinator %d vs oracle %d (%s vs %s)", method, path, cCode, oCode, cRaw, oRaw)
	}
	if bytes.Equal(cRaw, oRaw) {
		return nil
	}
	c, err := soakNormalize(cRaw)
	if err != nil {
		return err
	}
	o, err := soakNormalize(oRaw)
	if err != nil {
		return err
	}
	if c != o {
		return fmt.Errorf("%s %s diverged from the oracle:\n  cluster: %s\n  oracle:  %s", method, path, c, o)
	}
	return nil
}

// memberGraphCount reads the coordinator's healthz and returns how
// many graphs are placed on the named member.
func memberGraphCount(coordURL, member string) (int, error) {
	_, raw, err := soakDoRaw("GET", coordURL+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	var h api.Health
	if err := json.Unmarshal(raw, &h); err != nil || h.Cluster == nil {
		return 0, fmt.Errorf("coordinator healthz: %v (%s)", err, raw)
	}
	for _, m := range h.Cluster.Members {
		if m.Name == member {
			return m.Graphs, nil
		}
	}
	return 0, fmt.Errorf("coordinator healthz: no member %q", member)
}

// runSoakCluster drives a 3-member coordinator (each member an owner
// plus a live replica) against a single-node oracle for a wall-clock
// duration. Every cycle registers and mutates graphs through the
// coordinator, mirrors the successful mutations onto the oracle, and
// asserts reads through the coordinator are byte-equivalent to the
// oracle's. Then it kills one member's owner: reads must keep
// answering from the replica (still oracle-equivalent), mutations on
// that member must shed the typed no_owner envelope, and a fresh node
// must rejoin via the snapshot+WAL handoff (bootstrap from the
// surviving replica, catch up, promote, atomic placement flip) and
// take writes again. Built for the nightly -race job; see
// docs/CLUSTER.md.
func runSoakCluster(d time.Duration, seed uint64, w io.Writer) error {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	memberNames := []string{"n1", "n2", "n3"}

	members := make(map[string]*soakClusterMember, len(memberNames))
	for _, name := range memberNames {
		m, err := newSoakClusterMember(name)
		if err != nil {
			return err
		}
		members[name] = m
	}
	defer func() {
		for _, m := range members {
			m.close()
		}
	}()

	top := cluster.Topology{}
	for _, name := range memberNames {
		m := members[name]
		top.Members = append(top.Members, cluster.Member{
			Name: name, URL: m.owner.ts.URL, Replicas: []string{m.rep.ts.URL},
		})
	}
	coord, err := cluster.NewCoordinator(cluster.Config{Topology: top, FailThreshold: 1})
	if err != nil {
		return err
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	ccl := client.New(cts.URL)

	oracleNode, err := newSoakClusterNode(false)
	if err != nil {
		return err
	}
	defer oracleNode.close()
	oracle := clusterOracle{node: oracleNode, cl: client.New(oracleNode.ts.URL)}

	ctx := context.Background()
	deadline := time.Now().Add(d)
	var cycles, graphs, mutations, compares, sheds, rebalances int
	var names []string

	for time.Now().Before(deadline) {
		cycles++

		// Populate: a few new graphs plus mutations on existing ones,
		// through the coordinator and mirrored onto the oracle.
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("g%03d", len(names))
			g := tesc.RandomCommunityGraph(2, 40+rng.IntN(40), 4, 0.5, rng.Uint64())
			var sb strings.Builder
			if err := g.WriteGraph(&sb); err != nil {
				return err
			}
			req := api.RegisterGraphRequest{Name: name, EdgeList: sb.String()}
			cg, err := ccl.RegisterGraph(ctx, req)
			if err != nil {
				return fmt.Errorf("cycle %d: cluster register %s: %w", cycles, name, err)
			}
			og, err := oracle.cl.RegisterGraph(ctx, req)
			if err != nil {
				return fmt.Errorf("cycle %d: oracle register %s: %w", cycles, name, err)
			}
			if cg.Nodes != og.Nodes || cg.Edges != og.Edges || cg.Epoch != og.Epoch {
				return fmt.Errorf("cycle %d: register %s diverged: cluster %+v, oracle %+v", cycles, name, cg, og)
			}
			n := g.NumNodes()
			evReq := api.RegisterEventsRequest{Events: map[string][]int{
				"a": {0, 1, 2 + rng.IntN(n-3)},
				"b": {n - 1, n - 2, rng.IntN(n)},
			}}
			if _, err := ccl.RegisterEvents(ctx, name, evReq); err != nil {
				return fmt.Errorf("cycle %d: cluster events %s: %w", cycles, name, err)
			}
			if _, err := oracle.cl.RegisterEvents(ctx, name, evReq); err != nil {
				return fmt.Errorf("cycle %d: oracle events %s: %w", cycles, name, err)
			}
			names = append(names, name)
			graphs++
		}
		for i := 0; i < 8; i++ {
			name := names[rng.IntN(len(names))]
			a, b := rng.IntN(20), rng.IntN(20)
			if a == b {
				b = (b + 1) % 20
			}
			mreq := api.MutateEdgesRequest{Insert: [][2]int{{a, b}}}
			cm, err := ccl.MutateEdges(ctx, name, mreq)
			if err != nil {
				return fmt.Errorf("cycle %d: cluster mutate %s: %w", cycles, name, err)
			}
			om, err := oracle.cl.MutateEdges(ctx, name, mreq)
			if err != nil {
				return fmt.Errorf("cycle %d: oracle mutate %s: %w", cycles, name, err)
			}
			if cm.Epoch != om.Epoch || cm.Edges != om.Edges {
				return fmt.Errorf("cycle %d: mutate %s diverged: cluster %+v, oracle %+v", cycles, name, cm, om)
			}
			mutations++
		}

		readSweep := func(phase string) error {
			for i := 0; i < 6; i++ {
				name := names[rng.IntN(len(names))]
				if err := compareRead(cts.URL, oracleNode.ts.URL, "GET", "/v1/graphs/"+name, nil); err != nil {
					return fmt.Errorf("cycle %d (%s): %w", cycles, phase, err)
				}
				if err := compareRead(cts.URL, oracleNode.ts.URL, "POST", "/v1/graphs/"+name+"/correlate",
					api.CorrelateRequest{A: "a", B: "b", H: 1, SampleSize: 40, Seed: rng.Uint64()}); err != nil {
					return fmt.Errorf("cycle %d (%s): %w", cycles, phase, err)
				}
				compares += 2
			}
			return nil
		}
		if err := readSweep("healthy"); err != nil {
			return err
		}

		// Converge the replica tier, then kill one owner.
		for _, m := range members {
			if err := m.converge(ctx); err != nil {
				return fmt.Errorf("cycle %d: converge %s: %w", cycles, m.name, err)
			}
		}
		victim := memberNames[rng.IntN(len(memberNames))]
		members[victim].owner.ts.Close()
		coord.ProbeNow(ctx)

		// Reads keep answering from the replica, still oracle-equal.
		if err := readSweep("owner down"); err != nil {
			return err
		}

		// Mutations on the victim's graphs shed the typed no_owner
		// envelope; mutations elsewhere keep working and are mirrored.
		// Sweep every graph (capped) so a victim-owned one is surely hit.
		cycleSheds := 0
		probe := names
		if len(probe) > 60 {
			probe = probe[len(probe)-60:]
		}
		for _, name := range probe {
			a, b := rng.IntN(20), rng.IntN(20)
			if a == b {
				b = (b + 1) % 20
			}
			mreq := api.MutateEdgesRequest{Insert: [][2]int{{a, b}}}
			cm, err := ccl.MutateEdges(ctx, name, mreq)
			var ae *api.Error
			switch {
			case err == nil:
				om, oerr := oracle.cl.MutateEdges(ctx, name, mreq)
				if oerr != nil {
					return fmt.Errorf("cycle %d: oracle mirror %s: %w", cycles, name, oerr)
				}
				if cm.Epoch != om.Epoch {
					return fmt.Errorf("cycle %d: mutate %s diverged under partial outage", cycles, name)
				}
				mutations++
			case errors.As(err, &ae) && ae.Code == api.CodeNoOwner:
				if !ae.Retryable() || ae.RetryAfterMS == 0 {
					return fmt.Errorf("cycle %d: no_owner shed not retryable: %+v", cycles, ae)
				}
				cycleSheds++
			default:
				return fmt.Errorf("cycle %d: mutate %s under outage: %w", cycles, name, err)
			}
		}
		victimGraphs, err := memberGraphCount(cts.URL, victim)
		if err != nil {
			return err
		}
		if cycleSheds == 0 && victimGraphs > 0 {
			return fmt.Errorf("cycle %d: member %s owns %d graphs but no mutation shed no_owner", cycles, victim, victimGraphs)
		}
		sheds += cycleSheds

		// Rejoin: a fresh node bootstraps from the surviving replica via
		// the replication primitives, catches up, is promoted, and the
		// coordinator flips the member to it; the replica tier is then
		// rebuilt behind the new owner.
		freshOwner, err := newSoakClusterNode(true)
		if err != nil {
			return err
		}
		fol := replica.New(server.ReplicaSource{S: members[victim].rep.srv}, freshOwner.srv.FollowerState(), nil)
		freshOwner.srv.AttachFollower(fol)
		cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err = fol.CatchUp(cctx, time.Millisecond)
		cancel()
		if err != nil {
			freshOwner.close()
			return fmt.Errorf("cycle %d: rejoin catch-up: %w", cycles, err)
		}
		freshOwner.srv.Promote()
		if err := coord.ReplaceOwner(victim, freshOwner.ts.URL); err != nil {
			freshOwner.close()
			return err
		}
		freshRep, err := newSoakClusterNode(true)
		if err != nil {
			freshOwner.close()
			return err
		}
		repFol := replica.New(&replica.HTTPTransport{Base: freshOwner.ts.URL}, freshRep.srv.FollowerState(), nil)
		freshRep.srv.AttachFollower(repFol)
		if err := coord.ReplaceReplicas(victim, freshRep.ts.URL); err != nil {
			freshOwner.close()
			freshRep.close()
			return err
		}
		old := members[victim]
		members[victim] = &soakClusterMember{name: victim, owner: freshOwner, rep: freshRep, fol: repFol}
		old.close()
		coord.ProbeNow(ctx)
		rebalances++

		// The member takes writes again, and the sweep still matches.
		if err := readSweep("rejoined"); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "cluster soak: %v clean\n", d)
	fmt.Fprintf(w, "  cycles            %d\n", cycles)
	fmt.Fprintf(w, "  graphs placed     %d\n", graphs)
	fmt.Fprintf(w, "  mutations applied %d\n", mutations)
	fmt.Fprintf(w, "  oracle compares   %d (all byte-equivalent)\n", compares)
	fmt.Fprintf(w, "  no_owner sheds    %d\n", sheds)
	fmt.Fprintf(w, "  owner rebalances  %d\n", rebalances)
	return nil
}
