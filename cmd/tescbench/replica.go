package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"tesc"
	"tesc/internal/graphgen"
	"tesc/internal/replica"
	"tesc/internal/server"
)

// soakFollower is one read replica in the soak: a durable read-only
// tescd plus the Follower pulling it forward, rebootable in place.
type soakFollower struct {
	dir string
	t   *replica.FaultTransport
	srv *server.Server
	fol *replica.Follower
	acc replica.Metrics // carried across crash-restarts
}

// metrics returns lifetime counters: everything accumulated before the
// last reboot plus the live follower's counts.
func (f *soakFollower) metrics() replica.Metrics {
	m := f.fol.Metrics()
	m.RecordsApplied += f.acc.RecordsApplied
	m.RecordsSkipped += f.acc.RecordsSkipped
	m.Pulls += f.acc.Pulls
	m.Bootstraps += f.acc.Bootstraps
	m.Discards += f.acc.Discards
	m.Faults += f.acc.Faults
	return m
}

func (f *soakFollower) boot() error {
	if f.fol != nil {
		f.acc = f.metrics()
	}
	f.srv = server.New(server.Config{
		IndexCacheCapacity: 4,
		DataDir:            f.dir,
		CheckpointDelay:    time.Hour,
		FsyncPolicy:        "always",
		ReadOnly:           true,
	})
	if _, err := f.srv.LoadData(); err != nil {
		return err
	}
	f.fol = replica.New(f.t, f.srv.FollowerState(), nil)
	f.srv.AttachFollower(f.fol)
	return nil
}

// runSoakReplica exercises replication end to end on the real wire
// path for a wall-clock duration: a durable primary ingests FlipStream
// edge batches over HTTP while two followers replicate through
// FaultTransport-wrapped HTTP transports that drop, duplicate,
// truncate, corrupt and partition the stream; followers are
// crash-restarted from their own data directories mid-stream, and the
// primary periodically checkpoints + compacts its log so lagging
// cursors go stale and force snapshot re-bootstraps. Every cycle ends
// with a heal and asserts both followers converge to the primary's
// exact epoch, graph version and edge count within a bounded number of
// sync rounds. Built for the nightly job; see docs/REPLICATION.md.
func runSoakReplica(d time.Duration, seed uint64, w io.Writer) error {
	primDir, err := os.MkdirTemp("", "tescbench-soak-replica-prim-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(primDir)

	prim := server.New(server.Config{
		IndexCacheCapacity: 4,
		DataDir:            primDir,
		CheckpointDelay:    time.Hour,
		FsyncPolicy:        "always",
	})
	if _, err := prim.LoadData(); err != nil {
		return err
	}
	defer prim.Close()
	ts := httptest.NewServer(prim.Handler())
	defer ts.Close()

	g := tesc.RandomCommunityGraph(4, 500, 6, 0.5, seed)
	var sb strings.Builder
	if err := g.WriteGraph(&sb); err != nil {
		return err
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/graphs", map[string]any{"name": "soak", "edge_list": sb.String()}, nil); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/graphs/soak/events",
		map[string]any{"events": map[string][]int{"a": {0, 1, 2}, "b": {1990, 1995}}}, nil); err != nil {
		return fmt.Errorf("registering events: %w", err)
	}

	followers := make([]*soakFollower, 2)
	for i := range followers {
		dir, err := os.MkdirTemp("", fmt.Sprintf("tescbench-soak-replica-f%d-", i))
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		followers[i] = &soakFollower{
			dir: dir,
			t: replica.NewFaultTransport(&replica.HTTPTransport{Base: ts.URL},
				int64(seed)*31+int64(i), 0.25),
		}
		if err := followers[i].boot(); err != nil {
			return fmt.Errorf("booting follower %d: %v", i, err)
		}
		defer func(f *soakFollower) { f.srv.Close() }(followers[i])
	}

	rng := rand.New(rand.NewPCG(seed, seed^77))
	deadline := time.Now().Add(d)
	var cycles, crashes, batches, convergeRounds, maxRounds int
	var maxLag uint64
	for {
		// Re-arm the injectors: each cycle churns under faults and only
		// the post-cycle convergence check runs on a healed wire.
		for _, f := range followers {
			f.t.Break()
		}
		entry, ok := prim.Registry().Get("soak")
		if !ok {
			return fmt.Errorf("cycle %d: graph missing on primary", cycles)
		}
		stream := graphgen.NewFlipStream(entry.Graph().Internal(), 0.5, rand.New(rand.NewPCG(seed^uint64(cycles), 3)))
		for i := 0; i < 10+rng.IntN(20); i++ {
			var ins, del [][2]int
			for _, c := range stream.Take(1 + rng.IntN(8)) {
				p := [2]int{int(c.U), int(c.V)}
				if c.Insert {
					ins = append(ins, p)
				} else {
					del = append(del, p)
				}
			}
			if err := postJSON(ts.Client(), ts.URL+"/v1/graphs/soak/edges",
				map[string]any{"insert": ins, "delete": del}, nil); err != nil {
				return fmt.Errorf("cycle %d: edge batch: %w", cycles, err)
			}
			batches++
			// Followers pull mid-churn through the faulty wire; errors
			// are injected faults and must never be fatal.
			for _, f := range followers {
				for k := rng.IntN(3); k > 0; k-- {
					_ = f.fol.Sync()
				}
				if lag := f.fol.Metrics().LagEpochs; lag > maxLag {
					maxLag = lag
				}
			}
		}
		cycles++

		// Periodic checkpoint + compaction: cursors parked before the
		// compaction point go "too old" and must re-bootstrap.
		if cycles%3 == 0 {
			prim.FlushSnapshots()
		}
		// Crash-restart one follower per odd cycle; its local WAL tail
		// and saved cursor carry it back, the epoch gate dedups overlap.
		if cycles%2 == 1 {
			victim := followers[cycles/2%len(followers)]
			victim.srv.Kill()
			if err := victim.boot(); err != nil {
				return fmt.Errorf("cycle %d: follower reboot: %v", cycles, err)
			}
			crashes++
		}

		// Heal the wire; both followers must now fully converge.
		want := prim.Registry()
		wantEntry, _ := want.Get("soak")
		wantSnap := wantEntry.Snapshot()
		for i, f := range followers {
			f.t.Heal()
			rounds := 0
			for ; rounds < 100; rounds++ {
				if err := f.fol.Sync(); err != nil {
					return fmt.Errorf("cycle %d: follower %d healed sync: %v", cycles, i, err)
				}
				e, ok := f.srv.Registry().Get("soak")
				if !ok {
					continue
				}
				s := e.Snapshot()
				if s.Epoch == wantSnap.Epoch && s.GraphVersion == wantSnap.GraphVersion &&
					s.Graph.NumEdges() == wantSnap.Graph.NumEdges() &&
					s.Store.NumEvents() == wantSnap.Store.NumEvents() {
					break
				}
			}
			if rounds == 100 {
				return fmt.Errorf("cycle %d: follower %d did not converge to epoch %d", cycles, i, wantSnap.Epoch)
			}
			convergeRounds += rounds + 1
			if rounds+1 > maxRounds {
				maxRounds = rounds + 1
			}
		}

		if !time.Now().Before(deadline) {
			break
		}
	}

	var applied, skipped, bootstraps, pulls, faults int64
	for _, f := range followers {
		m := f.metrics()
		applied += m.RecordsApplied
		skipped += m.RecordsSkipped
		bootstraps += m.Bootstraps
		pulls += m.Pulls
		faults += m.Faults
	}
	entry, _ := prim.Registry().Get("soak")
	fmt.Fprintf(w, "== soak-replica (%v) ==\n", d)
	fmt.Fprintf(w, "cycles: %d (%d follower crash-restarts); batches acked: %d; final primary epoch: %d\n",
		cycles, crashes, batches, entry.Epoch())
	fmt.Fprintf(w, "followers: records applied %d, deduped %d, pulls %d, snapshot bootstraps %d, transport faults survived %d\n",
		applied, skipped, pulls, bootstraps, faults)
	fmt.Fprintf(w, "lag: max observed %d epochs mid-churn; convergence after heal: mean %.1f rounds, max %d (bound 100)\n",
		maxLag, float64(convergeRounds)/float64(2*cycles), maxRounds)
	fmt.Fprintf(w, "both followers converged to the primary's exact epoch every cycle\n")
	return nil
}
