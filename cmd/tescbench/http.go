package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"tesc/api"
)

// postJSON posts body as JSON and decodes the response into out (when
// non-nil), surfacing the service's typed error envelope on non-2xx
// codes. The soak harnesses use it for ad-hoc requests; structured
// workloads go through the tesc/client package.
func postJSON(client *http.Client, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e api.Error
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Code != "" {
			return fmt.Errorf("%s: %s: %s", resp.Status, e.Code, e.Reason)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
