package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"text/tabwriter"
	"time"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/screen"
	"tesc/internal/stats"
)

// plannerConfig parameterizes the -topk workload: the K=32 (496-pair)
// screening surrogate from internal/screen's benchmarks, run through
// both the exhaustive sweep and the prioritized planner at a ladder of
// k values.
type plannerConfig struct {
	Scale      float64 // coauthorship surrogate scale (1.0 ≈ 100k nodes)
	H          int
	SampleSize int
	Ks         []int
	Workers    int
	Seed       uint64
}

// plannerVocabulary plants the K=32 vocabulary of the acceptance
// workload: 8 signal events co-located in one community region (their
// pairs attract) and 24 background events in disjoint community blocks
// (their pairs carry no signal). Mirrors internal/screen's sweepK32
// substrate.
func plannerVocabulary(g *graph.Graph, rng *rand.Rand) *events.Store {
	b := events.NewBuilder(g.NumNodes())
	for e := 0; e < 8; e++ {
		name := fmt.Sprintf("sig-%d", e)
		for c := 0; c < 10; c++ {
			for k := 0; k < 50; k++ {
				b.Add(name, graph.NodeID(c*80+rng.IntN(80)))
			}
		}
	}
	for e := 0; e < 24; e++ {
		name := fmt.Sprintf("bg-%02d", e)
		base := (20 + 2*e) * 80
		for k := 0; k < 500; k++ {
			b.Add(name, graph.NodeID(base+rng.IntN(160)))
		}
	}
	return b.Build()
}

// runPlanner is tescbench -topk: exhaustive-sweep versus planner
// columns on the K=32 surrogate, checking along the way that every
// planned top-k is exactly the exhaustive ranking's head.
func runPlanner(cfg plannerConfig, w io.Writer) error {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc0a1))
	fmt.Fprintf(w, "building coauthorship surrogate (scale %.2f)...\n", cfg.Scale)
	g := graphgen.Coauthorship(graphgen.DefaultCoauthorship(cfg.Scale), rng)
	store := plannerVocabulary(g, rng)
	pairs := screen.AllPairs(store, 1)
	fmt.Fprintf(w, "graph: %d nodes; vocabulary: %d events -> %d candidate pairs\n",
		g.NumNodes(), store.NumEvents(), len(pairs))

	base := screen.Config{
		H:           cfg.H,
		SampleSize:  cfg.SampleSize,
		Alternative: stats.Greater,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	}

	start := time.Now()
	exhaustive, err := screen.Run(g, store, pairs, base)
	if err != nil {
		return err
	}
	exhaustiveMS := float64(time.Since(start).Microseconds()) / 1000

	// The exhaustive sweep ranks by adjusted p; the planner ranks by τ
	// under the tested tail. Re-rank the exhaustive output by τ to get
	// the ranking the planner must reproduce.
	tested := make([]screen.PairResult, 0, len(exhaustive.Pairs))
	for _, p := range exhaustive.Pairs {
		if p.Skipped == "" {
			tested = append(tested, p)
		}
	}
	for i := 1; i < len(tested); i++ {
		for j := i; j > 0 && tested[j].Tau > tested[j-1].Tau; j-- {
			tested[j], tested[j-1] = tested[j-1], tested[j]
		}
	}

	fmt.Fprintf(w, "\nexhaustive sweep: %d full tests, %.0f ms\n\n", exhaustive.Tested, exhaustiveMS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\tfull tests\tpruned early\tpruned prior\tcheckpoints\tdensity evals\tms\ttests saved\tidentical")
	for _, k := range cfg.Ks {
		pcfg := screen.PlanConfig{Config: base, K: k}
		start = time.Now()
		res, err := screen.Plan(g, store, pairs, pcfg)
		if err != nil {
			return err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		st := res.Stats

		identical := len(res.Pairs) == min(k, len(tested))
		for i := range res.Pairs {
			if !identical {
				break
			}
			// Same scores suffice: τ ties make the name order between the
			// two sorts unspecified, but the planner's differential tests
			// already pin exact equivalence against a τ-ranked oracle.
			identical = res.Pairs[i].Tau == tested[i].Tau && res.Pairs[i].P == tested[i].P
		}
		saved := "-"
		if st.FullTests > 0 {
			saved = fmt.Sprintf("%.1fx", float64(exhaustive.Tested)/float64(st.FullTests))
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%s\t%v\n",
			k, st.FullTests, st.PrunedEarly, st.PrunedPrior, st.Checkpoints, st.DensityEvals, ms, saved, identical)
		if !identical {
			tw.Flush()
			return fmt.Errorf("planned top-%d diverged from the exhaustive ranking", k)
		}
	}
	return tw.Flush()
}
