package main

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"tesc"
	"tesc/api"
	"tesc/client"
	"tesc/internal/simulate"
)

// serveConfig parameterizes the -serve load-generation mode, which
// measures a running tescd daemon end-to-end: register a synthetic
// graph and a planted event pair, then fire concurrent correlate
// queries and report throughput and latency percentiles. This makes
// the amortization argument observable: the first query pays the
// vicinity-index build, every later query rides the cache.
type serveConfig struct {
	BaseURL     string
	Requests    int
	Concurrency int
	Nodes       int
	Occurrences int
	H           int
	SampleSize  int
	Method      string
	Seed        uint64
}

// runServe drives the daemon at cfg.BaseURL through the typed client.
func runServe(cfg serveConfig, w io.Writer) error {
	if cfg.Requests < 1 {
		return fmt.Errorf("-serve-requests must be >= 1, got %d", cfg.Requests)
	}
	if cfg.Concurrency < 1 {
		return fmt.Errorf("-serve-concurrency must be >= 1, got %d", cfg.Concurrency)
	}
	ctx := context.Background()
	cl := client.New(cfg.BaseURL, client.WithHTTPClient(&http.Client{Timeout: 5 * time.Minute}))

	// 1. synthesize the workload: the DBLP coauthorship surrogate (the
	// recall experiments' graph) with one planted attracting pair
	// (§5.2 methodology).
	g := tesc.RandomCoauthorshipGraph(float64(cfg.Nodes)/100000, cfg.Seed)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb))
	pair, err := simulate.PositivePair(g.Internal(), simulate.Config{H: cfg.H, Occurrences: cfg.Occurrences}, rng)
	if err != nil {
		return fmt.Errorf("generating event pair: %w", err)
	}
	va := make([]int, len(pair.Va))
	for i, v := range pair.Va {
		va[i] = int(v)
	}
	vb := make([]int, len(pair.Vb))
	for i, v := range pair.Vb {
		vb[i] = int(v)
	}

	// 2. register graph + events with a unique name per run.
	graphName := fmt.Sprintf("bench-%d", cfg.Seed)
	var edges strings.Builder
	if err := g.WriteGraph(&edges); err != nil {
		return err
	}
	if _, err := cl.RegisterGraph(ctx, api.RegisterGraphRequest{Name: graphName, EdgeList: edges.String()}); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	defer func() { _ = cl.DeleteGraph(ctx, graphName) }()
	if _, err := cl.RegisterEvents(ctx, graphName, api.RegisterEventsRequest{
		Events: map[string][]int{"bench-a": va, "bench-b": vb},
	}); err != nil {
		return fmt.Errorf("registering events: %w", err)
	}

	correlate := func(seed uint64) (elapsed time.Duration, verdict string, err error) {
		start := time.Now()
		res, err := cl.Correlate(ctx, graphName, api.CorrelateRequest{
			A: "bench-a", B: "bench-b",
			H:          cfg.H,
			SampleSize: cfg.SampleSize,
			Method:     cfg.Method,
			Seed:       seed,
		})
		if err != nil {
			return 0, "", err
		}
		return time.Since(start), res.Verdict, nil
	}

	// 3. warmup: the first query pays the index build (importance and
	// rejection methods); time it separately.
	warmStart := time.Now()
	if _, _, err := correlate(cfg.Seed); err != nil {
		return fmt.Errorf("warmup query: %w", err)
	}
	warmup := time.Since(warmStart)

	// 4. the timed run.
	latencies := make([]time.Duration, cfg.Requests)
	verdicts := make([]string, cfg.Requests)
	errs := make([]error, cfg.Requests)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < cfg.Requests; i++ {
			next <- i
		}
		close(next)
	}()
	wallStart := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				latencies[i], verdicts[i], errs[i] = correlate(cfg.Seed + 1 + uint64(i))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)

	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == cfg.Requests {
		return fmt.Errorf("all %d requests failed, first error: %w", failed, errs[0])
	}
	positives := 0
	ok := make([]time.Duration, 0, cfg.Requests)
	for i, err := range errs {
		if err == nil {
			ok = append(ok, latencies[i])
			if verdicts[i] == "positive" {
				positives++
			}
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(ok)-1))
		return ok[idx]
	}

	fmt.Fprintf(w, "== tescd load generation (%s) ==\n", cl.BaseURL())
	fmt.Fprintf(w, "graph: %d nodes, %d edges; events: %d + %d occurrences; h=%d n=%d method=%s\n",
		g.NumNodes(), g.NumEdges(), len(va), len(vb), cfg.H, cfg.SampleSize, cfg.Method)
	fmt.Fprintf(w, "warmup (incl. index build):   %12v\n", warmup.Round(time.Microsecond))
	fmt.Fprintf(w, "requests: %d  concurrency: %d  failed: %d\n", cfg.Requests, cfg.Concurrency, failed)
	fmt.Fprintf(w, "throughput:                   %12.1f queries/sec\n", float64(len(ok))/wall.Seconds())
	fmt.Fprintf(w, "latency p50 / p95 / p99:      %v / %v / %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Fprintf(w, "planted-positive recall:      %12.1f%%\n", 100*float64(positives)/float64(len(ok)))
	return nil
}
