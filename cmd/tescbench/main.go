// Command tescbench regenerates the tables and figures of the paper's
// evaluation section (§5) on the surrogate datasets.
//
// Usage:
//
//	tescbench -exp fig5            # one experiment
//	tescbench -exp all             # everything (minutes at default scale)
//	tescbench -exp table1 -dblp-scale 1.0 -pairs 100   # paper-sized
//
// Output is aligned text: one block per figure/table, directly
// comparable with the published plots (see EXPERIMENTS.md for the
// committed outputs and the paper-vs-measured discussion).
//
// With -serve, tescbench instead load-tests a running tescd daemon:
// it registers a synthetic graph with a planted attracting event pair,
// then fires concurrent correlate queries and reports queries/sec and
// latency percentiles.
//
//	tescd &
//	tescbench -serve http://localhost:8537 -serve-requests 500 -serve-concurrency 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tesc/internal/bench"
)

func main() {
	def := bench.DefaultConfig()
	var (
		exp        = flag.String("exp", "all", "experiment id ("+strings.Join(bench.IDs(), " | ")+" | all)")
		dblpScale  = flag.Float64("dblp-scale", def.DBLPScale, "DBLP surrogate scale (1.0 = ~100k nodes; paper ≈ 9.6)")
		intrNodes  = flag.Int("intrusion-nodes", def.IntrusionNodes, "Intrusion surrogate node count (paper: 200858)")
		twScaleExp = flag.Int("twitter-scale-exp", def.TwitterScaleExp, "Twitter surrogate R-MAT exponent (paper ≈ 24)")
		pairs      = flag.Int("pairs", def.Pairs, "event pairs per recall point (paper: 100)")
		sample     = flag.Int("n", def.SampleSize, "reference sample size (paper: 900)")
		reps       = flag.Int("reps", def.Reps, "repetitions for timing points (paper: 50)")
		seed       = flag.Uint64("seed", def.Seed, "random seed")
		workers    = flag.Int("workers", 0, "index-construction workers (0 = GOMAXPROCS)")

		topk      = flag.Bool("topk", false, "run the planner workload: top-k screening vs the exhaustive sweep on the K=32 (496-pair) surrogate, reporting full tests saved")
		topkScale = flag.Float64("topk-scale", 1.0, "coauthorship surrogate scale in -topk mode (1.0 = ~100k nodes)")
		topkH     = flag.Int("topk-h", 2, "vicinity level in -topk mode")
		topkKs    = flag.String("topk-k", "1,5,10,25", "comma-separated k ladder in -topk mode")

		churn        = flag.Bool("churn", false, "run the churn workload: FlipStream mutations against a standing monitor, reporting incremental vs full re-screen latency")
		churnScale   = flag.Float64("churn-scale", 1.0, "coauthorship surrogate scale in -churn mode (1.0 = ~100k nodes)")
		churnH       = flag.Int("churn-h", 2, "vicinity level in -churn mode")
		churnBatches = flag.Int("churn-batches", 50, "mutation batches in -churn mode")
		churnFlips   = flag.Int("churn-flips", 10, "edge flips per batch in -churn mode")
		churnOcc     = flag.Int("churn-occurrences", 500, "occurrences per event in -churn mode")
		churnRegion  = flag.Int("churn-region", 2000, "community-region size the events cluster in (-churn mode)")
		churnFsync   = flag.String("churn-fsync", "always,interval,off", "comma-separated WAL fsync policies to time in -churn mode (empty skips the WAL column)")
		soak         = flag.Duration("soak", 0, "run an in-process tescd soak for this duration: FlipStream mutations against live monitors (built for the nightly -race job)")
		soakRecover  = flag.Duration("soak-recover", 0, "run a kill-and-recover soak for this duration: a durable tescd is killed mid-stream and rebooted from snapshot+WAL in a loop, verifying epoch continuity each cycle")
		soakReplica  = flag.Duration("soak-replica", 0, "run a replication soak for this duration: two read replicas follow a churning primary through a faulty transport (drops, corruption, partitions) with crash-restarts, verifying convergence after every heal")

		overload       = flag.Bool("overload", false, "run the overload benchmark: an in-process tescd with tight admission bounds is measured unloaded and then flooded at 2x its foreground bound (plus background screens and a hog tenant), reporting accepted-latency percentiles and shed rates")
		overloadFG     = flag.Int("overload-fg", 2, "foreground in-flight bound in -overload mode")
		overloadBG     = flag.Int("overload-bg", 1, "background job bound in -overload mode")
		overloadQPS    = flag.Float64("overload-qps", 30, "per-tenant sustained QPS quota in -overload mode")
		overloadBurst  = flag.Float64("overload-burst", 10, "per-tenant burst allowance in -overload mode")
		overloadRounds = flag.Int("overload-rounds", 24, "requests per flood client in -overload mode")
		overloadNodes  = flag.Int("overload-nodes", 16000, "synthetic graph size in -overload mode")
		soakOverload   = flag.Duration("soak-overload", 0, "run an overload soak for this duration: cycles of flood burst + acked mutations + graceful drain + reboot, verifying typed sheds and exact acked-epoch recovery each cycle (built for the nightly -race job)")
		soakCluster    = flag.Duration("soak-cluster", 0, "run a cluster soak for this duration: a 3-member coordinator (owner + replica each) against a single-node oracle, with owner kills, replica-served reads, typed no_owner sheds, and snapshot+WAL rejoin each cycle; every read must be byte-equivalent to the oracle (built for the nightly -race job)")

		serve      = flag.String("serve", "", "load-test a running tescd daemon at this base URL instead of running experiments")
		serveReqs  = flag.Int("serve-requests", 200, "number of correlate queries in -serve mode")
		serveConc  = flag.Int("serve-concurrency", 8, "concurrent clients in -serve mode")
		serveNodes = flag.Int("serve-nodes", 20000, "synthetic graph size in -serve mode")
		serveOcc   = flag.Int("serve-occurrences", 100, "occurrences per synthetic event in -serve mode")
		serveH     = flag.Int("serve-h", 1, "vicinity level in -serve mode")
		serveMeth  = flag.String("serve-method", "importance", "sampling method in -serve mode (batch-bfs | importance | whole-graph | rejection)")
	)
	flag.Parse()

	if *topk {
		var ks []int
		for _, item := range splitList(*topkKs) {
			var k int
			if _, err := fmt.Sscanf(item, "%d", &k); err != nil || k < 1 {
				fmt.Fprintf(os.Stderr, "tescbench: bad -topk-k item %q\n", item)
				os.Exit(2)
			}
			ks = append(ks, k)
		}
		err := runPlanner(plannerConfig{
			Scale:      *topkScale,
			H:          *topkH,
			SampleSize: *sample,
			Ks:         ks,
			Workers:    *workers,
			Seed:       *seed,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *churn {
		err := runChurn(churnConfig{
			Scale:      *churnScale,
			H:          *churnH,
			SampleSize: *sample,
			Batches:    *churnBatches,
			Flips:      *churnFlips,
			Occ:        *churnOcc,
			Region:     *churnRegion,
			Seed:       *seed,
			Fsync:      splitList(*churnFsync),
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *soak > 0 {
		if err := runSoak(*soak, *seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *soakRecover > 0 {
		if err := runSoakRecover(*soakRecover, *seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *soakReplica > 0 {
		if err := runSoakReplica(*soakReplica, *seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *overload {
		err := runOverload(overloadConfig{
			FG:     *overloadFG,
			BG:     *overloadBG,
			QPS:    *overloadQPS,
			Burst:  *overloadBurst,
			Rounds: *overloadRounds,
			Nodes:  *overloadNodes,
			Seed:   *seed,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *soakOverload > 0 {
		if err := runSoakOverload(*soakOverload, *seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	if *soakCluster > 0 {
		if err := runSoakCluster(*soakCluster, *seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}

	if *serve != "" {
		err := runServe(serveConfig{
			BaseURL:     *serve,
			Requests:    *serveReqs,
			Concurrency: *serveConc,
			Nodes:       *serveNodes,
			Occurrences: *serveOcc,
			H:           *serveH,
			SampleSize:  *sample,
			Method:      *serveMeth,
			Seed:        *seed,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.Config{
		DBLPScale:       *dblpScale,
		IntrusionNodes:  *intrNodes,
		TwitterScaleExp: *twScaleExp,
		Pairs:           *pairs,
		SampleSize:      *sample,
		Reps:            *reps,
		Seed:            *seed,
		Workers:         *workers,
	}

	if *exp == "all" {
		if err := bench.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tescbench:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := bench.Registry[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "tescbench: unknown experiment %q (have: %s)\n", *exp, strings.Join(bench.IDs(), ", "))
		os.Exit(2)
	}
	if err := runner(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tescbench:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
