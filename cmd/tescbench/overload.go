package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tesc"
	"tesc/api"
	"tesc/internal/graphgen"
	"tesc/internal/server"
)

// overloadConfig parameterizes the -overload benchmark: an in-process
// tescd with deliberately tight admission bounds, measured unloaded
// and then under a 2x flood with background screens and a hog tenant,
// so the degradation ladder (typed sheds, per-tenant quotas, bounded
// foreground latency) is observable as numbers rather than prose.
type overloadConfig struct {
	FG     int // foreground concurrency bound (MaxInflightFG)
	BG     int // background job bound (MaxInflightBG)
	QPS    float64
	Burst  float64
	Rounds int // flood rounds per client
	Nodes  int
	Seed   uint64
}

// Every 429/503/504 carries the unified api.Error envelope (see
// docs/OVERLOAD.md); shed accounting keys on its machine code.

// overloadResult is one classified response: terminal status, the shed
// reason when typed, and the latency when accepted.
type overloadResult struct {
	status  int
	reason  string
	retryOK bool
	elapsed time.Duration
	body    string // raw reply, kept for violation diagnostics
}

// overloadPost fires one request with an optional tenant header and
// classifies the reply. Accepted replies (2xx) record latency; shed
// replies must carry the unified body and a Retry-After header or the
// caller treats them as protocol violations.
func overloadPost(client *http.Client, url, tenant string, body any) (overloadResult, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return overloadResult{}, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return overloadResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tesc-Tenant", tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return overloadResult{}, err
	}
	defer resp.Body.Close()
	out := overloadResult{status: resp.StatusCode, elapsed: time.Since(start)}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if len(raw) > 200 {
		out.body = string(raw[:200])
	} else {
		out.body = string(raw)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable ||
		resp.StatusCode == http.StatusGatewayTimeout {
		var tr api.Error
		if json.Unmarshal(raw, &tr) == nil && tr.Code != "" && tr.RetryAfterMS > 0 {
			out.reason = string(tr.Code)
		}
		out.retryOK = resp.Header.Get("Retry-After") != ""
	}
	return out, nil
}

// pctDur picks the p-quantile of a sorted latency slice.
func pctDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// runOverload is the -overload mode. Phase A measures the service
// unloaded; phase B floods it with 2x the foreground bound plus
// background screens plus one hog tenant, and the table at the end is
// the acceptance argument: accepted-foreground p99 stays within 2x of
// unloaded while the excess is shed with typed, Retry-After-stamped
// answers. Numbers from this run feed BENCH_pr9.json.
func runOverload(cfg overloadConfig, w io.Writer) error {
	if cfg.FG < 1 || cfg.BG < 1 {
		return fmt.Errorf("-overload-fg and -overload-bg must be >= 1 (got %d, %d)", cfg.FG, cfg.BG)
	}
	srv := server.New(server.Config{
		IndexCacheCapacity: 8,
		Admission: server.AdmissionConfig{
			MaxInflightFG: cfg.FG,
			MaxInflightBG: cfg.BG,
			TenantQPS:     cfg.QPS,
			TenantBurst:   cfg.Burst,
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A generous idle pool: the default transport keeps only two idle
	// connections per host, and the resulting handshake churn would
	// throttle the flood below the admission bounds it is meant to hit.
	client := &http.Client{
		Timeout: 2 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	base := ts.URL

	// Workload: a community graph big enough that a correlate query does
	// real sampling work, with event occurrences planted in two regions.
	g := tesc.RandomCommunityGraph(8, cfg.Nodes/8, 6, 0.5, cfg.Seed)
	var sb strings.Builder
	if err := g.WriteGraph(&sb); err != nil {
		return err
	}
	if err := postJSON(client, base+"/v1/graphs", map[string]any{"name": "ovl", "edge_list": sb.String()}, nil); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))
	region := cfg.Nodes / 8
	events := map[string][]int{}
	for e := 0; e < 8; e++ {
		ids := make([]int, 40)
		for i := range ids {
			ids[i] = e*region + rng.IntN(region)
		}
		events[fmt.Sprintf("e%d", e)] = ids
	}
	if err := postJSON(client, base+"/v1/graphs/ovl/events",
		map[string]any{"events": events}, nil); err != nil {
		return fmt.Errorf("registering events: %w", err)
	}

	correlateBody := func(seed uint64) map[string]any {
		// A unique seed per request keys a unique flight, so coalescing
		// never collapses the flood and every latency sample is a real
		// end-to-end evaluation.
		return map[string]any{
			"a": "e0", "b": "e1", "h": 3, "sample_size": 6000, "seed": seed,
		}
	}

	// Warmup pays the vicinity-index build once.
	if _, err := overloadPost(client, base+"/v1/graphs/ovl/correlate", "", correlateBody(1)); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	// Phase A: unloaded baseline at concurrency 1, paced just under the
	// per-tenant quota so nothing sheds and every sample is a clean
	// end-to-end latency.
	const baselineN = 60
	pace := time.Duration(float64(time.Second)/cfg.QPS) + time.Millisecond
	baseline := make([]time.Duration, 0, baselineN)
	for i := 0; i < baselineN; i++ {
		r, err := overloadPost(client, base+"/v1/graphs/ovl/correlate", "baseline", correlateBody(1000+uint64(i)))
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if r.status != http.StatusOK {
			return fmt.Errorf("baseline request shed with %d — admission bounds too tight for phase A", r.status)
		}
		baseline = append(baseline, r.elapsed)
		time.Sleep(pace)
	}
	sort.Slice(baseline, func(i, j int) bool { return baseline[i] < baseline[j] })

	// Phase B: flood. 2x the foreground bound in correlate clients, the
	// background bound x4 in screen submitters, one hog tenant hammering
	// with no pacing. Every response must be 200/202 or a typed shed.
	var (
		mu          sync.Mutex
		fgAccepted  []time.Duration
		shed        = map[string]int64{}
		shedByClass = map[string]int64{}
		bgAccepted  int64
		hogOK       int64
		violations  int64
	)
	record := func(r overloadResult, class string) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case r.status == http.StatusOK && class == "fg":
			fgAccepted = append(fgAccepted, r.elapsed)
		case r.status == http.StatusAccepted && class == "bg":
			bgAccepted++
		case r.reason != "" && r.retryOK:
			shed[r.reason]++
			shedByClass[class]++
		case r.status == http.StatusOK && class == "hog":
			hogOK++
		default:
			violations++
		}
	}

	var wg sync.WaitGroup
	floodStart := time.Now()
	var reqSeed atomic.Uint64
	reqSeed.Store(1 << 20)
	for c := 0; c < 2*cfg.FG; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// One tenant per client keeps everyone inside their quota:
			// what sheds here is the foreground concurrency gate, the
			// overload signal this phase is about.
			tenant := fmt.Sprintf("fg-%d", c)
			for i := 0; i < cfg.Rounds; i++ {
				r, err := overloadPost(client, base+"/v1/graphs/ovl/correlate", tenant, correlateBody(reqSeed.Add(1)))
				if err != nil {
					mu.Lock()
					violations++
					mu.Unlock()
					return
				}
				record(r, "fg")
			}
		}(c)
	}
	for c := 0; c < 4*cfg.BG; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < cfg.Rounds/2+1; i++ {
				r, err := overloadPost(client, base+"/v1/graphs/ovl/screen", fmt.Sprintf("bg-%d", c),
					map[string]any{"h": 1, "sample_size": 400, "min_occurrences": 1, "seed": uint64(c*1000 + i)})
				if err != nil {
					mu.Lock()
					violations++
					mu.Unlock()
					return
				}
				record(r, "bg")
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4*cfg.Rounds; i++ {
			r, err := overloadPost(client, base+"/v1/graphs/ovl/correlate", "hog", correlateBody(reqSeed.Add(1)))
			if err != nil {
				mu.Lock()
				violations++
				mu.Unlock()
				return
			}
			record(r, "hog")
		}
	}()
	wg.Wait()
	floodWall := time.Since(floodStart)

	// Let background jobs finish, then read the server-side SLO view.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv.Drain(drainCtx)
	var health struct {
		SLO map[string]any `json:"slo"`
	}
	if err := getJSON(client, base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	sort.Slice(fgAccepted, func(i, j int) bool { return fgAccepted[i] < fgAccepted[j] })
	bp50, bp95, bp99 := pctDur(baseline, 0.50), pctDur(baseline, 0.95), pctDur(baseline, 0.99)
	fp50, fp95, fp99 := pctDur(fgAccepted, 0.50), pctDur(fgAccepted, 0.95), pctDur(fgAccepted, 0.99)
	totalFG := int64(len(fgAccepted)) + shedByClass["fg"]
	shedRateFG := 100 * float64(shedByClass["fg"]) / float64(totalFG)
	totalBG := bgAccepted + shedByClass["bg"]
	shedRateBG := float64(0)
	if totalBG > 0 {
		shedRateBG = 100 * float64(shedByClass["bg"]) / float64(totalBG)
	}

	fmt.Fprintf(w, "== overload (fg=%d bg=%d qps=%.0f burst=%.0f, %d nodes, seed %d) ==\n",
		cfg.FG, cfg.BG, cfg.QPS, cfg.Burst, g.NumNodes(), cfg.Seed)
	fmt.Fprintf(w, "flood: %d fg clients x %d rounds, %d bg submitters, 1 hog tenant; wall %v\n",
		2*cfg.FG, cfg.Rounds, 4*cfg.BG, floodWall.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %12s %12s %12s %10s %10s\n", "phase", "p50", "p95", "p99", "accepted", "shed")
	fmt.Fprintf(w, "%-22s %12v %12v %12v %10d %10s\n", "unloaded correlate",
		bp50.Round(time.Microsecond), bp95.Round(time.Microsecond), bp99.Round(time.Microsecond), len(baseline), "-")
	fmt.Fprintf(w, "%-22s %12v %12v %12v %10d %9.1f%%\n", "flood fg accepted",
		fp50.Round(time.Microsecond), fp95.Round(time.Microsecond), fp99.Round(time.Microsecond), len(fgAccepted), shedRateFG)
	fmt.Fprintf(w, "%-22s %12s %12s %12s %10d %9.1f%%\n", "flood bg accepted", "-", "-", "-", bgAccepted, shedRateBG)
	fmt.Fprintf(w, "shed by reason:")
	reasons := make([]string, 0, len(shed))
	for r := range shed {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, " %s=%d", r, shed[r])
	}
	fmt.Fprintf(w, "\nhog tenant: %d ok, %d shed (quota isolates the polite tenants)\n", hogOK, shedByClass["hog"])
	fmt.Fprintf(w, "server slo: %v\n", health.SLO)

	if violations > 0 {
		return fmt.Errorf("overload: %d responses were neither accepted nor typed sheds with Retry-After", violations)
	}
	bound := 2 * bp99
	if floor := 250 * time.Millisecond; bound < floor {
		bound = floor
	}
	if fp99 > bound {
		return fmt.Errorf("overload: flood fg p99 %v exceeds 2x unloaded p99 bound %v", fp99, bound)
	}
	fmt.Fprintf(w, "acceptance: flood fg p99 %v <= bound %v (2x unloaded p99, 250ms floor); all sheds typed\n",
		fp99.Round(time.Microsecond), bound.Round(time.Microsecond))
	return nil
}

// runSoakOverload is the -soak-overload mode, built for the nightly
// -race job: cycles of flood burst + acked mutations + graceful drain +
// reboot, each cycle asserting that every response is typed, the drain
// retires all jobs, and recovery lands on exactly the acknowledged
// epoch. It composes the overload ladder with the durability contract:
// shedding under pressure must never cost an acknowledged write.
func runSoakOverload(d time.Duration, seed uint64, w io.Writer) error {
	dir, err := os.MkdirTemp("", "tescbench-soak-overload-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	boot := func() (*server.Server, *httptest.Server, error) {
		srv := server.New(server.Config{
			IndexCacheCapacity: 4,
			DataDir:            dir,
			// Stay on the WAL tail: recovery after every cycle must
			// replay, not ride a conveniently fresh snapshot.
			CheckpointDelay: time.Hour,
			FsyncPolicy:     "always",
			Admission: server.AdmissionConfig{
				MaxInflightFG: 4,
				MaxInflightBG: 1,
				TenantQPS:     50,
				TenantBurst:   10,
			},
		})
		if _, err := srv.LoadData(); err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv.Handler()), nil
	}

	srv, ts, err := boot()
	if err != nil {
		return err
	}
	g := tesc.RandomCommunityGraph(4, 400, 6, 0.5, seed)
	var sb strings.Builder
	if err := g.WriteGraph(&sb); err != nil {
		return err
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/graphs", map[string]any{"name": "ovl", "edge_list": sb.String()}, nil); err != nil {
		return fmt.Errorf("registering graph: %w", err)
	}
	occ := func(lo int) []int {
		ids := make([]int, 30)
		for i := range ids {
			ids[i] = lo + i
		}
		return ids
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/graphs/ovl/events",
		map[string]any{"events": map[string][]int{"ovl-a": occ(0), "ovl-b": occ(500)}}, nil); err != nil {
		return fmt.Errorf("registering events: %w", err)
	}
	reg, ok := srv.Registry().Get("ovl")
	if !ok {
		return fmt.Errorf("graph vanished after registration")
	}
	wantEpoch := reg.Epoch()

	rng := rand.New(rand.NewPCG(seed, seed^44))
	deadline := time.Now().Add(d)
	var cycles, floods, sheds, accepted, batches int64
	for {
		cycles++
		client := ts.Client()

		// 1. flood burst: mixed correlates (default + hog tenant) and
		// screens against the tight admission bounds. Every reply must be
		// an accept or a typed shed.
		var wg sync.WaitGroup
		var violations atomic.Int64
		var firstViolation atomic.Value
		violate := func(msg string) {
			violations.Add(1)
			firstViolation.CompareAndSwap(nil, msg)
		}
		var cShed, cOK atomic.Int64
		for c := 0; c < 12; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant := ""
				if c%3 == 0 {
					tenant = "hog"
				}
				for i := 0; i < 6; i++ {
					var r overloadResult
					var err error
					if c%4 == 3 {
						r, err = overloadPost(client, ts.URL+"/v1/graphs/ovl/screen", tenant,
							map[string]any{"h": 1, "sample_size": 150, "min_occurrences": 1, "seed": uint64(c*100 + i)})
					} else {
						r, err = overloadPost(client, ts.URL+"/v1/graphs/ovl/correlate", tenant,
							map[string]any{"a": "ovl-a", "b": "ovl-b", "h": 1, "sample_size": 200,
								"seed": uint64(cycles)<<20 | uint64(c)<<10 | uint64(i)})
					}
					if err != nil {
						violate(fmt.Sprintf("client %d: %v", c, err))
						return
					}
					switch {
					case r.status == http.StatusOK || r.status == http.StatusAccepted:
						cOK.Add(1)
					case r.reason != "" && r.retryOK:
						cShed.Add(1)
					default:
						violate(fmt.Sprintf("client %d: status %d reason %q retry-after %v body %q", c, r.status, r.reason, r.retryOK, r.body))
					}
				}
			}(c)
		}
		wg.Wait()
		if n := violations.Load(); n > 0 {
			return fmt.Errorf("cycle %d: %d untyped or failed responses under flood (first: %s)", cycles, n, firstViolation.Load())
		}
		floods += 12 * 6
		sheds += cShed.Load()
		accepted += cOK.Load()

		// 2. acked mutations: each acknowledged batch bumps the epoch by
		// exactly one; these are the writes drain+recovery must keep.
		entry, ok := srv.Registry().Get("ovl")
		if !ok {
			return fmt.Errorf("cycle %d: graph missing", cycles)
		}
		stream := graphgen.NewFlipStream(entry.Graph().Internal(), 0.5, rand.New(rand.NewPCG(seed^uint64(cycles), 3)))
		for i := 0; i < 3+rng.IntN(5); i++ {
			var ins, del [][2]int
			for _, c := range stream.Take(1 + rng.IntN(6)) {
				p := [2]int{int(c.U), int(c.V)}
				if c.Insert {
					ins = append(ins, p)
				} else {
					del = append(del, p)
				}
			}
			// The mutator runs under its own tenant: the flood just drained
			// the default bucket, and only acknowledged batches may count
			// toward the epoch the recovery check demands.
			r, err := overloadPost(client, ts.URL+"/v1/graphs/ovl/edges", "mutator",
				map[string]any{"insert": ins, "delete": del})
			if err != nil {
				return fmt.Errorf("cycle %d: edge batch: %w", cycles, err)
			}
			if r.status != http.StatusOK {
				return fmt.Errorf("cycle %d: edge batch got %d (reason %q)", cycles, r.status, r.reason)
			}
			wantEpoch++
			batches++
		}

		// 3. graceful drain: new work is refused with the typed
		// "draining" 503, jobs retire, and the WAL closes with every ack
		// on disk.
		srv.BeginDrain()
		r, err := overloadPost(client, ts.URL+"/v1/graphs/ovl/correlate", "",
			map[string]any{"a": "ovl-a", "b": "ovl-b", "h": 1, "sample_size": 100, "seed": uint64(cycles)})
		if err != nil {
			return fmt.Errorf("cycle %d: probe during drain: %w", cycles, err)
		}
		if r.status != http.StatusServiceUnavailable || r.reason != "draining" || !r.retryOK {
			return fmt.Errorf("cycle %d: drain probe got %d reason %q, want typed 503 draining", cycles, r.status, r.reason)
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		drained := srv.Drain(drainCtx)
		cancel()
		if !drained {
			return fmt.Errorf("cycle %d: drain did not retire all jobs in 30s", cycles)
		}
		ts.Close()
		srv.Close()

		// 4. reboot and verify the acked epoch survived.
		if srv, ts, err = boot(); err != nil {
			return fmt.Errorf("cycle %d: reboot: %w", cycles, err)
		}
		entry, ok = srv.Registry().Get("ovl")
		if !ok {
			return fmt.Errorf("cycle %d: graph lost across restart", cycles)
		}
		if got := entry.Epoch(); got != wantEpoch {
			return fmt.Errorf("cycle %d: recovered epoch %d, want %d — drain lost acknowledged mutations", cycles, got, wantEpoch)
		}

		if !time.Now().Before(deadline) {
			srv.Close()
			ts.Close()
			break
		}
	}
	if sheds == 0 {
		return fmt.Errorf("soak-overload: the flood never shed — bounds not exercised")
	}
	fmt.Fprintf(w, "== soak-overload (%v) ==\n", d)
	fmt.Fprintf(w, "cycles: %d; flood requests: %d (%d accepted, %d typed sheds); batches acked: %d; final epoch: %d\n",
		cycles, floods, accepted, sheds, batches, wantEpoch)
	fmt.Fprintf(w, "every cycle: all responses typed, drain retired all jobs, recovery replayed to the exact acked epoch\n")
	return nil
}
