// Command tescsnap builds, inspects and exports the binary snapshot
// files tescd warm-starts from (see docs/PERSISTENCE.md for the
// format). It is the operator-side converter between the text formats
// (edge lists, event files) and the checksummed on-disk form that
// loads in milliseconds with zero index builds.
//
// Usage:
//
//	tescsnap build -graph g.txt [-events ev.txt] [-levels 2] -o g.tescsnap
//	tescsnap inspect g.tescsnap
//	tescsnap export -graph out.txt [-events out-ev.txt] g.tescsnap
//
// build parses the text inputs, optionally precomputes the vicinity
// index for levels 1..-levels (the §4.2 offline step), and writes the
// snapshot atomically. inspect validates every checksum and structural
// invariant and prints a section-by-section summary. export converts a
// snapshot back to the text formats.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesc/internal/graphio"
	"tesc/internal/snapshot"
	"tesc/internal/vicinity"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tescsnap: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tescsnap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tescsnap build -graph g.txt [-events ev.txt] [-levels H] [-workers N] -o out.tescsnap
  tescsnap inspect file.tescsnap
  tescsnap export [-graph out.txt] [-events out.txt] file.tescsnap`)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("tescsnap build", flag.ExitOnError)
	var (
		graphPath  = fs.String("graph", "", "edge-list graph file (required, gzip-transparent)")
		eventsPath = fs.String("events", "", "optional event occurrence file")
		levels     = fs.Int("levels", 0, "precompute the vicinity index for levels 1..levels (0 = no index)")
		workers    = fs.Int("workers", 0, "index-construction workers (0 = GOMAXPROCS)")
		out        = fs.String("o", "", "output snapshot file (required)")
	)
	fs.Parse(args)
	if *graphPath == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("build requires -graph and -o")
	}
	gf, err := graphio.OpenMaybeGzip(*graphPath)
	if err != nil {
		return err
	}
	g, err := graphio.ReadEdgeList(gf)
	gf.Close()
	if err != nil {
		return err
	}
	snap := &snapshot.Snapshot{Graph: g}
	if *eventsPath != "" {
		ef, err := graphio.OpenMaybeGzip(*eventsPath)
		if err != nil {
			return err
		}
		store, err := graphio.ReadEvents(ef, g.NumNodes())
		ef.Close()
		if err != nil {
			return err
		}
		snap.Store = store
	}
	if *levels > 0 {
		fmt.Fprintf(os.Stderr, "building vicinity index (levels 1..%d)...\n", *levels)
		idx, err := vicinity.Build(g, *levels, vicinity.Options{Workers: *workers})
		if err != nil {
			return err
		}
		snap.Indexes = []*vicinity.Index{idx}
	}
	if _, err := snapshot.SaveFile(*out, snap); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes, %d nodes, %d edges", *out, st.Size(), g.NumNodes(), g.NumEdges())
	if snap.Store != nil {
		fmt.Printf(", %d events", snap.Store.NumEvents())
	}
	if *levels > 0 {
		fmt.Printf(", index h<=%d", *levels)
	}
	fmt.Println()
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("tescsnap inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("inspect takes one snapshot file")
	}
	path := fs.Arg(0)
	info, err := snapshot.InspectFile(path)
	if err != nil {
		return err
	}
	snap := info.Snapshot
	fmt.Printf("%s: format v%d, %d sections, all checksums ok\n", path, info.FormatVersion, len(info.Sections))
	for _, s := range info.Sections {
		fmt.Printf("  %s  %10d bytes  crc32 %08x\n", s.Tag, s.Bytes, s.CRC)
	}
	dir := "undirected"
	if snap.Graph.Directed() {
		dir = "directed"
	}
	fmt.Printf("graph      %d nodes, %d edges (%s)\n", snap.Graph.NumNodes(), snap.Graph.NumEdges(), dir)
	fmt.Printf("meta       epoch %d, graph version %d\n", snap.Epoch, snap.GraphVersion)
	if snap.Store != nil {
		fmt.Printf("events     %d events (store epoch %d)\n", snap.Store.NumEvents(), snap.Store.Epoch())
	} else {
		fmt.Println("events     none")
	}
	for _, idx := range snap.Indexes {
		fmt.Printf("index      vicinity levels 1..%d\n", idx.MaxLevel())
	}
	for _, st := range snap.Monitors {
		fmt.Printf("monitor    %s: %q vs %q h=%d policy=%s (%d history entries)\n",
			st.Def.ID, st.Def.A, st.Def.B, st.Def.H, st.Def.Mode, len(st.History))
	}
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("tescsnap export", flag.ExitOnError)
	var (
		graphOut  = fs.String("graph", "", "write the graph as a text edge list here")
		eventsOut = fs.String("events", "", "write the events in ReadEvents format here")
	)
	fs.Parse(args)
	if fs.NArg() != 1 || (*graphOut == "" && *eventsOut == "") {
		fs.Usage()
		return fmt.Errorf("export takes one snapshot file and at least one of -graph/-events")
	}
	snap, err := snapshot.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *graphOut != "" {
		f, err := graphio.CreateMaybeGzip(*graphOut)
		if err != nil {
			return err
		}
		if err := graphio.WriteEdgeList(f, snap.Graph); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d nodes, %d edges\n", *graphOut, snap.Graph.NumNodes(), snap.Graph.NumEdges())
	}
	if *eventsOut != "" {
		if snap.Store == nil {
			return fmt.Errorf("snapshot has no events section")
		}
		f, err := graphio.CreateMaybeGzip(*eventsOut)
		if err != nil {
			return err
		}
		if err := graphio.WriteEvents(f, snap.Store); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d events\n", *eventsOut, snap.Store.NumEvents())
	}
	return nil
}
