package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tesc/internal/core
cpu: Intel(R) Xeon(R)
BenchmarkDensityPhaseFlat-8   	    2769	    452044 ns/op	      12 B/op	       3 allocs/op
BenchmarkDensityPhaseFlat-8   	    2800	    449000 ns/op	      12 B/op	       3 allocs/op
BenchmarkDensityPhaseFlat-8   	    2700	    460111 ns/op	      12 B/op	       3 allocs/op
PASS
ok  	tesc/internal/core	5.1s
pkg: tesc/internal/graph
BenchmarkCollect-8       	    9399	    127708 ns/op
BenchmarkEnginePool-8    	 1000000	      1113 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tesc/internal/graph	3.3s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"tesc/internal/core.BenchmarkDensityPhaseFlat": 449000, // min of 3 runs
		"tesc/internal/graph.BenchmarkCollect":         127708,
		"tesc/internal/graph.BenchmarkEnginePool":      1113,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRenderTableStatuses(t *testing.T) {
	rows := []row{
		{key: "a", base: 100, ns: 300, ratio: 3, status: "REGRESSION"},
		{key: "b", base: 100, ns: 115, ratio: 1.15, status: "warn"},
		{key: "c", base: 100, ns: 100, ratio: 1, status: "ok"},
		{key: "d", ns: 50, status: "new"},
		{key: "e", base: 100, status: "MISSING"},
	}
	table := renderTable(rows, 1.25, 1.10, 2, 1)
	for _, want := range []string{"REGRESSION", "warn", "| ok |", "| new |", "MISSING", "+200.0%", "2 regression(s), 1 warning(s)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
