// Command benchdiff compares `go test -bench` output against a
// committed ns/op baseline and gates CI on regressions: a benchmark
// more than the fail threshold slower than its baseline (default
// +25%) fails the run, one between the warn and fail thresholds
// (default +10%..+25%) is soft-warned into the summary.
//
// Benchmarks are keyed by package + name (GOMAXPROCS suffix stripped)
// and folded with min over repeated runs (-count=N), which is the
// right estimator for a noisy CI box: the minimum is the run least
// disturbed by neighbors, and a genuine regression raises the minimum.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=2s -count=3 ./... | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json bench.txt
//	benchdiff -baseline BENCH_baseline.json -update bench.txt   # refresh
//	benchdiff -baseline BENCH_baseline.json -summary "$GITHUB_STEP_SUMMARY" bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Baseline is the committed reference file.
type Baseline struct {
	Generated string `json:"generated"`
	Go        string `json:"go"`
	Command   string `json:"command"`
	// Benchmarks maps "pkg.BenchmarkName" to baseline ns/op (min over
	// the runs that produced the file).
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// parseBench extracts min ns/op per benchmark key from go test -bench
// output. The "pkg:" header lines qualify benchmark names, so the same
// benchmark name in two packages cannot collide.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines: name, iterations, value, "ns/op", ...
		if len(fields) < 4 {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx-1], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op %q in line %q", fields[nsIdx-1], line)
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines survive core-count
		// changes in name only (the numbers still move, the key not).
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		if prev, ok := out[key]; !ok || ns < prev {
			out[key] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found in input")
	}
	return out, nil
}

type row struct {
	key      string
	base, ns float64
	ratio    float64
	status   string
}

func main() {
	var (
		baselinePath = ""
		update       = false
		summaryPath  = ""
		failThresh   = 1.25
		warnThresh   = 1.10
	)
	args := os.Args[1:]
	var inputs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-baseline":
			i++
			if i >= len(args) {
				usage("missing -baseline value")
			}
			baselinePath = args[i]
		case "-update":
			update = true
		case "-summary":
			i++
			if i >= len(args) {
				usage("missing -summary value")
			}
			summaryPath = args[i]
		case "-fail-threshold":
			i++
			if i >= len(args) {
				usage("missing -fail-threshold value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v <= 1 {
				usage("bad -fail-threshold (want > 1)")
			}
			failThresh = v
		case "-warn-threshold":
			i++
			if i >= len(args) {
				usage("missing -warn-threshold value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v <= 1 {
				usage("bad -warn-threshold (want > 1)")
			}
			warnThresh = v
		case "-h", "-help", "--help":
			usage("")
		default:
			if strings.HasPrefix(args[i], "-") {
				usage("unknown flag " + args[i])
			}
			inputs = append(inputs, args[i])
		}
	}
	if baselinePath == "" {
		usage("-baseline is required")
	}
	if warnThresh > failThresh {
		usage("-warn-threshold must be <= -fail-threshold")
	}

	var in io.Reader = os.Stdin
	if len(inputs) == 1 {
		f, err := os.Open(inputs[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if len(inputs) > 1 {
		usage("at most one input file")
	}
	measured, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	if update {
		b := Baseline{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			Go:         runtime.Version(),
			Command:    "go test -run='^$' -bench=. -benchtime=2s -count=3 (min ns/op per benchmark)",
			Benchmarks: measured,
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %s with %d benchmarks\n", baselinePath, len(measured))
		return
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("benchdiff: parsing %s: %w", baselinePath, err))
	}

	var rows []row
	regressions, warnings := 0, 0
	for key, ns := range measured {
		r := row{key: key, ns: ns}
		if b, ok := base.Benchmarks[key]; ok && b > 0 {
			r.base = b
			r.ratio = ns / b
			switch {
			case r.ratio > failThresh:
				r.status = "REGRESSION"
				regressions++
			case r.ratio > warnThresh:
				r.status = "warn"
				warnings++
			case r.ratio < 1/failThresh:
				r.status = "improved"
			default:
				r.status = "ok"
			}
		} else {
			r.status = "new"
		}
		rows = append(rows, r)
	}
	for key := range base.Benchmarks {
		if _, ok := measured[key]; !ok {
			// Fail closed: a benchmark the baseline pins that no longer
			// runs means the hot path is silently ungated (renamed,
			// deleted, or filtered out). Intentional removals refresh
			// the baseline with -update.
			rows = append(rows, row{key: key, base: base.Benchmarks[key], status: "MISSING"})
			regressions++
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })

	table := renderTable(rows, failThresh, warnThresh, regressions, warnings)
	fmt.Print(table)
	if summaryPath != "" {
		f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatal(err)
		}
		if _, err := f.WriteString(table); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% or went missing\n", regressions, (failThresh-1)*100)
		os.Exit(1)
	}
}

func renderTable(rows []row, failThresh, warnThresh float64, regressions, warnings int) string {
	var sb strings.Builder
	sb.WriteString("### Benchmark regression gate\n\n")
	fmt.Fprintf(&sb, "Thresholds: fail > +%.0f%%, warn > +%.0f%% (ns/op vs baseline, min over runs)\n\n",
		(failThresh-1)*100, (warnThresh-1)*100)
	sb.WriteString("| benchmark | baseline ns/op | current ns/op | delta | status |\n")
	sb.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		delta := "—"
		baseStr, nsStr := "—", "—"
		if r.base > 0 {
			baseStr = fmt.Sprintf("%.0f", r.base)
		}
		if r.ns > 0 {
			nsStr = fmt.Sprintf("%.0f", r.ns)
		}
		if r.ratio > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.ratio-1)*100)
		}
		status := r.status
		if status == "REGRESSION" {
			status = "❌ REGRESSION"
		} else if status == "MISSING" {
			status = "❌ MISSING (baseline benchmark not run; refresh with -update if removal was intended)"
		} else if status == "warn" {
			status = "⚠️ warn"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n", r.key, baseStr, nsStr, delta, status)
	}
	fmt.Fprintf(&sb, "\n%d regression(s), %d warning(s)\n", regressions, warnings)
	return sb.String()
}

func usage(msg string) {
	if msg != "" {
		fmt.Fprintln(os.Stderr, "benchdiff:", msg)
	}
	fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline FILE [-update] [-summary FILE] [-fail-threshold 1.25] [-warn-threshold 1.10] [bench.txt]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
