// Command tescgen generates the synthetic surrogate graphs and event
// workloads used throughout the reproduction, writing them in the text
// formats the tesc command consumes.
//
// Usage:
//
//	tescgen -kind dblp -scale 0.2 -out graph.txt -events events.txt
//	tescgen -kind intrusion -nodes 20000 -out graph.txt
//	tescgen -kind twitter -scale-exp 17 -out graph.txt
//
// With -events set, a pair of positively correlated events ("pos-a",
// "pos-b") and a pair of negatively correlated events ("neg-a", "neg-b")
// are simulated on the generated graph per the paper's §5.2 methodology.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/graphio"
	"tesc/internal/simulate"
)

func main() {
	var (
		kind     = flag.String("kind", "dblp", "graph kind: dblp | intrusion | twitter | er")
		scale    = flag.Float64("scale", 0.2, "DBLP surrogate scale (1.0 = ~100k nodes)")
		nodes    = flag.Int("nodes", 20000, "node count for intrusion/er kinds")
		scaleExp = flag.Int("scale-exp", 15, "R-MAT exponent for twitter kind (nodes = 2^exp)")
		out      = flag.String("out", "", "output graph file (required)")
		evOut    = flag.String("events", "", "optional output event file with simulated correlated pairs")
		h        = flag.Int("h-level", 1, "vicinity level for simulated event pairs")
		occ      = flag.Int("occurrences", 0, "occurrences per simulated event (default 0.5% of nodes)")
		seed     = flag.Uint64("seed", 1, "random seed")
		binary   = flag.Bool("binary", false, "write the compact binary graph format instead of text")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*kind, *scale, *nodes, *scaleExp, *out, *evOut, *h, *occ, *seed, *binary); err != nil {
		fmt.Fprintln(os.Stderr, "tescgen:", err)
		os.Exit(1)
	}
}

func run(kind string, scale float64, nodes, scaleExp int, out, evOut string, h, occ int, seed uint64, binary bool) error {
	rng := rand.New(rand.NewPCG(seed, 0x6e6))
	var g *graph.Graph
	switch kind {
	case "dblp":
		g = graphgen.Coauthorship(graphgen.DefaultCoauthorship(scale), rng)
	case "intrusion":
		g = graphgen.Intrusion(graphgen.DefaultIntrusion(nodes), rng)
	case "twitter":
		g = graphgen.RMAT(graphgen.DefaultTwitterSurrogate(scaleExp), rng)
	case "er":
		g = graphgen.ErdosRenyi(nodes, int64(nodes)*4, rng)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	f, err := graphio.CreateMaybeGzip(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if binary {
		err = graphio.WriteBinary(f, g)
	} else {
		err = graphio.WriteEdgeList(f, g)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", out, g.NumNodes(), g.NumEdges())

	if evOut == "" {
		return nil
	}
	if occ <= 0 {
		occ = g.NumNodes() / 200
		if occ < 60 {
			occ = 60
		}
	}
	cfg := simulate.Config{H: h, Occurrences: occ}
	pos, err := simulate.PositivePair(g, cfg, rng)
	if err != nil {
		return fmt.Errorf("simulating positive pair: %w", err)
	}
	neg, err := simulate.NegativePair(g, cfg, rng)
	if err != nil {
		return fmt.Errorf("simulating negative pair: %w", err)
	}
	b := events.NewBuilder(g.NumNodes())
	b.AddAll("pos-a", pos.Va)
	b.AddAll("pos-b", pos.Vb)
	b.AddAll("neg-a", neg.Va)
	b.AddAll("neg-b", neg.Vb)

	ef, err := graphio.CreateMaybeGzip(evOut)
	if err != nil {
		return err
	}
	defer ef.Close()
	if err := graphio.WriteEvents(ef, b.Build()); err != nil {
		return err
	}
	fmt.Printf("wrote %s: events pos-a/pos-b (h=%d attraction), neg-a/neg-b (h=%d repulsion), %d occurrences each\n",
		evOut, h, h, occ)
	return nil
}
