// Command tesc runs a TESC (Two-Event Structural Correlation) test
// between two events on a graph read from disk.
//
// Usage:
//
//	tesc -graph g.txt -events ev.txt -a wireless -b sensor -h-level 1
//	tesc -snapshot g.tescsnap -a wireless -b sensor -h-level 2 -method importance
//
// The graph file is a whitespace edge list ("u v" per line, optional
// "# nodes N" header); the events file holds "event<TAB>node" records.
// Alternatively -snapshot loads both — plus any precomputed vicinity
// index, which the importance and rejection methods then reuse instead
// of rebuilding — from a binary snapshot file (see tescsnap and
// docs/PERSISTENCE.md). The tool prints the estimated τ, z-score,
// p-value and verdict, plus the Transaction Correlation baseline for
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesc/internal/baseline"
	"tesc/internal/core"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphio"
	"tesc/internal/snapshot"
	"tesc/internal/stats"
	"tesc/internal/vicinity"

	"math/rand/v2"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list graph file (required unless -snapshot)")
		eventsPath = flag.String("events", "", "event occurrence file (required unless -snapshot)")
		snapPath   = flag.String("snapshot", "", "binary snapshot file holding graph, events and index (replaces -graph/-events)")
		eventA     = flag.String("a", "", "first event name (required)")
		eventB     = flag.String("b", "", "second event name (required)")
		hLevel     = flag.Int("h-level", 1, "vicinity level h")
		n          = flag.Int("n", 900, "reference-node sample size")
		method     = flag.String("method", "batch-bfs", "sampling method: batch-bfs | importance | whole-graph | rejection")
		batch      = flag.Int("importance-batch", 1, "reference nodes per vicinity for importance sampling")
		alpha      = flag.Float64("alpha", 0.05, "significance level")
		tail       = flag.String("tail", "both", "alternative hypothesis: both | positive | negative")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	usable := *snapPath != "" || (*graphPath != "" && *eventsPath != "")
	if !usable || *eventA == "" || *eventB == "" || (*snapPath != "" && (*graphPath != "" || *eventsPath != "")) {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *eventsPath, *snapPath, *eventA, *eventB, *hLevel, *n, *method, *batch, *alpha, *tail, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tesc:", err)
		os.Exit(1)
	}
}

// loadInputs reads the graph, event store and (snapshot only) any
// precomputed vicinity index from the chosen source.
func loadInputs(graphPath, eventsPath, snapPath string) (*graph.Graph, *events.Store, []*vicinity.Index, string, error) {
	if snapPath != "" {
		snap, err := snapshot.LoadFile(snapPath)
		if err != nil {
			return nil, nil, nil, "", err
		}
		if snap.Store == nil {
			return nil, nil, nil, "", fmt.Errorf("snapshot %s has no events section", snapPath)
		}
		return snap.Graph, snap.Store, snap.Indexes, snapPath, nil
	}
	gf, err := graphio.OpenMaybeGzip(graphPath)
	if err != nil {
		return nil, nil, nil, "", err
	}
	g, err := graphio.ReadEdgeList(gf)
	gf.Close()
	if err != nil {
		return nil, nil, nil, "", err
	}
	ef, err := graphio.OpenMaybeGzip(eventsPath)
	if err != nil {
		return nil, nil, nil, "", err
	}
	store, err := graphio.ReadEvents(ef, g.NumNodes())
	ef.Close()
	if err != nil {
		return nil, nil, nil, "", err
	}
	return g, store, nil, graphPath, nil
}

func run(graphPath, eventsPath, snapPath, eventA, eventB string, h, n int, method string, batch int, alpha float64, tail string, seed uint64) error {
	g, store, indexes, source, err := loadInputs(graphPath, eventsPath, snapPath)
	if err != nil {
		return err
	}
	for _, name := range []string{eventA, eventB} {
		if !store.Has(name) {
			return fmt.Errorf("event %q not in %s (known events: %d)", name, source, store.NumEvents())
		}
	}

	p, err := core.NewProblem(g, store.Set(eventA), store.Set(eventB))
	if err != nil {
		return err
	}
	// intensity-weighted densities when the event file carries a third
	// column (§6 extension)
	if store.Weighted(eventA) || store.Weighted(eventB) {
		if err := p.SetIntensities(store.IntensityVector(eventA), store.IntensityVector(eventB)); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "using intensity-weighted densities")
	}

	var sampler core.Sampler
	switch method {
	case "batch-bfs":
		sampler = &core.BatchBFSSampler{}
	case "whole-graph":
		sampler = &core.WholeGraphSampler{}
	case "importance", "rejection":
		var idx *vicinity.Index
		for _, cand := range indexes {
			if cand.MaxLevel() >= h {
				idx = cand
				fmt.Fprintf(os.Stderr, "using snapshot vicinity index (levels 1..%d)\n", cand.MaxLevel())
				break
			}
		}
		if idx == nil {
			fmt.Fprintf(os.Stderr, "building vicinity index (levels 1..%d)...\n", h)
			if idx, err = vicinity.BuildForNodes(g, p.EventNodes(), h, vicinity.Options{}); err != nil {
				return err
			}
		}
		if method == "importance" {
			sampler = &core.ImportanceSampler{Index: idx, BatchSize: batch}
		} else {
			sampler = &core.RejectionSampler{Index: idx}
		}
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	var alt stats.Alternative
	switch tail {
	case "both":
		alt = stats.TwoSided
	case "positive":
		alt = stats.Greater
	case "negative":
		alt = stats.Less
	default:
		return fmt.Errorf("unknown tail %q", tail)
	}

	res, err := core.Test(p, core.Options{
		H:           h,
		SampleSize:  n,
		Sampler:     sampler,
		Alternative: alt,
		Alpha:       alpha,
		Rand:        rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	})
	if err != nil {
		return err
	}

	fmt.Printf("graph          %s (%d nodes, %d edges)\n", source, g.NumNodes(), g.NumEdges())
	fmt.Printf("events         %s (%d occurrences) vs %s (%d occurrences)\n",
		eventA, store.Count(eventA), eventB, store.Count(eventB))
	fmt.Printf("vicinity level h=%d   sample n=%d   sampler=%s\n", h, res.N, res.SamplerName)
	fmt.Printf("tau            %+.4f\n", res.Tau)
	fmt.Printf("z-score        %+.3f\n", res.Z)
	fmt.Printf("p-value        %.4g (%s-tailed)\n", res.P, tail)
	fmt.Printf("verdict        %s (alpha=%g)\n", res.Verdict(), alpha)

	tc, err := baseline.TransactionCorrelation(store.Set(eventA), store.Set(eventB))
	if err == nil {
		fmt.Printf("TC baseline    tau_b=%+.4f z=%+.3f\n", tc.TauB, tc.Z)
	}
	return nil
}
