package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tesc/internal/cluster"
)

// runCoordinator serves the coordinator tier: the single-node API,
// answered by routing to the configured members (see docs/CLUSTER.md).
func runCoordinator(addr, peers, topoFile string, probeIvl time.Duration, failThresh int, maxLag uint64, quiet bool, logger *log.Logger) error {
	var top cluster.Topology
	var err error
	switch {
	case peers != "" && topoFile != "":
		return fmt.Errorf("-peers and -topology are mutually exclusive")
	case peers != "":
		top, err = cluster.ParsePeers(peers)
	case topoFile != "":
		top, err = cluster.LoadTopology(topoFile)
	default:
		return fmt.Errorf("-coordinator needs -peers or -topology")
	}
	if err != nil {
		return err
	}

	cfg := cluster.Config{
		Topology:      top,
		ProbeInterval: probeIvl,
		FailThreshold: failThresh,
		MaxLagEpochs:  maxLag,
	}
	if !quiet {
		cfg.Log = logger
	}
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go coord.Run(ctx)

	hs := &http.Server{Addr: addr, Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("coordinating %d member(s), listening on %s", len(top.Members), addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutCtx)
}
