// Command tescd is a long-running TESC query service for evolving
// graphs. It amortizes the expensive offline steps — loading a graph,
// building the vicinity-size index — across many cheap online queries:
// graphs are registered once and queried over HTTP/JSON, vicinity
// indexes are cached per (graph, h) with single-flight construction,
// and all-pairs screening sweeps run as asynchronous jobs with
// progress polling.
//
// Registered graphs mutate live: edge batches and event add/removes
// publish epoch snapshots (every query sees one consistent version),
// and cached vicinity indexes are repaired incrementally across edge
// mutations — bounded BFS around the flipped edges, per the §4.2
// locality argument — instead of being rebuilt.
//
// With -data, tescd is durable: at boot it warm-starts from the
// directory's *.tescsnap snapshot files — graphs, event stores, epoch
// stamps and precomputed vicinity indexes all come back from disk, so
// the first query runs with zero index builds — and mutated graphs are
// checkpointed back in the background (atomic temp-file + rename; see
// docs/PERSISTENCE.md). Build snapshots offline with tescsnap, or let
// the daemon write them itself.
//
// Usage:
//
//	tescd -addr :8537
//	tescd -data /var/lib/tescd
//	tescd -load social=graph.txt -load-events social=events.txt
//	tescd -cache 16 -workers 8
//	tescd -pprof 127.0.0.1:6060   # opt-in profiling, loopback only
//	tescd -data /var/lib/replica -follow http://primary:8537   # read replica
//
// With -coordinator, tescd serves no graphs itself: it routes the same
// API across a cluster of nodes, placing each graph on an owner member
// by rendezvous hashing, proxying mutations to owners and fanning reads
// across owners and their replicas (see docs/CLUSTER.md):
//
//	tescd -coordinator -peers n1=http://h1:8537+http://h1r:8538,n2=http://h2:8537
//	tescd -coordinator -topology /etc/tescd/topology.json
//
// See docs/API.md for the endpoint reference, e.g.:
//
//	curl -X POST localhost:8537/v1/graphs \
//	     -d '{"name":"social","path":"graph.txt"}'
//	curl -X POST localhost:8537/v1/graphs/social/correlate \
//	     -d '{"a":"wireless","b":"sensor","h":1,"method":"importance"}'
//	curl -X POST localhost:8537/v1/graphs/social/edges \
//	     -d '{"insert":[[0,10]],"delete":[[4,5]]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tesc"
	"tesc/internal/graphio"
	"tesc/internal/replica"
	"tesc/internal/server"
	"tesc/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8537", "HTTP listen address")
		cache     = flag.Int("cache", 8, "vicinity-index cache capacity (indexes, across all graphs and levels)")
		workers   = flag.Int("workers", 0, "index-construction workers (0 = GOMAXPROCS)")
		quiet     = flag.Bool("quiet", false, "disable request logging")
		dataDir   = flag.String("data", "", "data directory: warm-start from its *.tescsnap files and WAL tail at boot, log mutations, checkpoint mutated graphs back")
		ckptDelay = flag.Duration("checkpoint-delay", 2*time.Second, "debounce between a mutation and its background checkpoint (with -data)")
		fsync     = flag.String("fsync", "always", "WAL durability: always (fsync per acknowledged mutation), interval (group fsync), off (OS page cache only)")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "group-fsync period with -fsync interval")
		walSeg    = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment size before rotation")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof diagnostics on this address (off by default; bind loopback only, e.g. 127.0.0.1:6060 — the profiler exposes heap contents and must never face untrusted networks)")
		follow    = flag.String("follow", "", "run as a read replica of the primary at this base URL (e.g. http://primary:8537): bootstrap from its snapshots, stream its WAL, serve reads; mutation endpoints return 403")
		followIvl = flag.Duration("follow-poll", 500*time.Millisecond, "poll interval between replication sync rounds (with -follow)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator: serve the same API by routing to the members in -peers or -topology instead of computing locally")
		peers       = flag.String("peers", "", "cluster members as name=ownerURL[+replicaURL...],... (with -coordinator)")
		topoFile    = flag.String("topology", "", "path to a JSON topology file {\"members\":[{\"name\",\"url\",\"replicas\"}]} (with -coordinator; alternative to -peers)")
		probeIvl    = flag.Duration("probe-interval", time.Second, "health-probe period per cluster endpoint (with -coordinator)")
		failThresh  = flag.Int("fail-threshold", 3, "consecutive probe failures before an endpoint is ejected from routing (with -coordinator)")
		maxLag      = flag.Uint64("max-lag-epochs", 8, "replicas reporting more replication lag than this are not read-eligible (with -coordinator)")

		maxFG        = flag.Int("max-inflight-fg", 0, "max concurrently executing foreground requests (correlate, point reads, mutations); 0 = default (256), negative = unlimited")
		maxBG        = flag.Int("max-inflight-bg", 0, "max concurrently executing background tasks (screen jobs, monitor work, checkpoints); 0 = default (GOMAXPROCS, min 4), negative = unlimited")
		tenantQPS    = flag.Float64("tenant-qps", 0, "per-tenant token-bucket quota in requests/second (tenant from the X-Tesc-Tenant header or the graph-name prefix); 0 = unlimited")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant bucket capacity with -tenant-qps; 0 = max(2x qps, 1)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain window on SIGTERM: in-flight requests get this long before remaining jobs are cancelled and the WAL is flushed")
	)
	var loads, eventLoads []string
	flag.Func("load", "preload a graph at startup as name=edgelist-path (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Func("load-events", "preload events at startup as graphname=events-path (repeatable)", func(v string) error {
		eventLoads = append(eventLoads, v)
		return nil
	})
	flag.Parse()

	logger := log.New(os.Stderr, "tescd: ", log.LstdFlags)
	if *coordinator {
		if err := runCoordinator(*addr, *peers, *topoFile, *probeIvl, *failThresh, *maxLag, *quiet, logger); err != nil {
			logger.Fatal(err)
		}
		return
	}
	if *peers != "" || *topoFile != "" {
		logger.Fatal("-peers/-topology require -coordinator")
	}
	if _, err := wal.ParsePolicy(*fsync); err != nil {
		logger.Fatalf("-fsync: %v", err)
	}
	adm := server.AdmissionConfig{
		MaxInflightFG: *maxFG,
		MaxInflightBG: *maxBG,
		TenantQPS:     *tenantQPS,
		TenantBurst:   *tenantBurst,
		DrainTimeout:  *drainTimeout,
	}
	if err := adm.Normalize(); err != nil {
		logger.Fatalf("admission flags: %v", err)
	}
	cfg := server.Config{
		IndexCacheCapacity: *cache,
		IndexWorkers:       *workers,
		DataDir:            *dataDir,
		CheckpointDelay:    *ckptDelay,
		FsyncPolicy:        *fsync,
		FsyncInterval:      *fsyncIvl,
		WALSegmentBytes:    *walSeg,
		ReadOnly:           *follow != "",
		Admission:          adm,
	}
	if !*quiet {
		cfg.Log = logger
	}
	srv := server.New(cfg)

	if *dataDir != "" {
		loaded, err := srv.LoadData()
		if err != nil {
			logger.Fatalf("-data %s: %v", *dataDir, err)
		}
		logger.Printf("warm start: restored %d graph(s) from %s", loaded, *dataDir)
	}
	preloaded, err := preload(srv, loads, eventLoads, logger)
	if err != nil {
		logger.Fatal(err)
	}
	if *dataDir != "" {
		// Preloaded graphs register outside the HTTP durability path;
		// checkpoint them synchronously so they exist on disk before the
		// listener starts — otherwise their WAL records would replay
		// against nothing after a crash.
		for _, name := range preloaded {
			if _, err := srv.Checkpoint(name); err != nil {
				logger.Fatalf("checkpointing preloaded graph %q: %v", name, err)
			}
		}
	}

	if *pprofAddr != "" {
		// Separate listener so profiling never shares a port (or an
		// exposure surface) with the query API. DefaultServeMux carries
		// the /debug/pprof/* handlers registered by the pprof import.
		go func() {
			logger.Printf("pprof listening on %s (keep loopback-only)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *follow != "" {
		// Follower mode: a background loop streams the primary's WAL
		// into this server's registry through the same mutation path
		// live requests use. With -data the follower is durable — its
		// local WAL replayed above, the replication cursor resumes from
		// its last save and the epoch gate deduplicates the overlap.
		f := replica.New(
			&replica.HTTPTransport{Base: strings.TrimRight(*follow, "/")},
			srv.FollowerState(),
			&replica.Options{Logf: logger.Printf},
		)
		srv.AttachFollower(f)
		go f.Run(ctx, *followIvl)
		logger.Printf("following %s (poll %s)", *follow, *followIvl)
	}

	logger.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		logger.Fatal(err)
	}
}

// preload registers -load graphs and -load-events occurrence files
// before the listener starts, so the daemon comes up warm, and returns
// the names it newly registered. Graphs already warm-started from
// -data snapshots are skipped entirely — including their -load-events,
// which would otherwise re-accumulate onto the restored occurrences
// and double every intensity per restart: the snapshot (which carries
// mutations and indexes) wins over re-parsing the original text files.
func preload(srv *server.Server, loads, eventLoads []string, logger *log.Logger) ([]string, error) {
	restored := make(map[string]bool)
	for _, name := range srv.Registry().Names() {
		restored[name] = true
	}
	var loaded []string
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-load %q: want name=path", spec)
		}
		if restored[name] {
			logger.Printf("-load %s: skipped, restored from snapshot", name)
			continue
		}
		f, err := graphio.OpenMaybeGzip(path)
		if err != nil {
			return nil, fmt.Errorf("-load %s: %w", name, err)
		}
		g, err := tesc.ReadGraph(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("-load %s: %w", name, err)
		}
		if _, err := srv.Registry().Register(name, g); err != nil {
			return nil, fmt.Errorf("-load %s: %w", name, err)
		}
		loaded = append(loaded, name)
		logger.Printf("loaded graph %q: %d nodes, %d edges", name, g.NumNodes(), g.NumEdges())
	}
	for _, spec := range eventLoads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-load-events %q: want graphname=path", spec)
		}
		if restored[name] {
			logger.Printf("-load-events %s: skipped, restored from snapshot", name)
			continue
		}
		entry, found := srv.Registry().Get(name)
		if !found {
			return nil, fmt.Errorf("-load-events %s: graph not loaded (use -load %s=...)", name, name)
		}
		f, err := graphio.OpenMaybeGzip(path)
		if err != nil {
			return nil, fmt.Errorf("-load-events %s: %w", name, err)
		}
		store, err := graphio.ReadEvents(f, entry.Graph().NumNodes())
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("-load-events %s: %w", name, err)
		}
		// AddStore preserves the file's intensity column (§6).
		if err := entry.AddStore(store); err != nil {
			return nil, fmt.Errorf("-load-events %s: %w", name, err)
		}
		logger.Printf("loaded %d events for graph %q", store.NumEvents(), name)
	}
	return loaded, nil
}
