// Command tescscreen tests every event pair of an attributed graph for
// two-event structural correlation and reports the ranked findings with
// multiple-testing correction — the sweep behind the paper's §5.4 case
// studies.
//
// Usage:
//
//	tescscreen -graph g.txt -events ev.txt -h-level 1 -tail positive
//	tescscreen -graph g.txt -events ev.txt -min-occ 20 -correction fwer -top 30
//	tescscreen -graph g.txt -events ev.txt -tail positive -topk 10
//	tescscreen -graph g.txt -events ev.txt -tail positive -theta 0.3
//
// -topk and -theta switch to the planned screen: candidate pairs are
// ordered by a cheap co-occurrence prior and evaluated best-first with
// confidence-bound early termination, returning provably the same
// ranking as the exhaustive sweep without paying for it (see
// docs/SCREENING.md). Planned results carry raw p-values: -correction
// needs the whole p-value family and is rejected.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphio"
	"tesc/internal/screen"
	"tesc/internal/stats"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list graph file (required)")
		eventsPath = flag.String("events", "", "event occurrence file (required)")
		hLevel     = flag.Int("h-level", 1, "vicinity level h")
		n          = flag.Int("n", 900, "reference sample size per pair")
		alpha      = flag.Float64("alpha", 0.05, "significance level on adjusted p-values")
		tail       = flag.String("tail", "both", "alternative: both | positive | negative")
		minOcc     = flag.Int("min-occ", 10, "minimum occurrences per event")
		correction = flag.String("correction", "fdr", "multiple-testing correction: fdr | fwer | none")
		top        = flag.Int("top", 20, "print at most this many pairs (0 = all)")
		topk       = flag.Int("topk", 0, "planned screen: return only the k best pairs by score (0 = exhaustive sweep)")
		theta      = flag.Float64("theta", math.NaN(), "planned screen: return every pair scoring >= theta")
		workers    = flag.Int("workers", 0, "concurrent tests (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *graphPath == "" || *eventsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *eventsPath, *hLevel, *n, *alpha, *tail, *minOcc, *correction, *top, *topk, *theta, *workers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tescscreen:", err)
		os.Exit(1)
	}
}

func run(graphPath, eventsPath string, h, n int, alpha float64, tail string, minOcc int, correction string, top, topk int, theta float64, workers int, seed uint64) error {
	gf, err := graphio.OpenMaybeGzip(graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	g, err := graphio.ReadEdgeList(gf)
	if err != nil {
		return err
	}
	ef, err := graphio.OpenMaybeGzip(eventsPath)
	if err != nil {
		return err
	}
	defer ef.Close()
	store, err := graphio.ReadEvents(ef, g.NumNodes())
	if err != nil {
		return err
	}

	var alt stats.Alternative
	switch tail {
	case "both":
		alt = stats.TwoSided
	case "positive":
		alt = stats.Greater
	case "negative":
		alt = stats.Less
	default:
		return fmt.Errorf("unknown tail %q", tail)
	}
	var corr screen.Correction
	switch correction {
	case "fdr":
		corr = screen.FDR
	case "fwer":
		corr = screen.FWER
	case "none":
		corr = screen.None
	default:
		return fmt.Errorf("unknown correction %q", correction)
	}

	pairs := screen.AllPairs(store, minOcc)
	if topk > 0 || !math.IsNaN(theta) {
		if corr == screen.FWER {
			return fmt.Errorf("-correction fwer is incompatible with -topk/-theta: a planned screen reports raw p-values")
		}
		return runPlanned(g, store, pairs, h, n, alpha, alt, minOcc, topk, theta, top, workers, seed, tail)
	}
	fmt.Fprintf(os.Stderr, "screening %d pairs of %d events (h=%d, n=%d, %s, %s-corrected)...\n",
		len(pairs), store.NumEvents(), h, n, tail, correction)

	res, err := screen.Run(g, store, pairs, screen.Config{
		H:              h,
		SampleSize:     n,
		Alpha:          alpha,
		Alternative:    alt,
		MinOccurrences: minOcc,
		Correction:     corr,
		Workers:        workers,
		Seed:           seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("tested %d pairs, skipped %d, significant %d (alpha=%g)\n",
		res.Tested, res.Skipped, res.Rejected, alpha)
	fmt.Printf("density traversals %d, memo hits %d (one BFS per distinct reference node per sweep)\n\n",
		res.BFSRuns, res.MemoHits)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tevent a\tevent b\tocc\ttau\tz\tp\tadj-p\tsig")
	printed := 0
	for i, p := range res.Pairs {
		if p.Skipped != "" {
			continue
		}
		if top > 0 && printed >= top {
			break
		}
		printed++
		sig := ""
		if p.Significant {
			sig = "*"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t(%d,%d)\t%+.3f\t%+.2f\t%.3g\t%.3g\t%s\n",
			i+1, p.A, p.B, p.OccA, p.OccB, p.Tau, p.Z, p.P, p.AdjP, sig)
	}
	return tw.Flush()
}

// runPlanned runs the prioritized top-k / threshold screen and reports
// the ranking plus the planner's work accounting.
func runPlanned(g *graph.Graph, store *events.Store, pairs [][2]string,
	h, n int, alpha float64, alt stats.Alternative, minOcc, topk int, theta float64,
	top, workers int, seed uint64, tail string) error {
	cfg := screen.PlanConfig{
		Config: screen.Config{
			H:              h,
			SampleSize:     n,
			Alpha:          alpha,
			Alternative:    alt,
			MinOccurrences: minOcc,
			Workers:        workers,
			Seed:           seed,
		},
		K: topk,
	}
	if topk > 0 {
		fmt.Fprintf(os.Stderr, "planning top-%d of %d candidate pairs (h=%d, n=%d, %s, raw p-values)...\n",
			topk, len(pairs), h, n, tail)
	} else {
		cfg.Theta = theta
		fmt.Fprintf(os.Stderr, "planning threshold %.3f over %d candidate pairs (h=%d, n=%d, %s, raw p-values)...\n",
			theta, len(pairs), h, n, tail)
	}

	res, err := screen.Plan(g, store, pairs, cfg)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("candidates %d: full tests %d, pruned early %d, pruned by prior %d, skipped %d (checkpoints %d)\n",
		st.Candidates, st.FullTests, st.PrunedEarly, st.PrunedPrior, st.Skipped, st.Checkpoints)
	fmt.Printf("density evaluations %d, traversals %d, memo hits %d — an exhaustive sweep pays %d full tests\n\n",
		st.DensityEvals, st.BFSRuns, st.MemoHits, st.Candidates)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tevent a\tevent b\tocc\ttau\tz\tp\tsig")
	for i, p := range res.Pairs {
		if top > 0 && i >= top {
			break
		}
		sig := ""
		if p.Significant {
			sig = "*"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t(%d,%d)\t%+.3f\t%+.2f\t%.3g\t%s\n",
			i+1, p.A, p.B, p.OccA, p.OccB, p.Tau, p.Z, p.P, sig)
	}
	return tw.Flush()
}
