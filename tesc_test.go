package tesc

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildGraphValidation(t *testing.T) {
	if _, err := BuildGraph(3, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	g, err := BuildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("g = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("Neighbors(1) = %v", ns)
	}
}

func TestReadWriteGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# nodes 5\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	var buf bytes.Buffer
	if err := g.WriteGraph(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 5 || g2.NumEdges() != 2 {
		t.Fatal("round trip changed the graph")
	}
}

func TestCorrelationValidation(t *testing.T) {
	g, _ := BuildGraph(10, [][2]int{{0, 1}, {1, 2}})
	if _, err := Correlation(g, []int{0}, []int{1}, Options{}); err == nil {
		t.Error("H=0 accepted")
	}
	if _, err := Correlation(g, []int{0}, []int{99}, Options{H: 1}); err == nil {
		t.Error("out-of-range occurrence accepted")
	}
	if _, err := Correlation(g, nil, nil, Options{H: 1}); err != ErrNoEventNodes {
		t.Error("empty events should yield ErrNoEventNodes")
	}
	if _, err := Correlation(g, []int{0}, []int{1}, Options{H: 1, Method: Importance}); err == nil {
		t.Error("Importance without index accepted")
	}
	if _, err := Correlation(g, []int{0}, []int{1}, Options{H: 1, Method: Rejection}); err == nil {
		t.Error("Rejection without index accepted")
	}
	if _, err := Correlation(g, []int{0}, []int{1}, Options{H: 1, Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestCorrelationEndToEnd(t *testing.T) {
	// co-located events in a community graph → positive; the same events
	// under NegativeTail must not be "negative".
	g := RandomCommunityGraph(30, 30, 8, 0.5, 42)
	var va, vb []int
	for c := 0; c < 10; c++ {
		base := c * 30
		for i := 0; i < 5; i++ {
			va = append(va, base+(i*7)%30)
			vb = append(vb, base+(i*11+3)%30)
		}
	}
	res, err := Correlation(g, va, vb, Options{H: 2, SampleSize: 200, Tail: PositiveTail})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.Verdict != "positive" {
		t.Errorf("planted attraction missed: %+v", res)
	}
	if res.Sampler != "batch-bfs" {
		t.Errorf("default sampler = %q", res.Sampler)
	}

	neg, err := Correlation(g, va, vb, Options{H: 2, SampleSize: 200, Tail: NegativeTail})
	if err != nil {
		t.Fatal(err)
	}
	if neg.Significant {
		t.Errorf("attraction misread as repulsion: %+v", neg)
	}
}

func TestCorrelationWithIndexMethods(t *testing.T) {
	g := RandomCommunityGraph(20, 25, 8, 0.5, 43)
	idx, err := g.BuildVicinityIndex(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var va, vb []int
	for c := 0; c < 8; c++ {
		base := c * 25
		for i := 0; i < 4; i++ {
			va = append(va, base+(i*5)%25)
			vb = append(vb, base+(i*7+2)%25)
		}
	}
	for _, m := range []Method{Importance, Rejection, WholeGraph} {
		opts := Options{H: 2, SampleSize: 150, Method: m, Index: idx, Tail: PositiveTail, Seed: 7}
		res, err := Correlation(g, va, vb, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Significant {
			t.Errorf("%v missed planted attraction: %+v", m, res)
		}
	}
	// batched importance
	res, err := Correlation(g, va, vb, Options{H: 2, SampleSize: 150, Method: Importance, ImportanceBatch: 3, Index: idx, Tail: PositiveTail})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampler != "importance-batch3" {
		t.Errorf("sampler = %q", res.Sampler)
	}
}

func TestCorrelationDeterminism(t *testing.T) {
	g := RandomCommunityGraph(10, 20, 6, 1, 44)
	va := []int{0, 1, 2, 20, 21}
	vb := []int{3, 4, 22, 23, 40}
	a, err := Correlation(g, va, vb, Options{H: 1, SampleSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Correlation(g, va, vb, Options{H: 1, SampleSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same options, different results:\n%+v\n%+v", a, b)
	}
	c, err := Correlation(g, va, vb, Options{H: 1, SampleSize: 50, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not change the outcome; must not error
}

func TestTransactionCorrelationFacade(t *testing.T) {
	g, _ := BuildGraph(100, [][2]int{{0, 1}})
	va := make([]int, 0, 50)
	for i := 0; i < 50; i++ {
		va = append(va, i)
	}
	r, err := TransactionCorrelation(g, va, va)
	if err != nil {
		t.Fatal(err)
	}
	if r.TauB != 1 {
		t.Errorf("identical events τ_b = %g", r.TauB)
	}
	if _, err := TransactionCorrelation(g, []int{500}, va); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestSpearmanAndIntensityFacade(t *testing.T) {
	g := RandomCommunityGraph(20, 25, 8, 0.5, 45)
	var va, vb []int
	for c := 0; c < 8; c++ {
		base := c * 25
		for i := 0; i < 4; i++ {
			va = append(va, base+(i*5)%25)
			vb = append(vb, base+(i*7+2)%25)
		}
	}
	sp, err := Correlation(g, va, vb, Options{H: 2, SampleSize: 150, Tail: PositiveTail, UseSpearman: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Significant {
		t.Errorf("Spearman missed planted attraction: %+v", sp)
	}

	// intensities: valid ones accepted, invalid rejected
	ia := make([]float64, g.NumNodes())
	for _, v := range va {
		ia[v] = 2.5
	}
	if _, err := Correlation(g, va, vb, Options{H: 1, SampleSize: 100, IntensityA: ia}); err != nil {
		t.Errorf("valid intensity rejected: %v", err)
	}
	bad := make([]float64, g.NumNodes())
	bad[va[0]+1] = 1 // wherever it lands, ensure a node outside va... pick explicit
	bad = make([]float64, g.NumNodes())
	outside := 0
	seen := map[int]bool{}
	for _, v := range va {
		seen[v] = true
	}
	for v := 0; v < g.NumNodes(); v++ {
		if !seen[v] {
			outside = v
			break
		}
	}
	bad[outside] = 1
	if _, err := Correlation(g, va, vb, Options{H: 1, SampleSize: 100, IntensityA: bad}); err == nil {
		t.Error("intensity outside Va accepted")
	}
	// Spearman + importance is rejected
	idx, _ := g.BuildVicinityIndex(1, 1)
	if _, err := Correlation(g, va, vb, Options{H: 1, SampleSize: 100, Method: Importance, Index: idx, UseSpearman: true}); err == nil {
		t.Error("Spearman with importance sampling accepted")
	}
}

func TestMethodAndTailNames(t *testing.T) {
	if BatchBFS.String() != "batch-bfs" || Importance.String() != "importance" ||
		WholeGraph.String() != "whole-graph" || Rejection.String() != "rejection" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should format")
	}
}

func TestGenerators(t *testing.T) {
	comm := RandomCommunityGraph(10, 20, 6, 1, 1)
	if comm.NumNodes() != 200 {
		t.Errorf("community graph nodes = %d", comm.NumNodes())
	}
	pl := RandomPowerLawGraph(10, 4, 1)
	if pl.NumNodes() != 1024 {
		t.Errorf("power-law nodes = %d", pl.NumNodes())
	}
	hub := RandomHubGraph(500, 2, 100, 2, 1)
	if hub.Stats().MaxDegree < 80 {
		t.Errorf("hub max degree = %d", hub.Stats().MaxDegree)
	}
	sw := RandomSmallWorldGraph(100, 2, 0.1, 1)
	if sw.NumNodes() != 100 {
		t.Errorf("small world nodes = %d", sw.NumNodes())
	}
	if CommunityOf(25, 20) != 1 {
		t.Error("CommunityOf wrong")
	}
	s := comm.Stats()
	if s.Nodes != 200 || s.Edges != comm.NumEdges() || s.AvgDegree <= 0 {
		t.Errorf("stats = %+v", s)
	}
}
