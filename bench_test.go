package tesc

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (one Benchmark per artifact, wrapping the runners in
// internal/bench at a reduced scale so `go test -bench=.` completes in
// minutes), plus the ablation benchmarks DESIGN.md §5 calls out for the
// repository's own design decisions.
//
// For paper-scale outputs run the cmd/tescbench binary instead; the
// committed EXPERIMENTS.md records those results.

import (
	"io"
	"math/rand/v2"
	"sync"
	"testing"

	"tesc/internal/bench"
	"tesc/internal/core"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/sampling"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

func benchConfig() bench.Config {
	cfg := bench.TinyConfig()
	cfg.Pairs = 2
	cfg.SampleSize = 300
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1) // vary workload across iterations
		if err := bench.Registry[id](cfg, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig5Recall(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig6Recall(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFig7BatchImportance(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8Density(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9Samplers(b *testing.B)        { runExperiment(b, "fig9") }
func BenchmarkFig10aBFS(b *testing.B)           { runExperiment(b, "fig10a") }
func BenchmarkFig10bZScore(b *testing.B)        { runExperiment(b, "fig10b") }
func BenchmarkTable1(b *testing.B)              { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)              { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)              { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)              { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)              { runExperiment(b, "table5") }

// ---------------------------------------------------------------------
// Micro-benchmarks of the building blocks.
// ---------------------------------------------------------------------

var (
	microOnce    sync.Once
	microGraph   *graph.Graph
	microIndex   *vicinity.Index
	microProblem *core.Problem
)

func microSetup(b *testing.B) {
	b.Helper()
	microOnce.Do(func() {
		rng := rand.New(rand.NewPCG(1, 1))
		microGraph = graphgen.Coauthorship(graphgen.DefaultCoauthorship(0.1), rng) // ~10k nodes
		var err error
		microIndex, err = vicinity.Build(microGraph, 2, vicinity.Options{})
		if err != nil {
			panic(err)
		}
		n := microGraph.NumNodes()
		va := make([]graph.NodeID, 50)
		vb := make([]graph.NodeID, 50)
		for i := range va {
			va[i] = graph.NodeID(rng.IntN(n))
			vb[i] = graph.NodeID(rng.IntN(n))
		}
		microProblem = core.MustNewProblem(microGraph,
			graph.NewNodeSet(n, va), graph.NewNodeSet(n, vb))
	})
}

// BenchmarkBFSHop measures one h-hop BFS per iteration (Figure 10(a)'s
// primitive).
func BenchmarkBFSHop1(b *testing.B) { benchBFS(b, 1) }
func BenchmarkBFSHop2(b *testing.B) { benchBFS(b, 2) }
func BenchmarkBFSHop3(b *testing.B) { benchBFS(b, 3) }

func benchBFS(b *testing.B, h int) {
	microSetup(b)
	bfs := graph.NewBFS(microGraph)
	rng := rand.New(rand.NewPCG(2, 2))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += bfs.VicinitySize(graph.NodeID(rng.IntN(microGraph.NumNodes())), h)
	}
	_ = sink
}

// BenchmarkDensityEval measures the per-reference-node density
// computation (Eq. 2) including the shared union count.
func BenchmarkDensityEval(b *testing.B) {
	microSetup(b)
	eval := core.NewDensityEvaluator(microProblem, 2)
	rng := rand.New(rand.NewPCG(3, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Eval(graph.NodeID(rng.IntN(microGraph.NumNodes())))
	}
}

// BenchmarkSampler* measure reference-node selection per strategy at
// n = 300.
func BenchmarkSamplerBatchBFS(b *testing.B) {
	microSetup(b)
	benchSampler(b, &core.BatchBFSSampler{})
}
func BenchmarkSamplerImportance(b *testing.B) {
	microSetup(b)
	benchSampler(b, &core.ImportanceSampler{Index: microIndex, BatchSize: 3})
}
func BenchmarkSamplerWholeGraph(b *testing.B) {
	microSetup(b)
	benchSampler(b, &core.WholeGraphSampler{})
}
func BenchmarkSamplerRejection(b *testing.B) {
	microSetup(b)
	benchSampler(b, &core.RejectionSampler{Index: microIndex})
}

func benchSampler(b *testing.B, s core.Sampler) {
	rng := rand.New(rand.NewPCG(4, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SampleReferences(microProblem, 2, 300, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures a complete TESC test.
func BenchmarkEndToEnd(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Test(microProblem, core.Options{
			H: 2, SampleSize: 300, Alpha: 0.05,
			Alternative: stats.TwoSided,
			Rand:        rand.New(rand.NewPCG(uint64(i), 5)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §5).
// ---------------------------------------------------------------------

// BenchmarkAblationKendall compares the O(n²) Kendall computation the
// paper uses against this repository's O(n log n) implementation at the
// paper's n = 900.
func BenchmarkAblationKendallNaive(b *testing.B) { benchKendall(b, true) }
func BenchmarkAblationKendallFast(b *testing.B)  { benchKendall(b, false) }

func benchKendall(b *testing.B, naive bool) {
	rng := rand.New(rand.NewPCG(6, 6))
	const n = 900
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(rng.IntN(40)) / 100
		y[i] = float64(rng.IntN(40)) / 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			stats.KendallNaive(x, y)
		} else {
			stats.Kendall(x, y)
		}
	}
}

// BenchmarkAblationAlias compares O(1) alias-table draws against linear
// cumulative scans for the weighted event-node choice of Algorithm 2.
func BenchmarkAblationAliasDraw(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	weights := make([]float64, 5000)
	for i := range weights {
		weights[i] = rng.Float64()*100 + 1
	}
	alias := sampling.MustNewAlias(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alias.Draw(rng)
	}
}

func BenchmarkAblationLinearDraw(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	weights := make([]float64, 5000)
	var total float64
	for i := range weights {
		weights[i] = rng.Float64()*100 + 1
		total += weights[i]
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		r := rng.Float64() * total
		acc := 0.0
		for j, w := range weights {
			acc += w
			if acc >= r {
				sink = j
				break
			}
		}
	}
	_ = sink
}

// BenchmarkAblationSharedBFS measures the shared-BFS density evaluation
// (one traversal yields |V^h_r|, both event counts and the union count)
// against the naive two-pass alternative.
func BenchmarkAblationSharedBFS(b *testing.B) {
	microSetup(b)
	eval := core.NewDensityEvaluator(microProblem, 2)
	rng := rand.New(rand.NewPCG(8, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Eval(graph.NodeID(rng.IntN(microGraph.NumNodes())))
	}
}

func BenchmarkAblationSeparateBFS(b *testing.B) {
	microSetup(b)
	bfs := graph.NewBFS(microGraph)
	rng := rand.New(rand.NewPCG(8, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := graph.NodeID(rng.IntN(microGraph.NumNodes()))
		// pass 1: densities
		var size, ca, cb int
		bfs.Run([]graph.NodeID{r}, 2, func(v graph.NodeID, _ int) {
			size++
			if microProblem.Va.Contains(v) {
				ca++
			}
			if microProblem.Vb.Contains(v) {
				cb++
			}
		})
		// pass 2: union count for p(r)
		cu := 0
		bfs.Run([]graph.NodeID{r}, 2, func(v graph.NodeID, _ int) {
			if microProblem.Union.Contains(v) {
				cu++
			}
		})
		_, _, _, _ = size, ca, cb, cu
	}
}

// BenchmarkAblationBFSBuffers measures the epoch-stamped reusable BFS
// engine against allocating a fresh engine (visited array + queues) per
// traversal.
func BenchmarkAblationBFSReused(b *testing.B) {
	microSetup(b)
	bfs := graph.NewBFS(microGraph)
	rng := rand.New(rand.NewPCG(9, 9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.VicinitySize(graph.NodeID(rng.IntN(microGraph.NumNodes())), 2)
	}
}

func BenchmarkAblationBFSFresh(b *testing.B) {
	microSetup(b)
	rng := rand.New(rand.NewPCG(9, 9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs := graph.NewBFS(microGraph)
		bfs.VicinitySize(graph.NodeID(rng.IntN(microGraph.NumNodes())), 2)
	}
}

// BenchmarkAblationDensity{Sequential,Parallel} measure the density
// phase (the dominant per-test cost) with and without the worker pool.
func BenchmarkAblationDensitySequential(b *testing.B) { benchDensityPhase(b, 1) }
func BenchmarkAblationDensityParallel(b *testing.B)   { benchDensityPhase(b, -1) }

func benchDensityPhase(b *testing.B, workers int) {
	microSetup(b)
	eval := core.NewDensityEvaluator(microProblem, 2)
	rng := rand.New(rand.NewPCG(11, 11))
	refs := make([]graph.NodeID, 900)
	for i := range refs {
		refs[i] = graph.NodeID(rng.IntN(microGraph.NumNodes()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers == 1 {
			eval.EvalAll(refs)
		} else {
			eval.EvalAllParallel(refs, workers)
		}
	}
}

// BenchmarkAblationVarianceTies measures the tie-corrected variance
// (Eq. 6) against the tie-free form (Eq. 5) to show the correction is
// computationally free.
func BenchmarkAblationVarianceEq6(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 10))
	x := make([]float64, 900)
	for i := range x {
		x[i] = float64(rng.IntN(10))
	}
	ties := stats.TieSizes(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.NumeratorVariance(900, ties, ties)
	}
}

func BenchmarkAblationVarianceEq5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.NullVariance(900)
	}
}
