package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tesc/api"
	"tesc/client"
)

// Config parameterizes a Coordinator.
type Config struct {
	Topology Topology
	// ProbeInterval is the period between /healthz probe sweeps
	// (default 1s).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive probe failures after which an
	// endpoint is ejected from routing (default 3).
	FailThreshold int
	// MaxLagEpochs bounds replica read eligibility: a replica reporting
	// replica_lag_epochs beyond this is not read-eligible (default 8).
	MaxLagEpochs uint64
	// HTTPClient is shared by every member client; nil uses a default
	// with a 30s probe-independent timeout left to request contexts.
	HTTPClient *http.Client
	// Log receives routing diagnostics; nil disables them.
	Log *log.Logger
}

// endpoint is one probed URL: a member's owner or one of its replicas.
type endpoint struct {
	url  string
	role string // "owner" | "replica"
	cl   *client.Client

	// Probe state, under Coordinator.mu.
	healthy     bool
	consecFails int
	lagEpochs   uint64
	probed      bool // at least one probe completed
}

// member is one owner group. endpoints[0] is the owner.
type member struct {
	name      string
	endpoints []*endpoint
}

// Coordinator routes the single-node API across a topology. It is an
// http.Handler; NewCoordinator wires the routes and Run starts the
// health prober.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.RWMutex
	members []*member
	// graphs is the set of graphs created (and not dropped) through
	// this coordinator — the healthz placement count.
	graphs map[string]bool

	proxied     atomic.Int64
	proxyErrors atomic.Int64
	rebalanced  atomic.Int64
}

// NewCoordinator builds a coordinator over the topology.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.MaxLagEpochs == 0 {
		cfg.MaxLagEpochs = 8
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	c := &Coordinator{cfg: cfg, mux: http.NewServeMux(), graphs: make(map[string]bool)}
	for _, m := range cfg.Topology.Members {
		mm := &member{name: m.Name}
		mm.endpoints = append(mm.endpoints, c.newEndpoint(m.URL, "owner"))
		for _, r := range m.Replicas {
			mm.endpoints = append(mm.endpoints, c.newEndpoint(r, "replica"))
		}
		c.members = append(c.members, mm)
	}
	c.routes()
	return c, nil
}

func (c *Coordinator) newEndpoint(url, role string) *endpoint {
	return &endpoint{
		url: url, role: role,
		cl: client.New(url, client.WithHTTPClient(c.cfg.HTTPClient)),
		// Unprobed endpoints start routable — a coordinator that boots
		// ahead of its first probe sweep must not shed every request.
		healthy: true,
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log.Printf(format, args...)
	}
}

// Handler returns the coordinator's HTTP handler — the same surface a
// single node serves.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Run starts the health prober and blocks until ctx is done. The first
// sweep runs immediately.
func (c *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		c.ProbeNow(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// routes registers the single-node API surface. Every pattern a node
// serves resolves here too; the catch-all keeps even unknown paths in
// the error envelope.
func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /v1/graphs", c.handleCreateGraph)
	c.mux.HandleFunc("GET /v1/graphs", c.handleListGraphs)
	c.mux.HandleFunc("/v1/graphs/{name}", c.handlePerGraph)
	c.mux.HandleFunc("/v1/graphs/{name}/{rest...}", c.handlePerGraph)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, api.CodeNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
}

// ---- envelope helpers ----------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code api.ErrorCode, format string, args ...any) {
	writeJSON(w, api.StatusOf(code), &api.Error{Code: code, Reason: fmt.Sprintf(format, args...)})
}

func writeRetryable(w http.ResponseWriter, retryAfter time.Duration, code api.ErrorCode, format string, args ...any) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	writeJSON(w, api.StatusOf(code), &api.Error{Code: code, Reason: fmt.Sprintf(format, args...), RetryAfterMS: ms})
}

// ---- placement ------------------------------------------------------

// memberNames returns the member names in topology order (under mu).
func (c *Coordinator) memberNames() []string {
	names := make([]string, len(c.members))
	for i, m := range c.members {
		names[i] = m.name
	}
	return names
}

// ownerOf resolves a graph's member. Placement is the pure rendezvous
// function of (member set, graph name): no placement log, no consensus
// — any coordinator over the same topology routes identically.
func (c *Coordinator) ownerOf(graph string) *member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	name := rendezvousOwner(c.memberNames(), graph)
	for _, m := range c.members {
		if m.name == name {
			return m
		}
	}
	return nil
}

func (c *Coordinator) memberByName(name string) *member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, m := range c.members {
		if m.name == name {
			return m
		}
	}
	return nil
}

// ReplaceOwner atomically flips a member's owner endpoint to newURL —
// the last step of the join/handoff protocol, after the node at newURL
// has caught up (Follower.CatchUp) and been promoted. The endpoint
// starts healthy; the next probe sweep confirms.
func (c *Coordinator) ReplaceOwner(memberName, newURL string) error {
	newURL = strings.TrimRight(newURL, "/")
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.name != memberName {
			continue
		}
		m.endpoints[0] = c.newEndpoint(newURL, "owner")
		c.rebalanced.Add(1)
		c.logf("cluster: member %s owner -> %s", memberName, newURL)
		return nil
	}
	return fmt.Errorf("cluster: no member %q", memberName)
}

// ReplaceReplicas atomically swaps a member's replica endpoints — the
// companion to ReplaceOwner when a member's replica tier is rebuilt to
// follow a new owner.
func (c *Coordinator) ReplaceReplicas(memberName string, urls ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.name != memberName {
			continue
		}
		eps := m.endpoints[:1:1]
		for _, u := range urls {
			eps = append(eps, c.newEndpoint(strings.TrimRight(u, "/"), "replica"))
		}
		m.endpoints = eps
		c.logf("cluster: member %s replicas -> %v", memberName, urls)
		return nil
	}
	return fmt.Errorf("cluster: no member %q", memberName)
}

// readEndpoint picks the first routable endpoint for reads: the owner
// when healthy, else the first healthy replica within the lag bound.
func (c *Coordinator) readEndpoint(m *member) *endpoint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ep := range m.endpoints {
		if !ep.healthy {
			continue
		}
		if ep.role == "replica" && ep.lagEpochs > c.cfg.MaxLagEpochs {
			continue
		}
		return ep
	}
	return nil
}

// writeEndpoint returns the owner endpoint when routable, nil
// otherwise — mutations never go anywhere else.
func (c *Coordinator) writeEndpoint(m *member) *endpoint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ep := m.endpoints[0]; ep.healthy {
		return ep
	}
	return nil
}

// ---- proxying -------------------------------------------------------

// forward replays the incoming request against ep byte-transparently
// and streams the member's response back verbatim. Reports whether the
// member answered at all (any HTTP status counts; a transport error
// does not).
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, ep *endpoint, body io.Reader) bool {
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	resp, err := ep.cl.Forward(r.Context(), r.Method, pathAndQuery, r.Header, body)
	if err != nil {
		c.proxyErrors.Add(1)
		c.logf("cluster: proxy %s %s -> %s: %v", r.Method, r.URL.Path, ep.url, err)
		return false
	}
	defer resp.Body.Close()
	c.proxied.Add(1)
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// proxyRead forwards a read to the member's eligible endpoints in
// order, failing over on transport errors only (a non-2xx answer is an
// answer — it streams back verbatim).
func (c *Coordinator) proxyRead(w http.ResponseWriter, r *http.Request, m *member, body []byte) {
	c.mu.RLock()
	eps := append([]*endpoint(nil), m.endpoints...)
	maxLag := c.cfg.MaxLagEpochs
	c.mu.RUnlock()
	tried := 0
	for _, ep := range eps {
		c.mu.RLock()
		ok := ep.healthy && (ep.role == "owner" || ep.lagEpochs <= maxLag)
		c.mu.RUnlock()
		if !ok {
			continue
		}
		tried++
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		if c.forward(w, r, ep, rd) {
			return
		}
		// Transport failure: eject immediately so later requests skip it
		// until a probe brings it back.
		c.mu.Lock()
		ep.consecFails++
		if ep.consecFails >= c.cfg.FailThreshold {
			ep.healthy = false
		}
		c.mu.Unlock()
	}
	writeRetryable(w, time.Second, api.CodeUnavailable,
		"member %s has no routable endpoint for reads (%d tried)", m.name, tried)
}

// proxyWrite forwards a mutation to the member's owner, or answers the
// typed no_owner shed when the owner is not routable.
func (c *Coordinator) proxyWrite(w http.ResponseWriter, r *http.Request, m *member, body []byte) bool {
	ep := c.writeEndpoint(m)
	if ep == nil {
		writeRetryable(w, time.Second, api.CodeNoOwner,
			"member %s (owner of this graph) is not routable; mutations wait for owner recovery or handoff", m.name)
		return false
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	if !c.forward(w, r, ep, rd) {
		c.mu.Lock()
		ep.consecFails++
		if ep.consecFails >= c.cfg.FailThreshold {
			ep.healthy = false
		}
		c.mu.Unlock()
		writeRetryable(w, time.Second, api.CodeNoOwner,
			"member %s owner did not answer", m.name)
		return false
	}
	return true
}

// ---- handlers -------------------------------------------------------

// maxBodyBytes bounds buffered request bodies. Mutation bodies must be
// buffered (the name decides the route before the bytes are spent), so
// the bound keeps a hostile request from holding the coordinator's
// memory.
const maxBodyBytes = 256 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, api.CodeBadRequest, "reading request body: %v", err)
		return nil, false
	}
	if len(body) > maxBodyBytes {
		writeError(w, api.CodeBadRequest, "request body exceeds %d bytes", maxBodyBytes)
		return nil, false
	}
	return body, true
}

// handleCreateGraph decodes just enough of the body to place the graph
// (the name), then forwards the original bytes to the owner.
func (c *Coordinator) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req api.RegisterGraphRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, api.CodeBadRequest, "decoding request: %v", err)
		return
	}
	if err := api.ValidateGraphName(req.Name); err != nil {
		writeError(w, api.CodeInvalidName, "%v", err)
		return
	}
	m := c.ownerOf(req.Name)
	if m == nil {
		writeError(w, api.CodeNoOwner, "no members to place graph %q on", req.Name)
		return
	}
	rec := &statusRecorder{ResponseWriter: w}
	if c.proxyWrite(rec, r, m, body) && rec.status == http.StatusCreated {
		c.mu.Lock()
		c.graphs[req.Name] = true
		c.mu.Unlock()
	}
}

// handleListGraphs fans the list across members and merges, sorted by
// name. Members with no routable endpoint are skipped — the list keeps
// answering through partial outages.
func (c *Coordinator) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	members := append([]*member(nil), c.members...)
	c.mu.RUnlock()
	out := make([]api.GraphInfo, 0, 16)
	for _, m := range members {
		ep := c.readEndpoint(m)
		if ep == nil {
			c.logf("cluster: list: member %s skipped (no routable endpoint)", m.name)
			continue
		}
		infos, err := ep.cl.ListGraphs(r.Context())
		if err != nil {
			c.proxyErrors.Add(1)
			c.logf("cluster: list via %s: %v", ep.url, err)
			continue
		}
		c.proxied.Add(1)
		out = append(out, infos...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handlePerGraph routes every /v1/graphs/{name}... request: reads fan
// across the owner group, mutations go to the owner only.
func (c *Coordinator) handlePerGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := api.ValidateGraphName(name); err != nil {
		writeError(w, api.CodeInvalidName, "%v", err)
		return
	}
	m := c.ownerOf(name)
	if m == nil {
		writeError(w, api.CodeNoOwner, "no members to route graph %q to", name)
		return
	}
	rest := r.PathValue("rest")

	// Reads: every GET, plus correlate (a POST by shape, a pure
	// function of the snapshot by semantics).
	isRead := r.Method == http.MethodGet || (r.Method == http.MethodPost && rest == "correlate")
	if isRead {
		var body []byte
		if r.Body != nil {
			var ok bool
			if body, ok = readBody(w, r); !ok {
				return
			}
		}
		c.proxyRead(w, r, m, body)
		return
	}

	body, ok := readBody(w, r)
	if !ok {
		return
	}
	switch {
	case r.Method == http.MethodPost && rest == "screen":
		// The 202 carries a job ID local to the owner; suffix it with
		// the endpoint coordinates so job polls route back to the node
		// that runs the sweep.
		c.proxyScreen(w, r, m, body)
	case r.Method == http.MethodDelete && rest == "":
		rec := &statusRecorder{ResponseWriter: w}
		if c.proxyWrite(rec, r, m, body) && rec.status == http.StatusNoContent {
			c.mu.Lock()
			delete(c.graphs, name)
			c.mu.Unlock()
		}
	default:
		c.proxyWrite(w, r, m, body)
	}
}

// proxyScreen forwards a screen request to the owner and rewrites the
// accepted job ID from "job-3" to "job-3@0.member": the suffix names
// the endpoint the job lives on, so polls route back to it. IDs are
// documented opaque; a single node returns bare IDs, a coordinator
// suffixed ones.
func (c *Coordinator) proxyScreen(w http.ResponseWriter, r *http.Request, m *member, body []byte) {
	ep := c.writeEndpoint(m)
	if ep == nil {
		writeRetryable(w, time.Second, api.CodeNoOwner,
			"member %s (owner of this graph) is not routable", m.name)
		return
	}
	acc, err := ep.cl.Screen(r.Context(), r.PathValue("name"), decodeScreen(body))
	if err != nil {
		c.answerClientErr(w, err)
		return
	}
	c.proxied.Add(1)
	acc.JobID = fmt.Sprintf("%s@0.%s", acc.JobID, m.name)
	writeJSON(w, http.StatusAccepted, acc)
}

func decodeScreen(body []byte) api.ScreenRequest {
	var req api.ScreenRequest
	_ = json.Unmarshal(body, &req) // malformed bodies fail on the node with its typed 400
	return req
}

// answerClientErr relays a typed client error as the envelope it
// already is, or wraps a transport failure as unavailable.
func (c *Coordinator) answerClientErr(w http.ResponseWriter, err error) {
	if e, ok := err.(*api.Error); ok {
		c.proxied.Add(1)
		writeJSON(w, api.StatusOf(e.Code), e)
		return
	}
	c.proxyErrors.Add(1)
	writeRetryable(w, time.Second, api.CodeUnavailable, "proxying: %v", err)
}

// handleJob routes GET/DELETE /v1/jobs/{id} by the ID's endpoint
// suffix, restoring the suffix on the returned view.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	bare, epIdx, memberName, ok := splitJobID(id)
	if !ok {
		writeError(w, api.CodeNotFound, "job %q: cluster job IDs carry an @member suffix", id)
		return
	}
	m := c.memberByName(memberName)
	if m == nil {
		writeError(w, api.CodeNotFound, "job %q: no member %q", id, memberName)
		return
	}
	c.mu.RLock()
	var ep *endpoint
	if epIdx < len(m.endpoints) {
		ep = m.endpoints[epIdx]
	}
	c.mu.RUnlock()
	if ep == nil {
		writeError(w, api.CodeNotFound, "job %q: no endpoint %d on member %q", id, epIdx, memberName)
		return
	}
	var view api.JobView
	var err error
	if r.Method == http.MethodDelete {
		view, err = ep.cl.CancelJob(r.Context(), bare)
	} else {
		view, err = ep.cl.GetJob(r.Context(), bare)
	}
	if err != nil {
		c.answerClientErr(w, err)
		return
	}
	c.proxied.Add(1)
	view.ID = id
	status := http.StatusOK
	if r.Method == http.MethodDelete {
		status = http.StatusAccepted
	}
	writeJSON(w, status, view)
}

// splitJobID parses "job-3@0.member" into (job-3, 0, member).
func splitJobID(id string) (bare string, epIdx int, memberName string, ok bool) {
	at := strings.LastIndex(id, "@")
	if at < 0 {
		return "", 0, "", false
	}
	suffix := id[at+1:]
	idxStr, name, found := strings.Cut(suffix, ".")
	if !found || name == "" {
		return "", 0, "", false
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return "", 0, "", false
	}
	return id[:at], idx, name, true
}

// statusRecorder captures the proxied status so create/drop can track
// the placement set without re-reading the response.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// ---- health ---------------------------------------------------------

// ProbeNow runs one synchronous probe sweep over every endpoint. The
// prober calls it on a ticker; tests call it directly for determinism.
func (c *Coordinator) ProbeNow(ctx context.Context) {
	c.mu.RLock()
	var eps []*endpoint
	for _, m := range c.members {
		eps = append(eps, m.endpoints...)
	}
	c.mu.RUnlock()
	for _, ep := range eps {
		probeCtx, cancel := context.WithTimeout(ctx, c.cfg.ProbeInterval)
		h, err := ep.cl.Health(probeCtx)
		cancel()
		c.mu.Lock()
		ep.probed = true
		if err != nil {
			ep.consecFails++
			if ep.consecFails >= c.cfg.FailThreshold {
				if ep.healthy {
					c.logf("cluster: endpoint %s ejected after %d probe failures", ep.url, ep.consecFails)
				}
				ep.healthy = false
			}
		} else {
			if !ep.healthy {
				c.logf("cluster: endpoint %s recovered", ep.url)
			}
			ep.healthy = true
			ep.consecFails = 0
			ep.lagEpochs = 0
			if h.ReplicaHealth != nil {
				ep.lagEpochs = h.ReplicaLagEpochs
			}
		}
		c.mu.Unlock()
	}
}

// clusterHealth builds the healthz cluster section (under mu).
func (c *Coordinator) clusterHealth() *api.ClusterHealth {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := c.memberNames()
	perMember := make(map[string]int)
	for g := range c.graphs {
		perMember[rendezvousOwner(names, g)]++
	}
	ch := &api.ClusterHealth{
		Graphs:      len(c.graphs),
		Proxied:     c.proxied.Load(),
		ProxyErrors: c.proxyErrors.Load(),
		Rebalanced:  c.rebalanced.Load(),
	}
	for _, m := range c.members {
		mh := api.ClusterMemberHealth{Name: m.name, Graphs: perMember[m.name]}
		for _, ep := range m.endpoints {
			mh.Endpoints = append(mh.Endpoints, api.ClusterEndpointHealth{
				URL:                 ep.url,
				Role:                ep.role,
				Healthy:             ep.healthy,
				ConsecutiveFailures: ep.consecFails,
				LagEpochs:           ep.lagEpochs,
			})
		}
		ch.Members = append(ch.Members, mh)
	}
	return ch
}

// handleHealth answers the coordinator's own healthz: node counters
// stay zero (the coordinator computes nothing), the Cluster section
// carries membership, placement and proxy accounting.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	ch := c.clusterHealth()
	h := api.Health{Status: "ok", Graphs: ch.Graphs, Cluster: ch}
	writeJSON(w, http.StatusOK, h)
}
