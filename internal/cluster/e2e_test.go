package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tesc/api"
	"tesc/client"
	"tesc/internal/replica"
	"tesc/internal/server"
)

// clusterNode is one in-process tescd with a real HTTP listener.
type clusterNode struct {
	srv *server.Server
	ts  *httptest.Server
	dir string
}

func newClusterNode(t *testing.T, readOnly bool) *clusterNode {
	t.Helper()
	dir := t.TempDir()
	srv := server.New(server.Config{
		IndexCacheCapacity: 4,
		DataDir:            dir,
		CheckpointDelay:    time.Hour,
		ReadOnly:           readOnly,
	})
	if _, err := srv.LoadData(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return &clusterNode{srv: srv, ts: ts, dir: dir}
}

// clusterMember is an owner node plus one durable replica following it
// over the production HTTP wire path.
type clusterMember struct {
	name    string
	owner   *clusterNode
	replica *clusterNode
	fol     *replica.Follower
}

func newClusterMember(t *testing.T, name string) *clusterMember {
	t.Helper()
	owner := newClusterNode(t, false)
	rep := newClusterNode(t, true)
	fol := replica.New(&replica.HTTPTransport{Base: owner.ts.URL}, rep.srv.FollowerState(), nil)
	rep.srv.AttachFollower(fol)
	return &clusterMember{name: name, owner: owner, replica: rep, fol: fol}
}

func (m *clusterMember) converge(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.fol.CatchUp(ctx, time.Millisecond); err != nil {
		t.Fatalf("member %s replica catch-up: %v", m.name, err)
	}
}

// doRaw issues a request and returns the status plus the raw body —
// raw, because the e2e contract is byte-level response equivalence.
func doRaw(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// normalize re-encodes a JSON body canonically with wall-clock fields
// ("created", "finished", "elapsed_ms") zeroed — the only response
// fields that legitimately differ between a cluster and the oracle.
func normalize(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("normalize %q: %v", raw, err)
	}
	var scrub func(any)
	scrub = func(x any) {
		switch n := x.(type) {
		case map[string]any:
			for _, k := range []string{"created", "finished", "elapsed_ms"} {
				if _, ok := n[k]; ok {
					n[k] = nil
				}
			}
			for _, vv := range n {
				scrub(vv)
			}
		case []any:
			for _, vv := range n {
				scrub(vv)
			}
		}
	}
	scrub(v)
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// sameAs asserts a cluster request and the identical oracle request
// produce the same status and byte-equivalent bodies.
func sameAs(t *testing.T, method, path string, body any, clusterURL, oracleURL string, wantCode int) {
	t.Helper()
	cCode, cRaw := doRaw(t, method, clusterURL+path, body)
	oCode, oRaw := doRaw(t, method, oracleURL+path, body)
	if cCode != wantCode || oCode != wantCode {
		t.Fatalf("%s %s: cluster %d, oracle %d, want %d\ncluster: %s\noracle: %s",
			method, path, cCode, oCode, wantCode, cRaw, oRaw)
	}
	if len(cRaw) == 0 && len(oRaw) == 0 {
		return
	}
	if bytes.Equal(cRaw, oRaw) {
		return
	}
	if c, o := normalize(t, cRaw), normalize(t, oRaw); c != o {
		t.Fatalf("%s %s diverged from oracle:\ncluster: %s\noracle:  %s", method, path, c, o)
	}
}

const nGraphs = 32

func graphName(i int) string { return fmt.Sprintf("g%02d", i) }

// edgeList builds a deterministic per-graph topology: a ring with
// index-dependent chords, so graphs differ from each other.
func edgeList(i int) string {
	n := 10 + i%5
	var b bytes.Buffer
	for v := 0; v < n; v++ {
		fmt.Fprintf(&b, "%d %d\n", v, (v+1)%n)
	}
	fmt.Fprintf(&b, "0 %d\n", 2+i%4)
	fmt.Fprintf(&b, "1 %d\n", 4+i%3)
	return b.String()
}

func eventsFor(i int) map[string][]int {
	n := 10 + i%5
	return map[string][]int{
		"a": {0, 1, 2 + i%3},
		"b": {n - 1, n - 2, n - 3},
	}
}

// TestClusterEndToEnd is the acceptance e2e: 32 graphs through a
// 3-member coordinator, every response byte-equivalent to a single
// node holding all of them; an owner dies and reads keep answering
// from its replica; a fresh node rejoins via the snapshot+WAL handoff
// and is flipped in as the new owner.
func TestClusterEndToEnd(t *testing.T) {
	members := []*clusterMember{
		newClusterMember(t, "n1"),
		newClusterMember(t, "n2"),
		newClusterMember(t, "n3"),
	}
	top := Topology{}
	for _, m := range members {
		top.Members = append(top.Members, Member{
			Name: m.name, URL: m.owner.ts.URL, Replicas: []string{m.replica.ts.URL},
		})
	}
	coord, err := NewCoordinator(Config{Topology: top, FailThreshold: 1, ProbeInterval: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	oracle := server.New(server.Config{IndexCacheCapacity: 64})
	ots := httptest.NewServer(oracle.Handler())
	t.Cleanup(ots.Close)

	ctx := context.Background()

	// Register, populate and mutate every graph through the
	// coordinator and the oracle in lockstep, comparing each response.
	for i := 0; i < nGraphs; i++ {
		g := graphName(i)
		sameAs(t, "POST", "/v1/graphs",
			api.RegisterGraphRequest{Name: g, EdgeList: edgeList(i)},
			cts.URL, ots.URL, http.StatusCreated)
		sameAs(t, "POST", "/v1/graphs/"+g+"/events",
			api.RegisterEventsRequest{Events: eventsFor(i)},
			cts.URL, ots.URL, http.StatusOK)
		sameAs(t, "POST", "/v1/graphs/"+g+"/edges",
			api.MutateEdgesRequest{Insert: [][2]int{{0, 5}, {1, 6}}},
			cts.URL, ots.URL, http.StatusOK)
	}

	// Placement must cover every member, and the coordinator's healthz
	// must account for all graphs.
	code, raw := doRaw(t, "GET", cts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d: %s", code, raw)
	}
	var h api.Health
	if err := json.Unmarshal(raw, &h); err != nil || h.Cluster == nil {
		t.Fatalf("healthz: %v, cluster=%v", err, h.Cluster)
	}
	total := 0
	for _, mh := range h.Cluster.Members {
		if mh.Graphs == 0 {
			t.Fatalf("member %s owns no graphs — placement did not spread: %s", mh.Name, raw)
		}
		total += mh.Graphs
	}
	if total != nGraphs || h.Cluster.Graphs != nGraphs {
		t.Fatalf("healthz accounts %d/%d graphs, want %d", total, h.Cluster.Graphs, nGraphs)
	}

	// Every read answers byte-identically to the oracle.
	correlate := func(i int) (string, any) {
		return "/v1/graphs/" + graphName(i) + "/correlate", api.CorrelateRequest{
			A: "a", B: "b", H: 2, SampleSize: 64, Seed: 42,
		}
	}
	for i := 0; i < nGraphs; i++ {
		g := graphName(i)
		sameAs(t, "GET", "/v1/graphs/"+g, nil, cts.URL, ots.URL, http.StatusOK)
		p, body := correlate(i)
		sameAs(t, "POST", p, body, cts.URL, ots.URL, http.StatusOK)
	}
	// The merged graph list equals the oracle's (both sorted by name).
	sameAs(t, "GET", "/v1/graphs", nil, cts.URL, ots.URL, http.StatusOK)

	// Screening routes by job-ID suffix: the 202 carries the member
	// coordinates, polls route back, and the result matches the oracle.
	ccl, ocl := client.New(cts.URL), client.New(ots.URL)
	screenReq := api.ScreenRequest{H: 2, SampleSize: 64, Seed: 7, Workers: 1}
	acc, err := ccl.Screen(ctx, "g00", screenReq)
	if err != nil {
		t.Fatalf("cluster screen: %v", err)
	}
	if _, _, _, ok := splitJobID(acc.JobID); !ok {
		t.Fatalf("cluster job ID %q carries no member suffix", acc.JobID)
	}
	cJob, err := ccl.WaitJob(ctx, acc.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("cluster wait: %v", err)
	}
	if cJob.ID != acc.JobID || cJob.Status != api.JobDone {
		t.Fatalf("cluster job = %+v", cJob)
	}
	oAcc, err := ocl.Screen(ctx, "g00", screenReq)
	if err != nil {
		t.Fatalf("oracle screen: %v", err)
	}
	oJob, err := ocl.WaitJob(ctx, oAcc.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("oracle wait: %v", err)
	}
	cRes, _ := json.Marshal(cJob.Result)
	oRes, _ := json.Marshal(oJob.Result)
	if !bytes.Equal(cRes, oRes) {
		t.Fatalf("screen result diverged:\ncluster: %s\noracle:  %s", cRes, oRes)
	}

	// Converge every replica, then kill one owner.
	for _, m := range members {
		m.converge(t)
	}
	victimName := rendezvousOwner([]string{"n1", "n2", "n3"}, "g00")
	var victim *clusterMember
	for _, m := range members {
		if m.name == victimName {
			victim = m
		}
	}
	victim.owner.ts.Close()
	coord.ProbeNow(ctx)

	// Reads on the victim's graphs keep answering — from the replica —
	// still byte-equivalent to the oracle.
	sameAs(t, "GET", "/v1/graphs/g00", nil, cts.URL, ots.URL, http.StatusOK)
	p, body := correlate(0)
	sameAs(t, "POST", p, body, cts.URL, ots.URL, http.StatusOK)

	// Mutations answer the typed no_owner shed.
	code, raw = doRaw(t, "POST", cts.URL+"/v1/graphs/g00/edges", api.MutateEdgesRequest{Insert: [][2]int{{2, 7}}})
	var e api.Error
	if err := json.Unmarshal(raw, &e); err != nil || code != api.StatusOf(api.CodeNoOwner) || e.Code != api.CodeNoOwner || !e.Retryable() || e.RetryAfterMS == 0 {
		t.Fatalf("mutation without owner: %d %s", code, raw)
	}

	// Rejoin: a fresh read-only node bootstraps from the surviving
	// replica through the replication primitives (snapshot image + WAL
	// tail), catches up, is promoted, and the coordinator flips the
	// placement atomically.
	fresh := newClusterNode(t, true)
	fol := replica.New(server.ReplicaSource{S: victim.replica.srv}, fresh.srv.FollowerState(), nil)
	fresh.srv.AttachFollower(fol)
	cuCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := fol.CatchUp(cuCtx, time.Millisecond); err != nil {
		t.Fatalf("rejoin catch-up: %v", err)
	}
	cancel()
	fresh.srv.Promote()
	if fresh.srv.ReadOnly() {
		t.Fatal("promoted node still read-only")
	}
	if err := coord.ReplaceOwner(victimName, fresh.ts.URL); err != nil {
		t.Fatal(err)
	}
	coord.ProbeNow(ctx)

	// The member takes writes again, and the full read sweep is still
	// byte-equivalent to the oracle.
	sameAs(t, "POST", "/v1/graphs/g00/edges",
		api.MutateEdgesRequest{Insert: [][2]int{{2, 7}}},
		cts.URL, ots.URL, http.StatusOK)
	for i := 0; i < nGraphs; i++ {
		g := graphName(i)
		sameAs(t, "GET", "/v1/graphs/"+g, nil, cts.URL, ots.URL, http.StatusOK)
		p, body := correlate(i)
		sameAs(t, "POST", p, body, cts.URL, ots.URL, http.StatusOK)
	}

	// The flip is accounted, and the victim's owner endpoint is the
	// fresh node.
	_, raw = doRaw(t, "GET", cts.URL+"/healthz", nil)
	var h2 api.Health
	if err := json.Unmarshal(raw, &h2); err != nil || h2.Cluster == nil {
		t.Fatalf("healthz after flip: %v", err)
	}
	if h2.Cluster.Rebalanced != 1 {
		t.Fatalf("rebalanced = %d, want 1", h2.Cluster.Rebalanced)
	}
	for _, mh := range h2.Cluster.Members {
		if mh.Name != victimName {
			continue
		}
		if mh.Endpoints[0].URL != fresh.ts.URL || !mh.Endpoints[0].Healthy {
			t.Fatalf("victim owner endpoint after flip = %+v", mh.Endpoints[0])
		}
	}
}

// TestCoordinatorEnvelopes pins the coordinator's own error surface to
// the unified envelope: unknown routes, invalid names, and job IDs
// without member coordinates.
func TestCoordinatorEnvelopes(t *testing.T) {
	m := newClusterMember(t, "solo")
	coord, err := NewCoordinator(Config{Topology: Topology{Members: []Member{
		{Name: "solo", URL: m.owner.ts.URL, Replicas: []string{m.replica.ts.URL}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	cases := []struct {
		method, path string
		body         any
		code         api.ErrorCode
	}{
		{"GET", "/nope", nil, api.CodeNotFound},
		{"PUT", "/v1/graphs", nil, api.CodeNotFound},
		{"POST", "/v1/graphs", api.RegisterGraphRequest{Name: "bad name"}, api.CodeInvalidName},
		{"GET", "/v1/graphs/bad%20name", nil, api.CodeInvalidName},
		{"GET", "/v1/jobs/job-1", nil, api.CodeNotFound},         // no member suffix
		{"GET", "/v1/jobs/job-1@9.solo", nil, api.CodeNotFound},  // endpoint out of range
		{"GET", "/v1/jobs/job-1@0.ghost", nil, api.CodeNotFound}, // unknown member
	}
	for _, c := range cases {
		code, raw := doRaw(t, c.method, cts.URL+c.path, c.body)
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("%s %s: body %q not an envelope: %v", c.method, c.path, raw, err)
		}
		if e.Code != c.code || code != api.StatusOf(c.code) || e.Reason == "" {
			t.Fatalf("%s %s = %d %s, want code %s", c.method, c.path, code, raw, c.code)
		}
	}

	// Errors raised on the node pass through the coordinator verbatim.
	code, raw := doRaw(t, "GET", cts.URL+"/v1/graphs/missing", nil)
	var e api.Error
	if err := json.Unmarshal(raw, &e); err != nil || code != 404 || e.Code != api.CodeNotFound {
		t.Fatalf("proxied 404 = %d %s", code, raw)
	}
}
