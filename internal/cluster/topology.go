// Package cluster is tescd's coordinator tier: a thin routing layer
// that places each named graph on an owner node via rendezvous hashing,
// proxies mutations to the owner, and fans reads across the owner plus
// its replicas with health-gated member selection. The coordinator
// presents the exact single-node API — clients cannot tell a
// coordinator from a node — and does no graph computation of its own:
// per the specialized-path argument, the compute tier is the nodes.
//
// State transfer (node join, owner replacement) reuses the replication
// primitives verbatim: the joining node pulls a snapshot image and the
// WAL tail through internal/replica, blocks on Follower.CatchUp, is
// promoted out of read-only mode, and the coordinator then flips
// placement atomically. See docs/CLUSTER.md.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Member is one cluster member: an owner node plus the read replicas
// that follow it (each typically a tescd running -follow against the
// owner).
type Member struct {
	Name string `json:"name"`
	// URL is the owner endpoint — the only endpoint mutations go to.
	URL string `json:"url"`
	// Replicas are read-eligible follower endpoints, consulted in order
	// when the owner cannot serve a read.
	Replicas []string `json:"replicas,omitempty"`
}

// Topology is the static cluster layout, either parsed from the -peers
// flag or loaded from a JSON file.
type Topology struct {
	Members []Member `json:"members"`
}

// Validate rejects topologies the coordinator cannot route on.
func (t Topology) Validate() error {
	if len(t.Members) == 0 {
		return fmt.Errorf("cluster: topology has no members")
	}
	seen := make(map[string]bool, len(t.Members))
	for _, m := range t.Members {
		if m.Name == "" {
			return fmt.Errorf("cluster: member with empty name")
		}
		if strings.ContainsAny(m.Name, "@. \t") {
			// Member names embed into job IDs ("job-3@0.node1") and the
			// placement hash; the separators must stay unambiguous.
			return fmt.Errorf("cluster: member name %q must not contain '@', '.', or spaces", m.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		if m.URL == "" {
			return fmt.Errorf("cluster: member %q has no owner URL", m.Name)
		}
	}
	return nil
}

// ParsePeers parses the -peers flag: comma-separated members, each
// "name=ownerURL" with optional "+replicaURL" suffixes:
//
//	-peers n1=http://h1:8537+http://h1r:8538,n2=http://h2:8537
func ParsePeers(spec string) (Topology, error) {
	var t Topology
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		if !ok {
			return t, fmt.Errorf("cluster: -peers entry %q: want name=url[+replica...]", part)
		}
		eps := strings.Split(urls, "+")
		m := Member{Name: name, URL: strings.TrimRight(eps[0], "/")}
		for _, r := range eps[1:] {
			if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
				m.Replicas = append(m.Replicas, r)
			}
		}
		t.Members = append(t.Members, m)
	}
	return t, t.Validate()
}

// LoadTopology reads a topology from a JSON file:
//
//	{"members": [{"name": "n1", "url": "http://h1:8537",
//	              "replicas": ["http://h1r:8538"]}, ...]}
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, err
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("cluster: parsing topology %s: %w", path, err)
	}
	for i := range t.Members {
		t.Members[i].URL = strings.TrimRight(t.Members[i].URL, "/")
		for j := range t.Members[i].Replicas {
			t.Members[i].Replicas[j] = strings.TrimRight(t.Members[i].Replicas[j], "/")
		}
	}
	return t, t.Validate()
}
