package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestParsePeers(t *testing.T) {
	top, err := ParsePeers("n1=http://h1:8537+http://h1r:8538/,n2=http://h2:8537, n3=http://h3:8537 ")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(top.Members) != 3 {
		t.Fatalf("members = %d, want 3", len(top.Members))
	}
	m := top.Members[0]
	if m.Name != "n1" || m.URL != "http://h1:8537" || len(m.Replicas) != 1 || m.Replicas[0] != "http://h1r:8538" {
		t.Fatalf("member 0 = %+v", m)
	}
	if top.Members[2].Name != "n3" || top.Members[2].URL != "http://h3:8537" {
		t.Fatalf("member 2 = %+v", top.Members[2])
	}

	for _, bad := range []string{
		"",                        // no members
		"http://h1:8537",          // missing name=
		"n1=",                     // empty URL
		"n1=http://a,n1=http://b", // duplicate name
		"bad.name=http://a",       // '.' collides with the job-ID suffix
		"bad@name=http://a",       // '@' collides with the job-ID suffix
		"bad name=http://a",       // spaces
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): want error", bad)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	body := `{"members":[{"name":"a","url":"http://a:1/","replicas":["http://ar:2/"]},{"name":"b","url":"http://b:1"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	top, err := LoadTopology(path)
	if err != nil {
		t.Fatalf("LoadTopology: %v", err)
	}
	if top.Members[0].URL != "http://a:1" || top.Members[0].Replicas[0] != "http://ar:2" {
		t.Fatalf("trailing slashes not trimmed: %+v", top.Members[0])
	}
	if _, err := LoadTopology(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

// Rendezvous placement must be deterministic, cover every member at
// realistic graph counts, and move only the departed member's graphs
// when the member set shrinks.
func TestRendezvousPlacement(t *testing.T) {
	members := []string{"n1", "n2", "n3"}
	graphs := make([]string, 64)
	for i := range graphs {
		graphs[i] = fmt.Sprintf("graph-%02d", i)
	}

	owner := make(map[string]string, len(graphs))
	per := make(map[string]int)
	for _, g := range graphs {
		o := rendezvousOwner(members, g)
		if o2 := rendezvousOwner(members, g); o2 != o {
			t.Fatalf("placement of %q not deterministic: %q vs %q", g, o, o2)
		}
		owner[g] = o
		per[o]++
	}
	for _, m := range members {
		if per[m] == 0 {
			t.Fatalf("member %s owns no graphs: %v", m, per)
		}
	}

	// Drop n2: graphs owned by n1 or n3 must not move.
	shrunk := []string{"n1", "n3"}
	moved := 0
	for _, g := range graphs {
		now := rendezvousOwner(shrunk, g)
		switch owner[g] {
		case "n2":
			moved++
		default:
			if now != owner[g] {
				t.Fatalf("graph %q moved %s -> %s though its owner survived", g, owner[g], now)
			}
		}
	}
	if moved != per["n2"] {
		t.Fatalf("moved %d graphs, want exactly n2's %d", moved, per["n2"])
	}

	if rendezvousOwner(nil, "g") != "" {
		t.Fatal("empty member set must yield no owner")
	}
}

func TestSplitJobID(t *testing.T) {
	cases := []struct {
		id     string
		bare   string
		epIdx  int
		member string
		ok     bool
	}{
		{"job-3@0.n1", "job-3", 0, "n1", true},
		{"job-12@2.node-b", "job-12", 2, "node-b", true},
		{"job-3", "", 0, "", false},      // no suffix
		{"job-3@n1", "", 0, "", false},   // no endpoint index
		{"job-3@x.n1", "", 0, "", false}, // non-numeric index
		{"job-3@0.", "", 0, "", false},   // empty member
		{"job-3@-1.n1", "", 0, "", false},
	}
	for _, c := range cases {
		bare, idx, member, ok := splitJobID(c.id)
		if ok != c.ok || bare != c.bare || idx != c.epIdx || member != c.member {
			t.Errorf("splitJobID(%q) = (%q,%d,%q,%v), want (%q,%d,%q,%v)",
				c.id, bare, idx, member, ok, c.bare, c.epIdx, c.member, c.ok)
		}
	}
}
