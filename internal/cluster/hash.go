package cluster

import "hash/fnv"

// Placement is rendezvous (highest-random-weight) hashing: every
// (member, graph) pair gets a pseudo-random score and the graph lives
// on the member with the highest. Two properties make it the right
// choice for graph-granular sharding:
//
//   - Determinism without state: any coordinator with the same member
//     list computes the same owner, so placement needs no consensus and
//     survives coordinator restarts with no placement log.
//   - Minimal movement: adding or removing one member only moves the
//     graphs whose top score was (or becomes) that member — in
//     expectation 1/n of them — never a full reshuffle.

// score is the rendezvous weight of graph on member, an FNV-1a hash of
// the pair with a separator so ("ab","c") and ("a","bc") differ. The
// raw FNV value is passed through an avalanche finalizer: for short
// strings FNV's per-byte multiply leaves the member prefix dominating
// the comparison, which would rank members in the same order for every
// graph and send all placements to one node.
func score(member, graph string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(graph))
	return mix(h.Sum64())
}

// mix is the 64-bit avalanche finalizer from MurmurHash3 (fmix64):
// every input bit flips each output bit with ~1/2 probability.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvousOwner picks the owning member name for graph from members.
// Empty members yields "".
func rendezvousOwner(members []string, graph string) string {
	var best string
	var bestScore uint64
	for _, m := range members {
		if s := score(m, graph); best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}
