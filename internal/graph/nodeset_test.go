package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNodeSetBasic(t *testing.T) {
	s := NewNodeSet(10, []NodeID{3, 1, 3, 7})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup)", s.Len())
	}
	want := []NodeID{1, 3, 7}
	for i, v := range s.Members() {
		if v != want[i] {
			t.Fatalf("Members = %v, want %v", s.Members(), want)
		}
	}
	for _, v := range want {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	if s.Contains(0) || s.Contains(9) || s.Contains(-1) || s.Contains(10) {
		t.Error("Contains returned true for a non-member")
	}
	if s.Universe() != 10 {
		t.Errorf("Universe = %d", s.Universe())
	}
}

func TestNodeSetEmpty(t *testing.T) {
	s := NewNodeSet(5, nil)
	if s.Len() != 0 {
		t.Fatalf("empty set Len = %d", s.Len())
	}
	if s.Contains(0) {
		t.Error("empty set contains 0")
	}
	c := s.Complement()
	if c.Len() != 5 {
		t.Errorf("complement of empty = %d members, want 5", c.Len())
	}
}

func TestNodeSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range member")
		}
	}()
	NewNodeSet(3, []NodeID{5})
}

func TestNodeSetAlgebra(t *testing.T) {
	a := NewNodeSet(10, []NodeID{1, 2, 3, 4})
	b := NewNodeSet(10, []NodeID{3, 4, 5, 6})

	u := a.Union(b)
	if u.Len() != 6 {
		t.Errorf("union len = %d, want 6", u.Len())
	}
	for _, v := range []NodeID{1, 2, 3, 4, 5, 6} {
		if !u.Contains(v) {
			t.Errorf("union missing %d", v)
		}
	}

	i := a.Intersect(b)
	if i.Len() != 2 || !i.Contains(3) || !i.Contains(4) {
		t.Errorf("intersect = %v", i.Members())
	}

	d := a.Difference(b)
	if d.Len() != 2 || !d.Contains(1) || !d.Contains(2) {
		t.Errorf("difference = %v", d.Members())
	}
}

func TestNodeSetUniverseMismatchPanics(t *testing.T) {
	a := NewNodeSet(5, []NodeID{1})
	b := NewNodeSet(6, []NodeID{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for universe mismatch")
		}
	}()
	a.Union(b)
}

func TestNodeSetCountIn(t *testing.T) {
	s := NewNodeSet(10, []NodeID{2, 4, 6})
	if c := s.CountIn([]NodeID{1, 2, 3, 4}); c != 2 {
		t.Errorf("CountIn = %d, want 2", c)
	}
	if c := s.CountIn(nil); c != 0 {
		t.Errorf("CountIn(nil) = %d, want 0", c)
	}
	// duplicates in the probe slice count each time (callers pass
	// distinct BFS-visited nodes).
	if c := s.CountIn([]NodeID{2, 2}); c != 2 {
		t.Errorf("CountIn dup = %d, want 2", c)
	}
}

func TestNodeSetComplement(t *testing.T) {
	s := NewNodeSet(6, []NodeID{0, 2, 4})
	c := s.Complement()
	if c.Len() != 3 {
		t.Fatalf("complement len = %d, want 3", c.Len())
	}
	for _, v := range []NodeID{1, 3, 5} {
		if !c.Contains(v) {
			t.Errorf("complement missing %d", v)
		}
	}
	cc := c.Complement()
	if !cc.Equal(s) {
		t.Error("double complement != original")
	}
}

func TestNodeSetEqual(t *testing.T) {
	a := NewNodeSet(5, []NodeID{1, 2})
	b := NewNodeSet(5, []NodeID{2, 1})
	c := NewNodeSet(5, []NodeID{1, 3})
	d := NewNodeSet(6, []NodeID{1, 2})
	if !a.Equal(b) {
		t.Error("order should not matter")
	}
	if a.Equal(c) {
		t.Error("different members compare equal")
	}
	if a.Equal(d) {
		t.Error("different universes compare equal")
	}
}

// Property: union cardinality follows inclusion–exclusion.
func TestNodeSetInclusionExclusion(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		const n = 64
		rngA := rand.New(rand.NewPCG(seedA, 1))
		rngB := rand.New(rand.NewPCG(seedB, 2))
		var ma, mb []NodeID
		for i := 0; i < 20; i++ {
			ma = append(ma, NodeID(rngA.IntN(n)))
			mb = append(mb, NodeID(rngB.IntN(n)))
		}
		a := NewNodeSet(n, ma)
		b := NewNodeSet(n, mb)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CountIn over the full universe equals Len.
func TestNodeSetCountInUniverse(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 100
		rng := rand.New(rand.NewPCG(seed, 3))
		var members []NodeID
		for i := 0; i < 30; i++ {
			members = append(members, NodeID(rng.IntN(n)))
		}
		s := NewNodeSet(n, members)
		all := make([]NodeID, n)
		for i := range all {
			all[i] = NodeID(i)
		}
		return s.CountIn(all) == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
