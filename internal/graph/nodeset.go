package graph

import "sort"

// NodeSet is a set of nodes supporting O(1) membership tests via a
// bitset, plus ordered iteration via a sorted slice. It is the
// representation used for event occurrence sets (Va, Vb, Va∪b) and for
// materialized vicinities: density computation needs fast "is this
// visited node an event node?" tests on every BFS expansion.
//
// The bitset is sized to the universe (the graph's node count), so a set
// over a 20M-node graph costs 2.5 MB regardless of cardinality.
type NodeSet struct {
	sorted []NodeID
	bits   []uint64
	n      int // universe size
}

// NewNodeSet builds a NodeSet over a universe of n nodes from the given
// members. The input may be unsorted and contain duplicates; out-of-range
// IDs panic.
func NewNodeSet(n int, members []NodeID) *NodeSet {
	s := &NodeSet{
		bits: make([]uint64, (n+63)/64),
		n:    n,
	}
	for _, v := range members {
		if v < 0 || int(v) >= n {
			panic("graph: NodeSet member out of range")
		}
		w, b := v>>6, uint(v&63)
		if s.bits[w]&(1<<b) == 0 {
			s.bits[w] |= 1 << b
			s.sorted = append(s.sorted, v)
		}
	}
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	return s
}

// Contains reports whether v is in the set.
func (s *NodeSet) Contains(v NodeID) bool {
	if v < 0 || int(v) >= s.n {
		return false
	}
	return s.bits[v>>6]&(1<<uint(v&63)) != 0
}

// Len returns the cardinality of the set.
func (s *NodeSet) Len() int { return len(s.sorted) }

// Universe returns the universe size the set was created with.
func (s *NodeSet) Universe() int { return s.n }

// Members returns the members in ascending order. The slice aliases
// internal storage and must not be modified.
func (s *NodeSet) Members() []NodeID { return s.sorted }

// Union returns a new set containing the members of s and t. Both sets
// must share the same universe.
func (s *NodeSet) Union(t *NodeSet) *NodeSet {
	if s.n != t.n {
		panic("graph: NodeSet universe mismatch")
	}
	out := &NodeSet{bits: make([]uint64, len(s.bits)), n: s.n}
	for i := range s.bits {
		out.bits[i] = s.bits[i] | t.bits[i]
	}
	out.sorted = mergeSorted(s.sorted, t.sorted)
	return out
}

// Intersect returns a new set containing nodes in both s and t.
func (s *NodeSet) Intersect(t *NodeSet) *NodeSet {
	if s.n != t.n {
		panic("graph: NodeSet universe mismatch")
	}
	small, big := s, t
	if small.Len() > big.Len() {
		small, big = big, small
	}
	var members []NodeID
	for _, v := range small.sorted {
		if big.Contains(v) {
			members = append(members, v)
		}
	}
	return NewNodeSet(s.n, members)
}

// Difference returns a new set containing nodes in s but not in t.
func (s *NodeSet) Difference(t *NodeSet) *NodeSet {
	if s.n != t.n {
		panic("graph: NodeSet universe mismatch")
	}
	var members []NodeID
	for _, v := range s.sorted {
		if !t.Contains(v) {
			members = append(members, v)
		}
	}
	return NewNodeSet(s.n, members)
}

// CountIn returns |s ∩ nodes| for an arbitrary node slice, the primitive
// behind density evaluation (Eq. 2: |Va ∩ V^h_r|).
func (s *NodeSet) CountIn(nodes []NodeID) int {
	c := 0
	for _, v := range nodes {
		if s.bits[v>>6]&(1<<uint(v&63)) != 0 {
			c++
		}
	}
	return c
}

// Equal reports whether s and t contain exactly the same members over the
// same universe.
func (s *NodeSet) Equal(t *NodeSet) bool {
	if s.n != t.n || len(s.sorted) != len(t.sorted) {
		return false
	}
	for i, v := range s.sorted {
		if t.sorted[i] != v {
			return false
		}
	}
	return true
}

func mergeSorted(a, b []NodeID) []NodeID {
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Complement returns the set of universe nodes not in s.
func (s *NodeSet) Complement() *NodeSet {
	members := make([]NodeID, 0, s.n-s.Len())
	for v := 0; v < s.n; v++ {
		if !s.Contains(NodeID(v)) {
			members = append(members, NodeID(v))
		}
	}
	return NewNodeSet(s.n, members)
}
