package graph

import "fmt"

// CSR exposes the graph's raw compressed-sparse-row arrays: neighbors
// of v are adj[offsets[v]:offsets[v+1]]. The slices alias the graph's
// internal storage and must not be modified. They are the payload the
// snapshot subsystem persists: writing them back through FromCSR
// reconstructs the graph without re-running the Builder's
// symmetrize/sort/dedup pass.
func (g *Graph) CSR() (offsets []int64, adj []NodeID) {
	if len(g.offsets) == 0 {
		// Normalize the zero value so n = len(offsets)-1 holds.
		return []int64{0}, nil
	}
	return g.offsets, g.adj
}

// FromCSR reconstructs a graph directly from CSR arrays, taking
// ownership of the slices. It enforces every invariant the Builder
// establishes — this is the trust boundary for graphs deserialized from
// disk, so nothing is assumed:
//
//   - offsets has length n+1 with offsets[0] == 0, is non-decreasing,
//     and ends at len(adj);
//   - every adjacency row is strictly increasing (sorted, no
//     duplicates — HasEdge binary-searches rows), in range, and free of
//     self-loops;
//   - undirected graphs are symmetric: every arc u→v has its mirror
//     v→u.
//
// Validation is O(n + m): symmetry is checked by the two-pointer sweep
// below, not per-arc binary search, because this sits on the daemon's
// warm-start path. A violated invariant returns an error; nothing
// panics downstream.
func FromCSR(offsets []int64, adj []NodeID, directed bool) (*Graph, error) {
	if len(offsets) < 1 {
		return nil, fmt.Errorf("graph: CSR offsets empty (need n+1 entries)")
	}
	n := len(offsets) - 1
	if n > MaxNodes {
		return nil, fmt.Errorf("graph: CSR node count %d exceeds max %d", n, MaxNodes)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offsets[0] = %d, want 0", offsets[0])
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at node %d (%d -> %d)", v, offsets[v], offsets[v+1])
		}
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: CSR offsets end at %d, adjacency has %d entries", offsets[n], len(adj))
	}
	m := int64(len(adj))
	if !directed && m%2 != 0 {
		return nil, fmt.Errorf("graph: undirected CSR has odd arc count %d", m)
	}
	// Single sweep, u ascending: validate u's row (sorted, in range, no
	// self-loop) and, for undirected graphs, run the two-pointer mirror
	// check — each arc (u, v) with v > u must consume the next entry of
	// v's smaller-neighbor prefix, which a symmetric sorted CSR yields
	// in exactly ascending-u order, so every mirror is one cursor
	// comparison instead of a binary search. The checks for u's own row
	// and for the rows the cursors touch commute: the graph is accepted
	// only if every check over the whole sweep passes.
	var cursor []int64
	if !directed {
		cursor = make([]int64, n)
	}
	for u := 0; u < n; u++ {
		row := adj[offsets[u]:offsets[u+1]]
		prev := NodeID(-1)
		for _, v := range row {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: CSR neighbor %d of node %d outside [0,%d)", v, u, n)
			}
			if v == NodeID(u) {
				return nil, fmt.Errorf("graph: CSR self-loop at node %d", u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: CSR row of node %d not strictly increasing (%d after %d)", u, v, prev)
			}
			prev = v
			if !directed && v > NodeID(u) {
				k := cursor[v]
				if k >= offsets[v+1]-offsets[v] || adj[offsets[v]+k] != NodeID(u) {
					return nil, fmt.Errorf("graph: undirected CSR not symmetric: arc %d->%d has no mirror", u, v)
				}
				cursor[v] = k + 1
			}
		}
	}
	if !directed {
		// Every smaller-neighbor prefix must be fully consumed: a
		// leftover entry w < v would be an arc (v, w) whose mirror
		// (w, v) never appeared in the sweep.
		for v := 0; v < n; v++ {
			if k := cursor[v]; offsets[v]+k < offsets[v+1] && adj[offsets[v]+k] < NodeID(v) {
				return nil, fmt.Errorf("graph: undirected CSR not symmetric: arc %d->%d has no mirror", v, adj[offsets[v]+k])
			}
		}
		m /= 2
	}
	return &Graph{offsets: offsets, adj: adj, m: m, directed: directed}, nil
}
