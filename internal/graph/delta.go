package graph

import (
	"fmt"
	"sort"
)

// EdgeChange is one edge flip: the insertion (Insert == true) or
// deletion of the edge {U, V} (the arc U→V on directed graphs). A
// sequence of EdgeChanges is the unit the dynamic-graph subsystem
// exchanges: graphgen produces them as workloads, Delta accumulates and
// compacts them, and vicinity.Index.ApplyDelta consumes them to repair
// the |V^h_v| index incrementally.
type EdgeChange struct {
	U, V   NodeID
	Insert bool
}

// Delta is a mutable edge-set overlay on an immutable CSR Graph: edge
// insertions and deletions accumulate in small hash overlays while the
// base graph stays shared and untouched, and Compact merges both into a
// fresh CSR snapshot in O(n + m + Δ log Δ) — no re-sort of the full
// adjacency. This is the write path of the dynamic-graph subsystem: the
// paper's index structures assume an immutable graph (§4.2), so updates
// are staged here and published as new snapshots.
//
// A Delta is not safe for concurrent use; the serving tier serializes
// writers and publishes compacted snapshots to readers.
type Delta struct {
	base    *Graph
	added   map[uint64]struct{}
	removed map[uint64]struct{}
	log     []EdgeChange
	m       int64 // edge count of base+overlay
}

// NewDelta returns an empty overlay over base.
func NewDelta(base *Graph) *Delta {
	return &Delta{
		base:    base,
		added:   make(map[uint64]struct{}),
		removed: make(map[uint64]struct{}),
		m:       base.NumEdges(),
	}
}

// Base returns the immutable graph under the overlay.
func (d *Delta) Base() *Graph { return d.base }

// key normalizes an edge to a map key: undirected edges are stored with
// the smaller endpoint first, directed arcs keep their orientation.
func (d *Delta) key(u, v NodeID) uint64 {
	if !d.base.directed && u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func (d *Delta) check(u, v NodeID) error {
	if !d.base.Valid(u) || !d.base.Valid(v) {
		return fmt.Errorf("graph: edge (%d,%d) outside node range [0,%d)", u, v, d.base.NumNodes())
	}
	if u == v {
		return fmt.Errorf("graph: self-loop (%d,%d) not allowed", u, v)
	}
	return nil
}

// HasEdge reports whether the edge {u, v} (arc u→v when directed)
// exists in the overlaid graph.
func (d *Delta) HasEdge(u, v NodeID) bool {
	k := d.key(u, v)
	if _, ok := d.added[k]; ok {
		return true
	}
	if _, ok := d.removed[k]; ok {
		return false
	}
	return d.base.HasEdge(u, v)
}

// InsertEdge stages the insertion of {u, v}. It returns true if the
// edge was absent (the overlay changed), false if it already exists.
func (d *Delta) InsertEdge(u, v NodeID) (bool, error) {
	if err := d.check(u, v); err != nil {
		return false, err
	}
	if d.HasEdge(u, v) {
		return false, nil
	}
	k := d.key(u, v)
	if _, ok := d.removed[k]; ok {
		delete(d.removed, k) // re-inserting a staged deletion cancels it
	} else {
		d.added[k] = struct{}{}
	}
	d.m++
	d.log = append(d.log, EdgeChange{U: u, V: v, Insert: true})
	return true, nil
}

// DeleteEdge stages the deletion of {u, v}. It returns true if the edge
// existed (the overlay changed), false if it was already absent.
func (d *Delta) DeleteEdge(u, v NodeID) (bool, error) {
	if err := d.check(u, v); err != nil {
		return false, err
	}
	if !d.HasEdge(u, v) {
		return false, nil
	}
	k := d.key(u, v)
	if _, ok := d.added[k]; ok {
		delete(d.added, k) // deleting a staged insertion cancels it
	} else {
		d.removed[k] = struct{}{}
	}
	d.m--
	d.log = append(d.log, EdgeChange{U: u, V: v, Insert: false})
	return true, nil
}

// Apply stages a batch of changes, skipping no-ops (inserting a present
// edge, deleting an absent one). It returns the changes that took
// effect — the exact flip list an incremental index update must see.
func (d *Delta) Apply(changes []EdgeChange) ([]EdgeChange, error) {
	start := len(d.log)
	for _, c := range changes {
		var err error
		if c.Insert {
			_, err = d.InsertEdge(c.U, c.V)
		} else {
			_, err = d.DeleteEdge(c.U, c.V)
		}
		if err != nil {
			return nil, err
		}
	}
	return d.log[start:], nil
}

// NumEdges returns the edge count of the overlaid graph (arc count when
// directed).
func (d *Delta) NumEdges() int64 { return d.m }

// Pending returns the number of staged edge flips relative to the base
// graph (cancelling pairs collapse), the figure compaction policies key
// on.
func (d *Delta) Pending() int { return len(d.added) + len(d.removed) }

// Changes returns every change applied since the delta was created, in
// order, including pairs that later cancelled. The slice aliases
// internal storage.
func (d *Delta) Changes() []EdgeChange { return d.log }

// Compact merges the overlay into a fresh CSR snapshot and resets the
// delta onto it: a single O(n + m + Δ log Δ) pass that keeps each
// adjacency list sorted by merging the base list with the per-node
// staged insertions, instead of rebuilding (and re-sorting) the whole
// graph through a Builder.
func (d *Delta) Compact() *Graph {
	if len(d.added) == 0 && len(d.removed) == 0 {
		return d.base
	}
	g := d.base
	n := g.NumNodes()

	// Per-node staged insertions and removals, as half-edges (both
	// directions for undirected graphs), insertions sorted per node.
	// Nodes untouched by the overlay — almost all of them under a small
	// delta — keep their base adjacency via one bulk copy, so the merge
	// runs at memcpy speed instead of per-edge hash lookups.
	ins := make(map[NodeID][]NodeID, len(d.added)*2)
	for k := range d.added {
		u, v := NodeID(k>>32), NodeID(uint32(k))
		ins[u] = append(ins[u], v)
		if !g.directed {
			ins[v] = append(ins[v], u)
		}
	}
	for u := range ins {
		s := ins[u]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	del := make(map[NodeID][]NodeID, len(d.removed)*2)
	for k := range d.removed {
		u, v := NodeID(k>>32), NodeID(uint32(k))
		del[u] = append(del[u], v)
		if !g.directed {
			del[v] = append(del[v], u)
		}
	}
	for u := range del {
		s := del[u]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	offsets := make([]int64, n+1)
	half := int64(d.m)
	if !g.directed {
		half *= 2
	}
	adj := make([]NodeID, 0, half)
	for u := 0; u < n; u++ {
		offsets[u] = int64(len(adj))
		base := g.Neighbors(NodeID(u))
		add, gone := ins[NodeID(u)], del[NodeID(u)]
		if len(add) == 0 && len(gone) == 0 {
			adj = append(adj, base...)
			continue
		}
		// Three-cursor sorted merge: base minus gone, interleaved with
		// add — O(degree + staged changes) for the node.
		i, j, k := 0, 0, 0
		for i < len(base) || j < len(add) {
			switch {
			case j == len(add) || (i < len(base) && base[i] < add[j]):
				for k < len(gone) && gone[k] < base[i] {
					k++
				}
				if k < len(gone) && gone[k] == base[i] {
					k++
				} else {
					adj = append(adj, base[i])
				}
				i++
			default:
				adj = append(adj, add[j])
				j++
			}
		}
	}
	offsets[n] = int64(len(adj))

	out := &Graph{offsets: offsets, adj: adj, m: d.m, directed: g.directed}
	d.base = out
	clear(d.added)
	clear(d.removed)
	d.log = d.log[:0]
	return out
}
