package graph

import "math/rand/v2"

// Stats summarizes structural properties of a graph. It backs the dataset
// descriptions in EXPERIMENTS.md (node/edge counts, degree profile) and
// the surrogate-vs-paper comparisons in DESIGN.md.
type Stats struct {
	Nodes          int
	Edges          int64
	MinDegree      int
	MaxDegree      int
	AvgDegree      float64
	Isolated       int // nodes with degree 0
	Components     int
	LargestCompPct float64 // fraction of nodes in the largest component
}

// ComputeStats scans g and returns its Stats.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	s.MinDegree = g.Degree(0)
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.AvgDegree = 2 * float64(g.NumEdges()) / float64(n)
	sizes := ComponentSizes(g)
	s.Components = len(sizes)
	if len(sizes) > 0 {
		s.LargestCompPct = float64(sizes[0]) / float64(n)
	}
	return s
}

// DegreeHistogram returns hist where hist[d] is the number of nodes with
// degree d, up to the maximum degree.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if d := g.Degree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for v := 0; v < n; v++ {
		hist[g.Degree(NodeID(v))]++
	}
	return hist
}

// EstimateDiameter lower-bounds the diameter of g's largest component by
// the double-sweep heuristic repeated rounds times: BFS from a random
// node, then BFS again from the farthest node found. Real-life graphs'
// "small world" property (§4.2 of the paper) is what makes h > 3 vicinity
// levels uninteresting; this estimator documents that property for the
// surrogate datasets.
func EstimateDiameter(g *Graph, rounds int, rng *rand.Rand) int {
	if g.NumNodes() == 0 {
		return 0
	}
	comp := LargestComponent(g)
	if len(comp) == 0 {
		return 0
	}
	b := NewBFS(g)
	best := 0
	for i := 0; i < rounds; i++ {
		start := comp[rng.IntN(len(comp))]
		var far NodeID
		farD := -1
		b.Run([]NodeID{start}, g.NumNodes(), func(v NodeID, d int) {
			if d > farD {
				farD = d
				far = v
			}
		})
		if ecc := b.Eccentricity(far); ecc > best {
			best = ecc
		}
	}
	return best
}

// LocalClusteringCoefficient returns the fraction of v's neighbor pairs
// that are themselves adjacent (0 for degree < 2). High clustering is
// the co-authorship-graph property that makes 1-hop density correlations
// detectable (see DESIGN.md §3).
func LocalClusteringCoefficient(g *Graph, v NodeID) float64 {
	ns := g.Neighbors(v)
	if len(ns) < 2 {
		return 0
	}
	closed := 0
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			if g.HasEdge(ns[i], ns[j]) {
				closed++
			}
		}
	}
	return float64(closed) / float64(len(ns)*(len(ns)-1)/2)
}

// AvgClusteringCoefficient estimates the mean local clustering
// coefficient over a uniform sample of nodes with degree ≥ 2 (all such
// nodes when sample <= 0).
func AvgClusteringCoefficient(g *Graph, sample int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	var total float64
	count := 0
	consider := func(v NodeID) {
		if g.Degree(v) >= 2 {
			total += LocalClusteringCoefficient(g, v)
			count++
		}
	}
	if sample <= 0 || sample >= n {
		for v := 0; v < n; v++ {
			consider(NodeID(v))
		}
	} else {
		for i := 0; i < sample; i++ {
			consider(NodeID(rng.IntN(n)))
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// AvgVicinitySize estimates the mean |V^h_v| over a sample of nodes,
// the quantity the paper denotes "average size of node h-vicinities"
// (c_B in §4.4). sample <= 0 means all nodes.
func AvgVicinitySize(g *Graph, h, sample int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	b := NewBFS(g)
	if sample <= 0 || sample >= n {
		total := 0.0
		for v := 0; v < n; v++ {
			total += float64(b.VicinitySize(NodeID(v), h))
		}
		return total / float64(n)
	}
	total := 0.0
	for i := 0; i < sample; i++ {
		total += float64(b.VicinitySize(NodeID(rng.IntN(n)), h))
	}
	return total / float64(sample)
}
