package graph

import (
	"math/rand/v2"
	"testing"
)

// rebuildWith returns g with the staged changes applied through the
// forgiving Builder — the oracle Compact is checked against.
func rebuildWith(g *Graph, changes []EdgeChange) *Graph {
	present := make(map[[2]NodeID]bool)
	g.ForEachEdge(func(u, v NodeID) bool {
		present[[2]NodeID{u, v}] = true
		return true
	})
	norm := func(u, v NodeID) [2]NodeID {
		if !g.directed && u > v {
			u, v = v, u
		}
		return [2]NodeID{u, v}
	}
	for _, c := range changes {
		if c.Insert {
			present[norm(c.U, c.V)] = true
		} else {
			delete(present, norm(c.U, c.V))
		}
	}
	var b *Builder
	if g.directed {
		b = NewDirectedBuilder(g.NumNodes())
	} else {
		b = NewBuilder(g.NumNodes())
	}
	for e := range present {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func graphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("nodes: got %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edges: got %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for v := 0; v < want.NumNodes(); v++ {
		g, w := got.Neighbors(NodeID(v)), want.Neighbors(NodeID(v))
		if len(g) != len(w) {
			t.Fatalf("node %d: degree %d, want %d", v, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("node %d: neighbors %v, want %v", v, g, w)
			}
		}
	}
}

func TestDeltaInsertDelete(t *testing.T) {
	g := Path(6) // 0-1-2-3-4-5
	d := NewDelta(g)

	if ok, _ := d.InsertEdge(0, 1); ok {
		t.Error("inserting an existing edge should be a no-op")
	}
	if ok, _ := d.InsertEdge(0, 5); !ok {
		t.Error("inserting a new edge should take effect")
	}
	if !d.HasEdge(0, 5) || !d.HasEdge(5, 0) {
		t.Error("inserted edge not visible (both orientations)")
	}
	if ok, _ := d.DeleteEdge(2, 3); !ok {
		t.Error("deleting an existing edge should take effect")
	}
	if d.HasEdge(2, 3) || d.HasEdge(3, 2) {
		t.Error("deleted edge still visible")
	}
	if got, want := d.NumEdges(), int64(5); got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if got := d.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}

	// Cancelling pairs collapse.
	if ok, _ := d.DeleteEdge(0, 5); !ok {
		t.Error("deleting the staged insertion should take effect")
	}
	if ok, _ := d.InsertEdge(3, 2); !ok {
		t.Error("re-inserting the staged deletion should take effect")
	}
	if got := d.Pending(); got != 0 {
		t.Errorf("Pending after cancellation = %d, want 0", got)
	}
	if d.Compact() != g {
		t.Error("Compact with an empty overlay should return the base graph")
	}
}

func TestDeltaValidation(t *testing.T) {
	d := NewDelta(Path(4))
	if _, err := d.InsertEdge(0, 4); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	if _, err := d.InsertEdge(2, 2); err == nil {
		t.Error("self-loop should fail")
	}
	if _, err := d.DeleteEdge(-1, 2); err == nil {
		t.Error("negative endpoint should fail")
	}
}

func TestDeltaCompactRandomized(t *testing.T) {
	for _, directed := range []bool{false, true} {
		rng := rand.New(rand.NewPCG(11, 7))
		n := 60
		var b *Builder
		if directed {
			b = NewDirectedBuilder(n)
		} else {
			b = NewBuilder(n)
		}
		for i := 0; i < 150; i++ {
			b.AddEdge(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
		}
		g := b.MustBuild()

		d := NewDelta(g)
		var applied []EdgeChange
		for step := 0; step < 400; step++ {
			u, v := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
			if u == v {
				continue
			}
			c := EdgeChange{U: u, V: v, Insert: rng.IntN(2) == 0}
			eff, err := d.Apply([]EdgeChange{c})
			if err != nil {
				t.Fatal(err)
			}
			applied = append(applied, eff...)
			if want := d.HasEdge(u, v); want != c.Insert && len(eff) > 0 {
				t.Fatalf("directed=%v step %d: HasEdge(%d,%d) = %v after %+v", directed, step, u, v, want, c)
			}
			// Compact at irregular intervals; the snapshot must match a
			// from-scratch rebuild, and the delta keeps working on it.
			if step%97 == 96 {
				snap := d.Compact()
				graphsEqual(t, snap, rebuildWith(g, applied))
			}
		}
		snap := d.Compact()
		graphsEqual(t, snap, rebuildWith(g, applied))
		if snap.NumEdges() != d.NumEdges() {
			t.Fatalf("directed=%v: snapshot edges %d != delta edges %d", directed, snap.NumEdges(), d.NumEdges())
		}
	}
}
