package graph

import (
	"math/rand/v2"
	"testing"
)

func randomTestGraph(t *testing.T, n, m int, directed bool, seed uint64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*3+1))
	var b *Builder
	if directed {
		b = NewDirectedBuilder(n)
	} else {
		b = NewBuilder(n)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCollectMatchesRunOrder pins Collect's contract: the returned
// slice is exactly the sequence of nodes Run's callback would see, in
// the same order — the property the flat density kernels rely on for
// bit-identical intensity sums.
func TestCollectMatchesRunOrder(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := randomTestGraph(t, 200, 600, directed, 12)
		b := NewBFS(g)
		for h := 0; h <= 3; h++ {
			for v := 0; v < g.NumNodes(); v += 7 {
				var viaRun []NodeID
				b.Run([]NodeID{NodeID(v)}, h, func(u NodeID, _ int) {
					viaRun = append(viaRun, u)
				})
				got := b.Collect([]NodeID{NodeID(v)}, h)
				if len(got) != len(viaRun) {
					t.Fatalf("directed=%v h=%d v=%d: Collect %d nodes, Run %d", directed, h, v, len(got), len(viaRun))
				}
				for i := range got {
					if got[i] != viaRun[i] {
						t.Fatalf("directed=%v h=%d v=%d: order diverges at %d: %d vs %d",
							directed, h, v, i, got[i], viaRun[i])
					}
				}
			}
		}
		// Multi-source with duplicate sources, like the batch samplers use.
		sources := []NodeID{3, 9, 3, 27}
		var viaRun []NodeID
		b.Run(sources, 2, func(u NodeID, _ int) { viaRun = append(viaRun, u) })
		got := b.Collect(sources, 2)
		if len(got) != len(viaRun) {
			t.Fatalf("multi-source: %d vs %d nodes", len(got), len(viaRun))
		}
		for i := range got {
			if got[i] != viaRun[i] {
				t.Fatalf("multi-source order diverges at %d", i)
			}
		}
	}
}

// TestCollectNegativeDepth matches Run's h < 0 no-op contract.
func TestCollectNegativeDepth(t *testing.T) {
	g := randomTestGraph(t, 10, 20, false, 1)
	b := NewBFS(g)
	if got := b.Collect([]NodeID{0}, -1); len(got) != 0 {
		t.Fatalf("Collect(h=-1) visited %d nodes", len(got))
	}
}

// TestEnginePool checks the pool's graph binding: engines for the
// pool's graph round-trip, foreign engines are dropped instead of
// recycled into the wrong snapshot's pool.
func TestEnginePool(t *testing.T) {
	g1 := randomTestGraph(t, 50, 100, false, 2)
	g2 := randomTestGraph(t, 50, 100, false, 3)
	pool := NewEnginePool(g1)
	if pool.Graph() != g1 {
		t.Fatal("pool bound to wrong graph")
	}
	e := pool.Get()
	if e.Graph() != g1 {
		t.Fatal("pooled engine bound to wrong graph")
	}
	pool.Put(e)
	if again := pool.Get(); again != e {
		t.Error("engine was not recycled") // sync.Pool may drop, but not immediately in a quiet test
	}
	foreign := NewBFS(g2)
	pool.Put(foreign) // must not panic, must not recycle
	got := pool.Get()
	if got == foreign {
		t.Fatal("foreign engine recycled into the pool")
	}
	pool.Put(nil) // tolerated
}
