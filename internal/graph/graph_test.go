package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestEmptyGraph(t *testing.T) {
	g := &Graph{}
	if g.NumNodes() != 0 {
		t.Errorf("empty graph NumNodes = %d, want 0", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Errorf("empty graph NumEdges = %d, want 0", g.NumEdges())
	}
	g2 := NewBuilder(0).MustBuild()
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Errorf("built empty graph = %v", g2)
	}
}

func TestBuilderBasic(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	wantDeg := []int{1, 2, 2, 1}
	for v, want := range wantDeg {
		if got := g.Degree(NodeID(v)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) should hold in both directions")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) should be false")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // reversed duplicate
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("self loop should be dropped, Degree(2) = %d", g.Degree(2))
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees after dedup = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should fail for out-of-range endpoint")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build should fail for negative endpoint")
	}
}

func TestGrowingBuilder(t *testing.T) {
	b := NewGrowingBuilder()
	b.AddEdge(0, 7)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	if g.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	ns := g.Neighbors(2)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("Neighbors(2) not sorted: %v", ns)
		}
	}
}

func TestEdgesIteration(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(Edges) = %d, want 4", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized u < v", e)
		}
	}
	// early stop
	count := 0
	g.ForEachEdge(func(u, v NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEachEdge early stop visited %d, want 2", count)
	}
}

func TestClassicGraphs(t *testing.T) {
	cases := []struct {
		name  string
		g     *Graph
		nodes int
		edges int64
	}{
		{"path5", Path(5), 5, 4},
		{"cycle6", Cycle(6), 6, 6},
		{"complete5", Complete(5), 5, 10},
		{"star7", Star(7), 7, 6},
		{"grid3x4", Grid(3, 4), 12, 17},
		{"path1", Path(1), 1, 0},
	}
	for _, tc := range cases {
		if tc.g.NumNodes() != tc.nodes {
			t.Errorf("%s: nodes = %d, want %d", tc.name, tc.g.NumNodes(), tc.nodes)
		}
		if tc.g.NumEdges() != tc.edges {
			t.Errorf("%s: edges = %d, want %d", tc.name, tc.g.NumEdges(), tc.edges)
		}
	}
}

func TestBFSDepthsOnPath(t *testing.T) {
	g := Path(10)
	b := NewBFS(g)
	depths := map[NodeID]int{}
	b.Run([]NodeID{0}, 4, func(v NodeID, d int) { depths[v] = d })
	if len(depths) != 5 {
		t.Fatalf("4-hop BFS from path end reached %d nodes, want 5", len(depths))
	}
	for v := NodeID(0); v <= 4; v++ {
		if depths[v] != int(v) {
			t.Errorf("depth(%d) = %d, want %d", v, depths[v], v)
		}
	}
}

func TestBFSVisitsOnce(t *testing.T) {
	g := Cycle(8)
	b := NewBFS(g)
	seen := map[NodeID]int{}
	b.Run([]NodeID{0}, 8, func(v NodeID, _ int) { seen[v]++ })
	for v, c := range seen {
		if c != 1 {
			t.Errorf("node %d visited %d times", v, c)
		}
	}
	if len(seen) != 8 {
		t.Errorf("reached %d nodes, want 8", len(seen))
	}
}

func TestBFSDuplicateSources(t *testing.T) {
	g := Path(5)
	b := NewBFS(g)
	count := 0
	b.Run([]NodeID{2, 2, 2}, 0, func(NodeID, int) { count++ })
	if count != 1 {
		t.Errorf("duplicate sources visited %d times, want 1", count)
	}
}

func TestBFSNegativeHops(t *testing.T) {
	g := Path(5)
	b := NewBFS(g)
	count := 0
	b.Run([]NodeID{2}, -1, func(NodeID, int) { count++ })
	if count != 0 {
		t.Errorf("h=-1 visited %d nodes, want 0", count)
	}
}

func TestVicinityMatchesDefinition(t *testing.T) {
	// On a 5x5 grid, 1-vicinity of center = center + 4 neighbors.
	g := Grid(5, 5)
	b := NewBFS(g)
	center := NodeID(12)
	v1 := b.Vicinity(center, 1, nil)
	if len(v1) != 5 {
		t.Fatalf("|V^1| of grid center = %d, want 5", len(v1))
	}
	v2 := b.Vicinity(center, 2, nil)
	if len(v2) != 13 {
		t.Fatalf("|V^2| of grid center = %d, want 13", len(v2))
	}
	if b.VicinitySize(center, 2) != 13 {
		t.Errorf("VicinitySize disagrees with Vicinity length")
	}
}

func TestVicinityZeroHop(t *testing.T) {
	g := Path(5)
	b := NewBFS(g)
	v := b.Vicinity(3, 0, nil)
	if len(v) != 1 || v[0] != 3 {
		t.Fatalf("0-vicinity = %v, want [3]", v)
	}
}

// TestBatchBFSEqualsUnion is the differential test for Algorithm 1: the
// multi-source traversal must produce exactly the union of per-source
// h-vicinities.
func TestBatchBFSEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := randomGraph(200, 400, rng)
	b := NewBFS(g)
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.IntN(10)
		sources := make([]NodeID, k)
		for i := range sources {
			sources[i] = NodeID(rng.IntN(g.NumNodes()))
		}
		h := rng.IntN(4)

		batch := NewNodeSet(g.NumNodes(), b.SetVicinity(sources, h, nil))

		var union []NodeID
		for _, s := range sources {
			union = b.Vicinity(s, h, union)
		}
		want := NewNodeSet(g.NumNodes(), union)

		if !batch.Equal(want) {
			t.Fatalf("trial %d: batch BFS (%d nodes) != union of vicinities (%d nodes)",
				trial, batch.Len(), want.Len())
		}
	}
}

func TestVicinityMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := randomGraph(100, 250, rng)
	b := NewBFS(g)
	for trial := 0; trial < 10; trial++ {
		u := NodeID(rng.IntN(g.NumNodes()))
		prev := -1
		for h := 0; h <= 4; h++ {
			size := b.VicinitySize(u, h)
			if size < prev {
				t.Fatalf("vicinity size decreased: |V^%d_%d| = %d < %d", h, u, size, prev)
			}
			prev = size
		}
	}
}

func TestDistance(t *testing.T) {
	g := Path(10)
	b := NewBFS(g)
	if d := b.Distance(0, 9); d != 9 {
		t.Errorf("Distance(0,9) = %d, want 9", d)
	}
	if d := b.Distance(4, 4); d != 0 {
		t.Errorf("Distance(4,4) = %d, want 0", d)
	}
	// disconnected
	g2 := MustFromEdges(4, [][2]NodeID{{0, 1}, {2, 3}})
	b2 := NewBFS(g2)
	if d := b2.Distance(0, 3); d != -1 {
		t.Errorf("Distance across components = %d, want -1", d)
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(7)
	b := NewBFS(g)
	if e := b.Eccentricity(0); e != 6 {
		t.Errorf("Eccentricity(end) = %d, want 6", e)
	}
	if e := b.Eccentricity(3); e != 3 {
		t.Errorf("Eccentricity(middle) = %d, want 3", e)
	}
}

func TestNodesAtDistance(t *testing.T) {
	g := Grid(5, 5)
	b := NewBFS(g)
	ring := b.NodesAtDistance(12, 1, nil)
	if len(ring) != 4 {
		t.Errorf("grid center has %d nodes at distance 1, want 4", len(ring))
	}
	ring2 := b.NodesAtDistance(12, 2, nil)
	if len(ring2) != 8 {
		t.Errorf("grid center has %d nodes at distance 2, want 8", len(ring2))
	}
}

func TestBFSEpochWrap(t *testing.T) {
	g := Path(4)
	b := NewBFS(g)
	b.epoch = ^uint32(0) - 1 // force a wrap within two runs
	if n := b.VicinitySize(0, 3); n != 4 {
		t.Fatalf("pre-wrap vicinity = %d, want 4", n)
	}
	if n := b.VicinitySize(0, 3); n != 4 {
		t.Fatalf("post-wrap vicinity = %d, want 4", n)
	}
	if n := b.VicinitySize(3, 1); n != 2 {
		t.Fatalf("post-wrap vicinity = %d, want 2", n)
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(7, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	comp, count := Components(g)
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("component count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("nodes 0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("nodes 3,4 should share a component")
	}
	if comp[0] == comp[3] || comp[5] == comp[6] {
		t.Error("separate components should differ")
	}
}

func TestLargestComponent(t *testing.T) {
	g := MustFromEdges(7, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
	want := []NodeID{0, 1, 2}
	for i, v := range lc {
		if v != want[i] {
			t.Fatalf("largest component = %v, want %v", lc, want)
		}
	}
}

func TestComponentSizes(t *testing.T) {
	g := MustFromEdges(7, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	sizes := ComponentSizes(g)
	want := []int{3, 2, 1, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := MustFromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}})
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinDegree != 0 || s.MaxDegree != 2 {
		t.Errorf("degree range = [%d,%d], want [0,2]", s.MinDegree, s.MaxDegree)
	}
	if s.Isolated != 2 {
		t.Errorf("isolated = %d, want 2", s.Isolated)
	}
	if s.Components != 3 {
		t.Errorf("components = %d, want 3", s.Components)
	}
	if s.LargestCompPct != 0.6 {
		t.Errorf("largest component pct = %f, want 0.6", s.LargestCompPct)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // center degree 4, leaves degree 1
	hist := DegreeHistogram(g)
	if hist[1] != 4 || hist[4] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// triangle: every node fully clustered
	tri := Complete(3)
	if c := LocalClusteringCoefficient(tri, 0); c != 1 {
		t.Errorf("triangle cc = %g, want 1", c)
	}
	// star: center's neighbors never adjacent
	st := Star(5)
	if c := LocalClusteringCoefficient(st, 0); c != 0 {
		t.Errorf("star center cc = %g, want 0", c)
	}
	// degree < 2 → 0
	if c := LocalClusteringCoefficient(st, 1); c != 0 {
		t.Errorf("leaf cc = %g, want 0", c)
	}
	rng := rand.New(rand.NewPCG(12, 13))
	if avg := AvgClusteringCoefficient(tri, 0, rng); avg != 1 {
		t.Errorf("triangle avg cc = %g", avg)
	}
	if avg := AvgClusteringCoefficient(st, 0, rng); avg != 0 {
		t.Errorf("star avg cc = %g", avg)
	}
	// sampled estimate close to exact on a mixed graph
	g := randomGraph(300, 1500, rng)
	exact := AvgClusteringCoefficient(g, 0, rng)
	approx := AvgClusteringCoefficient(g, 200, rng)
	if math.Abs(exact-approx) > 0.1 {
		t.Errorf("sampled cc %g far from exact %g", approx, exact)
	}
	// empty graph
	if AvgClusteringCoefficient(&Graph{}, 0, rng) != 0 {
		t.Error("empty graph cc")
	}
}

func TestEstimateDiameter(t *testing.T) {
	g := Path(20)
	rng := rand.New(rand.NewPCG(7, 8))
	d := EstimateDiameter(g, 3, rng)
	if d != 19 {
		t.Errorf("path diameter estimate = %d, want 19", d)
	}
}

func TestAvgVicinitySize(t *testing.T) {
	g := Complete(6)
	rng := rand.New(rand.NewPCG(9, 10))
	if avg := AvgVicinitySize(g, 1, 0, rng); avg != 6 {
		t.Errorf("complete graph avg |V^1| = %f, want 6", avg)
	}
	if avg := AvgVicinitySize(g, 1, 3, rng); avg != 6 {
		t.Errorf("sampled avg |V^1| = %f, want 6", avg)
	}
}

// randomGraph builds a random multigraph-ish edge set; the builder
// deduplicates.
func randomGraph(n, m int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
	}
	return b.MustBuild()
}
