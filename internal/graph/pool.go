package graph

import "sync"

// EnginePool is a free list of BFS engines bound to one graph snapshot.
//
// Every BFS engine owns an O(|V|) epoch-stamped mark array (plus
// frontier buffers that grow to the largest traversal seen), so a
// serving tier that allocates a fresh engine per query pays an O(|V|)
// clear-page bill on every request. Pooling the engines amortizes the
// allocation across queries: a worker takes an engine, runs any number
// of traversals, and returns it warm.
//
// The pool is keyed to exactly one graph. Because graphs are immutable
// and a mutation publishes a *new* graph snapshot, binding the pool to
// the snapshot makes version invalidation automatic: the serving tier
// creates a fresh pool for the successor snapshot and drops the old one
// (tescd does this per GraphEntry, see server.GraphEntry.EnginePool).
// Engines bound to a different graph are rejected by Put, so a stale
// engine can never serve a new version's traversals.
//
// All methods are safe for concurrent use.
type EnginePool struct {
	g *Graph
	p sync.Pool
}

// NewEnginePool returns an empty pool of BFS engines for g.
func NewEnginePool(g *Graph) *EnginePool {
	ep := &EnginePool{g: g}
	ep.p.New = func() any { return NewBFS(g) }
	return ep
}

// Graph returns the graph snapshot the pool's engines are bound to.
func (ep *EnginePool) Graph() *Graph { return ep.g }

// Get takes an engine from the pool, allocating a new one when the pool
// is empty. Return it with Put when the traversal burst is done.
func (ep *EnginePool) Get() *BFS { return ep.p.Get().(*BFS) }

// Put returns an engine to the pool. Engines bound to a different graph
// are dropped silently — the caller may hold an engine across a graph
// mutation, and recycling it into the successor's pool would serve
// traversals over the wrong snapshot.
func (ep *EnginePool) Put(b *BFS) {
	if b == nil || b.g != ep.g {
		return
	}
	ep.p.Put(b)
}
