package graph

import "fmt"

// BFS is a reusable breadth-first-search engine over a fixed graph.
//
// TESC testing performs thousands of h-hop BFS traversals per event pair
// (one per density evaluation, plus the traversals inside the samplers),
// so the engine keeps its frontier queues and an epoch-stamped visited
// array across calls: after warm-up a traversal performs zero heap
// allocations. The engine is NOT safe for concurrent use; create one per
// goroutine (see NewBFS).
type BFS struct {
	g       *Graph
	mark    []uint32
	epoch   uint32
	cur     []NodeID
	next    []NodeID
	visited []NodeID // Collect's flat visit-order buffer

	// Collect's dense visited stamps: one byte per node instead of
	// Run's four, so the randomly probed working set is 4x smaller —
	// the probe is the hot load of the flat kernels. Epochs 1..255
	// cycle; the wrap clear is a vectorized memclr (~µs per 255
	// traversals). Lazily allocated.
	mark8  []uint8
	epoch8 uint8
}

// NewBFS returns a BFS engine bound to g.
func NewBFS(g *Graph) *BFS {
	return &BFS{
		g:    g,
		mark: make([]uint32, g.NumNodes()),
	}
}

// Graph returns the graph the engine is bound to.
func (b *BFS) Graph() *Graph { return b.g }

// Rebind points the engine at a different graph with the same node
// count, keeping all its allocated scratch. Soundness rests on the
// scratch being purely per-traversal: the mark arrays are epoch
// stamps compared against the *current* traversal's epoch (stale
// stamps from traversals over the previous graph are never read as
// visited), and the frontier/visit buffers are reset by every
// traversal. The monitor subsystem rebinds its retained engines
// across graph snapshots so a standing-query re-screen allocates no
// O(|V|) scratch per mutation.
func (b *BFS) Rebind(g *Graph) error {
	if g.NumNodes() != len(b.mark) {
		return fmt.Errorf("graph: rebinding BFS engine for %d nodes to a %d-node graph", len(b.mark), g.NumNodes())
	}
	b.g = g
	return nil
}

func (b *BFS) bump() {
	b.epoch++
	if b.epoch == 0 { // epoch counter wrapped; reset stamps
		for i := range b.mark {
			b.mark[i] = 0
		}
		b.epoch = 1
	}
}

// Run performs a breadth-first search of depth at most h starting from
// sources, invoking visit exactly once per distinct reached node with its
// BFS depth (sources have depth 0). Duplicate sources are visited once.
//
// With len(sources) > 1 this is exactly the paper's Batch BFS
// (Algorithm 1): the multi-source traversal that retrieves V^h of a node
// set in one pass, equivalent to an (h+1)-hop BFS from a virtual node
// attached to every source, with worst-case cost O(|V|+|E|) instead of
// O(|sources|·(|V|+|E|)).
func (b *BFS) Run(sources []NodeID, h int, visit func(v NodeID, depth int)) {
	b.RunUntil(sources, h, func(v NodeID, depth int) bool {
		visit(v, depth)
		return true
	})
}

// RunUntil is Run with early termination: the traversal stops as soon as
// visit returns false (the node it returned false for has still been
// visited). Whole-graph sampling (Algorithm 3) uses this to abort the
// eligibility BFS the moment an event node is seen.
func (b *BFS) RunUntil(sources []NodeID, h int, visit func(v NodeID, depth int) bool) {
	if h < 0 {
		return
	}
	b.bump()
	b.cur = b.cur[:0]
	for _, s := range sources {
		if b.mark[s] != b.epoch {
			b.mark[s] = b.epoch
			b.cur = append(b.cur, s)
			if !visit(s, 0) {
				return
			}
		}
	}
	for depth := 1; depth <= h && len(b.cur) > 0; depth++ {
		b.next = b.next[:0]
		for _, v := range b.cur {
			for _, u := range b.g.Neighbors(v) {
				if b.mark[u] != b.epoch {
					b.mark[u] = b.epoch
					b.next = append(b.next, u)
					if !visit(u, depth) {
						return
					}
				}
			}
		}
		b.cur, b.next = b.next, b.cur
	}
}

// Collect performs the same traversal as Run but without invoking a
// callback per node: the visited set is accumulated level by level in
// one flat buffer that doubles as the frontier queue (nodes of BFS
// level d occupy a contiguous run of the buffer), which removes the
// per-node indirect call from the hot loop. The returned slice lists
// every distinct reached node in visit order — identical to the order
// Run invokes its callback in — and aliases the engine's internal
// buffer: it is valid only until the next traversal on this engine.
//
// This is the traversal half of the repository's decoupled
// traversal/computation density kernels (docs/PERFORMANCE.md): callers
// scan the returned slice with flat array kernels instead of paying a
// closure call per visited node.
func (b *BFS) Collect(sources []NodeID, h int) []NodeID {
	vis := b.visited[:0]
	if h < 0 {
		return vis
	}
	if b.mark8 == nil {
		b.mark8 = make([]uint8, b.g.NumNodes())
	}
	b.epoch8++
	if b.epoch8 == 0 {
		clear(b.mark8)
		b.epoch8 = 1
	}
	mark, epoch := b.mark8, b.epoch8
	for _, s := range sources {
		if mark[s] != epoch {
			mark[s] = epoch
			vis = append(vis, s)
		}
	}
	offsets, adj := b.g.offsets, b.g.adj
	// The expansion loop is branchless in the visited test: marking is
	// idempotent so the stamp store runs unconditionally, the candidate
	// is written to the buffer unconditionally, and the cursor advances
	// by the comparison result (SETcc + ADD, no branch). The visited
	// probe is a ~50% data-dependent branch in overlapping vicinities —
	// exactly what branch predictors can't learn — so trading it for a
	// dead store measurably beats the naive loop.
	buf := vis[:cap(vis)]
	n := len(vis)
	lo, hi := 0, n
	for depth := 1; depth <= h && lo < hi; depth++ {
		for j := lo; j < hi; j++ {
			v := buf[j]
			row := adj[offsets[v]:offsets[v+1]]
			if len(buf)-n < len(row) {
				grown := make([]NodeID, (n+len(row))*2+64)
				copy(grown, buf[:n])
				buf = grown
			}
			for _, u := range row {
				inc := 0
				if mark[u] != epoch {
					inc = 1
				}
				mark[u] = epoch
				buf[n] = u
				n += inc
			}
		}
		lo, hi = hi, n
	}
	b.visited = buf[:n]
	return b.visited
}

// Vicinity appends every node of the h-vicinity of u (Definition 1:
// all nodes within distance h of u, including u itself) to out and
// returns the extended slice. Routed through the flat Collect kernel.
func (b *BFS) Vicinity(u NodeID, h int, out []NodeID) []NodeID {
	return append(out, b.Collect([]NodeID{u}, h)...)
}

// VicinitySize returns |V^h_u|, the node count of u's h-vicinity.
func (b *BFS) VicinitySize(u NodeID, h int) int {
	return len(b.Collect([]NodeID{u}, h))
}

// SetVicinity appends every node of the h-vicinity of the node set
// sources (Definition 2) to out and returns the extended slice. This is
// the paper's Batch BFS (Algorithm 1) used to materialize the full
// reference node set V^h_{a∪b}, routed through the flat Collect kernel
// — the multi-source traversal is a sampler-side hot path too (one per
// screened pair).
func (b *BFS) SetVicinity(sources []NodeID, h int, out []NodeID) []NodeID {
	return append(out, b.Collect(sources, h)...)
}

// Distance returns the hop distance from u to v, or -1 if v is not
// reachable from u. It expands at most the whole graph.
func (b *BFS) Distance(u, v NodeID) int {
	if u == v {
		return 0
	}
	dist := -1
	b.Run([]NodeID{u}, b.g.NumNodes(), func(w NodeID, d int) {
		if w == v && dist < 0 {
			dist = d
		}
	})
	return dist
}

// Eccentricity returns the largest BFS depth reached from u (the
// eccentricity of u within its connected component).
func (b *BFS) Eccentricity(u NodeID) int {
	max := 0
	b.Run([]NodeID{u}, b.g.NumNodes(), func(_ NodeID, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// NodesAtDistance appends to out every node at hop distance exactly d
// from u and returns the extended slice.
func (b *BFS) NodesAtDistance(u NodeID, d int, out []NodeID) []NodeID {
	b.Run([]NodeID{u}, d, func(v NodeID, depth int) {
		if depth == d {
			out = append(out, v)
		}
	})
	return out
}
