package graph

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// benchGraph is a ~100k-node sparse random graph approximating the
// coauthorship surrogate's density (the graphgen package depends on
// this one, so the substrate is generated locally).
var benchGraph struct {
	once sync.Once
	g    *Graph
	srcs []NodeID
}

func benchGraphSetup(tb testing.TB) {
	benchGraph.once.Do(func() {
		const n = 100000
		rng := rand.New(rand.NewPCG(3, 33))
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u := NodeID(rng.IntN(n))
			span := 1 + rng.IntN(200) // mostly-local edges, like communities
			v := u + NodeID(rng.IntN(2*span)-span)
			if v < 0 || v >= n || v == u {
				v = NodeID(rng.IntN(n))
				if v == u {
					continue
				}
			}
			b.AddEdge(u, v)
		}
		g, err := b.Build()
		if err != nil {
			panic(err)
		}
		benchGraph.g = g
		benchGraph.srcs = make([]NodeID, 512)
		for i := range benchGraph.srcs {
			benchGraph.srcs[i] = NodeID(rng.IntN(n))
		}
	})
}

// BenchmarkCollect measures the flat closure-free traversal kernel:
// 512 two-hop collections per op.
func BenchmarkCollect(b *testing.B) {
	benchGraphSetup(b)
	bfs := NewBFS(benchGraph.g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range benchGraph.srcs {
			_ = bfs.Collect([]NodeID{s}, 2)
		}
	}
}

// BenchmarkRunCallback is the same workload through the retained
// callback engine — the pre-PR 4 traversal path.
func BenchmarkRunCallback(b *testing.B) {
	benchGraphSetup(b)
	bfs := NewBFS(benchGraph.g)
	count := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range benchGraph.srcs {
			bfs.Run([]NodeID{s}, 2, func(NodeID, int) { count++ })
		}
	}
	_ = count
}

// BenchmarkEnginePool measures the pooled engine round-trip against the
// per-query allocation it replaces (one O(|V|) mark array each).
func BenchmarkEnginePool(b *testing.B) {
	benchGraphSetup(b)
	pool := NewEnginePool(benchGraph.g)
	pool.Put(pool.Get()) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pool.Get()
		_ = e.Collect([]NodeID{benchGraph.srcs[i%len(benchGraph.srcs)]}, 1)
		pool.Put(e)
	}
}

// BenchmarkNewBFSPerQuery is what EnginePool replaces: allocating fresh
// traversal state per query.
func BenchmarkNewBFSPerQuery(b *testing.B) {
	benchGraphSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewBFS(benchGraph.g)
		_ = e.Collect([]NodeID{benchGraph.srcs[i%len(benchGraph.srcs)]}, 1)
	}
}
