// Package graph provides the compact, read-optimized undirected graph
// representation used throughout the TESC reproduction, together with the
// breadth-first-search machinery (single-source h-hop BFS and the paper's
// multi-source Batch BFS, Algorithm 1) that every reference-node sampler
// and density computation is built on.
//
// Graphs are stored in compressed sparse row (CSR) form: a single offsets
// array and a single adjacency array. This keeps a 20M-node / 160M-edge
// graph (the paper's Twitter dataset) within a few GB and makes neighbor
// iteration a contiguous scan, which dominates the cost profile of h-hop
// BFS (Figure 10(a) of the paper).
package graph

import (
	"fmt"
	"math"
	"sync"
)

// NodeID identifies a node. Node IDs are dense: a graph with n nodes uses
// IDs 0..n-1. int32 halves the adjacency footprint relative to int and is
// sufficient for the paper's largest graph (20M nodes).
type NodeID int32

// MaxNodes is the largest node count a Graph supports.
const MaxNodes = math.MaxInt32

// Graph is an immutable undirected graph in CSR form. Build one with a
// Builder. The zero value is an empty graph.
//
// Every edge {u, v} is stored twice (u→v and v→u); NumEdges reports the
// undirected count. Self-loops and duplicate edges are removed at build
// time so that vicinity sizes and densities match the paper's simple-graph
// setting.
type Graph struct {
	offsets  []int64  // len = n+1; neighbors of v are adj[offsets[v]:offsets[v+1]]
	adj      []NodeID // concatenated sorted adjacency lists
	m        int64    // number of edges (undirected count, or arc count when directed)
	directed bool

	// transpose caches the reversed-arc graph of a directed graph:
	// Transpose is on per-mutation paths (dirty-set computation for
	// index repair and monitor invalidation), and rebuilding an
	// O(V+E) structure per call there would serialize mutations behind
	// it. Graphs are immutable, so the cache can never go stale.
	transposeOnce sync.Once
	transpose     *Graph
}

// Directed reports whether the graph stores one-way arcs (built with
// NewDirectedBuilder). The paper's §2 notes TESC "could be extended for
// graphs with directed edges": on a directed graph every vicinity,
// density and sampler definition applies verbatim with V^h_u read as the
// forward (out-edge) ball of u.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} (or, for directed graphs, the
// arc u→v) exists, by binary search over the adjacency list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.directed && g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

// Valid reports whether v is a node of g.
func (g *Graph) Valid(v NodeID) bool {
	return v >= 0 && int(v) < g.NumNodes()
}

// ForEachEdge invokes fn once per edge: for undirected graphs once per
// edge {u, v} with u < v, for directed graphs once per arc (u, v).
// Iteration stops early if fn returns false.
func (g *Graph) ForEachEdge(fn func(u, v NodeID) bool) {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if g.directed || NodeID(u) < v {
				if !fn(NodeID(u), v) {
					return
				}
			}
		}
	}
}

// Transpose returns the graph with every arc reversed. For undirected
// graphs it returns g itself; for directed graphs the reversed CSR is
// built once and cached (graphs are immutable), so repeated
// mutation-path calls pay a pointer load.
func (g *Graph) Transpose() *Graph {
	if !g.directed {
		return g
	}
	g.transposeOnce.Do(func() { g.transpose = g.buildTranspose() })
	return g.transpose
}

func (g *Graph) buildTranspose() *Graph {
	n := g.NumNodes()
	deg := make([]int64, n+1)
	for _, v := range g.adj {
		deg[v+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	adj := make([]NodeID, len(g.adj))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			adj[cursor[v]] = NodeID(u)
			cursor[v]++
		}
	}
	// per-source lists come out sorted because u ascends
	return &Graph{offsets: offsets, adj: adj, m: g.m, directed: true}
}

// Edges returns all undirected edges with u < v, in sorted order.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.m)
	g.ForEachEdge(func(u, v NodeID) bool {
		out = append(out, [2]NodeID{u, v})
		return true
	})
	return out
}

// String returns a short human-readable summary, e.g. "graph(n=5, m=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}
