package graph

import "testing"

func TestDirectedBuilder(t *testing.T) {
	b := NewDirectedBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 0) // duplicate arc
	b.AddEdge(3, 3) // self loop
	g := b.MustBuild()
	if !g.Directed() {
		t.Fatal("Directed() = false")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 arcs", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("arc direction not respected by HasEdge")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Errorf("out-degrees = %d, %d", g.Degree(0), g.Degree(2))
	}
	if g.Degree(3) != 0 {
		t.Error("self loop should be dropped")
	}
}

func TestDirectedForEachEdge(t *testing.T) {
	b := NewDirectedBuilder(3)
	b.AddEdge(2, 0) // reversed pairs both kept
	b.AddEdge(0, 2)
	g := b.MustBuild()
	arcs := g.Edges()
	if len(arcs) != 2 {
		t.Fatalf("arcs = %v", arcs)
	}
}

func TestDirectedBFSFollowsArcs(t *testing.T) {
	// chain 0 → 1 → 2; BFS from 2 must reach nothing.
	b := NewDirectedBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	bfs := NewBFS(g)
	if n := bfs.VicinitySize(0, 2); n != 3 {
		t.Errorf("forward vicinity of 0 = %d, want 3", n)
	}
	if n := bfs.VicinitySize(2, 2); n != 1 {
		t.Errorf("forward vicinity of 2 = %d, want 1 (no out-arcs)", n)
	}
}

func TestTranspose(t *testing.T) {
	b := NewDirectedBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(3, 0)
	g := b.MustBuild()
	tr := g.Transpose()
	if !tr.Directed() || tr.NumEdges() != 3 {
		t.Fatalf("transpose shape: %v", tr)
	}
	for _, arc := range [][2]NodeID{{1, 0}, {2, 0}, {0, 3}} {
		if !tr.HasEdge(arc[0], arc[1]) {
			t.Errorf("transpose missing arc %v", arc)
		}
	}
	if tr.HasEdge(0, 1) {
		t.Error("transpose kept a forward arc")
	}
	// transpose of an undirected graph is itself
	u := Path(3)
	if u.Transpose() != u {
		t.Error("undirected transpose should be identity")
	}
}

func TestDirectedWeakComponents(t *testing.T) {
	// arcs 0→1, 2→1: weakly one component {0,1,2}, node 3 isolated.
	b := NewDirectedBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	comp, count := Components(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("weak component split: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Error("isolated node merged")
	}
}
