package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph.
//
// The builder is forgiving: duplicate edges, reversed duplicates and
// self-loops may be added freely and are dropped during Build, matching
// the simple undirected graphs assumed by the paper (§2). Node count may
// either be fixed up front with NewBuilder or grow implicitly to the
// largest endpoint seen.
type Builder struct {
	n        int
	us       []NodeID
	vs       []NodeID
	fixed    bool
	directed bool
}

// NewBuilder returns a builder for a graph with exactly n nodes
// (IDs 0..n-1). Edges with endpoints outside that range cause Build to
// fail.
func NewBuilder(n int) *Builder {
	if n < 0 || n > MaxNodes {
		panic(fmt.Sprintf("graph: invalid node count %d", n))
	}
	return &Builder{n: n, fixed: true}
}

// NewGrowingBuilder returns a builder whose node count is one more than
// the largest endpoint added.
func NewGrowingBuilder() *Builder { return &Builder{} }

// NewDirectedBuilder returns a builder for a directed graph with exactly
// n nodes: AddEdge(u, v) records the one-way arc u→v. Build drops
// duplicate arcs and self-loops as in the undirected case.
func NewDirectedBuilder(n int) *Builder {
	if n < 0 || n > MaxNodes {
		panic(fmt.Sprintf("graph: invalid node count %d", n))
	}
	return &Builder{n: n, fixed: true, directed: true}
}

// AddEdge records the undirected edge {u, v}.
func (b *Builder) AddEdge(u, v NodeID) {
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	if !b.fixed {
		if int(u) >= b.n {
			b.n = int(u) + 1
		}
		if int(v) >= b.n {
			b.n = int(v) + 1
		}
	}
}

// NumPending returns the number of edge records added so far (before
// dedup).
func (b *Builder) NumPending() int { return len(b.us) }

// Build validates endpoints, symmetrizes, deduplicates, drops self-loops
// and returns the CSR graph. The builder can be reused afterwards; its
// pending edges are retained.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	for i := range b.us {
		if b.us[i] < 0 || int(b.us[i]) >= n || b.vs[i] < 0 || int(b.vs[i]) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside node range [0,%d)", b.us[i], b.vs[i], n)
		}
	}

	// Count adjacency-list sizes (both directions for undirected graphs),
	// excluding self-loops.
	deg := make([]int64, n+1)
	for i := range b.us {
		if b.us[i] == b.vs[i] {
			continue
		}
		deg[b.us[i]+1]++
		if !b.directed {
			deg[b.vs[i]+1]++
		}
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	adj := make([]NodeID, offsets[n])
	cursor := make([]int64, n)
	for i := range cursor {
		cursor[i] = offsets[i]
	}
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u == v {
			continue
		}
		adj[cursor[u]] = v
		cursor[u]++
		if !b.directed {
			adj[cursor[v]] = u
			cursor[v]++
		}
	}

	// Sort each adjacency list and remove duplicates in place.
	newOffsets := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		ns := adj[lo:hi]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		newOffsets[v] = w
		var prev NodeID = -1
		for _, u := range ns {
			if u != prev {
				adj[w] = u
				w++
				prev = u
			}
		}
	}
	newOffsets[n] = w
	compact := make([]NodeID, w)
	copy(compact, adj[:w])

	m := w / 2
	if b.directed {
		m = w
	}
	return &Graph{offsets: newOffsets, adj: compact, m: m, directed: b.directed}, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds an n-node graph directly from an edge list.
func FromEdges(n int, edges [][2]NodeID) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(n int, edges [][2]NodeID) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n nodes (n >= 3).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.MustBuild()
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.MustBuild()
}

// Star returns the star graph: node 0 connected to 1..n-1.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, NodeID(i))
	}
	return b.MustBuild()
}

// Grid returns the rows×cols 4-neighbor lattice, a useful analogue of the
// continuous spatial spaces the point-pattern literature studies.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}
