package graph

// Components computes the connected components of g (weakly connected
// components for directed graphs). It returns a slice comp of length
// NumNodes mapping each node to a component index in [0, count), and the
// component count. Component indices are assigned in order of the
// smallest node ID they contain.
func Components(g *Graph) (comp []int32, count int) {
	n := g.NumNodes()
	var rev *Graph
	if g.Directed() {
		rev = g.Transpose()
	}
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []NodeID
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		c := int32(count)
		count++
		comp[s] = c
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = c
					queue = append(queue, u)
				}
			}
			if rev != nil {
				for _, u := range rev.Neighbors(v) {
					if comp[u] < 0 {
						comp[u] = c
						queue = append(queue, u)
					}
				}
			}
		}
	}
	return comp, count
}

// LargestComponent returns the node set of the largest connected
// component, sorted by node ID.
func LargestComponent(g *Graph) []NodeID {
	comp, count := Components(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]NodeID, 0, sizes[best])
	for v, c := range comp {
		if int(c) == best {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// ComponentSizes returns the sizes of all connected components, largest
// first.
func ComponentSizes(g *Graph) []int {
	comp, count := Components(g)
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	// simple insertion-style sort, counts are small
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] > sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes
}
