package monitor

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tesc/internal/graph"
	"tesc/internal/screen"
	"tesc/internal/vicinity"
)

// Manager is the registry and scheduler of standing queries across
// all graphs of a serving tier. The mutation path notifies it with
// per-delta dirty sets; it fans each delta out to the graph's
// monitors, which coalesce and re-screen per their policies.
type Manager struct {
	mu     sync.Mutex
	graphs map[string]*graphMonitors
	nextID int64

	reruns          atomic.Int64
	nodesReused     atomic.Int64
	nodesRecomputed atomic.Int64
}

// graphMonitors is one graph's standing queries plus the notification
// watermark closing the registration race: notifiedEpoch is the
// highest target epoch any delta notification for this graph has
// carried. A notification lists the registered monitors before its
// mutation publishes; a monitor registered AFTER that listing but
// whose baseline binds the still-published older snapshot would miss
// the delta and serve a silently stale cache. Queuing every new
// monitor a catch-all invalidation at the watermark makes the miss
// impossible: either the baseline already saw the post-mutation epoch,
// or the catch-all resets the cache once it does.
type graphMonitors struct {
	monitors      []*Monitor // registration order
	notifiedEpoch uint64
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{graphs: make(map[string]*graphMonitors)}
}

// Create validates the definition, registers a monitor for the named
// graph, and runs its baseline screen synchronously at the current
// snapshot — the registration response carries a real result, and the
// density cache is warm before the first delta arrives. An empty
// Definition.ID gets a generated one.
func (mgr *Manager) Create(graphName string, def Definition, snap SnapshotFunc) (*Monitor, error) {
	m, err := mgr.add(graphName, State{Def: def}, snap)
	if err != nil {
		return nil, err
	}
	if _, _, err := m.Refresh(true); err != nil {
		mgr.Delete(graphName, m.def.ID)
		return nil, err
	}
	return m, nil
}

// Restore registers a monitor from persisted state without running a
// baseline: the history ring continues where the snapshot left off,
// and the (deliberately unpersisted) density cache refills on the
// first re-screen.
func (mgr *Manager) Restore(graphName string, st State, snap SnapshotFunc) (*Monitor, error) {
	if st.Def.ID == "" {
		return nil, fmt.Errorf("monitor: restored state needs an ID")
	}
	return mgr.add(graphName, st, snap)
}

func (mgr *Manager) add(graphName string, st State, snap SnapshotFunc) (*Monitor, error) {
	if graphName == "" {
		return nil, fmt.Errorf("monitor: empty graph name")
	}
	if snap == nil {
		return nil, fmt.Errorf("monitor: nil snapshot source")
	}
	def := st.Def
	if err := def.Normalize(); err != nil {
		return nil, err
	}
	g, store, _ := snap()
	var memo *screen.SharedMemo
	if def.TopK > 0 {
		// A watchlist's cache spans the whole vocabulary; with no
		// events yet, screenWatchlist builds it when some appear.
		if names := store.Names(); len(names) > 0 {
			var err error
			if memo, err = screen.NewSharedMemo(g.NumNodes(), names); err != nil {
				return nil, err
			}
		}
	} else {
		var err error
		if memo, err = screen.NewSharedMemo(g.NumNodes(), []string{def.A, def.B}); err != nil {
			return nil, err
		}
	}
	m := &Monitor{def: def, graph: graphName, snap: snap, mgr: mgr, memo: memo}
	if len(st.History) > 0 {
		h := append([]Sample(nil), st.History...)
		sortSamples(h)
		if len(h) > def.HistoryCap {
			h = h[len(h)-def.HistoryCap:]
		}
		m.history = h
	}

	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if def.ID == "" {
		mgr.nextID++
		def.ID = "mon-" + strconv.FormatInt(mgr.nextID, 10)
		m.def.ID = def.ID
	} else if n, ok := parseGeneratedID(def.ID); ok && n > mgr.nextID {
		// Keep generated IDs collision-free across a restore.
		mgr.nextID = n
	}
	gm := mgr.graphs[graphName]
	if gm == nil {
		gm = &graphMonitors{}
		mgr.graphs[graphName] = gm
	}
	for _, other := range gm.monitors {
		if other.def.ID == def.ID {
			return nil, fmt.Errorf("monitor: %q already registered for graph %q", def.ID, graphName)
		}
	}
	if gm.notifiedEpoch > 0 {
		// A mutation may have been notified to the pre-registration
		// monitor list and not yet published; the catch-all guarantees
		// this monitor's cache is reset once that epoch is visible
		// (it drains as a no-op if the baseline already binds it).
		m.pending = append(m.pending, pendingDelta{epoch: gm.notifiedEpoch, all: true})
	}
	gm.monitors = append(gm.monitors, m)
	return m, nil
}

func parseGeneratedID(id string) (int64, bool) {
	s, ok := strings.CutPrefix(id, "mon-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil && n > 0
}

// Get returns the monitor registered for the graph under the ID.
func (mgr *Manager) Get(graphName, id string) (*Monitor, bool) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if gm := mgr.graphs[graphName]; gm != nil {
		for _, m := range gm.monitors {
			if m.def.ID == id {
				return m, true
			}
		}
	}
	return nil, false
}

// List returns the graph's monitors in registration order.
func (mgr *Manager) List(graphName string) []*Monitor {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if gm := mgr.graphs[graphName]; gm != nil {
		return append([]*Monitor(nil), gm.monitors...)
	}
	return nil
}

// listAndMark snapshots the graph's monitor list and advances its
// notification watermark in one critical section, so a registration
// can never slip between the two.
func (mgr *Manager) listAndMark(graphName string, targetEpoch uint64) []*Monitor {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	gm := mgr.graphs[graphName]
	if gm == nil {
		// Remember the watermark even with no monitors yet: one could
		// register before this mutation publishes.
		mgr.graphs[graphName] = &graphMonitors{notifiedEpoch: targetEpoch}
		return nil
	}
	if targetEpoch > gm.notifiedEpoch {
		gm.notifiedEpoch = targetEpoch
	}
	return append([]*Monitor(nil), gm.monitors...)
}

// States snapshots every monitor of the graph for persistence, in
// registration order.
func (mgr *Manager) States(graphName string) []State {
	out := []State{}
	for _, m := range mgr.List(graphName) {
		out = append(out, m.State())
	}
	return out
}

// Delete removes one monitor, stopping its scheduler.
func (mgr *Manager) Delete(graphName, id string) bool {
	mgr.mu.Lock()
	var victim *Monitor
	if gm := mgr.graphs[graphName]; gm != nil {
		for i, m := range gm.monitors {
			if m.def.ID == id {
				victim = m
				gm.monitors = append(gm.monitors[:i:i], gm.monitors[i+1:]...)
				break
			}
		}
	}
	mgr.mu.Unlock()
	if victim == nil {
		return false
	}
	victim.close()
	return true
}

// DropGraph removes every monitor of a deregistered graph, returning
// how many were dropped.
func (mgr *Manager) DropGraph(graphName string) int {
	mgr.mu.Lock()
	var ms []*Monitor
	if gm := mgr.graphs[graphName]; gm != nil {
		ms = gm.monitors
	}
	delete(mgr.graphs, graphName)
	mgr.mu.Unlock()
	for _, m := range ms {
		m.close()
	}
	return len(ms)
}

// Active returns the number of registered monitors across all graphs.
func (mgr *Manager) Active() int {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	n := 0
	for _, gm := range mgr.graphs {
		n += len(gm.monitors)
	}
	return n
}

// Reruns returns the number of delta-triggered re-screens completed.
func (mgr *Manager) Reruns() int64 { return mgr.reruns.Load() }

// NodesReused returns the total reference-node density evaluations
// served from retained caches across all re-screens — the incremental
// scheduler's savings metric (healthz monitor_nodes_reused).
func (mgr *Manager) NodesReused() int64 { return mgr.nodesReused.Load() }

// NodesRecomputed returns the total density traversals re-screens
// actually paid.
func (mgr *Manager) NodesRecomputed() int64 { return mgr.nodesRecomputed.Load() }

// NotifyEdgeDelta queues an edge-mutation delta for every monitor of
// the graph. targetEpoch is the epoch the mutation publishes; callers
// on a serialized mutation path should notify BEFORE publication so no
// re-screen can bind the new snapshot without seeing its invalidation.
//
// surfacedDirty, when non-nil, is the flipped-vicinity node set an
// index repair already computed for this delta (ApplyDeltaDirty) at
// depth surfacedLevel; it is reused when it covers every monitor's
// level, otherwise the dirty ball is recomputed once at the deepest
// monitored level. If the dirty set cannot be established the
// monitors fall back to full invalidation — correctness never depends
// on locality, only speed does.
func (mgr *Manager) NotifyEdgeDelta(graphName string, oldG, newG *graph.Graph, changes []graph.EdgeChange, targetEpoch uint64, surfacedDirty []graph.NodeID, surfacedLevel int) {
	if len(changes) == 0 {
		return
	}
	monitors := mgr.listAndMark(graphName, targetEpoch)
	if len(monitors) == 0 {
		return
	}
	maxH := 0
	for _, m := range monitors {
		if m.def.H > maxH {
			maxH = m.def.H
		}
	}
	d := pendingDelta{epoch: targetEpoch, batches: 1}
	switch {
	case surfacedDirty != nil && surfacedLevel >= maxH:
		d.dirty = surfacedDirty
	default:
		dirty, err := vicinity.DirtySet(oldG, newG, changes, maxH)
		if err != nil {
			d.all = true
		} else {
			d.dirty = dirty
		}
	}
	for _, m := range monitors {
		m.notify(d)
	}
}

// NotifyEventDelta queues an event-mutation delta: changed maps event
// names to the occurrence nodes added or removed (for a whole-event
// removal, every former occurrence). Only monitors whose pair touches
// a changed event are affected — except watchlists, which rank the
// whole vocabulary and so are affected by every event mutation. The
// dirty set is the reverse h-ball around the changed nodes — exactly
// the reference nodes whose vicinities contain a changed occurrence —
// computed once at the deepest affected level. Like NotifyEdgeDelta,
// call before the mutated snapshot is published.
func (mgr *Manager) NotifyEventDelta(graphName string, changed map[string][]graph.NodeID, targetEpoch uint64) {
	if len(changed) == 0 {
		return
	}
	var affected []*Monitor
	maxH := 0
	anyWatchlist := false
	for _, m := range mgr.listAndMark(graphName, targetEpoch) {
		watch := m.def.TopK > 0
		_, hitA := changed[m.def.A]
		_, hitB := changed[m.def.B]
		if !watch && !hitA && !hitB {
			continue
		}
		affected = append(affected, m)
		anyWatchlist = anyWatchlist || watch
		if m.def.H > maxH {
			maxH = m.def.H
		}
	}
	if len(affected) == 0 {
		return
	}
	names := make(map[string]bool, 2*len(affected))
	for _, m := range affected {
		if m.def.TopK > 0 {
			continue
		}
		names[m.def.A] = true
		names[m.def.B] = true
	}
	var sources []graph.NodeID
	seen := make(map[graph.NodeID]bool)
	for name, nodes := range changed {
		if !anyWatchlist && !names[name] {
			continue
		}
		for _, v := range nodes {
			if !seen[v] {
				seen[v] = true
				sources = append(sources, v)
			}
		}
	}
	d := pendingDelta{epoch: targetEpoch, batches: 1}
	if len(sources) > 0 {
		// Event mutations leave the graph untouched, so any affected
		// monitor's current snapshot carries the right structure for
		// the ball.
		g, _, _ := affected[0].snap()
		d.dirty = reverseBall(g, sources, maxH)
	}
	for _, m := range affected {
		m.notify(d)
	}
}

// reverseBall returns every node whose forward h-vicinity contains one
// of the sources: the h-ball around the sources on the transposed
// graph (the graph itself when undirected).
func reverseBall(g *graph.Graph, sources []graph.NodeID, h int) []graph.NodeID {
	rg := g
	if g.Directed() {
		rg = g.Transpose()
	}
	var out []graph.NodeID
	valid := sources[:0:0]
	for _, v := range sources {
		if g.Valid(v) {
			valid = append(valid, v)
		}
	}
	if len(valid) == 0 {
		return nil
	}
	graph.NewBFS(rg).Run(valid, h, func(v graph.NodeID, _ int) {
		out = append(out, v)
	})
	return out
}
