package monitor

import (
	"math/rand/v2"
	"testing"
	"time"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

func testWorld(t *testing.T, seed uint64) (*Manager, *world, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^1))
	mgr := NewManager()
	w := newWorld("g", mgr, graphgen.WattsStrogatz(300, 2, 0.1, rng))
	seedEvents(w, rng, 25)
	return mgr, w, rng
}

func TestDefinitionDefaultsAndValidation(t *testing.T) {
	d := Definition{A: "x", B: "y", H: 2}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d.SampleSize != DefaultSampleSize || d.Alpha != DefaultAlpha ||
		d.Debounce != DefaultDebounce || d.HistoryCap != DefaultHistory {
		t.Fatalf("defaults not applied: %+v", d)
	}
	bad := []Definition{
		{A: "", B: "y", H: 1},
		{A: "x", B: "x", H: 1},
		{A: "x", B: "y", H: 0},
		{A: "x", B: "y", H: 1, SampleSize: 1},
		{A: "x", B: "y", H: 1, Alpha: 1.5},
		{A: "x", B: "y", H: 1, HistoryCap: MaxHistory + 1},
		{A: "x", B: "y", H: 1, Debounce: -time.Second},
	}
	for i, d := range bad {
		if err := d.Normalize(); err == nil {
			t.Errorf("bad definition %d accepted: %+v", i, d)
		}
	}
}

// TestCoalescing: a burst of B delta batches folds into ONE re-screen
// whose history entry reports all B batches.
func TestCoalescing(t *testing.T) {
	mgr, w, rng := testWorld(t, 5)
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 2, SampleSize: 50, Seed: 3, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.History()) != 1 {
		t.Fatalf("baseline history = %d entries, want 1", len(m.History()))
	}
	stream := graphgen.NewFlipStream(w.g, 0.5, rng)
	const burst = 7
	for i := 0; i < burst; i++ {
		w.applyEdges(t, stream.Take(2))
	}
	if got := m.Pending(); got != burst {
		t.Fatalf("pending batches = %d, want %d", got, burst)
	}
	sample, ran, err := m.Refresh(false)
	if err != nil || !ran {
		t.Fatalf("refresh: ran=%v err=%v", ran, err)
	}
	if sample.Batches != burst {
		t.Fatalf("re-screen folded %d batches, want %d", sample.Batches, burst)
	}
	if len(m.History()) != 2 {
		t.Fatalf("history = %d entries after one coalesced re-screen, want 2", len(m.History()))
	}
	// Nothing pending: a plain refresh is a no-op, a forced one runs.
	if _, ran, _ := m.Refresh(false); ran {
		t.Fatal("refresh with nothing pending ran")
	}
	if _, ran, _ := m.Refresh(true); !ran {
		t.Fatal("forced refresh did not run")
	}
}

// TestFutureEpochDeltaDefers: a delta queued for an epoch the snapshot
// source has not published yet must not be consumed — consuming it
// would burn the invalidation before the data it invalidates is
// visible.
func TestFutureEpochDeltaDefers(t *testing.T) {
	mgr, w, _ := testWorld(t, 6)
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Seed: 4, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	// Queue a delta two epochs ahead of the published snapshot.
	m.notify(pendingDelta{epoch: w.epoch + 2, dirty: []graph.NodeID{1, 2, 3}, batches: 1})
	if _, ran, _ := m.Refresh(false); ran {
		t.Fatal("refresh consumed a delta whose epoch is not yet visible")
	}
	if m.Pending() != 1 {
		t.Fatalf("pending = %d, want the deferred delta still queued", m.Pending())
	}
	// Publish past the delta's epoch; now it must drain.
	w.epoch += 2
	if _, ran, _ := m.Refresh(false); !ran {
		t.Fatal("refresh did not run after the delta's epoch became visible")
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", m.Pending())
	}
}

func TestHistoryRingCapacity(t *testing.T) {
	mgr, w, rng := testWorld(t, 7)
	const cap = 5
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Seed: 5, Mode: Manual, HistoryCap: cap}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	stream := graphgen.NewFlipStream(w.g, 0.5, rng)
	for i := 0; i < cap+4; i++ {
		w.applyEdges(t, stream.Take(1))
		if _, _, err := m.Refresh(false); err != nil {
			t.Fatal(err)
		}
	}
	hist := m.History()
	if len(hist) != cap {
		t.Fatalf("history = %d entries, want ring capacity %d", len(hist), cap)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Epoch < hist[i-1].Epoch {
			t.Fatalf("history epochs out of order: %d after %d", hist[i].Epoch, hist[i-1].Epoch)
		}
	}
	last, ok := m.Last()
	if !ok || last.Epoch != hist[len(hist)-1].Epoch {
		t.Fatalf("Last() = %+v, want newest ring entry", last)
	}
}

// TestAutoModeDebounce: in Auto mode a burst of notifies triggers at
// most a couple of re-screens (timer coalescing), and the monitor
// catches up without any explicit refresh.
func TestAutoModeDebounce(t *testing.T) {
	mgr, w, rng := testWorld(t, 8)
	m, err := mgr.Create("g", Definition{
		A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Seed: 6,
		Mode: Auto, Debounce: 20 * time.Millisecond,
	}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	stream := graphgen.NewFlipStream(w.g, 0.5, rng)
	const burst = 10
	for i := 0; i < burst; i++ {
		w.applyEdges(t, stream.Take(1))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto monitor never drained; pending=%d", m.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
	runs := len(m.History()) - 1 // minus the baseline
	if runs < 1 || runs >= burst {
		t.Fatalf("auto mode ran %d re-screens for a burst of %d batches; want coalescing (1 <= runs < %d)", runs, burst, burst)
	}
	if last, _ := m.Last(); last.Epoch != w.epoch {
		t.Fatalf("auto monitor caught up to epoch %d, world at %d", last.Epoch, w.epoch)
	}
}

func TestManagerLifecycle(t *testing.T) {
	mgr, w, _ := testWorld(t, 9)
	def := Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Mode: Manual}
	m1, err := mgr.Create("g", def, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Def().ID != "mon-1" {
		t.Fatalf("generated ID = %q, want mon-1", m1.Def().ID)
	}
	def2 := def
	def2.Seed = 1
	if _, err := mgr.Create("g", def2, w.snap); err != nil {
		t.Fatal(err)
	}
	if mgr.Active() != 2 {
		t.Fatalf("active = %d, want 2", mgr.Active())
	}
	// Duplicate explicit IDs conflict.
	dup := def
	dup.ID = "mon-1"
	if _, err := mgr.Create("g", dup, w.snap); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// An event with no occurrences yet is allowed at this layer (the
	// REST layer rejects unknown names): the baseline records a skipped
	// sample and the monitor starts tracking when occurrences appear.
	ghost, err := mgr.Create("g", Definition{A: "ev-a", B: "ghost", H: 1, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	if last, _ := ghost.Last(); last.Skipped == "" {
		t.Fatal("baseline over a missing event was not marked skipped")
	}
	mgr.Delete("g", ghost.Def().ID)
	if !mgr.Delete("g", "mon-1") {
		t.Fatal("delete failed")
	}
	if mgr.Delete("g", "mon-1") {
		t.Fatal("double delete succeeded")
	}
	if n := mgr.DropGraph("g"); n != 1 {
		t.Fatalf("DropGraph removed %d monitors, want 1", n)
	}
	if mgr.Active() != 0 {
		t.Fatalf("active = %d after teardown, want 0", mgr.Active())
	}
}

func TestRestoreContinuesHistoryAndIDs(t *testing.T) {
	mgr, w, rng := testWorld(t, 10)
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 2, SampleSize: 50, Seed: 8, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	stream := graphgen.NewFlipStream(w.g, 0.5, rng)
	for i := 0; i < 3; i++ {
		w.applyEdges(t, stream.Take(2))
		if _, _, err := m.Refresh(false); err != nil {
			t.Fatal(err)
		}
	}
	st := m.State()

	// A fresh manager (a restarted daemon) restores the state: history
	// intact, no baseline re-run, next generated ID does not collide.
	mgr2 := NewManager()
	w2 := &world{name: "g", mgr: mgr2, g: w.g, builder: w.builder, store: w.store, epoch: w.epoch}
	restored, err := mgr2.Restore("g", st, w2.snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(restored.History()), len(st.History); got != want {
		t.Fatalf("restored history = %d entries, want %d", got, want)
	}
	if last, _ := restored.Last(); last.Epoch != st.History[len(st.History)-1].Epoch {
		t.Fatal("restored monitor lost its last epoch")
	}
	other, err := mgr2.Create("g", Definition{A: "ev-a", B: "ev-b", H: 1, Seed: 9, Mode: Manual}, w2.snap)
	if err != nil {
		t.Fatal(err)
	}
	if other.Def().ID == restored.Def().ID {
		t.Fatalf("restored and fresh monitors share ID %q", other.Def().ID)
	}
	// The restored monitor's cold cache refills and it keeps tracking.
	w2.applyEdges(t, stream.Take(2))
	sample, ran, err := restored.Refresh(false)
	if err != nil || !ran {
		t.Fatalf("post-restore refresh: ran=%v err=%v", ran, err)
	}
	assertSampleEquals(t, "post-restore", sample, fromScratch(t, w2, restored.Def()))
}

// TestRegistrationRaceWatermark pins the close of the
// notify-before-registration race: a delta notified to the graph
// BEFORE a monitor registers (its mutation not yet published when the
// baseline runs) must still invalidate that monitor's cache once the
// epoch becomes visible — via the catch-all queued at registration.
func TestRegistrationRaceWatermark(t *testing.T) {
	mgr, w, _ := testWorld(t, 12)
	// The in-flight mutation notifies the (empty) monitor list for the
	// epoch it WILL publish.
	target := w.epoch + 1
	mgr.listAndMark("g", target)

	// Registration + baseline happen while the old snapshot is still
	// published: the baseline warms the cache at the old epoch and the
	// catch-all must stay pending.
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Seed: 13, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	if last, _ := m.Last(); last.Epoch != w.epoch {
		t.Fatalf("baseline bound epoch %d, want %d", last.Epoch, w.epoch)
	}
	if m.Pending() != 0 {
		// batches is 0 for the catch-all; the entry itself must still
		// be queued.
		t.Fatalf("pending batches = %d, want 0 (catch-all carries no batch count)", m.Pending())
	}

	// The mutation publishes. The next drain must reset the cache:
	// zero reuse despite the baseline having just warmed every entry.
	w.epoch = target
	sample, ran, err := m.Refresh(false)
	if err != nil || !ran {
		t.Fatalf("refresh after publication: ran=%v err=%v", ran, err)
	}
	if sample.Reused != 0 {
		t.Fatalf("post-watermark re-screen reused %d cached densities; the catch-all failed to reset a potentially stale cache", sample.Reused)
	}
	if sample.Epoch != target {
		t.Fatalf("re-screen bound epoch %d, want %d", sample.Epoch, target)
	}
	// And a normally-registered monitor is unaffected: a later create
	// sees the watermark already visible, so its catch-all drains with
	// its own baseline.
	m2, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Seed: 14, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, ran, _ := m2.Refresh(false); ran {
		t.Fatal("fresh monitor had spurious pending work after baseline")
	}
}

// TestEventDeltaOnlyAffectsItsMonitors: mutations of an unrelated
// event must not queue work for a monitor that does not watch it.
func TestEventDeltaScoping(t *testing.T) {
	mgr, w, _ := testWorld(t, 11)
	w.builder.Add("other", 5)
	w.store = w.builder.Build()
	w.epoch++
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Mode: Manual}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	w.mutateEvent(t, "other", 6, true)
	if m.Pending() != 0 {
		t.Fatalf("unrelated event mutation queued %d batches", m.Pending())
	}
	w.mutateEvent(t, "ev-a", 7, true)
	if m.Pending() != 1 {
		t.Fatalf("watched event mutation queued %d batches, want 1", m.Pending())
	}
}
