package monitor

import (
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/screen"
	"tesc/internal/vicinity"
)

// benchWorld builds the churn benchmark's shape at a bench-friendly
// scale: a sparse surrogate with the event pair clustered in a region,
// so random flips mostly land outside the reference sample — the
// locality the incremental path exploits. (The full-scale 100k-node
// acceptance numbers are produced by `tescbench -churn`; these
// benchmarks exist so the hot path is watched by the CI bench gate.)
func benchWorld(b *testing.B, nodes int) (*Manager, *world, *graphgen.FlipStream, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewPCG(9, 9))
	g := graphgen.WattsStrogatz(nodes, 3, 0.1, rng)
	mgr := NewManager()
	w := newWorld("g", mgr, g)
	region := nodes / 10
	for _, name := range []string{"ev-a", "ev-b"} {
		for i := 0; i < 200; i++ {
			w.builder.Add(name, graph.NodeID(rng.IntN(region)))
		}
	}
	w.store = w.builder.Build()
	w.epoch++
	return mgr, w, graphgen.NewFlipStream(g, 0.5, rng), rng
}

func benchApply(b *testing.B, w *world, flips []graph.EdgeChange, h int) {
	b.Helper()
	d := graph.NewDelta(w.g)
	applied, err := d.Apply(flips)
	if err != nil {
		b.Fatal(err)
	}
	newG := d.Compact()
	dirty, err := vicinity.DirtySet(w.g, newG, applied, h)
	if err != nil {
		b.Fatal(err)
	}
	w.mgr.NotifyEdgeDelta("g", w.g, newG, applied, w.epoch+1, dirty, h)
	w.g = newG
	w.epoch++
}

// BenchmarkMonitorRescreen measures one incremental re-screen per
// mutation batch: dirty-set invalidation plus a cache-served sweep.
func BenchmarkMonitorRescreen(b *testing.B) {
	mgr, w, stream, _ := benchWorld(b, 20000)
	m, err := mgr.Create("g", Definition{A: "ev-a", B: "ev-b", H: 2, SampleSize: 900, Seed: 3, Mode: Manual}, w.snap)
	if err != nil {
		b.Fatal(err)
	}
	var reused, recomputed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchApply(b, w, stream.Take(2), 2)
		b.StartTimer()
		sample, ran, err := m.Refresh(false)
		if err != nil || !ran {
			b.Fatalf("refresh: ran=%v err=%v", ran, err)
		}
		reused += sample.Reused
		recomputed += sample.Recomputed
	}
	b.ReportMetric(float64(reused)/float64(b.N), "reused/op")
	b.ReportMetric(float64(recomputed)/float64(b.N), "recomputed/op")
}

// BenchmarkFullRescreen is the from-scratch comparator: the same
// standing pair re-screened with no retained state after each batch.
func BenchmarkFullRescreen(b *testing.B) {
	_, w, stream, _ := benchWorld(b, 20000)
	cfg := screen.Config{H: 2, SampleSize: 900, Seed: 3}
	pairs := [][2]string{{"ev-a", "ev-b"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := graph.NewDelta(w.g)
		if _, err := d.Apply(stream.Take(2)); err != nil {
			b.Fatal(err)
		}
		w.g = d.Compact()
		w.epoch++
		b.StartTimer()
		if _, err := screen.Run(w.g, w.store, pairs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
