// Package monitor turns TESC from a one-shot assessment into a
// continuous one: clients register standing queries — an event pair,
// a vicinity level, a re-evaluation policy — against an evolving
// graph, and the subsystem re-screens each query incrementally as
// edge and event mutations stream in.
//
// The paper's motivating datasets (co-purchase networks, DBLP
// co-authorship, intrusion alerts) are all evolving graphs, where the
// operational question is not "are these events correlated" but "when
// does this pair *become* (or stop being) correlated". Recomputing
// the full test per mutation wastes the same work the §4.2 vicinity
// index avoids wasting: a delta only perturbs densities inside a
// bounded ball. The scheduler therefore intersects each delta's
// flipped-vicinity node set (vicinity.DirtySet — the exact locality
// bound the index repair already computes) with each standing query's
// density cache, invalidates only that intersection, and re-screens
// with every untouched reference-node density served from the cache
// (screen.SharedMemo). The re-screen is bit-identical to a
// from-scratch screen.Run at the same epoch — the differential tests
// pin score, p-value and per-node densities — because cached entries
// outside the dirty ball provably cannot have changed.
//
// Bursts of mutations are debounced per monitor: a batch of B deltas
// inside the coalescing window triggers one re-screen, not B, and the
// history entry records how many batches it folded.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/screen"
	"tesc/internal/stats"
)

// Mode selects when a monitor re-screens.
type Mode int

const (
	// Auto re-screens automatically: a mutation arms the debounce
	// timer, and the re-screen fires once the window closes, folding
	// every delta that landed meanwhile into one run.
	Auto Mode = iota
	// Manual accumulates invalidations but re-screens only on an
	// explicit Refresh (the REST layer's refresh endpoint) — the mode
	// for clients that want to pay re-evaluation on their own clock.
	Manual
)

// String names the mode ("auto" / "manual").
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Manual:
		return "manual"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode inverts Mode.String; the empty string selects Auto.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "manual":
		return Manual, nil
	default:
		return 0, fmt.Errorf("monitor: unknown mode %q (auto | manual)", s)
	}
}

// Defaults applied by Definition.normalize.
const (
	DefaultSampleSize = 900
	DefaultAlpha      = 0.05
	DefaultDebounce   = 250 * time.Millisecond
	DefaultHistory    = 64
	// MaxHistory bounds the per-monitor history ring so a
	// client-supplied capacity cannot pin unbounded memory.
	MaxHistory = 4096
)

// Definition is one standing TESC query. The zero values of the
// optional fields select the paper's defaults (n = 900, α = 0.05).
type Definition struct {
	// ID is the registry key, unique per graph; Manager.Create assigns
	// one when empty.
	ID string
	// A and B name the monitored event pair.
	A, B string
	// H is the vicinity level (required, ≥ 1).
	H int
	// SampleSize is the reference sample size n (default 900).
	SampleSize int
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// Alternative selects the tested direction (default two-sided).
	Alternative stats.Alternative
	// Seed drives the reference sampling deterministically; the same
	// seed at the same epoch always reproduces the same result, which
	// is what makes incremental-vs-from-scratch comparable at all.
	Seed uint64
	// Mode selects automatic (debounced) or manual re-evaluation.
	Mode Mode
	// Debounce is the coalescing window of Auto mode: the re-screen
	// runs this long after the first unprocessed delta, folding every
	// later delta in the window into the same run (default 250ms).
	Debounce time.Duration
	// HistoryCap bounds the history ring (default 64, max 4096).
	HistoryCap int
	// TopK, when > 0, turns the monitor into a standing watchlist:
	// instead of one fixed pair, every (re-)screen ranks the whole
	// event vocabulary with the top-k planner (screen.Plan) and
	// records the K best pairs in Sample.Top. A and B must be empty —
	// a watchlist owns no pair. Watchlists are re-ranked from the same
	// mutation dirty sets as fixed-pair monitors: the retained density
	// cache spans the full vocabulary, so a delta invalidates only its
	// dirty ball and the next ranking reuses every untouched entry.
	TopK int
	// MinOccurrences filters watchlist candidates the way the sweep
	// API does (default 1); fixed-pair monitors must leave it zero.
	MinOccurrences int
}

// Normalize validates the definition and fills defaults in place.
func (d *Definition) Normalize() error {
	switch {
	case d.TopK < 0:
		return fmt.Errorf("monitor: top-k must be >= 0, got %d", d.TopK)
	case d.TopK > 0:
		if d.A != "" || d.B != "" {
			return fmt.Errorf("monitor: a watchlist ranks the whole vocabulary; A and B must be empty")
		}
		if d.MinOccurrences == 0 {
			d.MinOccurrences = 1
		}
		if d.MinOccurrences < 1 {
			return fmt.Errorf("monitor: min occurrences must be >= 1, got %d", d.MinOccurrences)
		}
	default:
		if d.MinOccurrences != 0 {
			return fmt.Errorf("monitor: min occurrences is a watchlist parameter; a fixed pair is screened regardless")
		}
		if d.A == "" || d.B == "" {
			return fmt.Errorf("monitor: both event names are required")
		}
		if d.A == d.B {
			return fmt.Errorf("monitor: a standing query needs two distinct events, got %q twice", d.A)
		}
	}
	if d.H < 1 {
		return fmt.Errorf("monitor: vicinity level must be >= 1, got %d", d.H)
	}
	if d.SampleSize == 0 {
		d.SampleSize = DefaultSampleSize
	}
	if d.SampleSize < 2 {
		return fmt.Errorf("monitor: sample size must be >= 2, got %d", d.SampleSize)
	}
	if d.Alpha == 0 {
		d.Alpha = DefaultAlpha
	}
	if d.Alpha <= 0 || d.Alpha >= 1 {
		return fmt.Errorf("monitor: alpha must be in (0,1), got %g", d.Alpha)
	}
	if d.Debounce == 0 {
		d.Debounce = DefaultDebounce
	}
	if d.Debounce < 0 {
		return fmt.Errorf("monitor: debounce must be >= 0, got %v", d.Debounce)
	}
	if d.HistoryCap == 0 {
		d.HistoryCap = DefaultHistory
	}
	if d.HistoryCap < 1 || d.HistoryCap > MaxHistory {
		return fmt.Errorf("monitor: history capacity must be in [1,%d], got %d", MaxHistory, d.HistoryCap)
	}
	return nil
}

// Sample is one completed (re-)screen of a standing query — a history
// ring entry.
type Sample struct {
	// Epoch is the snapshot epoch the whole run was bound to.
	Epoch uint64
	// At is the completion time.
	At time.Time
	// Batches counts the coalesced delta batches this run folded; 0
	// marks the registration-time baseline run.
	Batches int
	// Tau, Z, P, AdjP and Significant are the test outcome (AdjP == P
	// for a single standing pair; the field keeps parity with sweep
	// results). For a watchlist they mirror the top-ranked entry of
	// Top, so dashboards polling Last see the leader without decoding
	// the list. Skipped is non-empty when the pair could not be tested
	// at this epoch (e.g. an event lost all its occurrences).
	Tau, Z, P, AdjP float64
	Significant     bool
	Skipped         string
	// Top is the watchlist ranking at this epoch (Definition.TopK
	// entries, best first); nil for fixed-pair monitors.
	Top []TopPair
	// Reused counts reference-node density evaluations served from the
	// retained cache; Recomputed the h-hop traversals actually paid.
	// Reused / (Reused+Recomputed) is the incremental win the delta's
	// locality bought.
	Reused     int64
	Recomputed int64
	// ElapsedMS is the wall time of the re-screen.
	ElapsedMS float64
}

// TopPair is one ranked entry of a watchlist sample. The p-value is
// raw (planned screens never observe the whole family — see
// docs/SCREENING.md); Significant compares it to the watchlist's α.
type TopPair struct {
	A, B        string
	Tau, Z, P   float64
	Significant bool
}

// State is the persistent image of a monitor: its definition plus the
// history ring (oldest first). The density cache is deliberately not
// part of it — it is rebuilt lazily after a restore, trading one cold
// re-screen for not serializing O(|V|) scratch.
type State struct {
	Def     Definition
	History []Sample
}

// SnapshotFunc yields the monitored graph's current consistent
// snapshot: graph, frozen event store, and the epoch stamping both.
// Successive calls must never observe epochs going backwards.
type SnapshotFunc func() (g *graph.Graph, store *events.Store, epoch uint64)

// pendingDelta is one queued invalidation: the dirty node set of a
// mutation, tagged with the epoch the mutation produces. Deltas are
// queued before their snapshot is published (the serving tier notifies
// inside the serialized mutation path), so a drain only consumes
// entries whose epoch the bound snapshot has caught up to — otherwise
// a re-screen could consume an invalidation whose mutation it cannot
// see yet and leave the cache silently wrong for the next epoch.
type pendingDelta struct {
	epoch uint64
	dirty []graph.NodeID
	all   bool // invalidate everything (fallback when no dirty set is known)
	// batches is the number of mutation batches this entry represents:
	// 1 for a normal notification, 0 for the synthetic catch-all queued
	// at registration (see Manager.add), N for a re-queued drain a
	// stale epoch pushed back.
	batches int
}

// Monitor is one registered standing query. All methods are safe for
// concurrent use.
type Monitor struct {
	def   Definition
	graph string
	snap  SnapshotFunc
	mgr   *Manager

	// runMu serializes re-screens; the drain loop under it is the only
	// code that touches the memo, so cache invalidation never races an
	// in-flight evaluation.
	runMu sync.Mutex
	memo  *screen.SharedMemo
	// engines are the retained BFS engines of this monitor, rebound to
	// each new graph snapshot before a re-screen: the O(|V|) scratch
	// (mark arrays, frontiers) is allocated once per monitor, not once
	// per mutation. Guarded by runMu.
	engines []*graph.BFS

	mu      sync.Mutex // guards the fields below
	pending []pendingDelta
	batches int // delta batches queued since the last drain
	timer   *time.Timer
	closed  bool
	history []Sample
}

// Def returns the monitor's definition.
func (m *Monitor) Def() Definition { return m.def }

// GraphName returns the registry name of the monitored graph.
func (m *Monitor) GraphName() string { return m.graph }

// History returns a copy of the history ring, oldest first.
func (m *Monitor) History() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.history...)
}

// Last returns the most recent sample, or false when none exists yet.
func (m *Monitor) Last() (Sample, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return Sample{}, false
	}
	return m.history[len(m.history)-1], true
}

// Pending returns the number of delta batches queued but not yet
// folded into a re-screen.
func (m *Monitor) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches
}

// State snapshots the monitor for persistence.
func (m *Monitor) State() State {
	return State{Def: m.def, History: m.History()}
}

// notify queues a delta and, in Auto mode, arms the debounce timer.
func (m *Monitor) notify(d pendingDelta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.pending = append(m.pending, d)
	m.batches += d.batches
	m.armLocked()
}

// armLocked starts the debounce timer when Auto mode needs one.
func (m *Monitor) armLocked() {
	if m.def.Mode != Auto || m.timer != nil || m.closed || len(m.pending) == 0 {
		return
	}
	m.timer = time.AfterFunc(m.def.Debounce, func() {
		_, _, _ = m.run(false)
	})
}

// Refresh synchronously drains pending deltas and re-screens. Without
// force it is a no-op (ok == false) when nothing is pending; with
// force it re-screens at the current epoch regardless. It returns the
// last recorded sample when a run happened.
func (m *Monitor) Refresh(force bool) (Sample, bool, error) {
	return m.run(force)
}

// run is the drain loop: bind the current snapshot, consume every
// queued delta the snapshot can see, invalidate, re-screen pinned to
// the snapshot's epoch, repeat if a mutation raced the run. Deltas
// whose epoch is still ahead of the visible snapshot stay queued and
// re-arm the timer.
func (m *Monitor) run(force bool) (Sample, bool, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()

	// Cap the stale-retry loop: under mutation churn faster than a
	// re-screen, retrying forever would hold runMu and hang synchronous
	// refreshes. Past the cap the drained work is re-queued, the timer
	// re-arms (Auto), and the caller returns — the monitor catches up
	// once the churn relents, it never livelocks.
	const maxStaleRetries = 8
	staleRetries := 0

	var last Sample
	ran := false
	for {
		g, store, epoch := m.snap()

		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return last, ran, nil
		}
		var keep []pendingDelta
		var dirty []graph.NodeID
		drainedAll := false
		drained, batches, kept := 0, 0, 0
		for _, d := range m.pending {
			if d.epoch > epoch {
				keep = append(keep, d)
				kept += d.batches
				continue
			}
			drained++
			batches += d.batches
			if d.all {
				drainedAll = true
			}
			dirty = append(dirty, d.dirty...)
		}
		m.pending = keep
		m.batches = kept
		m.timer = nil
		m.mu.Unlock()

		if drained == 0 && !(force && !ran) {
			break
		}
		// A watchlist registered against an empty vocabulary has no
		// memo yet (screenWatchlist builds one when events appear).
		if drainedAll {
			if m.memo != nil {
				m.memo.Reset()
			}
		} else if len(dirty) > 0 && m.memo != nil {
			m.memo.Invalidate(dirty)
		}

		sample, err := m.screenOnce(g, store, epoch, batches)
		if errors.Is(err, screen.ErrStaleEpoch) {
			// A mutation published a newer snapshot mid-run. Its delta
			// was queued before publication, so the next iteration
			// both sees the new epoch and drains its invalidation.
			// Whatever this drain consumed goes back in the queue so
			// the retry's history entry reports it (and a consumed
			// catch-all is never lost).
			if drained > 0 {
				m.mu.Lock()
				m.pending = append(m.pending, pendingDelta{epoch: epoch, dirty: dirty, all: drainedAll, batches: batches})
				m.batches += batches
				m.mu.Unlock()
			}
			staleRetries++
			if staleRetries > maxStaleRetries {
				break
			}
			continue
		}
		if err != nil {
			return last, ran, err
		}
		last = sample
		ran = true
		m.record(sample)
	}

	// Deltas bound to a not-yet-visible snapshot stay queued; make
	// sure a timer exists to come back for them.
	m.mu.Lock()
	m.armLocked()
	m.mu.Unlock()
	return last, ran, nil
}

// screenOnce runs one epoch-pinned re-screen against the retained
// density cache: a single-pair sweep for fixed-pair monitors, a
// planned top-k ranking for watchlists.
func (m *Monitor) screenOnce(g *graph.Graph, store *events.Store, epoch uint64, batches int) (Sample, error) {
	if m.def.TopK > 0 {
		return m.screenWatchlist(g, store, epoch, batches)
	}
	cfg := screen.Config{
		H:           m.def.H,
		SampleSize:  m.def.SampleSize,
		Alpha:       m.def.Alpha,
		Alternative: m.def.Alternative,
		Seed:        m.def.Seed,
		Memo:        m.memo,
		Epoch:       epoch,
		CurrentEpoch: func() uint64 {
			_, _, e := m.snap()
			return e
		},
	}
	cfg.Engines = m.bindEngines(g)
	start := time.Now()
	res, err := screen.Run(g, store, [][2]string{{m.def.A, m.def.B}}, cfg)
	if err != nil {
		return Sample{}, err
	}
	p := res.Pairs[0]
	sample := Sample{
		Epoch:       epoch,
		At:          time.Now(),
		Batches:     batches,
		Tau:         p.Tau,
		Z:           p.Z,
		P:           p.P,
		AdjP:        p.AdjP,
		Significant: p.Significant,
		Skipped:     p.Skipped,
		Reused:      res.MemoHits,
		Recomputed:  res.BFSRuns,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	}
	if m.mgr != nil {
		if batches > 0 {
			m.mgr.reruns.Add(1)
		}
		m.mgr.nodesReused.Add(res.MemoHits)
		m.mgr.nodesRecomputed.Add(res.BFSRuns)
	}
	return sample, nil
}

// bindEngines rebinds this monitor's retained BFS engines to the
// current snapshot and lends them to the run through a pool: the
// O(|V|) scratch (mark arrays, frontiers) is allocated once per
// monitor, not once per mutation. Engines that cannot rebind (node
// count changed — impossible under live mutation, possible across
// exotic restores) are dropped and reallocated. Callers hold runMu.
func (m *Monitor) bindEngines(g *graph.Graph) *graph.EnginePool {
	if m.engines == nil {
		m.engines = []*graph.BFS{graph.NewBFS(g), graph.NewBFS(g)}
	}
	pool := graph.NewEnginePool(g)
	kept := m.engines[:0]
	for _, eng := range m.engines {
		if eng.Rebind(g) == nil {
			pool.Put(eng)
			kept = append(kept, eng)
		}
	}
	m.engines = kept
	return pool
}

// screenWatchlist runs one epoch-pinned planned ranking over the whole
// vocabulary. The density cache spans every event, so deltas folded by
// the drain loop invalidate exactly their dirty ball and the planner
// serves every untouched reference node from the cache — the same
// incremental contract fixed-pair monitors have, at watchlist width.
func (m *Monitor) screenWatchlist(g *graph.Graph, store *events.Store, epoch uint64, batches int) (Sample, error) {
	// The vocabulary is not fixed at registration: event mutations add
	// and drop whole events. The memo's dense count vectors are indexed
	// by its vocabulary, so a changed name set forces a cold rebuild
	// (rare); occurrence-level changes keep the names and reuse it.
	if names := store.Names(); m.memo == nil || !sameNames(m.memo.Names(), names) {
		m.memo = nil
		if len(names) > 0 {
			memo, err := screen.NewSharedMemo(g.NumNodes(), names)
			if err != nil {
				return Sample{}, err
			}
			m.memo = memo
		}
	}
	start := time.Now()
	pairs := screen.AllPairs(store, m.def.MinOccurrences)
	if len(pairs) == 0 {
		return Sample{
			Epoch: epoch, At: time.Now(), Batches: batches,
			Skipped: "fewer than two screenable events",
		}, nil
	}
	cfg := screen.PlanConfig{
		Config: screen.Config{
			H:              m.def.H,
			SampleSize:     m.def.SampleSize,
			Alpha:          m.def.Alpha,
			Alternative:    m.def.Alternative,
			MinOccurrences: m.def.MinOccurrences,
			Seed:           m.def.Seed,
			Workers:        1,
			Memo:           m.memo,
			Epoch:          epoch,
			CurrentEpoch: func() uint64 {
				_, _, e := m.snap()
				return e
			},
		},
		K: m.def.TopK,
	}
	cfg.Engines = m.bindEngines(g)
	res, err := screen.Plan(g, store, pairs, cfg)
	if err != nil {
		return Sample{}, err
	}
	sample := Sample{
		Epoch:      epoch,
		At:         time.Now(),
		Batches:    batches,
		Reused:     res.Stats.MemoHits,
		Recomputed: res.Stats.BFSRuns,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		Top:        make([]TopPair, len(res.Pairs)),
	}
	for i, p := range res.Pairs {
		sample.Top[i] = TopPair{
			A: p.A, B: p.B,
			Tau: p.Tau, Z: p.Z, P: p.P,
			Significant: p.Significant,
		}
	}
	if len(res.Pairs) > 0 {
		head := res.Pairs[0]
		sample.Tau, sample.Z = head.Tau, head.Z
		sample.P, sample.AdjP = head.P, head.AdjP
		sample.Significant = head.Significant
	} else {
		sample.Skipped = "no screenable pair in the vocabulary"
	}
	if m.mgr != nil {
		if batches > 0 {
			m.mgr.reruns.Add(1)
		}
		m.mgr.nodesReused.Add(res.Stats.MemoHits)
		m.mgr.nodesRecomputed.Add(res.Stats.BFSRuns)
	}
	return sample, nil
}

// sameNames reports whether the sorted vocabulary a equals the (not
// necessarily sorted) name list b as a set.
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sorted := append([]string(nil), b...)
	sort.Strings(sorted)
	for i := range a {
		if a[i] != sorted[i] {
			return false
		}
	}
	return true
}

// record appends to the history ring, evicting the oldest entry past
// capacity.
func (m *Monitor) record(s Sample) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) >= m.def.HistoryCap {
		n := copy(m.history, m.history[len(m.history)-m.def.HistoryCap+1:])
		m.history = m.history[:n]
	}
	m.history = append(m.history, s)
}

// close marks the monitor dead and stops its timer. Idempotent.
func (m *Monitor) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pending = nil
	m.batches = 0
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
}

// sortSamples orders restored history by epoch then time, defensively:
// persisted state is already ordered, but the ring invariant (oldest
// first) is cheap to re-establish and load-bearing for Last.
func sortSamples(h []Sample) {
	sort.SliceStable(h, func(i, j int) bool { return h[i].Epoch < h[j].Epoch })
}
