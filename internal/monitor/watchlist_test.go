package monitor

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/screen"
	"tesc/internal/stats"
)

// seedVocab plants a K-event vocabulary: each event's occurrences are
// drawn near its own anchor node, except the first two events which
// share an anchor — the planted attracting pair a watchlist should
// surface at rank 1.
func seedVocab(w *world, rng *rand.Rand, names []string, occurrences int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.g.NumNodes()
	for i, name := range names {
		anchor := rng.IntN(n)
		if i == 1 {
			anchor = int(w.builder.Build().Occurrences(names[0])[0]) // co-locate with event 0
		}
		for k := 0; k < occurrences; k++ {
			w.builder.Add(name, graph.NodeID((anchor+rng.IntN(24))%n))
		}
	}
	w.store = w.builder.Build()
	w.epoch++
}

// watchOracle runs the exact planned ranking the watchlist runs, with
// no retained state: a fresh screen.Plan at the same epoch, same seed,
// same parameters.
func watchOracle(t *testing.T, w *world, def Definition) []screen.PairResult {
	t.Helper()
	pairs := screen.AllPairs(w.store, def.MinOccurrences)
	res, err := screen.Plan(w.g, w.store, pairs, screen.PlanConfig{
		Config: screen.Config{
			H:              def.H,
			SampleSize:     def.SampleSize,
			Alpha:          def.Alpha,
			Alternative:    def.Alternative,
			MinOccurrences: def.MinOccurrences,
			Seed:           def.Seed,
			Workers:        1,
		},
		K: def.TopK,
	})
	if err != nil {
		t.Fatalf("from-scratch plan: %v", err)
	}
	return res.Pairs
}

func assertTopEquals(t *testing.T, ctx string, got []TopPair, want []screen.PairResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: watchlist ranked %d pairs, from-scratch %d", ctx, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		// Bit-identical float comparison: the incremental ranking must
		// be the same computation, not an approximation of it.
		if g.A != w.A || g.B != w.B || g.Tau != w.Tau || g.Z != w.Z || g.P != w.P || g.Significant != w.Significant {
			t.Fatalf("%s: rank %d diverged:\n got  %+v\n want {%s %s tau=%v z=%v p=%v sig=%v}",
				ctx, i, g, w.A, w.B, w.Tau, w.Z, w.P, w.Significant)
		}
	}
}

func TestWatchlistDefinitionValidation(t *testing.T) {
	base := Definition{TopK: 3, H: 2}
	d := base
	if err := d.Normalize(); err != nil {
		t.Fatalf("valid watchlist rejected: %v", err)
	}
	if d.MinOccurrences != 1 {
		t.Errorf("min occurrences default = %d, want 1", d.MinOccurrences)
	}
	cases := []struct {
		name string
		mut  func(*Definition)
	}{
		{"topk with pair", func(d *Definition) { d.A = "x" }},
		{"negative topk", func(d *Definition) { d.TopK = -1 }},
		{"negative min occurrences", func(d *Definition) { d.MinOccurrences = -2 }},
	}
	for _, c := range cases {
		d := base
		c.mut(&d)
		if err := d.Normalize(); err == nil {
			t.Errorf("%s: accepted %+v", c.name, d)
		}
	}
	// MinOccurrences is watchlist-only; a fixed pair must reject it.
	d = Definition{A: "a", B: "b", H: 1, MinOccurrences: 2}
	if err := d.Normalize(); err == nil {
		t.Error("fixed-pair definition accepted min occurrences")
	}
}

// TestWatchlistBaseline registers a watchlist against a seeded world
// and checks the registration-time ranking: identical to a
// from-scratch plan, led by the planted co-located pair, with the
// sample head mirroring rank 1.
func TestWatchlistBaseline(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 2))
	mgr := NewManager()
	w := newWorld("g", mgr, diffGraph(false, rng))
	seedVocab(w, rng, []string{"ev-a", "ev-b", "ev-c", "ev-d", "ev-e"}, 30)

	def := Definition{
		TopK:        3,
		H:           2,
		SampleSize:  80,
		Alternative: stats.Greater,
		Seed:        0xabc,
		Mode:        Manual,
	}
	m, err := mgr.Create(w.name, def, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	def = m.Def()
	s := mustLast(t, m)
	if len(s.Top) != 3 {
		t.Fatalf("baseline ranked %d pairs, want 3", len(s.Top))
	}
	assertTopEquals(t, "baseline", s.Top, watchOracle(t, w, def))
	lead := s.Top[0]
	if lead.A != "ev-a" || lead.B != "ev-b" {
		t.Errorf("rank 1 = %s/%s, want the planted ev-a/ev-b", lead.A, lead.B)
	}
	if s.Tau != lead.Tau || s.Z != lead.Z || s.P != lead.P || s.AdjP != lead.P || s.Significant != lead.Significant {
		t.Errorf("sample head %+v does not mirror rank 1 %+v", s, lead)
	}
}

// TestWatchlistDifferentialRerank is the watchlist counterpart of
// TestDifferentialIncrementalRescreen: across seeded mutation batches —
// edge flips, occurrence churn on watched events, and whole-event
// additions that change the vocabulary itself — every incremental
// re-ranking is bit-identical to a from-scratch planned screen at the
// same epoch.
func TestWatchlistDifferentialRerank(t *testing.T) {
	rng := rand.New(rand.NewPCG(502, 7))
	mgr := NewManager()
	w := newWorld("g", mgr, diffGraph(false, rng))
	names := []string{"ev-a", "ev-b", "ev-c", "ev-d"}
	seedVocab(w, rng, names, 25)

	def := Definition{
		TopK:        2,
		H:           2,
		SampleSize:  60,
		Alternative: stats.Greater,
		Seed:        0x5eed,
		Mode:        Manual,
	}
	m, err := mgr.Create(w.name, def, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	def = m.Def()
	assertTopEquals(t, "baseline", mustLast(t, m).Top, watchOracle(t, w, def))

	stream := graphgen.NewFlipStream(w.g, 0.5, rng)
	var reused int64
	for batch := 0; batch < 80; batch++ {
		switch {
		case batch == 30 || batch == 55:
			// Vocabulary growth: a brand-new event enters mid-run and
			// must be ranked from its first refresh on.
			name := fmt.Sprintf("ev-new-%d", batch)
			names = append(names, name)
			for i := 0; i < 25; i++ {
				w.mutateEvent(t, name, graph.NodeID(rng.IntN(w.g.NumNodes())), true)
			}
		case rng.IntN(4) == 0:
			name := names[rng.IntN(len(names))]
			occ := w.store.Occurrences(name)
			if rng.IntN(2) == 0 && len(occ) > 3 {
				w.mutateEvent(t, name, occ[rng.IntN(len(occ))], false)
			} else {
				w.mutateEvent(t, name, graph.NodeID(rng.IntN(w.g.NumNodes())), true)
			}
		default:
			w.applyEdges(t, stream.Take(1+rng.IntN(3)))
		}
		sample, ran, err := m.Refresh(false)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !ran {
			t.Fatalf("batch %d: refresh did not run despite a pending delta", batch)
		}
		if sample.Epoch != w.epoch {
			t.Fatalf("batch %d: sample bound to epoch %d, world at %d", batch, sample.Epoch, w.epoch)
		}
		assertTopEquals(t, fmt.Sprintf("batch %d (epoch %d)", batch, w.epoch), sample.Top, watchOracle(t, w, def))
		reused += sample.Reused
	}
	if reused == 0 {
		t.Error("no density evaluations were ever reused; the incremental ranking never engaged")
	}
}

// TestWatchlistEventDeltaFanout: a watchlist is affected by EVERY
// event mutation, including events no fixed-pair monitor watches.
func TestWatchlistEventDeltaFanout(t *testing.T) {
	rng := rand.New(rand.NewPCG(503, 1))
	mgr := NewManager()
	w := newWorld("g", mgr, diffGraph(false, rng))
	seedVocab(w, rng, []string{"ev-a", "ev-b", "ev-c"}, 20)

	fixed, err := mgr.Create(w.name, Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 40, Mode: Manual, Seed: 1}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	watch, err := mgr.Create(w.name, Definition{TopK: 1, H: 1, SampleSize: 40, Mode: Manual, Seed: 2}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	// ev-c touches neither side of the fixed pair.
	w.mutateEvent(t, "ev-c", graph.NodeID(rng.IntN(w.g.NumNodes())), true)
	if got := fixed.Pending(); got != 0 {
		t.Errorf("fixed-pair monitor queued %d batches for an unrelated event", got)
	}
	if got := watch.Pending(); got != 1 {
		t.Errorf("watchlist queued %d batches, want 1", got)
	}
	sample, ran, err := watch.Refresh(false)
	if err != nil || !ran {
		t.Fatalf("watchlist refresh: ran=%v err=%v", ran, err)
	}
	assertTopEquals(t, "post-delta", sample.Top, watchOracle(t, w, watch.Def()))
}

// TestWatchlistEmptyVocabulary: a watchlist may be registered before
// any events exist; the baseline records a skip and the first events
// bring a real ranking.
func TestWatchlistEmptyVocabulary(t *testing.T) {
	rng := rand.New(rand.NewPCG(504, 9))
	mgr := NewManager()
	w := newWorld("g", mgr, diffGraph(false, rng))

	m, err := mgr.Create(w.name, Definition{TopK: 2, H: 1, SampleSize: 40, Mode: Manual, Seed: 3}, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	s := mustLast(t, m)
	if s.Skipped == "" || len(s.Top) != 0 {
		t.Fatalf("empty-vocabulary baseline should skip, got %+v", s)
	}
	for i := 0; i < 20; i++ {
		w.mutateEvent(t, "ev-a", graph.NodeID(rng.IntN(w.g.NumNodes())), true)
		w.mutateEvent(t, "ev-b", graph.NodeID(rng.IntN(w.g.NumNodes())), true)
	}
	sample, ran, err := m.Refresh(false)
	if err != nil || !ran {
		t.Fatalf("refresh after first events: ran=%v err=%v", ran, err)
	}
	if len(sample.Top) != 1 {
		t.Fatalf("two events rank %d pairs, want 1: %+v", len(sample.Top), sample.Top)
	}
	assertTopEquals(t, "first ranking", sample.Top, watchOracle(t, w, m.Def()))
	if !strings.Contains(sample.Top[0].A+sample.Top[0].B, "ev-a") {
		t.Errorf("unexpected ranked pair %+v", sample.Top[0])
	}
}
