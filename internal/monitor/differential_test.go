package monitor

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/screen"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

// world is an evolving (graph, events, epoch) triple driven by the
// tests the way the serving tier drives a registry entry: the monitor
// manager is notified pre-publication, mutations are serialized, and
// every published state is internally consistent.
type world struct {
	name string
	mgr  *Manager

	mu      sync.Mutex // snap races the auto-mode timer goroutines
	g       *graph.Graph
	builder *events.Builder
	store   *events.Store
	epoch   uint64
}

func newWorld(name string, mgr *Manager, g *graph.Graph) *world {
	b := events.NewBuilder(g.NumNodes())
	return &world{name: name, mgr: mgr, g: g, builder: b, store: b.Build(), epoch: 1}
}

func (w *world) snap() (*graph.Graph, *events.Store, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.g, w.store, w.epoch
}

// applyEdges mutates the graph by the flips, notifying the manager
// before publication — the serving tier's ordering contract.
func (w *world) applyEdges(t *testing.T, changes []graph.EdgeChange) {
	t.Helper()
	w.mu.Lock()
	oldG, epoch := w.g, w.epoch
	w.mu.Unlock()
	d := graph.NewDelta(oldG)
	applied, err := d.Apply(changes)
	if err != nil {
		t.Fatalf("apply edges: %v", err)
	}
	if len(applied) == 0 {
		return
	}
	newG := d.Compact()
	w.mgr.NotifyEdgeDelta(w.name, oldG, newG, applied, epoch+1, nil, 0)
	w.mu.Lock()
	w.g = newG
	w.epoch++
	w.mu.Unlock()
}

// mutateEvent adds or removes one occurrence of the named event.
func (w *world) mutateEvent(t *testing.T, name string, v graph.NodeID, add bool) {
	t.Helper()
	changed := map[string][]graph.NodeID{name: {v}}
	w.mu.Lock()
	epoch := w.epoch
	w.mu.Unlock()
	w.mgr.NotifyEventDelta(w.name, changed, epoch+1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if add {
		w.builder.Add(name, v)
	} else if !w.builder.Remove(name, v) {
		t.Fatalf("removing absent occurrence %s@%d", name, v)
	}
	w.store = w.builder.Build()
	w.epoch++
}

func seedEvents(w *world, rng *rand.Rand, occurrences int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.g.NumNodes()
	for _, name := range []string{"ev-a", "ev-b"} {
		for i := 0; i < occurrences; i++ {
			w.builder.Add(name, graph.NodeID(rng.IntN(n)))
		}
	}
	w.store = w.builder.Build()
	w.epoch++
}

func diffGraph(directed bool, rng *rand.Rand) *graph.Graph {
	if !directed {
		return graphgen.WattsStrogatz(400, 2, 0.1, rng)
	}
	b := graph.NewDirectedBuilder(300)
	for i := 0; i < 900; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(300)), graph.NodeID(rng.IntN(300)))
	}
	return b.MustBuild()
}

// fromScratch runs the exact sweep the monitor runs, with no retained
// state: a fresh screen.Run at the same epoch, same seed, same
// parameters.
func fromScratch(t *testing.T, w *world, def Definition) screen.PairResult {
	t.Helper()
	res, err := screen.Run(w.g, w.store, [][2]string{{def.A, def.B}}, screen.Config{
		H:           def.H,
		SampleSize:  def.SampleSize,
		Alpha:       def.Alpha,
		Alternative: def.Alternative,
		Seed:        def.Seed,
	})
	if err != nil {
		t.Fatalf("from-scratch run: %v", err)
	}
	return res.Pairs[0]
}

func assertSampleEquals(t *testing.T, ctx string, got Sample, want screen.PairResult) {
	t.Helper()
	// Bit-identical float comparison: the incremental path must not be
	// approximately right, it must be the same computation.
	if got.Tau != want.Tau || got.Z != want.Z || got.P != want.P || got.AdjP != want.AdjP ||
		got.Significant != want.Significant || got.Skipped != want.Skipped {
		t.Fatalf("%s: incremental re-screen diverged:\n got  tau=%v z=%v p=%v adjp=%v sig=%v skip=%q\n want tau=%v z=%v p=%v adjp=%v sig=%v skip=%q",
			ctx, got.Tau, got.Z, got.P, got.AdjP, got.Significant, got.Skipped,
			want.Tau, want.Z, want.P, want.AdjP, want.Significant, want.Skipped)
	}
}

// TestDifferentialIncrementalRescreen is the tentpole's correctness
// witness: over >= 1k seeded mutation batches (edge flips and event
// occurrence changes, directed and undirected graphs, h = 1..3), every
// incremental monitor re-screen — dirty-set invalidation plus cache
// reuse — is bit-identical to a from-scratch screen.Run bound to the
// same epoch.
func TestDifferentialIncrementalRescreen(t *testing.T) {
	type leg struct {
		directed bool
		h        int
		batches  int
		seed     uint64
	}
	legs := []leg{
		{false, 1, 180, 11},
		{false, 2, 180, 12},
		{false, 3, 180, 13},
		{true, 1, 180, 21},
		{true, 2, 180, 22},
		{true, 3, 180, 23},
	}
	var totalBatches, totalReused atomic.Int64
	for _, lg := range legs {
		lg := lg
		t.Run(fmt.Sprintf("directed=%v/h=%d", lg.directed, lg.h), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewPCG(lg.seed, lg.seed^0xabcdef))
			mgr := NewManager()
			w := newWorld("g", mgr, diffGraph(lg.directed, rng))
			seedEvents(w, rng, 40)
			def := Definition{
				A: "ev-a", B: "ev-b",
				H:           lg.h,
				SampleSize:  80,
				Alternative: stats.Greater,
				Seed:        0x5eed ^ lg.seed,
				Mode:        Manual, // the test drives re-screens itself
			}
			m, err := mgr.Create(w.name, def, w.snap)
			if err != nil {
				t.Fatal(err)
			}
			def = m.Def() // normalized (alpha, history defaults)
			assertSampleEquals(t, "baseline", mustLast(t, m), fromScratch(t, w, def))

			stream := graphgen.NewFlipStream(w.g, 0.5, rng)
			for batch := 0; batch < lg.batches; batch++ {
				if rng.IntN(5) == 0 {
					// Event churn: add an occurrence, or remove one while
					// keeping the event alive.
					name := []string{"ev-a", "ev-b"}[rng.IntN(2)]
					occ := w.store.Occurrences(name)
					if rng.IntN(2) == 0 && len(occ) > 3 {
						w.mutateEvent(t, name, occ[rng.IntN(len(occ))], false)
					} else {
						w.mutateEvent(t, name, graph.NodeID(rng.IntN(w.g.NumNodes())), true)
					}
				} else {
					w.applyEdges(t, stream.Take(1+rng.IntN(4)))
				}
				sample, ran, err := m.Refresh(false)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if !ran {
					t.Fatalf("batch %d: refresh did not run despite a pending delta", batch)
				}
				if sample.Epoch != w.epoch {
					t.Fatalf("batch %d: sample bound to epoch %d, world at %d", batch, sample.Epoch, w.epoch)
				}
				assertSampleEquals(t, fmt.Sprintf("batch %d (epoch %d)", batch, w.epoch), sample, fromScratch(t, w, def))
				totalReused.Add(sample.Reused)
			}
			totalBatches.Add(int64(lg.batches))
		})
	}
	t.Cleanup(func() {
		if got := totalBatches.Load(); got < 1000 {
			t.Errorf("differential coverage: %d mutation batches, want >= 1000", got)
		}
		if totalReused.Load() == 0 {
			t.Error("no density evaluations were ever reused; the incremental path never engaged")
		}
	})
}

func mustLast(t *testing.T, m *Monitor) Sample {
	t.Helper()
	s, ok := m.Last()
	if !ok {
		t.Fatal("monitor has no baseline sample")
	}
	return s
}

// TestDirtySetSuperset checks that handing NotifyEdgeDelta a surfaced
// dirty set from a deeper index level (a superset of the monitor-level
// ball) preserves bit-identity — the path the serving tier takes when
// an index repair already computed the ball.
func TestDirtySetSuperset(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	mgr := NewManager()
	w := newWorld("g", mgr, diffGraph(false, rng))
	seedEvents(w, rng, 30)
	def := Definition{A: "ev-a", B: "ev-b", H: 1, SampleSize: 60, Seed: 99, Mode: Manual}
	m, err := mgr.Create(w.name, def, w.snap)
	if err != nil {
		t.Fatal(err)
	}
	def = m.Def()
	stream := graphgen.NewFlipStream(w.g, 0.5, rng)
	for batch := 0; batch < 60; batch++ {
		changes := stream.Take(2)
		d := graph.NewDelta(w.g)
		applied, err := d.Apply(changes)
		if err != nil {
			t.Fatal(err)
		}
		newG := d.Compact()
		// Surface a level-3 ball for an h=1 monitor: a strict superset.
		dirty, err := vicinity.DirtySet(w.g, newG, applied, 3)
		if err != nil {
			t.Fatal(err)
		}
		mgr.NotifyEdgeDelta(w.name, w.g, newG, applied, w.epoch+1, dirty, 3)
		w.g = newG
		w.epoch++
		sample, _, err := m.Refresh(false)
		if err != nil {
			t.Fatal(err)
		}
		assertSampleEquals(t, fmt.Sprintf("batch %d", batch), sample, fromScratch(t, w, def))
	}
}
