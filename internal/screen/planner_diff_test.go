package screen

import (
	"math/rand/v2"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/stats"
)

// This file is the PR's center of gravity: the differential battery
// proving Plan ≡ Run. Every trial builds a seeded random workload
// (graph shape, event layout with deliberate ties and co-location,
// test parameters), runs the exhaustive sweep as the oracle, and
// demands the planner return the byte-identical top-k (and threshold)
// result — same pairs, same order, same Tau/Z/P bits. The trial count
// is ≥ 200 workloads as the acceptance criterion requires; each trial
// exercises several k values, so the planner-vs-oracle comparisons run
// to several hundred.

// diffWorkload is one seeded random workload.
type diffWorkload struct {
	g     *graph.Graph
	store *events.Store
	pairs [][2]string
}

// randomDirected builds a small directed random graph (graphgen has no
// directed generator; the planner must handle directed CSRs too, where
// the prior reach bound stays disabled).
func randomDirected(n int, m int, rng *rand.Rand) *graph.Graph {
	b := graph.NewDirectedBuilder(n)
	seen := make(map[uint64]bool, m)
	for added := 0; added < m; {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		added++
	}
	return b.MustBuild()
}

// randomDiffWorkload generates the trial's graph and event layout. The
// layouts deliberately produce ties: events dropped on the same few
// community blocks yield many reference nodes with identical density
// vectors, and duplicate Add calls collapse to one occurrence.
func randomDiffWorkload(trial int, rng *rand.Rand) diffWorkload {
	var g *graph.Graph
	switch trial % 4 {
	case 0:
		cfg := graphgen.PlantedPartitionConfig{
			Communities: 6 + rng.IntN(6),
			Size:        20 + rng.IntN(20),
			DegreeIn:    float64(4 + rng.IntN(5)),
			DegreeOut:   0.5,
		}
		g = graphgen.PlantedPartition(cfg, rng)
	case 1:
		n := 150 + rng.IntN(250)
		g = graphgen.ErdosRenyi(n, int64(3*n), rng)
	case 2:
		g = graphgen.RMAT(graphgen.RMATConfig{Scale: 8, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19}, rng)
	default:
		n := 150 + rng.IntN(250)
		g = randomDirected(n, 4*n, rng)
	}
	n := g.NumNodes()

	b := events.NewBuilder(n)
	numEvents := 4 + rng.IntN(4) // 4..7 events → 6..21 pairs
	// A shared "hot zone" seeds correlation and ties: several events
	// drop occurrences into the same narrow node range.
	zoneLo := rng.IntN(n / 2)
	zoneW := 1 + n/10
	for e := 0; e < numEvents; e++ {
		name := "ev-" + string(rune('a'+e))
		occ := 5 + rng.IntN(35)
		inZone := 0
		if e%2 == 0 {
			inZone = occ / 2 // co-located half → correlated pairs
		}
		for i := 0; i < occ; i++ {
			var v int
			if i < inZone {
				v = zoneLo + rng.IntN(zoneW)
			} else {
				v = rng.IntN(n)
			}
			b.Add(name, graph.NodeID(v))
			if rng.IntN(8) == 0 {
				b.Add(name, graph.NodeID(v)) // duplicate: collapses, a tie source
			}
		}
	}
	store := b.Build()
	return diffWorkload{g: g, store: store, pairs: AllPairs(store, 1)}
}

// diffOracle is planOracle without the testing.T plumbing: the ranked
// tested pairs of an exhaustive raw-p Run.
func diffOracle(t *testing.T, w diffWorkload, cfg Config) []PairResult {
	t.Helper()
	runCfg := cfg
	runCfg.Correction = None
	res, err := Run(w.g, w.store, w.pairs, runCfg)
	if err != nil {
		t.Fatalf("oracle Run: %v", err)
	}
	var out []PairResult
	for _, p := range res.Pairs {
		if p.Skipped == "" {
			out = append(out, p)
		}
	}
	sortRanked(out, cfg.Alternative)
	return out
}

func sortRanked(out []PairResult, alt stats.Alternative) {
	for i := 1; i < len(out); i++ { // insertion sort: slices are small
		for j := i; j > 0 && rankLess(&out[j], &out[j-1], alt); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func truncTopK(ranked []PairResult, k int) []PairResult {
	if len(ranked) > k {
		return ranked[:k]
	}
	return ranked
}

func truncTheta(ranked []PairResult, alt stats.Alternative, theta float64) []PairResult {
	cut := len(ranked)
	for i, r := range ranked {
		if rankScore(alt, r.Tau) < theta {
			cut = i
			break
		}
	}
	return ranked[:cut]
}

// TestPlannerDifferentialBattery is the ≥200-workload equivalence
// sweep: planner top-k ≡ exhaustive top-k, bit-identical scores,
// stable tie-break order, across graph shapes (community, uniform,
// power-law, directed), h ∈ {1,2,3}, all three alternatives, k ∈
// {1, 5, K²}, tie-heavy event layouts, worker counts, memo on/off,
// and both bound regimes (statistical+deterministic, and
// deterministic-only on every fourth trial).
func TestPlannerDifferentialBattery(t *testing.T) {
	const trials = 220
	alts := []stats.Alternative{stats.Greater, stats.TwoSided, stats.Less}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewPCG(0xd1ff, uint64(trial)))
		w := randomDiffWorkload(trial, rng)

		base := Config{
			H:              1 + rng.IntN(3),
			SampleSize:     40 + rng.IntN(80),
			Alternative:    alts[trial%3],
			MinOccurrences: 1 + rng.IntN(6),
			Workers:        1 + 3*(trial%2),
			NoMemo:         trial%5 == 0,
			Seed:           uint64(trial)*0x9e37 + 1,
		}
		plan := PlanConfig{Config: base}
		plan.FirstCheckpoint = 8 // small samples still hit checkpoints
		if trial%4 == 3 {
			plan.BoundAlpha = -1 // deterministic-only pruning regime
		}

		oracle := diffOracle(t, w, base)

		for _, k := range []int{1, 5, len(w.pairs)} {
			if k < 1 {
				continue
			}
			cfg := plan
			cfg.K = k
			got, err := Plan(w.g, w.store, w.pairs, cfg)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if s := got.Stats; s.Skipped+s.PrunedPrior+s.PrunedEarly+s.FullTests != s.Candidates {
				t.Fatalf("trial %d k=%d: stats do not partition candidates: %+v", trial, k, s)
			}
			want := truncTopK(oracle, k)
			if len(got.Pairs) != len(want) {
				t.Fatalf("trial %d k=%d: planner returned %d pairs, oracle %d\n got %+v\nwant %+v",
					trial, k, len(got.Pairs), len(want), got.Pairs, want)
			}
			for i := range want {
				if got.Pairs[i] != want[i] {
					t.Fatalf("trial %d k=%d rank %d: planner diverged from exhaustive sweep\n got %+v\nwant %+v",
						trial, k, i, got.Pairs[i], want[i])
				}
			}
		}

		// Threshold mode on every other trial: θ at the median tested
		// score (an exact-score crossing) and θ at 0.
		if trial%2 == 0 && len(oracle) > 0 {
			thetas := []float64{0, rankScore(base.Alternative, oracle[len(oracle)/2].Tau)}
			for _, theta := range thetas {
				if theta < -1 || theta > 1 {
					continue
				}
				cfg := plan
				cfg.K = 0
				cfg.Theta = theta
				got, err := Plan(w.g, w.store, w.pairs, cfg)
				if err != nil {
					t.Fatalf("trial %d θ=%g: %v", trial, theta, err)
				}
				want := truncTheta(oracle, base.Alternative, theta)
				if len(got.Pairs) != len(want) {
					t.Fatalf("trial %d θ=%.17g: planner returned %d pairs, oracle %d\n got %+v\nwant %+v",
						trial, theta, len(got.Pairs), len(want), got.Pairs, want)
				}
				for i := range want {
					if got.Pairs[i] != want[i] {
						t.Fatalf("trial %d θ=%.17g rank %d: diverged\n got %+v\nwant %+v",
							trial, theta, i, got.Pairs[i], want[i])
					}
				}
			}
		}
	}
}

// TestPlannerDifferentialEngines repeats a slice of the battery with a
// pooled BFS engine wired in (the tescd serving configuration), since
// the engine path changes which evaluator planPair builds.
func TestPlannerDifferentialEngines(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewPCG(0xe49, uint64(trial)))
		w := randomDiffWorkload(trial, rng)
		base := Config{
			H:           1 + rng.IntN(2),
			SampleSize:  60,
			Alternative: stats.Greater,
			Workers:     2,
			Seed:        uint64(trial) + 40,
			Engines:     graph.NewEnginePool(w.g),
		}
		oracle := diffOracle(t, w, base)
		cfg := PlanConfig{Config: base, K: 5, FirstCheckpoint: 8}
		got, err := Plan(w.g, w.store, w.pairs, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := truncTopK(oracle, 5)
		if len(got.Pairs) != len(want) {
			t.Fatalf("trial %d: %d pairs vs oracle %d", trial, len(got.Pairs), len(want))
		}
		for i := range want {
			if got.Pairs[i] != want[i] {
				t.Fatalf("trial %d rank %d: engine-pooled planner diverged\n got %+v\nwant %+v",
					trial, i, got.Pairs[i], want[i])
			}
		}
	}
}
