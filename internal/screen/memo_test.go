package screen

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/stats"
)

// memoFixture builds a seeded graph and a K-event store whose h-hop
// reference populations overlap heavily, so the cross-pair memo gets
// real hits.
func memoFixture(t *testing.T, directed bool, k, occ int, seed uint64) (*graph.Graph, *events.Store) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x51))
	const n = 600
	var b *graph.Builder
	if directed {
		b = graph.NewDirectedBuilder(n)
	} else {
		b = graph.NewBuilder(n)
	}
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eb := events.NewBuilder(n)
	for e := 0; e < k; e++ {
		for i := 0; i < occ; i++ {
			eb.Add(fmt.Sprintf("ev-%d", e), graph.NodeID(rng.IntN(n)))
		}
	}
	return g, eb.Build()
}

// samePairs compares the exported statistics of two screening reports
// with exact float equality — the memo must be bit-invisible.
func samePairs(t *testing.T, memo, ref Result) {
	t.Helper()
	if len(memo.Pairs) != len(ref.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(memo.Pairs), len(ref.Pairs))
	}
	if memo.Tested != ref.Tested || memo.Skipped != ref.Skipped || memo.Rejected != ref.Rejected {
		t.Fatalf("summary differs: %+v vs %+v", memo, ref)
	}
	for i := range memo.Pairs {
		m, r := memo.Pairs[i], ref.Pairs[i]
		if m.A != r.A || m.B != r.B || m.OccA != r.OccA || m.OccB != r.OccB ||
			m.Tau != r.Tau || m.Z != r.Z || m.P != r.P || m.AdjP != r.AdjP ||
			m.Significant != r.Significant || m.Skipped != r.Skipped {
			t.Fatalf("pair %d differs:\nmemo %+v\nref  %+v", i, m, r)
		}
	}
}

// TestMemoBitIdentical is the sweep-level differential test: screening
// with the cross-pair density memo produces reports bit-identical to
// the retained per-pair reference path, over directed and undirected
// graphs at h = 1..3, while actually deduplicating traversals.
func TestMemoBitIdentical(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for h := 1; h <= 3; h++ {
			t.Run(fmt.Sprintf("directed=%v/h=%d", directed, h), func(t *testing.T) {
				g, store := memoFixture(t, directed, 5, 25, uint64(h)*17+1)
				cfg := Config{H: h, SampleSize: 200, Seed: 42, Workers: 4}
				pairs := AllPairs(store, 1)

				memoRes, err := Run(g, store, pairs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				refCfg := cfg
				refCfg.NoMemo = true
				refRes, err := Run(g, store, pairs, refCfg)
				if err != nil {
					t.Fatal(err)
				}

				samePairs(t, memoRes, refRes)
				if refRes.MemoHits != 0 {
					t.Fatalf("reference path reported %d memo hits", refRes.MemoHits)
				}
				if memoRes.MemoHits == 0 {
					t.Fatal("memo path reported zero hits on an overlapping workload")
				}
				if memoRes.BFSRuns >= refRes.BFSRuns {
					t.Fatalf("memo did not reduce traversals: %d vs %d", memoRes.BFSRuns, refRes.BFSRuns)
				}
				if memoRes.BFSRuns+memoRes.MemoHits < refRes.BFSRuns {
					t.Fatalf("runs+hits %d < reference evaluations %d: evaluations lost",
						memoRes.BFSRuns+memoRes.MemoHits, refRes.BFSRuns)
				}
			})
		}
	}
}

// TestMemoWithEnginePool pins that lending pooled BFS engines to the
// sweep changes nothing in the report.
func TestMemoWithEnginePool(t *testing.T) {
	g, store := memoFixture(t, false, 4, 30, 7)
	pairs := AllPairs(store, 1)
	cfg := Config{H: 2, SampleSize: 150, Seed: 9, Workers: 3}
	plain, err := Run(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engines = graph.NewEnginePool(g)
	pooled, err := Run(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, plain, pooled)
}

// TestScreenSampleRoutesThroughLogLinearKendall audits the satellite
// requirement: every screening test at the default and paper sample
// sizes (>= stats.KendallNaiveCutoff) must route through Knight's
// O(n log n) Kendall, never the quadratic reference kernel.
func TestScreenSampleRoutesThroughLogLinearKendall(t *testing.T) {
	for _, n := range []int{64, 300, 900} {
		if stats.UseNaiveKendall(n) {
			t.Fatalf("sample size %d would use the quadratic Kendall kernel", n)
		}
	}
}
