package screen

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/stats"
)

// sweep100k is the PR 4 screening benchmark substrate: the ~100k-node
// coauthorship surrogate with a K=8 event vocabulary (500 occurrences
// each) concentrated in a 2k-node community region — §5.4's keyword
// workload shape, where event vicinities overlap and cross-pair
// reference samples revisit the same nodes. Built once; only -bench
// pays.
var sweep100k struct {
	once  sync.Once
	g     *graph.Graph
	store *events.Store
	pairs [][2]string
}

func sweep100kSetup(tb testing.TB) {
	sweep100k.once.Do(func() {
		rng := rand.New(rand.NewPCG(7, 0xc0a0))
		g := graphgen.Coauthorship(graphgen.DefaultCoauthorship(1.0), rng)
		b := events.NewBuilder(g.NumNodes())
		for e := 0; e < 8; e++ {
			name := fmt.Sprintf("ev-%d", e)
			for k := 0; k < 500; k++ {
				b.Add(name, graph.NodeID(rng.IntN(2000)))
			}
		}
		sweep100k.g = g
		sweep100k.store = b.Build()
		sweep100k.pairs = AllPairs(sweep100k.store, 1)
	})
}

func runSweep(b *testing.B, noMemo bool) {
	sweep100kSetup(b)
	cfg := Config{H: 2, SampleSize: 900, Seed: 3, Workers: 1, NoMemo: noMemo}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(sweep100k.g, sweep100k.store, sweep100k.pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BFSRuns), "bfs_runs")
		b.ReportMetric(float64(res.MemoHits), "memo_hits")
	}
}

// BenchmarkScreenSweepMemo is the K=8 (28-pair) sweep with the
// cross-pair density memo: each distinct reference node across the
// whole sweep is traversed once. The acceptance criterion is >= 3x
// fewer bfs_runs than BenchmarkScreenSweepNoMemo.
func BenchmarkScreenSweepMemo(b *testing.B) { runSweep(b, false) }

// BenchmarkScreenSweepNoMemo is the retained per-pair reference path:
// every pair re-traverses its full reference sample.
func BenchmarkScreenSweepNoMemo(b *testing.B) { runSweep(b, true) }

// sweepK32 is the planner's benchmark substrate: the same 100k-node
// coauthorship graph, but a K=32 (496-pair) event vocabulary shaped
// like a real screening question — 8 signal events co-located in the
// same community block (their pairs attract), and 24 background events
// each living in its own disjoint community block (their pairs, and
// every signal-background pair, are independent-to-repulsive). Top-k
// attraction screening on this vocabulary is the workload the planner
// exists for: a handful of strong pairs set the bar fast and the
// hopeless bulk prunes against it at early checkpoints.
var sweepK32 struct {
	once  sync.Once
	store *events.Store
	pairs [][2]string
}

func sweepK32Setup(tb testing.TB) {
	sweep100kSetup(tb)
	sweepK32.once.Do(func() {
		rng := rand.New(rand.NewPCG(7, 0xc0a1))
		b := events.NewBuilder(sweep100k.g.NumNodes())
		// Signal events co-locate inside the same 10 communities (80
		// authors each), the fixture's planted-pair shape at scale.
		for e := 0; e < 8; e++ {
			name := fmt.Sprintf("sig-%d", e)
			for c := 0; c < 10; c++ {
				for k := 0; k < 50; k++ {
					b.Add(name, graph.NodeID(c*80+rng.IntN(80)))
				}
			}
		}
		// Each background event owns a disjoint two-community block far
		// from the signal region (communities 20+2e, 21+2e).
		for e := 0; e < 24; e++ {
			name := fmt.Sprintf("bg-%02d", e)
			base := (20 + 2*e) * 80
			for k := 0; k < 500; k++ {
				b.Add(name, graph.NodeID(base+rng.IntN(160)))
			}
		}
		sweepK32.store = b.Build()
		sweepK32.pairs = AllPairs(sweepK32.store, 1)
	})
}

// BenchmarkScreenPlanTopK is the acceptance workload: top-10 of the
// K=32 (496-pair) surrogate. full_tests is the planner's headline
// saving versus the exhaustive sweep's 496; `tescbench -topk` records
// the same comparison in BENCH_pr8.json.
func BenchmarkScreenPlanTopK(b *testing.B) {
	sweepK32Setup(b)
	cfg := PlanConfig{
		Config: Config{H: 2, SampleSize: 900, Seed: 3, Workers: 1, Alternative: stats.Greater},
		K:      10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Plan(sweep100k.g, sweepK32.store, sweepK32.pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.FullTests), "full_tests")
		b.ReportMetric(float64(res.Stats.PrunedEarly), "pruned_early")
		b.ReportMetric(float64(res.Stats.DensityEvals), "density_evals")
	}
}

// BenchmarkScreenSweepK32 is the exhaustive sweep over the same 496
// pairs — the planner's point of comparison (it pays 496 full tests).
func BenchmarkScreenSweepK32(b *testing.B) {
	sweepK32Setup(b)
	cfg := Config{H: 2, SampleSize: 900, Seed: 3, Workers: 1, Alternative: stats.Greater}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(sweep100k.g, sweepK32.store, sweepK32.pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BFSRuns), "bfs_runs")
	}
}
