package screen

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

// sweep100k is the PR 4 screening benchmark substrate: the ~100k-node
// coauthorship surrogate with a K=8 event vocabulary (500 occurrences
// each) concentrated in a 2k-node community region — §5.4's keyword
// workload shape, where event vicinities overlap and cross-pair
// reference samples revisit the same nodes. Built once; only -bench
// pays.
var sweep100k struct {
	once  sync.Once
	g     *graph.Graph
	store *events.Store
	pairs [][2]string
}

func sweep100kSetup(tb testing.TB) {
	sweep100k.once.Do(func() {
		rng := rand.New(rand.NewPCG(7, 0xc0a0))
		g := graphgen.Coauthorship(graphgen.DefaultCoauthorship(1.0), rng)
		b := events.NewBuilder(g.NumNodes())
		for e := 0; e < 8; e++ {
			name := fmt.Sprintf("ev-%d", e)
			for k := 0; k < 500; k++ {
				b.Add(name, graph.NodeID(rng.IntN(2000)))
			}
		}
		sweep100k.g = g
		sweep100k.store = b.Build()
		sweep100k.pairs = AllPairs(sweep100k.store, 1)
	})
}

func runSweep(b *testing.B, noMemo bool) {
	sweep100kSetup(b)
	cfg := Config{H: 2, SampleSize: 900, Seed: 3, Workers: 1, NoMemo: noMemo}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(sweep100k.g, sweep100k.store, sweep100k.pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BFSRuns), "bfs_runs")
		b.ReportMetric(float64(res.MemoHits), "memo_hits")
	}
}

// BenchmarkScreenSweepMemo is the K=8 (28-pair) sweep with the
// cross-pair density memo: each distinct reference node across the
// whole sweep is traversed once. The acceptance criterion is >= 3x
// fewer bfs_runs than BenchmarkScreenSweepNoMemo.
func BenchmarkScreenSweepMemo(b *testing.B) { runSweep(b, false) }

// BenchmarkScreenSweepNoMemo is the retained per-pair reference path:
// every pair re-traverses its full reference sample.
func BenchmarkScreenSweepNoMemo(b *testing.B) { runSweep(b, true) }
