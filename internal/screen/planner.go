package screen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tesc/internal/core"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

// This file is the top-k screening planner: the best-first alternative
// to Run's exhaustive K² sweep for the production questions "which
// pairs correlate most" and "did anything cross θ". The planner orders
// candidate pairs by a cheap co-occurrence prior, evaluates densities
// incrementally over each pair's reference sample, and terminates a
// pair as soon as an upper bound on its final score falls below the
// current bar (the k-th best completed score, or θ). Two bounds are
// intersected at every checkpoint:
//
//   - stats.TauCompletionInterval — deterministic: the unevaluated
//     concordance terms are each in {−1,0,+1}, so the final statistic
//     is boxed regardless of what the remaining references contain.
//   - stats.TauPrefixConfidenceInterval — statistical, derived from
//     the §3.1 variance bound (TauVarianceUpperBound); it is what
//     terminates hopeless pairs early, at a per-checkpoint risk of
//     BoundAlpha.
//
// Because a pair is pruned only when its upper bound is STRICTLY below
// the bar, and the bar never exceeds the final k-th best exact score,
// a pruned pair provably cannot belong to the top k (ties at the bar
// always run to completion). Completed pairs draw the exact reference
// sample Run would draw (same pairSeed rng, same BatchBFS sampler) and
// push the same density vectors through the same Kendall kernel, so
// their Tau/Z/P are bit-identical to the exhaustive sweep's — the
// differential battery in planner_diff_test.go pins this equivalence.
// See docs/SCREENING.md for the full argument.

// PlanConfig parameterizes a planned (top-k or threshold) screening
// run. The embedded Config fields keep their Run semantics, with two
// exceptions: Correction is ignored — a pruned sweep never observes
// the whole p-value family, so planned results carry raw p-values
// (AdjP == P) — and Progress reports every candidate pair exactly
// once whether it was tested, pruned, or skipped.
type PlanConfig struct {
	Config

	// K selects top-k mode: return the K best pairs by score. Zero
	// selects threshold mode (see Theta); negative is an error.
	K int
	// Theta is the threshold-mode bar: return every pair whose score
	// reaches Theta. Consulted only when K == 0 (the two modes are
	// exclusive; combining them is an error so a forgotten field can
	// never silently change top-k semantics).
	Theta float64
	// BoundAlpha is the per-checkpoint risk of the statistical pruning
	// bound (default 1e-6). Smaller values prune later but make a
	// bound violation — the only way a planned result can differ from
	// the exhaustive sweep — correspondingly rarer. Negative disables
	// the statistical bound entirely, leaving the deterministic
	// completion bound: pruning then never lies, at the cost of only
	// terminating pairs late in their sample.
	BoundAlpha float64
	// FirstCheckpoint is the first sample prefix at which bounds are
	// evaluated (default 64, the Kendall cutoff); the schedule doubles
	// from there and densifies near the full sample where the
	// deterministic bound sharpens. Must be ≥ 2 when set.
	FirstCheckpoint int
	// Index, when non-nil and built on g at a level ≥ H (undirected
	// graphs only), enables the prior reach bound: an event whose
	// occurrence vicinities cover fewer than the sample's worth of
	// nodes caps |τ| before any sampling, so hopeless pairs are pruned
	// without a single traversal.
	Index *vicinity.Index
	// Stream, when non-nil, is called with the current ranked result
	// set each time a completed pair improves it — top-k results
	// stream out while the sweep runs. Calls are serialized and the
	// slice is the callback's to keep; keep the callback cheap, it is
	// invoked on the worker path.
	Stream func(top []PairResult)
}

// PlanStats accounts for the planner's work. Candidates is always
// Skipped + PrunedPrior + PrunedEarly + FullTests.
type PlanStats struct {
	// Candidates is the number of candidate pairs considered.
	Candidates int
	// FullTests counts pairs whose whole reference sample was
	// evaluated — the pairs an exhaustive sweep would have paid for
	// every candidate.
	FullTests int
	// PrunedEarly counts pairs terminated at a bound checkpoint.
	PrunedEarly int
	// PrunedPrior counts pairs discarded by the prior reach bound
	// before any sampling.
	PrunedPrior int
	// Skipped counts degenerate pairs (below MinOccurrences, empty
	// reference populations, ...) — the same pairs Run marks Skipped.
	Skipped int
	// Checkpoints counts bound evaluations performed.
	Checkpoints int
	// DensityEvals counts reference-node density evaluations paid
	// (from the memo or fresh); an exhaustive sweep pays one per
	// sampled reference of every candidate.
	DensityEvals int64
	// BFSRuns / MemoHits mirror Result's density-phase accounting.
	BFSRuns  int64
	MemoHits int64
}

// PlanResult is a completed planned screen: the ranked result pairs
// (score descending, ties by event names) and the work accounting.
// Skipped and pruned pairs do not appear in Pairs.
type PlanResult struct {
	Pairs []PairResult
	Stats PlanStats
}

// rankScore maps a pair's τ to its ranking score under the tested
// alternative: attraction ranks by τ, repulsion by −τ, two-sided by
// |τ|. Ranking is τ-derived rather than p-derived deliberately: BH/
// Bonferroni adjustment depends on the whole tested family, which a
// pruned sweep never observes, while τ is a pure per-pair statistic.
func rankScore(alt stats.Alternative, tau float64) float64 {
	switch alt {
	case stats.Greater:
		return tau
	case stats.Less:
		return -tau
	default:
		return math.Abs(tau)
	}
}

// rankLess is the planner's total order: score descending, then event
// names — deterministic for any two distinct pairs, which is what
// makes "the top k" well defined under ties at the k-th place.
func rankLess(a, b *PairResult, alt stats.Alternative) bool {
	sa, sb := rankScore(alt, a.Tau), rankScore(alt, b.Tau)
	if sa != sb {
		return sa > sb
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// scoreInterval maps a τ interval to a score interval under the
// alternative's objective.
func scoreInterval(alt stats.Alternative, lo, hi float64) (sLo, sHi float64) {
	switch alt {
	case stats.Greater:
		return lo, hi
	case stats.Less:
		return -hi, -lo
	default:
		sHi = math.Max(math.Abs(lo), math.Abs(hi))
		if lo <= 0 && hi >= 0 {
			sLo = 0
		} else {
			sLo = math.Min(math.Abs(lo), math.Abs(hi))
		}
		return sLo, sHi
	}
}

// checkpointSchedule returns the sorted prefix lengths at which a
// pair's bounds are evaluated: doubling from first (early exits for
// the statistical bound), then eighths of the sample (where the
// deterministic completion bound sharpens: at m = 7n/8 it already
// boxes the final statistic within ±0.23). Always strictly below n —
// the full sample is the test itself, not a checkpoint.
func checkpointSchedule(first, n int) []int {
	if n <= first {
		return nil
	}
	set := make(map[int]bool)
	for m := first; m < n; m *= 2 {
		set[m] = true
	}
	for num := 4; num < 8; num++ {
		if m := n * num / 8; m >= first && m < n {
			set[m] = true
		}
	}
	cps := make([]int, 0, len(set))
	for m := range set {
		cps = append(cps, m)
	}
	sort.Ints(cps)
	return cps
}

// defaultBoundAlpha is the per-checkpoint risk of the statistical
// pruning bound. At 1e-6 the normal quantile is ≈ 4.9, wide enough
// that a violation — the only way a planned result can diverge from
// the exhaustive sweep — needs a ≈ 5σ density fluctuation.
const defaultBoundAlpha = 1e-6

// planBar is the shared pruning bar: in top-k mode the k-th best
// COMPLETED exact score (−Inf until k pairs completed), in threshold
// mode the constant θ. It only ever rises, which is what makes
// strict-inequality pruning sound.
type planBar struct {
	mu     sync.Mutex
	k      int     // 0 = threshold mode
	theta  float64 // threshold-mode bar
	scores []float64
	// completed accumulates every fully tested pair for the final
	// ranking; streaming snapshots are cut from it.
	completed []PairResult
	alt       stats.Alternative
	stream    func([]PairResult)
}

func (b *planBar) bar() float64 {
	if b.k == 0 {
		return b.theta
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.scores) < b.k {
		return math.Inf(-1)
	}
	return b.scores[b.k-1]
}

// offer records a completed pair's exact score and, when it improves
// the visible result set, streams a fresh ranked snapshot.
func (b *planBar) offer(res PairResult) {
	score := rankScore(b.alt, res.Tau)
	b.mu.Lock()
	b.completed = append(b.completed, res)
	// insert into the descending score list
	i := sort.Search(len(b.scores), func(i int) bool { return b.scores[i] < score })
	b.scores = append(b.scores, 0)
	copy(b.scores[i+1:], b.scores[i:])
	b.scores[i] = score
	var snapshot []PairResult
	if b.stream != nil && b.visible(score) {
		snapshot = b.ranked()
	}
	b.mu.Unlock()
	if snapshot != nil {
		b.stream(snapshot)
	}
}

// visible reports whether a completed score changes the result set a
// client can see (top-k membership, or θ reached).
func (b *planBar) visible(score float64) bool {
	if b.k == 0 {
		return score >= b.theta
	}
	if len(b.scores) <= b.k {
		return true
	}
	return score >= b.scores[b.k-1]
}

// ranked cuts the current result set from the completed pairs: top-k
// or everything at θ, in rank order. Caller holds mu (or owns b).
func (b *planBar) ranked() []PairResult {
	out := append([]PairResult(nil), b.completed...)
	sort.Slice(out, func(i, j int) bool { return rankLess(&out[i], &out[j], b.alt) })
	if b.k > 0 {
		if len(out) > b.k {
			out = out[:b.k]
		}
		return out
	}
	cut := len(out)
	for i, r := range out {
		if rankScore(b.alt, r.Tau) < b.theta {
			cut = i
			break
		}
	}
	return out[:cut]
}

// planCandidate is one queued pair with its precomputed priority and
// prior score bound.
type planCandidate struct {
	pair     [2]string
	occA     int
	occB     int
	priority float64
	priorUB  float64
}

// Plan runs the prioritized top-k / threshold screen over the given
// candidate pairs. The returned pairs carry raw p-values (AdjP == P,
// Significant = P < Alpha); see PlanConfig for the two modes.
func Plan(g *graph.Graph, store *events.Store, pairs [][2]string, cfg PlanConfig) (PlanResult, error) {
	if cfg.H < 1 {
		return PlanResult{}, fmt.Errorf("screen: H must be >= 1")
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 900
	}
	if cfg.SampleSize < 2 {
		return PlanResult{}, fmt.Errorf("screen: sample size must be >= 2, got %d", cfg.SampleSize)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 || math.IsNaN(cfg.Alpha) {
		return PlanResult{}, fmt.Errorf("screen: alpha must be in (0,1), got %g", cfg.Alpha)
	}
	if cfg.MinOccurrences < 1 {
		cfg.MinOccurrences = 1
	}
	switch {
	case cfg.K < 0:
		return PlanResult{}, fmt.Errorf("screen: plan k must be >= 0, got %d", cfg.K)
	case cfg.K == 0:
		if math.IsNaN(cfg.Theta) || cfg.Theta < -1 || cfg.Theta > 1 {
			return PlanResult{}, fmt.Errorf("screen: threshold mode needs theta in [-1,1], got %g", cfg.Theta)
		}
	case cfg.Theta != 0:
		return PlanResult{}, fmt.Errorf("screen: theta is a threshold-mode parameter; it must be 0 when k > 0")
	}
	if math.IsNaN(cfg.BoundAlpha) || cfg.BoundAlpha >= 1 {
		return PlanResult{}, fmt.Errorf("screen: bound alpha must be below 1 (negative disables the statistical bound), got %g", cfg.BoundAlpha)
	}
	if cfg.BoundAlpha == 0 {
		cfg.BoundAlpha = defaultBoundAlpha
	}
	if cfg.FirstCheckpoint == 0 {
		cfg.FirstCheckpoint = stats.KendallNaiveCutoff
	}
	if cfg.FirstCheckpoint < 2 {
		return PlanResult{}, fmt.Errorf("screen: first checkpoint must be >= 2, got %d", cfg.FirstCheckpoint)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}

	stale := func() bool { return cfg.CurrentEpoch != nil && cfg.CurrentEpoch() != cfg.Epoch }
	if stale() {
		return PlanResult{}, ErrStaleEpoch
	}
	if err := cfg.canceled(); err != nil {
		return PlanResult{}, err
	}

	memo, mem, eventIdx, err := bindSweepMemo(g, store, pairs, cfg.Config)
	if err != nil {
		return PlanResult{}, err
	}
	var hitsBefore int64
	if memo != nil {
		hitsBefore = memo.memoHits.Load()
	}

	st := PlanStats{Candidates: len(pairs)}
	bar := &planBar{k: cfg.K, theta: cfg.Theta, alt: cfg.Alternative, stream: cfg.Stream}

	// Phase 1 — the prior pass: skip degenerate pairs, compute each
	// survivor's priority (occurrence-set cosine overlap, a pure
	// co-location heuristic: order affects only how fast the bar
	// rises, never which pairs survive) and, when the vicinity index
	// allows, a sound prior bound on its score. This is the planner's
	// "query planning" step: O(K²) set intersections instead of O(K²)
	// full tests.
	total := len(pairs)
	var done atomic.Int64
	// Same contract as Run's Progress: exactly once per candidate,
	// each value 1..total delivered once, no lock held.
	progress := func() {
		d := int(done.Add(1))
		if cfg.Progress != nil {
			cfg.Progress(d, total)
		}
	}
	reach := priorReach(g, store, cfg)
	queue := make([]planCandidate, 0, len(pairs))
	var skippedEarly int
	for _, pair := range pairs {
		c := planCandidate{pair: pair, occA: store.Count(pair[0]), occB: store.Count(pair[1]), priorUB: 1}
		if c.occA < cfg.MinOccurrences || c.occB < cfg.MinOccurrences {
			skippedEarly++
			progress()
			continue
		}
		va, vb := store.Set(pair[0]), store.Set(pair[1])
		overlap := va.CountIn(vb.Members())
		c.priority = float64(overlap) / math.Sqrt(float64(c.occA)*float64(c.occB))
		if reach != nil {
			c.priorUB = math.Min(reach.scoreUB(pair[0], c.occA, c.occB), reach.scoreUB(pair[1], c.occA, c.occB))
		}
		queue = append(queue, c)
	}
	st.Skipped = skippedEarly
	// The materialized max-priority queue: priorities are static, so a
	// deterministic sort plus an atomic cursor is the queue — workers
	// pop best-first without a heap's lock traffic.
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].priority != queue[j].priority {
			return queue[i].priority > queue[j].priority
		}
		if queue[i].pair[0] != queue[j].pair[0] {
			return queue[i].pair[0] < queue[j].pair[0]
		}
		return queue[i].pair[1] < queue[j].pair[1]
	})

	// Phase 2 — best-first evaluation with bound pruning.
	var (
		next       atomic.Int64
		staleStop  atomic.Bool
		cancelStop atomic.Bool
		mu         sync.Mutex // guards the shared counters below
	)
	worker := func() {
		sampler := &core.BatchBFSSampler{Engines: cfg.Engines}
		var src *memoSource
		if memo != nil {
			var bfs *graph.BFS
			if cfg.Engines != nil && cfg.Engines.Graph() == g {
				bfs = cfg.Engines.Get()
				defer cfg.Engines.Put(bfs)
			}
			multi, err := core.NewMultiEvaluator(g, mem, cfg.H, bfs)
			if err == nil {
				src = &memoSource{memo: memo, multi: multi, scratch: make([]int32, mem.NumEvents()), shared: cfg.Memo}
			}
		}
		var local planStats64
		for {
			i := int(next.Add(1)) - 1
			if i >= len(queue) {
				break
			}
			if stale() {
				staleStop.Store(true)
				break
			}
			if cfg.canceled() != nil {
				cancelStop.Store(true)
				break
			}
			c := queue[i]
			var fate pairFate
			if c.priorUB < bar.bar() {
				// The reach bound already caps this pair below the bar:
				// discarded without sampling a single reference.
				fate = fatePrunedPrior
			} else {
				var res PairResult
				res, fate = planPair(g, store, c, cfg, sampler, src, eventIdx, bar, &local)
				if fate == fateCanceled {
					cancelStop.Store(true)
					break
				}
				if fate == fateFull {
					bar.offer(res)
				}
			}
			mu.Lock()
			switch fate {
			case fateFull:
				st.FullTests++
			case fatePrunedEarly:
				st.PrunedEarly++
			case fatePrunedPrior:
				st.PrunedPrior++
			case fateSkipped:
				st.Skipped++
			}
			mu.Unlock()
			progress()
		}
		mu.Lock()
		st.Checkpoints += int(local.checkpoints)
		st.DensityEvals += local.densityEvals
		st.BFSRuns += local.bfsRuns
		mu.Unlock()
	}
	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	if staleStop.Load() || stale() {
		return PlanResult{}, ErrStaleEpoch
	}

	if memo != nil {
		st.MemoHits = memo.memoHits.Load() - hitsBefore
	}
	out := PlanResult{Pairs: bar.ranked(), Stats: st}
	if cancelStop.Load() {
		// A canceled plan is the one abandonment that keeps its partial
		// work: every pair in the bar completed its full exact test, so
		// the ranking-so-far is sound over the pairs evaluated — the
		// planner API already models partial results for streaming.
		// The error still reports the sweep as incomplete.
		return out, cfg.canceled()
	}
	return out, nil
}

// checkpointScoreBound is the planner's pruning core: given the
// Kendall statistic of the first m of n sampled references, it boxes
// the pair's final score. The deterministic completion interval always
// holds; when boundAlpha > 0 the statistical prefix interval is
// intersected with it — unless the intersection is empty (the
// statistical interval has already lied), in which case the
// deterministic box stands alone. Pure and lock-free so the
// adversarial tests can drive it with synthetic density prefixes.
func checkpointScoreBound(alt stats.Alternative, k stats.TauResult, m, n int, boundAlpha float64) (sLo, sHi float64) {
	lo, hi := stats.TauCompletionInterval(k.Concordant-k.Discordant, m, n)
	if boundAlpha > 0 {
		cLo, cHi := stats.TauPrefixConfidenceInterval(k.Tau, m, n, boundAlpha)
		if math.Max(lo, cLo) <= math.Min(hi, cHi) {
			lo, hi = math.Max(lo, cLo), math.Min(hi, cHi)
		}
	}
	return scoreInterval(alt, lo, hi)
}

// pairFate classifies how the planner disposed of a candidate.
type pairFate int

const (
	fateFull pairFate = iota
	fatePrunedEarly
	fatePrunedPrior
	fateSkipped
	// fateCanceled marks a pair abandoned mid-evaluation because the
	// sweep's context was canceled; the worker stops and Plan returns
	// the bar's partial ranking with the cancellation error.
	fateCanceled
)

// planStats64 is a worker's private accounting, folded once at exit.
type planStats64 struct {
	checkpoints  int64
	densityEvals int64
	bfsRuns      int64
}

// planPair evaluates one candidate incrementally: draw the exact
// reference sample Run would draw, then walk the checkpoint schedule,
// extending the density prefix and pruning as soon as the score bound
// drops below the bar. A pair that survives every checkpoint finishes
// with the full-sample Kendall statistic — bit-identical to
// screenOne's, since the same density vectors reach the same kernel.
func planPair(g *graph.Graph, store *events.Store, c planCandidate, cfg PlanConfig, sampler core.Sampler, src *memoSource, eventIdx map[string]int, bar *planBar, local *planStats64) (PairResult, pairFate) {
	res := PairResult{A: c.pair[0], B: c.pair[1], OccA: c.occA, OccB: c.occB}

	var p *core.Problem
	var err error
	if src != nil && src.shared != nil {
		p, err = src.shared.problemFor(g, store, c.pair)
	} else {
		p, err = core.NewProblem(g, store.Set(c.pair[0]), store.Set(c.pair[1]))
	}
	if err != nil {
		res.Skipped = err.Error()
		return res, fateSkipped
	}

	// The same per-pair rng screenOne builds: the sampler consumes it
	// identically, so the reference sample is the exhaustive sweep's.
	seed := pairSeed(cfg.Seed, c.pair[0], c.pair[1])
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	sample, err := sampler.SampleReferences(p, cfg.H, cfg.SampleSize, rng)
	if err != nil {
		res.Skipped = err.Error()
		return res, fateSkipped
	}
	nodes := sample.Nodes
	n := len(nodes)

	var source core.DensitySource
	if src != nil {
		src.retarget(eventIdx[c.pair[0]], eventIdx[c.pair[1]])
		source = src
	} else {
		var eval *core.DensityEvaluator
		if cfg.Engines != nil && cfg.Engines.Graph() == g {
			bfs := cfg.Engines.Get()
			defer cfg.Engines.Put(bfs)
			eval = core.NewDensityEvaluatorBFS(p, cfg.H, bfs)
		} else {
			eval = core.NewDensityEvaluator(p, cfg.H)
		}
		source = eval
	}

	sa := make([]float64, 0, n)
	sb := make([]float64, 0, n)
	evalTo := func(m int) {
		before := source.Traversals()
		csa, csb, _ := source.EvalAll(nodes[len(sa):m])
		local.bfsRuns += source.Traversals() - before
		local.densityEvals += int64(len(csa))
		sa = append(sa, csa...)
		sb = append(sb, csb...)
	}

	for _, m := range checkpointSchedule(cfg.FirstCheckpoint, n) {
		// Checkpoints are the planner's natural cancellation points:
		// the densities already paid for stay in the memo, and nothing
		// partial ever reaches the bar.
		if cfg.canceled() != nil {
			return res, fateCanceled
		}
		evalTo(m)
		local.checkpoints++
		k := stats.KendallAuto(sa, sb)
		_, scoreUB := checkpointScoreBound(cfg.Alternative, k, m, n, cfg.BoundAlpha)
		// Strictly below the bar: the pair's final score cannot reach
		// the k-th best completed score (or θ), under the bound. Ties
		// at the bar keep running — that is what makes the planned
		// top-k set exactly the exhaustive one's.
		if scoreUB < bar.bar() {
			return res, fatePrunedEarly
		}
	}
	evalTo(n)
	k := stats.KendallAuto(sa, sb)
	res.Tau, res.Z = k.Tau, k.Z
	res.P = stats.PValueZ(res.Z, cfg.Alternative)
	res.AdjP = res.P
	res.Significant = res.P < cfg.Alpha
	return res, fateFull
}

// priorReach precomputes the per-event vicinity reach used by the
// prior bound: on an undirected graph, a reference node's density for
// event E is nonzero only if the node lies within h of an occurrence
// of E, and at most Σ_{v∈E} |V^h_v| nodes do. When that reach is
// smaller than the sample, most sampled references tie at density 0
// and |τ| is capped at 1 − C(n−nz,2)/C(n,2) — computable from the
// index alone, before any test work.
type priorReachBound struct {
	sampleSize int
	reach      map[string]float64
}

func priorReach(g *graph.Graph, store *events.Store, cfg PlanConfig) *priorReachBound {
	ix := cfg.Index
	if ix == nil || g.Directed() || ix.Graph() != g || ix.MaxLevel() < cfg.H {
		return nil
	}
	r := &priorReachBound{sampleSize: cfg.SampleSize, reach: make(map[string]float64, len(store.Names()))}
	for _, name := range store.Names() {
		r.reach[name] = ix.SumSizes(store.Set(name).Members(), cfg.H)
	}
	return r
}

// scoreUB bounds the event's contribution to any pair score. The
// sample size is not known before sampling (the population can be
// smaller than the request), so the bound is maximized over every
// feasible size: n' ≥ min(SampleSize, max(occA, occB)) because the
// union's own occurrence nodes are always in the population. Returns
// 1 (no information) whenever the reach covers the sample.
func (r *priorReachBound) scoreUB(event string, occA, occB int) float64 {
	reach, ok := r.reach[event]
	if !ok {
		return 1
	}
	nLow := min(r.sampleSize, max(occA, occB))
	if nLow < 2 || reach >= float64(nLow) {
		return 1
	}
	nz := reach
	nf := float64(nLow)
	// 1 − C(n−nz,2)/C(n,2): the zero-density ties contribute nothing
	// to the Kendall numerator.
	return 1 - ((nf-nz)*(nf-nz-1))/(nf*(nf-1))
}
