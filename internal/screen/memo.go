package screen

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tesc/internal/core"
	"tesc/internal/events"
	"tesc/internal/graph"
)

// memoBudgetBytes caps the dense density memo's footprint. The memo
// stores one K-vector of int32 counts plus a size and a state word per
// graph node; past the budget (huge graph × large vocabulary) Run falls
// back to per-pair density evaluation rather than risk an allocation in
// the gigabytes.
const memoBudgetBytes = 256 << 20

// densityMemo deduplicates density-phase BFS traversals across the
// event pairs of one screening sweep. §5.4's workload tests K(K−1)/2
// pairs and samples reference nodes per pair from overlapping
// populations, so the same reference node is traversed once per pair it
// lands in — an O(K²·n) traversal bill. The memo pins each distinct
// reference node to ONE h-hop BFS (a MultiEvaluator pass producing the
// occurrence counts of all K events plus |V^h_r|); every later pair
// that samples the node extracts its sa/sb with two array loads.
//
// Concurrency is a lock-free per-node claim: states[r] moves 0 → 1 by
// CAS (the winner runs the BFS and publishes with a release store of
// 2), and readers only touch counts/sizes after observing state 2. A
// worker that loses the claim race while the winner is mid-flight
// computes locally into its own scratch instead of spinning — duplicate
// work on a window so narrow it is unmeasurable, in exchange for no
// blocking anywhere.
type densityMemo struct {
	k      int
	states []atomic.Uint32 // 0 empty, 1 claimed, 2 published
	sizes  []int32         // |V^h_r| per node
	counts []int32         // flat [node*k + event] occurrence counts

	// memoHits counts evaluations served from the memo; traversals
	// performed are accounted per pair by the workers (each source's
	// Traversals() diff), not here.
	memoHits atomic.Int64
}

// newDensityMemo returns a memo for n nodes × k events, or nil when the
// dense arrays would exceed memoBudgetBytes.
func newDensityMemo(n, k int) *densityMemo {
	if n <= 0 || k <= 0 {
		return nil
	}
	bytes := int64(n)*8 + int64(n)*int64(k)*4
	if bytes > memoBudgetBytes {
		return nil
	}
	return &densityMemo{
		k:      k,
		states: make([]atomic.Uint32, n),
		sizes:  make([]int32, n),
		counts: make([]int32, int64(n)*int64(k)),
	}
}

// eval returns the K-vector of occurrence counts and |V^h_r| for
// reference node r, traversing at most once per distinct node across
// the whole sweep. scratch (len K) is used when a concurrent claimer
// owns the node mid-flight; the returned slice aliases either the memo
// or scratch and is valid until the caller's next eval.
func (m *densityMemo) eval(r graph.NodeID, multi *core.MultiEvaluator, scratch []int32) (counts []int32, size int32) {
	st := &m.states[r]
	lo := int64(r) * int64(m.k)
	for {
		switch st.Load() {
		case 2:
			m.memoHits.Add(1)
			return m.counts[lo : lo+int64(m.k)], m.sizes[r]
		case 0:
			if !st.CompareAndSwap(0, 1) {
				continue // raced; reinspect the new state
			}
			region := m.counts[lo : lo+int64(m.k)]
			m.sizes[r] = int32(multi.Eval(r, region))
			st.Store(2)
			return region, m.sizes[r]
		default: // claimed by another worker: compute locally, don't wait
			sz := multi.Eval(r, scratch)
			return scratch, int32(sz)
		}
	}
}

// SharedMemo is a density memo that outlives a single Run: the caller
// owns it, hands it to successive sweeps via Config.Memo, and entries
// published by one run are served to the next. It is the substrate of
// standing queries — a monitor re-screening the same event pair after
// a graph delta reuses every reference-node density the delta cannot
// have changed, and recomputes only the invalidated rest.
//
// The correctness contract is the caller's: after the graph or the
// occurrence sets of the vocabulary change, Invalidate must be called
// with every node whose h-vicinity or vicinity event content may have
// changed (vicinity.DirtySet yields exactly that set for edge flips;
// the reverse h-ball around changed occurrence nodes covers event
// mutations) BEFORE the next Run. Entries that survive invalidation
// are served as-is, which is what makes the reuse bit-identical rather
// than approximate. Not safe for use by concurrent Runs; serialize
// runs and invalidations.
type SharedMemo struct {
	names []string // sorted vocabulary; count vectors are indexed by it
	memo  *densityMemo

	// Membership cache: the node → event adjacency depends only on the
	// store's occurrence sets, not on the graph, so it is rebuilt only
	// when a run binds a different store snapshot (event mutation) —
	// edge deltas keep the store and skip the O(|V|) rebuild, which
	// would otherwise dominate an incremental re-screen.
	memMu    sync.Mutex
	memStore *events.Store
	mem      *core.EventMembership

	// Union cache (same store-keyed lifetime): Va∪b per screened pair,
	// another O(|V|) build edge deltas cannot have changed.
	unions map[[2]string]*graph.NodeSet
}

// NewSharedMemo returns a persistent memo over a fixed event
// vocabulary and node universe. The vocabulary is sorted and must be
// non-empty and duplicate-free; the dense arrays must fit the same
// budget the per-run memo enforces.
func NewSharedMemo(numNodes int, names []string) (*SharedMemo, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("screen: shared memo needs a non-empty event vocabulary")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i, name := range sorted {
		if name == "" {
			return nil, fmt.Errorf("screen: shared memo vocabulary contains an empty event name")
		}
		if i > 0 && sorted[i-1] == name {
			return nil, fmt.Errorf("screen: shared memo vocabulary contains %q twice", name)
		}
	}
	m := newDensityMemo(numNodes, len(sorted))
	if m == nil {
		return nil, fmt.Errorf("screen: shared memo for %d nodes x %d events exceeds the %d MB budget",
			numNodes, len(sorted), memoBudgetBytes>>20)
	}
	return &SharedMemo{names: sorted, memo: m}, nil
}

// Names returns the sorted vocabulary the memo covers.
func (m *SharedMemo) Names() []string { return m.names }

// NumNodes returns the node universe the memo was built for.
func (m *SharedMemo) NumNodes() int { return len(m.memo.states) }

// Invalidate clears the cached entries of the given nodes, returning
// how many published entries were actually dropped (nodes never
// evaluated cost nothing). Out-of-range nodes are ignored.
func (m *SharedMemo) Invalidate(nodes []graph.NodeID) int {
	dropped := 0
	for _, v := range nodes {
		if v < 0 || int(v) >= len(m.memo.states) {
			continue
		}
		if m.memo.states[v].Swap(0) == 2 {
			dropped++
		}
	}
	return dropped
}

// Reset clears every cached entry.
func (m *SharedMemo) Reset() {
	for i := range m.memo.states {
		m.memo.states[i].Store(0)
	}
}

// Published returns the number of cached (published) entries — the
// reference nodes whose next evaluation is an array load instead of a
// BFS. O(NumNodes); diagnostics and tests only.
func (m *SharedMemo) Published() int {
	n := 0
	for i := range m.memo.states {
		if m.memo.states[i].Load() == 2 {
			n++
		}
	}
	return n
}

// bind validates the memo against a sweep (graph universe, pair
// vocabulary), fills eventIdx with the vocabulary indices of the
// sweep's event names, and returns the membership adjacency built from
// the store's CURRENT occurrence sets over the full vocabulary.
func (m *SharedMemo) bind(numNodes int, store *events.Store, pairs [][2]string, eventIdx map[string]int) (*core.EventMembership, error) {
	if numNodes != len(m.memo.states) {
		return nil, fmt.Errorf("screen: shared memo built for %d nodes, graph has %d", len(m.memo.states), numNodes)
	}
	idx := make(map[string]int, len(m.names))
	for k, name := range m.names {
		idx[name] = k
	}
	for _, p := range pairs {
		for _, name := range []string{p[0], p[1]} {
			k, ok := idx[name]
			if !ok {
				return nil, fmt.Errorf("screen: event %q not in the shared memo vocabulary", name)
			}
			eventIdx[name] = k
		}
	}
	m.memMu.Lock()
	defer m.memMu.Unlock()
	if m.mem != nil && m.memStore == store {
		return m.mem, nil
	}
	sets := make([]*graph.NodeSet, len(m.names))
	for k, name := range m.names {
		sets[k] = store.Set(name)
	}
	mem, err := core.NewEventMembership(numNodes, sets)
	if err != nil {
		return nil, err
	}
	m.memStore, m.mem = store, mem
	m.unions = nil // occurrence sets changed; cached unions are stale
	return mem, nil
}

// problemFor builds the pair's test problem, serving Va∪b from the
// store-keyed union cache (the union is independent of the graph, so
// edge deltas reuse it as-is).
func (m *SharedMemo) problemFor(g *graph.Graph, store *events.Store, pair [2]string) (*core.Problem, error) {
	m.memMu.Lock()
	if m.memStore != store {
		m.unions = nil
	}
	union := m.unions[pair]
	m.memMu.Unlock()
	va, vb := store.Set(pair[0]), store.Set(pair[1])
	if union == nil {
		p, err := core.NewProblem(g, va, vb)
		if err != nil {
			return nil, err
		}
		m.memMu.Lock()
		if m.memStore == store {
			if m.unions == nil {
				m.unions = make(map[[2]string]*graph.NodeSet)
			}
			m.unions[pair] = p.Union
		}
		m.memMu.Unlock()
		return p, nil
	}
	return core.NewProblemWithUnion(g, va, vb, union)
}

// memoSource adapts the memo to core.DensitySource for one event pair
// (a, b): densities are the memoized count vectors divided by the
// memoized vicinity sizes — bit-identical to what a fresh
// DensityEvaluator would compute, since unit-intensity sums are exact
// integers in float64. One memoSource per worker; retarget per pair.
type memoSource struct {
	memo    *densityMemo
	multi   *core.MultiEvaluator
	scratch []int32
	a, b    int
	// shared is set when the memo is a caller-owned SharedMemo, whose
	// store-keyed problem/membership caches the source then borrows.
	shared *SharedMemo
	// sa/sb are this worker's density-vector scratch, reused across
	// the pairs it screens (each source belongs to exactly one worker,
	// so no synchronization; PairResult carries no per-node vectors,
	// so nothing outlives the pair that borrowed them).
	sa, sb []float64
}

// retarget points the source at the next pair's event indices.
func (s *memoSource) retarget(a, b int) { s.a, s.b = a, b }

// Traversals implements core.DensitySource.
func (s *memoSource) Traversals() int64 { return s.multi.BFSCount }

// EvalAll implements core.DensitySource. The per-node Density records
// are skipped (nil ds, per the DensitySource contract): the memo only
// serves uniform samples, whose statistics consume sa/sb alone, and a
// standing-query re-screen should not pay O(n) record construction for
// data nothing reads.
func (s *memoSource) EvalAll(rs []graph.NodeID) (sa, sb []float64, ds []core.Density) {
	if cap(s.sa) < len(rs) {
		s.sa = make([]float64, len(rs))
		s.sb = make([]float64, len(rs))
	}
	sa, sb = s.sa[:len(rs)], s.sb[:len(rs)]
	for i, r := range rs {
		counts, size := s.memo.eval(r, s.multi, s.scratch)
		// Unit-intensity sums are exact integers in float64, so these
		// divisions are bit-identical to Density.SA()/SB().
		sa[i] = float64(counts[s.a]) / float64(size)
		sb[i] = float64(counts[s.b]) / float64(size)
	}
	return sa, sb, nil
}
