package screen

import (
	"sync/atomic"

	"tesc/internal/core"
	"tesc/internal/graph"
)

// memoBudgetBytes caps the dense density memo's footprint. The memo
// stores one K-vector of int32 counts plus a size and a state word per
// graph node; past the budget (huge graph × large vocabulary) Run falls
// back to per-pair density evaluation rather than risk an allocation in
// the gigabytes.
const memoBudgetBytes = 256 << 20

// densityMemo deduplicates density-phase BFS traversals across the
// event pairs of one screening sweep. §5.4's workload tests K(K−1)/2
// pairs and samples reference nodes per pair from overlapping
// populations, so the same reference node is traversed once per pair it
// lands in — an O(K²·n) traversal bill. The memo pins each distinct
// reference node to ONE h-hop BFS (a MultiEvaluator pass producing the
// occurrence counts of all K events plus |V^h_r|); every later pair
// that samples the node extracts its sa/sb with two array loads.
//
// Concurrency is a lock-free per-node claim: states[r] moves 0 → 1 by
// CAS (the winner runs the BFS and publishes with a release store of
// 2), and readers only touch counts/sizes after observing state 2. A
// worker that loses the claim race while the winner is mid-flight
// computes locally into its own scratch instead of spinning — duplicate
// work on a window so narrow it is unmeasurable, in exchange for no
// blocking anywhere.
type densityMemo struct {
	k      int
	states []atomic.Uint32 // 0 empty, 1 claimed, 2 published
	sizes  []int32         // |V^h_r| per node
	counts []int32         // flat [node*k + event] occurrence counts

	// memoHits counts evaluations served from the memo; traversals
	// performed are accounted per pair by the workers (each source's
	// Traversals() diff), not here.
	memoHits atomic.Int64
}

// newDensityMemo returns a memo for n nodes × k events, or nil when the
// dense arrays would exceed memoBudgetBytes.
func newDensityMemo(n, k int) *densityMemo {
	if n <= 0 || k <= 0 {
		return nil
	}
	bytes := int64(n)*8 + int64(n)*int64(k)*4
	if bytes > memoBudgetBytes {
		return nil
	}
	return &densityMemo{
		k:      k,
		states: make([]atomic.Uint32, n),
		sizes:  make([]int32, n),
		counts: make([]int32, int64(n)*int64(k)),
	}
}

// eval returns the K-vector of occurrence counts and |V^h_r| for
// reference node r, traversing at most once per distinct node across
// the whole sweep. scratch (len K) is used when a concurrent claimer
// owns the node mid-flight; the returned slice aliases either the memo
// or scratch and is valid until the caller's next eval.
func (m *densityMemo) eval(r graph.NodeID, multi *core.MultiEvaluator, scratch []int32) (counts []int32, size int32) {
	st := &m.states[r]
	lo := int64(r) * int64(m.k)
	for {
		switch st.Load() {
		case 2:
			m.memoHits.Add(1)
			return m.counts[lo : lo+int64(m.k)], m.sizes[r]
		case 0:
			if !st.CompareAndSwap(0, 1) {
				continue // raced; reinspect the new state
			}
			region := m.counts[lo : lo+int64(m.k)]
			m.sizes[r] = int32(multi.Eval(r, region))
			st.Store(2)
			return region, m.sizes[r]
		default: // claimed by another worker: compute locally, don't wait
			sz := multi.Eval(r, scratch)
			return scratch, int32(sz)
		}
	}
}

// memoSource adapts the memo to core.DensitySource for one event pair
// (a, b): densities are the memoized count vectors divided by the
// memoized vicinity sizes — bit-identical to what a fresh
// DensityEvaluator would compute, since unit-intensity sums are exact
// integers in float64. One memoSource per worker; retarget per pair.
type memoSource struct {
	memo    *densityMemo
	multi   *core.MultiEvaluator
	scratch []int32
	a, b    int
}

// retarget points the source at the next pair's event indices.
func (s *memoSource) retarget(a, b int) { s.a, s.b = a, b }

// Traversals implements core.DensitySource.
func (s *memoSource) Traversals() int64 { return s.multi.BFSCount }

// EvalAll implements core.DensitySource.
func (s *memoSource) EvalAll(rs []graph.NodeID) (sa, sb []float64, ds []core.Density) {
	sa = make([]float64, len(rs))
	sb = make([]float64, len(rs))
	ds = make([]core.Density, len(rs))
	for i, r := range rs {
		counts, size := s.memo.eval(r, s.multi, s.scratch)
		ca, cb := counts[s.a], counts[s.b]
		d := core.Density{
			VicinitySize: int(size),
			CountA:       int(ca),
			CountB:       int(cb),
			SumA:         float64(ca),
			SumB:         float64(cb),
			// CountUnion is pair-specific and not derivable from
			// per-event counts; uniform samplers never read it.
		}
		ds[i] = d
		sa[i] = d.SA()
		sb[i] = d.SB()
	}
	return sa, sb, ds
}
