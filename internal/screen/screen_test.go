package screen

import (
	"math/rand/v2"
	"sync"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/stats"
)

// fixture: a community graph with one strongly attracting planted pair
// among many independent noise events.
func fixture(t *testing.T) (*graph.Graph, *events.Store) {
	t.Helper()
	rng := rand.New(rand.NewPCG(91, 1))
	cfg := graphgen.PlantedPartitionConfig{Communities: 25, Size: 30, DegreeIn: 8, DegreeOut: 0.5}
	g := graphgen.PlantedPartition(cfg, rng)
	n := g.NumNodes()

	b := events.NewBuilder(n)
	// planted pair: co-located in 10 communities
	for c := 0; c < 10; c++ {
		base := c * 30
		for i := 0; i < 5; i++ {
			b.Add("signal-a", graph.NodeID(base+rng.IntN(30)))
			b.Add("signal-b", graph.NodeID(base+rng.IntN(30)))
		}
	}
	// noise events: uniform occurrences
	for e := 0; e < 6; e++ {
		name := "noise-" + string(rune('a'+e))
		for i := 0; i < 40; i++ {
			b.Add(name, graph.NodeID(rng.IntN(n)))
		}
	}
	// a tiny event below thresholds
	b.Add("rare", 3)
	return g, b.Build()
}

func TestAllPairs(t *testing.T) {
	_, store := fixture(t)
	pairs := AllPairs(store, 1)
	// 9 events → 36 pairs
	if len(pairs) != 36 {
		t.Fatalf("pairs = %d, want 36", len(pairs))
	}
	// with a threshold the rare event drops out: 8 events → 28 pairs
	pairs = AllPairs(store, 5)
	if len(pairs) != 28 {
		t.Fatalf("pairs = %d, want 28", len(pairs))
	}
}

func TestRunFindsPlantedPair(t *testing.T) {
	g, store := fixture(t)
	res, err := Run(g, store, AllPairs(store, 5), Config{
		H:           2,
		SampleSize:  200,
		Alternative: stats.Greater,
		Seed:        7,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested == 0 {
		t.Fatal("nothing tested")
	}
	top := res.Pairs[0]
	if !(top.A == "signal-a" && top.B == "signal-b") {
		t.Errorf("top pair = %s vs %s (z=%.2f), want the planted signal", top.A, top.B, top.Z)
	}
	if !top.Significant {
		t.Errorf("planted pair not significant after FDR: %+v", top)
	}
	// results sorted by adjusted p
	for i := 1; i < res.Tested; i++ {
		if res.Pairs[i].Skipped == "" && res.Pairs[i-1].Skipped == "" &&
			res.Pairs[i].AdjP < res.Pairs[i-1].AdjP {
			t.Fatal("results not sorted by adjusted p")
		}
	}
}

// FDR control: with only null pairs, the rejection count should be far
// below the uncorrected expectation.
func TestRunFDRControlsNulls(t *testing.T) {
	rng := rand.New(rand.NewPCG(92, 1))
	g := graphgen.ErdosRenyi(1500, 6000, rng)
	b := events.NewBuilder(1500)
	for e := 0; e < 12; e++ { // 66 null pairs
		name := "n" + string(rune('a'+e))
		for i := 0; i < 50; i++ {
			b.Add(name, graph.NodeID(rng.IntN(1500)))
		}
	}
	store := b.Build()
	res, err := Run(g, store, AllPairs(store, 1), Config{
		H: 1, SampleSize: 150, Alternative: stats.Greater, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected > 2 {
		t.Errorf("FDR rejected %d of %d null pairs", res.Rejected, res.Tested)
	}
	// raw testing would reject more often than corrected
	raw, err := Run(g, store, AllPairs(store, 1), Config{
		H: 1, SampleSize: 150, Alternative: stats.Greater, Seed: 3, Correction: None,
	})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Rejected < res.Rejected {
		t.Errorf("raw rejections %d below corrected %d", raw.Rejected, res.Rejected)
	}
}

func TestRunSkipsAndErrors(t *testing.T) {
	g, store := fixture(t)
	// min occurrences excludes the rare event pairings
	res, err := Run(g, store, AllPairs(store, 1), Config{
		H: 1, SampleSize: 100, MinOccurrences: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Error("expected skipped pairs for the rare event")
	}
	for _, p := range res.Pairs {
		if (p.A == "rare" || p.B == "rare") && p.Skipped == "" {
			t.Errorf("rare pair tested despite threshold: %+v", p)
		}
	}
	// invalid config
	if _, err := Run(g, store, nil, Config{H: 0}); err == nil {
		t.Error("H=0 accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	g, store := fixture(t)
	cfg := Config{H: 1, SampleSize: 100, Seed: 42, Workers: 3}
	a, err := Run(g, store, AllPairs(store, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, store, AllPairs(store, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("run not deterministic at %d: %+v vs %+v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

func TestBonferroniMode(t *testing.T) {
	g, store := fixture(t)
	fdr, err := Run(g, store, AllPairs(store, 5), Config{H: 2, SampleSize: 150, Alternative: stats.Greater, Seed: 7, Correction: FDR})
	if err != nil {
		t.Fatal(err)
	}
	fwer, err := Run(g, store, AllPairs(store, 5), Config{H: 2, SampleSize: 150, Alternative: stats.Greater, Seed: 7, Correction: FWER})
	if err != nil {
		t.Fatal(err)
	}
	if fwer.Rejected > fdr.Rejected {
		t.Errorf("Bonferroni rejected more (%d) than BH (%d)", fwer.Rejected, fdr.Rejected)
	}
}

// TestProgressExactlyOncePerPair is the regression test for the
// progress-callback contention fix: with concurrent workers, Progress
// must be invoked exactly len(pairs) times, delivering each completion
// count 1..len(pairs) exactly once, so a max-folding consumer sees a
// monotone gauge ending at the total.
func TestProgressExactlyOncePerPair(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 1)

	var mu sync.Mutex
	var calls []int
	maxSeen := 0
	monotoneMax := true
	_, err := Run(g, store, pairs, Config{
		H:          1,
		SampleSize: 50,
		Workers:    8,
		Seed:       5,
		Progress: func(done, total int) {
			if total != len(pairs) {
				t.Errorf("total = %d, want %d", total, len(pairs))
			}
			mu.Lock() // test-side bookkeeping only; Run holds no lock here
			calls = append(calls, done)
			if done > maxSeen {
				maxSeen = done
			} else if done == maxSeen {
				monotoneMax = false // duplicate delivery
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(pairs) {
		t.Fatalf("Progress called %d times, want exactly %d", len(calls), len(pairs))
	}
	if !monotoneMax {
		t.Fatal("duplicate completion count delivered")
	}
	seen := make([]bool, len(pairs)+1)
	for _, done := range calls {
		if done < 1 || done > len(pairs) || seen[done] {
			t.Fatalf("completion count %d invalid or duplicated (calls %v)", done, calls)
		}
		seen[done] = true
	}
	if maxSeen != len(pairs) {
		t.Fatalf("max completion %d, want %d", maxSeen, len(pairs))
	}
}

// TestProgressSequentialIsMonotone pins the single-worker behavior:
// with one worker the raw call sequence itself is strictly monotone.
func TestProgressSequentialIsMonotone(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 5)
	var calls []int
	_, err := Run(g, store, pairs, Config{
		H: 1, SampleSize: 50, Workers: 1, Seed: 5,
		Progress: func(done, total int) { calls = append(calls, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(pairs) {
		t.Fatalf("Progress called %d times, want %d", len(calls), len(pairs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("call %d reported %d, want %d (sequence %v)", i, done, i+1, calls)
		}
	}
}
