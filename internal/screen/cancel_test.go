package screen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"tesc/internal/stats"
)

// A sweep whose context is dead before it starts does no work and
// reports the cancellation, matchable with errors.Is.
func TestRunCanceledBeforeStart(t *testing.T) {
	g, store := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(g, store, AllPairs(store, 5), Config{
		H: 2, SampleSize: 100, Alternative: stats.Greater, Seed: 7, Ctx: ctx,
	})
	if err == nil {
		t.Fatal("pre-canceled Run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	if res.Tested != 0 || len(res.Pairs) != 0 {
		t.Fatalf("canceled Run leaked partial results: %+v", res)
	}
}

// Cancelling mid-sweep from the progress callback: the workers observe
// the dead context at their next per-pair check and Run reports the
// cancellation instead of a truncated result masquerading as complete.
func TestRunCanceledMidSweep(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 1)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		_, err := Run(g, store, pairs, Config{
			H: 2, SampleSize: 100, Alternative: stats.Greater, Seed: 7,
			Workers: workers,
			Ctx:     ctx,
			Progress: func(done, total int) {
				if seen.Add(1) == 2 {
					cancel() // two pairs in, abandon the sweep
				}
			},
		})
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: mid-sweep cancel returned no error", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want errors.Is(context.Canceled)", workers, err)
		}
		if n := seen.Load(); n >= int64(len(pairs)) {
			t.Fatalf("workers=%d: all %d pairs ran despite the cancel", workers, n)
		}
	}
}

// A cancel that lands during the very last pair must still surface as
// an error, never as a complete-looking result.
func TestRunCancelOnFinalPair(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 1)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(g, store, pairs, Config{
		H: 2, SampleSize: 100, Alternative: stats.Greater, Seed: 7,
		Workers: 1,
		Ctx:     ctx,
		Progress: func(done, total int) {
			if done == total {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("cancel during the final pair returned a clean result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
}

// A pre-canceled plan does no work; a mid-plan cancel keeps the exact
// partial ranking alongside the error.
func TestPlanCanceled(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 5)
	base := Config{H: 2, SampleSize: 200, Alternative: stats.Greater, Seed: 7, Workers: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pre := base
	pre.Ctx = ctx
	res, err := Plan(g, store, pairs, PlanConfig{Config: pre, K: 3})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Plan: err = %v, want errors.Is(context.Canceled)", err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("pre-canceled Plan produced pairs: %+v", res.Pairs)
	}

	// Oracle: the exhaustive sweep with raw p-values, whose per-pair
	// statistics the planner reproduces exactly (same seed, pair-keyed
	// RNG). The partial ranking may contain pairs a complete plan would
	// later displace from the top-k, so the comparison target is the
	// full result set, not the final top-k.
	oracleCfg := base
	oracleCfg.Correction = None
	oracle, err := Run(g, store, pairs, oracleCfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	mid := base
	mid.Ctx = ctx2
	var seen atomic.Int64
	mid.Progress = func(done, total int) {
		if seen.Add(1) == 2 {
			cancel2()
		}
	}
	part, err := Plan(g, store, pairs, PlanConfig{Config: mid, K: 3})
	cancel2()
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-plan cancel: err = %v, want errors.Is(context.Canceled)", err)
	}
	// Every pair the partial ranking carries was fully evaluated before
	// the cancel: its statistics must match the oracle's field-for-field.
	byPair := map[[2]string]PairResult{}
	for _, p := range oracle.Pairs {
		if p.Skipped == "" {
			byPair[[2]string{p.A, p.B}] = p
		}
	}
	for _, p := range part.Pairs {
		want, ok := byPair[[2]string{p.A, p.B}]
		if !ok {
			t.Fatalf("partial ranking contains pair %s/%s the oracle never tested", p.A, p.B)
		}
		if p != want {
			t.Fatalf("partial pair %s/%s diverged from the oracle:\n got: %+v\nwant: %+v", p.A, p.B, p, want)
		}
	}
}
