package screen

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"tesc/internal/core"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/vicinity"
)

// TestRunStaleEpoch is the regression test for the mixed-view hazard:
// a mutator goroutine advances the live epoch mid-sweep, and Run must
// come back with the typed ErrStaleEpoch instead of silently finishing
// a sweep whose pairs straddle two snapshot versions.
func TestRunStaleEpoch(t *testing.T) {
	g, store := fixture(t)
	var epoch atomic.Uint64
	epoch.Store(1)

	var once sync.Once
	cfg := Config{
		H:          1,
		SampleSize: 50,
		Seed:       3,
		Workers:    2,
		Epoch:      1,
		CurrentEpoch: func() uint64 {
			return epoch.Load()
		},
		Progress: func(done, total int) {
			// The "mutator": as soon as the first pair lands, the live
			// epoch moves past the bound snapshot while pairs are still
			// in flight. The store happens-before Run's closing
			// re-validation, so the sweep must come back stale.
			once.Do(func() { epoch.Store(2) })
		},
	}
	_, err := Run(g, store, AllPairs(store, 1), cfg)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Run with a mid-sweep epoch advance returned %v, want ErrStaleEpoch", err)
	}

	// Already-stale at entry fails fast too.
	cfg.Progress = nil
	cfg.Epoch = 7
	if _, err := Run(g, store, AllPairs(store, 1), cfg); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Run bound to a dead epoch returned %v, want ErrStaleEpoch", err)
	}

	// And a quiet epoch completes normally.
	cfg.Epoch = 2
	res, err := Run(g, store, AllPairs(store, 1), cfg)
	if err != nil {
		t.Fatalf("Run at a stable epoch: %v", err)
	}
	if res.Tested == 0 {
		t.Fatal("stable-epoch run tested nothing")
	}
}

// TestPlanStaleEpoch extends the mixed-view regression to the planner:
// an epoch advance mid-plan must surface as ErrStaleEpoch, a dead
// epoch fails fast, and a quiet epoch completes.
func TestPlanStaleEpoch(t *testing.T) {
	g, store := fixture(t)
	var epoch atomic.Uint64
	epoch.Store(1)

	var once sync.Once
	cfg := PlanConfig{
		Config: Config{
			H:          1,
			SampleSize: 50,
			Seed:       3,
			Workers:    2,
			Epoch:      1,
			CurrentEpoch: func() uint64 {
				return epoch.Load()
			},
			Progress: func(done, total int) {
				once.Do(func() { epoch.Store(2) })
			},
		},
		K: 3,
	}
	_, err := Plan(g, store, AllPairs(store, 1), cfg)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Plan with a mid-run epoch advance returned %v, want ErrStaleEpoch", err)
	}

	cfg.Progress = nil
	cfg.Epoch = 7
	if _, err := Plan(g, store, AllPairs(store, 1), cfg); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Plan bound to a dead epoch returned %v, want ErrStaleEpoch", err)
	}

	cfg.Epoch = 2
	res, err := Plan(g, store, AllPairs(store, 1), cfg)
	if err != nil {
		t.Fatalf("Plan at a stable epoch: %v", err)
	}
	if res.Stats.FullTests == 0 {
		t.Fatal("stable-epoch plan tested nothing")
	}
}

// TestSharedMemoInvalidateDuringPlan fires Invalidate into an
// in-flight planner run, at the serialization point the memo's
// contract allows (a single-worker run's Progress callback executes on
// the run's own goroutine, between pairs — exactly where a monitor's
// drain loop would deliver a dirty set). Entries the run already
// published are ripped out mid-flight and must be re-evaluated; on an
// unchanged snapshot re-evaluation recomputes identical densities, so
// the planned result must stay bit-identical to the exhaustive oracle
// while the work accounting shows the re-evaluations actually happened.
func TestSharedMemoInvalidateDuringPlan(t *testing.T) {
	g, store := fixture(t)
	memo, err := NewSharedMemo(g.NumNodes(), store.Names())
	if err != nil {
		t.Fatal(err)
	}
	pairs := AllPairs(store, 5)
	rng := rand.New(rand.NewPCG(17, 5))

	base := PlanConfig{
		Config: Config{H: 2, SampleSize: 150, Seed: 9, Workers: 1, MinOccurrences: 5, Memo: memo},
		K:      5,
	}
	// Warm the memo fully so the in-flight run starts with every entry
	// served from cache.
	if _, err := Plan(g, store, pairs, base); err != nil {
		t.Fatal(err)
	}
	published := memo.Published()
	if published == 0 {
		t.Fatal("warm-up published nothing")
	}
	warm, err := Plan(g, store, pairs, base)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.BFSRuns != 0 {
		t.Fatalf("fully warm plan paid %d traversals", warm.Stats.BFSRuns)
	}

	want := planOracle(t, g, store, pairs, base)
	cfg := base
	var invalidated int
	cfg.Progress = func(done, total int) {
		// The mid-run invalidator: every few pairs, rip out a random
		// node batch — including entries this very run just published.
		if done%3 != 0 {
			return
		}
		batch := make([]graph.NodeID, 0, 64)
		for i := 0; i < 64; i++ {
			batch = append(batch, graph.NodeID(rng.IntN(g.NumNodes())))
		}
		invalidated += memo.Invalidate(batch)
	}
	res, err := Plan(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if invalidated == 0 {
		t.Fatal("the invalidator never hit a published entry")
	}
	if res.Stats.BFSRuns == 0 {
		t.Fatal("stale entries were not re-evaluated (no traversals paid)")
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("%d pairs, want %d", len(res.Pairs), len(want))
	}
	for i := range want {
		if res.Pairs[i] != want[i] {
			t.Fatalf("rank %d: mid-run invalidation changed the result\n got %+v\nwant %+v",
				i, res.Pairs[i], want[i])
		}
	}
}

// TestSharedMemoPlanAcrossMutations is the planner's version of
// TestSharedMemoEntriesMatchFresh: across seeded edge-mutation batches
// with dirty-set invalidation, a planned top-k over the persistent
// memo must equal a fresh-memo exhaustive oracle on every snapshot.
func TestSharedMemoPlanAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 9))
	g := graphgen.WattsStrogatz(400, 3, 0.1, rng)
	b := events.NewBuilder(g.NumNodes())
	names := []string{"ev-a", "ev-b", "ev-c", "ev-d"}
	for _, name := range names {
		for i := 0; i < 25; i++ {
			b.Add(name, graph.NodeID(rng.IntN(g.NumNodes())))
		}
	}
	store := b.Build()
	const h = 2
	memo, err := NewSharedMemo(g.NumNodes(), names)
	if err != nil {
		t.Fatal(err)
	}
	pairs := AllPairs(store, 1)
	stream := graphgen.NewFlipStream(g, 0.5, rng)
	for batch := 0; batch < 15; batch++ {
		cfg := PlanConfig{
			Config: Config{H: h, SampleSize: 80, Seed: 5, Workers: 1, Memo: memo},
			K:      3,
		}
		res, err := Plan(g, store, pairs, cfg)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		fresh := cfg
		fresh.Memo = nil
		fresh.NoMemo = true
		want := planOracle(t, g, store, pairs, fresh)
		if len(res.Pairs) != len(want) {
			t.Fatalf("batch %d: %d pairs, want %d", batch, len(res.Pairs), len(want))
		}
		for i := range want {
			if res.Pairs[i] != want[i] {
				t.Fatalf("batch %d rank %d: memoized plan diverged from fresh oracle\n got %+v\nwant %+v",
					batch, i, res.Pairs[i], want[i])
			}
		}
		// Mutate, invalidate via the locality dirty set, advance.
		changes := stream.Take(1 + rng.IntN(4))
		d := graph.NewDelta(g)
		applied, err := d.Apply(changes)
		if err != nil {
			t.Fatal(err)
		}
		newG := d.Compact()
		dirty, err := vicinity.DirtySet(g, newG, applied, h)
		if err != nil {
			t.Fatal(err)
		}
		memo.Invalidate(dirty)
		g = newG
	}
}

// TestSharedMemoValidation pins the bind-time contract: vocabulary and
// universe mismatches fail loudly instead of serving garbage.
func TestSharedMemoValidation(t *testing.T) {
	g, store := fixture(t)
	if _, err := NewSharedMemo(g.NumNodes(), nil); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
	if _, err := NewSharedMemo(g.NumNodes(), []string{"x", "x"}); err == nil {
		t.Fatal("duplicate vocabulary accepted")
	}
	memo, err := NewSharedMemo(g.NumNodes(), []string{"signal-b", "signal-a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := memo.Names(); got[0] != "signal-a" || got[1] != "signal-b" {
		t.Fatalf("vocabulary not sorted: %v", got)
	}
	pairs := [][2]string{{"signal-a", "signal-b"}}
	// Wrong universe.
	smallG := graphgen.WattsStrogatz(10, 2, 0, rand.New(rand.NewPCG(1, 1)))
	smallB := events.NewBuilder(10)
	smallB.Add("signal-a", 0)
	smallB.Add("signal-b", 1)
	if _, err := Run(smallG, smallB.Build(), pairs, Config{H: 1, SampleSize: 5, Memo: memo}); err == nil {
		t.Fatal("universe mismatch accepted")
	}
	// Event outside the vocabulary.
	if _, err := Run(g, store, [][2]string{{"signal-a", "noise-a"}}, Config{H: 1, SampleSize: 5, Memo: memo}); err == nil {
		t.Fatal("foreign event accepted")
	}
}

// TestSharedMemoReuseAcrossRuns: a second identical run over a
// SharedMemo reuses every density evaluation (MemoHits == sample
// size), stays bit-identical, and per-run MemoHits accounting does not
// leak across runs.
func TestSharedMemoReuseAcrossRuns(t *testing.T) {
	g, store := fixture(t)
	memo, err := NewSharedMemo(g.NumNodes(), []string{"signal-a", "signal-b"})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{{"signal-a", "signal-b"}}
	cfg := Config{H: 2, SampleSize: 120, Seed: 11, Memo: memo}

	cold, err := Run(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.MemoHits != 0 {
		t.Fatalf("cold run reported %d memo hits", cold.MemoHits)
	}
	if cold.BFSRuns == 0 {
		t.Fatal("cold run paid no traversals")
	}
	warm, err := Run(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.BFSRuns != 0 {
		t.Fatalf("warm run paid %d traversals, want 0 (full reuse)", warm.BFSRuns)
	}
	if warm.MemoHits != cold.BFSRuns {
		t.Fatalf("warm run reused %d evaluations, want %d", warm.MemoHits, cold.BFSRuns)
	}
	if warm.Pairs[0] != cold.Pairs[0] {
		t.Fatalf("warm result diverged:\n cold %+v\n warm %+v", cold.Pairs[0], warm.Pairs[0])
	}
	// Invalidate everything: the next run is cold again.
	memo.Reset()
	cold2, err := Run(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold2.MemoHits != 0 || cold2.BFSRuns != cold.BFSRuns {
		t.Fatalf("post-reset run: hits=%d bfs=%d, want 0/%d", cold2.MemoHits, cold2.BFSRuns, cold.BFSRuns)
	}
}

// TestSharedMemoEntriesMatchFresh is the per-node density half of the
// differential acceptance criterion: across seeded edge-mutation
// batches with dirty-set invalidation, every published cache entry
// (count vector and vicinity size) equals a fresh evaluation on the
// current graph — not just the aggregated statistics.
func TestSharedMemoEntriesMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	g := graphgen.WattsStrogatz(300, 2, 0.1, rng)
	b := events.NewBuilder(g.NumNodes())
	for i := 0; i < 30; i++ {
		b.Add("pair-a", graph.NodeID(rng.IntN(g.NumNodes())))
		b.Add("pair-b", graph.NodeID(rng.IntN(g.NumNodes())))
	}
	store := b.Build()
	const h = 2
	memo, err := NewSharedMemo(g.NumNodes(), []string{"pair-a", "pair-b"})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{{"pair-a", "pair-b"}}
	stream := graphgen.NewFlipStream(g, 0.5, rng)
	for batch := 0; batch < 40; batch++ {
		if _, err := Run(g, store, pairs, Config{H: h, SampleSize: 60, Seed: 5, Memo: memo}); err != nil {
			t.Fatal(err)
		}
		// Verify every published entry against a fresh evaluator.
		sets := []*graph.NodeSet{store.Set("pair-a"), store.Set("pair-b")}
		mem, err := core.NewEventMembership(g.NumNodes(), sets)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := core.NewMultiEvaluator(g, mem, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh := make([]int32, 2)
		for v := 0; v < g.NumNodes(); v++ {
			st := memo.memo.states[v].Load()
			if st != 2 {
				continue
			}
			size := multi.Eval(graph.NodeID(v), fresh)
			lo := int64(v) * 2
			if memo.memo.sizes[v] != int32(size) ||
				memo.memo.counts[lo] != fresh[0] || memo.memo.counts[lo+1] != fresh[1] {
				t.Fatalf("batch %d node %d: cached (size=%d counts=%v) != fresh (size=%d counts=%v)",
					batch, v, memo.memo.sizes[v], memo.memo.counts[lo:lo+2], size, fresh)
			}
		}
		// Mutate and invalidate via the locality dirty set.
		changes := stream.Take(1 + rng.IntN(4))
		d := graph.NewDelta(g)
		applied, err := d.Apply(changes)
		if err != nil {
			t.Fatal(err)
		}
		newG := d.Compact()
		dirty, err := vicinity.DirtySet(g, newG, applied, h)
		if err != nil {
			t.Fatal(err)
		}
		memo.Invalidate(dirty)
		g = newG
	}
}
