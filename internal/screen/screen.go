// Package screen runs TESC over many event pairs at once — the workflow
// behind the paper's case studies (§5.4), where the reported keyword and
// alert pairs are the top findings of a sweep over an attributed graph's
// event vocabulary.
//
// Screening adds two concerns the single-pair test does not have:
// multiple-testing control (hundreds of null pairs at α = 0.05 yield
// dozens of spurious hits; p-values are corrected with
// Benjamini–Hochberg FDR by default) and throughput (pairs are tested
// concurrently by a worker pool, each worker owning private BFS
// machinery).
package screen

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tesc/internal/core"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/stats"
)

// ErrStaleEpoch reports that the snapshot a sweep was pinned to was
// superseded while the sweep ran: Config.CurrentEpoch no longer
// returns Config.Epoch. The partially computed sweep is discarded —
// some pairs would have been tested against the old version and some
// against states derived after the mutation, a mixed view no caller
// should ever see silently. Callers re-bind a fresh snapshot and rerun
// (the monitor scheduler's drain loop does exactly that).
var ErrStaleEpoch = errors.New("screen: bound snapshot epoch advanced mid-sweep")

// Correction selects the multiple-testing adjustment.
type Correction int

const (
	// FDR applies Benjamini–Hochberg false-discovery-rate control
	// (default).
	FDR Correction = iota
	// FWER applies the Bonferroni family-wise correction.
	FWER
	// None uses raw p-values (single-pair semantics).
	None
)

// Config parameterizes a screening run.
type Config struct {
	// H is the vicinity level.
	H int
	// SampleSize is the per-test reference sample size (default 900).
	SampleSize int
	// Alpha is the significance level applied to adjusted p-values
	// (default 0.05).
	Alpha float64
	// Alternative selects the tested direction for every pair.
	Alternative stats.Alternative
	// MinOccurrences skips events with fewer occurrences (default 1).
	MinOccurrences int
	// Correction selects the p-value adjustment (default FDR).
	Correction Correction
	// Workers bounds test concurrency; 0 means GOMAXPROCS.
	Workers int
	// Seed drives the per-pair reference sampling deterministically.
	Seed uint64
	// Progress, when non-nil, is called after each pair finishes with
	// the number of completed pairs and the total. It is invoked
	// exactly len(pairs) times, once with each done value 1..len(pairs),
	// with no lock held: calls from different workers may overlap and
	// arrive out of order, so a consumer maintaining a gauge should
	// fold with max (the tescd job tracker does). Keeping the callback
	// lock-free keeps workers off each other's critical path on large
	// pair sets.
	Progress func(done, total int)
	// NoMemo disables the cross-pair density memo, forcing every pair
	// to evaluate densities with its own fresh traversals — the
	// retained reference path. Reports are bit-identical either way
	// (the differential tests pin this); the only observable difference
	// is BFSRuns/MemoHits. The memo also disables itself when the dense
	// node × event arrays would exceed the memory budget.
	NoMemo bool
	// Engines, when non-nil, supplies pooled BFS engines bound to g for
	// the samplers and memo evaluators, so back-to-back sweeps and
	// concurrent queries share warm O(|V|) scratch (tescd passes its
	// per-graph-version pool).
	Engines *graph.EnginePool
	// Memo, when non-nil (and NoMemo unset), replaces the per-run
	// density memo with a caller-owned SharedMemo that persists across
	// runs: entries published by earlier sweeps are served instead of
	// re-traversed, provided the caller honored the invalidation
	// contract (see SharedMemo). Every event named by the pair list
	// must be in the memo's vocabulary and the memo's node universe
	// must match g. Result.MemoHits counts only this run's hits.
	Memo *SharedMemo
	// Epoch and CurrentEpoch, when CurrentEpoch is non-nil, pin the
	// sweep to one snapshot version: Run re-validates before testing
	// each pair and once more after the last pair, and fails with
	// ErrStaleEpoch as soon as CurrentEpoch() != Epoch — a mutation
	// landed mid-sweep and the caller's (graph, store, memo) view can
	// no longer be assumed internally consistent. Leave CurrentEpoch
	// nil when g and store are immutable for the sweep's lifetime.
	Epoch        uint64
	CurrentEpoch func() uint64
	// Ctx, when non-nil, lets the caller abandon the sweep: workers
	// check it before each pair (like the stale-epoch check) and the
	// in-flight pair's density phase checks it between traversal
	// chunks. A canceled Run discards its partial results and returns
	// an error wrapping the context's cause; Plan instead returns the
	// bar's partial ranking alongside the error (the planner API
	// already models partial results). Nil means run to completion.
	Ctx context.Context
}

// canceled reports the sweep-cancellation error when cfg.Ctx is done,
// else nil. The context's cause is wrapped, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) work on the returned error.
func (cfg Config) canceled() error {
	if cfg.Ctx == nil {
		return nil
	}
	select {
	case <-cfg.Ctx.Done():
		return fmt.Errorf("screen: sweep canceled: %w", context.Cause(cfg.Ctx))
	default:
		return nil
	}
}

// PairResult is one screened pair. Results are ordered by adjusted
// p-value, then |Z| descending.
type PairResult struct {
	A, B        string
	OccA, OccB  int
	Tau         float64
	Z           float64
	P           float64 // raw p-value
	AdjP        float64 // corrected p-value
	Significant bool    // AdjP < Alpha
	Skipped     string  // non-empty when the pair could not be tested
}

// Result is a completed screening run.
type Result struct {
	Pairs    []PairResult
	Tested   int // pairs actually tested
	Skipped  int // pairs skipped (degenerate reference populations, ...)
	Rejected int // significant pairs after correction

	// BFSRuns counts the density-phase h-hop traversals actually
	// performed; MemoHits the density evaluations served from the
	// cross-pair memo instead. Without the memo BFSRuns is the sum of
	// every pair's sample size and MemoHits is 0; with it, each
	// distinct reference node across the whole sweep is traversed once.
	BFSRuns  int64
	MemoHits int64
}

// AllPairs builds the candidate list: every unordered pair of store
// events with at least minOcc occurrences each, in lexicographic
// order. The order is sorted explicitly rather than inherited from
// the store: a deterministic candidate list is load-bearing for the
// planner's priority queue (ties order by position) and for
// reproducible sweeps generally, and must not silently depend on a
// provider's iteration order.
func AllPairs(store *events.Store, minOcc int) [][2]string {
	var names []string
	for _, name := range store.Names() {
		if store.Count(name) >= minOcc {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var pairs [][2]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			pairs = append(pairs, [2]string{names[i], names[j]})
		}
	}
	return pairs
}

// Run screens the given pairs on g using occurrences from store.
func Run(g *graph.Graph, store *events.Store, pairs [][2]string, cfg Config) (Result, error) {
	if cfg.H < 1 {
		return Result{}, fmt.Errorf("screen: H must be >= 1")
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 900
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.MinOccurrences < 1 {
		cfg.MinOccurrences = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}

	stale := func() bool { return cfg.CurrentEpoch != nil && cfg.CurrentEpoch() != cfg.Epoch }
	if stale() {
		return Result{}, ErrStaleEpoch
	}
	if err := cfg.canceled(); err != nil {
		return Result{}, err
	}

	memo, mem, eventIdx, err := bindSweepMemo(g, store, pairs, cfg)
	if err != nil {
		return Result{}, err
	}
	var hitsBefore int64
	if memo != nil {
		hitsBefore = memo.memoHits.Load()
	}

	results := make([]PairResult, len(pairs))
	var wg sync.WaitGroup
	// The completed counter is atomic and Progress runs outside any
	// lock: serializing the callback under a mutex stalled every other
	// worker for the duration of each call on large pair sets. Work is
	// handed out by a second atomic counter — one fetch-add per pair —
	// instead of a feeder goroutine pushing indexes down a channel.
	var completed, nextPair atomic.Int64
	var bfsRuns atomic.Int64
	var staleStop, cancelStop atomic.Bool
	worker := func() {
		sampler := &core.BatchBFSSampler{Engines: cfg.Engines}
		var src *memoSource
		if memo != nil {
			var bfs *graph.BFS
			if cfg.Engines != nil && cfg.Engines.Graph() == g {
				bfs = cfg.Engines.Get()
				defer cfg.Engines.Put(bfs)
			}
			multi, err := core.NewMultiEvaluator(g, mem, cfg.H, bfs)
			if err == nil {
				src = &memoSource{memo: memo, multi: multi, scratch: make([]int32, mem.NumEvents()), shared: cfg.Memo}
			}
		}
		var localBFS int64
		for {
			i := int(nextPair.Add(1)) - 1
			if i >= len(pairs) {
				break
			}
			// Re-validate the pinned epoch before spending BFS work
			// on this pair; a stale sweep is discarded whole. A
			// canceled sweep stops the same way: the caller is gone,
			// so every further traversal is wasted work.
			if stale() {
				staleStop.Store(true)
				break
			}
			if cfg.canceled() != nil {
				cancelStop.Store(true)
				break
			}
			var pairBFS int64
			if src != nil {
				src.retarget(eventIdx[pairs[i][0]], eventIdx[pairs[i][1]])
				results[i], pairBFS = screenOne(g, store, pairs[i], cfg, sampler, src)
			} else {
				results[i], pairBFS = screenOne(g, store, pairs[i], cfg, sampler, nil)
			}
			localBFS += pairBFS
			if cfg.Progress != nil {
				cfg.Progress(int(completed.Add(1)), len(pairs))
			}
		}
		bfsRuns.Add(localBFS)
	}
	if workers == 1 {
		// A single-worker sweep (every standing-query re-screen is one)
		// runs inline: no goroutine spawn, no scheduler handoff, and
		// the caller's warm stack.
		worker()
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	// The closing re-validation: a delta that landed after the last
	// per-pair check still invalidates the sweep — some pairs may have
	// sampled reference nodes from the superseded snapshot's view.
	if staleStop.Load() || stale() {
		return Result{}, ErrStaleEpoch
	}
	// Same for cancellation: a cancel landing during the last pair sets
	// no flag (no worker re-enters the loop), but that pair's test may
	// have aborted mid-density-phase — re-check so it cannot escape as
	// a mislabeled skip.
	if cancelStop.Load() || cfg.canceled() != nil {
		return Result{}, cfg.canceled()
	}

	// correction over the tested pairs only
	var tested []int
	var ps []float64
	for i := range results {
		if results[i].Skipped == "" {
			tested = append(tested, i)
			ps = append(ps, results[i].P)
		}
	}
	var adj []float64
	switch cfg.Correction {
	case FWER:
		adj = stats.Bonferroni(ps)
	case None:
		adj = ps
	default:
		adj = stats.BenjaminiHochberg(ps)
	}
	out := Result{Pairs: results, Tested: len(tested), Skipped: len(results) - len(tested), BFSRuns: bfsRuns.Load()}
	if memo != nil {
		// Report this run's hits only: a SharedMemo's counter spans its
		// whole lifetime across many runs.
		out.MemoHits = memo.memoHits.Load() - hitsBefore
	}
	for k, i := range tested {
		results[i].AdjP = adj[k]
		results[i].Significant = adj[k] < cfg.Alpha
		if results[i].Significant {
			out.Rejected++
		}
	}

	sort.SliceStable(out.Pairs, func(a, b int) bool {
		pa, pb := out.Pairs[a], out.Pairs[b]
		if (pa.Skipped == "") != (pb.Skipped == "") {
			return pa.Skipped == ""
		}
		if pa.AdjP != pb.AdjP {
			return pa.AdjP < pb.AdjP
		}
		za, zb := abs(pa.Z), abs(pb.Z)
		if za != zb {
			return za > zb
		}
		if pa.A != pb.A {
			return pa.A < pb.A
		}
		return pa.B < pb.B
	})
	return out, nil
}

// bindSweepMemo sets up a sweep's cross-pair density memo. The memo
// needs the event vocabulary as an indexed set: the distinct event
// names of the pair list (sorted for determinism) and their occurrence
// sets. A caller-owned SharedMemo supplies its own (fixed) vocabulary
// instead, so its cached count vectors keep their layout across runs;
// NoMemo (or a budget miss) returns all-nil and the sweep evaluates
// densities per pair. Shared by Run and Plan.
func bindSweepMemo(g *graph.Graph, store *events.Store, pairs [][2]string, cfg Config) (*densityMemo, *core.EventMembership, map[string]int, error) {
	var memo *densityMemo
	var mem *core.EventMembership
	eventIdx := make(map[string]int)
	switch {
	case cfg.NoMemo:
	case cfg.Memo != nil:
		m, err := cfg.Memo.bind(g.NumNodes(), store, pairs, eventIdx)
		if err != nil {
			return nil, nil, nil, err
		}
		mem = m
		memo = cfg.Memo.memo
	default:
		var names []string
		for _, p := range pairs {
			for _, name := range []string{p[0], p[1]} {
				if _, ok := eventIdx[name]; !ok {
					eventIdx[name] = -1 // mark; index assigned after sort
					names = append(names, name)
				}
			}
		}
		sort.Strings(names)
		sets := make([]*graph.NodeSet, len(names))
		for k, name := range names {
			eventIdx[name] = k
			sets[k] = store.Set(name)
		}
		if m, err := core.NewEventMembership(g.NumNodes(), sets); err == nil {
			mem = m
			memo = newDensityMemo(g.NumNodes(), len(names))
		}
	}
	return memo, mem, eventIdx, nil
}

// screenOne tests a single pair, returning the result and the pair's
// density-phase traversal count (folded into Result.BFSRuns; kept out
// of PairResult so the report stays a pure function of the
// statistics — with the memo, which pair pays for a shared node's
// traversal depends on scheduling). densities, when non-nil, is the
// worker's memo-backed density source, already retargeted at this
// pair's event indices; nil evaluates densities with the pair's own
// traversals (the reference path).
func screenOne(g *graph.Graph, store *events.Store, pair [2]string, cfg Config, sampler core.Sampler, densities core.DensitySource) (PairResult, int64) {
	res := PairResult{
		A: pair[0], B: pair[1],
		OccA: store.Count(pair[0]), OccB: store.Count(pair[1]),
	}
	if res.OccA < cfg.MinOccurrences || res.OccB < cfg.MinOccurrences {
		res.Skipped = "below occurrence threshold"
		return res, 0
	}
	var p *core.Problem
	var err error
	if ms, ok := densities.(*memoSource); ok && ms.shared != nil {
		// Standing queries re-test the same pair across snapshots; the
		// shared memo caches the pair's Va∪b so only real occurrence
		// changes rebuild it.
		p, err = ms.shared.problemFor(g, store, pair)
	} else {
		p, err = core.NewProblem(g, store.Set(pair[0]), store.Set(pair[1]))
	}
	if err != nil {
		res.Skipped = err.Error()
		return res, 0
	}
	seed := pairSeed(cfg.Seed, pair[0], pair[1])
	opts := core.Options{
		H:           cfg.H,
		SampleSize:  cfg.SampleSize,
		Sampler:     sampler,
		Alternative: cfg.Alternative,
		Alpha:       cfg.Alpha,
		Rand:        rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		Engines:     cfg.Engines,
		Ctx:         cfg.Ctx,
	}
	if densities != nil {
		opts.Densities = densities
	}
	tr, err := core.Test(p, opts)
	if err != nil {
		// A canceled test is not a skipped pair: the whole sweep is
		// being abandoned, and Skipped would mislabel the pair if the
		// partial result ever escaped. The worker loop's cancel check
		// discards the sweep right after.
		res.Skipped = err.Error()
		return res, 0
	}
	res.Tau, res.Z, res.P = tr.Tau, tr.Z, tr.P
	return res, tr.DensityBFS
}

func pairSeed(seed uint64, a, b string) uint64 {
	h := seed ^ 14695981039346656037
	for _, s := range []string{a, "\x00", b} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
