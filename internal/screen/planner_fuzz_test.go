package screen

import (
	"math"
	"sync"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/stats"
)

// fuzzPlanFixture is a tiny fixed workload the fuzzer reuses across
// inputs: the interesting surface is the config space (malformed k, θ,
// bound parameters, degenerate event sets), not the graph.
var fuzzPlanFixture struct {
	once  sync.Once
	g     *graph.Graph
	store *events.Store
}

func fuzzPlanSetup() (*graph.Graph, *events.Store) {
	fuzzPlanFixture.once.Do(func() {
		b := graph.NewBuilder(40)
		for i := 0; i < 39; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		}
		for i := 0; i < 20; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+7)%40))
		}
		fuzzPlanFixture.g = b.MustBuild()
		eb := events.NewBuilder(40)
		// Degenerate shapes on purpose: a singleton event, a pair of
		// disjoint events, an event covering every node, overlapping
		// events with heavy ties.
		eb.Add("one", 3)
		for i := 0; i < 40; i++ {
			eb.Add("all", graph.NodeID(i))
		}
		for i := 0; i < 10; i++ {
			eb.Add("left", graph.NodeID(i))
			eb.Add("right", graph.NodeID(30+i%10))
			eb.Add("mid", graph.NodeID(15+i%5))
		}
		fuzzPlanFixture.store = eb.Build()
	})
	return fuzzPlanFixture.g, fuzzPlanFixture.store
}

// FuzzPlannerConfig throws arbitrary knob settings at Plan: it must
// either reject the config with an error or return a result satisfying
// the planner invariants — never panic, never report a skipped pair,
// never exceed k, never return an unsorted or below-θ result, and
// always account for every candidate exactly once.
func FuzzPlannerConfig(f *testing.F) {
	f.Add(1, 0.0, 0.0, 0, 2, 50, uint8(0), uint64(1), 1, 1)
	f.Add(0, 0.5, 1e-6, 8, 1, 30, uint8(1), uint64(7), 2, 4)
	f.Add(5, 0.0, -1.0, 4, 3, 64, uint8(2), uint64(9), 3, 2)
	f.Add(-3, -2.0, 2.0, 1, 0, 0, uint8(9), uint64(0), 0, 0)
	f.Add(0, math.Inf(1), math.NaN(), -5, 99, 100000, uint8(3), uint64(42), -2, 16)
	f.Fuzz(func(t *testing.T, k int, theta, boundAlpha float64, firstCP, h, sampleSize int, altRaw uint8, seed uint64, minOcc, workers int) {
		g, store := fuzzPlanSetup()
		// Clamp only the axes that drive runtime, not validity.
		if h > 4 {
			h = int(uint(h) % 5)
		}
		if sampleSize > 200 {
			sampleSize = int(uint(sampleSize)%200) + 1
		}
		if workers > 8 {
			workers = int(uint(workers) % 9)
		}
		if k > 1000 {
			k = int(uint(k) % 1001)
		}
		alt := stats.Alternative(altRaw % 4) // includes one out-of-range value
		cfg := PlanConfig{
			Config: Config{
				H:              h,
				SampleSize:     sampleSize,
				Alternative:    alt,
				MinOccurrences: minOcc,
				Workers:        workers,
				Seed:           seed,
			},
			K:               k,
			Theta:           theta,
			BoundAlpha:      boundAlpha,
			FirstCheckpoint: firstCP,
		}
		pairs := AllPairs(store, 1)
		res, err := Plan(g, store, pairs, cfg)
		if err != nil {
			return // rejected configs are fine; panics are not
		}
		s := res.Stats
		if s.Skipped+s.PrunedPrior+s.PrunedEarly+s.FullTests != s.Candidates {
			t.Fatalf("stats do not partition candidates: %+v", s)
		}
		if s.Candidates != len(pairs) {
			t.Fatalf("candidates = %d, want %d", s.Candidates, len(pairs))
		}
		if k > 0 && len(res.Pairs) > k {
			t.Fatalf("returned %d pairs with k=%d", len(res.Pairs), k)
		}
		for i := range res.Pairs {
			p := &res.Pairs[i]
			if p.Skipped != "" {
				t.Fatalf("skipped pair in results: %+v", p)
			}
			if p.AdjP != p.P {
				t.Fatalf("planner results carry raw p-values, got AdjP %g != P %g", p.AdjP, p.P)
			}
			if math.IsNaN(p.Tau) || p.Tau < -1 || p.Tau > 1 {
				t.Fatalf("tau out of range: %+v", p)
			}
			if i > 0 && rankLess(p, &res.Pairs[i-1], cfg.Alternative) {
				t.Fatalf("results not rank-ordered at %d: %+v", i, res.Pairs)
			}
			if k == 0 && rankScore(cfg.Alternative, p.Tau) < cfg.Theta {
				t.Fatalf("threshold mode returned below-θ pair: %+v (θ=%g)", p, cfg.Theta)
			}
		}
	})
}
