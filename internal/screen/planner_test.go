package screen

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

// planOracle derives the planner's expected output from an exhaustive
// Run: keep the tested pairs, order them by the planner's total order,
// then cut to top-k (or everything at θ). Run with Correction None
// makes the whole PairResult comparable field-for-field (AdjP == P,
// Significant = P < α — exactly the planner's raw-p semantics).
func planOracle(t *testing.T, g *graph.Graph, store *events.Store, pairs [][2]string, cfg PlanConfig) []PairResult {
	t.Helper()
	runCfg := cfg.Config
	runCfg.Correction = None
	res, err := Run(g, store, pairs, runCfg)
	if err != nil {
		t.Fatalf("oracle Run: %v", err)
	}
	var out []PairResult
	for _, p := range res.Pairs {
		if p.Skipped == "" {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return rankLess(&out[i], &out[j], cfg.Alternative) })
	if cfg.K > 0 {
		if len(out) > cfg.K {
			out = out[:cfg.K]
		}
		return out
	}
	cut := len(out)
	for i, r := range out {
		if rankScore(cfg.Alternative, r.Tau) < cfg.Theta {
			cut = i
			break
		}
	}
	return out[:cut]
}

func comparePlanned(t *testing.T, got, want []PairResult, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: planner returned %d pairs, oracle %d\n got: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d diverged\n got: %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

func checkPlanStats(t *testing.T, st PlanStats, label string) {
	t.Helper()
	if st.Skipped+st.PrunedPrior+st.PrunedEarly+st.FullTests != st.Candidates {
		t.Fatalf("%s: stats do not partition the candidates: %+v", label, st)
	}
}

func TestPlanFindsPlantedPair(t *testing.T) {
	g, store := fixture(t)
	cfg := PlanConfig{
		Config: Config{H: 2, SampleSize: 200, Alternative: stats.Greater, Seed: 7, Workers: 4, MinOccurrences: 5},
		K:      1,
	}
	res, err := Plan(g, store, AllPairs(store, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("k=1 returned %d pairs", len(res.Pairs))
	}
	top := res.Pairs[0]
	if !(top.A == "signal-a" && top.B == "signal-b") {
		t.Errorf("top pair = %s vs %s (tau=%.3f), want the planted signal", top.A, top.B, top.Tau)
	}
	checkPlanStats(t, res.Stats, "k=1")
	if res.Stats.Candidates != 28 {
		t.Errorf("candidates = %d, want 28", res.Stats.Candidates)
	}
	// The planner must agree with the exhaustive sweep bit-for-bit.
	comparePlanned(t, res.Pairs, planOracle(t, g, store, AllPairs(store, 5), cfg), "k=1")
}

func TestPlanTopKMatchesRunOnFixture(t *testing.T) {
	g, store := fixture(t)
	for _, k := range []int{1, 3, 28, 100} {
		for _, alt := range []stats.Alternative{stats.Greater, stats.TwoSided, stats.Less} {
			cfg := PlanConfig{
				Config: Config{H: 2, SampleSize: 150, Alternative: alt, Seed: 11, Workers: 3, MinOccurrences: 5},
				K:      k,
			}
			res, err := Plan(g, store, AllPairs(store, 5), cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkPlanStats(t, res.Stats, "fixture")
			comparePlanned(t, res.Pairs, planOracle(t, g, store, AllPairs(store, 5), cfg), "fixture")
		}
	}
}

func TestPlanThresholdMode(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 5)
	base := Config{H: 2, SampleSize: 150, Alternative: stats.Greater, Seed: 11, MinOccurrences: 5}

	// Oracle scores, ranked.
	all := planOracle(t, g, store, pairs, PlanConfig{Config: base, K: len(pairs)})
	if len(all) < 3 {
		t.Fatalf("fixture tested only %d pairs", len(all))
	}
	mid := rankScore(stats.Greater, all[1].Tau)

	cfg := PlanConfig{Config: base, Theta: mid}
	res, err := Plan(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanStats(t, res.Stats, "threshold")
	comparePlanned(t, res.Pairs, planOracle(t, g, store, pairs, cfg), "threshold")
	for _, p := range res.Pairs {
		if rankScore(stats.Greater, p.Tau) < mid {
			t.Fatalf("threshold mode returned a below-θ pair: %+v", p)
		}
	}
}

// TestPlanThresholdExactlyAtScore is the θ-crossing adversarial case:
// the bar sits exactly on a pair's true score. Pruning is strict
// (< bar), so the pair must survive and be reported; nudging θ one ulp
// above the score must exclude it.
func TestPlanThresholdExactlyAtScore(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 5)
	base := Config{H: 2, SampleSize: 150, Alternative: stats.Greater, Seed: 11, MinOccurrences: 5}
	all := planOracle(t, g, store, pairs, PlanConfig{Config: base, K: len(pairs)})

	for _, probe := range []int{0, 1, len(all) / 2, len(all) - 1} {
		want := all[probe]
		score := rankScore(stats.Greater, want.Tau)

		at, err := Plan(g, store, pairs, PlanConfig{Config: base, Theta: score})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range at.Pairs {
			if p == want {
				found = true
			}
			if rankScore(stats.Greater, p.Tau) < score {
				t.Fatalf("θ=score returned a below-θ pair: %+v", p)
			}
		}
		if !found {
			t.Fatalf("pair with score exactly at θ=%.17g was dropped (probe %d): %+v\ngot %+v", score, probe, want, at.Pairs)
		}
		comparePlanned(t, at.Pairs, planOracle(t, g, store, pairs, PlanConfig{Config: base, Theta: score}), "θ=score")

		if score < 1 {
			above, err := Plan(g, store, pairs, PlanConfig{Config: base, Theta: math.Nextafter(score, 2)})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range above.Pairs {
				if p == want {
					t.Fatalf("pair below θ reported: %+v", p)
				}
			}
		}
	}
}

func TestPlanConfigValidation(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 5)
	bad := []PlanConfig{
		{Config: Config{H: 0}, K: 1},
		{Config: Config{H: 1, SampleSize: 1}, K: 1},
		{Config: Config{H: 1, Alpha: 1.5}, K: 1},
		{Config: Config{H: 1, Alpha: math.NaN()}, K: 1},
		{Config: Config{H: 1}, K: -1},
		{Config: Config{H: 1}, K: 2, Theta: 0.5},        // modes are exclusive
		{Config: Config{H: 1}, K: 0, Theta: 1.5},        // θ out of range
		{Config: Config{H: 1}, K: 0, Theta: math.NaN()}, // θ NaN
		{Config: Config{H: 1}, K: 1, BoundAlpha: 1},     // risk ≥ 1
		{Config: Config{H: 1}, K: 1, BoundAlpha: math.NaN()},
		{Config: Config{H: 1}, K: 1, FirstCheckpoint: 1},
	}
	for i, cfg := range bad {
		if _, err := Plan(g, store, pairs, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// k larger than the candidate set is fine (returns everything).
	res, err := Plan(g, store, pairs, PlanConfig{Config: Config{H: 1, SampleSize: 80, Seed: 2}, K: 10 * len(pairs)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != res.Stats.FullTests {
		t.Fatalf("oversized k: %d pairs returned, %d full tests", len(res.Pairs), res.Stats.FullTests)
	}
	// Empty candidate list is a no-op, not an error.
	empty, err := Plan(g, store, nil, PlanConfig{Config: Config{H: 1}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Pairs) != 0 || empty.Stats.Candidates != 0 {
		t.Fatalf("empty plan returned %+v", empty)
	}
}

func TestPlanDeterministic(t *testing.T) {
	g, store := fixture(t)
	cfg := PlanConfig{Config: Config{H: 1, SampleSize: 100, Seed: 42, Workers: 3, MinOccurrences: 5}, K: 5}
	a, err := Plan(g, store, AllPairs(store, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(g, store, AllPairs(store, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	comparePlanned(t, a.Pairs, b.Pairs, "repeat")
	if a.Stats.FullTests != b.Stats.FullTests || a.Stats.PrunedEarly != b.Stats.PrunedEarly {
		// Worker interleaving may race the bar, so pruned counts could
		// in principle differ run to run — but with the same schedule
		// and a fixed seed they should not on this fixture. If this
		// ever flakes, the RESULT comparison above is the contract;
		// loosen this accounting check, not that one.
		t.Logf("work accounting differed: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestPlanProgressExactlyOncePerCandidate(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 1) // includes skipped (rare-event) pairs
	var mu sync.Mutex
	seen := make(map[int]int)
	_, err := Plan(g, store, pairs, PlanConfig{
		Config: Config{
			H: 1, SampleSize: 50, Workers: 8, Seed: 5, MinOccurrences: 5,
			Progress: func(done, total int) {
				if total != len(pairs) {
					t.Errorf("total = %d, want %d", total, len(pairs))
				}
				mu.Lock()
				seen[done]++
				mu.Unlock()
			},
		},
		K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(pairs) {
		t.Fatalf("Progress delivered %d distinct counts, want %d", len(seen), len(pairs))
	}
	for done, n := range seen {
		if n != 1 || done < 1 || done > len(pairs) {
			t.Fatalf("completion count %d delivered %d times", done, n)
		}
	}
}

// TestPlanStream pins the streaming contract: snapshots are ranked,
// never exceed k, and the final snapshot equals the returned result.
func TestPlanStream(t *testing.T) {
	g, store := fixture(t)
	var mu sync.Mutex
	var snapshots [][]PairResult
	cfg := PlanConfig{
		Config: Config{H: 2, SampleSize: 120, Alternative: stats.Greater, Seed: 7, Workers: 4, MinOccurrences: 5},
		K:      3,
		Stream: func(top []PairResult) {
			mu.Lock()
			snapshots = append(snapshots, top)
			mu.Unlock()
		},
	}
	res, err := Plan(g, store, AllPairs(store, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snapshots) == 0 {
		t.Fatal("no streamed snapshots")
	}
	for _, snap := range snapshots {
		if len(snap) > cfg.K {
			t.Fatalf("snapshot has %d pairs, k=%d", len(snap), cfg.K)
		}
		for i := 1; i < len(snap); i++ {
			if rankLess(&snap[i], &snap[i-1], cfg.Alternative) {
				t.Fatalf("snapshot not rank-ordered: %+v", snap)
			}
		}
	}
	last := snapshots[len(snapshots)-1]
	comparePlanned(t, last, res.Pairs, "final snapshot")
}

func TestCheckpointSchedule(t *testing.T) {
	if cps := checkpointSchedule(64, 64); cps != nil {
		t.Fatalf("n <= first should yield no checkpoints, got %v", cps)
	}
	if cps := checkpointSchedule(64, 10); cps != nil {
		t.Fatalf("tiny sample should yield no checkpoints, got %v", cps)
	}
	for _, n := range []int{65, 100, 129, 256, 900, 1000} {
		cps := checkpointSchedule(64, n)
		if len(cps) == 0 {
			t.Fatalf("n=%d: empty schedule", n)
		}
		if !sort.IntsAreSorted(cps) {
			t.Fatalf("n=%d: schedule not sorted: %v", n, cps)
		}
		for i, m := range cps {
			if m < 64 || m >= n {
				t.Fatalf("n=%d: checkpoint %d out of [first, n): %v", n, m, cps)
			}
			if i > 0 && cps[i] == cps[i-1] {
				t.Fatalf("n=%d: duplicate checkpoint: %v", n, cps)
			}
		}
	}
	// The dense tail exists: 7n/8 is always scheduled for large n.
	cps := checkpointSchedule(64, 900)
	want := 900 * 7 / 8
	found := false
	for _, m := range cps {
		if m == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("7n/8=%d missing from %v", want, cps)
	}
}

func TestScoreInterval(t *testing.T) {
	cases := []struct {
		alt      stats.Alternative
		lo, hi   float64
		sLo, sHi float64
	}{
		{stats.Greater, -0.5, 0.8, -0.5, 0.8},
		{stats.Less, -0.5, 0.8, -0.8, 0.5},
		{stats.TwoSided, -0.5, 0.8, 0, 0.8},    // straddles zero
		{stats.TwoSided, 0.2, 0.8, 0.2, 0.8},   // all positive
		{stats.TwoSided, -0.8, -0.2, 0.2, 0.8}, // all negative
		{stats.TwoSided, -0.9, 0.3, 0, 0.9},
	}
	for _, c := range cases {
		sLo, sHi := scoreInterval(c.alt, c.lo, c.hi)
		if sLo != c.sLo || sHi != c.sHi {
			t.Errorf("scoreInterval(%v, %g, %g) = (%g, %g), want (%g, %g)", c.alt, c.lo, c.hi, sLo, sHi, c.sLo, c.sHi)
		}
	}
}

func TestRankOrdering(t *testing.T) {
	a := PairResult{A: "a", B: "b", Tau: 0.5}
	b := PairResult{A: "a", B: "c", Tau: -0.7}
	if !rankLess(&a, &b, stats.Greater) {
		t.Error("Greater: τ=0.5 should outrank τ=-0.7")
	}
	if !rankLess(&b, &a, stats.Less) {
		t.Error("Less: τ=-0.7 should outrank τ=0.5")
	}
	if !rankLess(&b, &a, stats.TwoSided) {
		t.Error("TwoSided: |τ|=0.7 should outrank |τ|=0.5")
	}
	// Ties break on names, deterministically and irreflexively.
	c := PairResult{A: "a", B: "c", Tau: 0.5}
	if !rankLess(&a, &c, stats.Greater) || rankLess(&c, &a, stats.Greater) {
		t.Error("tie-break by names broken")
	}
	if rankLess(&a, &a, stats.Greater) {
		t.Error("rankLess not irreflexive")
	}
}

// TestPlanBarStrictness pins the bar semantics the soundness argument
// rests on: the bar is −Inf until k completions, equals the k-th best
// completed score after, and only ever rises.
func TestPlanBarStrictness(t *testing.T) {
	b := &planBar{k: 2, alt: stats.Greater}
	if got := b.bar(); !math.IsInf(got, -1) {
		t.Fatalf("empty bar = %g, want -Inf", got)
	}
	b.offer(PairResult{A: "a", B: "b", Tau: 0.9})
	if got := b.bar(); !math.IsInf(got, -1) {
		t.Fatalf("bar with k-1 completions = %g, want -Inf", got)
	}
	b.offer(PairResult{A: "a", B: "c", Tau: 0.3})
	if got := b.bar(); got != 0.3 {
		t.Fatalf("bar = %g, want 0.3", got)
	}
	// A worse completion never raises the bar.
	b.offer(PairResult{A: "a", B: "d", Tau: 0.1})
	if got := b.bar(); got != 0.3 {
		t.Fatalf("bar moved on a worse completion: %g", got)
	}
	// A better one does.
	b.offer(PairResult{A: "a", B: "e", Tau: 0.7})
	if got := b.bar(); got != 0.7 {
		t.Fatalf("bar = %g, want 0.7", got)
	}
	ranked := b.ranked()
	if len(ranked) != 2 || ranked[0].Tau != 0.9 || ranked[1].Tau != 0.7 {
		t.Fatalf("ranked = %+v", ranked)
	}
	// Threshold mode: the bar is θ from the start.
	tb := &planBar{theta: 0.25, alt: stats.Greater}
	if got := tb.bar(); got != 0.25 {
		t.Fatalf("threshold bar = %g, want 0.25", got)
	}
	tb.offer(PairResult{A: "a", B: "b", Tau: 0.25}) // exactly at θ: stays
	tb.offer(PairResult{A: "a", B: "c", Tau: 0.2})  // below θ: cut
	ranked = tb.ranked()
	if len(ranked) != 1 || ranked[0].Tau != 0.25 {
		t.Fatalf("threshold ranked = %+v, want exactly the at-θ pair", ranked)
	}
}

// TestCheckpointScoreBoundSound is the adversarial pruning property:
// over synthetic density prefixes the deterministic bound must always
// contain the final exact score, INCLUDING the boundary-exact cases
// where every remaining concordance term lands at +1 (the bound's
// upper edge is the truth). A pair whose bound touches the bar exactly
// must survive strict-< pruning.
func TestCheckpointScoreBoundSound(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 3))
	for trial := 0; trial < 300; trial++ {
		n := 16 + rng.IntN(120)
		m := 2 + rng.IntN(n-2)
		sa := make([]float64, n)
		sb := make([]float64, n)
		mode := trial % 3
		for i := range sa {
			switch mode {
			case 0: // random with heavy ties — the tie-heavy regime
				sa[i] = float64(rng.IntN(4))
				sb[i] = float64(rng.IntN(4))
			case 1: // adversarial: perfectly concordant tail after a mixed prefix
				if i < m {
					sa[i], sb[i] = rng.Float64(), rng.Float64()
				} else {
					sa[i], sb[i] = float64(i), float64(i)
				}
			default: // continuous random
				sa[i], sb[i] = rng.Float64(), rng.Float64()
			}
		}
		full := stats.KendallAuto(sa, sb)
		for _, alt := range []stats.Alternative{stats.Greater, stats.Less, stats.TwoSided} {
			score := rankScore(alt, full.Tau)
			prefix := stats.KendallAuto(sa[:m], sb[:m])
			// Deterministic-only bound: must contain the final score, always.
			sLo, sHi := checkpointScoreBound(alt, prefix, m, n, -1)
			if score < sLo-1e-12 || score > sHi+1e-12 {
				t.Fatalf("trial %d mode %d alt %v: final score %.17g outside deterministic bound [%.17g, %.17g] (m=%d n=%d)",
					trial, mode, alt, score, sLo, sHi, m, n)
			}
			// Strict-< pruning with the bar exactly at the upper bound
			// must NOT fire: scoreUB < scoreUB is false. (This is the
			// planner's pruning predicate verbatim.)
			if sHi < sHi {
				t.Fatal("unreachable: strict < fired at equality")
			}
		}
	}
}

// TestCheckpointScoreBoundExactEdge drives the bound with the
// boundary-exact prefix from the stats tests: a prefix whose every
// remaining term completes concordantly, so the final τ EQUALS the
// deterministic upper bound. A bar at that exact value must not prune
// the pair (strict <), and a bar one ulp above must.
func TestCheckpointScoreBoundExactEdge(t *testing.T) {
	// Prefix of 4 discordant-ish values, tail perfectly concordant:
	// every unobserved pair term is +1, final τ = deterministic hi.
	sa := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	sb := []float64{4, 3, 2, 1, 10, 20, 30, 40}
	m, n := 4, len(sa)
	full := stats.KendallAuto(sa, sb)
	prefix := stats.KendallAuto(sa[:m], sb[:m])
	_, sHi := checkpointScoreBound(stats.Greater, prefix, m, n, -1)
	if full.Tau != sHi {
		t.Fatalf("edge case lost: final τ %.17g != deterministic hi %.17g", full.Tau, sHi)
	}
	bar := full.Tau
	if sHi < bar {
		t.Fatal("strict pruning fired with the true score exactly at the bar")
	}
	if !(sHi < math.Nextafter(bar, 2)) {
		t.Fatal("bar one ulp above the bound failed to prune")
	}
	// Intersecting with the statistical interval must never push the
	// upper bound below a reachable score when the intersection is kept.
	_, sHiStat := checkpointScoreBound(stats.Greater, prefix, m, n, 1e-6)
	if sHiStat > sHi {
		t.Fatalf("intersection widened the bound: %g > %g", sHiStat, sHi)
	}
}

// TestPriorReachBound unit-tests the index-driven prescreen: a
// low-reach event's score cap must bound the exhaustive result, and a
// covering reach must return the no-information 1.
func TestPriorReachBound(t *testing.T) {
	g, store := fixture(t)
	ix, err := vicinity.Build(g, 2, vicinity.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PlanConfig{Config: Config{H: 2, SampleSize: 200}}
	cfg.Index = ix
	r := priorReach(g, store, cfg)
	if r == nil {
		t.Fatal("priorReach returned nil with a valid index")
	}
	// The rare event occurs once: its reach is one vicinity, far below
	// the sample, so its score cap must be well below 1.
	ub := r.scoreUB("rare", 1, 40)
	if ub >= 1 {
		t.Fatalf("rare-event score cap = %g, want < 1", ub)
	}
	if ub < 0 {
		t.Fatalf("score cap went negative: %g", ub)
	}
	// A widely-occurring event covers the sample: no information.
	if ub := r.scoreUB("noise-a", 40, 40); ub != 1 {
		t.Fatalf("covering reach should yield 1, got %g", ub)
	}
	// Unknown events are never capped.
	if ub := r.scoreUB("nope", 5, 5); ub != 1 {
		t.Fatalf("unknown event capped: %g", ub)
	}

	// Level too shallow, wrong graph, or directed graph: bound disabled.
	shallow, err := vicinity.Build(g, 1, vicinity.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Index = shallow
	if priorReach(g, store, cfg) != nil {
		t.Fatal("shallow index accepted for the prior bound")
	}
	other := graphgen.WattsStrogatz(50, 2, 0, rand.New(rand.NewPCG(1, 1)))
	cfg.Index = ix
	if priorReach(other, store, cfg) != nil {
		t.Fatal("foreign-graph index accepted for the prior bound")
	}
}

// TestPlanPriorBoundEquivalent: enabling the prior reach bound changes
// only the work accounting, never the result — on a workload where the
// rare event pairs are capped below the bar.
func TestPlanPriorBoundEquivalent(t *testing.T) {
	g, store := fixture(t)
	ix, err := vicinity.Build(g, 2, vicinity.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := AllPairs(store, 1) // includes the rare event's pairs
	base := PlanConfig{
		Config: Config{H: 2, SampleSize: 200, Alternative: stats.Greater, Seed: 7, Workers: 1},
		K:      3,
	}
	plain, err := Plan(g, store, pairs, base)
	if err != nil {
		t.Fatal(err)
	}
	withIx := base
	withIx.Index = ix
	bounded, err := Plan(g, store, pairs, withIx)
	if err != nil {
		t.Fatal(err)
	}
	comparePlanned(t, bounded.Pairs, plain.Pairs, "prior bound")
	checkPlanStats(t, bounded.Stats, "prior bound")
	comparePlanned(t, bounded.Pairs, planOracle(t, g, store, pairs, base), "prior bound vs oracle")
}

// TestPlanPrunesWork: on the planted fixture with a clear winner and a
// deliberately weak bar requirement (k=1), the planner must do
// measurably less density work than the exhaustive sweep when the
// sample is large enough for checkpoints to exist.
func TestPlanPrunesWork(t *testing.T) {
	g, store := fixture(t)
	pairs := AllPairs(store, 5)
	cfg := PlanConfig{
		Config: Config{H: 2, SampleSize: 400, Alternative: stats.Greater, Seed: 7, Workers: 1, NoMemo: true},
		K:      1,
	}
	res, err := Plan(g, store, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanStats(t, res.Stats, "pruning")
	exhaustiveEvals := int64(0)
	for range pairs {
		exhaustiveEvals += int64(cfg.SampleSize)
	}
	if res.Stats.PrunedEarly == 0 {
		t.Fatalf("no pairs pruned on the planted fixture: %+v", res.Stats)
	}
	if res.Stats.DensityEvals >= exhaustiveEvals {
		t.Fatalf("planner paid %d density evals, exhaustive pays %d", res.Stats.DensityEvals, exhaustiveEvals)
	}
	t.Logf("planner: %d/%d full tests, %d pruned, %d/%d density evals",
		res.Stats.FullTests, len(pairs), res.Stats.PrunedEarly, res.Stats.DensityEvals, exhaustiveEvals)
}

// TestAllPairsDeterministic is the regression test for the ordering
// fix: the candidate list is lexicographic regardless of insertion
// order, and repeated calls agree exactly.
func TestAllPairsDeterministic(t *testing.T) {
	b := events.NewBuilder(50)
	// Insert in deliberately non-lexicographic order.
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		for i := 0; i < 3; i++ {
			b.Add(name, graph.NodeID(i))
		}
	}
	store := b.Build()
	pairs := AllPairs(store, 1)
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d, want 10", len(pairs))
	}
	for i, p := range pairs {
		if p[0] >= p[1] {
			t.Fatalf("pair %d not ordered: %v", i, p)
		}
		if i > 0 {
			prev := pairs[i-1]
			if !(prev[0] < p[0] || (prev[0] == p[0] && prev[1] < p[1])) {
				t.Fatalf("pair list not lexicographic at %d: %v after %v", i, p, prev)
			}
		}
	}
	again := AllPairs(store, 1)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatalf("AllPairs not deterministic at %d", i)
		}
	}
}
