package core

import (
	"fmt"
	"math/rand/v2"

	"tesc/internal/graph"
	"tesc/internal/sampling"
	"tesc/internal/vicinity"
)

// RefSample is the outcome of reference-node selection.
type RefSample struct {
	// Nodes are the distinct reference nodes drawn from V^h_{a∪b}.
	Nodes []graph.NodeID
	// Freq is nil for uniform samples. For importance sampling it holds
	// w_i, the number of times Nodes[i] was generated (Algorithm 2's W);
	// the test then uses the weighted estimator t̃ of Eq. 8.
	Freq []int
	// Stats records the work the sampler performed.
	Stats SamplerStats
}

// Weighted reports whether the sample carries importance frequencies.
func (s RefSample) Weighted() bool { return s.Freq != nil }

// SamplerStats counts the work done during reference selection; the
// complexity analysis of §4.4 is expressed in exactly these quantities.
type SamplerStats struct {
	BFSCount   int64 // h-hop BFS traversals performed by the sampler
	Draws      int64 // sampling iterations (importance sampling's n')
	Rejections int64 // RejectSamp coin-flip failures
	Examined   int64 // whole-graph nodes examined for eligibility
	OutOfSight int64 // examined nodes outside V^h_{a∪b} (the paper's n_f)
	Population int   // N = |V^h_{a∪b}| when enumerated (Batch BFS), else -1
}

// Sampler draws reference nodes for a TESC test. Implementations reuse
// internal BFS buffers and are therefore not safe for concurrent use;
// create one per goroutine.
type Sampler interface {
	// Name identifies the strategy in reports ("batch-bfs", ...).
	Name() string
	// SampleReferences draws up to n distinct reference nodes from
	// V^h_{a∪b}. Fewer than n nodes are returned only when the reference
	// population (or the sampler's draw budget) is exhausted.
	SampleReferences(p *Problem, h, n int, rng *rand.Rand) (RefSample, error)
}

// maxDrawFactor bounds the draw loops of the rejection and importance
// samplers: after maxDrawFactor·n + maxDrawSlack iterations without
// reaching n distinct nodes the sample is returned as-is. This only
// triggers when N is close to (or below) n, where the estimator is
// nearly exact anyway.
const (
	maxDrawFactor = 50
	maxDrawSlack  = 1000
)

// ---------------------------------------------------------------------
// Batch BFS (Algorithm 1)
// ---------------------------------------------------------------------

// BatchBFSSampler materializes the whole reference population V^h_{a∪b}
// with one multi-source BFS from Va∪b (Algorithm 1, worst case
// O(|V|+|E|)) and then draws n nodes uniformly without replacement.
type BatchBFSSampler struct {
	// Engines, when non-nil and bound to the problem's graph, supplies
	// the traversal engine from a shared pool instead of a sampler-owned
	// allocation — the serving tier's per-graph-version pooling.
	Engines *graph.EnginePool

	bfs *graph.BFS
}

// Name implements Sampler.
func (s *BatchBFSSampler) Name() string { return "batch-bfs" }

// SampleReferences implements Sampler.
func (s *BatchBFSSampler) SampleReferences(p *Problem, h, n int, rng *rand.Rand) (RefSample, error) {
	bfs := s.bfs
	if s.Engines != nil && s.Engines.Graph() == p.G {
		bfs = s.Engines.Get()
		defer s.Engines.Put(bfs)
	} else if bfs == nil || bfs.Graph() != p.G {
		bfs = graph.NewBFS(p.G)
		s.bfs = bfs
	}
	// The engine's flat visit buffer IS the enumerated population; the
	// draw shuffles its prefix in place (engine scratch is fair game
	// between traversals), so materializing V^h_{a∪b} costs no copy and
	// the draw costs O(n) rather than O(N) random numbers.
	pop := bfs.Collect(p.EventNodes(), h)
	N := len(pop)
	if N < 2 {
		return RefSample{}, ErrTooFewReferences
	}
	nodes := sampling.SampleKInPlace(pop, n, rng)
	return RefSample{
		Nodes: append([]graph.NodeID(nil), nodes...),
		Stats: SamplerStats{BFSCount: 1, Population: N},
	}, nil
}

// ---------------------------------------------------------------------
// All-nodes sampling (§3.2 ablation)
// ---------------------------------------------------------------------

// AllNodesSampler draws reference nodes uniformly from the WHOLE graph,
// including out-of-sight nodes whose h-vicinity contains no event
// occurrence. The paper's §3.2 (Figure 3) argues this is wrong — the
// shared 0-ties of the out-of-sight block simultaneously add concordant
// pairs and shrink the null variance, inflating z. The sampler exists to
// reproduce that argument empirically (see the out-of-sight tests and
// the ablation benchmark); do not use it for real measurements.
type AllNodesSampler struct{}

// Name implements Sampler.
func (s *AllNodesSampler) Name() string { return "all-nodes(invalid)" }

// SampleReferences implements Sampler.
func (s *AllNodesSampler) SampleReferences(p *Problem, h, n int, rng *rand.Rand) (RefSample, error) {
	total := p.G.NumNodes()
	if total < 2 {
		return RefSample{}, ErrTooFewReferences
	}
	picker := sampling.NewUniformNoReplace(total, rng)
	nodes := make([]graph.NodeID, 0, n)
	for len(nodes) < n {
		v, ok := picker.Next()
		if !ok {
			break
		}
		nodes = append(nodes, graph.NodeID(v))
	}
	return RefSample{Nodes: nodes, Stats: SamplerStats{Population: total}}, nil
}

// ---------------------------------------------------------------------
// Rejection sampling (Procedure RejectSamp)
// ---------------------------------------------------------------------

// RejectionSampler implements Procedure RejectSamp: draw an event node v
// with probability |V^h_v|/Nsum, draw u uniformly from V^h_v, then accept
// u with probability 1/|V^h_u ∩ Va∪b|. Proposition 1 shows each node of
// V^h_{a∪b} is produced with probability 1/Nsum, so accepted nodes form a
// uniform sample. Each draw costs two h-hop BFS; the expected number of
// draws per accepted node is Nsum/N, which grows with vicinity overlap —
// the inefficiency that motivates the importance sampler.
type RejectionSampler struct {
	// Index must cover level h for the problem's graph.
	Index *vicinity.Index

	bfs *graph.BFS
	buf []graph.NodeID
}

// Name implements Sampler.
func (s *RejectionSampler) Name() string { return "rejection" }

// SampleReferences implements Sampler.
func (s *RejectionSampler) SampleReferences(p *Problem, h, n int, rng *rand.Rand) (RefSample, error) {
	if err := s.checkIndex(p, h); err != nil {
		return RefSample{}, err
	}
	if s.bfs == nil || s.bfs.Graph() != p.G {
		s.bfs = graph.NewBFS(p.G)
	}
	eventNodes := p.EventNodes()
	alias, err := sampling.NewAlias(s.Index.Weights(eventNodes, h))
	if err != nil {
		return RefSample{}, fmt.Errorf("tesc: rejection sampler: %w", err)
	}

	var st SamplerStats
	st.Population = -1
	seen := make(map[graph.NodeID]bool, n)
	nodes := make([]graph.NodeID, 0, n)
	maxDraws := int64(maxDrawFactor)*int64(n) + maxDrawSlack
	for len(nodes) < n && st.Draws < maxDraws {
		st.Draws++
		// Step 1: v ∝ |V^h_v|.
		v := eventNodes[alias.Draw(rng)]
		// Step 2: u uniform from V^h_v.
		s.buf = s.buf[:0]
		s.buf = s.bfs.Vicinity(v, h, s.buf)
		st.BFSCount++
		u := s.buf[rng.IntN(len(s.buf))]
		// Step 3: c = |V^h_u ∩ Va∪b|.
		c := 0
		s.bfs.Run([]graph.NodeID{u}, h, func(w graph.NodeID, _ int) {
			if p.Union.Contains(w) {
				c++
			}
		})
		st.BFSCount++
		// Step 4: accept with probability 1/c.
		if c < 1 || rng.Float64() >= 1/float64(c) {
			st.Rejections++
			continue
		}
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	if len(nodes) < 2 {
		return RefSample{}, ErrTooFewReferences
	}
	return RefSample{Nodes: nodes, Stats: st}, nil
}

func (s *RejectionSampler) checkIndex(p *Problem, h int) error {
	switch {
	case s.Index == nil:
		return fmt.Errorf("tesc: %s sampler requires a vicinity index", s.Name())
	case s.Index.Graph() != p.G:
		return fmt.Errorf("tesc: vicinity index bound to a different graph")
	case s.Index.MaxLevel() < h:
		return fmt.Errorf("tesc: vicinity index covers levels 1..%d, need %d", s.Index.MaxLevel(), h)
	}
	return nil
}

// ---------------------------------------------------------------------
// Importance sampling (Algorithm 2, §5.2.2 batched variant)
// ---------------------------------------------------------------------

// ImportanceSampler implements Algorithm 2: draw event node v with
// probability |V^h_v|/Nsum, then draw reference nodes uniformly from
// V^h_v *without rejection*, recording frequencies. The resulting sample
// follows P = {p(r) = |V^h_r ∩ Va∪b|/Nsum}, and the test compensates with
// the weighted estimator t̃ (Eq. 8), a consistent estimator of τ
// (Theorem 1).
//
// BatchSize > 1 enables the §5.2.2 refinement: several reference nodes
// are drawn per event-node BFS, trading a little estimator accuracy
// (samples become locally dependent) for proportionally fewer traversals.
// The paper settles on 3 for h=2 and 6 for h=3 (Figure 7).
type ImportanceSampler struct {
	// Index must cover level h for the problem's graph.
	Index *vicinity.Index
	// BatchSize is the number of reference nodes drawn per event-node
	// BFS; 0 or 1 means the plain Algorithm 2.
	BatchSize int

	bfs *graph.BFS
	buf []graph.NodeID
}

// Name implements Sampler.
func (s *ImportanceSampler) Name() string {
	if s.BatchSize > 1 {
		return fmt.Sprintf("importance-batch%d", s.BatchSize)
	}
	return "importance"
}

// SampleReferences implements Sampler.
func (s *ImportanceSampler) SampleReferences(p *Problem, h, n int, rng *rand.Rand) (RefSample, error) {
	rs := &RejectionSampler{Index: s.Index}
	if err := rs.checkIndex(p, h); err != nil {
		return RefSample{}, fmt.Errorf("tesc: importance sampler: %w", err)
	}
	if s.bfs == nil || s.bfs.Graph() != p.G {
		s.bfs = graph.NewBFS(p.G)
	}
	batch := s.BatchSize
	if batch < 1 {
		batch = 1
	}
	eventNodes := p.EventNodes()
	alias, err := sampling.NewAlias(s.Index.Weights(eventNodes, h))
	if err != nil {
		return RefSample{}, fmt.Errorf("tesc: importance sampler: %w", err)
	}

	var st SamplerStats
	st.Population = -1
	pos := make(map[graph.NodeID]int, n) // node → index in nodes
	nodes := make([]graph.NodeID, 0, n)
	freq := make([]int, 0, n)
	maxDraws := int64(maxDrawFactor)*int64(n) + maxDrawSlack
	for len(nodes) < n && st.Draws < maxDraws {
		// Line 4: v ∝ |V^h_v|.
		v := eventNodes[alias.Draw(rng)]
		// Line 5: BFS from v, then draw from V^h_v.
		s.buf = s.buf[:0]
		s.buf = s.bfs.Vicinity(v, h, s.buf)
		st.BFSCount++
		drawn := sampling.SampleK(s.buf, batch, rng)
		for _, r := range drawn {
			st.Draws++
			if i, ok := pos[r]; ok {
				freq[i]++
			} else {
				pos[r] = len(nodes)
				nodes = append(nodes, r)
				freq = append(freq, 1)
			}
			if len(nodes) >= n {
				break
			}
		}
	}
	if len(nodes) < 2 {
		return RefSample{}, ErrTooFewReferences
	}
	return RefSample{Nodes: nodes, Freq: freq, Stats: st}, nil
}

// ---------------------------------------------------------------------
// Whole graph sampling (Algorithm 3)
// ---------------------------------------------------------------------

// WholeGraphSampler implements Algorithm 3: draw nodes uniformly from the
// whole graph without replacement and keep those whose h-vicinity
// contains an event node. Kept nodes are a uniform sample of V^h_{a∪b};
// the expected number of wasted examinations is n·|V|/N − n (§4.4), so
// the strategy only pays off when V^h_{a∪b} covers much of the graph
// (large |Va∪b| and/or large h).
type WholeGraphSampler struct {
	bfs *graph.BFS
}

// Name implements Sampler.
func (s *WholeGraphSampler) Name() string { return "whole-graph" }

// SampleReferences implements Sampler.
func (s *WholeGraphSampler) SampleReferences(p *Problem, h, n int, rng *rand.Rand) (RefSample, error) {
	if s.bfs == nil || s.bfs.Graph() != p.G {
		s.bfs = graph.NewBFS(p.G)
	}
	var st SamplerStats
	st.Population = -1
	nodes := make([]graph.NodeID, 0, n)
	picker := sampling.NewUniformNoReplace(p.G.NumNodes(), rng)
	for len(nodes) < n {
		v, ok := picker.Next()
		if !ok {
			break // population exhausted
		}
		st.Examined++
		// Eligibility test with early exit on the first event node seen.
		eligible := false
		s.bfs.RunUntil([]graph.NodeID{graph.NodeID(v)}, h, func(w graph.NodeID, _ int) bool {
			if p.Union.Contains(w) {
				eligible = true
				return false
			}
			return true
		})
		st.BFSCount++
		if eligible {
			nodes = append(nodes, graph.NodeID(v))
		} else {
			st.OutOfSight++
		}
	}
	if len(nodes) < 2 {
		return RefSample{}, ErrTooFewReferences
	}
	return RefSample{Nodes: nodes, Stats: st}, nil
}
