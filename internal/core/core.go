// Package core implements the paper's primary contribution: the TESC
// (Two-Event Structural Correlation) statistical testing framework of
// Guan, Yan & Kaplan, "Measuring Two-Event Structural Correlations on
// Graphs", VLDB 2012.
//
// Given a graph G and the occurrence sets Va, Vb of two events, the
// framework
//
//  1. samples n reference nodes uniformly (or importance-weighted) from
//     V^h_{a∪b}, the h-vicinity of all event nodes (§3.2, §4);
//  2. computes for each reference node r the event densities
//     s^h_a(r) = |Va ∩ V^h_r| / |V^h_r| and s^h_b(r) via one h-hop BFS
//     (Eq. 2);
//  3. aggregates the pairwise concordance of density changes with
//     Kendall's τ (Eq. 3/4) — or the weighted estimator t̃ (Eq. 8) when
//     the sample is importance-weighted;
//  4. assesses significance through τ's asymptotic normality under the
//     null hypothesis with tie-corrected variance (Eq. 5/6/7).
//
// The three reference-node samplers of §4 — Batch BFS (Algorithm 1),
// importance sampling (Algorithm 2, plus the batched refinement of
// §5.2.2), and whole-graph sampling (Algorithm 3) — are provided as
// interchangeable Sampler implementations; rejection sampling (Procedure
// RejectSamp) is included as well for completeness and for validating the
// importance weights.
package core

import (
	"errors"
	"fmt"
	"sync"

	"tesc/internal/graph"
)

// Problem binds a graph and the occurrence sets of the two events under
// test. Construct with NewProblem, which also forms Va∪b.
type Problem struct {
	G     *graph.Graph
	Va    *graph.NodeSet // occurrences of event a
	Vb    *graph.NodeSet // occurrences of event b
	Union *graph.NodeSet // Va∪b = Va ∪ Vb, the event nodes (§2)

	// IntensityA and IntensityB optionally weight each occurrence (§6's
	// extension: "consider event intensity on nodes, e.g. the frequency
	// by which an author used a keyword"). When non-nil they must have
	// length |V|; densities become intensity sums over the vicinity
	// divided by |V^h_r|, and Eq. 2 is the special case of unit
	// intensities. Reference-node eligibility is still governed by the
	// occurrence sets, not the intensities.
	IntensityA, IntensityB []float64

	labelsOnce sync.Once
	labels     []uint8
}

// Label bits of Problem.Labels: membership of a node in the occurrence
// sets, packed so the density kernels test all three sets with a single
// byte load instead of two bitset probes.
const (
	LabelA     uint8 = 1 << 0 // v ∈ Va
	LabelB     uint8 = 1 << 1 // v ∈ Vb
	LabelUnion uint8 = 1 << 2 // v ∈ Va∪b (= LabelA|LabelB, precombined)
)

// Labels returns the packed per-node occurrence-label array: labels[v]
// carries LabelA/LabelB/LabelUnion bits. It is built once on first use
// (O(|Va|+|Vb|) over an O(|V|) byte array) and shared by every evaluator
// of the problem; safe for concurrent readers.
func (p *Problem) Labels() []uint8 {
	p.labelsOnce.Do(func() {
		labels := make([]uint8, p.G.NumNodes())
		for _, v := range p.Va.Members() {
			labels[v] |= LabelA | LabelUnion
		}
		for _, v := range p.Vb.Members() {
			labels[v] |= LabelB | LabelUnion
		}
		p.labels = labels
	})
	return p.labels
}

// SetIntensities attaches per-node intensities to the problem. Every
// node in Va (resp. Vb) should carry a positive intensity; nodes outside
// the occurrence set must have intensity 0.
func (p *Problem) SetIntensities(ia, ib []float64) error {
	n := p.G.NumNodes()
	if (ia != nil && len(ia) != n) || (ib != nil && len(ib) != n) {
		return fmt.Errorf("tesc: intensity vectors must have length %d", n)
	}
	for v := 0; v < n; v++ {
		if ia != nil && ia[v] != 0 && !p.Va.Contains(graph.NodeID(v)) {
			return fmt.Errorf("tesc: intensity A on node %d outside Va", v)
		}
		if ib != nil && ib[v] != 0 && !p.Vb.Contains(graph.NodeID(v)) {
			return fmt.Errorf("tesc: intensity B on node %d outside Vb", v)
		}
	}
	p.IntensityA, p.IntensityB = ia, ib
	return nil
}

// Errors returned by problem construction and testing.
var (
	// ErrNoEventNodes means both occurrence sets are empty, so the
	// reference population V^h_{a∪b} is empty and TESC is undefined.
	ErrNoEventNodes = errors.New("tesc: no event occurrences; reference population is empty")
	// ErrTooFewReferences means fewer than two reference nodes could be
	// produced, so no pair exists to assess concordance on.
	ErrTooFewReferences = errors.New("tesc: fewer than two reference nodes available")
)

// NewProblem validates the inputs and precomputes Va∪b. The occurrence
// sets must share the graph's node universe.
func NewProblem(g *graph.Graph, va, vb *graph.NodeSet) (*Problem, error) {
	if va.Universe() != g.NumNodes() || vb.Universe() != g.NumNodes() {
		return nil, fmt.Errorf("tesc: occurrence set universe (%d, %d) does not match graph size %d",
			va.Universe(), vb.Universe(), g.NumNodes())
	}
	if va.Len() == 0 && vb.Len() == 0 {
		return nil, ErrNoEventNodes
	}
	return &Problem{G: g, Va: va, Vb: vb, Union: va.Union(vb)}, nil
}

// NewProblemWithUnion is NewProblem with a caller-supplied Va∪b set,
// for callers that test the same event pair repeatedly while the
// occurrence sets stay fixed (a standing query re-screening across
// graph snapshots): the union depends only on Va and Vb, so rebuilding
// it per snapshot is pure waste. The caller owns the invariant that
// union == va ∪ vb over the same universe.
func NewProblemWithUnion(g *graph.Graph, va, vb, union *graph.NodeSet) (*Problem, error) {
	if va.Universe() != g.NumNodes() || vb.Universe() != g.NumNodes() || union.Universe() != g.NumNodes() {
		return nil, fmt.Errorf("tesc: occurrence set universe (%d, %d, %d) does not match graph size %d",
			va.Universe(), vb.Universe(), union.Universe(), g.NumNodes())
	}
	if va.Len() == 0 && vb.Len() == 0 {
		return nil, ErrNoEventNodes
	}
	return &Problem{G: g, Va: va, Vb: vb, Union: union}, nil
}

// MustNewProblem is NewProblem that panics on error, for tests and
// simulators whose inputs are valid by construction.
func MustNewProblem(g *graph.Graph, va, vb *graph.NodeSet) *Problem {
	p, err := NewProblem(g, va, vb)
	if err != nil {
		panic(err)
	}
	return p
}

// EventNodes returns Va∪b as a sorted slice (aliases internal storage).
func (p *Problem) EventNodes() []graph.NodeID { return p.Union.Members() }
