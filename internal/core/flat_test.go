package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
)

// randomGraph builds a seeded sparse random graph, directed or not.
func randomGraph(t *testing.T, n int, m int, directed bool, seed uint64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	var b *graph.Builder
	if directed {
		b = graph.NewDirectedBuilder(n)
	} else {
		b = graph.NewBuilder(n)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomProblem plants two random events (and optionally intensities) on g.
func randomProblem(t *testing.T, g *graph.Graph, occ int, intensities bool, seed uint64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed^0x5151, seed))
	n := g.NumNodes()
	pick := func() []graph.NodeID {
		vs := make([]graph.NodeID, occ)
		for i := range vs {
			vs[i] = graph.NodeID(rng.IntN(n))
		}
		return vs
	}
	va := graph.NewNodeSet(n, pick())
	vb := graph.NewNodeSet(n, pick())
	p := MustNewProblem(g, va, vb)
	if intensities {
		ia := make([]float64, n)
		ib := make([]float64, n)
		for _, v := range va.Members() {
			ia[v] = 0.25 + rng.Float64()
		}
		for _, v := range vb.Members() {
			ib[v] = 0.25 + rng.Float64()
		}
		if err := p.SetIntensities(ia, ib); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestFlatKernelMatchesReference pins the tentpole invariant: the flat
// closure-free density kernel returns bit-identical Density records to
// the retained callback-based reference kernel, over directed and
// undirected graphs, h = 1..3, with and without intensities. Floats are
// compared with ==: the flat kernel must accumulate in the reference
// kernel's exact visit order.
func TestFlatKernelMatchesReference(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for _, intensities := range []bool{false, true} {
			for h := 1; h <= 3; h++ {
				name := fmt.Sprintf("directed=%v/intensities=%v/h=%d", directed, intensities, h)
				t.Run(name, func(t *testing.T) {
					g := randomGraph(t, 400, 1000, directed, uint64(h)*7+11)
					p := randomProblem(t, g, 40, intensities, uint64(h)*13+3)
					flat := NewDensityEvaluator(p, h)
					ref := NewDensityEvaluator(p, h)
					for v := 0; v < g.NumNodes(); v++ {
						df := flat.Eval(graph.NodeID(v))
						dr := ref.EvalReference(graph.NodeID(v))
						if df != dr {
							t.Fatalf("node %d: flat %+v != reference %+v", v, df, dr)
						}
					}
					if flat.BFSCount != ref.BFSCount {
						t.Fatalf("BFSCount %d != %d", flat.BFSCount, ref.BFSCount)
					}
				})
			}
		}
	}
}

// TestMultiEvaluatorMatchesReference checks that one MultiEvaluator BFS
// reproduces, for every event of a K-event vocabulary, exactly the
// occurrence count and vicinity size the single-pair reference kernel
// computes.
func TestMultiEvaluatorMatchesReference(t *testing.T) {
	const K = 5
	for _, directed := range []bool{false, true} {
		for h := 1; h <= 3; h++ {
			t.Run(fmt.Sprintf("directed=%v/h=%d", directed, h), func(t *testing.T) {
				g := randomGraph(t, 300, 900, directed, uint64(h)*29+1)
				rng := rand.New(rand.NewPCG(99, uint64(h)))
				n := g.NumNodes()
				sets := make([]*graph.NodeSet, K)
				for k := range sets {
					vs := make([]graph.NodeID, 30)
					for i := range vs {
						vs[i] = graph.NodeID(rng.IntN(n))
					}
					sets[k] = graph.NewNodeSet(n, vs)
				}
				mem, err := NewEventMembership(n, sets)
				if err != nil {
					t.Fatal(err)
				}
				multi, err := NewMultiEvaluator(g, mem, h, nil)
				if err != nil {
					t.Fatal(err)
				}
				counts := make([]int32, K)
				bfs := graph.NewBFS(g)
				for v := 0; v < n; v += 3 {
					size := multi.Eval(graph.NodeID(v), counts)
					vic := bfs.Vicinity(graph.NodeID(v), h, nil)
					if size != len(vic) {
						t.Fatalf("node %d: size %d != |vicinity| %d", v, size, len(vic))
					}
					for k, s := range sets {
						if want := s.CountIn(vic); int(counts[k]) != want {
							t.Fatalf("node %d event %d: count %d != %d", v, k, counts[k], want)
						}
					}
				}
			})
		}
	}
}

// TestEvalAllParallelBFSCountRaceSafe pins that the atomic-counter
// work distribution returns results identical to EvalAll and that
// BFSCount folds in race-safely (exactly one increment per node, also
// when two parallel evaluations share the evaluator — the plain `+=`
// the old feeder-channel implementation used would lose counts here).
func TestEvalAllParallelBFSCountRaceSafe(t *testing.T) {
	g := randomGraph(t, 500, 1500, false, 77)
	p := randomProblem(t, g, 50, false, 78)
	rs := make([]graph.NodeID, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		rs = append(rs, graph.NodeID(v))
	}
	seq := NewDensityEvaluator(p, 2)
	sa0, sb0, ds0 := seq.EvalAll(rs)

	par := NewDensityEvaluator(p, 2)
	done := make(chan struct{})
	go func() { // concurrent use of one evaluator: counts must not be lost
		par.EvalAllParallel(rs, 4)
		close(done)
	}()
	sa1, sb1, ds1 := par.EvalAllParallel(rs, 4)
	<-done

	for i := range rs {
		if sa0[i] != sa1[i] || sb0[i] != sb1[i] || ds0[i] != ds1[i] {
			t.Fatalf("node %d: parallel result diverges", i)
		}
	}
	if want := int64(2 * len(rs)); par.BFSCount != want {
		t.Fatalf("BFSCount = %d, want %d (two concurrent passes)", par.BFSCount, want)
	}
	if seq.BFSCount != int64(len(rs)) {
		t.Fatalf("sequential BFSCount = %d, want %d", seq.BFSCount, len(rs))
	}
}

// TestPooledEnginesIdenticalResults runs the same test with and without
// a shared engine pool: pooling is invisible in the statistics.
func TestPooledEnginesIdenticalResults(t *testing.T) {
	g := randomGraph(t, 400, 1200, false, 5)
	p := randomProblem(t, g, 40, false, 6)
	base := Options{H: 2, SampleSize: 120, Alpha: 0.05, Rand: rand.New(rand.NewPCG(9, 9))}
	r0, err := Test(p, base)
	if err != nil {
		t.Fatal(err)
	}
	pooled := base
	pooled.Rand = rand.New(rand.NewPCG(9, 9))
	pooled.Engines = graph.NewEnginePool(g)
	pooled.Sampler = &BatchBFSSampler{Engines: pooled.Engines}
	r1, err := Test(p, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Tau != r1.Tau || r0.Z != r1.Z || r0.P != r1.P || r0.N != r1.N {
		t.Fatalf("pooled result diverges: %+v vs %+v", r0, r1)
	}
	for i := range r0.SA {
		if r0.SA[i] != r1.SA[i] || r0.SB[i] != r1.SB[i] {
			t.Fatalf("density vector diverges at %d", i)
		}
	}
}
