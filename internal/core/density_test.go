package core

import (
	"testing"

	"tesc/internal/graph"
)

// toy fixture: path 0-1-2-3-4-5, event a on {0,1}, event b on {4,5}.
func pathProblem(t *testing.T) *Problem {
	t.Helper()
	g := graph.Path(6)
	va := graph.NewNodeSet(6, []graph.NodeID{0, 1})
	vb := graph.NewNodeSet(6, []graph.NodeID{4, 5})
	return MustNewProblem(g, va, vb)
}

func TestNewProblemValidation(t *testing.T) {
	g := graph.Path(4)
	empty := graph.NewNodeSet(4, nil)
	if _, err := NewProblem(g, empty, empty); err != ErrNoEventNodes {
		t.Errorf("empty events: err = %v, want ErrNoEventNodes", err)
	}
	wrong := graph.NewNodeSet(5, []graph.NodeID{0})
	if _, err := NewProblem(g, wrong, empty); err == nil {
		t.Error("universe mismatch should fail")
	}
	ok, err := NewProblem(g, graph.NewNodeSet(4, []graph.NodeID{1}), empty)
	if err != nil {
		t.Fatalf("valid problem failed: %v", err)
	}
	if ok.Union.Len() != 1 {
		t.Errorf("union = %v", ok.Union.Members())
	}
}

func TestDensityEval(t *testing.T) {
	p := pathProblem(t)
	e := NewDensityEvaluator(p, 1)

	// r=0: V^1_0 = {0,1}; a-count 2, b-count 0, union 2.
	d := e.Eval(0)
	if d.VicinitySize != 2 || d.CountA != 2 || d.CountB != 0 || d.CountUnion != 2 {
		t.Errorf("density(0) = %+v", d)
	}
	if d.SA() != 1.0 || d.SB() != 0.0 {
		t.Errorf("SA=%g SB=%g", d.SA(), d.SB())
	}
	if !d.InSight() {
		t.Error("node 0 sees events")
	}

	// r=2: V^1_2 = {1,2,3}; a-count 1 (node 1), b 0.
	d2 := e.Eval(2)
	if d2.VicinitySize != 3 || d2.CountA != 1 || d2.CountB != 0 {
		t.Errorf("density(2) = %+v", d2)
	}
	if got, want := d2.SA(), 1.0/3; got != want {
		t.Errorf("SA(2) = %g, want %g", got, want)
	}

	// r=3 at h=1: V^1_3 = {2,3,4}; sees b only.
	d3 := e.Eval(3)
	if d3.CountA != 0 || d3.CountB != 1 || !d3.InSight() {
		t.Errorf("density(3) = %+v", d3)
	}

	if e.BFSCount != 3 {
		t.Errorf("BFSCount = %d, want 3", e.BFSCount)
	}
}

func TestDensityOutOfSight(t *testing.T) {
	// path of 9, events only at the ends, middle node at h=1 sees nothing
	g := graph.Path(9)
	va := graph.NewNodeSet(9, []graph.NodeID{0})
	vb := graph.NewNodeSet(9, []graph.NodeID{8})
	p := MustNewProblem(g, va, vb)
	e := NewDensityEvaluator(p, 1)
	d := e.Eval(4)
	if d.InSight() {
		t.Error("center of long path should be out of sight at h=1")
	}
	if d.SA() != 0 || d.SB() != 0 {
		t.Error("out-of-sight densities must be 0")
	}
}

func TestEvalAll(t *testing.T) {
	p := pathProblem(t)
	e := NewDensityEvaluator(p, 2)
	rs := []graph.NodeID{0, 3, 5}
	sa, sb, ds := e.EvalAll(rs)
	if len(sa) != 3 || len(sb) != 3 || len(ds) != 3 {
		t.Fatal("length mismatch")
	}
	for i, r := range rs {
		d := e.Eval(r)
		if sa[i] != d.SA() || sb[i] != d.SB() {
			t.Errorf("EvalAll[%d] disagrees with Eval(%d)", i, r)
		}
	}
}

// Density vectors must follow Eq. 2 exactly: cross-check against naive
// set intersection on a grid.
func TestDensityAgainstNaive(t *testing.T) {
	g := graph.Grid(6, 6)
	va := graph.NewNodeSet(36, []graph.NodeID{0, 7, 14, 21})
	vb := graph.NewNodeSet(36, []graph.NodeID{35, 28, 21})
	p := MustNewProblem(g, va, vb)
	bfs := graph.NewBFS(g)
	for _, h := range []int{1, 2, 3} {
		e := NewDensityEvaluator(p, h)
		for v := 0; v < 36; v++ {
			d := e.Eval(graph.NodeID(v))
			vic := bfs.Vicinity(graph.NodeID(v), h, nil)
			if d.VicinitySize != len(vic) {
				t.Fatalf("h=%d v=%d: vicinity size %d != %d", h, v, d.VicinitySize, len(vic))
			}
			if d.CountA != va.CountIn(vic) || d.CountB != vb.CountIn(vic) {
				t.Fatalf("h=%d v=%d: counts %+v", h, v, d)
			}
			if d.CountUnion != p.Union.CountIn(vic) {
				t.Fatalf("h=%d v=%d: union count %d", h, v, d.CountUnion)
			}
		}
	}
}
