package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

// bench100k is the PR 4 benchmark substrate: the ~100k-node DBLP
// coauthorship surrogate with an 8-event vocabulary whose occurrences
// cluster in the first communities — the localized event sets a §5.4
// sweep actually screens (keywords concentrate in venue communities;
// scattering them uniformly would make every vicinity disjoint and
// every population the whole graph). Built once; only -bench pays.
var bench100k struct {
	once    sync.Once
	g       *graph.Graph
	sets    []*graph.NodeSet
	problem *Problem
	sample  []graph.NodeID // 900 reference nodes from V^2_{a∪b}
}

const (
	benchEvents    = 8
	benchOcc       = 500
	benchRegion    = 20000 // occurrences fall in nodes [0, benchRegion)
	benchH         = 2
	benchSampleLen = 900
)

func bench100kSetup(tb testing.TB) {
	bench100k.once.Do(func() {
		rng := rand.New(rand.NewPCG(7, 0xc0a0))
		g := graphgen.Coauthorship(graphgen.DefaultCoauthorship(1.0), rng)
		n := g.NumNodes()
		sets := make([]*graph.NodeSet, benchEvents)
		for e := range sets {
			occ := make([]graph.NodeID, benchOcc)
			for i := range occ {
				occ[i] = graph.NodeID(rng.IntN(benchRegion))
			}
			sets[e] = graph.NewNodeSet(n, occ)
		}
		p := MustNewProblem(g, sets[0], sets[1])
		sampler := &BatchBFSSampler{}
		srng := rand.New(rand.NewPCG(11, 13))
		sample, err := sampler.SampleReferences(p, benchH, benchSampleLen, srng)
		if err != nil {
			tb.Fatal(err)
		}
		bench100k.g = g
		bench100k.sets = sets
		bench100k.problem = p
		bench100k.sample = sample.Nodes
	})
}

// BenchmarkDensityPhaseFlat measures the PR 4 fast path: the
// single-pair density phase (900 reference evaluations at h=2, single
// worker) through EvalAll — flat label kernel over batched MS-BFS
// traversals. Compare against BenchmarkDensityPhaseReference — the
// acceptance criterion is >= 2x.
func BenchmarkDensityPhaseFlat(b *testing.B) {
	bench100kSetup(b)
	eval := NewDensityEvaluator(bench100k.problem, benchH)
	bench100k.problem.Labels() // build outside the timer, like Test does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = eval.EvalAll(bench100k.sample)
	}
}

// BenchmarkDensityPhaseReference is the same workload through the
// retained callback-based kernel (the pre-PR 4 code path).
func BenchmarkDensityPhaseReference(b *testing.B) {
	bench100kSetup(b)
	eval := NewDensityEvaluator(bench100k.problem, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range bench100k.sample {
			_ = eval.EvalReference(r)
		}
	}
}

// BenchmarkMultiEvaluatorK8 measures the cross-pair kernel: one BFS per
// reference node yielding the occurrence counts of all 8 events — the
// work one screen memo miss performs, amortized over up to K(K-1)/2
// pairs.
func BenchmarkMultiEvaluatorK8(b *testing.B) {
	bench100kSetup(b)
	mem, err := NewEventMembership(bench100k.g.NumNodes(), bench100k.sets)
	if err != nil {
		b.Fatal(err)
	}
	multi, err := NewMultiEvaluator(bench100k.g, mem, benchH, nil)
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]int32, benchEvents)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range bench100k.sample {
			_ = multi.Eval(r, counts)
		}
	}
}
