package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"tesc/internal/graph"
)

// parallelChunk is the number of reference nodes a worker claims per
// atomic fetch-add: large enough that the shared counter is off the hot
// path, small enough that stragglers cannot leave a worker idle behind
// one slow chunk.
const parallelChunk = 64

// EvalAllParallel evaluates densities for all reference nodes using a
// pool of workers, each owning a private BFS engine. The density phase
// performs n independent h-hop traversals (the dominant cost of a test,
// §4.4), so it parallelizes embarrassingly; results are identical to the
// sequential EvalAll.
//
// Work is distributed by an atomic index counter — each worker
// fetch-adds the next chunk of rs — instead of a feeder goroutine
// pushing indexes down a channel: the counter is one uncontended atomic
// op per chunk, where the channel cost a send/receive handoff plus a
// goroutine wakeup. Worker-local traversal counts fold into BFSCount
// atomically as each worker finishes, so concurrent EvalAllParallel
// calls on one evaluator never lose counts.
//
// workers <= 0 selects GOMAXPROCS. The evaluator e itself is only used
// for its problem/level configuration; its BFSCount is advanced by the
// total number of traversals.
func (e *DensityEvaluator) EvalAllParallel(rs []graph.NodeID, workers int) (sa, sb []float64, ds []Density) {
	sa, sb, ds, _ = e.EvalAllParallelCtx(nil, rs, workers)
	return sa, sb, ds
}

// EvalAllParallelCtx is EvalAllParallel with cancellation: workers
// check ctx between chunks and stop claiming work once it is done, so
// an abandoned request stops burning traversals within one chunk per
// worker. On cancellation the wrapped cause is returned and the
// density slices must be discarded (partially filled). A nil ctx never
// cancels.
func (e *DensityEvaluator) EvalAllParallelCtx(ctx context.Context, rs []graph.NodeID, workers int) (sa, sb []float64, ds []Density, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rs) {
		workers = len(rs)
	}
	sa = make([]float64, len(rs))
	sb = make([]float64, len(rs))
	ds = make([]Density, len(rs))
	if len(rs) == 0 {
		return sa, sb, ds, nil
	}
	if workers <= 1 {
		return e.evalAllCtxInto(ctx, rs, sa, sb, ds)
	}

	// Prebuild the shared label array outside the workers: Labels uses
	// sync.Once, but materializing it here keeps the first chunk of
	// every worker off the Once fast path check.
	e.p.Labels()

	var wg sync.WaitGroup
	var next atomic.Int64
	var canceled atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local *DensityEvaluator
			if e.Engines != nil && e.Engines.Graph() == e.p.G {
				bfs := e.Engines.Get()
				defer e.Engines.Put(bfs)
				local = NewDensityEvaluatorBFS(e.p, e.h, bfs)
			} else {
				local = NewDensityEvaluator(e.p, e.h)
			}
			for {
				if ctxErr(ctx) != nil {
					canceled.Store(true)
					break
				}
				lo := int(next.Add(parallelChunk)) - parallelChunk
				if lo >= len(rs) {
					break
				}
				hi := lo + parallelChunk
				if hi > len(rs) {
					hi = len(rs)
				}
				local.evalInto(rs[lo:hi], sa[lo:hi], sb[lo:hi], ds[lo:hi])
			}
			atomic.AddInt64(&e.BFSCount, local.BFSCount)
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return sa, sb, ds, ctxErr(ctx)
	}
	return sa, sb, ds, nil
}

// evalAllCtx is the sequential density pass with cancellation checked
// every parallelChunk traversals — the same granularity the parallel
// workers use, so a canceled sequential test stops just as promptly.
func (e *DensityEvaluator) evalAllCtx(ctx context.Context, rs []graph.NodeID) (sa, sb []float64, ds []Density, err error) {
	sa = make([]float64, len(rs))
	sb = make([]float64, len(rs))
	ds = make([]Density, len(rs))
	return e.evalAllCtxInto(ctx, rs, sa, sb, ds)
}

func (e *DensityEvaluator) evalAllCtxInto(ctx context.Context, rs []graph.NodeID, sa, sb []float64, ds []Density) ([]float64, []float64, []Density, error) {
	for lo := 0; lo < len(rs); lo += parallelChunk {
		if err := ctxErr(ctx); err != nil {
			return sa, sb, ds, err
		}
		hi := lo + parallelChunk
		if hi > len(rs) {
			hi = len(rs)
		}
		e.evalInto(rs[lo:hi], sa[lo:hi], sb[lo:hi], ds[lo:hi])
	}
	return sa, sb, ds, nil
}
