package core

import (
	"runtime"
	"sync"

	"tesc/internal/graph"
)

// EvalAllParallel evaluates densities for all reference nodes using a
// pool of workers, each owning a private BFS engine. The density phase
// performs n independent h-hop traversals (the dominant cost of a test,
// §4.4), so it parallelizes embarrassingly; results are identical to the
// sequential EvalAll.
//
// workers <= 0 selects GOMAXPROCS. The evaluator e itself is only used
// for its problem/level configuration; its BFSCount is advanced by the
// total number of traversals.
func (e *DensityEvaluator) EvalAllParallel(rs []graph.NodeID, workers int) (sa, sb []float64, ds []Density) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rs) {
		workers = len(rs)
	}
	sa = make([]float64, len(rs))
	sb = make([]float64, len(rs))
	ds = make([]Density, len(rs))
	if len(rs) == 0 {
		return sa, sb, ds
	}
	if workers <= 1 {
		for i, r := range rs {
			d := e.Eval(r)
			ds[i] = d
			sa[i] = d.SA()
			sb[i] = d.SB()
		}
		return sa, sb, ds
	}

	var wg sync.WaitGroup
	const chunk = 16
	next := make(chan int)
	go func() {
		for lo := 0; lo < len(rs); lo += chunk {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := NewDensityEvaluator(e.p, e.h)
			for lo := range next {
				hi := lo + chunk
				if hi > len(rs) {
					hi = len(rs)
				}
				for i := lo; i < hi; i++ {
					d := local.Eval(rs[i])
					ds[i] = d
					sa[i] = d.SA()
					sb[i] = d.SB()
				}
			}
		}()
	}
	wg.Wait()
	e.BFSCount += int64(len(rs))
	return sa, sb, ds
}
