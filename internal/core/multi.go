package core

import (
	"fmt"

	"tesc/internal/graph"
)

// EventMembership is an immutable node → event-index adjacency in CSR
// form over a vocabulary of K events: events of node v are
// events[offsets[v]:offsets[v+1]], each an index into the vocabulary.
// It is the shared, read-only half of MultiEvaluator; build it once per
// (graph snapshot, event set) and share it across worker evaluators.
type EventMembership struct {
	n       int
	k       int
	offsets []int32
	events  []int32
}

// NewEventMembership builds the node → event adjacency from K
// occurrence sets over a universe of n nodes. Index k of sets names
// event k.
func NewEventMembership(n int, sets []*graph.NodeSet) (*EventMembership, error) {
	m := &EventMembership{n: n, k: len(sets)}
	total := 0
	for k, s := range sets {
		if s.Universe() != n {
			return nil, fmt.Errorf("core: event %d universe %d does not match graph size %d", k, s.Universe(), n)
		}
		total += s.Len()
	}
	deg := make([]int32, n+1)
	for _, s := range sets {
		for _, v := range s.Members() {
			deg[v+1]++
		}
	}
	m.offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		m.offsets[v+1] = m.offsets[v] + deg[v+1]
	}
	m.events = make([]int32, total)
	cursor := make([]int32, n)
	copy(cursor, m.offsets[:n])
	for k, s := range sets {
		for _, v := range s.Members() {
			m.events[cursor[v]] = int32(k)
			cursor[v]++
		}
	}
	return m, nil
}

// NumEvents returns K, the vocabulary size.
func (m *EventMembership) NumEvents() int { return m.k }

// Universe returns the node universe size.
func (m *EventMembership) Universe() int { return m.n }

// MultiEvaluator computes, in ONE h-hop BFS from a reference node, the
// occurrence counts |V_k ∩ V^h_r| of every event k in a vocabulary —
// the cross-pair generalization of DensityEvaluator.Eval. A screening
// sweep over K events tests K(K−1)/2 pairs, and without this the same
// reference node is re-traversed once per pair it is sampled for; with
// it, one traversal yields the count vector every pair's densities are
// O(1) array math over (screen's density memo stores exactly these
// vectors).
//
// Not safe for concurrent use; create one per worker, sharing the
// EventMembership.
type MultiEvaluator struct {
	g   *graph.Graph
	mem *EventMembership
	h   int
	bfs *graph.BFS
	// BFSCount counts traversals performed, mirroring
	// DensityEvaluator.BFSCount.
	BFSCount int64
}

// NewMultiEvaluator returns an evaluator for the membership's event
// vocabulary on g at level h. bfs supplies the traversal engine
// (typically from a graph.EnginePool); nil allocates a private one.
func NewMultiEvaluator(g *graph.Graph, mem *EventMembership, h int, bfs *graph.BFS) (*MultiEvaluator, error) {
	if mem.n != g.NumNodes() {
		return nil, fmt.Errorf("core: event membership universe %d does not match graph size %d", mem.n, g.NumNodes())
	}
	if bfs == nil {
		bfs = graph.NewBFS(g)
	} else if bfs.Graph() != g {
		return nil, fmt.Errorf("core: BFS engine bound to a different graph")
	}
	return &MultiEvaluator{g: g, mem: mem, h: h, bfs: bfs}, nil
}

// Eval runs one h-hop BFS from r, accumulates the per-event occurrence
// counts into counts (len K, zeroed by Eval), and returns |V^h_r|.
// Counts are exact integers, so densities derived as
// float64(counts[k])/float64(size) are bit-identical to the
// unit-intensity DensityEvaluator path.
func (m *MultiEvaluator) Eval(r graph.NodeID, counts []int32) int {
	if len(counts) != m.mem.k {
		panic(fmt.Sprintf("core: counts length %d, want %d", len(counts), m.mem.k))
	}
	for i := range counts {
		counts[i] = 0
	}
	m.BFSCount++
	nodes := m.bfs.Collect([]graph.NodeID{r}, m.h)
	offsets, events := m.mem.offsets, m.mem.events
	for _, v := range nodes {
		for _, k := range events[offsets[v]:offsets[v+1]] {
			counts[k]++
		}
	}
	return len(nodes)
}
