package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/stats"
)

// --- intensity extension (§6) ----------------------------------------

func TestSetIntensitiesValidation(t *testing.T) {
	p := pathProblem(t) // a on {0,1}, b on {4,5}, 6 nodes
	if err := p.SetIntensities(make([]float64, 3), nil); err == nil {
		t.Error("wrong-length intensity accepted")
	}
	bad := make([]float64, 6)
	bad[2] = 1 // node 2 not in Va
	if err := p.SetIntensities(bad, nil); err == nil {
		t.Error("intensity outside Va accepted")
	}
	ok := make([]float64, 6)
	ok[0], ok[1] = 2, 5
	if err := p.SetIntensities(ok, nil); err != nil {
		t.Errorf("valid intensity rejected: %v", err)
	}
}

func TestUnitIntensityMatchesCounts(t *testing.T) {
	p := pathProblem(t)
	unit := make([]float64, 6)
	for _, v := range p.Va.Members() {
		unit[v] = 1
	}
	unitB := make([]float64, 6)
	for _, v := range p.Vb.Members() {
		unitB[v] = 1
	}
	if err := p.SetIntensities(unit, unitB); err != nil {
		t.Fatal(err)
	}
	e := NewDensityEvaluator(p, 1)
	for v := graph.NodeID(0); v < 6; v++ {
		d := e.Eval(v)
		if d.SumA != float64(d.CountA) || d.SumB != float64(d.CountB) {
			t.Fatalf("unit intensities should reproduce counts: %+v", d)
		}
	}
}

func TestIntensityChangesDensities(t *testing.T) {
	p := pathProblem(t)
	ia := make([]float64, 6)
	ia[0], ia[1] = 10, 1 // node 0's occurrences dominate
	if err := p.SetIntensities(ia, nil); err != nil {
		t.Fatal(err)
	}
	e := NewDensityEvaluator(p, 1)
	d0 := e.Eval(0) // sees nodes 0,1 → SumA = 11 over size 2
	if d0.SA() != 5.5 {
		t.Errorf("SA(0) = %g, want 5.5", d0.SA())
	}
	d2 := e.Eval(2) // sees node 1 only → SumA = 1 over size 3
	if math.Abs(d2.SA()-1.0/3) > 1e-15 {
		t.Errorf("SA(2) = %g, want 1/3", d2.SA())
	}
	// counts unchanged by intensities
	if d0.CountA != 2 || d2.CountA != 1 {
		t.Error("counts must not depend on intensity")
	}
}

// Intensity-weighted TESC: scaling both events' intensities by positive
// constants must not change the outcome (rank statistic).
func TestIntensityScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 1))
	g := graphgen.ErdosRenyi(300, 900, rng)
	va := make([]graph.NodeID, 25)
	vb := make([]graph.NodeID, 25)
	for i := range va {
		va[i] = graph.NodeID(rng.IntN(300))
		vb[i] = graph.NodeID(rng.IntN(300))
	}
	build := func(scaleA, scaleB float64) Result {
		p := MustNewProblem(g, graph.NewNodeSet(300, va), graph.NewNodeSet(300, vb))
		ia := make([]float64, 300)
		ib := make([]float64, 300)
		r2 := rand.New(rand.NewPCG(202, 1))
		for _, v := range p.Va.Members() {
			ia[v] = (1 + r2.Float64()*4) * scaleA
		}
		for _, v := range p.Vb.Members() {
			ib[v] = (1 + r2.Float64()*4) * scaleB
		}
		if err := p.SetIntensities(ia, ib); err != nil {
			t.Fatal(err)
		}
		res, err := Test(p, Options{H: 1, SampleSize: 80, Alpha: 0.05,
			Rand: rand.New(rand.NewPCG(7, 7))})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := build(1, 1)
	b := build(3.5, 0.25)
	if math.Abs(a.Tau-b.Tau) > 1e-12 || math.Abs(a.Z-b.Z) > 1e-9 {
		t.Errorf("intensity scaling changed the rank statistic: %v vs %v", a, b)
	}
}

// --- Spearman statistic (§8) ------------------------------------------

func TestSpearmanStatisticAgreesOnStrongSignal(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 1))
	cfg := graphgen.PlantedPartitionConfig{Communities: 20, Size: 30, DegreeIn: 8, DegreeOut: 0.5}
	g := graphgen.PlantedPartition(cfg, rng)
	var va, vb []graph.NodeID
	for c := 0; c < 8; c++ {
		base := c * 30
		for i := 0; i < 5; i++ {
			va = append(va, graph.NodeID(base+rng.IntN(30)))
			vb = append(vb, graph.NodeID(base+rng.IntN(30)))
		}
	}
	p := MustNewProblem(g, graph.NewNodeSet(g.NumNodes(), va), graph.NewNodeSet(g.NumNodes(), vb))
	for _, st := range []Statistic{KendallTau, SpearmanRho} {
		res, err := Test(p, Options{
			H: 2, SampleSize: 150, Alpha: 0.05,
			Alternative: stats.Greater, Statistic: st,
			Rand: rand.New(rand.NewPCG(204, 1)),
		})
		if err != nil {
			t.Fatalf("statistic %v: %v", st, err)
		}
		if !res.Significant || res.Z <= 0 {
			t.Errorf("statistic %v missed the planted attraction: %v", st, res)
		}
	}
}

func TestSpearmanRejectsWeightedSamples(t *testing.T) {
	p, idx := erProblem(t, 200, 600, 10, 10, 205)
	_, err := Test(p, Options{
		H: 1, SampleSize: 50, Alpha: 0.05,
		Sampler:   &ImportanceSampler{Index: idx},
		Statistic: SpearmanRho,
	})
	if err == nil {
		t.Fatal("Spearman with importance weights should fail")
	}
}

// --- parallel density phase --------------------------------------------

func TestEvalAllParallelMatchesSequential(t *testing.T) {
	p, _ := erProblem(t, 400, 1200, 15, 15, 207)
	eval := NewDensityEvaluator(p, 2)
	refs := make([]graph.NodeID, 150)
	rng := rand.New(rand.NewPCG(208, 1))
	for i := range refs {
		refs[i] = graph.NodeID(rng.IntN(400))
	}
	sa1, sb1, ds1 := eval.EvalAll(refs)
	for _, workers := range []int{-1, 2, 7, 64} {
		sa2, sb2, ds2 := eval.EvalAllParallel(refs, workers)
		for i := range refs {
			if sa1[i] != sa2[i] || sb1[i] != sb2[i] || ds1[i] != ds2[i] {
				t.Fatalf("workers=%d: parallel density differs at %d", workers, i)
			}
		}
	}
	// empty input
	sa, sb, ds := eval.EvalAllParallel(nil, 4)
	if len(sa) != 0 || len(sb) != 0 || len(ds) != 0 {
		t.Error("empty input should give empty outputs")
	}
}

func TestTestWithWorkers(t *testing.T) {
	p, _ := erProblem(t, 300, 900, 12, 12, 209)
	seq, err := Test(p, Options{H: 1, SampleSize: 80, Alpha: 0.05,
		Rand: rand.New(rand.NewPCG(9, 9))})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Test(p, Options{H: 1, SampleSize: 80, Alpha: 0.05, Workers: -1,
		Rand: rand.New(rand.NewPCG(9, 9))})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Tau != par.Tau || seq.Z != par.Z {
		t.Errorf("parallel test differs: %v vs %v", seq, par)
	}
}

// --- all-nodes sampler (§3.2 ablation) ---------------------------------

func TestAllNodesSamplerInflatesZ(t *testing.T) {
	// localized mildly-attracting events on a sparse graph: legal
	// sampling vs all-nodes sampling. The §3.2 argument predicts the
	// all-nodes z exceeds the legal one.
	rng := rand.New(rand.NewPCG(206, 1))
	g := graphgen.ErdosRenyi(800, 1200, rng)
	va := make([]graph.NodeID, 12)
	vb := make([]graph.NodeID, 12)
	for i := range va {
		va[i] = graph.NodeID(rng.IntN(150))
		vb[i] = graph.NodeID(rng.IntN(150))
	}
	p := MustNewProblem(g, graph.NewNodeSet(800, va), graph.NewNodeSet(800, vb))

	legal, err := Test(p, Options{H: 1, SampleSize: 400, Alpha: 0.05,
		Rand: rand.New(rand.NewPCG(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := Test(p, Options{H: 1, SampleSize: 400, Alpha: 0.05,
		Sampler: &AllNodesSampler{}, Rand: rand.New(rand.NewPCG(1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if inflated.Z <= legal.Z {
		t.Errorf("all-nodes z = %.2f not above legal z = %.2f", inflated.Z, legal.Z)
	}
	if inflated.SamplerName != "all-nodes(invalid)" {
		t.Errorf("sampler name = %q", inflated.SamplerName)
	}
}

func TestAllNodesSamplerTinyGraph(t *testing.T) {
	g := graph.Path(1)
	va := graph.NewNodeSet(1, []graph.NodeID{0})
	p := MustNewProblem(g, va, va)
	s := &AllNodesSampler{}
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := s.SampleReferences(p, 1, 5, rng); err != ErrTooFewReferences {
		t.Errorf("err = %v, want ErrTooFewReferences", err)
	}
}
