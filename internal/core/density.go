package core

import (
	"tesc/internal/graph"
)

// Density holds every per-reference-node quantity one h-hop BFS yields.
//
// A single traversal from r computes the vicinity size |V^h_r|, the two
// event occurrence counts, and the event-node count |Va∪b ∩ V^h_r| that
// the importance-sampling estimator needs for p(r) — the shared-BFS
// optimization called out in DESIGN.md: evaluating p(r) costs nothing on
// top of the density pass.
type Density struct {
	VicinitySize int // |V^h_r|, the normalizing "area" of Eq. 2
	CountA       int // |Va ∩ V^h_r|
	CountB       int // |Vb ∩ V^h_r|
	CountUnion   int // |Va∪b ∩ V^h_r|, numerator of p(r)·Nsum

	// SumA and SumB are the intensity-weighted occurrence masses; they
	// equal CountA/CountB when the problem has unit intensities.
	SumA, SumB float64
}

// SA returns s^h_a(r) = SumA / VicinitySize (Eq. 2, intensity-weighted).
func (d Density) SA() float64 { return d.SumA / float64(d.VicinitySize) }

// SB returns s^h_b(r).
func (d Density) SB() float64 { return d.SumB / float64(d.VicinitySize) }

// InSight reports whether r sees at least one event occurrence — i.e.
// whether r is a legal reference node (Definition 3; §3.2 excludes
// "out-of-sight" nodes).
func (d Density) InSight() bool { return d.CountUnion > 0 }

// DensitySource abstracts the density phase of a TESC test: given the
// sampled reference nodes it produces the paired density vectors and
// the per-node Density records. DensityEvaluator is the default
// implementation; screen's cross-pair memo substitutes one that reuses
// traversals across event pairs (Options.Densities).
//
// ds may be nil: custom sources only serve uniform samples (Test
// rejects them for importance-weighted ones), and the uniform
// statistics consume only sa/sb — the per-node records exist for the
// weighted estimator and diagnostics. Sources that can produce them
// cheaply should; screen's memo skips them to keep a standing query's
// re-screen free of O(n) record construction.
//
// Traversals reports the cumulative number of h-hop BFS performed by
// the source since its creation; Test differences it around the EvalAll
// call to attribute traversal counts to one test.
type DensitySource interface {
	EvalAll(rs []graph.NodeID) (sa, sb []float64, ds []Density)
	Traversals() int64
}

// DensityEvaluator computes Density records over a fixed problem and
// vicinity level, reusing one BFS engine. Not safe for concurrent use.
type DensityEvaluator struct {
	p   *Problem
	h   int
	bfs *graph.BFS
	// Engines, when non-nil and bound to p.G, supplies the private BFS
	// engines EvalAllParallel's workers use, so a pooled serving tier
	// stops allocating O(|V|) traversal scratch per worker per query.
	Engines *graph.EnginePool
	// evaluation counters for the complexity experiments (Fig. 10a)
	BFSCount int64 // number of h-hop traversals performed
}

// NewDensityEvaluator returns an evaluator for p at level h.
func NewDensityEvaluator(p *Problem, h int) *DensityEvaluator {
	return NewDensityEvaluatorBFS(p, h, graph.NewBFS(p.G))
}

// NewDensityEvaluatorBFS is NewDensityEvaluator with a caller-supplied
// BFS engine (typically from a graph.EnginePool), so serving tiers stop
// allocating an O(|V|) mark array per query. The engine must be bound
// to p.G.
func NewDensityEvaluatorBFS(p *Problem, h int, bfs *graph.BFS) *DensityEvaluator {
	if bfs.Graph() != p.G {
		panic("core: BFS engine bound to a different graph")
	}
	return &DensityEvaluator{p: p, h: h, bfs: bfs}
}

// Traversals implements DensitySource.
func (e *DensityEvaluator) Traversals() int64 { return e.BFSCount }

// Eval runs one h-hop BFS from r and returns its Density.
//
// This is the flat fast path: the traversal (BFS.Collect) runs without
// a per-node callback, and the density accumulation is a branch-light
// scan of the visited buffer against the problem's packed label array —
// one byte load per node instead of two bitset probes behind a closure
// call. EvalReference retains the original callback-based kernel; the
// two are bit-identical (see TestFlatKernelMatchesReference), because
// the flat kernel accumulates in the exact visit order of the reference
// path and unit-intensity sums of 1.0 are exact in float64.
func (e *DensityEvaluator) Eval(r graph.NodeID) Density {
	e.BFSCount++
	nodes := e.bfs.Collect([]graph.NodeID{r}, e.h)
	labels := e.p.Labels()
	var d Density
	d.VicinitySize = len(nodes)
	ia, ib := e.p.IntensityA, e.p.IntensityB
	if ia == nil && ib == nil {
		var ca, cb, cu int
		for _, v := range nodes {
			l := labels[v]
			ca += int(l & 1)
			cb += int((l >> 1) & 1)
			cu += int((l >> 2) & 1)
		}
		d.CountA, d.CountB, d.CountUnion = ca, cb, cu
		d.SumA, d.SumB = float64(ca), float64(cb)
		return d
	}
	// Intensity-weighted variant: float64 accumulation order matters for
	// bit-identical sums, so add in the same visit order as the
	// reference kernel.
	for _, v := range nodes {
		l := labels[v]
		if l&LabelA != 0 {
			d.CountA++
			if ia != nil {
				d.SumA += ia[v]
			} else {
				d.SumA++
			}
		}
		if l&LabelB != 0 {
			d.CountB++
			if ib != nil {
				d.SumB += ib[v]
			} else {
				d.SumB++
			}
		}
		if l&LabelUnion != 0 {
			d.CountUnion++
		}
	}
	return d
}

// EvalReference is the original closure-based density kernel: one
// BFS.Run with a visit callback testing the occurrence bitsets per
// node. It is retained as the differential-testing oracle for Eval and
// MultiEvaluator (and is the "before" side of the PR 4 benchmarks); it
// advances BFSCount like Eval.
func (e *DensityEvaluator) EvalReference(r graph.NodeID) Density {
	e.BFSCount++
	var d Density
	va, vb := e.p.Va, e.p.Vb
	ia, ib := e.p.IntensityA, e.p.IntensityB
	e.bfs.Run([]graph.NodeID{r}, e.h, func(v graph.NodeID, _ int) {
		d.VicinitySize++
		inA := va.Contains(v)
		inB := vb.Contains(v)
		if inA {
			d.CountA++
			if ia != nil {
				d.SumA += ia[v]
			} else {
				d.SumA++
			}
		}
		if inB {
			d.CountB++
			if ib != nil {
				d.SumB += ib[v]
			} else {
				d.SumB++
			}
		}
		if inA || inB {
			d.CountUnion++
		}
	})
	return d
}

// EvalAll evaluates every node in rs and returns the parallel density
// vectors s^h_a and s^h_b plus the full records.
func (e *DensityEvaluator) EvalAll(rs []graph.NodeID) (sa, sb []float64, ds []Density) {
	sa = make([]float64, len(rs))
	sb = make([]float64, len(rs))
	ds = make([]Density, len(rs))
	e.evalInto(rs, sa, sb, ds)
	return sa, sb, ds
}

// evalInto is EvalAll into caller-owned slices (len(rs) each), the
// shared core of the sequential and parallel phases.
func (e *DensityEvaluator) evalInto(rs []graph.NodeID, sa, sb []float64, ds []Density) {
	for i, r := range rs {
		d := e.Eval(r)
		ds[i] = d
		sa[i] = d.SA()
		sb[i] = d.SB()
	}
}
