package core

import (
	"tesc/internal/graph"
)

// Density holds every per-reference-node quantity one h-hop BFS yields.
//
// A single traversal from r computes the vicinity size |V^h_r|, the two
// event occurrence counts, and the event-node count |Va∪b ∩ V^h_r| that
// the importance-sampling estimator needs for p(r) — the shared-BFS
// optimization called out in DESIGN.md: evaluating p(r) costs nothing on
// top of the density pass.
type Density struct {
	VicinitySize int // |V^h_r|, the normalizing "area" of Eq. 2
	CountA       int // |Va ∩ V^h_r|
	CountB       int // |Vb ∩ V^h_r|
	CountUnion   int // |Va∪b ∩ V^h_r|, numerator of p(r)·Nsum

	// SumA and SumB are the intensity-weighted occurrence masses; they
	// equal CountA/CountB when the problem has unit intensities.
	SumA, SumB float64
}

// SA returns s^h_a(r) = SumA / VicinitySize (Eq. 2, intensity-weighted).
func (d Density) SA() float64 { return d.SumA / float64(d.VicinitySize) }

// SB returns s^h_b(r).
func (d Density) SB() float64 { return d.SumB / float64(d.VicinitySize) }

// InSight reports whether r sees at least one event occurrence — i.e.
// whether r is a legal reference node (Definition 3; §3.2 excludes
// "out-of-sight" nodes).
func (d Density) InSight() bool { return d.CountUnion > 0 }

// DensityEvaluator computes Density records over a fixed problem and
// vicinity level, reusing one BFS engine. Not safe for concurrent use.
type DensityEvaluator struct {
	p   *Problem
	h   int
	bfs *graph.BFS
	// evaluation counters for the complexity experiments (Fig. 10a)
	BFSCount int64 // number of h-hop traversals performed
}

// NewDensityEvaluator returns an evaluator for p at level h.
func NewDensityEvaluator(p *Problem, h int) *DensityEvaluator {
	return &DensityEvaluator{p: p, h: h, bfs: graph.NewBFS(p.G)}
}

// Eval runs one h-hop BFS from r and returns its Density.
func (e *DensityEvaluator) Eval(r graph.NodeID) Density {
	e.BFSCount++
	var d Density
	va, vb := e.p.Va, e.p.Vb
	ia, ib := e.p.IntensityA, e.p.IntensityB
	e.bfs.Run([]graph.NodeID{r}, e.h, func(v graph.NodeID, _ int) {
		d.VicinitySize++
		inA := va.Contains(v)
		inB := vb.Contains(v)
		if inA {
			d.CountA++
			if ia != nil {
				d.SumA += ia[v]
			} else {
				d.SumA++
			}
		}
		if inB {
			d.CountB++
			if ib != nil {
				d.SumB += ib[v]
			} else {
				d.SumB++
			}
		}
		if inA || inB {
			d.CountUnion++
		}
	})
	return d
}

// EvalAll evaluates every node in rs and returns the parallel density
// vectors s^h_a and s^h_b plus the full records.
func (e *DensityEvaluator) EvalAll(rs []graph.NodeID) (sa, sb []float64, ds []Density) {
	sa = make([]float64, len(rs))
	sb = make([]float64, len(rs))
	ds = make([]Density, len(rs))
	for i, r := range rs {
		d := e.Eval(r)
		ds[i] = d
		sa[i] = d.SA()
		sb[i] = d.SB()
	}
	return sa, sb, ds
}
