package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/vicinity"
)

func erProblem(t *testing.T, n int, m int64, ka, kb int, seed uint64) (*Problem, *vicinity.Index) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	g := graphgen.ErdosRenyi(n, m, rng)
	va := make([]graph.NodeID, ka)
	vb := make([]graph.NodeID, kb)
	for i := range va {
		va[i] = graph.NodeID(rng.IntN(n))
	}
	for i := range vb {
		vb[i] = graph.NodeID(rng.IntN(n))
	}
	p := MustNewProblem(g,
		graph.NewNodeSet(n, va),
		graph.NewNodeSet(n, vb))
	idx, err := vicinity.Build(g, 3, vicinity.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return p, idx
}

// referencePopulation enumerates V^h_{a∪b} directly.
func referencePopulation(p *Problem, h int) *graph.NodeSet {
	bfs := graph.NewBFS(p.G)
	return graph.NewNodeSet(p.G.NumNodes(), bfs.SetVicinity(p.EventNodes(), h, nil))
}

func TestBatchBFSSamplerBasics(t *testing.T) {
	p, _ := erProblem(t, 500, 1500, 20, 20, 71)
	s := &BatchBFSSampler{}
	rng := rand.New(rand.NewPCG(72, 1))
	sample, err := s.SampleReferences(p, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Nodes) != 50 {
		t.Fatalf("got %d nodes, want 50", len(sample.Nodes))
	}
	if sample.Weighted() {
		t.Error("batch BFS sample must be uniform")
	}
	pop := referencePopulation(p, 2)
	if sample.Stats.Population != pop.Len() {
		t.Errorf("Population = %d, want %d", sample.Stats.Population, pop.Len())
	}
	seen := map[graph.NodeID]bool{}
	for _, r := range sample.Nodes {
		if seen[r] {
			t.Fatalf("duplicate reference node %d", r)
		}
		seen[r] = true
		if !pop.Contains(r) {
			t.Fatalf("node %d outside V^h_union", r)
		}
	}
}

func TestBatchBFSSamplerWholePopulation(t *testing.T) {
	// when n >= N the sampler returns the entire population
	p, _ := erProblem(t, 100, 200, 3, 3, 73)
	s := &BatchBFSSampler{}
	rng := rand.New(rand.NewPCG(74, 1))
	sample, err := s.SampleReferences(p, 1, 10_000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pop := referencePopulation(p, 1)
	if len(sample.Nodes) != pop.Len() {
		t.Errorf("got %d nodes, population is %d", len(sample.Nodes), pop.Len())
	}
}

func TestSamplersStayInPopulation(t *testing.T) {
	p, idx := erProblem(t, 400, 1200, 15, 15, 75)
	samplers := []Sampler{
		&BatchBFSSampler{},
		&RejectionSampler{Index: idx},
		&ImportanceSampler{Index: idx},
		&ImportanceSampler{Index: idx, BatchSize: 3},
		&WholeGraphSampler{},
	}
	for _, h := range []int{1, 2} {
		pop := referencePopulation(p, h)
		for _, s := range samplers {
			rng := rand.New(rand.NewPCG(76, uint64(h)))
			sample, err := s.SampleReferences(p, h, 40, rng)
			if err != nil {
				t.Fatalf("%s h=%d: %v", s.Name(), h, err)
			}
			if len(sample.Nodes) < 2 {
				t.Fatalf("%s h=%d: only %d nodes", s.Name(), h, len(sample.Nodes))
			}
			for _, r := range sample.Nodes {
				if !pop.Contains(r) {
					t.Fatalf("%s h=%d: node %d outside V^h_union", s.Name(), h, r)
				}
			}
			// distinctness
			seen := map[graph.NodeID]bool{}
			for _, r := range sample.Nodes {
				if seen[r] {
					t.Fatalf("%s: duplicate node %d", s.Name(), r)
				}
				seen[r] = true
			}
			if sample.Weighted() {
				if len(sample.Freq) != len(sample.Nodes) {
					t.Fatalf("%s: freq length mismatch", s.Name())
				}
				for i, w := range sample.Freq {
					if w < 1 {
						t.Fatalf("%s: freq[%d] = %d", s.Name(), i, w)
					}
				}
			}
		}
	}
}

// TestRejectionSamplerUniform verifies Proposition 1 empirically: on a
// small graph, repeated single draws land uniformly over V^h_{a∪b}
// (χ²-style tolerance).
func TestRejectionSamplerUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	g := graphgen.ErdosRenyi(60, 120, rng)
	va := graph.NewNodeSet(60, []graph.NodeID{3, 17})
	vb := graph.NewNodeSet(60, []graph.NodeID{41})
	p := MustNewProblem(g, va, vb)
	idx, _ := vicinity.Build(g, 2, vicinity.Options{})
	pop := referencePopulation(p, 1)
	N := pop.Len()
	if N < 5 {
		t.Skip("population degenerate for this seed")
	}

	s := &RejectionSampler{Index: idx}
	counts := map[graph.NodeID]int{}
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		// draw exactly one node per call so duplicates across calls are
		// allowed (within a call the sampler dedups)
		sample, err := s.SampleReferences(p, 1, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[sample.Nodes[0]]++
	}
	want := float64(rounds) / float64(N)
	sigma := math.Sqrt(float64(rounds) * (1 / float64(N)) * (1 - 1/float64(N)))
	for _, v := range pop.Members() {
		got := float64(counts[v])
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("node %d drawn %."+"0f times, want %.1f ± %.1f", v, got, want, 5*sigma)
		}
	}
}

// Importance sampling's raw draws must follow p(r) ∝ |V^h_r ∩ Va∪b|
// (§4.2) — verified by frequency accounting over many draws.
func TestImportanceSamplerDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(78, 1))
	g := graphgen.ErdosRenyi(50, 100, rng)
	va := graph.NewNodeSet(50, []graph.NodeID{5, 25})
	vb := graph.NewNodeSet(50, []graph.NodeID{40})
	p := MustNewProblem(g, va, vb)
	idx, _ := vicinity.Build(g, 1, vicinity.Options{})
	pop := referencePopulation(p, 1)
	N := pop.Len()
	if N < 4 {
		t.Skip("degenerate population")
	}

	// expected p(r) ∝ |V^1_r ∩ Va∪b|
	eval := NewDensityEvaluator(p, 1)
	expected := map[graph.NodeID]float64{}
	var total float64
	for _, r := range pop.Members() {
		c := float64(eval.Eval(r).CountUnion)
		expected[r] = c
		total += c
	}

	s := &ImportanceSampler{Index: idx}
	counts := map[graph.NodeID]int64{}
	var draws int64
	const rounds = 3000
	for i := 0; i < rounds; i++ {
		sample, err := s.SampleReferences(p, 1, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		// count only the first draw of each call (unbiased by the
		// distinctness cutoff)
		counts[sample.Nodes[0]]++
		draws++
	}
	for _, r := range pop.Members() {
		want := expected[r] / total * float64(draws)
		got := float64(counts[r])
		pr := expected[r] / total
		sigma := math.Sqrt(float64(draws) * pr * (1 - pr))
		if math.Abs(got-want) > 5*sigma+1 {
			t.Errorf("node %d drawn %.0f times, want %.1f ± %.1f", r, got, want, 5*sigma)
		}
	}
}

func TestWholeGraphSamplerExhaustsSmallGraph(t *testing.T) {
	// every node of a small dense graph is eligible; the sampler must
	// return n distinct nodes quickly with zero out-of-sight examinations
	g := graph.Complete(30)
	va := graph.NewNodeSet(30, []graph.NodeID{0})
	vb := graph.NewNodeSet(30, []graph.NodeID{1})
	p := MustNewProblem(g, va, vb)
	s := &WholeGraphSampler{}
	rng := rand.New(rand.NewPCG(79, 1))
	sample, err := s.SampleReferences(p, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Nodes) != 10 {
		t.Fatalf("got %d nodes", len(sample.Nodes))
	}
	if sample.Stats.OutOfSight != 0 {
		t.Errorf("OutOfSight = %d, want 0 on complete graph", sample.Stats.OutOfSight)
	}
}

func TestWholeGraphSamplerCountsOutOfSight(t *testing.T) {
	// long path, events at one end, h=1: most nodes are out of sight
	g := graph.Path(200)
	va := graph.NewNodeSet(200, []graph.NodeID{0})
	vb := graph.NewNodeSet(200, []graph.NodeID{1})
	p := MustNewProblem(g, va, vb)
	s := &WholeGraphSampler{}
	rng := rand.New(rand.NewPCG(80, 1))
	sample, err := s.SampleReferences(p, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Stats.OutOfSight == 0 {
		t.Error("expected out-of-sight examinations on a sparse path")
	}
	if sample.Stats.Examined != sample.Stats.OutOfSight+int64(len(sample.Nodes)) {
		t.Errorf("stats inconsistent: %+v", sample.Stats)
	}
}

func TestSamplerIndexValidation(t *testing.T) {
	p, idx := erProblem(t, 100, 300, 5, 5, 81)
	rng := rand.New(rand.NewPCG(82, 1))

	// missing index
	if _, err := (&RejectionSampler{}).SampleReferences(p, 1, 10, rng); err == nil {
		t.Error("nil index should fail")
	}
	if _, err := (&ImportanceSampler{}).SampleReferences(p, 1, 10, rng); err == nil {
		t.Error("nil index should fail")
	}
	// insufficient level
	if _, err := (&RejectionSampler{Index: idx}).SampleReferences(p, 5, 10, rng); err == nil {
		t.Error("h beyond index level should fail")
	}
	// index for another graph
	other, _ := vicinity.Build(graph.Path(100), 3, vicinity.Options{})
	if _, err := (&ImportanceSampler{Index: other}).SampleReferences(p, 1, 10, rng); err == nil {
		t.Error("foreign index should fail")
	}
}

func TestSamplerNames(t *testing.T) {
	if (&BatchBFSSampler{}).Name() != "batch-bfs" {
		t.Error("batch name")
	}
	if (&RejectionSampler{}).Name() != "rejection" {
		t.Error("rejection name")
	}
	if (&ImportanceSampler{}).Name() != "importance" {
		t.Error("importance name")
	}
	if (&ImportanceSampler{BatchSize: 4}).Name() != "importance-batch4" {
		t.Error("batched importance name")
	}
	if (&WholeGraphSampler{}).Name() != "whole-graph" {
		t.Error("whole-graph name")
	}
}

func TestTooFewReferences(t *testing.T) {
	// isolated event node: V^h = {v} alone, population of 1 < 2
	g := graph.MustFromEdges(5, [][2]graph.NodeID{{1, 2}, {2, 3}})
	va := graph.NewNodeSet(5, []graph.NodeID{0}) // isolated node 0
	vb := graph.NewNodeSet(5, nil)
	p := MustNewProblem(g, va, vb)
	s := &BatchBFSSampler{}
	rng := rand.New(rand.NewPCG(83, 1))
	if _, err := s.SampleReferences(p, 2, 10, rng); err != ErrTooFewReferences {
		t.Errorf("err = %v, want ErrTooFewReferences", err)
	}
}
