package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

func bigProblem(t *testing.T) *Problem {
	t.Helper()
	rng := rand.New(rand.NewPCG(17, 1))
	g := graphgen.ErdosRenyi(500, 1500, rng)
	occ := func(lo, n int) *graph.NodeSet {
		ids := make([]graph.NodeID, n)
		for i := range ids {
			ids[i] = graph.NodeID(lo + i)
		}
		return graph.NewNodeSet(500, ids)
	}
	return MustNewProblem(g, occ(0, 20), occ(100, 20))
}

func allNodes(n int) []graph.NodeID {
	rs := make([]graph.NodeID, n)
	for i := range rs {
		rs[i] = graph.NodeID(i)
	}
	return rs
}

// A test whose context is dead before it starts reports ErrCanceled
// with the context's cause wrapped, and does no density work.
func TestTestCanceledBeforeStart(t *testing.T) {
	p := bigProblem(t)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opts := DefaultOptions(2)
		opts.SampleSize = 100
		opts.Workers = workers
		opts.Ctx = ctx
		_, err := Test(p, opts)
		if err == nil {
			t.Fatalf("workers=%d: pre-canceled Test returned no error", workers)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want errors.Is(ErrCanceled)", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want the context cause wrapped", workers, err)
		}
	}
}

// An expired deadline surfaces as DeadlineExceeded through the same
// wrap, so callers can map it to a timeout rather than an abort.
func TestTestDeadlineExceeded(t *testing.T) {
	p := bigProblem(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	opts := DefaultOptions(2)
	opts.SampleSize = 100
	opts.Ctx = ctx
	_, err := Test(p, opts)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// EvalAllParallelCtx: a cancel mid-phase stops the workers early and
// reports the cancellation; a nil context runs to completion and
// matches the sequential evaluator bit-for-bit.
func TestEvalAllParallelCtx(t *testing.T) {
	p := bigProblem(t)
	rs := allNodes(500)

	seq := NewDensityEvaluator(p, 2)
	wantSA, wantSB, wantDS := seq.EvalAll(rs)

	par := NewDensityEvaluator(p, 2)
	gotSA, gotSB, gotDS, err := par.EvalAllParallelCtx(nil, rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if gotSA[i] != wantSA[i] || gotSB[i] != wantSB[i] || gotDS[i] != wantDS[i] {
			t.Fatalf("node %d: parallel (%g,%g) != sequential (%g,%g)", i, gotSA[i], gotSB[i], wantSA[i], wantSB[i])
		}
	}
	if par.BFSCount != seq.BFSCount {
		t.Fatalf("parallel BFSCount = %d, sequential %d", par.BFSCount, seq.BFSCount)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev := NewDensityEvaluator(p, 2)
	_, _, _, err = ev.EvalAllParallelCtx(ctx, rs, 4)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled parallel eval: err = %v, want errors.Is(context.Canceled)", err)
	}
	// The workers bailed at a chunk boundary: far fewer traversals than
	// the full 500-node phase.
	if ev.BFSCount >= int64(len(rs)) {
		t.Fatalf("canceled eval still ran all %d traversals", ev.BFSCount)
	}
}

// The sequential ctx-checked path matches the unchecked one.
func TestEvalAllCtxMatchesEvalAll(t *testing.T) {
	p := bigProblem(t)
	rs := allNodes(500)

	seq := NewDensityEvaluator(p, 2)
	wantSA, wantSB, wantDS := seq.EvalAll(rs)

	chk := NewDensityEvaluator(p, 2)
	gotSA, gotSB, gotDS, err := chk.evalAllCtx(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if gotSA[i] != wantSA[i] || gotSB[i] != wantSB[i] || gotDS[i] != wantDS[i] {
			t.Fatalf("node %d: ctx path diverged from EvalAll", i)
		}
	}
}
