package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
	"tesc/internal/stats"
	"tesc/internal/vicinity"
)

func TestTestOptionValidation(t *testing.T) {
	p := pathProblem(t)
	cases := []Options{
		{H: 0, SampleSize: 10, Alpha: 0.05},
		{H: 1, SampleSize: 1, Alpha: 0.05},
		{H: 1, SampleSize: 10, Alpha: 0},
		{H: 1, SampleSize: 10, Alpha: 1},
	}
	for i, o := range cases {
		if _, err := Test(p, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	if _, err := Test(nil, DefaultOptions(1)); err == nil {
		t.Error("nil problem accepted")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions(2)
	if o.H != 2 || o.SampleSize != 900 || o.Alpha != 0.05 {
		t.Errorf("defaults = %+v", o)
	}
}

// Two identical events must be perfectly positively correlated.
func TestIdenticalEventsPerfectlyCorrelated(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 1))
	g := graphgen.ErdosRenyi(300, 900, rng)
	occ := make([]graph.NodeID, 20)
	for i := range occ {
		occ[i] = graph.NodeID(rng.IntN(300))
	}
	va := graph.NewNodeSet(300, occ)
	p := MustNewProblem(g, va, va)
	opts := DefaultOptions(1)
	opts.SampleSize = 100
	opts.Alternative = stats.Greater
	opts.Rand = rng
	res, err := Test(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Identical events can never be discordant: every pair is either
	// concordant or tied, so τ equals the untied-pair fraction.
	k := stats.Kendall(res.SA, res.SB)
	if k.Discordant != 0 {
		t.Errorf("identical events produced %d discordant pairs", k.Discordant)
	}
	if res.Tau <= 0.5 {
		t.Errorf("identical events τ = %g, want strongly positive", res.Tau)
	}
	if !res.Significant || res.Verdict() != "positive" {
		t.Errorf("identical events not detected: %v", res)
	}
}

// A planted strong repulsion must yield a significantly negative z.
func TestSeparatedEventsNegative(t *testing.T) {
	// two far-apart communities on a path-of-cliques
	rng := rand.New(rand.NewPCG(92, 1))
	b := graph.NewBuilder(400)
	for c := 0; c < 8; c++ { // 8 cliques of 50, chained
		base := c * 50
		for i := 0; i < 50; i++ {
			for j := i + 1; j < 50; j += 7 {
				b.AddEdge(graph.NodeID(base+i), graph.NodeID(base+j))
			}
		}
		if c > 0 {
			b.AddEdge(graph.NodeID(base-1), graph.NodeID(base))
		}
	}
	g := b.MustBuild()
	var va, vb []graph.NodeID
	for i := 0; i < 30; i++ {
		va = append(va, graph.NodeID(rng.IntN(100)))     // cliques 0-1
		vb = append(vb, graph.NodeID(300+rng.IntN(100))) // cliques 6-7
	}
	p := MustNewProblem(g, graph.NewNodeSet(400, va), graph.NewNodeSet(400, vb))
	opts := DefaultOptions(1)
	opts.SampleSize = 150
	opts.Alternative = stats.Less
	opts.Rand = rng
	res, err := Test(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Z >= 0 {
		t.Errorf("separated events z = %g, want negative", res.Z)
	}
	if !res.Significant {
		t.Errorf("strong repulsion not significant: %v", res)
	}
}

// Type-I calibration: for independently scattered events, the one-tailed
// rejection rate at α=0.05 must be near 5%.
func TestIndependentEventsCalibration(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 1))
	g := graphgen.ErdosRenyi(800, 3200, rng)
	const trials = 120
	rejected := 0
	for trial := 0; trial < trials; trial++ {
		va := make([]graph.NodeID, 40)
		vb := make([]graph.NodeID, 40)
		for i := range va {
			va[i] = graph.NodeID(rng.IntN(800))
			vb[i] = graph.NodeID(rng.IntN(800))
		}
		p := MustNewProblem(g, graph.NewNodeSet(800, va), graph.NewNodeSet(800, vb))
		opts := DefaultOptions(1)
		opts.SampleSize = 100
		opts.Alternative = stats.Greater
		opts.Rand = rng
		res, err := Test(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	// Binomial(120, 0.05): σ ≈ 0.02; accept within [0, 0.14].
	if rate > 0.14 {
		t.Errorf("Type-I error rate = %.3f, want ≈0.05", rate)
	}
}

// TestSparseIndependenceSkewsNegative pins a real property of the TESC
// measure that screening users must know: for *sparse* independent
// events at small h, most eligible reference nodes see exactly one of
// the two events (the out-of-sight rule admits them for the event they
// do see), and every (a-only, b-only) reference pair is discordant by
// construction. The measure therefore drifts negative under sparse
// independence — the permutation null of §3.1 is calibrated against
// density-vector pairings, not against independent event placement.
// This is why the paper evaluates with one-tailed tests matched to the
// planted polarity, and why its Figure 6(a) recall stays ≈1 even at
// noise 0.9. Two-sided "repulsion" findings between rare events should
// be interpreted with care.
func TestSparseIndependenceSkewsNegative(t *testing.T) {
	rng := rand.New(rand.NewPCG(98, 1))
	g := graphgen.ErdosRenyi(2000, 8000, rng)
	negative := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		va := make([]graph.NodeID, 25) // 1.25% density
		vb := make([]graph.NodeID, 25)
		for i := range va {
			va[i] = graph.NodeID(rng.IntN(2000))
			vb[i] = graph.NodeID(rng.IntN(2000))
		}
		p := MustNewProblem(g, graph.NewNodeSet(2000, va), graph.NewNodeSet(2000, vb))
		res, err := Test(p, Options{H: 1, SampleSize: 200, Alpha: 0.05,
			Alternative: stats.Less, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		if res.Z < 0 {
			negative++
		}
	}
	if negative < trials*3/4 {
		t.Errorf("only %d/%d sparse independent pairs drifted negative; the documented skew vanished", negative, trials)
	}
}

// All samplers must agree on a strong planted signal.
func TestAllSamplersAgreeOnStrongSignal(t *testing.T) {
	rng := rand.New(rand.NewPCG(94, 1))
	cfg := graphgen.PlantedPartitionConfig{Communities: 30, Size: 30, DegreeIn: 8, DegreeOut: 0.5}
	g := graphgen.PlantedPartition(cfg, rng)
	n := g.NumNodes()
	// a and b co-located in the same 10 communities → strong attraction
	var va, vb []graph.NodeID
	for c := 0; c < 10; c++ {
		base := c * 30
		for i := 0; i < 5; i++ {
			va = append(va, graph.NodeID(base+rng.IntN(30)))
			vb = append(vb, graph.NodeID(base+rng.IntN(30)))
		}
	}
	p := MustNewProblem(g, graph.NewNodeSet(n, va), graph.NewNodeSet(n, vb))
	idx, err := vicinity.Build(g, 2, vicinity.Options{})
	if err != nil {
		t.Fatal(err)
	}
	samplers := []Sampler{
		&BatchBFSSampler{},
		&RejectionSampler{Index: idx},
		&ImportanceSampler{Index: idx},
		&ImportanceSampler{Index: idx, BatchSize: 3},
		&WholeGraphSampler{},
	}
	for _, s := range samplers {
		opts := DefaultOptions(2)
		opts.SampleSize = 200
		opts.Sampler = s
		opts.Alternative = stats.Greater
		opts.Rand = rand.New(rand.NewPCG(95, 1))
		res, err := Test(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !res.Significant || res.Z <= 0 {
			t.Errorf("%s missed a strong attraction: %v", s.Name(), res)
		}
		if res.SamplerName != s.Name() {
			t.Errorf("result sampler name %q != %q", res.SamplerName, s.Name())
		}
		if res.Weighted != (s.Name() != "batch-bfs" && s.Name() != "rejection" && s.Name() != "whole-graph") {
			t.Errorf("%s: Weighted = %v", s.Name(), res.Weighted)
		}
	}
}

// The weighted estimator t̃ must approximate the exhaustive τ over the
// full reference population (consistency, Theorem 1).
func TestWeightedEstimatorConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(96, 1))
	g := graphgen.ErdosRenyi(150, 450, rng)
	va := make([]graph.NodeID, 10)
	vb := make([]graph.NodeID, 10)
	for i := range va {
		va[i] = graph.NodeID(rng.IntN(150))
		vb[i] = graph.NodeID(rng.IntN(150))
	}
	p := MustNewProblem(g, graph.NewNodeSet(150, va), graph.NewNodeSet(150, vb))
	idx, _ := vicinity.Build(g, 1, vicinity.Options{})

	// exhaustive τ over the entire population
	pop := referencePopulation(p, 1)
	eval := NewDensityEvaluator(p, 1)
	sa, sb, _ := eval.EvalAll(pop.Members())
	exact := stats.Kendall(sa, sb).Tau

	// importance-sampling estimate with a draw budget far above N
	opts := DefaultOptions(1)
	opts.SampleSize = pop.Len() // force near-complete coverage
	opts.Sampler = &ImportanceSampler{Index: idx}
	opts.Rand = rng
	res, err := Test(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Tau-exact) > 0.15 {
		t.Errorf("t̃ = %.3f vs exhaustive τ = %.3f", res.Tau, exact)
	}
}

func TestResultVerdictAndString(t *testing.T) {
	r := Result{Significant: true, Z: 2.5}
	if r.Verdict() != "positive" {
		t.Error("positive verdict")
	}
	r.Z = -2.5
	if r.Verdict() != "negative" {
		t.Error("negative verdict")
	}
	r.Significant = false
	if r.Verdict() != "independent" {
		t.Error("independent verdict")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

// Deterministic by default: two runs without an explicit Rand must agree.
func TestDeterministicDefaultSeed(t *testing.T) {
	p := pathProblem(t)
	opts := DefaultOptions(1)
	opts.SampleSize = 4
	r1, err1 := Test(p, opts)
	r2, err2 := Test(p, opts)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Tau != r2.Tau || r1.Z != r2.Z {
		t.Errorf("default-seed runs differ: %v vs %v", r1, r2)
	}
}

// Out-of-sight nodes (paper §3.2, Figure 3): including them inflates z.
// We verify the claimed direction by computing τ/z on the legal reference
// population versus the population plus out-of-sight nodes.
func TestOutOfSightInflatesZ(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 1))
	// sparse graph with localized events: plenty of out-of-sight nodes
	g := graphgen.ErdosRenyi(500, 700, rng)
	va := make([]graph.NodeID, 8)
	vb := make([]graph.NodeID, 8)
	for i := range va {
		va[i] = graph.NodeID(rng.IntN(100))
		vb[i] = graph.NodeID(rng.IntN(100)) // co-located: mild attraction
	}
	p := MustNewProblem(g, graph.NewNodeSet(500, va), graph.NewNodeSet(500, vb))

	pop := referencePopulation(p, 1)
	eval := NewDensityEvaluator(p, 1)
	sa, sb, _ := eval.EvalAll(pop.Members())
	legalZ := stats.Kendall(sa, sb).Z

	// add every out-of-sight node
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	saAll, sbAll, _ := eval.EvalAll(all)
	inflatedZ := stats.Kendall(saAll, sbAll).Z

	if inflatedZ <= legalZ {
		t.Errorf("out-of-sight nodes did not inflate z: legal %.2f vs all %.2f", legalZ, inflatedZ)
	}
}
