package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"tesc/internal/graph"
	"tesc/internal/stats"
)

// Statistic selects the rank-correlation statistic aggregating the
// reference densities.
type Statistic int

const (
	// KendallTau is the paper's statistic (Eq. 3/4, tie-corrected normal
	// null via Eq. 6).
	KendallTau Statistic = iota
	// SpearmanRho is the alternative §8 mentions ("Another rank
	// correlation statistic, Spearman's ρ, could also be used"), with
	// the large-sample normal approximation z = ρ√(n−1). Not available
	// with importance-weighted samples.
	SpearmanRho
)

// Options configures a TESC test. The zero value is not valid; use
// DefaultOptions and override.
type Options struct {
	// H is the vicinity level (≥ 1). The paper focuses on h = 1, 2, 3
	// because real networks' small-world growth makes larger vicinities
	// cover most of the graph (§4.2).
	H int
	// SampleSize is the number n of reference nodes to draw. The paper
	// uses 900 throughout (§5.2); Var(t) ≤ 2(1−τ²)/n regardless of the
	// population size, so n need not scale with the graph.
	SampleSize int
	// Sampler selects the reference-node strategy; nil means Batch BFS.
	Sampler Sampler
	// Alternative selects the tested alternative hypothesis; the paper's
	// evaluation uses one-tailed tests (Greater for attraction, Less for
	// repulsion).
	Alternative stats.Alternative
	// Alpha is the significance level (default 0.05, the paper's §5.2).
	Alpha float64
	// Rand supplies randomness; nil means a fixed-seed PCG, making runs
	// reproducible by default.
	Rand *rand.Rand
	// Statistic selects Kendall's τ (default, the paper's measure) or
	// Spearman's ρ.
	Statistic Statistic
	// Workers parallelizes the density phase (n independent h-hop BFS)
	// over a goroutine pool: 0 or 1 evaluates sequentially, negative
	// values select GOMAXPROCS. Results are identical either way.
	Workers int
	// Densities, when non-nil, replaces the built-in density evaluation
	// with a custom source — screen's cross-pair memo injects one that
	// reuses traversals across event pairs. Custom sources are only
	// valid with uniform samplers: the importance estimator needs the
	// per-node union counts a shared-vocabulary source cannot supply.
	// Ignores Workers.
	Densities DensitySource
	// Engines, when non-nil, supplies pooled BFS engines bound to the
	// problem's graph, so repeated tests stop allocating an O(|V|) mark
	// array each (tescd pools one per graph version). Used by the
	// built-in density evaluator and the BatchBFS sampler; ignored when
	// bound to a different graph.
	Engines *graph.EnginePool
	// Ctx, when non-nil, lets a caller abandon the test: the density
	// phase (the dominant cost — n independent h-hop BFS) checks it
	// between chunks of traversals and returns the context's cause
	// wrapped in ErrCanceled. Nil means run to completion.
	Ctx context.Context
}

// ErrCanceled marks a test abandoned through Options.Ctx. Match with
// errors.Is(err, ErrCanceled); the context's cause is wrapped, so
// errors.Is(err, context.Canceled) works too.
var ErrCanceled = fmt.Errorf("tesc: test canceled")

// ctxErr reports the wrapped cancellation cause when ctx is non-nil
// and done, else nil.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
	default:
		return nil
	}
}

// DefaultOptions mirrors the paper's experimental setup: n = 900
// reference nodes, α = 0.05, Batch BFS sampling.
func DefaultOptions(h int) Options {
	return Options{
		H:           h,
		SampleSize:  900,
		Alternative: stats.TwoSided,
		Alpha:       0.05,
	}
}

// Result reports a TESC test outcome.
type Result struct {
	// Tau is the estimated correlation: t(a,b) (Eq. 4) for uniform
	// samples, t̃(a,b) (Eq. 8) for importance-weighted samples.
	Tau float64
	// Z is the significance score of Eq. 7, using the tie-corrected null
	// variance of Eq. 6.
	Z float64
	// P is the p-value under Alternative.
	P float64
	// Significant is P < Alpha.
	Significant bool
	// N is the number of distinct reference nodes actually used.
	N int
	// Alternative and Alpha echo the test configuration.
	Alternative stats.Alternative
	Alpha       float64
	// SamplerName identifies the reference-selection strategy.
	SamplerName string
	// Weighted reports whether the t̃ estimator was used.
	Weighted bool
	// SamplerStats records the sampler's work; DensityBFS the density
	// phase's h-hop traversal count — N with the built-in evaluator,
	// possibly fewer with a memoizing Options.Densities source (screen's
	// cross-pair memo attributes a shared node's traversal to the first
	// pair that needed it).
	SamplerStats SamplerStats
	DensityBFS   int64
	// SA, SB are the reference-node density vectors (diagnostics; length
	// N, aligned with the sampled nodes).
	SA, SB []float64
	// Nodes are the reference nodes used.
	Nodes []graph.NodeID
}

// Verdict classifies the outcome as "positive", "negative" or
// "independent" at the configured level: positive/negative require
// significance with the matching sign.
func (r Result) Verdict() string {
	if !r.Significant {
		return "independent"
	}
	if r.Z > 0 {
		return "positive"
	}
	return "negative"
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("tau=%.4f z=%.2f p=%.4g (%s, n=%d, %s)",
		r.Tau, r.Z, r.P, r.Verdict(), r.N, r.SamplerName)
}

// Test runs the full TESC hypothesis test of §3 on problem p: sample
// reference nodes, evaluate densities, aggregate concordance, assess
// significance.
func Test(p *Problem, opts Options) (Result, error) {
	if p == nil {
		return Result{}, fmt.Errorf("tesc: nil problem")
	}
	if opts.H < 1 {
		return Result{}, fmt.Errorf("tesc: vicinity level H must be >= 1, got %d", opts.H)
	}
	if opts.SampleSize < 2 {
		return Result{}, fmt.Errorf("tesc: sample size must be >= 2, got %d", opts.SampleSize)
	}
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		return Result{}, fmt.Errorf("tesc: alpha must be in (0,1), got %g", opts.Alpha)
	}
	sampler := opts.Sampler
	if sampler == nil {
		sampler = &BatchBFSSampler{Engines: opts.Engines}
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x7e5c, 0x7e5c))
	}

	if err := ctxErr(opts.Ctx); err != nil {
		return Result{}, err
	}

	sample, err := sampler.SampleReferences(p, opts.H, opts.SampleSize, rng)
	if err != nil {
		return Result{}, err
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return Result{}, err
	}

	var sa, sb []float64
	var ds []Density
	var densityBFS int64
	if opts.Densities != nil {
		if sample.Weighted() {
			return Result{}, fmt.Errorf("tesc: custom density sources do not support importance-weighted samples")
		}
		before := opts.Densities.Traversals()
		sa, sb, ds = opts.Densities.EvalAll(sample.Nodes)
		densityBFS = opts.Densities.Traversals() - before
	} else {
		var eval *DensityEvaluator
		if opts.Engines != nil && opts.Engines.Graph() == p.G {
			bfs := opts.Engines.Get()
			defer opts.Engines.Put(bfs)
			eval = NewDensityEvaluatorBFS(p, opts.H, bfs)
			eval.Engines = opts.Engines // parallel workers draw from the pool too
		} else {
			eval = NewDensityEvaluator(p, opts.H)
		}
		if opts.Workers == 0 || opts.Workers == 1 {
			if opts.Ctx != nil {
				sa, sb, ds, err = eval.evalAllCtx(opts.Ctx, sample.Nodes)
			} else {
				sa, sb, ds = eval.EvalAll(sample.Nodes)
			}
		} else {
			sa, sb, ds, err = eval.EvalAllParallelCtx(opts.Ctx, sample.Nodes, opts.Workers)
		}
		if err != nil {
			return Result{}, err
		}
		densityBFS = eval.BFSCount
	}

	res := Result{
		N:            len(sample.Nodes),
		Alternative:  opts.Alternative,
		Alpha:        opts.Alpha,
		SamplerName:  sampler.Name(),
		Weighted:     sample.Weighted(),
		SamplerStats: sample.Stats,
		DensityBFS:   densityBFS,
		SA:           sa,
		SB:           sb,
		Nodes:        sample.Nodes,
	}

	if opts.Statistic == SpearmanRho {
		if sample.Weighted() {
			return Result{}, fmt.Errorf("tesc: Spearman's rho is not available with importance-weighted samples")
		}
		sp := stats.Spearman(sa, sb)
		res.Tau = sp.Rho
		res.Z = sp.Z
	} else if !sample.Weighted() {
		// KendallAuto guarantees the O(n log n) path for n >= the pinned
		// cutoff; the quadratic variant is reserved for tiny samples
		// where its constant factors win (see stats.KendallNaiveCutoff).
		k := stats.KendallAuto(sa, sb)
		res.Tau = k.Tau
		res.Z = k.Z
	} else {
		// Weighted estimator t̃ with ω_i = w_i / p(r_i). p(r_i) =
		// |V^h_{r_i} ∩ Va∪b| / Nsum; Nsum is constant and cancels in the
		// ω products, so the union counts from the shared density BFS
		// suffice.
		omega := make([]float64, len(sample.Nodes))
		for i := range omega {
			cu := ds[i].CountUnion
			if cu < 1 {
				// A reference node produced by importance sampling always
				// sees the event node whose vicinity it was drawn from.
				return Result{}, fmt.Errorf("tesc: internal: sampled out-of-sight node %d", sample.Nodes[i])
			}
			omega[i] = float64(sample.Freq[i]) / float64(cu)
		}
		wt := stats.WeightedTau(sa, sb, omega)
		res.Tau = wt.Tau
		// Significance: t̃ surrogates t (§4.2), so assess it against the
		// same tie-corrected null distribution over the n distinct
		// reference nodes.
		varNum := stats.NumeratorVariance(len(sa), stats.TieSizes(sa), stats.TieSizes(sb))
		res.Z = zFromTau(res.Tau, len(sa), varNum)
	}

	res.P = stats.PValueZ(res.Z, opts.Alternative)
	res.Significant = res.P < opts.Alpha
	return res, nil
}

// zFromTau converts a τ-scale estimate to a z-score using the
// tie-corrected numerator variance: z = τ·n0/σ_c, the Eq. 7 statistic
// expressed for estimators reported on the τ scale.
func zFromTau(tau float64, n int, varNum float64) float64 {
	if varNum <= 0 {
		return 0
	}
	n0 := float64(n) * float64(n-1) / 2
	return stats.ZFromNumerator(tau*n0, varNum)
}
