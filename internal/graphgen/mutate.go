package graphgen

import (
	"math/rand/v2"

	"tesc/internal/graph"
)

// RemoveRandomEdges returns a copy of g with count uniformly chosen edges
// removed (without replacement). If count >= NumEdges the empty-edge
// graph on the same node set is returned. This implements the
// edge-removal half of the paper's graph-density experiment (Figure 8(a)):
// removing edges stretches distances and so breaks planted positive
// correlations.
func RemoveRandomEdges(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	edges := g.Edges()
	if count >= int64(len(edges)) {
		return graph.NewBuilder(g.NumNodes()).MustBuild()
	}
	// Partial Fisher-Yates: move `count` random edges to the tail, keep
	// the head.
	nKeep := int64(len(edges)) - count
	for i := int64(len(edges)) - 1; i >= nKeep; i-- {
		j := rng.Int64N(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	b := graph.NewBuilder(g.NumNodes())
	for _, e := range edges[:nKeep] {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// RemoveOrSame is RemoveRandomEdges that returns g itself when count is
// zero, sparing the copy at the unmutated baseline point of Figure 8.
func RemoveOrSame(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	if count <= 0 {
		return g
	}
	return RemoveRandomEdges(g, count, rng)
}

// AddOrSame is AddRandomEdges that returns g itself when count is zero.
func AddOrSame(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	if count <= 0 {
		return g
	}
	return AddRandomEdges(g, count, rng)
}

// FlipStream generates a reproducible stream of valid edge flips over
// an evolving graph: each Next is an insertion of a currently absent
// edge or a deletion of a currently present one, chosen with the
// configured bias, against the state reached by all earlier flips. It
// is the workload generator of the dynamic-graph subsystem — the
// differential tests and benchmarks drive graph.Delta and
// vicinity.Index.ApplyDelta with it, seeded so every run replays
// exactly.
type FlipStream struct {
	n        int
	directed bool
	rng      *rand.Rand
	insBias  float64
	present  map[uint64]int // edge key → position in edges
	edges    []uint64       // current edge set, for uniform deletion draws
}

// NewFlipStream returns a stream over g's current edge set. insertBias
// is the probability a flip is an insertion (0.5 keeps the edge count
// drifting around its start); deletions draw uniformly from the current
// edges, insertions uniformly from the absent pairs (by rejection).
func NewFlipStream(g *graph.Graph, insertBias float64, rng *rand.Rand) *FlipStream {
	s := &FlipStream{
		n:        g.NumNodes(),
		directed: g.Directed(),
		rng:      rng,
		insBias:  insertBias,
		present:  make(map[uint64]int, g.NumEdges()),
	}
	g.ForEachEdge(func(u, v graph.NodeID) bool {
		s.push(s.key(u, v))
		return true
	})
	return s
}

func (s *FlipStream) key(u, v graph.NodeID) uint64 {
	if !s.directed && u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func (s *FlipStream) push(k uint64) {
	s.present[k] = len(s.edges)
	s.edges = append(s.edges, k)
}

func (s *FlipStream) drop(k uint64) {
	i := s.present[k]
	last := len(s.edges) - 1
	s.edges[i] = s.edges[last]
	s.present[s.edges[i]] = i
	s.edges = s.edges[:last]
	delete(s.present, k)
}

// Next returns the next flip. Insertions are drawn by rejection, so the
// graph must stay clear of complete; deletions require at least one
// edge (an empty graph forces an insertion, a complete one a deletion).
func (s *FlipStream) Next() graph.EdgeChange {
	insert := s.rng.Float64() < s.insBias
	if len(s.edges) == 0 {
		insert = true
	}
	if insert {
		for {
			u := graph.NodeID(s.rng.IntN(s.n))
			v := graph.NodeID(s.rng.IntN(s.n))
			if u == v {
				continue
			}
			k := s.key(u, v)
			if _, ok := s.present[k]; ok {
				continue
			}
			s.push(k)
			return graph.EdgeChange{U: u, V: v, Insert: true}
		}
	}
	k := s.edges[s.rng.IntN(len(s.edges))]
	s.drop(k)
	return graph.EdgeChange{U: graph.NodeID(k >> 32), V: graph.NodeID(uint32(k)), Insert: false}
}

// Take returns the next count flips as a batch.
func (s *FlipStream) Take(count int) []graph.EdgeChange {
	out := make([]graph.EdgeChange, count)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// NumEdges returns the edge count of the state the stream has reached.
func (s *FlipStream) NumEdges() int64 { return int64(len(s.edges)) }

// AddRandomEdges returns a copy of g with count new uniformly chosen
// edges added (duplicates of existing edges are rejected and retried, so
// exactly count new edges appear unless the graph saturates). This is the
// edge-addition half of Figure 8(b): adding edges shrinks distances and
// so breaks planted negative correlations.
func AddRandomEdges(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	n := g.NumNodes()
	maxNew := int64(n)*int64(n-1)/2 - g.NumEdges()
	if count > maxNew {
		count = maxNew
	}
	b := graph.NewBuilder(n)
	g.ForEachEdge(func(u, v graph.NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	seen := make(map[uint64]bool, count)
	var added int64
	for added < count {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] || g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
			continue
		}
		seen[key] = true
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		added++
	}
	return b.MustBuild()
}
