package graphgen

import (
	"math/rand/v2"

	"tesc/internal/graph"
)

// RemoveRandomEdges returns a copy of g with count uniformly chosen edges
// removed (without replacement). If count >= NumEdges the empty-edge
// graph on the same node set is returned. This implements the
// edge-removal half of the paper's graph-density experiment (Figure 8(a)):
// removing edges stretches distances and so breaks planted positive
// correlations.
func RemoveRandomEdges(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	edges := g.Edges()
	if count >= int64(len(edges)) {
		return graph.NewBuilder(g.NumNodes()).MustBuild()
	}
	// Partial Fisher-Yates: move `count` random edges to the tail, keep
	// the head.
	nKeep := int64(len(edges)) - count
	for i := int64(len(edges)) - 1; i >= nKeep; i-- {
		j := rng.Int64N(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	b := graph.NewBuilder(g.NumNodes())
	for _, e := range edges[:nKeep] {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// RemoveOrSame is RemoveRandomEdges that returns g itself when count is
// zero, sparing the copy at the unmutated baseline point of Figure 8.
func RemoveOrSame(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	if count <= 0 {
		return g
	}
	return RemoveRandomEdges(g, count, rng)
}

// AddOrSame is AddRandomEdges that returns g itself when count is zero.
func AddOrSame(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	if count <= 0 {
		return g
	}
	return AddRandomEdges(g, count, rng)
}

// AddRandomEdges returns a copy of g with count new uniformly chosen
// edges added (duplicates of existing edges are rejected and retried, so
// exactly count new edges appear unless the graph saturates). This is the
// edge-addition half of Figure 8(b): adding edges shrinks distances and
// so breaks planted negative correlations.
func AddRandomEdges(g *graph.Graph, count int64, rng *rand.Rand) *graph.Graph {
	n := g.NumNodes()
	maxNew := int64(n)*int64(n-1)/2 - g.NumEdges()
	if count > maxNew {
		count = maxNew
	}
	b := graph.NewBuilder(n)
	g.ForEachEdge(func(u, v graph.NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	seen := make(map[uint64]bool, count)
	var added int64
	for added < count {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] || g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
			continue
		}
		seen[key] = true
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		added++
	}
	return b.MustBuild()
}
