package graphgen

import (
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := ErdosRenyi(100, 300, rng)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("edges = %d, want exactly 300", g.NumEdges())
	}
}

func TestErdosRenyiSaturated(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	g := ErdosRenyi(5, 10, rng) // complete graph
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d, want 10", g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m > max edges")
		}
	}()
	ErdosRenyi(5, 11, rng)
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	g := BarabasiAlbert(500, 3, rng)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// seed clique (k+1 choose 2) + k per additional node
	wantEdges := int64(6 + 3*(500-4))
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// preferential attachment must produce a skewed degree distribution:
	// max degree well above the mean.
	s := graph.ComputeStats(g)
	if float64(s.MaxDegree) < 3*s.AvgDegree {
		t.Errorf("BA max degree %d not skewed vs avg %.1f", s.MaxDegree, s.AvgDegree)
	}
	if s.Components != 1 {
		t.Errorf("BA graph should be connected, got %d components", s.Components)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 1))
	g := WattsStrogatz(200, 3, 0.1, rng)
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// n*k edges before rewiring; rewiring can only create (rare)
	// collisions that the builder dedups.
	if g.NumEdges() < 560 || g.NumEdges() > 600 {
		t.Fatalf("edges = %d, want ≈600", g.NumEdges())
	}
	// beta=0 must be the exact ring lattice.
	ring := WattsStrogatz(50, 2, 0, rng)
	if ring.NumEdges() != 100 {
		t.Fatalf("ring lattice edges = %d, want 100", ring.NumEdges())
	}
	for v := 0; v < 50; v++ {
		if ring.Degree(graph.NodeID(v)) != 4 {
			t.Fatalf("ring node %d degree = %d, want 4", v, ring.Degree(graph.NodeID(v)))
		}
	}
}

func TestPlantedPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 1))
	cfg := PlantedPartitionConfig{Communities: 20, Size: 50, DegreeIn: 6, DegreeOut: 1}
	g := PlantedPartition(cfg, rng)
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d, want 1000", g.NumNodes())
	}
	if cfg.NumNodes() != 1000 {
		t.Fatalf("cfg.NumNodes = %d", cfg.NumNodes())
	}
	// Expected ~3500 distinct edges; the builder dedups collisions so
	// allow slack.
	if g.NumEdges() < 3000 || g.NumEdges() > 3600 {
		t.Fatalf("edges = %d, want ≈3500", g.NumEdges())
	}
	// Count intra vs inter community edges: intra should dominate
	// per-pair density massively.
	var intra, inter int64
	g.ForEachEdge(func(u, v graph.NodeID) bool {
		if cfg.CommunityOf(u) == cfg.CommunityOf(v) {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra < 4*inter {
		t.Errorf("intra=%d inter=%d: community structure too weak", intra, inter)
	}
}

func TestCommunityOf(t *testing.T) {
	cfg := PlantedPartitionConfig{Communities: 3, Size: 10}
	if cfg.CommunityOf(0) != 0 || cfg.CommunityOf(9) != 0 {
		t.Error("nodes 0-9 should be community 0")
	}
	if cfg.CommunityOf(10) != 1 || cfg.CommunityOf(29) != 2 {
		t.Error("community layout wrong")
	}
}

func TestDefaultDBLPSurrogate(t *testing.T) {
	cfg := DefaultDBLPSurrogate(0.05)
	rng := rand.New(rand.NewPCG(6, 1))
	g := PlantedPartition(cfg, rng)
	s := graph.ComputeStats(g)
	if s.AvgDegree < 6 || s.AvgDegree > 8.5 {
		t.Errorf("DBLP surrogate avg degree = %.2f, want ≈7.35", s.AvgDegree)
	}
	// tiny scale clamps to at least 2 communities
	tiny := DefaultDBLPSurrogate(0)
	if tiny.Communities < 2 {
		t.Errorf("communities = %d, want >= 2", tiny.Communities)
	}
}

func TestCoauthorship(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 1))
	cfg := DefaultCoauthorship(0.05)
	g := Coauthorship(cfg, rng)
	if g.NumNodes() != cfg.NumNodes() {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), cfg.NumNodes())
	}
	s := graph.ComputeStats(g)
	// target the DBLP profile: avg degree ≈ 7.35
	if s.AvgDegree < 5.5 || s.AvgDegree > 9 {
		t.Errorf("avg degree = %.2f, want ≈7.35", s.AvgDegree)
	}
	// co-authorship graphs are highly clustered: count triangles around a
	// sample of nodes — a random graph of this density would have nearly
	// none.
	closed, open := 0, 0
	for v := 0; v < 500; v++ {
		ns := g.Neighbors(graph.NodeID(v))
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				open++
				if g.HasEdge(ns[i], ns[j]) {
					closed++
				}
			}
		}
	}
	// ≈0.23 at this scale; an ER graph of equal density has ≈0.004
	if open == 0 || float64(closed)/float64(open) < 0.15 {
		t.Errorf("clustering coefficient = %.2f, want high (clique papers)", float64(closed)/float64(open))
	}
	if cfg.CommunityOf(0) != 0 || cfg.CommunityOf(graph.NodeID(cfg.Size)) != 1 {
		t.Error("community layout wrong")
	}
}

func TestIntrusionGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 1))
	cfg := DefaultIntrusion(3000)
	g := Intrusion(cfg, rng)
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	s := graph.ComputeStats(g)
	// routers absorb whole subnets: hub degree ≈ hosts/hubs ≈ n/4
	if s.MaxDegree < 3000/8 {
		t.Errorf("max degree = %d, want ≈ n/4", s.MaxDegree)
	}
	// subnets are cliques
	members := cfg.SubnetMembers(3)
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if !g.HasEdge(members[i], members[j]) {
				t.Fatalf("subnet 3 not a clique: %d-%d missing", members[i], members[j])
			}
		}
	}
	// layout helpers
	if cfg.SubnetOf(0) != -1 {
		t.Error("hub should have subnet -1")
	}
	if cfg.SubnetOf(members[0]) != 3 {
		t.Errorf("SubnetOf(%d) = %d, want 3", members[0], cfg.SubnetOf(members[0]))
	}
	if cfg.NumSubnets() != (3000-cfg.Hubs+cfg.SubnetSize-1)/cfg.SubnetSize {
		t.Errorf("NumSubnets = %d", cfg.NumSubnets())
	}
	// every host reaches a hub in 1 hop → 2-vicinity of any host covers
	// its router's whole neighborhood (the Intrusion trait)
	b := graph.NewBFS(g)
	host := members[0]
	if v2 := b.VicinitySize(host, 2); v2 < s.MaxDegree/2 {
		t.Errorf("host 2-vicinity = %d, want large", v2)
	}
	// invalid configs panic
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config should panic")
		}
	}()
	Intrusion(IntrusionConfig{Nodes: 5, Hubs: 1, SubnetSize: 8}, rng)
}

func TestHubGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	g := HubGraph(2000, 3, 500, 2, rng)
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	s := graph.ComputeStats(g)
	if s.MaxDegree < 400 {
		t.Errorf("hub max degree = %d, want ≈500", s.MaxDegree)
	}
	// The Intrusion trait (§5.4): 2-vicinity of a hub covers a large
	// fraction of the graph.
	b := graph.NewBFS(g)
	if v2 := b.VicinitySize(0, 2); float64(v2) < 0.5*float64(g.NumNodes()) {
		t.Errorf("hub 2-vicinity = %d of %d nodes, want > half", v2, g.NumNodes())
	}
}

func TestRMAT(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	cfg := DefaultTwitterSurrogate(12) // 4096 nodes
	g := RMAT(cfg, rng)
	if g.NumNodes() != 4096 {
		t.Fatalf("nodes = %d, want 4096", g.NumNodes())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*4096 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	s := graph.ComputeStats(g)
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Errorf("RMAT not skewed: max %d vs avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestRMATBadProbabilities(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for probabilities > 1")
		}
	}()
	RMAT(RMATConfig{Scale: 4, EdgeFactor: 2, A: 0.6, B: 0.3, C: 0.3}, rng)
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1 := ErdosRenyi(50, 100, rand.New(rand.NewPCG(42, 7)))
	g2 := ErdosRenyi(50, 100, rand.New(rand.NewPCG(42, 7)))
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed produced different edges at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestRemoveRandomEdges(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 1))
	g := ErdosRenyi(100, 400, rng)
	g2 := RemoveRandomEdges(g, 150, rng)
	if g2.NumEdges() != 250 {
		t.Fatalf("edges after removal = %d, want 250", g2.NumEdges())
	}
	if g2.NumNodes() != 100 {
		t.Fatalf("node count changed: %d", g2.NumNodes())
	}
	// every surviving edge must exist in the original
	g2.ForEachEdge(func(u, v graph.NodeID) bool {
		if !g.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) not in original", u, v)
		}
		return true
	})
	// removing everything
	g3 := RemoveRandomEdges(g, 10_000, rng)
	if g3.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", g3.NumEdges())
	}
}

func TestAddRandomEdges(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	g := ErdosRenyi(100, 200, rng)
	g2 := AddRandomEdges(g, 100, rng)
	if g2.NumEdges() != 300 {
		t.Fatalf("edges after addition = %d, want 300", g2.NumEdges())
	}
	// all original edges preserved
	g.ForEachEdge(func(u, v graph.NodeID) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("original edge (%d,%d) lost", u, v)
		}
		return true
	})
	// saturation: cannot exceed complete graph
	small := ErdosRenyi(5, 4, rng)
	full := AddRandomEdges(small, 1000, rng)
	if full.NumEdges() != 10 {
		t.Fatalf("saturated edges = %d, want 10", full.NumEdges())
	}
}
