// Package graphgen generates the synthetic graphs that stand in for the
// paper's three datasets (DBLP, Intrusion, Twitter — none of which is
// redistributable) and provides the random edge add/remove mutators used
// by the graph-density experiment (Figure 8).
//
// Generator choice per dataset is documented in DESIGN.md §3:
//
//   - DBLP co-author graph  → PlantedPartition: community structure with
//     dense intra-community and sparse inter-community edges, matching the
//     "mother communities" picture TESC relies on.
//   - Intrusion alert graph → HubGraph: a small set of very-high-degree
//     hubs (the paper reports hub degrees ≈50k and a tiny diameter).
//   - Twitter graph         → RMAT: skewed power-law degree distribution
//     at arbitrary scale for the efficiency experiments.
//
// All generators are deterministic given their *rand.Rand and never
// produce self-loops or duplicate edges (the builder enforces this).
package graphgen

import (
	"fmt"
	"math/rand/v2"

	"tesc/internal/graph"
)

// ErdosRenyi returns a G(n, m) random graph: m distinct uniform edges on
// n nodes. It panics if m exceeds the number of possible edges.
func ErdosRenyi(n int, m int64, rng *rand.Rand) *graph.Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("graphgen: requested %d edges, max is %d", m, maxEdges))
	}
	b := graph.NewBuilder(n)
	seen := make(map[uint64]bool, m)
	var added int64
	for added < m {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		added++
	}
	return b.MustBuild()
}

// BarabasiAlbert returns an n-node preferential-attachment graph where
// each new node attaches k edges to existing nodes with probability
// proportional to their current degree. The first k+1 nodes form a
// clique seed.
func BarabasiAlbert(n, k int, rng *rand.Rand) *graph.Graph {
	if k < 1 || n < k+1 {
		panic("graphgen: BarabasiAlbert requires n >= k+1, k >= 1")
	}
	b := graph.NewBuilder(n)
	// repeated-endpoint list: node v appears deg(v) times, sampling from
	// it is sampling proportional to degree.
	var ends []graph.NodeID
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			ends = append(ends, graph.NodeID(i), graph.NodeID(j))
		}
	}
	targets := make(map[graph.NodeID]bool, k)
	for v := k + 1; v < n; v++ {
		clear(targets)
		for len(targets) < k {
			targets[ends[rng.IntN(len(ends))]] = true
		}
		for u := range targets {
			b.AddEdge(graph.NodeID(v), u)
			ends = append(ends, graph.NodeID(v), u)
		}
	}
	return b.MustBuild()
}

// WattsStrogatz returns an n-node small-world graph: a ring lattice where
// each node connects to its k nearest neighbors on each side, with each
// edge rewired to a uniform random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *graph.Graph {
	if k < 1 || n < 2*k+1 {
		panic("graphgen: WattsStrogatz requires n >= 2k+1, k >= 1")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			u, v := i, (i+j)%n
			if rng.Float64() < beta {
				for {
					w := rng.IntN(n)
					if w != u && w != v {
						v = w
						break
					}
				}
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.MustBuild()
}

// PlantedPartitionConfig parameterizes the DBLP-surrogate generator.
type PlantedPartitionConfig struct {
	Communities int     // number of communities
	Size        int     // nodes per community
	DegreeIn    float64 // expected intra-community degree per node
	DegreeOut   float64 // expected inter-community degree per node
}

// DefaultDBLPSurrogate mirrors the DBLP graph's average degree (~7.35,
// from 964,677 nodes and 3,547,014 edges) at a configurable scale.
// scale = 1.0 yields ≈100k nodes, which keeps the full Figure 5/6 sweeps
// in laptop range; the paper's full size corresponds to scale ≈ 9.6.
func DefaultDBLPSurrogate(scale float64) PlantedPartitionConfig {
	communities := int(1000 * scale)
	if communities < 2 {
		communities = 2
	}
	return PlantedPartitionConfig{
		Communities: communities,
		Size:        100,
		DegreeIn:    6.0,
		DegreeOut:   1.35,
	}
}

// PlantedPartition generates a community graph: Communities blocks of
// Size nodes each, with expected intra-degree DegreeIn and expected
// inter-degree DegreeOut per node.
func PlantedPartition(cfg PlantedPartitionConfig, rng *rand.Rand) *graph.Graph {
	n := cfg.Communities * cfg.Size
	b := graph.NewBuilder(n)
	mIn := int64(float64(n) * cfg.DegreeIn / 2)
	mOut := int64(float64(n) * cfg.DegreeOut / 2)

	// Intra-community edges: pick a community, then two distinct members.
	for e := int64(0); e < mIn; e++ {
		c := rng.IntN(cfg.Communities)
		base := c * cfg.Size
		u := base + rng.IntN(cfg.Size)
		v := base + rng.IntN(cfg.Size)
		if u == v {
			e--
			continue
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	// Inter-community edges: two distinct communities.
	for e := int64(0); e < mOut; e++ {
		c1 := rng.IntN(cfg.Communities)
		c2 := rng.IntN(cfg.Communities)
		if c1 == c2 {
			e--
			continue
		}
		u := c1*cfg.Size + rng.IntN(cfg.Size)
		v := c2*cfg.Size + rng.IntN(cfg.Size)
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.MustBuild()
}

// CommunityOf returns the community index of node v under cfg's layout.
func (cfg PlantedPartitionConfig) CommunityOf(v graph.NodeID) int {
	return int(v) / cfg.Size
}

// NumNodes returns the node count a PlantedPartition with this config
// will have.
func (cfg PlantedPartitionConfig) NumNodes() int {
	return cfg.Communities * cfg.Size
}

// CoauthorshipConfig parameterizes the clique-based DBLP surrogate.
type CoauthorshipConfig struct {
	Communities int     // research communities
	Size        int     // authors per community
	Papers      float64 // papers per author (drives edge count)
	MaxAuthors  int     // max authors per paper (clique size)
	InterFrac   float64 // fraction of papers drawing one author from another community
}

// DefaultCoauthorship mirrors the DBLP co-author graph at a configurable
// scale: papers are small author cliques drawn mostly within a
// community, giving both the community structure and the high clustering
// coefficient (~0.6) of real co-authorship networks — the property that
// makes 1-hop density correlations detectable (neighbors of co-authors
// are usually co-authors themselves). scale = 1.0 yields ≈100k nodes
// with average degree ≈ 7.4.
func DefaultCoauthorship(scale float64) CoauthorshipConfig {
	communities := int(1250 * scale)
	if communities < 2 {
		communities = 2
	}
	return CoauthorshipConfig{
		Communities: communities,
		Size:        80,
		Papers:      1.0,
		MaxAuthors:  7,
		InterFrac:   0.15,
	}
}

// NumNodes returns the node count of the configured graph.
func (cfg CoauthorshipConfig) NumNodes() int { return cfg.Communities * cfg.Size }

// CommunityOf returns the community index of a node.
func (cfg CoauthorshipConfig) CommunityOf(v graph.NodeID) int { return int(v) / cfg.Size }

// Coauthorship generates the clique-based DBLP surrogate: Papers·n/2.5
// papers, each a clique of 2..MaxAuthors authors from one community
// (with probability InterFrac one author comes from a random other
// community, the cross-community collaborations).
func Coauthorship(cfg CoauthorshipConfig, rng *rand.Rand) *graph.Graph {
	n := cfg.NumNodes()
	b := graph.NewBuilder(n)
	numPapers := int(cfg.Papers * float64(n) / 2.5)
	authors := make([]graph.NodeID, 0, cfg.MaxAuthors)
	for p := 0; p < numPapers; p++ {
		c := rng.IntN(cfg.Communities)
		base := c * cfg.Size
		k := 2 + rng.IntN(cfg.MaxAuthors-1)
		authors = authors[:0]
		for len(authors) < k {
			a := graph.NodeID(base + rng.IntN(cfg.Size))
			dup := false
			for _, x := range authors {
				if x == a {
					dup = true
					break
				}
			}
			if !dup {
				authors = append(authors, a)
			}
		}
		if rng.Float64() < cfg.InterFrac && cfg.Communities > 1 {
			oc := rng.IntN(cfg.Communities)
			if oc != c {
				authors[0] = graph.NodeID(oc*cfg.Size + rng.IntN(cfg.Size))
			}
		}
		for i := 0; i < len(authors); i++ {
			for j := i + 1; j < len(authors); j++ {
				b.AddEdge(authors[i], authors[j])
			}
		}
	}
	return b.MustBuild()
}

// IntrusionConfig parameterizes the subnet-clique Intrusion surrogate.
type IntrusionConfig struct {
	Nodes      int // total nodes (hosts + hub routers)
	Hubs       int // router/gateway nodes with very high degree
	SubnetSize int // hosts per subnet (each subnet is a clique)
	// ExtraDegree adds sparse random host-host edges (cross-subnet
	// traffic); keep small so hub partitioning is the only short path
	// between subnets.
	ExtraDegree float64
}

// DefaultIntrusion mirrors the paper's Intrusion alert graph profile at a
// configurable node count: a few router hubs whose degree is a fixed
// quarter-ish fraction of the graph (paper: ≈50k on 200,858 nodes), hosts
// grouped into subnet cliques, each subnet wired to one hub. The clique
// subnets give the local density gradients that make 1-hop alert
// correlations measurable, the hubs give the tiny diameter §5.4 reports.
func DefaultIntrusion(n int) IntrusionConfig {
	return IntrusionConfig{Nodes: n, Hubs: 4, SubnetSize: 8, ExtraDegree: 0.3}
}

// Intrusion generates the subnet-clique surrogate. Nodes 0..Hubs-1 are
// the routers; the remaining nodes are partitioned into consecutive
// subnets of SubnetSize, each fully connected internally and attached to
// one router chosen per subnet.
func Intrusion(cfg IntrusionConfig, rng *rand.Rand) *graph.Graph {
	if cfg.Hubs < 1 || cfg.SubnetSize < 2 || cfg.Nodes <= cfg.Hubs+cfg.SubnetSize {
		panic("graphgen: invalid IntrusionConfig")
	}
	b := graph.NewBuilder(cfg.Nodes)
	hosts := cfg.Nodes - cfg.Hubs
	for start := 0; start < hosts; start += cfg.SubnetSize {
		end := start + cfg.SubnetSize
		if end > hosts {
			end = hosts
		}
		hub := graph.NodeID(rng.IntN(cfg.Hubs))
		for i := start; i < end; i++ {
			u := graph.NodeID(cfg.Hubs + i)
			b.AddEdge(u, hub)
			for j := i + 1; j < end; j++ {
				b.AddEdge(u, graph.NodeID(cfg.Hubs+j))
			}
		}
	}
	extra := int64(float64(cfg.Nodes) * cfg.ExtraDegree / 2)
	for e := int64(0); e < extra; e++ {
		u := cfg.Hubs + rng.IntN(hosts)
		v := cfg.Hubs + rng.IntN(hosts)
		if u == v {
			e--
			continue
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.MustBuild()
}

// SubnetOf returns the subnet index of a host node (-1 for hubs).
func (cfg IntrusionConfig) SubnetOf(v graph.NodeID) int {
	if int(v) < cfg.Hubs {
		return -1
	}
	return (int(v) - cfg.Hubs) / cfg.SubnetSize
}

// SubnetMembers returns the node IDs of subnet s.
func (cfg IntrusionConfig) SubnetMembers(s int) []graph.NodeID {
	hosts := cfg.Nodes - cfg.Hubs
	start := s * cfg.SubnetSize
	end := start + cfg.SubnetSize
	if end > hosts {
		end = hosts
	}
	out := make([]graph.NodeID, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, graph.NodeID(cfg.Hubs+i))
	}
	return out
}

// NumSubnets returns the number of subnets.
func (cfg IntrusionConfig) NumSubnets() int {
	hosts := cfg.Nodes - cfg.Hubs
	return (hosts + cfg.SubnetSize - 1) / cfg.SubnetSize
}

// HubGraph generates a simpler hub-and-spoke graph: hubs high-degree
// nodes each connected to a large random subset of the remaining nodes,
// plus a sparse random background. Used where only the "few huge hubs,
// tiny diameter" trait matters.
func HubGraph(n, hubs int, hubDegree int, backgroundDegree float64, rng *rand.Rand) *graph.Graph {
	if hubs >= n {
		panic("graphgen: HubGraph requires hubs < n")
	}
	b := graph.NewBuilder(n)
	for hub := 0; hub < hubs; hub++ {
		for i := 0; i < hubDegree; i++ {
			v := hubs + rng.IntN(n-hubs)
			b.AddEdge(graph.NodeID(hub), graph.NodeID(v))
		}
	}
	mBg := int64(float64(n) * backgroundDegree / 2)
	for e := int64(0); e < mBg; e++ {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			e--
			continue
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.MustBuild()
}

// RMATConfig parameterizes the recursive-matrix generator used as the
// Twitter surrogate. Probabilities must sum to ~1.
type RMATConfig struct {
	Scale      int     // 2^Scale nodes
	EdgeFactor int     // edges = EdgeFactor * 2^Scale
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
}

// DefaultTwitterSurrogate mirrors the Twitter dataset's average degree
// (0.16B edges over 20M nodes → edge factor 8) with the standard
// Graph500 skew parameters.
func DefaultTwitterSurrogate(scale int) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19}
}

// RMAT generates a power-law graph via the recursive matrix model.
// Duplicate edges and self-loops are dropped by the builder, so the final
// edge count is slightly below EdgeFactor·2^Scale.
func RMAT(cfg RMATConfig, rng *rand.Rand) *graph.Graph {
	n := 1 << cfg.Scale
	m := int64(cfg.EdgeFactor) * int64(n)
	b := graph.NewBuilder(n)
	d := 1 - cfg.A - cfg.B - cfg.C
	if d < -1e-9 {
		panic("graphgen: RMAT probabilities exceed 1")
	}
	for e := int64(0); e < m; e++ {
		u, v := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < cfg.A+cfg.B:
				v |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.MustBuild()
}
