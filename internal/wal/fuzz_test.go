package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzReplayWAL feeds arbitrary bytes to the segment scanner as a
// durable log image. The contract under fuzzing: no panic, no
// unbounded allocation, and re-encoding every record the scan accepts
// must reproduce a decodable record (decode ∘ encode = id on the
// accepted set).
func FuzzReplayWAL(f *testing.F) {
	// Seed with a pristine image and a few structured mutants.
	fsys := NewFaultFS()
	l, _, err := Open("seed", Options{FS: fsys, Policy: SyncAlways})
	if err != nil {
		f.Fatal(err)
	}
	l.Append(&Record{Kind: KindEdges, Graph: "g", Epoch: 2, GraphVersion: 2,
		Changes: []EdgeChange{{U: 0, V: 1, Insert: true}}})
	l.Append(&Record{Kind: KindEvents, Graph: "g", Epoch: 3,
		Add: map[string][]int{"a": {1, 2}}, Remove: map[string][]int{"b": {}}})
	l.Append(&Record{Kind: KindDrop, Graph: "g", Epoch: 3})
	l.Close()
	img := fsys.Bytes("seed/" + segName(1))
	f.Add(img)
	f.Add(img[:len(img)-3])
	forged := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(forged[segHeaderLen:], 0xffffffff)
	f.Add(forged)
	f.Add([]byte("TESCWAL1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := NewFaultFS()
		fsys.SetFile("d/"+segName(1), data)
		l, rec, err := Open("d", Options{FS: fsys})
		if err != nil {
			t.Fatalf("Open must not fail on corrupt segments (skips them): %v", err)
		}
		defer l.Close()
		for i := range rec.Records {
			r := rec.Records[i]
			payload, err := encodeRecord(&r)
			if err != nil {
				t.Fatalf("accepted record %d does not re-encode: %v", i, err)
			}
			back, err := decodeRecord(payload)
			if err != nil {
				t.Fatalf("re-encoded record %d does not decode: %v", i, err)
			}
			if back.Kind != r.Kind || back.Graph != r.Graph || back.Epoch != r.Epoch {
				t.Fatalf("record %d not stable under encode/decode", i)
			}
		}
		// The scanner's own CRC arithmetic must agree with a direct
		// frame walk: every accepted record's payload bytes are
		// present and checksum-clean in the input.
		if len(rec.Records) > 0 {
			off := segHeaderLen
			for range rec.Records {
				plen := binary.LittleEndian.Uint32(data[off:])
				want := binary.LittleEndian.Uint32(data[off+4:])
				payload := data[off+frameLen : off+frameLen+int(plen)]
				if crc32.ChecksumIEEE(payload) != want {
					t.Fatal("accepted record with mismatched CRC")
				}
				off += frameLen + int(plen)
			}
		}
	})
}

// FuzzRecordDecode drives the payload decoder directly.
func FuzzRecordDecode(f *testing.F) {
	for _, r := range []*Record{
		{Kind: KindEdges, Graph: "g", Epoch: 2, GraphVersion: 2, Changes: []EdgeChange{{U: 5, V: 6, Insert: true}}},
		{Kind: KindEvents, Graph: "g", Epoch: 7, Add: map[string][]int{"x": {3}}},
		{Kind: KindCheckpoint, Graph: "g", Epoch: 9},
	} {
		payload, err := encodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeRecord(data)
		if err != nil {
			return
		}
		payload, err := encodeRecord(&r)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		back, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("canonical payload does not decode: %v", err)
		}
		canon, err := encodeRecord(&back)
		if err != nil || !bytes.Equal(canon, payload) {
			t.Fatal("encode not a fixpoint on decoded records")
		}
	})
}
