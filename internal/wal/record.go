package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Kind tags a WAL record. The numbering is part of the on-disk format.
type Kind uint8

const (
	// KindEdges is an applied edge-change batch: exactly the changes
	// ApplyDelta consumed, at the epoch and graph version the mutation
	// published.
	KindEdges Kind = 1
	// KindEvents is an event mutation: occurrence additions and
	// removals applied as one epoch bump.
	KindEvents Kind = 2
	// KindCheckpoint stamps a durable snapshot of the graph at the
	// given epoch. Purely informational — compaction coverage is
	// tracked by the server — but it makes the log self-describing for
	// offline inspection.
	KindCheckpoint Kind = 3
	// KindDrop records the graph's deregistration. Replay ignores all
	// earlier records of the name, so a later re-registration under
	// the same name can never absorb the previous generation's
	// mutations (their epochs would otherwise collide).
	KindDrop Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindEdges:
		return "edges"
	case KindEvents:
		return "events"
	case KindCheckpoint:
		return "checkpoint"
	case KindDrop:
		return "drop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// EdgeChange mirrors tesc.EdgeChange without importing the public
// package: one applied edge flip.
type EdgeChange struct {
	U, V   int
	Insert bool
}

// Record is one logged mutation. Graph and Epoch are set on every
// kind; the remaining fields depend on Kind.
type Record struct {
	Kind  Kind
	Graph string
	// Epoch is the epoch the mutation published (KindEdges,
	// KindEvents), the epoch made durable (KindCheckpoint), or the
	// last epoch of the dropped generation (KindDrop).
	Epoch uint64

	// GraphVersion is the graph version KindEdges published.
	GraphVersion uint64
	// Changes holds the applied edge flips of a KindEdges record.
	Changes []EdgeChange

	// Add and Remove hold a KindEvents record's occurrence additions
	// and removals (event name → node IDs; an empty removal list means
	// the whole event), exactly the mutation-request semantics.
	Add    map[string][]int
	Remove map[string][]int
}

// mutation reports whether the record carries state a replay must
// re-apply (as opposed to log metadata).
func (r *Record) mutation() bool { return r.Kind == KindEdges || r.Kind == KindEvents }

// encodeRecord serializes a record payload (the framing — length and
// CRC — is the segment writer's job). Layout, all little-endian:
//
//	kind u8 | graph name u16+bytes | epoch u64 | kind-specific body
//
//	edges body:  graph version u64 | count u32 | count × {u u32, v u32, flags u8 (bit0 = insert)}
//	events body: add count u32 | add count × {name u16+bytes, n u32, n × node u32}
//	             | remove count u32 | same shape (n = 0 removes the whole event)
//	checkpoint/drop body: empty
//
// Event names are emitted sorted, so the same logical mutation always
// encodes to the same bytes — the differential tests compare logs
// across runs.
func encodeRecord(r *Record) ([]byte, error) {
	if len(r.Graph) > math.MaxUint16 {
		return nil, fmt.Errorf("wal: graph name of %d bytes exceeds the format's %d-byte limit", len(r.Graph), math.MaxUint16)
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(r.Kind))
	buf = appendString(buf, r.Graph)
	buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
	switch r.Kind {
	case KindEdges:
		buf = binary.LittleEndian.AppendUint64(buf, r.GraphVersion)
		if len(r.Changes) > math.MaxUint32 {
			return nil, fmt.Errorf("wal: %d edge changes exceed the format's count field", len(r.Changes))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Changes)))
		for _, c := range r.Changes {
			if c.U < 0 || c.V < 0 || c.U > math.MaxUint32 || c.V > math.MaxUint32 {
				return nil, fmt.Errorf("wal: edge (%d,%d) outside the format's u32 node range", c.U, c.V)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c.V))
			var flags byte
			if c.Insert {
				flags |= 1
			}
			buf = append(buf, flags)
		}
	case KindEvents:
		var err error
		if buf, err = appendEventMap(buf, r.Add, "add"); err != nil {
			return nil, err
		}
		if buf, err = appendEventMap(buf, r.Remove, "remove"); err != nil {
			return nil, err
		}
	case KindCheckpoint, KindDrop:
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendEventMap(buf []byte, m map[string][]int, what string) ([]byte, error) {
	if len(m) > math.MaxUint32 {
		return nil, fmt.Errorf("wal: %d %s events exceed the format's count field", len(m), what)
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
	for _, name := range names {
		if len(name) > math.MaxUint16 {
			return nil, fmt.Errorf("wal: event name of %d bytes exceeds the format's %d-byte limit", len(name), math.MaxUint16)
		}
		nodes := m[name]
		if len(nodes) > math.MaxUint32 {
			return nil, fmt.Errorf("wal: event %q: %d nodes exceed the format's count field", name, len(nodes))
		}
		buf = appendString(buf, name)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nodes)))
		for _, v := range nodes {
			if v < 0 || v > math.MaxUint32 {
				return nil, fmt.Errorf("wal: event %q node %d outside the format's u32 range", name, v)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf, nil
}

// decodeRecord parses one record payload, trusting nothing: every
// count is validated against the bytes actually present before any
// allocation is sized by it, so a hostile payload fails cleanly
// instead of panicking or ballooning memory.
func decodeRecord(b []byte) (Record, error) {
	c := rcursor{b: b}
	kind, err := c.u8()
	if err != nil {
		return Record{}, err
	}
	rec := Record{Kind: Kind(kind)}
	if rec.Graph, err = c.str(); err != nil {
		return Record{}, err
	}
	if rec.Graph == "" {
		return Record{}, fmt.Errorf("wal: record without a graph name")
	}
	if rec.Epoch, err = c.u64(); err != nil {
		return Record{}, err
	}
	switch rec.Kind {
	case KindEdges:
		if rec.GraphVersion, err = c.u64(); err != nil {
			return Record{}, err
		}
		count, err := c.u32()
		if err != nil {
			return Record{}, err
		}
		// 9 bytes per change; a lying count fails before the make.
		if uint64(count)*9 > uint64(c.remaining()) {
			return Record{}, fmt.Errorf("wal: edges record declares %d changes in %d remaining bytes", count, c.remaining())
		}
		rec.Changes = make([]EdgeChange, count)
		for i := range rec.Changes {
			u, _ := c.u32()
			v, _ := c.u32()
			flags, err := c.u8()
			if err != nil {
				return Record{}, err
			}
			if flags&^byte(1) != 0 {
				return Record{}, fmt.Errorf("wal: edges record unknown flag bits %#02x", flags)
			}
			rec.Changes[i] = EdgeChange{U: int(u), V: int(v), Insert: flags&1 != 0}
		}
	case KindEvents:
		if rec.Add, err = c.eventMap(); err != nil {
			return Record{}, err
		}
		if rec.Remove, err = c.eventMap(); err != nil {
			return Record{}, err
		}
	case KindCheckpoint, KindDrop:
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if c.remaining() != 0 {
		return Record{}, fmt.Errorf("wal: record has %d trailing bytes", c.remaining())
	}
	return rec, nil
}

// rcursor is a bounds-checked reader over a record payload.
type rcursor struct {
	b   []byte
	off int
}

func (c *rcursor) remaining() int { return len(c.b) - c.off }

func (c *rcursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("wal: record truncated: need %d bytes at offset %d, have %d", n, c.off, c.remaining())
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *rcursor) u8() (byte, error) {
	b, err := c.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *rcursor) u32() (uint32, error) {
	b, err := c.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *rcursor) u64() (uint64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *rcursor) str() (string, error) {
	b, err := c.bytes(2)
	if err != nil {
		return "", err
	}
	sb, err := c.bytes(int(binary.LittleEndian.Uint16(b)))
	if err != nil {
		return "", err
	}
	return string(sb), nil
}

func (c *rcursor) eventMap() (map[string][]int, error) {
	count, err := c.u32()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	// Each entry is at least 6 bytes (empty name, zero nodes).
	if uint64(count)*6 > uint64(c.remaining()) {
		return nil, fmt.Errorf("wal: events record declares %d entries in %d remaining bytes", count, c.remaining())
	}
	m := make(map[string][]int, count)
	prev := ""
	for i := uint32(0); i < count; i++ {
		name, err := c.str()
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, fmt.Errorf("wal: events record entry %d has empty name", i)
		}
		if i > 0 && name <= prev {
			return nil, fmt.Errorf("wal: events record names not strictly ascending (%q after %q)", name, prev)
		}
		prev = name
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if uint64(n)*4 > uint64(c.remaining()) {
			return nil, fmt.Errorf("wal: event %q declares %d nodes in %d remaining bytes", name, n, c.remaining())
		}
		nodes := make([]int, n)
		for k := range nodes {
			v, _ := c.u32()
			nodes[k] = int(v)
		}
		m[name] = nodes
	}
	return m, nil
}
