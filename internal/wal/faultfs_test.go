package wal

import (
	"errors"
	"io"
	"testing"
)

// TestFaultFSDurabilityModel pins the POSIX semantics the harness
// simulates: file content survives a crash only up to the last Sync,
// and namespace operations (create, rename, remove) survive only past
// a SyncDir of the containing directory.
func TestFaultFSDurabilityModel(t *testing.T) {
	fsys := NewFaultFS()

	f, err := fsys.Create("d/a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Write([]byte("+lost"))
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}

	g, _ := fsys.Create("d/b")
	g.Write([]byte("never synced"))
	g.Sync() // content durable, but the create itself is not dir-synced

	fsys.Crash()

	got := fsys.Bytes("d/a")
	if string(got) != "durable" {
		t.Fatalf("d/a after crash = %q, want synced prefix %q", got, "durable")
	}
	if fsys.Bytes("d/b") != nil {
		t.Fatal("d/b survived a crash without SyncDir of its create")
	}
}

func TestFaultFSRenameDurability(t *testing.T) {
	fsys := NewFaultFS()
	fsys.SetFile("d/target", []byte("old"))

	f, _ := fsys.Create("d/tmp")
	f.Write([]byte("new"))
	f.Sync()
	if err := fsys.Rename("d/tmp", "d/target"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	// Crash before SyncDir: the rename may roll back — exactly the
	// torn-checkpoint bug the snapshot store had to fix.
	fsys.Crash()
	if got := string(fsys.Bytes("d/target")); got != "old" {
		t.Fatalf("un-dir-synced rename survived crash: target = %q", got)
	}
	if fsys.Bytes("d/tmp") != nil {
		t.Fatal("un-dir-synced temp file survived crash")
	}

	// Same sequence with the SyncDir: the rename must stick.
	f, _ = fsys.Create("d/tmp")
	f.Write([]byte("new"))
	f.Sync()
	fsys.Rename("d/tmp", "d/target")
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	fsys.Crash()
	if got := string(fsys.Bytes("d/target")); got != "new" {
		t.Fatalf("dir-synced rename lost: target = %q", got)
	}
}

func TestFaultFSRemoveDurability(t *testing.T) {
	fsys := NewFaultFS()
	fsys.SetFile("d/x", []byte("x"))
	if err := fsys.Remove("d/x"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	fsys.Crash()
	if fsys.Bytes("d/x") == nil {
		t.Fatal("un-dir-synced remove: acceptable either way, but resurrect must restore content")
	}
	fsys.Remove("d/x")
	fsys.SyncDir("d")
	fsys.Crash()
	if fsys.Bytes("d/x") != nil {
		t.Fatal("dir-synced remove rolled back")
	}
}

func TestFaultFSCrashPoint(t *testing.T) {
	fsys := NewFaultFS()
	fsys.SetCrashAfter(2)
	if _, err := fsys.Create("d/a"); err != nil { // step 1
		t.Fatalf("step 1: %v", err)
	}
	if err := fsys.SyncDir("d"); err != nil { // step 2
		t.Fatalf("step 2: %v", err)
	}
	if _, err := fsys.Create("d/b"); !errors.Is(err, ErrCrash) { // step 3: boom
		t.Fatalf("step 3 = %v, want ErrCrash", err)
	}
	if _, err := fsys.Open("d/a"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash open = %v, want ErrCrash", err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() false after trip")
	}
	fsys.Crash()
	if _, err := fsys.Open("d/a"); err != nil {
		t.Fatalf("open after reboot: %v", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	fsys := NewFaultFS()
	fsys.TornWrite = func(size int) int { return 3 }
	f, _ := fsys.Create("d/a")
	fsys.SyncDir("d")
	fsys.SetCrashAfter(0)
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrCrash) {
		t.Fatal("crashing write did not report ErrCrash")
	}
	// The torn prefix is in the live view but was never synced: it
	// must NOT survive the crash (unsynced bytes die with the cache).
	fsys.Crash()
	if got := fsys.Bytes("d/a"); len(got) != 0 {
		t.Fatalf("unsynced torn bytes survived crash: %q", got)
	}
}

func TestFaultFSReaderIsolation(t *testing.T) {
	fsys := NewFaultFS()
	fsys.SetFile("d/a", []byte("one"))
	r, err := fsys.Open("d/a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Writes after open must not bleed into the open reader.
	f, _ := fsys.Create("d/a")
	f.Write([]byte("two"))
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "one" {
		t.Fatalf("reader saw %q (%v), want snapshot %q", got, err, "one")
	}
}
