package wal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// buildLogImage appends a few representative records under SyncAlways
// and returns the single segment's raw bytes.
func buildLogImage(t *testing.T) []byte {
	t.Helper()
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	recs := []*Record{
		edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true}, EdgeChange{U: 2, V: 3, Insert: false}),
		{Kind: KindEvents, Graph: "g", Epoch: 3, Add: map[string][]int{"fire": {1, 4}}, Remove: map[string][]int{"flood": {}}},
		{Kind: KindCheckpoint, Graph: "g", Epoch: 3},
		{Kind: KindDrop, Graph: "g", Epoch: 3},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	segs := fsys.List("data/wal-")
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, have %v", segs)
	}
	return fsys.Bytes(segs[0])
}

// openImage installs raw bytes as a durable segment and scans it.
func openImage(t *testing.T, img []byte) *Recovery {
	t.Helper()
	fsys := NewFaultFS()
	fsys.SetFile("d/"+segName(1), img)
	l, rec, err := Open("d", Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Close()
	return rec
}

// TestTruncateEveryByte cuts the log image at every possible length:
// recovery must never fail hard, never panic, and always return an
// intact prefix of the original records.
func TestTruncateEveryByte(t *testing.T) {
	img := buildLogImage(t)
	full := openImage(t, img)
	if full.Torn || len(full.Records) != 4 {
		t.Fatalf("pristine image: torn=%v records=%d", full.Torn, len(full.Records))
	}
	for cut := 0; cut < len(img); cut++ {
		rec := openImage(t, img[:cut])
		if len(rec.Records) > len(full.Records) {
			t.Fatalf("cut=%d: recovered MORE records (%d) than written", cut, len(rec.Records))
		}
		for i, r := range rec.Records {
			if r.Graph != full.Records[i].Graph || r.Epoch != full.Records[i].Epoch || r.Kind != full.Records[i].Kind {
				t.Fatalf("cut=%d: record %d diverged: %+v vs %+v", cut, i, r, full.Records[i])
			}
		}
		if len(rec.Records) < len(full.Records) && !rec.Torn && cut >= segHeaderLen {
			// A mid-record cut must be reported, not silently absorbed
			// (a cut exactly at a record boundary is legal and clean).
			if !atRecordBoundary(img, cut) {
				t.Fatalf("cut=%d lost records without Torn flag", cut)
			}
		}
	}
}

// atRecordBoundary reports whether offset off in the image falls
// exactly between framed records.
func atRecordBoundary(img []byte, off int) bool {
	at := segHeaderLen
	for at < off {
		if len(img)-at < frameLen {
			return false
		}
		at += frameLen + int(binary.LittleEndian.Uint32(img[at:]))
	}
	return at == off
}

// TestBitFlipEveryByte corrupts each byte of the image in turn: the
// CRC layer must catch every flip that matters — recovery never
// panics, and any record it does return matches the original stream
// up to the first reported tear.
func TestBitFlipEveryByte(t *testing.T) {
	img := buildLogImage(t)
	full := openImage(t, img)
	for i := 0; i < len(img); i++ {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0x40
		rec := openImage(t, mut)
		// Counting intact records is enough: a flip either lands in a
		// record (CRC catches it, scan tears there) or in framing
		// (length/CRC fields stop matching). Either way no corrupted
		// payload may surface as a decoded record.
		for k, r := range rec.Records {
			if k >= len(full.Records) {
				t.Fatalf("flip@%d: phantom record %d", i, k)
			}
			w := full.Records[k]
			if r.Kind != w.Kind || r.Graph != w.Graph || r.Epoch != w.Epoch || r.GraphVersion != w.GraphVersion {
				t.Fatalf("flip@%d: record %d corrupted silently: %+v vs %+v", i, k, r, w)
			}
		}
	}
}

// TestForgedLength rewrites a record's length field with a CRC forged
// to match arbitrary claims: the scanner must reject it without
// allocating the claimed size or panicking.
func TestForgedLength(t *testing.T) {
	img := buildLogImage(t)
	for _, claim := range []uint32{0, MaxRecordBytes + 1, 1 << 31, 0xffffffff} {
		mut := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(mut[segHeaderLen:], claim)
		rec := openImage(t, mut)
		if len(rec.Records) != 0 || !rec.Torn {
			t.Fatalf("claim=%d: records=%d torn=%v, want rejection at record 0", claim, len(rec.Records), rec.Torn)
		}
	}
	// A length that stays in bounds but lies about the payload split,
	// with the CRC recomputed to match the shifted bytes: framing
	// decodes, record decoding must reject the garbage.
	mut := append([]byte(nil), img...)
	plen := binary.LittleEndian.Uint32(mut[segHeaderLen:])
	forged := plen - 3
	binary.LittleEndian.PutUint32(mut[segHeaderLen:], forged)
	binary.LittleEndian.PutUint32(mut[segHeaderLen+4:], crc32.ChecksumIEEE(mut[segHeaderLen+frameLen:segHeaderLen+frameLen+int(forged)]))
	rec := openImage(t, mut)
	if !rec.Torn {
		t.Fatal("forged-CRC short record accepted")
	}
	if len(rec.Records) != 0 {
		t.Fatalf("forged-CRC short record decoded into %+v", rec.Records)
	}
}

// TestBadHeader rejects wrong magic and future versions.
func TestBadHeader(t *testing.T) {
	img := buildLogImage(t)
	mut := append([]byte(nil), img...)
	mut[0] = 'X'
	if rec := openImage(t, mut); !rec.Torn {
		t.Fatal("bad magic accepted")
	}
	mut = append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(mut[8:12], FormatVersion+1)
	if rec := openImage(t, mut); !rec.Torn {
		t.Fatal("future format version accepted")
	}
}
