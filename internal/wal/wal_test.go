package wal

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func edgesRec(graph string, epoch, gv uint64, changes ...EdgeChange) *Record {
	return &Record{Kind: KindEdges, Graph: graph, Epoch: epoch, GraphVersion: gv, Changes: changes}
}

func mustOpen(t *testing.T, fsys FS, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.FS = fsys
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// sameRecords compares decoded records against the originals,
// normalizing nil/empty distinctions the codec does not preserve.
func sameRecords(t *testing.T, got []Record, want []*Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		w := *want[i]
		if len(w.Changes) == 0 {
			w.Changes = nil
		}
		if got[i].Changes != nil && len(got[i].Changes) == 0 {
			got[i].Changes = nil
		}
		if len(w.Add) == 0 {
			w.Add = nil
		}
		if len(w.Remove) == 0 {
			w.Remove = nil
		}
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("record %d:\n got  %+v\n want %+v", i, got[i], w)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	fsys := NewFaultFS()
	l, rec := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	if len(rec.Records) != 0 || rec.Torn {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	recs := []*Record{
		edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true}, EdgeChange{U: 3, V: 2, Insert: false}),
		{Kind: KindEvents, Graph: "g", Epoch: 3,
			Add:    map[string][]int{"b": {4, 5}, "a": {1}},
			Remove: map[string][]int{"c": {}}},
		{Kind: KindCheckpoint, Graph: "g", Epoch: 3},
		edgesRec("g/other", 2, 2, EdgeChange{U: 7, V: 8, Insert: true}),
		{Kind: KindDrop, Graph: "g/other", Epoch: 2},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Appends() != int64(len(recs)) {
		t.Fatalf("Appends = %d, want %d", l.Appends(), len(recs))
	}
	if l.Fsyncs() < int64(len(recs)) {
		t.Fatalf("Fsyncs = %d under SyncAlways with %d appends", l.Fsyncs(), len(recs))
	}
	l.Close()

	l2, rec2 := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l2.Close()
	if rec2.Torn {
		t.Fatalf("unexpected torn log: %v", rec2.TornErr)
	}
	sameRecords(t, rec2.Records, recs)
}

func TestCrashDropsUnsynced(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncOff})
	if err := l.Append(edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Kill()
	fsys.Crash()
	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	// SyncOff never fsynced the record: the crash eats it. The log
	// must still be structurally clean (no torn tail — the whole
	// unsynced suffix vanished).
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records appended under SyncOff across a crash", len(rec.Records))
	}
}

func TestCrashKeepsSynced(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	want := []*Record{
		edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true}),
		edgesRec("g", 3, 3, EdgeChange{U: 1, V: 2, Insert: true}),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Kill() // no graceful close
	fsys.Crash()
	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	if rec.Torn {
		t.Fatalf("torn after clean SyncAlways appends: %v", rec.TornErr)
	}
	sameRecords(t, rec.Records, want)
}

func TestRotationAndCompaction(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	for epoch := uint64(2); epoch <= 6; epoch++ {
		if err := l.Append(edgesRec("g", epoch, epoch, EdgeChange{U: 0, V: int(epoch), Insert: true})); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Rotate(); err != nil {
			t.Fatalf("Rotate: %v", err)
		}
	}
	if got := l.Segments(); got != 6 { // 5 frozen + active
		t.Fatalf("Segments = %d, want 6", got)
	}
	// A checkpoint at epoch 4 covers the first three segments only.
	removed, err := l.Compact(map[string]uint64{"g": 4})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if removed != 3 {
		t.Fatalf("Compact removed %d segments, want 3", removed)
	}
	// Coverage of a graph the map omits is zero, not infinity.
	if removed, _ := l.Compact(map[string]uint64{}); removed != 0 {
		t.Fatalf("empty cover removed %d segments", removed)
	}
	removed, err = l.Compact(map[string]uint64{"g": 6})
	if err != nil || removed != 2 {
		t.Fatalf("Compact = (%d, %v), want (2, nil)", removed, err)
	}
	l.Close()

	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("compacted log still recovers %d records", len(rec.Records))
	}
}

func TestSegmentSizeRotation(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncOff, SegmentBytes: 64})
	var want []*Record
	for epoch := uint64(2); epoch <= 9; epoch++ {
		r := edgesRec("g", epoch, epoch, EdgeChange{U: 0, V: int(epoch), Insert: true})
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("Segments = %d after 8 appends with a 64-byte cap, want several", got)
	}
	l.Close()
	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	sameRecords(t, rec.Records, want)
}

func TestFailedFsyncRejectsAppend(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l.Close()
	if err := l.Append(edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fsys.SetSyncFailAfter(0)
	err := l.Append(edgesRec("g", 3, 3, EdgeChange{U: 1, V: 2, Insert: true}))
	if !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("Append with failing fsync returned %v, want ErrSyncFailed", err)
	}
	// Recovered log: the unacknowledged record may or may not have
	// hit the platter, but the acknowledged one must be there and the
	// stream must decode.
	fsys.SetSyncFailAfter(-1)
	fsys.Crash()
	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	if rec.Torn {
		t.Fatalf("torn log after failed fsync: %v", rec.TornErr)
	}
	if len(rec.Records) < 1 || rec.Records[0].Epoch != 2 {
		t.Fatalf("acknowledged record lost: recovered %+v", rec.Records)
	}
}

func TestAppendAfterWriteErrorRotates(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l.Close()
	if err := l.Append(edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// One torn write: the next append fails, poisoning the log...
	fsys.TornWrite = func(size int) int { return size / 2 }
	fsys.SetCrashAfter(0)
	if err := l.Append(edgesRec("g", 3, 3, EdgeChange{U: 1, V: 2, Insert: true})); err == nil {
		t.Fatal("Append during injected crash succeeded")
	}
	// ...but this process did not die; the fault clears (an EIO that
	// passed). The next append must rotate past the torn tail and
	// produce a decodable stream.
	fsys.TornWrite = nil
	fsys.ClearFault()
	if err := l.Append(edgesRec("g", 3, 3, EdgeChange{U: 1, V: 2, Insert: true})); err != nil {
		t.Fatalf("Append after clearing fault: %v", err)
	}
	l.Close()

	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	// The torn segment stops the scan; the records before the tear
	// must still be intact.
	if len(rec.Records) < 1 || rec.Records[0].Epoch != 2 {
		t.Fatalf("recovered %+v, want the epoch-2 record first", rec.Records)
	}
	if !rec.Torn {
		t.Fatal("scan over a torn segment not flagged Torn")
	}
}

func TestIntervalPolicySyncsOnTimer(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err := l.Append(edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	base := l.Fsyncs()
	deadline := time.Now().Add(2 * time.Second)
	for l.Fsyncs() == base {
		if time.Now().After(deadline) {
			t.Fatal("interval policy never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Kill()
	fsys.Crash()
	l2, rec := mustOpen(t, fsys, "data", Options{})
	defer l2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after interval sync, want 1", len(rec.Records))
	}
}

func TestEncodeRejectsOversizeFields(t *testing.T) {
	if _, err := encodeRecord(&Record{Kind: KindEdges, Graph: "g", Epoch: 2, Changes: []EdgeChange{{U: -1, V: 0}}}); err == nil {
		t.Fatal("negative node encoded")
	}
	long := make([]byte, 1<<17)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := encodeRecord(&Record{Kind: KindCheckpoint, Graph: string(long), Epoch: 2}); err == nil {
		t.Fatal("oversize graph name encoded")
	}
	if _, err := encodeRecord(&Record{Kind: KindEvents, Graph: "g", Epoch: 2, Add: map[string][]int{string(long): {1}}}); err == nil {
		t.Fatal("oversize event name encoded")
	}
}
