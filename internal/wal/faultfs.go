package wal

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// ErrCrash is returned by every FaultFS operation after the injected
// crash point is reached. Callers detect it with errors.Is and treat
// the process as dead.
var ErrCrash = errors.New("faultfs: injected crash")

// ErrSyncFailed is returned by File.Sync when a sync failure has been
// injected. The data's durability is unknown; a correct caller must
// not acknowledge the write.
var ErrSyncFailed = errors.New("faultfs: injected fsync failure")

// FaultFS is a deterministic in-memory filesystem with POSIX crash
// semantics, for fault-injection tests. It models two views of every
// file:
//
//   - the live view — what a running process reads back, including
//     bytes never fsynced and renames never made durable;
//   - the durable view — what survives a crash: per file, only the
//     bytes written before its last successful Sync; per directory,
//     only the creates/renames/removes made before the directory's
//     last SyncDir.
//
// Every state-changing operation costs one step (a Write costs one
// step regardless of size — its torn-prefix behaviour is separately
// controlled by TornWrite). SetCrashAfter arms a crash at a step
// budget: the operation that exceeds it, and every operation after,
// fails with ErrCrash. Crash() then discards the live view and
// re-opens the filesystem at the durable view, simulating a restart.
type FaultFS struct {
	mu sync.Mutex

	// live and durable map path → inode. A file present in live but
	// not durable was created (or renamed in) after the last SyncDir
	// of its directory.
	live    map[string]*memFile
	durable map[string]*memFile

	steps   int64
	limit   int64 // crash when steps would exceed limit; -1 = unarmed
	crashed bool

	syncOK   int64 // remaining Syncs that succeed; -1 = all
	syncFail bool  // once true, every Sync fails (sticky)

	// TornWrite, when non-nil, decides how many bytes of the write
	// that hits the crash point still land (a torn write). nil means
	// the crashing write lands nothing.
	TornWrite func(size int) int
}

// memFile is a shared inode: the live byte content plus the prefix
// length made durable by the last successful Sync.
type memFile struct {
	data   []byte
	synced int
}

// NewFaultFS returns an empty filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		live:    make(map[string]*memFile),
		durable: make(map[string]*memFile),
		limit:   -1,
		syncOK:  -1,
	}
}

// SetCrashAfter arms a crash after n more successful steps (counted
// from the current step count). n = -1 disarms.
func (fs *FaultFS) SetCrashAfter(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n < 0 {
		fs.limit = -1
		return
	}
	fs.limit = fs.steps + n
}

// SetSyncFailAfter makes every Sync after the next n successful ones
// fail with ErrSyncFailed (sticky, like a dying disk). n = -1 disarms.
func (fs *FaultFS) SetSyncFailAfter(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncOK = n
	fs.syncFail = false
}

// Steps returns the number of state-changing operations performed so
// far; the crash-point sweep runs once fault-free to learn the budget,
// then replays the same schedule crashing at every step.
func (fs *FaultFS) Steps() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.steps
}

// Crashed reports whether the armed crash point has been reached.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// ClearFault disarms a tripped crash point without discarding any
// state — a transient I/O error that passed, not a reboot.
func (fs *FaultFS) ClearFault() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
	fs.limit = -1
}

// Crash simulates the machine dying and rebooting: the live namespace
// and all unsynced bytes are discarded, and the filesystem re-opens at
// the durable view. Any armed crash point is disarmed so recovery runs
// fault-free (arm a new one to test crashes during recovery).
func (fs *FaultFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Rebuild both views over fresh inodes truncated to their synced
	// prefix, so handles held across the "reboot" cannot mutate the
	// recovered state.
	next := make(map[string]*memFile, len(fs.durable))
	for p, f := range fs.durable {
		next[p] = &memFile{data: append([]byte(nil), f.data[:f.synced]...), synced: f.synced}
	}
	fs.durable = next
	fs.live = make(map[string]*memFile, len(next))
	for p, f := range next {
		fs.live[p] = f
	}
	fs.crashed = false
	fs.limit = -1
	fs.syncOK = -1
	fs.syncFail = false
}

// step charges one operation against the crash budget. It returns
// ErrCrash when the budget is exhausted.
func (fs *FaultFS) step() error {
	if fs.crashed {
		return ErrCrash
	}
	if fs.limit >= 0 && fs.steps >= fs.limit {
		fs.crashed = true
		return ErrCrash
	}
	fs.steps++
	return nil
}

func (fs *FaultFS) MkdirAll(string) error { return nil }

func (fs *FaultFS) Create(p string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return nil, err
	}
	f := &memFile{}
	fs.live[path.Clean(p)] = f
	return &faultFile{fs: fs, f: f}, nil
}

func (fs *FaultFS) Open(p string) (ReadFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrash
	}
	f, ok := fs.live[path.Clean(p)]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: %w", p, errNotExist)
	}
	// Readers see a stable copy of the live bytes at open time.
	return &faultReader{data: append([]byte(nil), f.data...)}, nil
}

func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrash
	}
	dir = path.Clean(dir)
	var names []string
	for p := range fs.live {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *FaultFS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	p = path.Clean(p)
	if _, ok := fs.live[p]; !ok {
		return fmt.Errorf("faultfs: remove %s: %w", p, errNotExist)
	}
	delete(fs.live, p)
	return nil
}

func (fs *FaultFS) Rename(oldP, newP string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	oldP, newP = path.Clean(oldP), path.Clean(newP)
	f, ok := fs.live[oldP]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: %w", oldP, errNotExist)
	}
	delete(fs.live, oldP)
	fs.live[newP] = f
	return nil
}

// SyncDir makes dir's namespace durable: every live entry under dir
// becomes visible in the durable view, every removed or renamed-away
// entry disappears from it. File CONTENT durability is still governed
// by each file's own Sync, exactly as on POSIX.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	dir = path.Clean(dir)
	for p, f := range fs.live {
		if path.Dir(p) == dir {
			fs.durable[p] = f
		}
	}
	for p := range fs.durable {
		if path.Dir(p) == dir {
			if _, ok := fs.live[p]; !ok {
				delete(fs.durable, p)
			}
		}
	}
	return nil
}

func (fs *FaultFS) IsNotExist(err error) bool { return errors.Is(err, errNotExist) }

var errNotExist = errors.New("file does not exist")

// ---- handles --------------------------------------------------------

type faultFile struct {
	fs *FaultFS
	f  *memFile
}

func (h *faultFile) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		// The crashing write may land a torn prefix — that is exactly
		// what a real power cut mid-write does.
		if errors.Is(err, ErrCrash) && h.fs.TornWrite != nil {
			if n := h.fs.TornWrite(len(b)); n > 0 {
				if n > len(b) {
					n = len(b)
				}
				h.f.data = append(h.f.data, b[:n]...)
			}
		}
		return 0, err
	}
	h.f.data = append(h.f.data, b...)
	return len(b), nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		return err
	}
	if h.fs.syncFail {
		return ErrSyncFailed
	}
	if h.fs.syncOK >= 0 {
		if h.fs.syncOK == 0 {
			h.fs.syncFail = true
			return ErrSyncFailed
		}
		h.fs.syncOK--
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *faultFile) Close() error { return nil }

type faultReader struct {
	data []byte
	off  int
}

func (r *faultReader) Read(b []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(b, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *faultReader) Close() error { return nil }

// ---- test helpers ---------------------------------------------------

// SetFile installs raw bytes as a fully durable file, for corruption
// tests that hand-craft log or snapshot images.
func (fs *FaultFS) SetFile(p string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...), synced: len(data)}
	p = path.Clean(p)
	fs.live[p] = f
	fs.durable[p] = f
}

// Bytes returns a copy of a file's live content, or nil when absent.
func (fs *FaultFS) Bytes(p string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.live[path.Clean(p)]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// List returns every live path with the given prefix, sorted.
func (fs *FaultFS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.live {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
