package wal

import (
	"errors"
	"testing"
)

// shipAll pulls from cur to the log's end with the given batch budget,
// decoding every shipped frame, and returns the records plus the final
// cursor. It fails the test on TooOld or a stalled cursor.
func shipAll(t *testing.T, l *Log, cur ShipCursor, maxBytes int) ([]Record, ShipCursor) {
	t.Helper()
	var out []Record
	for cur.Before(l.EndCursor()) {
		batch, err := l.Ship(cur, maxBytes)
		if err != nil {
			t.Fatalf("Ship(%v): %v", cur, err)
		}
		if batch.TooOld {
			t.Fatalf("Ship(%v): unexpectedly TooOld", cur)
		}
		if batch.Start != cur {
			t.Fatalf("Ship(%v): echoed Start %v", cur, batch.Start)
		}
		off, n := 0, 0
		for off < len(batch.Frames) {
			rec, sz, err := DecodeFrame(batch.Frames[off:])
			if err != nil {
				t.Fatalf("DecodeFrame at %d: %v", off, err)
			}
			out = append(out, rec)
			off += sz
			n++
		}
		if n != batch.Records {
			t.Fatalf("batch declares %d records, decoded %d", batch.Records, n)
		}
		if !cur.Before(batch.Next) {
			t.Fatalf("Ship(%v): cursor did not advance (Next %v)", cur, batch.Next)
		}
		cur = batch.Next
	}
	return out, cur
}

func TestShipStream(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l.Close()
	recs := []*Record{
		edgesRec("g", 2, 2, EdgeChange{U: 0, V: 1, Insert: true}),
		{Kind: KindEvents, Graph: "g", Epoch: 3, Add: map[string][]int{"a": {1, 2}}},
		{Kind: KindCheckpoint, Graph: "g", Epoch: 3},
		edgesRec("g", 4, 3, EdgeChange{U: 5, V: 6, Insert: true}, EdgeChange{U: 0, V: 1, Insert: false}),
		{Kind: KindDrop, Graph: "g", Epoch: 4},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// A tiny budget forces several pulls; a huge one ships in one.
	for _, maxBytes := range []int{1, 1 << 20} {
		got, cur := shipAll(t, l, l.OldestCursor(), maxBytes)
		sameRecords(t, got, recs)
		if cur != l.EndCursor() {
			t.Fatalf("final cursor %v, end %v", cur, l.EndCursor())
		}
		// Pulling at the end returns an empty batch that does not move.
		batch, err := l.Ship(cur, maxBytes)
		if err != nil || batch.TooOld || len(batch.Frames) != 0 || batch.Next != cur {
			t.Fatalf("Ship at end: batch %+v err %v", batch, err)
		}
	}
}

func TestShipAcrossRotation(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l.Close()
	var want []*Record
	for epoch := uint64(2); epoch <= 7; epoch++ {
		r := edgesRec("g", epoch, epoch, EdgeChange{U: int(epoch), V: 0, Insert: true})
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if epoch%2 == 0 {
			if err := l.Rotate(); err != nil {
				t.Fatalf("Rotate: %v", err)
			}
		}
	}
	got, _ := shipAll(t, l, l.OldestCursor(), 1<<20)
	sameRecords(t, got, want)
	// Batches must never span segments: re-pull and check per batch.
	cur := l.OldestCursor()
	for cur.Before(l.EndCursor()) {
		batch, err := l.Ship(cur, 1<<20)
		if err != nil {
			t.Fatalf("Ship: %v", err)
		}
		if len(batch.Frames) > 0 && batch.Next.Seg != cur.Seg && batch.Next != (ShipCursor{Seg: cur.Seg + 1, Off: segHeaderLen}) {
			t.Fatalf("batch from %v spans to %v", cur, batch.Next)
		}
		cur = batch.Next
	}
}

func TestShipTooOldAfterCompaction(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l.Close()
	old := l.OldestCursor()
	if err := l.Append(edgesRec("g", 2, 2, EdgeChange{U: 1, V: 2, Insert: true})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if _, err := l.Compact(map[string]uint64{"g": 2}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	batch, err := l.Ship(old, 1<<20)
	if err != nil {
		t.Fatalf("Ship: %v", err)
	}
	if !batch.TooOld {
		t.Fatalf("Ship(%v) after compaction: want TooOld, got %+v", old, batch)
	}
	// A cursor from a different log generation (past the active
	// segment) is equally unserviceable.
	batch, err = l.Ship(ShipCursor{Seg: 1 << 40, Off: segHeaderLen}, 1<<20)
	if err != nil || !batch.TooOld {
		t.Fatalf("future cursor: batch %+v err %v", batch, err)
	}
}

func TestShipSkipsTornFrozenTail(t *testing.T) {
	fsys := NewFaultFS()
	l, _ := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	intact := edgesRec("g", 2, 2, EdgeChange{U: 1, V: 2, Insert: true})
	if err := l.Append(intact); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append(edgesRec("g", 3, 3, EdgeChange{U: 3, V: 4, Insert: true})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	// Tear the second record: keep the first frame and 3 bytes of the
	// next — a crash mid-append.
	segs := fsys.List("data/" + segPrefix)
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	data := fsys.Bytes(segs[0])
	frame1, err := EncodeFrame(intact)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	fsys.SetFile(segs[0], data[:segHeaderLen+len(frame1)+3])

	l2, rec := mustOpen(t, fsys, "data", Options{Policy: SyncAlways})
	defer l2.Close()
	if !rec.Torn {
		t.Fatalf("recovery did not report the torn tail")
	}
	after := edgesRec("g", 3, 3, EdgeChange{U: 7, V: 8, Insert: true})
	if err := l2.Append(after); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	got, _ := shipAll(t, l2, l2.OldestCursor(), 1<<20)
	sameRecords(t, got, []*Record{intact, after})
}

func TestDecodeFrameErrors(t *testing.T) {
	frame, err := EncodeFrame(edgesRec("g", 2, 2, EdgeChange{U: 1, V: 2, Insert: true}))
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	if _, n, err := DecodeFrame(frame); err != nil || n != len(frame) {
		t.Fatalf("DecodeFrame(intact): n=%d err=%v", n, err)
	}
	// Every truncation is a short frame, never a misdecode.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("DecodeFrame(cut %d): err=%v, want ErrShortFrame", cut, err)
		}
	}
	// Every bit flip in the payload is caught by the CRC.
	for i := frameLen; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := DecodeFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
			t.Fatalf("DecodeFrame(flip %d): err=%v, want corrupt", i, err)
		}
	}
}
