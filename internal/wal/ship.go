package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrShortFrame reports a frame cut off mid-bytes — the wire signature
// of a mid-frame disconnect (or a concurrent append still in flight).
// The bytes before it are intact; a consumer keeps them and re-reads
// from the truncation point.
var ErrShortFrame = errors.New("wal: short frame")

// ShipCursor addresses a byte position in the log for replication: a
// segment sequence number and a byte offset within that segment file.
// Cursors are handed to followers opaquely and echoed back on every
// pull, so a reply can always be matched to the request that asked for
// it — the discard rule that makes reordered, duplicated and delayed
// replies harmless.
type ShipCursor struct {
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Before reports whether c addresses an earlier log position than o.
func (c ShipCursor) Before(o ShipCursor) bool {
	return c.Seg < o.Seg || (c.Seg == o.Seg && c.Off < o.Off)
}

func (c ShipCursor) String() string { return fmt.Sprintf("%d:%d", c.Seg, c.Off) }

// ShipBatch is one pull's worth of log bytes: whole CRC frames only,
// all from a single segment, contiguous from Start.
type ShipBatch struct {
	// Start echoes the requested cursor. A follower discards any batch
	// whose Start is not its current cursor — it is a stale or
	// duplicated reply from an earlier request.
	Start ShipCursor
	// Next is where the following pull should start: past the shipped
	// frames, or at the next segment when this one is exhausted (torn
	// tails of frozen segments are skipped — their records were never
	// acknowledged).
	Next ShipCursor
	// Frames holds the raw frames, byte-identical to the segment file.
	Frames []byte
	// Records counts the frames in Frames.
	Records int
	// TooOld is set when the cursor predates the oldest retained
	// segment (compaction deleted it) or does not address this log at
	// all; the follower must re-bootstrap from snapshots.
	TooOld bool
}

// EncodeFrame serializes one record as a CRC frame — byte-identical to
// what Append writes into a segment. Exposed for the replication tests
// and tools that synthesize log streams.
func EncodeFrame(r *Record) ([]byte, error) {
	payload, err := encodeRecord(r)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameLen:], payload)
	return frame, nil
}

// DecodeFrame parses the first frame of b: the decoded record and the
// frame's total size in bytes. A truncated frame returns ErrShortFrame;
// a corrupt one (bad length, CRC mismatch, undecodable payload) any
// other error. Consumers advance by n per frame, so their cursor
// arithmetic matches the primary's file offsets exactly.
func DecodeFrame(b []byte) (rec Record, n int, err error) {
	if len(b) < frameLen {
		return Record{}, 0, ErrShortFrame
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	wantCRC := binary.LittleEndian.Uint32(b[4:8])
	if plen == 0 || plen > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("wal: record length %d outside (0,%d]", plen, MaxRecordBytes)
	}
	if uint64(len(b)-frameLen) < uint64(plen) {
		return Record{}, 0, ErrShortFrame
	}
	payload := b[frameLen : frameLen+int(plen)]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return Record{}, 0, fmt.Errorf("wal: CRC mismatch (frame %08x, computed %08x)", wantCRC, got)
	}
	rec, err = decodeRecord(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameLen + int(plen), nil
}

// OldestCursor returns the position of the first retained record — the
// start of the oldest segment compaction has not deleted. A fresh
// follower with no local state starts pulling here.
func (l *Log) OldestCursor() ShipCursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.frozen) > 0 {
		return ShipCursor{Seg: l.frozen[0].seq, Off: segHeaderLen}
	}
	return ShipCursor{Seg: l.active.seq, Off: segHeaderLen}
}

// EndCursor returns the position one past the last complete appended
// frame. Bytes a concurrent append is still writing are past it, so
// shipping up to EndCursor never reads a torn tail.
func (l *Log) EndCursor() ShipCursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ShipCursor{Seg: l.active.seq, Off: l.active.bytes}
}

// shipSeg is a point-in-time view of one segment for Ship: taken under
// the log lock, read without it.
type shipSeg struct {
	seq    uint64
	path   string
	limit  int64 // readable bytes (active: complete appends only; frozen: whole file)
	active bool
}

// Ship reads whole frames starting at cur, up to roughly maxBytes, all
// from one segment. It is safe to call concurrently with appends,
// rotation and compaction: the active tail is capped at the last
// complete append, a torn tail in a frozen segment skips to the next
// segment (torn records were never acknowledged, so followers must not
// see them), and a cursor into a compacted-away segment comes back
// TooOld rather than as an error.
func (l *Log) Ship(cur ShipCursor, maxBytes int) (ShipBatch, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ShipBatch{}, fmt.Errorf("wal: log closed")
	}
	segs := make([]shipSeg, 0, len(l.frozen)+1)
	for _, m := range l.frozen {
		segs = append(segs, shipSeg{seq: m.seq, path: m.path, limit: -1})
	}
	segs = append(segs, shipSeg{seq: l.active.seq, path: l.active.path, limit: l.active.bytes, active: true})
	l.mu.Unlock()

	batch := ShipBatch{Start: cur, Next: cur}
	if cur.Seg < segs[0].seq || cur.Seg > segs[len(segs)-1].seq {
		// Before the retained tail (compacted away) or past the active
		// segment (a different log generation): either way the cursor
		// does not address retained bytes.
		batch.TooOld = true
		return batch, nil
	}
	for _, sg := range segs {
		if sg.seq != cur.Seg {
			continue
		}
		data, err := l.readSegment(sg)
		if err != nil {
			if !sg.active {
				// Compaction removed the file between the snapshot above
				// and the read; the cursor is stale.
				batch.TooOld = true
				return batch, nil
			}
			return ShipBatch{}, err
		}
		off := cur.Off
		if off < segHeaderLen {
			off = segHeaderLen
		}
		torn := false
		for off < int64(len(data)) && len(batch.Frames) < maxBytes {
			_, n, err := DecodeFrame(data[off:])
			if err != nil {
				// Torn or corrupt bytes. In the active segment this can
				// only be a poisoned tail a failed append left behind
				// (complete appends end before the limit) — stop here;
				// the next append rotates it away. In a frozen segment it
				// is a crash's torn tail: nothing at or after it was ever
				// acknowledged, so skip to the next segment.
				torn = true
				break
			}
			batch.Frames = append(batch.Frames, data[off:off+int64(n)]...)
			batch.Records++
			off += int64(n)
		}
		if !sg.active && (torn || off >= int64(len(data))) {
			batch.Next = ShipCursor{Seg: sg.seq + 1, Off: segHeaderLen}
		} else {
			batch.Next = ShipCursor{Seg: sg.seq, Off: off}
		}
		return batch, nil
	}
	// cur.Seg sits inside the retained range but no such segment exists
	// — compaction won the race between the bounds check and the scan.
	batch.TooOld = true
	return batch, nil
}

// readSegment reads one segment's shippable bytes: the whole file for
// frozen segments, only complete appends for the active one.
func (l *Log) readSegment(sg shipSeg) ([]byte, error) {
	f, err := l.fs.Open(sg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	limit := int64(1 << 31)
	if sg.limit >= 0 {
		limit = sg.limit
	}
	data, err := io.ReadAll(io.LimitReader(f, limit))
	if err != nil {
		return nil, err
	}
	if len(data) < segHeaderLen {
		return nil, fmt.Errorf("wal: segment %s: short header (%d bytes)", sg.path, len(data))
	}
	if [8]byte(data[:8]) != segMagic {
		return nil, fmt.Errorf("wal: segment %s: bad magic %q", sg.path, data[:8])
	}
	return data, nil
}
