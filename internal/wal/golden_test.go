package wal

import (
	"encoding/hex"
	"testing"
)

// TestRecordWireFormatGolden pins the exact record payload bytes for
// every kind. Replication ships these bytes between peers verbatim, so
// two builds that encode the same logical mutation differently would
// silently diverge — any change here is a wire-format break and needs
// a format-version bump plus a migration story, not a new golden.
func TestRecordWireFormatGolden(t *testing.T) {
	cases := []struct {
		name string
		rec  *Record
		hex  string
	}{
		{
			name: "edges",
			rec: &Record{Kind: KindEdges, Graph: "g", Epoch: 7, GraphVersion: 5, Changes: []EdgeChange{
				{U: 1, V: 2, Insert: true},
				{U: 3, V: 4, Insert: false},
			}},
			hex: "010100670700000000000000050000000000000002000000010000000200000001030000000400000000",
		},
		{
			name: "events",
			rec: &Record{Kind: KindEvents, Graph: "social", Epoch: 9,
				Add:    map[string][]int{"b": {2, 3}, "a": {1}},
				Remove: map[string][]int{"c": {}}},
			hex: "020600736f6369616c09000000000000000200000001006101000000010000000100620200000002000000030000000100000001006300000000",
		},
		{
			name: "checkpoint",
			rec:  &Record{Kind: KindCheckpoint, Graph: "g", Epoch: 12},
			hex:  "030100670c00000000000000",
		},
		{
			name: "drop",
			rec:  &Record{Kind: KindDrop, Graph: "g", Epoch: 13},
			hex:  "040100670d00000000000000",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := encodeRecord(tc.rec)
			if err != nil {
				t.Fatalf("encodeRecord: %v", err)
			}
			if got := hex.EncodeToString(payload); got != tc.hex {
				t.Fatalf("wire format changed:\n got  %s\n want %s", got, tc.hex)
			}
			back, err := decodeRecord(payload)
			if err != nil {
				t.Fatalf("decodeRecord: %v", err)
			}
			if back.Kind != tc.rec.Kind || back.Graph != tc.rec.Graph || back.Epoch != tc.rec.Epoch {
				t.Fatalf("round trip changed the record: %+v", back)
			}
		})
	}
}

// TestFrameWireFormatGolden pins the CRC framing around a payload —
// the other half of what replication peers exchange.
func TestFrameWireFormatGolden(t *testing.T) {
	frame, err := EncodeFrame(&Record{Kind: KindCheckpoint, Graph: "g", Epoch: 12})
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	const want = "0c0000007d3268a2030100670c00000000000000"
	if got := hex.EncodeToString(frame); got != want {
		t.Fatalf("frame format changed:\n got  %s\n want %s", got, want)
	}
}
