package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FormatVersion is the current log-segment format version.
const FormatVersion = 1

// segMagic opens every segment file.
var segMagic = [8]byte{'T', 'E', 'S', 'C', 'W', 'A', 'L', '1'}

const (
	segHeaderLen = 16 // magic + version u32 + reserved u32
	frameLen     = 8  // payload length u32 + CRC32-IEEE u32
	// segPrefix/segExt frame segment file names: wal-%016x.tesclog.
	segPrefix = "wal-"
	segExt    = ".tesclog"
	// MaxRecordBytes bounds a record payload; a forged length field
	// larger than this is rejected before any allocation.
	MaxRecordBytes = 64 << 20
)

// Policy selects when appends reach the platter.
type Policy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// is durable, full stop.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a timer: a crash can lose at most the
	// last interval's acknowledged mutations.
	SyncInterval
	// SyncOff never fsyncs explicitly; durability rides on the OS
	// page cache (still crash-consistent, just not crash-durable).
	SyncOff
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("unknown fsync policy %q (always | interval | off)", s)
	}
}

// Options parameterizes Open.
type Options struct {
	// FS is the filesystem; nil means the real one.
	FS FS
	// Policy is the fsync policy (default SyncAlways).
	Policy Policy
	// Interval is the SyncInterval flush period (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment when it exceeds this
	// size (default 64 MiB).
	SegmentBytes int64
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Records holds every intact record, in append order across
	// segments.
	Records []Record
	// Segments counts the segment files scanned.
	Segments int
	// Torn is set when scanning stopped at a corrupt or truncated
	// record — the expected signature of a crash mid-append. Records
	// still holds the intact prefix.
	Torn bool
	// TornErr describes the defect that stopped the scan.
	TornErr error
}

// Log is an append-only, CRC-framed, segmented mutation log. One
// writer (the server's serialized mutation path) appends; rotation
// freezes the active segment and compaction deletes frozen segments
// once a checkpoint covers every record they hold.
type Log struct {
	fs       FS
	dir      string
	policy   Policy
	segBytes int64

	mu     sync.Mutex
	frozen []*segmentMeta
	active *segmentMeta
	w      File
	closed bool
	// failed poisons the log after an append error: the active
	// segment may end in torn bytes, so the next append first rotates
	// to a clean segment before writing.
	failed error

	appends atomic.Int64
	fsyncs  atomic.Int64
	dirty   atomic.Bool // unsynced appends pending (SyncInterval)

	done     chan struct{}
	tickerWG sync.WaitGroup
}

// segmentMeta tracks one segment file: its highest mutation epoch per
// graph (the compaction coverage test) and whether the boot scan
// failed to account for all of it (unknown ⇒ never compacted).
type segmentMeta struct {
	seq      uint64
	path     string
	bytes    int64
	records  int
	maxEpoch map[string]uint64
	unknown  bool
}

func segName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, seq, segExt)
}

func segSeq(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segExt)
	if !ok {
		return 0, false
	}
	hexSeq, ok := strings.CutPrefix(base, segPrefix)
	if !ok || len(hexSeq) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexSeq, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open scans the log directory, decodes every intact record (stopping
// at the first torn or corrupt one — everything after a tear is
// untrusted), and opens a fresh active segment for new appends. The
// torn tail, if any, stays isolated in its now-frozen segment; it is
// never overwritten and never replayed.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := segSeq(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	l := &Log{
		fs:       fsys,
		dir:      dir,
		policy:   opts.Policy,
		segBytes: opts.SegmentBytes,
		done:     make(chan struct{}),
	}
	rec := &Recovery{}
	var maxSeq uint64
	for _, seq := range seqs {
		maxSeq = seq
		meta := &segmentMeta{seq: seq, path: path.Join(dir, segName(seq)), maxEpoch: make(map[string]uint64)}
		l.frozen = append(l.frozen, meta)
		if rec.Torn {
			// Everything after the tear is untrusted and must never be
			// compacted away silently; mark it unscanned.
			meta.unknown = true
			continue
		}
		rec.Segments++
		if err := scanSegment(fsys, meta, rec); err != nil {
			rec.Torn = true
			rec.TornErr = fmt.Errorf("segment %s: %w", segName(seq), err)
			meta.unknown = true
		}
	}

	// A fresh active segment, made durable before any append can be
	// acknowledged out of it.
	l.active = &segmentMeta{seq: maxSeq + 1, maxEpoch: make(map[string]uint64)}
	l.active.path = path.Join(dir, segName(l.active.seq))
	if err := l.openActive(); err != nil {
		return nil, nil, err
	}

	if l.policy == SyncInterval {
		l.tickerWG.Add(1)
		go l.syncLoop(opts.Interval)
	}
	return l, rec, nil
}

// openActive creates the active segment file, writes its header, and
// makes both the bytes and the directory entry durable.
func (l *Log) openActive() error {
	f, err := l.fs.Create(l.active.path)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.w = f
	l.active.bytes = segHeaderLen
	return nil
}

// scanSegment decodes one segment into rec, filling meta's coverage
// map as it goes.
func scanSegment(fsys FS, meta *segmentMeta, rec *Recovery) error {
	f, err := fsys.Open(meta.path)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(io.LimitReader(f, 1<<31))
	f.Close()
	if err != nil {
		return err
	}
	if len(data) < segHeaderLen {
		return fmt.Errorf("wal: short header (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != segMagic {
		return fmt.Errorf("wal: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return fmt.Errorf("wal: unsupported format version %d (supported: %d)", v, FormatVersion)
	}
	meta.bytes = int64(len(data))
	off := segHeaderLen
	for off < len(data) {
		if len(data)-off < frameLen {
			return fmt.Errorf("wal: torn frame header at offset %d", off)
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if plen == 0 || plen > MaxRecordBytes {
			return fmt.Errorf("wal: record length %d at offset %d outside (0,%d]", plen, off, MaxRecordBytes)
		}
		if uint64(len(data)-off-frameLen) < uint64(plen) {
			return fmt.Errorf("wal: torn record at offset %d: declared %d bytes, have %d", off, plen, len(data)-off-frameLen)
		}
		payload := data[off+frameLen : off+frameLen+int(plen)]
		if got := crc32.ChecksumIEEE(payload); got != wantCRC {
			return fmt.Errorf("wal: CRC mismatch at offset %d (file %08x, computed %08x)", off, wantCRC, got)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: offset %d: %w", off, err)
		}
		rec.Records = append(rec.Records, r)
		meta.records++
		meta.note(&r)
		off += frameLen + int(plen)
	}
	return nil
}

// note folds a record into the segment's compaction-coverage map.
func (m *segmentMeta) note(r *Record) {
	if !r.mutation() {
		return
	}
	if r.Epoch > m.maxEpoch[r.Graph] {
		m.maxEpoch[r.Graph] = r.Epoch
	}
}

// Append logs one record, honoring the fsync policy before returning.
// Under SyncAlways a nil return means the record is durable; any error
// means the caller must NOT acknowledge the mutation.
func (l *Log) Append(r *Record) error {
	frame, err := EncodeFrame(r)
	if err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		// A previous append may have left torn bytes at the active
		// tail; appending after them would corrupt every later record.
		// Rotate to a clean segment first — if even that fails, the
		// log stays poisoned and mutations stay unacknowledged.
		if err := l.rotateLocked(); err != nil {
			return fmt.Errorf("wal: poisoned after %v (rotate failed: %w)", l.failed, err)
		}
		l.failed = nil
	}
	if _, err := l.w.Write(frame); err != nil {
		l.failed = err
		return err
	}
	l.active.bytes += int64(len(frame))
	l.active.records++
	l.active.note(r)
	switch l.policy {
	case SyncAlways:
		if err := l.w.Sync(); err != nil {
			l.failed = err
			return err
		}
		l.fsyncs.Add(1)
	case SyncInterval:
		l.dirty.Store(true)
	}
	l.appends.Add(1)
	if l.active.bytes >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			// The appended record is already durable per policy; a
			// failed rotation only delays compaction.
			l.failed = err
		}
	}
	return nil
}

// Rotate freezes the active segment (when it holds any records) and
// opens a fresh one, so a following checkpoint can cover — and
// compaction delete — everything appended so far.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.active.records == 0 {
		return nil
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	// Flush pending appends into the frozen segment: its records must
	// not be less durable than the active tail's.
	if l.policy != SyncOff {
		if err := l.w.Sync(); err != nil {
			return err
		}
		l.fsyncs.Add(1)
		l.dirty.Store(false)
	}
	l.w.Close()
	old := l.active
	l.frozen = append(l.frozen, old)
	l.active = &segmentMeta{seq: old.seq + 1, maxEpoch: make(map[string]uint64)}
	l.active.path = path.Join(l.dir, segName(l.active.seq))
	return l.openActive()
}

// Compact deletes frozen segments whose every mutation record is
// covered by a durable checkpoint: cover maps graph → last epoch made
// durable (a dropped graph covers everything). Deletion goes oldest
// first and stops at the first uncovered segment, so the surviving log
// is always a contiguous tail.
func (l *Log) Compact(cover map[string]uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.frozen) > 0 {
		seg := l.frozen[0]
		if seg.unknown || !covered(seg.maxEpoch, cover) {
			break
		}
		if err := l.fs.Remove(seg.path); err != nil {
			return removed, err
		}
		l.frozen = l.frozen[1:]
		removed++
	}
	if removed > 0 {
		// The unlinks must be durable before callers may treat the
		// snapshots as the only copy — and, symmetrically, before a
		// crash could resurrect a deleted segment whose graph records
		// were since re-registered under new epochs.
		if err := l.fs.SyncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func covered(maxEpoch, cover map[string]uint64) bool {
	for g, e := range maxEpoch {
		if cover[g] < e {
			return false
		}
	}
	return true
}

// Sync flushes pending appends to disk (SyncInterval's timer calls
// this; shutdown calls it directly).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.failed != nil {
		return l.failed
	}
	if err := l.w.Sync(); err != nil {
		l.failed = err
		return err
	}
	l.fsyncs.Add(1)
	l.dirty.Store(false)
	return nil
}

func (l *Log) syncLoop(interval time.Duration) {
	defer l.tickerWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			if l.dirty.Load() {
				_ = l.Sync()
			}
		}
	}
}

// Close flushes and closes the log (graceful shutdown).
func (l *Log) Close() error {
	l.stopTicker()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.failed == nil && l.policy != SyncOff {
		if err = l.w.Sync(); err == nil {
			l.fsyncs.Add(1)
		}
	}
	l.w.Close()
	return err
}

// Kill abandons the log without flushing — the crash-test half of
// Close. Buffered but unsynced appends are left to their fate, exactly
// as a power cut would.
func (l *Log) Kill() {
	l.stopTicker()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.w.Close()
}

func (l *Log) stopTicker() {
	l.mu.Lock()
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	l.mu.Unlock()
	l.tickerWG.Wait()
}

// Appends returns the number of records appended since Open.
func (l *Log) Appends() int64 { return l.appends.Load() }

// Fsyncs returns the number of fsyncs issued since Open.
func (l *Log) Fsyncs() int64 { return l.fsyncs.Load() }

// Segments returns the current number of segment files (frozen +
// active), for tests asserting compaction.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frozen) + 1
}
