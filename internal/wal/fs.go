// Package wal implements tescd's mutation write-ahead log: an
// append-only, CRC-framed record stream that makes every acknowledged
// mutation durable before it is published, closing the window the
// debounced snapshot store leaves open (ROADMAP item 1). The log is
// segmented; a checkpoint folds the covered tail into the .tescsnap
// store and compaction deletes segments whose every record the
// snapshots already contain.
//
// All I/O goes through the FS interface so tests can substitute a
// deterministic faulty filesystem (FaultFS): crash after operation N,
// torn writes, failed fsyncs, short reads. That harness is what makes
// the recovery claim falsifiable — the crash-point sweep in
// internal/server drives every mutation schedule through every
// injectable crash and proves recovery bit-identical to the uncrashed
// run.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable log or snapshot file. Sync must not return until
// the bytes written so far are durable.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// ReadFile is a sequentially readable file.
type ReadFile interface {
	io.Reader
	Close() error
}

// FS is the filesystem surface the WAL and the snapshot store need.
// The production implementation is OSFS; tests inject FaultFS to
// simulate crashes at any operation boundary.
type FS interface {
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (ReadFile, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes path.
	Remove(path string) error
	// Rename atomically replaces newPath with oldPath's file.
	Rename(oldPath, newPath string) error
	// SyncDir makes dir's namespace operations (create, rename,
	// remove) durable. On POSIX a rename is not crash-safe until the
	// containing directory is fsynced.
	SyncDir(dir string) error
	// IsNotExist reports whether err means the file was absent.
	IsNotExist(err error) bool
}

// OSFS is the production FS: the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Open(path string) (ReadFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// SyncDir fsyncs the directory itself so renames and unlinks survive a
// crash. Filesystems that refuse directory fsync (some network mounts)
// degrade to best-effort.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OSFS) IsNotExist(err error) bool { return os.IsNotExist(err) }
