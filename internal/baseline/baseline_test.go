package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/stats"
)

func TestTransactionCorrelation(t *testing.T) {
	// 10 nodes; a = {0..4}, b = {0..4}: perfect positive TC
	va := graph.NewNodeSet(10, []graph.NodeID{0, 1, 2, 3, 4})
	r, err := TransactionCorrelation(va, va)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.TauB, 1, 1e-12) {
		t.Errorf("identical events τ_b = %g, want 1", r.TauB)
	}
	// disjoint covering events: perfect negative
	vb := graph.NewNodeSet(10, []graph.NodeID{5, 6, 7, 8, 9})
	r2, _ := TransactionCorrelation(va, vb)
	if !almostEqual(r2.TauB, -1, 1e-12) {
		t.Errorf("disjoint covering events τ_b = %g, want -1", r2.TauB)
	}
	// universe mismatch
	bad := graph.NewNodeSet(11, []graph.NodeID{0})
	if _, err := TransactionCorrelation(va, bad); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestTransactionCorrelationAgainstDirectTauB(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 1))
	const n = 500
	var ma, mb []graph.NodeID
	x := make([]float64, n)
	y := make([]float64, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.2 {
			ma = append(ma, graph.NodeID(v))
			x[v] = 1
		}
		if rng.Float64() < 0.3 {
			mb = append(mb, graph.NodeID(v))
			y[v] = 1
		}
	}
	r, err := TransactionCorrelation(graph.NewNodeSet(n, ma), graph.NewNodeSet(n, mb))
	if err != nil {
		t.Fatal(err)
	}
	direct := stats.TauB(x, y)
	if !almostEqual(r.TauB, direct.TauB, 1e-9) || !almostEqual(r.Z, direct.Z, 1e-9) {
		t.Errorf("TC %+v != direct τ_b %+v", r, direct)
	}
}

func TestHittingTimeOnPath(t *testing.T) {
	// path 0-1-2; target {2}; from 2: hit at 0. From 1: first step hits
	// with prob 1/2, expected truncated time small.
	g := graph.Path(3)
	target := graph.NewNodeSet(3, []graph.NodeID{2})
	e := HittingTimeEstimator{MaxSteps: 20, NumWalks: 4000, Decay: 0.5}
	rng := rand.New(rand.NewPCG(122, 1))

	if ht := e.Truncated(g, 2, target, rng); ht != 0 {
		t.Errorf("hitting time from target = %g, want 0", ht)
	}
	if d := e.Decayed(g, 2, target, rng); d != 1 {
		t.Errorf("decayed proximity from target = %g, want 1", d)
	}
	htFrom1 := e.Truncated(g, 1, target, rng)
	htFrom0 := e.Truncated(g, 0, target, rng)
	if htFrom1 >= htFrom0 {
		t.Errorf("hitting time should grow with distance: from1=%g from0=%g", htFrom1, htFrom0)
	}
	dFrom1 := e.Decayed(g, 1, target, rng)
	dFrom0 := e.Decayed(g, 0, target, rng)
	if dFrom1 <= dFrom0 {
		t.Errorf("decayed proximity should shrink with distance: from1=%g from0=%g", dFrom1, dFrom0)
	}
}

func TestHittingTimeUnreachable(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.NodeID{{0, 1}, {2, 3}})
	target := graph.NewNodeSet(4, []graph.NodeID{3})
	e := HittingTimeEstimator{MaxSteps: 15, NumWalks: 200, Decay: 0.5}
	rng := rand.New(rand.NewPCG(123, 1))
	if ht := e.Truncated(g, 0, target, rng); ht != 15 {
		t.Errorf("unreachable target hitting time = %g, want MaxSteps", ht)
	}
	if d := e.Decayed(g, 0, target, rng); d != 0 {
		t.Errorf("unreachable decayed proximity = %g, want 0", d)
	}
	// isolated start node
	g2 := graph.MustFromEdges(2, nil)
	t2 := graph.NewNodeSet(2, []graph.NodeID{1})
	if ht := e.Truncated(g2, 0, t2, rng); ht != 15 {
		t.Errorf("stuck walk hitting time = %g", ht)
	}
}

func TestHittingTimeExactExpectation(t *testing.T) {
	// Two-node path, target {1}: hit at exactly 1 step from node 0.
	g := graph.Path(2)
	target := graph.NewNodeSet(2, []graph.NodeID{1})
	e := HittingTimeEstimator{MaxSteps: 5, NumWalks: 500, Decay: 0.8}
	rng := rand.New(rand.NewPCG(124, 1))
	if ht := e.Truncated(g, 0, target, rng); ht != 1 {
		t.Errorf("deterministic 1-step hit = %g", ht)
	}
	if d := e.Decayed(g, 0, target, rng); !almostEqual(d, 0.8, 1e-12) {
		t.Errorf("decayed = %g, want 0.8", d)
	}
}

func TestIterativeTruncated(t *testing.T) {
	// path 0-1-2 with target {2}: h(2)=0; by symmetry of the chain,
	// h_T(1) = 1 + h_{T-1}(0)/2, h_T(0) = 1 + h_{T-1}(1).
	g := graph.Path(3)
	target := graph.NewNodeSet(3, []graph.NodeID{2})
	e := HittingTimeEstimator{MaxSteps: 50}
	h := e.IterativeTruncated(g, target)
	if h[2] != 0 {
		t.Errorf("h(target) = %g, want 0", h[2])
	}
	// exact expected hitting times on this chain: h(1)=3, h(0)=4
	if !almostEqual(h[1], 3, 1e-6) || !almostEqual(h[0], 4, 1e-6) {
		t.Errorf("h = %v, want [4 3 0]", h)
	}
	// truncation caps values
	e2 := HittingTimeEstimator{MaxSteps: 1}
	h2 := e2.IterativeTruncated(g, target)
	if h2[0] != 1 || h2[1] != 1 {
		t.Errorf("T=1 values = %v, want capped at 1", h2)
	}
	// disconnected nodes stay at MaxSteps
	g3 := graph.MustFromEdges(3, [][2]graph.NodeID{{1, 2}})
	h3 := HittingTimeEstimator{MaxSteps: 9}.IterativeTruncated(g3, graph.NewNodeSet(3, []graph.NodeID{2}))
	if h3[0] != 9 {
		t.Errorf("isolated node h = %g, want MaxSteps", h3[0])
	}
	// iterative and Monte-Carlo estimates agree
	e4 := HittingTimeEstimator{MaxSteps: 20, NumWalks: 20000}
	rng := rand.New(rand.NewPCG(99, 1))
	mc := e4.Truncated(g, 0, target, rng)
	it := e4.IterativeTruncated(g, target)[0]
	if !almostEqual(mc, it, 0.15) {
		t.Errorf("MC %g vs iterative %g", mc, it)
	}
}

func TestPow(t *testing.T) {
	if pow(0.5, 0) != 1 || pow(0.5, 2) != 0.25 {
		t.Error("pow wrong")
	}
}

func TestProximityMinerCounts(t *testing.T) {
	// star: center 0, leaves 1..4. Events: "a" on 1, "b" on 2, "c" on 0.
	g := graph.Star(5)
	occ := map[string][]graph.NodeID{
		"a": {1},
		"b": {2},
		"c": {0},
	}
	m := ProximityMiner{H: 1}
	counts := m.PairSupports(g, occ)
	// 1-vicinity flood: a reaches {1,0}, b reaches {2,0}, c reaches all.
	// {a,b} co-located at node 0 only → 1.
	// {a,c} at nodes 0 and 1 → 2; {b,c} at 0 and 2 → 2.
	if counts[[2]string{"a", "b"}] != 1 {
		t.Errorf("ab = %g, want 1", counts[[2]string{"a", "b"}])
	}
	if counts[[2]string{"a", "c"}] != 2 || counts[[2]string{"b", "c"}] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestProximityMinerThreshold(t *testing.T) {
	g := graph.Star(5)
	occ := map[string][]graph.NodeID{
		"a": {1},
		"b": {2},
		"c": {0},
	}
	// threshold 2/5 → only the support-2 pairs survive
	m := ProximityMiner{H: 1, MinSup: 0.4}
	patterns := m.Mine(g, occ)
	if len(patterns) != 2 {
		t.Fatalf("patterns = %v", patterns)
	}
	for _, p := range patterns {
		if p.Support < 2 {
			t.Errorf("pattern below threshold: %+v", p)
		}
	}
	// sorted by support desc then name
	if patterns[0].Support < patterns[1].Support {
		t.Error("not sorted by support")
	}
	// rare pair {a,b} must be absent — the Table 5 phenomenon
	for _, p := range patterns {
		if p.A == "a" && p.B == "b" {
			t.Error("rare pair should be filtered by minsup")
		}
	}
}

func TestProximityMinerDecay(t *testing.T) {
	// path a-m-b: event a on 0, event b on 2. With H=1 and decay α, node
	// 1 (the middle) aggregates e^-α from each side; nodes 0 and 2 see
	// only their own event.
	g := graph.Path(3)
	occ := map[string][]graph.NodeID{"a": {0}, "b": {2}}
	m := ProximityMiner{H: 1, Alpha: 1}
	counts := m.PairSupports(g, occ)
	want := math.Exp(-1)
	if got := counts[[2]string{"a", "b"}]; !almostEqual(got, want, 1e-6) {
		t.Errorf("decayed support = %g, want %g", got, want)
	}
	// exact mode counts the middle node as a full co-occurrence
	exact := ProximityMiner{H: 1}.PairSupports(g, occ)
	if exact[[2]string{"a", "b"}] != 1 {
		t.Errorf("exact support = %g, want 1", exact[[2]string{"a", "b"}])
	}
	// decay weight uses the closest occurrence: event on both ends of a
	// 2-path, query the shared neighbor
	g2 := graph.Path(2)
	occ2 := map[string][]graph.NodeID{"a": {0, 1}, "b": {1}}
	dec := ProximityMiner{H: 1, Alpha: 2}.PairSupports(g2, occ2)
	// node 1: wa = 1 (own occurrence, d=0), wb = 1 → min 1;
	// node 0: wa = 1 (d=0), wb = e^-2 → min e^-2
	want2 := 1 + math.Exp(-2)
	if got := dec[[2]string{"a", "b"}]; !almostEqual(got, want2, 1e-6) {
		t.Errorf("decayed support = %g, want %g", got, want2)
	}
}

func TestProximityMinerEventCapPanics(t *testing.T) {
	g := graph.Path(2)
	occ := map[string][]graph.NodeID{}
	for i := 0; i < 65; i++ {
		occ[string(rune('A'+i%26))+string(rune('a'+i/26))] = []graph.NodeID{0}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond 64 events")
		}
	}()
	ProximityMiner{H: 1}.PairSupports(g, occ)
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
