// Package baseline implements the three comparators the paper evaluates
// TESC against:
//
//   - Transaction Correlation (TC): nodes are isolated transactions and
//     the two events binary items; association is Kendall's τ_b on the
//     2×2 contingency table ([1], used in Tables 1–4). TESC's headline
//     examples are pairs whose TC and TESC disagree.
//   - Hitting-time proximity (from the authors' earlier SIGMOD'11 work
//     [11]): the "more sophisticated proximity measure" §2 rejects on
//     cost grounds. A truncated / decayed hitting-time Monte-Carlo
//     estimator reproduces its cost profile for the Figure 10(a)
//     comparison (170ms vs 5.2ms per node).
//   - Proximity pattern mining (pFP, [16]): a support-thresholded
//     neighborhood co-occurrence miner. Table 5 shows TESC detects rare
//     positively-correlated pairs that any frequency-based miner misses;
//     this simplified miner (exact neighborhood aggregation instead of
//     pFP's probabilistic flooding) preserves exactly that property.
package baseline

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"tesc/internal/graph"
	"tesc/internal/stats"
)

// TransactionCorrelation computes the TC baseline between two occurrence
// sets over a common node universe: Kendall τ_b over the binary
// "has a" / "has b" node indicators, reported with the same z-score
// machinery as TESC so the Tables 1–4 columns are directly comparable.
func TransactionCorrelation(va, vb *graph.NodeSet) (stats.TauBResult, error) {
	if va.Universe() != vb.Universe() {
		return stats.TauBResult{}, fmt.Errorf("baseline: universe mismatch %d vs %d", va.Universe(), vb.Universe())
	}
	var n11, n10 int64
	for _, v := range va.Members() {
		if vb.Contains(v) {
			n11++
		} else {
			n10++
		}
	}
	n01 := int64(vb.Len()) - n11
	n00 := int64(va.Universe()) - n11 - n10 - n01
	return stats.BinaryTauB(n11, n10, n01, n00), nil
}

// HittingTimeEstimator estimates truncated and decayed hitting times from
// a node to a target set by Monte-Carlo random walks. It reproduces the
// cost shape of the hitting-time proximity of [11] that Figure 10(a)
// compares BFS against.
type HittingTimeEstimator struct {
	// MaxSteps truncates each walk (the T of truncated hitting time).
	MaxSteps int
	// NumWalks is the Monte-Carlo sample size per query.
	NumWalks int
	// Decay is the per-step decay c ∈ (0,1] of the decayed variant
	// DHT(r,S) = E[c^T_S]; 1 gives plain truncated hitting time weight.
	Decay float64
}

// DefaultHittingTime mirrors common settings of [11]: 10-step truncation,
// 1000 walks, decay 0.8.
func DefaultHittingTime() HittingTimeEstimator {
	return HittingTimeEstimator{MaxSteps: 10, NumWalks: 1000, Decay: 0.8}
}

// Truncated returns the estimated expected number of steps for a random
// walk from start to first reach target, truncated at MaxSteps (walks
// that never arrive contribute MaxSteps).
func (e HittingTimeEstimator) Truncated(g *graph.Graph, start graph.NodeID, target *graph.NodeSet, rng *rand.Rand) float64 {
	total := 0
	for w := 0; w < e.NumWalks; w++ {
		steps, _ := e.walk(g, start, target, rng)
		total += steps
	}
	return float64(total) / float64(e.NumWalks)
}

// Decayed returns the estimated decayed hitting proximity E[c^T], where T
// is the hitting time; walks that never arrive within MaxSteps contribute
// 0. Higher values mean the target set is closer.
func (e HittingTimeEstimator) Decayed(g *graph.Graph, start graph.NodeID, target *graph.NodeSet, rng *rand.Rand) float64 {
	var total float64
	for w := 0; w < e.NumWalks; w++ {
		if steps, hit := e.walk(g, start, target, rng); hit {
			total += pow(e.Decay, steps)
		}
	}
	return total / float64(e.NumWalks)
}

// IterativeTruncated computes the exact truncated hitting time from
// EVERY node to the target set by T rounds of dynamic programming:
//
//	h_0(v) = 0 for all v;  h_k(v) = 0 if v ∈ S, else 1 + mean_u h_{k-1}(u)
//
// and returns the vector h_T. This is how the authors' earlier
// hitting-time measure [11] evaluates proximity — a per-query cost of
// O(T·(|V|+|E|)) that Figure 10(a) contrasts with the ~O(|V^h|) of one
// h-hop BFS (the paper quotes 170ms/query at 10M nodes vs 5.2ms at 20M).
func (e HittingTimeEstimator) IterativeTruncated(g *graph.Graph, target *graph.NodeSet) []float64 {
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	for k := 1; k <= e.MaxSteps; k++ {
		for v := 0; v < n; v++ {
			if target.Contains(graph.NodeID(v)) {
				next[v] = 0
				continue
			}
			ns := g.Neighbors(graph.NodeID(v))
			if len(ns) == 0 {
				next[v] = float64(e.MaxSteps)
				continue
			}
			var sum float64
			for _, u := range ns {
				sum += cur[u]
			}
			next[v] = 1 + sum/float64(len(ns))
			if next[v] > float64(e.MaxSteps) {
				next[v] = float64(e.MaxSteps)
			}
		}
		cur, next = next, cur
	}
	return cur
}

// walk runs one random walk and returns the hitting step count (truncated
// at MaxSteps) and whether the target was actually reached. A start node
// already in the target hits at 0.
func (e HittingTimeEstimator) walk(g *graph.Graph, start graph.NodeID, target *graph.NodeSet, rng *rand.Rand) (int, bool) {
	if target.Contains(start) {
		return 0, true
	}
	cur := start
	for step := 1; step <= e.MaxSteps; step++ {
		ns := g.Neighbors(cur)
		if len(ns) == 0 {
			return e.MaxSteps, false // stuck; never hits
		}
		cur = ns[rng.IntN(len(ns))]
		if target.Contains(cur) {
			return step, true
		}
	}
	return e.MaxSteps, false
}

func pow(c float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= c
	}
	return out
}

// PairSupport is a mined event pair with its neighborhood co-occurrence
// support.
type PairSupport struct {
	A, B    string
	Support float64 // aggregated co-occurrence support (see ProximityMiner)
}

// ProximityMiner is the simplified pFP stand-in: for every node it
// aggregates the events occurring in its h-vicinity and scores, for
// every event pair, the aggregated co-occurrence support. Pairs with
// support ≥ MinSup·|V| are "proximity patterns".
//
// With Alpha == 0 support is the exact count of nodes whose h-vicinity
// contains both events. With Alpha > 0 it is pFP's decay-weighted
// aggregation ([16] uses α = 1): an occurrence at hop distance d
// contributes e^(−α·d) to its neighborhood, and a node supports the pair
// by the smaller of the two events' aggregated weights.
type ProximityMiner struct {
	// H is the aggregation radius (1 matches the paper's pFP runs).
	H int
	// MinSup is the relative support threshold (the paper uses 10/|V|).
	MinSup float64
	// Alpha is the distance-decay exponent (0 = exact counting).
	Alpha float64
}

// Mine returns all event pairs meeting the support threshold, sorted by
// descending support. occurrences maps event name → occurrence nodes.
func (m ProximityMiner) Mine(g *graph.Graph, occurrences map[string][]graph.NodeID) []PairSupport {
	counts := m.PairSupports(g, occurrences)
	threshold := m.MinSup * float64(g.NumNodes())
	if threshold < 1 {
		threshold = 1
	}
	var out []PairSupport
	for pair, c := range counts {
		if c >= threshold {
			out = append(out, PairSupport{A: pair[0], B: pair[1], Support: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// PairSupports returns the aggregated co-occurrence support of every
// event pair (keys are ordered name pairs, A < B).
func (m ProximityMiner) PairSupports(g *graph.Graph, occurrences map[string][]graph.NodeID) map[[2]string]float64 {
	names := make([]string, 0, len(occurrences))
	for name := range occurrences {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 64 {
		panic("baseline: ProximityMiner supports at most 64 events per call")
	}
	n := g.NumNodes()

	// weights[e][v] = aggregated presence of event e at node v: 1 for
	// exact mode, max over occurrences of e^(−α·d) for decay mode.
	// Flooding is a multi-source BFS per event; with BFS level order the
	// first (closest) visit already carries the maximal weight.
	weights := make([][]float32, len(names))
	bfs := graph.NewBFS(g)
	for e, name := range names {
		w := make([]float32, n)
		bfs.Run(occurrences[name], m.H, func(v graph.NodeID, d int) {
			if m.Alpha > 0 {
				w[v] = float32(math.Exp(-m.Alpha * float64(d)))
			} else {
				w[v] = 1
			}
		})
		weights[e] = w
	}

	counts := make(map[[2]string]float64)
	for v := 0; v < n; v++ {
		for i := 0; i < len(names); i++ {
			wi := weights[i][v]
			if wi == 0 {
				continue
			}
			for j := i + 1; j < len(names); j++ {
				wj := weights[j][v]
				if wj == 0 {
					continue
				}
				mn := wi
				if wj < mn {
					mn = wj
				}
				counts[[2]string{names[i], names[j]}] += float64(mn)
			}
		}
	}
	return counts
}
