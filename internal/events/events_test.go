package events

import (
	"testing"

	"tesc/internal/graph"
)

func buildSample(t *testing.T) *Store {
	t.Helper()
	b := NewBuilder(10)
	b.Add("wireless", 1)
	b.Add("wireless", 3)
	b.Add("wireless", 3) // duplicate, idempotent
	b.Add("sensor", 3)
	b.Add("sensor", 5)
	b.AddAll("java", []graph.NodeID{7, 8, 9})
	return b.Build()
}

func TestStoreBasics(t *testing.T) {
	s := buildSample(t)
	if s.Universe() != 10 {
		t.Errorf("Universe = %d", s.Universe())
	}
	if s.NumEvents() != 3 {
		t.Fatalf("NumEvents = %d, want 3", s.NumEvents())
	}
	names := s.Names()
	want := []string{"java", "sensor", "wireless"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if !s.Has("wireless") || s.Has("gpu") {
		t.Error("Has wrong")
	}
}

func TestOccurrences(t *testing.T) {
	s := buildSample(t)
	occ := s.Occurrences("wireless")
	if len(occ) != 2 || occ[0] != 1 || occ[1] != 3 {
		t.Errorf("wireless occurrences = %v, want [1 3]", occ)
	}
	if s.Count("wireless") != 2 || s.Count("java") != 3 {
		t.Error("Count wrong")
	}
	if s.Occurrences("missing") != nil {
		t.Error("unknown event should return nil")
	}
	if s.Count("missing") != 0 {
		t.Error("unknown event count should be 0")
	}
}

func TestSetsAndUnion(t *testing.T) {
	s := buildSample(t)
	sa := s.Set("wireless")
	if sa.Len() != 2 || !sa.Contains(1) || !sa.Contains(3) {
		t.Errorf("Set(wireless) = %v", sa.Members())
	}
	// cached: same pointer on second call
	if s.Set("wireless") != sa {
		t.Error("Set should cache")
	}
	u := s.UnionSet("wireless", "sensor")
	if u.Len() != 3 { // {1,3,5}
		t.Errorf("union = %v", u.Members())
	}
	empty := s.Set("missing")
	if empty.Len() != 0 || empty.Universe() != 10 {
		t.Error("unknown event should give empty set over the universe")
	}
}

func TestNodeEvents(t *testing.T) {
	s := buildSample(t)
	ev := s.NodeEvents(3)
	if len(ev) != 2 || ev[0] != "sensor" || ev[1] != "wireless" {
		t.Errorf("NodeEvents(3) = %v", ev)
	}
	if s.NodeEvents(0) != nil {
		t.Error("node without events should return nil")
	}
}

func TestContingencyTable(t *testing.T) {
	s := buildSample(t)
	n11, n10, n01, n00 := s.ContingencyTable("wireless", "sensor")
	// wireless {1,3}, sensor {3,5}: both={3}, a only={1}, b only={5}
	if n11 != 1 || n10 != 1 || n01 != 1 || n00 != 7 {
		t.Errorf("table = %d,%d,%d,%d", n11, n10, n01, n00)
	}
	if n11+n10+n01+n00 != int64(s.Universe()) {
		t.Error("table does not partition the universe")
	}
}

func TestIntensities(t *testing.T) {
	b := NewBuilder(6)
	b.AddWeighted("kw", 2, 3.5)
	b.Add("kw", 2) // accumulates: 4.5
	b.Add("kw", 4) // unit
	b.Add("plain", 1)
	s := b.Build()

	if got := s.Intensity("kw", 2); got != 4.5 {
		t.Errorf("Intensity = %g, want 4.5", got)
	}
	if got := s.Intensity("kw", 4); got != 1 {
		t.Errorf("Intensity = %g, want 1", got)
	}
	if got := s.Intensity("kw", 0); got != 0 {
		t.Errorf("absent node intensity = %g", got)
	}
	if got := s.Intensity("nope", 2); got != 0 {
		t.Errorf("unknown event intensity = %g", got)
	}
	if !s.Weighted("kw") || s.Weighted("plain") || s.Weighted("nope") {
		t.Error("Weighted flags wrong")
	}
	vec := s.IntensityVector("kw")
	if len(vec) != 6 || vec[2] != 4.5 || vec[4] != 1 || vec[0] != 0 {
		t.Errorf("IntensityVector = %v", vec)
	}
	if s.IntensityVector("nope") != nil {
		t.Error("unknown event should give nil vector")
	}
}

func TestAddWeightedValidation(t *testing.T) {
	b := NewBuilder(3)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive intensity should panic")
		}
	}()
	b.AddWeighted("x", 0, 0)
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	b := NewBuilder(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add("x", 5)
}

func TestEmptyStore(t *testing.T) {
	s := NewBuilder(5).Build()
	if s.NumEvents() != 0 {
		t.Errorf("NumEvents = %d", s.NumEvents())
	}
	if s.Set("anything").Len() != 0 {
		t.Error("empty store sets should be empty")
	}
}

func TestRemoveAndEpoch(t *testing.T) {
	b := NewBuilder(10)
	b.Add("wireless", 1)
	b.Add("wireless", 3)
	b.Add("sensor", 5)
	s1 := b.Build()
	if s1.Epoch() != 1 {
		t.Fatalf("first snapshot epoch = %d, want 1", s1.Epoch())
	}

	if !b.Remove("wireless", 3) {
		t.Error("removing an existing occurrence should report true")
	}
	if b.Remove("wireless", 3) {
		t.Error("removing it twice should report false")
	}
	if b.Remove("gpu", 0) {
		t.Error("removing an unknown event should report false")
	}
	s2 := b.Build()
	if s2.Epoch() != 2 {
		t.Fatalf("second snapshot epoch = %d, want 2", s2.Epoch())
	}
	if got := s2.Count("wireless"); got != 1 {
		t.Errorf("after removal Count(wireless) = %d, want 1", got)
	}
	// The older snapshot is untouched: in-flight readers keep their view.
	if got := s1.Count("wireless"); got != 2 {
		t.Errorf("older snapshot Count(wireless) = %d, want 2", got)
	}

	// Removing the last occurrence removes the event.
	if !b.Remove("wireless", 1) {
		t.Error("removing the last occurrence should report true")
	}
	if b.Has("wireless") {
		t.Error("event should vanish with its last occurrence")
	}
	if !b.RemoveEvent("sensor") {
		t.Error("RemoveEvent on an existing event should report true")
	}
	if b.RemoveEvent("sensor") {
		t.Error("RemoveEvent twice should report false")
	}
	s3 := b.Build()
	if s3.NumEvents() != 0 {
		t.Errorf("after removals NumEvents = %d, want 0", s3.NumEvents())
	}
	if s3.Epoch() <= s2.Epoch() {
		t.Errorf("epochs must strictly increase: %d then %d", s2.Epoch(), s3.Epoch())
	}
}

func TestRemoveThenReAdd(t *testing.T) {
	b := NewBuilder(5)
	b.AddWeighted("kw", 2, 3.5)
	b.Remove("kw", 2)
	b.Add("kw", 2)
	s := b.Build()
	if got := s.Intensity("kw", 2); got != 1 {
		t.Errorf("re-added occurrence intensity = %g, want 1 (removal clears accumulation)", got)
	}
}
