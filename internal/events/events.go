// Package events stores event occurrences on graph nodes: the attributed
// graph model of the paper's §2, where each node v carries a set of
// events Qv ⊆ Q and each event a has an occurrence node set Va.
//
// The store is optimized for the two access patterns TESC needs:
// event → occurrence NodeSet (to form Va, Vb, Va∪b) and node → event list
// (for the baselines that treat nodes as transactions).
package events

import (
	"fmt"
	"sort"
	"sync"

	"tesc/internal/graph"
)

// Store is an immutable event-occurrence index over a fixed node
// universe. Build one with a Builder. A live system mutates the
// builder and re-freezes: every Build stamps the snapshot with the
// builder's monotonically increasing epoch, so concurrent readers can
// tell (and report) exactly which version of the event data a
// computation used while in-flight work keeps its consistent older
// snapshot.
type Store struct {
	n      int    // node universe size
	epoch  uint64 // builder generation this snapshot was frozen at
	names  []string
	byName map[string]int
	occ    [][]graph.NodeID // event index → sorted occurrence nodes
	weight []map[graph.NodeID]float64
	setsMu sync.Mutex       // guards sets: Set is called from screen workers
	sets   []*graph.NodeSet // lazily built, nil until first use
	byNode map[graph.NodeID][]int
}

// Builder accumulates event occurrences. It is the mutable side of the
// store: add or remove occurrences freely, then freeze a consistent
// snapshot with Build. The builder is not safe for concurrent use; the
// snapshots it produces are immutable and freely shareable.
type Builder struct {
	n     int
	epoch uint64
	occ   map[string]map[graph.NodeID]float64
}

// NewBuilder returns a builder over a universe of n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, occ: make(map[string]map[graph.NodeID]float64)}
}

// Add records that event name occurred on node v with unit intensity.
// Repeated additions accumulate intensity (e.g. an author using the same
// keyword in several papers — the §6 intensity extension), while the
// occurrence itself stays idempotent.
func (b *Builder) Add(name string, v graph.NodeID) { b.AddWeighted(name, v, 1) }

// AddWeighted records an occurrence with an explicit intensity (> 0).
func (b *Builder) AddWeighted(name string, v graph.NodeID, intensity float64) {
	if v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("events: node %d outside universe [0,%d)", v, b.n))
	}
	if intensity <= 0 {
		panic(fmt.Sprintf("events: intensity %g must be positive", intensity))
	}
	m := b.occ[name]
	if m == nil {
		m = make(map[graph.NodeID]float64)
		b.occ[name] = m
	}
	m[v] += intensity
}

// AddAll records an event on every node in vs.
func (b *Builder) AddAll(name string, vs []graph.NodeID) {
	for _, v := range vs {
		b.Add(name, v)
	}
}

// Remove deletes the occurrence of the event on node v (whatever its
// accumulated intensity), reporting whether it existed. Removing the
// last occurrence removes the event itself.
func (b *Builder) Remove(name string, v graph.NodeID) bool {
	m := b.occ[name]
	if m == nil {
		return false
	}
	if _, ok := m[v]; !ok {
		return false
	}
	delete(m, v)
	if len(m) == 0 {
		delete(b.occ, name)
	}
	return true
}

// RemoveEvent deletes every occurrence of the event, reporting whether
// it existed.
func (b *Builder) RemoveEvent(name string) bool {
	if _, ok := b.occ[name]; !ok {
		return false
	}
	delete(b.occ, name)
	return true
}

// Has reports whether the builder currently holds any occurrence of the
// event.
func (b *Builder) Has(name string) bool {
	_, ok := b.occ[name]
	return ok
}

// Build freezes the builder into a Store.
func (b *Builder) Build() *Store {
	b.epoch++
	s := &Store{
		n:      b.n,
		epoch:  b.epoch,
		byName: make(map[string]int, len(b.occ)),
		byNode: make(map[graph.NodeID][]int),
	}
	for name := range b.occ {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	s.occ = make([][]graph.NodeID, len(s.names))
	s.weight = make([]map[graph.NodeID]float64, len(s.names))
	s.sets = make([]*graph.NodeSet, len(s.names))
	for i, name := range s.names {
		s.byName[name] = i
		nodes := make([]graph.NodeID, 0, len(b.occ[name]))
		w := make(map[graph.NodeID]float64, len(b.occ[name]))
		for v, intensity := range b.occ[name] {
			nodes = append(nodes, v)
			w[v] = intensity
		}
		sort.Slice(nodes, func(a, c int) bool { return nodes[a] < nodes[c] })
		s.occ[i] = nodes
		s.weight[i] = w
		for _, v := range nodes {
			s.byNode[v] = append(s.byNode[v], i)
		}
	}
	return s
}

// BuildAt freezes the builder into a Store stamped with the given
// epoch (>= 1) and resynchronizes the builder's counter to it, so
// subsequent Builds continue at epoch+1. Snapshot restore uses it to
// reproduce a persisted store exactly, epoch included: without it a
// warm-started daemon would reset epochs to 1 and clients comparing
// response epochs across a restart would see time run backwards.
func (b *Builder) BuildAt(epoch uint64) (*Store, error) {
	if epoch < 1 {
		return nil, fmt.Errorf("events: epoch %d must be >= 1 (Build always stamps at least 1)", epoch)
	}
	b.epoch = epoch - 1
	return b.Build(), nil
}

// BuilderFromStore returns a builder primed with every occurrence and
// intensity of the store, its epoch counter synced so the next Build
// produces epoch s.Epoch()+1 — the mutable side of a warm-started
// entry, picking up exactly where the persisted store left off.
func BuilderFromStore(s *Store) *Builder {
	b := NewBuilder(s.n)
	b.epoch = s.epoch
	for i, name := range s.names {
		for _, v := range s.occ[i] {
			b.AddWeighted(name, v, s.weight[i][v])
		}
	}
	return b
}

// Intensity returns the intensity of the event on node v (0 when the
// event does not occur there).
func (s *Store) Intensity(name string, v graph.NodeID) float64 {
	i, ok := s.byName[name]
	if !ok {
		return 0
	}
	return s.weight[i][v]
}

// IntensityVector returns the full-length intensity vector of the event
// (length = universe), suitable for the intensity-weighted TESC variant.
// Returns nil for unknown events.
func (s *Store) IntensityVector(name string) []float64 {
	i, ok := s.byName[name]
	if !ok {
		return nil
	}
	out := make([]float64, s.n)
	for v, w := range s.weight[i] {
		out[v] = w
	}
	return out
}

// Weighted reports whether any occurrence of the event has intensity ≠ 1.
func (s *Store) Weighted(name string) bool {
	i, ok := s.byName[name]
	if !ok {
		return false
	}
	for _, w := range s.weight[i] {
		if w != 1 {
			return true
		}
	}
	return false
}

// Universe returns the node universe size.
func (s *Store) Universe() int { return s.n }

// Epoch returns the builder generation this snapshot was frozen at:
// snapshots from the same builder carry strictly increasing epochs, so
// readers can order successive event-store versions. It versions the
// event data only — it is independent of (and generally disagrees
// with) server.Snapshot.Epoch, which also advances on graph edge
// mutations; serving-tier consumers should report that combined epoch,
// not this one.
func (s *Store) Epoch() uint64 { return s.epoch }

// NumEvents returns the number of distinct events.
func (s *Store) NumEvents() int { return len(s.names) }

// Names returns all event names, sorted. The slice aliases internal
// storage.
func (s *Store) Names() []string { return s.names }

// Has reports whether the store knows the event.
func (s *Store) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Occurrences returns the sorted occurrence nodes of the event, or nil if
// unknown. The slice aliases internal storage.
func (s *Store) Occurrences(name string) []graph.NodeID {
	i, ok := s.byName[name]
	if !ok {
		return nil
	}
	return s.occ[i]
}

// Count returns |Va| for the event, 0 if unknown.
func (s *Store) Count(name string) int { return len(s.Occurrences(name)) }

// Set returns the occurrence NodeSet of the event (Va), or an empty set
// if the event is unknown. Sets are cached after first construction; the
// cache is synchronized, so Set is safe to call from concurrent
// screening workers.
func (s *Store) Set(name string) *graph.NodeSet {
	i, ok := s.byName[name]
	if !ok {
		return graph.NewNodeSet(s.n, nil)
	}
	s.setsMu.Lock()
	defer s.setsMu.Unlock()
	if s.sets[i] == nil {
		s.sets[i] = graph.NewNodeSet(s.n, s.occ[i])
	}
	return s.sets[i]
}

// UnionSet returns Va∪b = Va ∪ Vb for two events.
func (s *Store) UnionSet(a, b string) *graph.NodeSet {
	return s.Set(a).Union(s.Set(b))
}

// NodeEvents returns the indices-free list of event names on node v,
// sorted, or nil when the node carries no events.
func (s *Store) NodeEvents(v graph.NodeID) []string {
	idxs := s.byNode[v]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = s.names[idx]
	}
	return out
}

// ContingencyTable returns the 2×2 transaction table of two events over
// all nodes: n11 (both), n10 (a only), n01 (b only), n00 (neither). This
// is the input of the Transaction Correlation baseline.
func (s *Store) ContingencyTable(a, b string) (n11, n10, n01, n00 int64) {
	sa, sb := s.Set(a), s.Set(b)
	for _, v := range sa.Members() {
		if sb.Contains(v) {
			n11++
		} else {
			n10++
		}
	}
	n01 = int64(sb.Len()) - n11
	n00 = int64(s.n) - n11 - n10 - n01
	return n11, n10, n01, n00
}
