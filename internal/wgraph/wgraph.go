// Package wgraph extends TESC to weighted graphs, the second extension
// §2 of the paper names ("the proposed approach could be extended for
// graphs with directed and/or weighted edges").
//
// On a weighted graph the level-h vicinity generalizes to the weighted
// ball B(u, ρ) = {v : dist(u, v) ≤ ρ} under shortest-path distance, and
// every TESC definition carries over with ρ in place of h: densities are
// occurrence counts inside B(r, ρ) normalized by |B(r, ρ)|, reference
// nodes are the ball of the event set, and Kendall's τ with the Eq. 6
// variance is unchanged (the statistic never looks at the graph, only at
// the density vectors).
//
// Balls are computed with a bounded Dijkstra search that reuses its
// heap and distance stamps across queries, mirroring the BFS engine of
// the unweighted core.
package wgraph

import (
	"fmt"
	"sort"
)

// NodeID mirrors graph.NodeID for the weighted substrate.
type NodeID = int32

// Graph is an immutable undirected weighted graph in CSR form. Edge
// weights are positive lengths: smaller means closer.
type Graph struct {
	offsets []int64
	adj     []NodeID
	w       []float32
	m       int64
}

// Builder accumulates weighted edges.
type Builder struct {
	n  int
	us []NodeID
	vs []NodeID
	ws []float32
}

// NewBuilder returns a builder for n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("wgraph: negative node count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v} with positive length w.
// Parallel edges keep the smallest length; self-loops are dropped at
// build time.
func (b *Builder) AddEdge(u, v NodeID, w float64) {
	if w <= 0 {
		panic(fmt.Sprintf("wgraph: edge weight %g must be positive", w))
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, float32(w))
}

// Build validates and freezes the graph.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	type arc struct {
		to NodeID
		w  float32
	}
	lists := make([][]arc, n)
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("wgraph: edge (%d,%d) outside node range [0,%d)", u, v, n)
		}
		if u == v {
			continue
		}
		lists[u] = append(lists[u], arc{v, w})
		lists[v] = append(lists[v], arc{u, w})
	}
	g := &Graph{offsets: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		ls := lists[v]
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].to != ls[j].to {
				return ls[i].to < ls[j].to
			}
			return ls[i].w < ls[j].w
		})
		// dedup parallel edges keeping the smallest weight
		kept := ls[:0]
		for i, a := range ls {
			if i == 0 || a.to != kept[len(kept)-1].to {
				kept = append(kept, a)
			}
		}
		for _, a := range kept {
			g.adj = append(g.adj, a.to)
			g.w = append(g.w, a.w)
		}
		g.offsets[v+1] = int64(len(g.adj))
	}
	g.m = int64(len(g.adj)) / 2
	return g, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns v's neighbor IDs and parallel edge lengths. Both
// slices alias internal storage.
func (g *Graph) Neighbors(v NodeID) ([]NodeID, []float32) {
	return g.adj[g.offsets[v]:g.offsets[v+1]], g.w[g.offsets[v]:g.offsets[v+1]]
}

// Dijkstra is a reusable bounded shortest-path engine: Ball explores
// only nodes within the requested radius, and the visited stamps reset
// in O(visited) rather than O(n) between queries.
type Dijkstra struct {
	g       *Graph
	dist    []float32
	stamp   []uint32
	epoch   uint32
	heap    pairHeap
	touched []NodeID
}

// NewDijkstra returns an engine bound to g.
func NewDijkstra(g *Graph) *Dijkstra {
	return &Dijkstra{
		g:     g,
		dist:  make([]float32, g.NumNodes()),
		stamp: make([]uint32, g.NumNodes()),
	}
}

// Graph returns the bound graph.
func (d *Dijkstra) Graph() *Graph { return d.g }

// Ball invokes visit for every node within weighted distance radius of
// any source (sources at distance 0), each exactly once with its final
// distance, in nondecreasing distance order.
func (d *Dijkstra) Ball(sources []NodeID, radius float64, visit func(v NodeID, dist float64)) {
	d.epoch++
	if d.epoch == 0 {
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.epoch = 1
	}
	r := float32(radius)
	d.heap = d.heap[:0]
	for _, s := range sources {
		if d.stamp[s] != d.epoch || d.dist[s] > 0 {
			d.stamp[s] = d.epoch
			d.dist[s] = 0
			d.heap.push(pair{0, s})
		}
	}
	settled := make(map[NodeID]bool) // avoid double-visits from stale heap entries
	for len(d.heap) > 0 {
		p := d.heap.pop()
		if settled[p.v] || p.d > d.dist[p.v] {
			continue
		}
		settled[p.v] = true
		visit(p.v, float64(p.d))
		ns, ws := d.g.Neighbors(p.v)
		for i, u := range ns {
			nd := p.d + ws[i]
			if nd > r {
				continue
			}
			if d.stamp[u] != d.epoch || nd < d.dist[u] {
				d.stamp[u] = d.epoch
				d.dist[u] = nd
				d.heap.push(pair{nd, u})
			}
		}
	}
}

// BallSize returns |B(u, radius)|.
func (d *Dijkstra) BallSize(u NodeID, radius float64) int {
	count := 0
	d.Ball([]NodeID{u}, radius, func(NodeID, float64) { count++ })
	return count
}

// pair and pairHeap implement a minimal binary min-heap on (dist, node).
type pair struct {
	d float32
	v NodeID
}

type pairHeap []pair

func (h *pairHeap) push(p pair) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].d <= (*h)[i].d {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *pairHeap) pop() pair {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && (*h)[l].d < (*h)[smallest].d {
			smallest = l
		}
		if r < last && (*h)[r].d < (*h)[smallest].d {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
