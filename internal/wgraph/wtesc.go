package wgraph

import (
	"fmt"
	"math/rand/v2"

	"tesc/internal/sampling"
	"tesc/internal/stats"
)

// Options configures a weighted-graph TESC test.
type Options struct {
	// Radius is the weighted vicinity radius ρ (the analogue of h).
	Radius float64
	// SampleSize is the number of reference nodes (default 900).
	SampleSize int
	// Alternative selects the tested direction.
	Alternative stats.Alternative
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// Rand supplies randomness; nil means a fixed seed.
	Rand *rand.Rand
}

// Result mirrors the unweighted test's outcome.
type Result struct {
	Tau         float64
	Z           float64
	P           float64
	Significant bool
	N           int
	Population  int // |B(Va∪b, ρ)|
}

// Test runs the TESC hypothesis test on a weighted graph: reference
// nodes are sampled uniformly from the weighted ball of the event set
// (Batch-BFS analogue: one multi-source bounded Dijkstra), densities are
// measured inside each reference node's ball, and significance comes
// from the tie-corrected Kendall machinery, which is oblivious to how
// the densities were produced.
func Test(g *Graph, va, vb []NodeID, opts Options) (Result, error) {
	if opts.Radius <= 0 {
		return Result{}, fmt.Errorf("wgraph: Radius must be positive")
	}
	if opts.SampleSize == 0 {
		opts.SampleSize = 900
	}
	if opts.SampleSize < 2 {
		return Result{}, fmt.Errorf("wgraph: sample size must be >= 2")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.05
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewPCG(0x779e5c, 0x779e5c))
	}
	n := g.NumNodes()
	inA := membership(n, va)
	inB := membership(n, vb)
	union := make([]NodeID, 0, len(va)+len(vb))
	seen := make(map[NodeID]bool, len(va)+len(vb))
	for _, sets := range [][]NodeID{va, vb} {
		for _, v := range sets {
			if v < 0 || int(v) >= n {
				return Result{}, fmt.Errorf("wgraph: occurrence node %d outside [0,%d)", v, n)
			}
			if !seen[v] {
				seen[v] = true
				union = append(union, v)
			}
		}
	}
	if len(union) == 0 {
		return Result{}, fmt.Errorf("wgraph: no event occurrences")
	}

	// reference population: weighted ball of the event set
	dij := NewDijkstra(g)
	var population []NodeID
	dij.Ball(union, opts.Radius, func(v NodeID, _ float64) {
		population = append(population, v)
	})
	if len(population) < 2 {
		return Result{}, fmt.Errorf("wgraph: fewer than two reference nodes")
	}
	refs := sampling.SampleK(population, opts.SampleSize, rng)

	sa := make([]float64, len(refs))
	sb := make([]float64, len(refs))
	for i, r := range refs {
		var size, ca, cb int
		dij.Ball([]NodeID{r}, opts.Radius, func(v NodeID, _ float64) {
			size++
			if inA[v] {
				ca++
			}
			if inB[v] {
				cb++
			}
		})
		sa[i] = float64(ca) / float64(size)
		sb[i] = float64(cb) / float64(size)
	}

	k := stats.Kendall(sa, sb)
	p := stats.PValueZ(k.Z, opts.Alternative)
	return Result{
		Tau:         k.Tau,
		Z:           k.Z,
		P:           p,
		Significant: p < opts.Alpha,
		N:           len(refs),
		Population:  len(population),
	}, nil
}

func membership(n int, nodes []NodeID) []bool {
	m := make([]bool, n)
	for _, v := range nodes {
		if v >= 0 && int(v) < n {
			m[v] = true
		}
	}
	return m
}
