package wgraph

import (
	"math"
	"math/rand/v2"
	"testing"

	"tesc/internal/stats"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 2, 1) // self loop dropped
	g := b.MustBuild()
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("g: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	ns, ws := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Fatalf("neighbors(1) = %v", ns)
	}
	if ws[0] != 1.5 || ws[1] != 0.5 {
		t.Fatalf("weights(1) = %v", ws)
	}
	if g.Degree(3) != 0 {
		t.Error("isolated node degree")
	}
}

func TestBuilderParallelEdgesKeepSmallest(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 7)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	_, ws := g.Neighbors(0)
	if ws[0] != 2 {
		t.Fatalf("kept weight %g, want 2", ws[0])
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5, 1)
	if _, err := b.Build(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive weight should panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 1, 0)
}

// weighted path 0 -1.0- 1 -1.0- 2 -3.0- 3
func weightedPath() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 3)
	return b.MustBuild()
}

func TestDijkstraBall(t *testing.T) {
	g := weightedPath()
	d := NewDijkstra(g)
	dists := map[NodeID]float64{}
	d.Ball([]NodeID{0}, 2.5, func(v NodeID, dist float64) { dists[v] = dist })
	want := map[NodeID]float64{0: 0, 1: 1, 2: 2}
	if len(dists) != len(want) {
		t.Fatalf("ball = %v", dists)
	}
	for v, dd := range want {
		if dists[v] != dd {
			t.Fatalf("dist(%d) = %g, want %g", v, dists[v], dd)
		}
	}
	// radius large enough reaches node 3 at distance 5
	if size := d.BallSize(0, 5); size != 4 {
		t.Errorf("BallSize(0,5) = %d", size)
	}
	if size := d.BallSize(0, 4.99); size != 3 {
		t.Errorf("BallSize(0,4.99) = %d", size)
	}
}

func TestDijkstraShortcuts(t *testing.T) {
	// triangle with a long direct edge and a short two-hop route
	b := NewBuilder(3)
	b.AddEdge(0, 2, 10)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	d := NewDijkstra(g)
	var got float64 = -1
	d.Ball([]NodeID{0}, 20, func(v NodeID, dist float64) {
		if v == 2 {
			got = dist
		}
	})
	if got != 2 {
		t.Errorf("dist(0,2) = %g, want 2 via relaxation", got)
	}
}

func TestDijkstraMultiSource(t *testing.T) {
	g := weightedPath()
	d := NewDijkstra(g)
	count := 0
	d.Ball([]NodeID{0, 3}, 1, func(NodeID, float64) { count++ })
	// from 0: {0,1}; from 3: {3} (edge 2-3 weighs 3)
	if count != 3 {
		t.Errorf("multi-source ball size = %d, want 3", count)
	}
	// engine reuse across epochs
	if d.BallSize(1, 1) != 3 {
		t.Error("reused engine wrong")
	}
}

func TestDijkstraVisitOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	b := NewBuilder(100)
	for i := 0; i < 300; i++ {
		u, v := NodeID(rng.IntN(100)), NodeID(rng.IntN(100))
		if u != v {
			b.AddEdge(u, v, 0.1+rng.Float64())
		}
	}
	g := b.MustBuild()
	d := NewDijkstra(g)
	prev := -1.0
	d.Ball([]NodeID{0}, 3, func(_ NodeID, dist float64) {
		if dist < prev {
			t.Fatalf("visit order not nondecreasing: %g after %g", dist, prev)
		}
		prev = dist
	})
}

// Unit weights must reproduce the unweighted h-hop vicinity.
func TestUnitWeightsMatchBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 1))
	const n = 150
	b := NewBuilder(n)
	type edge struct{ u, v NodeID }
	var edges []edge
	for i := 0; i < 400; i++ {
		u, v := NodeID(rng.IntN(n)), NodeID(rng.IntN(n))
		if u != v {
			b.AddEdge(u, v, 1)
			edges = append(edges, edge{u, v})
		}
	}
	g := b.MustBuild()
	d := NewDijkstra(g)
	// BFS reimplementation over the same edges
	adj := make([][]NodeID, n)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	bfsBall := func(s NodeID, h int) int {
		depth := map[NodeID]int{s: 0}
		queue := []NodeID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if depth[v] == h {
				continue
			}
			for _, u := range adj[v] {
				if _, ok := depth[u]; !ok {
					depth[u] = depth[v] + 1
					queue = append(queue, u)
				}
			}
		}
		return len(depth)
	}
	for trial := 0; trial < 25; trial++ {
		s := NodeID(rng.IntN(n))
		h := 1 + rng.IntN(3)
		if got, want := d.BallSize(s, float64(h)), bfsBall(s, h); got != want {
			t.Fatalf("unit-weight ball(%d, %d) = %d, BFS = %d", s, h, got, want)
		}
	}
}

func TestWeightedTESCValidation(t *testing.T) {
	g := weightedPath()
	if _, err := Test(g, []NodeID{0}, []NodeID{1}, Options{Radius: 0}); err == nil {
		t.Error("radius 0 accepted")
	}
	if _, err := Test(g, nil, nil, Options{Radius: 1}); err == nil {
		t.Error("no events accepted")
	}
	if _, err := Test(g, []NodeID{99}, nil, Options{Radius: 1}); err == nil {
		t.Error("out-of-range occurrence accepted")
	}
	if _, err := Test(g, []NodeID{0}, []NodeID{1}, Options{Radius: 1, SampleSize: 1}); err == nil {
		t.Error("sample size 1 accepted")
	}
}

// Planted attraction/repulsion on a weighted community graph.
func TestWeightedTESCEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 1))
	const communities, size = 20, 25
	n := communities * size
	b := NewBuilder(n)
	// short intra-community edges, long inter-community edges
	for c := 0; c < communities; c++ {
		base := c * size
		for i := 0; i < 4*size; i++ {
			u := NodeID(base + rng.IntN(size))
			v := NodeID(base + rng.IntN(size))
			if u != v {
				b.AddEdge(u, v, 0.5+rng.Float64()*0.5)
			}
		}
	}
	for i := 0; i < n/2; i++ {
		u := NodeID(rng.IntN(n))
		v := NodeID(rng.IntN(n))
		if u != v {
			b.AddEdge(u, v, 5+rng.Float64())
		}
	}
	g := b.MustBuild()

	// attraction: both events in the same communities, with a
	// co-varying intensity ramp (community c holds c+1 occurrences of
	// each event — the density gradients TESC aggregates)
	var va, vb []NodeID
	for c := 0; c < 8; c++ {
		base := c * size
		for i := 0; i <= c; i++ {
			va = append(va, NodeID(base+rng.IntN(size)))
			vb = append(vb, NodeID(base+rng.IntN(size)))
		}
	}
	res, err := Test(g, va, vb, Options{
		Radius: 2, SampleSize: 200,
		Alternative: stats.Greater,
		Rand:        rand.New(rand.NewPCG(1, 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.Z <= 0 {
		t.Errorf("weighted attraction missed: %+v", res)
	}
	if res.Population < res.N {
		t.Errorf("population %d below sample %d", res.Population, res.N)
	}

	// repulsion: far communities
	var vc []NodeID
	for c := 12; c < 20; c++ {
		base := c * size
		for i := 0; i < 4; i++ {
			vc = append(vc, NodeID(base+rng.IntN(size)))
		}
	}
	res2, err := Test(g, va, vc, Options{
		Radius: 2, SampleSize: 200,
		Alternative: stats.Less,
		Rand:        rand.New(rand.NewPCG(2, 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Significant || res2.Z >= 0 {
		t.Errorf("weighted repulsion missed: %+v", res2)
	}
}

// Radius sensitivity: a radius below the shortest edge makes every ball
// a singleton, so densities are 0/1 indicators of the node itself.
func TestWeightedTESCTinyRadius(t *testing.T) {
	g := weightedPath()
	res, err := Test(g, []NodeID{0, 1}, []NodeID{2, 3}, Options{
		Radius: 0.5, SampleSize: 4,
		Alternative: stats.Less,
		Rand:        rand.New(rand.NewPCG(3, 3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Population != 4 {
		t.Errorf("population = %d, want the 4 event nodes themselves", res.Population)
	}
	if math.Abs(res.Tau) > 1 {
		t.Errorf("tau out of range: %g", res.Tau)
	}
}
