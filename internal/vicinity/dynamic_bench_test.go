package vicinity

import (
	"math/rand/v2"
	"sync"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

// The serving-cost claim of the dynamic-graph subsystem: repairing the
// |V^h_v| index after a single edge flip via ApplyDelta must be orders
// of magnitude cheaper than the from-scratch Build a naive cache
// invalidation pays. Both benchmarks run on the 20k-node DBLP
// surrogate at h = 2 (the deepest level tescd serves by default).
//
//	go test ./internal/vicinity -bench 'Rebuild20k|SingleFlip20k' -benchtime 10x

var bench20k struct {
	once sync.Once
	g    *graph.Graph
}

func bench20kGraph() *graph.Graph {
	bench20k.once.Do(func() {
		rng := rand.New(rand.NewPCG(0xbe9c, 20))
		bench20k.g = graphgen.Coauthorship(graphgen.DefaultCoauthorship(0.2), rng)
	})
	return bench20k.g
}

func BenchmarkRebuild20k(b *testing.B) {
	g := bench20kGraph()
	b.ReportMetric(float64(g.NumNodes()), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, 2, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyDeltaSingleFlip20k(b *testing.B) {
	g := bench20kGraph()
	idx, err := Build(g, 2, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(0xf11b, 7))
	stream := graphgen.NewFlipStream(g, 0.5, rng)
	var recomputed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := graph.NewDelta(g)
		applied, err := d.Apply([]graph.EdgeChange{stream.Next()})
		if err != nil {
			b.Fatal(err)
		}
		g = d.Compact()
		n, err := idx.ApplyDelta(g, applied, Options{})
		if err != nil {
			b.Fatal(err)
		}
		recomputed += n
	}
	b.ReportMetric(float64(recomputed)/float64(b.N), "entries/op")
}
