package vicinity

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

// The differential property behind the dynamic-graph subsystem: an
// index maintained incrementally through ApplyDelta must stay
// *identical* to one rebuilt from scratch — every |V^h_v| entry, every
// level, at every checkpoint — across a long randomized stream of edge
// insertions and deletions. 10,000 seeded flips run across vicinity
// levels h = 1..3 on both undirected and directed graphs.

// diffConfig is one leg of the differential sweep.
type diffConfig struct {
	name       string
	directed   bool
	maxLevel   int
	flips      int
	checkEvery int
	seed       uint64
}

func diffConfigs() []diffConfig {
	return []diffConfig{
		{name: "undirected/h=1", directed: false, maxLevel: 1, flips: 2000, checkEvery: 100, seed: 101},
		{name: "undirected/h=2", directed: false, maxLevel: 2, flips: 2000, checkEvery: 100, seed: 102},
		{name: "undirected/h=3", directed: false, maxLevel: 3, flips: 1000, checkEvery: 100, seed: 103},
		{name: "directed/h=1", directed: true, maxLevel: 1, flips: 2000, checkEvery: 100, seed: 201},
		{name: "directed/h=2", directed: true, maxLevel: 2, flips: 2000, checkEvery: 100, seed: 202},
		{name: "directed/h=3", directed: true, maxLevel: 3, flips: 1000, checkEvery: 100, seed: 203},
	}
}

// diffGraph builds the starting graph for a leg: a sparse small-world
// graph (undirected) or a sparse uniform arc set (directed), both small
// enough that from-scratch rebuilds at every checkpoint stay cheap.
func diffGraph(directed bool, rng *rand.Rand) *graph.Graph {
	if !directed {
		return graphgen.WattsStrogatz(500, 2, 0.1, rng)
	}
	b := graph.NewDirectedBuilder(400)
	for i := 0; i < 1200; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(400)), graph.NodeID(rng.IntN(400)))
	}
	return b.MustBuild()
}

// assertIndexesIdentical fails unless every entry of every level agrees.
func assertIndexesIdentical(t *testing.T, ctx string, got, want *Index) {
	t.Helper()
	if got.MaxLevel() != want.MaxLevel() {
		t.Fatalf("%s: maxLevel %d != %d", ctx, got.MaxLevel(), want.MaxLevel())
	}
	for h := 1; h <= want.MaxLevel(); h++ {
		g, w := got.Sizes(h), want.Sizes(h)
		for v := range w {
			if g[v] != w[v] {
				t.Fatalf("%s: Size(%d, %d) = %d, rebuild says %d", ctx, v, h, g[v], w[v])
			}
		}
	}
}

// TestDifferentialApplyDelta drives 10k seeded random edge flips
// through Delta + ApplyDelta, one flip per delta, and asserts the
// incrementally maintained index is identical to a from-scratch Build
// at every checkpoint.
func TestDifferentialApplyDelta(t *testing.T) {
	total := 0
	for _, cfg := range diffConfigs() {
		cfg := cfg
		total += cfg.flips
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(cfg.seed, 0xd1ff))
			g := diffGraph(cfg.directed, rng)
			idx, err := Build(g, cfg.maxLevel, Options{})
			if err != nil {
				t.Fatal(err)
			}
			stream := graphgen.NewFlipStream(g, 0.5, rng)
			d := graph.NewDelta(g)
			for i := 1; i <= cfg.flips; i++ {
				flip := stream.Next()
				applied, err := d.Apply([]graph.EdgeChange{flip})
				if err != nil {
					t.Fatalf("flip %d (%+v): %v", i, flip, err)
				}
				if len(applied) != 1 {
					t.Fatalf("flip %d (%+v): stream emitted a no-op", i, flip)
				}
				g = d.Compact()
				if _, err := idx.ApplyDelta(g, applied, Options{Workers: 1}); err != nil {
					t.Fatalf("flip %d (%+v): %v", i, flip, err)
				}
				if i%cfg.checkEvery == 0 || i == cfg.flips {
					if g.NumEdges() != stream.NumEdges() {
						t.Fatalf("flip %d: graph has %d edges, stream says %d", i, g.NumEdges(), stream.NumEdges())
					}
					fresh, err := Build(g, cfg.maxLevel, Options{})
					if err != nil {
						t.Fatal(err)
					}
					assertIndexesIdentical(t, fmt.Sprintf("after flip %d", i), idx, fresh)
				}
			}
		})
	}
	if total < 10000 {
		t.Fatalf("differential sweep covers %d flips, want >= 10000", total)
	}
}

// TestDifferentialApplyDeltaBatched does the same with batches of flips
// per ApplyDelta call — the grouped-mutation path the server's edge
// endpoint exercises — including batches that contain cancelling pairs.
func TestDifferentialApplyDeltaBatched(t *testing.T) {
	for _, directed := range []bool{false, true} {
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(77, 0xba7c4))
			g := diffGraph(directed, rng)
			const maxLevel = 2
			idx, err := Build(g, maxLevel, Options{})
			if err != nil {
				t.Fatal(err)
			}
			stream := graphgen.NewFlipStream(g, 0.5, rng)
			for batch := 0; batch < 25; batch++ {
				d := graph.NewDelta(g)
				applied, err := d.Apply(stream.Take(64))
				if err != nil {
					t.Fatal(err)
				}
				g = d.Compact()
				if _, err := idx.ApplyDelta(g, applied, Options{}); err != nil {
					t.Fatal(err)
				}
				fresh, err := Build(g, maxLevel, Options{})
				if err != nil {
					t.Fatal(err)
				}
				assertIndexesIdentical(t, fmt.Sprintf("after batch %d", batch), idx, fresh)
			}
		})
	}
}

// TestFlipStreamReproducible pins the workload generator: the same seed
// must replay the same flips, or the differential evidence would not
// transfer across runs.
func TestFlipStreamReproducible(t *testing.T) {
	mk := func() []graph.EdgeChange {
		rng := rand.New(rand.NewPCG(5, 5))
		return graphgen.NewFlipStream(graphgen.WattsStrogatz(200, 2, 0.2, rng), 0.5, rng).Take(500)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip %d differs across identically seeded streams: %+v vs %+v", i, a[i], b[i])
		}
	}
}
