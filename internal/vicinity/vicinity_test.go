package vicinity

import (
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

func TestBuildErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := Build(g, 0, Options{}); err == nil {
		t.Error("maxLevel 0 should fail")
	}
}

func TestIndexMatchesDirectBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	g := graphgen.ErdosRenyi(300, 900, rng)
	idx, err := Build(g, 3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bfs := graph.NewBFS(g)
	for v := 0; v < g.NumNodes(); v++ {
		for h := 1; h <= 3; h++ {
			want := bfs.VicinitySize(graph.NodeID(v), h)
			if got := idx.Size(graph.NodeID(v), h); got != want {
				t.Fatalf("Size(%d, %d) = %d, want %d", v, h, got, want)
			}
		}
	}
}

func TestIndexPathGraph(t *testing.T) {
	g := graph.Path(10)
	idx, err := Build(g, 2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// middle node: |V^1| = 3, |V^2| = 5; end node: |V^1| = 2, |V^2| = 3
	if idx.Size(5, 1) != 3 || idx.Size(5, 2) != 5 {
		t.Errorf("middle sizes = %d,%d", idx.Size(5, 1), idx.Size(5, 2))
	}
	if idx.Size(0, 1) != 2 || idx.Size(0, 2) != 3 {
		t.Errorf("end sizes = %d,%d", idx.Size(0, 1), idx.Size(0, 2))
	}
	if idx.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d", idx.MaxLevel())
	}
	if idx.Graph() != g {
		t.Error("Graph() identity")
	}
}

func TestIndexLevelBoundsPanic(t *testing.T) {
	g := graph.Path(4)
	idx, _ := Build(g, 2, Options{})
	for _, h := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %d should panic", h)
				}
			}()
			idx.Size(0, h)
		}()
	}
}

func TestSumSizesAndWeights(t *testing.T) {
	g := graph.Path(5)
	idx, _ := Build(g, 1, Options{})
	nodes := []graph.NodeID{0, 2, 4}
	// |V^1| = 2, 3, 2
	if got := idx.SumSizes(nodes, 1); got != 7 {
		t.Errorf("SumSizes = %g, want 7", got)
	}
	w := idx.Weights(nodes, 1)
	if len(w) != 3 || w[0] != 2 || w[1] != 3 || w[2] != 2 {
		t.Errorf("Weights = %v", w)
	}
	col := idx.Sizes(1)
	if len(col) != 5 || col[2] != 3 {
		t.Errorf("Sizes column = %v", col)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 1))
	g := graphgen.ErdosRenyi(200, 600, rng)
	one, _ := Build(g, 2, Options{Workers: 1})
	many, _ := Build(g, 2, Options{Workers: 8})
	for h := 1; h <= 2; h++ {
		a, b := one.Sizes(h), many.Sizes(h)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("h=%d node %d: 1-worker %d != 8-worker %d", h, v, a[v], b[v])
			}
		}
	}
}

func TestApplyDeltaSingleInsert(t *testing.T) {
	// Start with a path, add a chord, verify affected entries match a
	// fresh rebuild.
	g := graph.Path(12)
	idx, _ := Build(g, 2, Options{})

	d := graph.NewDelta(g)
	changes, err := d.Apply([]graph.EdgeChange{{U: 2, V: 9, Insert: true}})
	if err != nil {
		t.Fatal(err)
	}
	g2 := d.Compact()
	recomputed, err := idx.ApplyDelta(g2, changes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed == 0 {
		t.Fatal("ApplyDelta recomputed no entries for a real flip")
	}
	if idx.Graph() != g2 {
		t.Fatal("ApplyDelta did not rebind the index to the new graph")
	}

	fresh, _ := Build(g2, 2, Options{})
	for v := 0; v < 12; v++ {
		for h := 1; h <= 2; h++ {
			if idx.Size(graph.NodeID(v), h) != fresh.Size(graph.NodeID(v), h) {
				t.Fatalf("after update, Size(%d,%d) = %d, fresh = %d",
					v, h, idx.Size(graph.NodeID(v), h), fresh.Size(graph.NodeID(v), h))
			}
		}
	}
}

func TestApplyDeltaDisconnectingDeletion(t *testing.T) {
	// Deleting a bridge shrinks vicinities of nodes that can no longer
	// be reached from the deleted edge in the NEW graph — the case a
	// new-graph-only dirty scan would miss.
	g := graph.Path(8)
	idx, _ := Build(g, 3, Options{})

	d := graph.NewDelta(g)
	changes, err := d.Apply([]graph.EdgeChange{{U: 3, V: 4, Insert: false}})
	if err != nil {
		t.Fatal(err)
	}
	g2 := d.Compact()
	if _, err := idx.ApplyDelta(g2, changes, Options{}); err != nil {
		t.Fatal(err)
	}
	fresh, _ := Build(g2, 3, Options{})
	for v := 0; v < 8; v++ {
		for h := 1; h <= 3; h++ {
			if idx.Size(graph.NodeID(v), h) != fresh.Size(graph.NodeID(v), h) {
				t.Fatalf("after bridge deletion, Size(%d,%d) = %d, fresh = %d",
					v, h, idx.Size(graph.NodeID(v), h), fresh.Size(graph.NodeID(v), h))
			}
		}
	}
}

func TestClone(t *testing.T) {
	g := graph.Cycle(10)
	idx, _ := Build(g, 2, Options{})
	cp := idx.Clone()

	d := graph.NewDelta(g)
	changes, _ := d.Apply([]graph.EdgeChange{{U: 0, V: 5, Insert: true}})
	g2 := d.Compact()
	if _, err := cp.ApplyDelta(g2, changes, Options{}); err != nil {
		t.Fatal(err)
	}
	if idx.Graph() != g {
		t.Error("mutating a clone rebound the original")
	}
	fresh, _ := Build(g, 2, Options{})
	for v := 0; v < 10; v++ {
		if idx.Size(graph.NodeID(v), 2) != fresh.Size(graph.NodeID(v), 2) {
			t.Fatalf("mutating a clone changed the original at node %d", v)
		}
	}
}

func TestBuildForNodes(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 1))
	g := graphgen.ErdosRenyi(150, 450, rng)
	nodes := []graph.NodeID{3, 77, 149, 42}
	partial, err := BuildForNodes(g, nodes, 2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := Build(g, 2, Options{})
	for _, v := range nodes {
		for h := 1; h <= 2; h++ {
			if partial.Size(v, h) != full.Size(v, h) {
				t.Fatalf("partial Size(%d,%d) = %d, full = %d", v, h, partial.Size(v, h), full.Size(v, h))
			}
		}
	}
	if _, err := BuildForNodes(g, nodes, 0, Options{}); err == nil {
		t.Error("maxLevel 0 should fail")
	}
}

func TestApplyDeltaMismatch(t *testing.T) {
	idx, _ := Build(graph.Path(5), 1, Options{})
	if _, err := idx.ApplyDelta(graph.Path(6), nil, Options{}); err == nil {
		t.Error("delta with different node count should fail")
	}
	idx2, _ := Build(graph.Path(5), 1, Options{})
	dir := graph.NewDirectedBuilder(5)
	dir.AddEdge(0, 1)
	if _, err := idx2.ApplyDelta(dir.MustBuild(), nil, Options{}); err == nil {
		t.Error("delta changing directedness should fail")
	}
	if _, err := idx2.ApplyDelta(graph.Path(5), []graph.EdgeChange{{U: 0, V: 9, Insert: true}}, Options{}); err == nil {
		t.Error("change endpoint outside node range should fail")
	}
}
