package vicinity

import (
	"math/rand/v2"
	"testing"

	"tesc/internal/graph"
	"tesc/internal/graphgen"
)

func TestBuildErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := Build(g, 0, Options{}); err == nil {
		t.Error("maxLevel 0 should fail")
	}
}

func TestIndexMatchesDirectBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	g := graphgen.ErdosRenyi(300, 900, rng)
	idx, err := Build(g, 3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bfs := graph.NewBFS(g)
	for v := 0; v < g.NumNodes(); v++ {
		for h := 1; h <= 3; h++ {
			want := bfs.VicinitySize(graph.NodeID(v), h)
			if got := idx.Size(graph.NodeID(v), h); got != want {
				t.Fatalf("Size(%d, %d) = %d, want %d", v, h, got, want)
			}
		}
	}
}

func TestIndexPathGraph(t *testing.T) {
	g := graph.Path(10)
	idx, err := Build(g, 2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// middle node: |V^1| = 3, |V^2| = 5; end node: |V^1| = 2, |V^2| = 3
	if idx.Size(5, 1) != 3 || idx.Size(5, 2) != 5 {
		t.Errorf("middle sizes = %d,%d", idx.Size(5, 1), idx.Size(5, 2))
	}
	if idx.Size(0, 1) != 2 || idx.Size(0, 2) != 3 {
		t.Errorf("end sizes = %d,%d", idx.Size(0, 1), idx.Size(0, 2))
	}
	if idx.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d", idx.MaxLevel())
	}
	if idx.Graph() != g {
		t.Error("Graph() identity")
	}
}

func TestIndexLevelBoundsPanic(t *testing.T) {
	g := graph.Path(4)
	idx, _ := Build(g, 2, Options{})
	for _, h := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %d should panic", h)
				}
			}()
			idx.Size(0, h)
		}()
	}
}

func TestSumSizesAndWeights(t *testing.T) {
	g := graph.Path(5)
	idx, _ := Build(g, 1, Options{})
	nodes := []graph.NodeID{0, 2, 4}
	// |V^1| = 2, 3, 2
	if got := idx.SumSizes(nodes, 1); got != 7 {
		t.Errorf("SumSizes = %g, want 7", got)
	}
	w := idx.Weights(nodes, 1)
	if len(w) != 3 || w[0] != 2 || w[1] != 3 || w[2] != 2 {
		t.Errorf("Weights = %v", w)
	}
	col := idx.Sizes(1)
	if len(col) != 5 || col[2] != 3 {
		t.Errorf("Sizes column = %v", col)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 1))
	g := graphgen.ErdosRenyi(200, 600, rng)
	one, _ := Build(g, 2, Options{Workers: 1})
	many, _ := Build(g, 2, Options{Workers: 8})
	for h := 1; h <= 2; h++ {
		a, b := one.Sizes(h), many.Sizes(h)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("h=%d node %d: 1-worker %d != 8-worker %d", h, v, a[v], b[v])
			}
		}
	}
}

func TestUpdateAfterEdgeChange(t *testing.T) {
	// Start with a path, add a chord, verify affected entries match a
	// fresh rebuild.
	g := graph.Path(12)
	idx, _ := Build(g, 2, Options{})

	b := graph.NewBuilder(12)
	g.ForEachEdge(func(u, v graph.NodeID) bool { b.AddEdge(u, v); return true })
	b.AddEdge(2, 9)
	g2 := b.MustBuild()

	if err := idx.Rebind(g2); err != nil {
		t.Fatal(err)
	}
	idx.UpdateAfterEdgeChange(2, 9)

	fresh, _ := Build(g2, 2, Options{})
	for v := 0; v < 12; v++ {
		for h := 1; h <= 2; h++ {
			if idx.Size(graph.NodeID(v), h) != fresh.Size(graph.NodeID(v), h) {
				t.Fatalf("after update, Size(%d,%d) = %d, fresh = %d",
					v, h, idx.Size(graph.NodeID(v), h), fresh.Size(graph.NodeID(v), h))
			}
		}
	}
}

func TestBuildForNodes(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 1))
	g := graphgen.ErdosRenyi(150, 450, rng)
	nodes := []graph.NodeID{3, 77, 149, 42}
	partial, err := BuildForNodes(g, nodes, 2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := Build(g, 2, Options{})
	for _, v := range nodes {
		for h := 1; h <= 2; h++ {
			if partial.Size(v, h) != full.Size(v, h) {
				t.Fatalf("partial Size(%d,%d) = %d, full = %d", v, h, partial.Size(v, h), full.Size(v, h))
			}
		}
	}
	if _, err := BuildForNodes(g, nodes, 0, Options{}); err == nil {
		t.Error("maxLevel 0 should fail")
	}
}

func TestRebindNodeCountMismatch(t *testing.T) {
	idx, _ := Build(graph.Path(5), 1, Options{})
	if err := idx.Rebind(graph.Path(6)); err == nil {
		t.Error("rebind with different node count should fail")
	}
}
