// Package vicinity precomputes and maintains the per-node vicinity-size
// index |V^h_v| that the paper's rejection and importance samplers
// require (§4.2: "|V^h_v|'s (h = 1, ..., hm) can be pre-computed offline
// by doing a hm-hop BFS from each node in the graph. The space cost is
// only O(|V|) for each vicinity level").
//
// Construction runs one bounded-depth BFS per node, fanned out over a
// goroutine pool; each worker owns a private BFS engine so the scan is
// embarrassingly parallel. The index also supports the incremental
// maintenance the paper alludes to ("once we obtain the index, it can be
// efficiently updated as the graph changes"): an edge flip only perturbs
// the h-vicinities of nodes within h hops of its endpoints.
package vicinity

import (
	"fmt"
	"runtime"
	"sync"

	"tesc/internal/graph"
)

// Index stores |V^h_v| for every node v and level h = 1..MaxLevel.
type Index struct {
	g        *graph.Graph
	maxLevel int
	sizes    [][]int32 // sizes[h-1][v] = |V^h_v|
}

// Options configures index construction.
type Options struct {
	// Workers is the goroutine-pool size; 0 means GOMAXPROCS.
	Workers int
}

// Build computes the index for levels 1..maxLevel over g.
func Build(g *graph.Graph, maxLevel int, opts Options) (*Index, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("vicinity: maxLevel must be >= 1, got %d", maxLevel)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	idx := &Index{g: g, maxLevel: maxLevel}
	idx.sizes = make([][]int32, maxLevel)
	for h := range idx.sizes {
		idx.sizes[h] = make([]int32, n)
	}

	var wg sync.WaitGroup
	const chunk = 1024
	next := make(chan int)
	go func() {
		for lo := 0; lo < n; lo += chunk {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bfs := graph.NewBFS(g)
			counts := make([]int32, maxLevel+1)
			for lo := range next {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					idx.computeNode(bfs, graph.NodeID(v), counts)
				}
			}
		}()
	}
	wg.Wait()
	return idx, nil
}

// computeNode runs one maxLevel-hop BFS from v and fills sizes[*][v].
// counts is scratch of length maxLevel+1.
func (idx *Index) computeNode(bfs *graph.BFS, v graph.NodeID, counts []int32) {
	for i := range counts {
		counts[i] = 0
	}
	bfs.Run([]graph.NodeID{v}, idx.maxLevel, func(_ graph.NodeID, d int) {
		counts[d]++
	})
	cum := int32(0)
	for h := 0; h <= idx.maxLevel; h++ {
		cum += counts[h]
		if h >= 1 {
			idx.sizes[h-1][v] = cum
		}
	}
}

// BuildForNodes computes the index entries for the given nodes only;
// entries of all other nodes are left at zero and must not be queried.
// The samplers only consult |V^h_v| for event nodes (§4.2), so a partial
// index over Va∪b suffices for a single test and costs |Va∪b| BFS
// traversals instead of |V| — the shortcut the efficiency experiments
// (Figure 9) use on the 20M-node graph, where full offline construction
// is a one-time cost the paper excludes from sampling time.
func BuildForNodes(g *graph.Graph, nodes []graph.NodeID, maxLevel int, opts Options) (*Index, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("vicinity: maxLevel must be >= 1, got %d", maxLevel)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := &Index{g: g, maxLevel: maxLevel}
	idx.sizes = make([][]int32, maxLevel)
	for h := range idx.sizes {
		idx.sizes[h] = make([]int32, g.NumNodes())
	}
	var wg sync.WaitGroup
	const chunk = 256
	next := make(chan int)
	go func() {
		for lo := 0; lo < len(nodes); lo += chunk {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bfs := graph.NewBFS(g)
			counts := make([]int32, maxLevel+1)
			for lo := range next {
				hi := lo + chunk
				if hi > len(nodes) {
					hi = len(nodes)
				}
				for _, v := range nodes[lo:hi] {
					idx.computeNode(bfs, v, counts)
				}
			}
		}()
	}
	wg.Wait()
	return idx, nil
}

// MaxLevel returns the largest level the index covers.
func (idx *Index) MaxLevel() int { return idx.maxLevel }

// Graph returns the graph the index was built over.
func (idx *Index) Graph() *graph.Graph { return idx.g }

// Size returns |V^h_v|. It panics if h is outside [1, MaxLevel].
func (idx *Index) Size(v graph.NodeID, h int) int {
	idx.checkLevel(h)
	return int(idx.sizes[h-1][v])
}

// Sizes returns the full |V^h_·| column for level h. The slice aliases
// internal storage and must not be modified.
func (idx *Index) Sizes(h int) []int32 {
	idx.checkLevel(h)
	return idx.sizes[h-1]
}

// SumSizes returns Nsum = Σ_{v∈nodes} |V^h_v| (§4.2), the normalizer of
// the weighted event-node distribution.
func (idx *Index) SumSizes(nodes []graph.NodeID, h int) float64 {
	idx.checkLevel(h)
	col := idx.sizes[h-1]
	var sum float64
	for _, v := range nodes {
		sum += float64(col[v])
	}
	return sum
}

// Weights returns the |V^h_v| values of the given nodes as float64s, the
// weight vector for alias-table construction.
func (idx *Index) Weights(nodes []graph.NodeID, h int) []float64 {
	idx.checkLevel(h)
	col := idx.sizes[h-1]
	out := make([]float64, len(nodes))
	for i, v := range nodes {
		out[i] = float64(col[v])
	}
	return out
}

// UpdateAfterEdgeChange recomputes the index entries invalidated by
// adding or removing the single edge {u, w}: exactly the nodes whose
// maxLevel-vicinity contains u or w, i.e. nodes within maxLevel hops of
// either endpoint in the *new* graph g (for removals the old graph's
// reach must be covered too, so pass the union graph's endpoints —
// callers that flip one edge at a time can simply call this with both the
// old and new graphs' BFS reach by invoking it on the new graph; distances
// to other nodes only shrink on addition and grow on removal, and the
// affected set is within maxLevel of an endpoint under whichever graph
// still has the longer reach).
//
// The index must be rebound to the new graph first via Rebind.
func (idx *Index) UpdateAfterEdgeChange(u, w graph.NodeID) {
	bfs := graph.NewBFS(idx.g)
	var dirty []graph.NodeID
	dirty = bfs.SetVicinity([]graph.NodeID{u, w}, idx.maxLevel, dirty)
	counts := make([]int32, idx.maxLevel+1)
	for _, v := range dirty {
		idx.computeNode(bfs, v, counts)
	}
}

// Rebind points the index at a structurally updated graph with the same
// node count (e.g. one edge added or removed). Entries are NOT
// recomputed; call UpdateAfterEdgeChange for each flipped edge.
func (idx *Index) Rebind(g *graph.Graph) error {
	if g.NumNodes() != idx.g.NumNodes() {
		return fmt.Errorf("vicinity: rebind node count %d != %d", g.NumNodes(), idx.g.NumNodes())
	}
	idx.g = g
	return nil
}

func (idx *Index) checkLevel(h int) {
	if h < 1 || h > idx.maxLevel {
		panic(fmt.Sprintf("vicinity: level %d outside [1, %d]", h, idx.maxLevel))
	}
}
