// Package vicinity precomputes and maintains the per-node vicinity-size
// index |V^h_v| that the paper's rejection and importance samplers
// require (§4.2: "|V^h_v|'s (h = 1, ..., hm) can be pre-computed offline
// by doing a hm-hop BFS from each node in the graph. The space cost is
// only O(|V|) for each vicinity level").
//
// Construction runs one bounded-depth BFS per node, fanned out over a
// goroutine pool; each worker owns a private BFS engine so the scan is
// embarrassingly parallel. The index also supports the incremental
// maintenance the paper alludes to ("once we obtain the index, it can be
// efficiently updated as the graph changes"): an edge flip only perturbs
// the h-vicinities of nodes within h hops of its endpoints.
package vicinity

import (
	"fmt"
	"runtime"
	"sync"

	"tesc/internal/graph"
)

// Index stores |V^h_v| for every node v and level h = 1..MaxLevel.
type Index struct {
	g        *graph.Graph
	maxLevel int
	sizes    [][]int32 // sizes[h-1][v] = |V^h_v|
}

// Options configures index construction.
type Options struct {
	// Workers is the goroutine-pool size; 0 means GOMAXPROCS.
	Workers int
}

// Build computes the index for levels 1..maxLevel over g.
func Build(g *graph.Graph, maxLevel int, opts Options) (*Index, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("vicinity: maxLevel must be >= 1, got %d", maxLevel)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	idx := &Index{g: g, maxLevel: maxLevel}
	idx.sizes = make([][]int32, maxLevel)
	for h := range idx.sizes {
		idx.sizes[h] = make([]int32, n)
	}

	var wg sync.WaitGroup
	const chunk = 1024
	next := make(chan int)
	go func() {
		for lo := 0; lo < n; lo += chunk {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bfs := graph.NewBFS(g)
			counts := make([]int32, maxLevel+1)
			for lo := range next {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					idx.computeNode(bfs, graph.NodeID(v), counts)
				}
			}
		}()
	}
	wg.Wait()
	return idx, nil
}

// computeNode runs one maxLevel-hop BFS from v and fills sizes[*][v].
// counts is scratch of length maxLevel+1.
func (idx *Index) computeNode(bfs *graph.BFS, v graph.NodeID, counts []int32) {
	for i := range counts {
		counts[i] = 0
	}
	bfs.Run([]graph.NodeID{v}, idx.maxLevel, func(_ graph.NodeID, d int) {
		counts[d]++
	})
	cum := int32(0)
	for h := 0; h <= idx.maxLevel; h++ {
		cum += counts[h]
		if h >= 1 {
			idx.sizes[h-1][v] = cum
		}
	}
}

// BuildForNodes computes the index entries for the given nodes only;
// entries of all other nodes are left at zero and must not be queried.
// The samplers only consult |V^h_v| for event nodes (§4.2), so a partial
// index over Va∪b suffices for a single test and costs |Va∪b| BFS
// traversals instead of |V| — the shortcut the efficiency experiments
// (Figure 9) use on the 20M-node graph, where full offline construction
// is a one-time cost the paper excludes from sampling time.
func BuildForNodes(g *graph.Graph, nodes []graph.NodeID, maxLevel int, opts Options) (*Index, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("vicinity: maxLevel must be >= 1, got %d", maxLevel)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := &Index{g: g, maxLevel: maxLevel}
	idx.sizes = make([][]int32, maxLevel)
	for h := range idx.sizes {
		idx.sizes[h] = make([]int32, g.NumNodes())
	}
	var wg sync.WaitGroup
	const chunk = 256
	next := make(chan int)
	go func() {
		for lo := 0; lo < len(nodes); lo += chunk {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bfs := graph.NewBFS(g)
			counts := make([]int32, maxLevel+1)
			for lo := range next {
				hi := lo + chunk
				if hi > len(nodes) {
					hi = len(nodes)
				}
				for _, v := range nodes[lo:hi] {
					idx.computeNode(bfs, v, counts)
				}
			}
		}()
	}
	wg.Wait()
	return idx, nil
}

// FromSizes reconstructs an index from persisted per-level size
// columns, taking ownership of the slices: sizes[h-1][v] = |V^h_v|,
// exactly the layout Sizes exposes. It is the trust boundary for
// indexes deserialized from disk, so the shape and the cheap semantic
// invariants are enforced: every column spans the graph's node count,
// and each node's sizes are non-decreasing in h and at most |V|
// (vicinities only grow with the level; zeros are legal — BuildForNodes
// leaves unqueried entries at zero). The expensive invariant — that the
// values match a BFS recount — is the caller's integrity problem
// (checksums), not a load-time recomputation.
func FromSizes(g *graph.Graph, sizes [][]int32) (*Index, error) {
	if len(sizes) < 1 {
		return nil, fmt.Errorf("vicinity: restore needs at least one level")
	}
	n := g.NumNodes()
	for h, col := range sizes {
		if len(col) != n {
			return nil, fmt.Errorf("vicinity: level %d has %d entries, graph has %d nodes", h+1, len(col), n)
		}
	}
	for v := 0; v < n; v++ {
		prev := int32(0)
		for h, col := range sizes {
			s := col[v]
			if s < prev || int64(s) > int64(n) {
				return nil, fmt.Errorf("vicinity: |V^%d_%d| = %d invalid (prev level %d, n = %d)", h+1, v, s, prev, n)
			}
			prev = s
		}
	}
	return &Index{g: g, maxLevel: len(sizes), sizes: sizes}, nil
}

// MaxLevel returns the largest level the index covers.
func (idx *Index) MaxLevel() int { return idx.maxLevel }

// Graph returns the graph the index was built over.
func (idx *Index) Graph() *graph.Graph { return idx.g }

// Size returns |V^h_v|. It panics if h is outside [1, MaxLevel].
func (idx *Index) Size(v graph.NodeID, h int) int {
	idx.checkLevel(h)
	return int(idx.sizes[h-1][v])
}

// Sizes returns the full |V^h_·| column for level h. The slice aliases
// internal storage and must not be modified.
func (idx *Index) Sizes(h int) []int32 {
	idx.checkLevel(h)
	return idx.sizes[h-1]
}

// SumSizes returns Nsum = Σ_{v∈nodes} |V^h_v| (§4.2), the normalizer of
// the weighted event-node distribution.
func (idx *Index) SumSizes(nodes []graph.NodeID, h int) float64 {
	idx.checkLevel(h)
	col := idx.sizes[h-1]
	var sum float64
	for _, v := range nodes {
		sum += float64(col[v])
	}
	return sum
}

// Weights returns the |V^h_v| values of the given nodes as float64s, the
// weight vector for alias-table construction.
func (idx *Index) Weights(nodes []graph.NodeID, h int) []float64 {
	idx.checkLevel(h)
	col := idx.sizes[h-1]
	out := make([]float64, len(nodes))
	for i, v := range nodes {
		out[i] = float64(col[v])
	}
	return out
}

// Clone returns an independent copy of the index: the sizes arrays are
// deep-copied, the graph binding is shared (it is immutable). The
// serving tier uses copy-on-write maintenance — clone, ApplyDelta on
// the clone, publish — so in-flight queries keep reading a consistent
// (graph, index) pair while the successor is repaired.
func (idx *Index) Clone() *Index {
	out := &Index{g: idx.g, maxLevel: idx.maxLevel}
	out.sizes = make([][]int32, len(idx.sizes))
	for h, col := range idx.sizes {
		out.sizes[h] = make([]int32, len(col))
		copy(out.sizes[h], col)
	}
	return out
}

// DirtySet returns the nodes whose level-1..maxLevel vicinities can
// differ between oldG and newG when the two graphs are related by the
// given edge flips — the locality argument of §4.2 made explicit:
// |V^h_x| (and any derived quantity, such as an event density measured
// over V^h_x) can only change if some shortest path from x crossed the
// h threshold, and any such path runs through an endpoint of a flipped
// edge — in the new graph for insertions (the path uses the new edge),
// in the old graph for deletions (the vanished path used the old
// edge). The dirty set is therefore the union of the maxLevel-hop
// balls around the flipped endpoints in the old and new graphs — two
// multi-source Batch BFS (Algorithm 1).
//
// On directed graphs the forward vicinity V^h_x changes only for nodes
// that can *reach* a flipped endpoint, so the dirty balls are
// traversed on the transposed graphs.
//
// Besides index repair (ApplyDelta), the set is exactly the
// invalidation set a density cache keyed by reference node needs after
// an edge mutation — the monitor subsystem's standing queries
// recompute densities only for sampled reference nodes in this set.
func DirtySet(oldG, newG *graph.Graph, changes []graph.EdgeChange, maxLevel int) ([]graph.NodeID, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("vicinity: maxLevel must be >= 1, got %d", maxLevel)
	}
	if newG.NumNodes() != oldG.NumNodes() {
		return nil, fmt.Errorf("vicinity: delta node count %d != %d", newG.NumNodes(), oldG.NumNodes())
	}
	if newG.Directed() != oldG.Directed() {
		return nil, fmt.Errorf("vicinity: delta changes graph directedness")
	}
	if len(changes) == 0 {
		return nil, nil
	}

	// Distinct flipped endpoints.
	seen := make(map[graph.NodeID]struct{}, len(changes)*2)
	endpoints := make([]graph.NodeID, 0, len(changes)*2)
	for _, c := range changes {
		for _, v := range [2]graph.NodeID{c.U, c.V} {
			if !oldG.Valid(v) {
				return nil, fmt.Errorf("vicinity: change endpoint %d outside node range [0,%d)", v, oldG.NumNodes())
			}
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				endpoints = append(endpoints, v)
			}
		}
	}

	reachOld, reachNew := oldG, newG
	if oldG.Directed() {
		reachOld, reachNew = oldG.Transpose(), newG.Transpose()
	}
	dirtyMark := make([]bool, oldG.NumNodes())
	var dirty []graph.NodeID
	for _, rg := range [2]*graph.Graph{reachOld, reachNew} {
		graph.NewBFS(rg).Run(endpoints, maxLevel, func(v graph.NodeID, _ int) {
			if !dirtyMark[v] {
				dirtyMark[v] = true
				dirty = append(dirty, v)
			}
		})
	}
	return dirty, nil
}

// ApplyDelta repairs the index after the graph changed from its bound
// graph to newG by the given edge flips, rebinding it to newG. It
// implements the incremental maintenance the paper alludes to ("once we
// obtain the index, it can be efficiently updated as the graph
// changes", §4.2): only the DirtySet entries are recomputed, fanned out
// over opts.Workers goroutines like Build.
//
// It returns the number of recomputed entries. newG must have the same
// node count and directedness as the bound graph; changes may be empty
// (then newG must equal the bound graph's edge set and nothing is
// recomputed).
func (idx *Index) ApplyDelta(newG *graph.Graph, changes []graph.EdgeChange, opts Options) (int, error) {
	dirty, err := idx.ApplyDeltaDirty(newG, changes, opts)
	return len(dirty), err
}

// ApplyDeltaDirty is ApplyDelta surfacing the repaired node set itself
// instead of just its size. The serving tier forwards the set to the
// monitor scheduler, which intersects it with each standing query's
// sampled reference nodes — the same locality bound drives both the
// index repair and the density-cache invalidation, so the ball BFS is
// paid once per mutation. The returned slice is in BFS discovery order
// and owned by the caller.
func (idx *Index) ApplyDeltaDirty(newG *graph.Graph, changes []graph.EdgeChange, opts Options) ([]graph.NodeID, error) {
	oldG := idx.g
	dirty, err := DirtySet(oldG, newG, changes, idx.maxLevel)
	if err != nil {
		return nil, err
	}
	idx.g = newG
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Small repairs are cheaper single-threaded than over a pool.
	const chunk = 256
	if len(dirty) <= chunk || workers == 1 {
		bfs := graph.NewBFS(newG)
		counts := make([]int32, idx.maxLevel+1)
		for _, v := range dirty {
			idx.computeNode(bfs, v, counts)
		}
		return dirty, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for lo := 0; lo < len(dirty); lo += chunk {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bfs := graph.NewBFS(newG)
			counts := make([]int32, idx.maxLevel+1)
			for lo := range next {
				hi := min(lo+chunk, len(dirty))
				for _, v := range dirty[lo:hi] {
					idx.computeNode(bfs, v, counts)
				}
			}
		}()
	}
	wg.Wait()
	return dirty, nil
}

func (idx *Index) checkLevel(h int) {
	if h < 1 || h > idx.maxLevel {
		panic(fmt.Sprintf("vicinity: level %d outside [1, %d]", h, idx.maxLevel))
	}
}
