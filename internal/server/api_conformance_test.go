package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"tesc/api"
)

// rawDo issues one request and returns status + body without any
// decoding, for conformance checks over error shapes.
func rawDo(t *testing.T, env *testEnv, method, path string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, env.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestErrorEnvelopeEverywhere drives a failure mode on every API
// surface — bad JSON, unknown graph, unknown nested resource, invalid
// name, semantic rejects — and asserts each non-2xx response is exactly
// the api.Error envelope: a known code whose StatusOf matches the HTTP
// status, and a human reason.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	env := newTestEnv(t)

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode api.ErrorCode
	}{
		{"register malformed json", "POST", "/v1/graphs", "{", api.CodeBadRequest},
		{"register empty name", "POST", "/v1/graphs", `{"name":"","edge_list":"1 2\n"}`, api.CodeInvalidName},
		{"register bad name", "POST", "/v1/graphs", `{"name":"a b","edge_list":"1 2\n"}`, api.CodeInvalidName},
		{"register duplicate", "POST", "/v1/graphs", `{"name":"g","edge_list":"1 2\n"}`, api.CodeConflict},
		{"register no source", "POST", "/v1/graphs", `{"name":"empty"}`, api.CodeBadRequest},
		{"get unknown graph", "GET", "/v1/graphs/nope", "", api.CodeNotFound},
		{"delete unknown graph", "DELETE", "/v1/graphs/nope", "", api.CodeNotFound},
		{"events unknown graph", "POST", "/v1/graphs/nope/events", `{"events":{"x":[1]}}`, api.CodeNotFound},
		{"events malformed json", "POST", "/v1/graphs/g/events", "{", api.CodeBadRequest},
		{"events out of range", "POST", "/v1/graphs/g/events", `{"events":{"x":[999999]}}`, api.CodeBadRequest},
		{"delete unknown event", "DELETE", "/v1/graphs/g/events/nope", "", api.CodeNotFound},
		{"edges malformed json", "POST", "/v1/graphs/g/edges", "{", api.CodeBadRequest},
		{"edges empty batch", "POST", "/v1/graphs/g/edges", `{"changes":[]}`, api.CodeBadRequest},
		{"correlate unknown event", "POST", "/v1/graphs/g/correlate", `{"a":"left","b":"nope","h":2}`, api.CodeNotFound},
		{"correlate bad h", "POST", "/v1/graphs/g/correlate", `{"a":"left","b":"right","h":0}`, api.CodeBadRequest},
		{"correlate bad method", "POST", "/v1/graphs/g/correlate", `{"a":"left","b":"right","h":2,"method":"psychic"}`, api.CodeBadRequest},
		{"screen bad h", "POST", "/v1/graphs/g/screen", `{"h":0}`, api.CodeBadRequest},
		{"monitor bad tail", "POST", "/v1/graphs/g/monitors", `{"a":"left","b":"right","h":2,"tail":"sideways"}`, api.CodeBadRequest},
		{"monitor unknown event", "POST", "/v1/graphs/g/monitors", `{"a":"left","b":"nope","h":2}`, api.CodeNotFound},
		{"get unknown monitor", "GET", "/v1/graphs/g/monitors/nope", "", api.CodeNotFound},
		{"delete unknown monitor", "DELETE", "/v1/graphs/g/monitors/nope", "", api.CodeNotFound},
		{"refresh unknown monitor", "POST", "/v1/graphs/g/monitors/nope/refresh", "", api.CodeNotFound},
		{"get unknown job", "GET", "/v1/jobs/nope", "", api.CodeNotFound},
		{"cancel unknown job", "DELETE", "/v1/jobs/nope", "", api.CodeNotFound},
		{"snapshot without data dir", "POST", "/v1/graphs/g/snapshot", "", api.CodeUnavailable},
		{"replica status without data dir", "GET", "/v1/replica/status", "", api.CodeUnavailable},
		{"replica wal missing params", "GET", "/v1/replica/wal", "", api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := rawDo(t, env, tc.method, tc.path, tc.body)
			var e api.Error
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("%s %s: body %q is not the error envelope: %v", tc.method, tc.path, raw, err)
			}
			if e.Code != tc.wantCode {
				t.Fatalf("%s %s: code %q, want %q (body %s)", tc.method, tc.path, e.Code, tc.wantCode, raw)
			}
			if e.Reason == "" {
				t.Fatalf("%s %s: envelope has no reason (body %s)", tc.method, tc.path, raw)
			}
			if want := api.StatusOf(e.Code); status != want {
				t.Fatalf("%s %s: HTTP %d, but StatusOf(%s) = %d", tc.method, tc.path, status, e.Code, want)
			}
			// The envelope must be exactly {code, reason[, retry_after_ms]}
			// — no legacy keys, no handler-specific extras.
			var loose map[string]any
			if err := json.Unmarshal(raw, &loose); err != nil {
				t.Fatal(err)
			}
			for k := range loose {
				switch k {
				case "code", "reason", "retry_after_ms":
				default:
					t.Fatalf("%s %s: envelope carries unexpected key %q (body %s)", tc.method, tc.path, k, raw)
				}
			}
		})
	}
}

// TestGraphNameValidationAtRouter exercises the router-level name gate:
// names that do not round-trip URL escaping are rejected with a typed
// 400 invalid_name at registration, and path lookups of such names are
// refused before touching the registry.
func TestGraphNameValidationAtRouter(t *testing.T) {
	env := newTestEnv(t)

	bad := []string{"a b", "a%2Fb", "a,b", "a;b", "日本", ".", ".."}
	for _, name := range bad {
		nameJSON, err := json.Marshal(name)
		if err != nil {
			t.Fatal(err)
		}
		status, raw := rawDo(t, env, "POST", "/v1/graphs",
			`{"name":`+string(nameJSON)+`,"edge_list":"1 2\n"}`)
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || status != http.StatusBadRequest || e.Code != api.CodeInvalidName {
			t.Errorf("register %q = %d %s, want 400 invalid_name", name, status, raw)
		}
		// The same name in the path is rejected with the typed 400, not
		// a 404 that would leak whether it exists. "." and ".." never
		// reach the router — the HTTP path cleaner collapses them first.
		if name == "." || name == ".." {
			continue
		}
		status, raw = rawDo(t, env, "GET", "/v1/graphs/"+url.PathEscape(name), "")
		if err := json.Unmarshal(raw, &e); err != nil || status != http.StatusBadRequest || e.Code != api.CodeInvalidName {
			t.Errorf("GET path %q = %d %s, want 400 invalid_name", name, status, raw)
		}
	}

	// Names that round-trip — including the tenant convention "acme:web"
	// — register and resolve fine.
	for _, name := range []string{"acme:web", "g-2_x.y", "ev@home"} {
		env.do(t, http.StatusCreated, "POST", "/v1/graphs",
			map[string]any{"name": name, "edge_list": "1 2\n2 3\n"}, nil)
		env.do(t, http.StatusOK, "GET", "/v1/graphs/"+name, nil, nil)
	}
}

// TestRoutesMatchAPITable pins the server's registered mux patterns to
// the public api.Routes table — the same table the OpenAPI generator
// reads — so a handler added without a spec entry (or vice versa) fails
// here instead of drifting silently.
func TestRoutesMatchAPITable(t *testing.T) {
	srv := New(Config{})
	registered := map[string]bool{}
	for _, p := range srv.Routes() {
		registered[p] = true
	}
	for _, r := range api.Routes {
		key := r.Method + " " + r.Pattern
		if !registered[key] {
			t.Errorf("api.Routes declares %q but the server does not register it", key)
		}
		delete(registered, key)
	}
	for p := range registered {
		t.Errorf("server registers %q but api.Routes does not declare it", p)
	}
}

// TestSuccessBodiesDecodeIntoAPITypes round-trips a few success
// responses through the public api structs with DisallowUnknownFields:
// any field the server emits that the api type does not declare fails
// the decode.
func TestSuccessBodiesDecodeIntoAPITypes(t *testing.T) {
	env := newTestEnv(t)

	strict := func(raw []byte, out any) error {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		return dec.Decode(out)
	}

	_, raw := rawDo(t, env, "GET", "/v1/graphs/g", "")
	var gi api.GraphInfo
	if err := strict(raw, &gi); err != nil {
		t.Errorf("GET graph body does not match api.GraphInfo: %v (%s)", err, raw)
	}

	_, raw = rawDo(t, env, "GET", "/v1/graphs", "")
	var list []api.GraphInfo
	if err := strict(raw, &list); err != nil {
		t.Errorf("list body does not match []api.GraphInfo: %v (%s)", err, raw)
	}

	_, raw = rawDo(t, env, "POST", "/v1/graphs/g/correlate",
		`{"a":"left","b":"right","h":2,"sample_size":100,"seed":7}`)
	var cr api.CorrelateResponse
	if err := strict(raw, &cr); err != nil {
		t.Errorf("correlate body does not match api.CorrelateResponse: %v (%s)", err, raw)
	}

	_, raw = rawDo(t, env, "GET", "/healthz", "")
	var h api.Health
	if err := strict(raw, &h); err != nil {
		t.Errorf("healthz body does not match api.Health: %v (%s)", err, raw)
	}
}
