package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tesc"
	"tesc/internal/snapshot"
)

// persistEnv builds a server on the given data directory and registers
// the standard two-community graph and events through HTTP.
func newPersistEnv(t *testing.T, dir string, delay time.Duration) *testEnv {
	t.Helper()
	g := tesc.RandomCommunityGraph(5, 40, 6, 0.5, 42)
	srv := New(Config{IndexCacheCapacity: 4, DataDir: dir, CheckpointDelay: delay})
	if _, err := srv.LoadData(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	env := &testEnv{srv: srv, ts: ts, graph: g}
	for v := 0; v < 15; v++ {
		env.va = append(env.va, v)
	}
	for v := 160; v < 175; v++ {
		env.vb = append(env.vb, v)
	}
	var edges strings.Builder
	if err := g.WriteGraph(&edges); err != nil {
		t.Fatal(err)
	}
	env.do(t, http.StatusCreated, "POST", "/v1/graphs",
		map[string]any{"name": "g", "edge_list": edges.String()}, nil)
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"left": env.va, "right": env.vb}}, nil)
	return env
}

// health fetches the healthz counters.
func health(t *testing.T, env *testEnv) map[string]any {
	t.Helper()
	var h map[string]any
	env.do(t, http.StatusOK, "GET", "/healthz", nil, &h)
	return h
}

// runScreen starts a screening sweep and polls it to completion.
func runScreen(t *testing.T, env *testEnv) *ScreenResultView {
	t.Helper()
	var accepted screenResponse
	env.do(t, http.StatusAccepted, "POST", "/v1/graphs/g/screen",
		map[string]any{"h": 1, "sample_size": 200, "seed": 11}, &accepted)
	var view JobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		env.do(t, http.StatusOK, "GET", "/v1/jobs/"+accepted.JobID, nil, &view)
		if view.Status == JobDone || view.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", view.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Status != JobDone {
		t.Fatalf("screen job failed: %s", view.Error)
	}
	return view.Result
}

// TestRestartWarmStart is the tentpole e2e: register, mutate,
// checkpoint, boot a second server on the same data dir, and prove it
// serves identical results with zero index builds.
func TestRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	// An hour-long debounce so only the explicit checkpoint writes —
	// the test stays deterministic.
	env1 := newPersistEnv(t, dir, time.Hour)

	// Build the h=2 vicinity index via an importance-sampling query,
	// then mutate edges so the persisted state is a post-mutation epoch
	// with an incrementally repaired index.
	correlateBody := map[string]any{"a": "left", "b": "right", "h": 2, "method": "importance", "seed": 7}
	var cold correlateResponse
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate", correlateBody, &cold)
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/edges",
		map[string]any{"insert": [][2]int{{0, 161}, {3, 170}}, "delete": [][2]int{{0, 1}}}, nil)
	var warm1 correlateResponse
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate", correlateBody, &warm1)
	screen1 := runScreen(t, env1)

	var ck checkpointInfo
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/snapshot", nil, &ck)
	if ck.Bytes == 0 || len(ck.IndexLevels) != 1 || ck.IndexLevels[0] != 2 {
		t.Fatalf("checkpoint info %+v: want non-empty file carrying the h=2 index", ck)
	}
	if _, err := os.Stat(filepath.Join(dir, "g.tescsnap")); err != nil {
		t.Fatal(err)
	}
	var info1 graphInfo
	env1.do(t, http.StatusOK, "GET", "/v1/graphs/g", nil, &info1)
	if b := env1.srv.Cache().Builds(); b != 1 {
		t.Fatalf("server 1 built %d indexes, want 1", b)
	}

	// Second server, same data dir: the registry, event store, epoch
	// stamps and the repaired index must all come back from disk.
	env2 := newRestartedEnv(t, dir)
	h := health(t, env2)
	if h["snapshot_loaded"].(float64) != 1 {
		t.Fatalf("snapshot_loaded = %v, want 1", h["snapshot_loaded"])
	}
	var info2 graphInfo
	env2.do(t, http.StatusOK, "GET", "/v1/graphs/g", nil, &info2)
	if info2.Nodes != info1.Nodes || info2.Edges != info1.Edges ||
		info2.Events != info1.Events || info2.Epoch != info1.Epoch {
		t.Fatalf("restored graph info %+v != pre-restart %+v", info2, info1)
	}

	// The first index-backed query after boot must be served from the
	// loaded snapshot: identical answer, zero builds.
	var warm2 correlateResponse
	env2.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate", correlateBody, &warm2)
	warm1.ElapsedMS, warm2.ElapsedMS = 0, 0
	if !reflect.DeepEqual(warm1, warm2) {
		t.Fatalf("correlate diverged across restart:\nbefore %+v\nafter  %+v", warm1, warm2)
	}
	screen2 := runScreen(t, env2)
	if !reflect.DeepEqual(screen1, screen2) {
		t.Fatalf("screen diverged across restart:\nbefore %+v\nafter  %+v", screen1, screen2)
	}
	h = health(t, env2)
	if got := h["index_built"].(float64); got != 0 {
		t.Fatalf("index_built = %v after warm-start queries, want 0", got)
	}
}

// newRestartedEnv boots a server on an existing data directory without
// registering anything — the restart half of the e2e tests.
func newRestartedEnv(t *testing.T, dir string) *testEnv {
	t.Helper()
	srv := New(Config{IndexCacheCapacity: 4, DataDir: dir, CheckpointDelay: time.Hour})
	if _, err := srv.LoadData(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{srv: srv, ts: ts}
}

// TestBootIgnoresTornAndCorruptFiles is the crash-safety case: a torn
// temp file (a checkpoint that died mid-write) and a corrupted
// snapshot must not block boot or register phantom graphs.
func TestBootIgnoresTornAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	env1 := newPersistEnv(t, dir, time.Hour)
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/snapshot", nil, nil)

	// A torn temp file exactly as snapshot.SaveFile would leave it.
	if err := os.WriteFile(filepath.Join(dir, "g.tescsnap.tmp-123"), []byte("TESCSNP1 torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupted snapshot: valid prefix, truncated body.
	valid, err := os.ReadFile(filepath.Join(dir, "g.tescsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.tescsnap"), valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{DataDir: dir})
	loaded, err := srv.LoadData()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Fatalf("loaded %d graphs, want 1 (bad files skipped)", loaded)
	}
	if names := srv.Registry().Names(); len(names) != 1 || names[0] != "g" {
		t.Fatalf("registry names = %v, want [g]", names)
	}
	if got := srv.snapLoaded.Load(); got != 1 {
		t.Fatalf("snapshot_loaded = %d, want 1", got)
	}
}

// TestBackgroundCheckpoint proves the debounced dirty-set flush: a
// mutation alone, with no explicit checkpoint call, must produce a
// loadable snapshot file.
func TestBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	env := newPersistEnv(t, dir, 20*time.Millisecond)
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/edges",
		map[string]any{"insert": [][2]int{{0, 99}}}, nil)

	// Registration itself checkpoints synchronously (the durable ack),
	// so a snapshot file exists from the start; the debounced flush is
	// proven by the file eventually carrying the mutation.
	path := filepath.Join(dir, "g.tescsnap")
	deadline := time.Now().Add(10 * time.Second)
	var snap *snapshot.Snapshot
	for {
		var err error
		snap, err = snapshot.LoadFile(path)
		if err == nil && snap.Store.NumEvents() == 2 && snap.Graph.HasEdge(0, 99) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never caught up (err=%v, snap=%+v)", err, snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if env.srv.snapSaved.Load() < 1 {
		t.Fatal("no checkpoint recorded")
	}
}

// TestDeleteGraphRemovesSnapshot ensures a deregistered graph cannot
// resurrect at the next boot.
func TestDeleteGraphRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	env := newPersistEnv(t, dir, time.Hour)
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/snapshot", nil, nil)
	env.do(t, http.StatusNoContent, "DELETE", "/v1/graphs/g", nil, nil)
	if _, err := os.Stat(filepath.Join(dir, "g.tescsnap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived graph deletion: %v", err)
	}
	srv := New(Config{DataDir: dir})
	if loaded, err := srv.LoadData(); err != nil || loaded != 0 {
		t.Fatalf("deleted graph came back: loaded=%d err=%v", loaded, err)
	}
}

// TestSnapshotImportAtAdmission registers a graph directly from a
// snapshot file — the admission-time import endpoint — and proves the
// persisted index serves the first query with zero builds.
func TestSnapshotImportAtAdmission(t *testing.T) {
	dir := t.TempDir()
	env1 := newPersistEnv(t, dir, time.Hour)
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "right", "h": 2, "method": "importance", "seed": 7}, nil)
	env1.do(t, http.StatusOK, "POST", "/v1/graphs/g/snapshot", nil, nil)

	srv := New(Config{IndexCacheCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	env2 := &testEnv{srv: srv, ts: ts}
	var info graphInfo
	env2.do(t, http.StatusCreated, "POST", "/v1/graphs",
		map[string]any{"name": "imported", "snapshot": filepath.Join(dir, "g.tescsnap")}, &info)
	if info.Events != 2 {
		t.Fatalf("imported %d events, want 2", info.Events)
	}
	env2.do(t, http.StatusOK, "POST", "/v1/graphs/imported/correlate",
		map[string]any{"a": "left", "b": "right", "h": 2, "method": "importance", "seed": 7}, nil)
	if b := srv.Cache().Builds(); b != 0 {
		t.Fatalf("import-backed query built %d indexes, want 0", b)
	}
	// Conflicting and bogus imports fail cleanly.
	env2.do(t, http.StatusConflict, "POST", "/v1/graphs",
		map[string]any{"name": "imported", "snapshot": filepath.Join(dir, "g.tescsnap")}, nil)
	env2.do(t, http.StatusBadRequest, "POST", "/v1/graphs",
		map[string]any{"name": "x", "snapshot": filepath.Join(dir, "missing.tescsnap")}, nil)
	env2.do(t, http.StatusBadRequest, "POST", "/v1/graphs",
		map[string]any{"name": "x", "snapshot": "s", "edge_list": "0 1"}, nil)
}
