package server

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tesc"
)

func testGraph(t *testing.T) *tesc.Graph {
	t.Helper()
	g, err := tesc.BuildGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testEntry registers a fresh graph under name and returns its entry.
func testEntry(t *testing.T, r *Registry, name string) *GraphEntry {
	t.Helper()
	e, err := r.Register(name, testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCacheSingleFlight is the contention witness the service depends
// on: many concurrent queries for the same (graph, h) must trigger
// exactly one vicinity.Build.
func TestCacheSingleFlight(t *testing.T) {
	e := testEntry(t, NewRegistry(), "g")
	c := NewIndexCache(4)

	// Stall construction until every goroutine has called Get, so the
	// test provably overlaps all requests with the in-flight build.
	const goroutines = 32
	var entered sync.WaitGroup
	entered.Add(1) // released once all Gets are issued
	inner := c.build
	var concurrentCalls atomic.Int64
	c.build = func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error) {
		concurrentCalls.Add(1)
		entered.Wait()
		return inner(g, maxLevel, workers)
	}

	var issued sync.WaitGroup
	results := make([]*tesc.VicinityIndex, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		issued.Add(1)
		go func(i int) {
			defer issued.Done()
			results[i], errs[i] = c.Get(e, e.Snapshot(), 2, 1)
		}(i)
	}
	// Let every goroutine either start the build or queue behind it,
	// then release. (The single builder is blocked in entered.Wait();
	// all others block on the ready channel.)
	for c.Len() == 0 {
		runtime.Gosched()
	}
	entered.Done()
	issued.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("Get %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("Get %d returned a different index instance", i)
		}
	}
	if got := c.Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want exactly 1 under contention", got)
	}
	if got := concurrentCalls.Load(); got != 1 {
		t.Fatalf("build hook called %d times, want 1", got)
	}

	// A later Get for the same key is a pure cache hit.
	if _, err := c.Get(e, e.Snapshot(), 2, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Builds(); got != 1 {
		t.Fatalf("Builds() after warm hit = %d, want 1", got)
	}
	// A lower level is covered by the deeper cached index: no build.
	idx, err := c.Get(e, e.Snapshot(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != results[0] {
		t.Fatal("level-1 query must reuse the cached level-2 index")
	}
	if got := c.Builds(); got != 1 {
		t.Fatalf("Builds() after lower-level reuse = %d, want 1", got)
	}
	// A deeper level than anything cached builds.
	if _, err := c.Get(e, e.Snapshot(), 3, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Builds(); got != 2 {
		t.Fatalf("Builds() after deeper level = %d, want 2", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	r := NewRegistry()
	a, b, x := testEntry(t, r, "a"), testEntry(t, r, "b"), testEntry(t, r, "x")
	c := NewIndexCache(2)
	mustGet := func(e *GraphEntry) {
		t.Helper()
		if _, err := c.Get(e, e.Snapshot(), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(a) // keys: {a}
	mustGet(b) // keys: {a, b}
	mustGet(a) // touch a, so b is now LRU
	mustGet(x) // evicts b; keys: {a, x}
	if got := c.Builds(); got != 3 {
		t.Fatalf("Builds() = %d, want 3", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	mustGet(a) // still cached: no new build
	if got := c.Builds(); got != 3 {
		t.Fatalf("Builds() after touching a = %d, want 3 (a must not be evicted)", got)
	}
	mustGet(b) // was evicted: rebuilds
	if got := c.Builds(); got != 4 {
		t.Fatalf("Builds() after re-requesting b = %d, want 4 (b was evicted)", got)
	}
}

func TestCacheFailedBuildNotCached(t *testing.T) {
	e := testEntry(t, NewRegistry(), "g")
	c := NewIndexCache(4)
	inner := c.build
	fail := true
	boom := errors.New("boom")
	c.build = func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error) {
		if fail {
			return nil, boom
		}
		return inner(g, maxLevel, workers)
	}
	if _, err := c.Get(e, e.Snapshot(), 1, 1); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want boom", err)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len() after failed build = %d, want 0", got)
	}
	fail = false
	if _, err := c.Get(e, e.Snapshot(), 1, 1); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if got := c.Builds(); got != 2 {
		t.Fatalf("Builds() = %d, want 2 (failure must not be cached)", got)
	}
}

func TestCacheEvictGraph(t *testing.T) {
	r := NewRegistry()
	a, b := testEntry(t, r, "a"), testEntry(t, r, "b")
	c := NewIndexCache(8)
	for _, e := range []*GraphEntry{a, b} {
		if _, err := c.Get(e, e.Snapshot(), 1, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(e, e.Snapshot(), 2, 1); err != nil {
			t.Fatal(err)
		}
	}
	c.EvictGraph(a)
	if got := c.Len(); got != 2 {
		t.Fatalf("Len() after EvictGraph = %d, want 2 (only b's entries)", got)
	}
	if _, err := c.Get(b, b.Snapshot(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Builds(); got != 4 {
		t.Fatalf("Builds() = %d, want 4 (b still cached)", got)
	}
	if _, err := c.Get(a, a.Snapshot(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Builds(); got != 5 {
		t.Fatalf("Builds() = %d, want 5 (a was evicted)", got)
	}
}

// TestCacheNameReuseIsolation guards the delete/re-register race fix:
// an index cached for a deleted graph must never serve a new graph
// registered under the same name, because keys are entry pointers.
func TestCacheNameReuseIsolation(t *testing.T) {
	r := NewRegistry()
	old := testEntry(t, r, "g")
	c := NewIndexCache(4)
	oldIdx, err := c.Get(old, old.Snapshot(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Remove("g"); !ok {
		t.Fatal("Remove failed")
	}
	// Simulate a stale in-flight insert: the old entry's index stays
	// cached (EvictGraph not called, worst case). Re-register "g".
	fresh := testEntry(t, r, "g")
	freshIdx, err := c.Get(fresh, fresh.Snapshot(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if freshIdx == oldIdx {
		t.Fatal("new graph under a reused name was served the old graph's index")
	}
	if got := c.Builds(); got != 2 {
		t.Fatalf("Builds() = %d, want 2 (fresh entry must build its own index)", got)
	}
}

// TestCacheStaleSnapshotSingleFlight pins the mutation-race path: when
// the cache has been refreshed past a reader's snapshot, lagging
// readers of that dead version share one side build instead of a
// thundering herd of private rebuilds, and the result is never cached.
func TestCacheStaleSnapshotSingleFlight(t *testing.T) {
	r := NewRegistry()
	e := testEntry(t, r, "g")
	c := NewIndexCache(4)

	before := e.Snapshot()
	if _, err := c.Get(e, before, 2, 1); err != nil {
		t.Fatal(err)
	}
	_, applied, err := e.MutateEdges([]tesc.EdgeChange{{U: 0, V: 3, Insert: true}},
		func(old, next Snapshot, ap []tesc.EdgeChange) error { c.Refresh(e, old, next, ap, 1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 {
		t.Fatalf("applied %d changes, want 1", len(applied))
	}
	buildsBefore := c.Builds()

	// Stall the build so all stale readers provably overlap it.
	const readers = 16
	inner := c.build
	var calls atomic.Int64
	release := make(chan struct{})
	c.build = func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error) {
		calls.Add(1)
		<-release
		return inner(g, maxLevel, workers)
	}
	var wg sync.WaitGroup
	results := make([]*tesc.VicinityIndex, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Get(e, before, 2, 1)
		}(i)
	}
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("stale Get %d: %v", i, errs[i])
		}
		if !results[i].BuiltFor(before.Graph) {
			t.Fatalf("stale Get %d returned an index for the wrong snapshot", i)
		}
		if results[i] != results[0] {
			t.Fatalf("stale Get %d did not share the single-flight build", i)
		}
	}
	if got := c.Builds() - buildsBefore; got != 1 {
		t.Fatalf("stale readers triggered %d builds, want 1", got)
	}

	// The dead version never entered the cache: a current-version Get
	// still serves the refreshed index without building.
	if _, err := c.Get(e, e.Snapshot(), 2, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Builds() - buildsBefore; got != 1 {
		t.Fatalf("current-version Get rebuilt (total extra builds %d), want the refreshed index served", got)
	}
}
