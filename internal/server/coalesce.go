package server

import (
	"encoding/json"
	"strconv"
	"sync"

	"tesc/api"
)

// Request coalescing for the correlate path. Correlate is a pure
// function of (graph name, snapshot epoch, request body): two identical
// requests against the same epoch compute bit-identical responses, so
// when one is already in flight the second should wait for its result
// instead of paying a second density phase. This generalizes the index
// cache's single-flight build to whole queries — under a thundering
// herd (a dashboard fanning out, a retry storm) the server computes
// each distinct query once per epoch.

// flightCall is one in-flight correlate computation. done closes when
// the leader has filled the outcome fields: resp on success (errCode
// empty), the error envelope's code and reason otherwise.
type flightCall struct {
	done    chan struct{}
	resp    correlateResponse
	errCode api.ErrorCode
	errMsg  string
	// ctxFail marks an outcome caused by the leader's own request
	// context (its client hung up or its deadline fired). Followers
	// must not adopt it — their clients are still waiting — so they
	// loop and re-join, one of them becoming the new leader.
	ctxFail bool
}

// flightGroup tracks in-flight correlate calls by key. The zero value
// is ready to use.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// join returns the call for key, creating it (leader == true) when no
// identical call is in flight. A follower waits on the call's done
// channel.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete publishes the leader's outcome: the key is retired first so
// requests arriving after this instant start a fresh computation (the
// epoch may have advanced), then done is closed to release the
// followers.
func (g *flightGroup) complete(key string, c *flightCall) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// flightKey canonicalizes a correlate request's identity. Marshaling
// the decoded struct (not the raw body) normalizes field order,
// whitespace and defaulted fields, so textually different but
// semantically identical requests coalesce.
func flightKey(graph string, epoch uint64, req *correlateRequest) string {
	b, err := json.Marshal(req)
	if err != nil {
		// Cannot happen for this struct; an unkeyable request simply
		// doesn't coalesce.
		return ""
	}
	return graph + "|" + strconv.FormatUint(epoch, 10) + "|" + string(b)
}
