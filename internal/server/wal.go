package server

import (
	"errors"
	"fmt"

	"tesc"
	"tesc/internal/graph"
	"tesc/internal/wal"
)

// errDurability marks mutation failures caused by the durability
// layer (WAL append or synchronous checkpoint), not by the request;
// handlers map it to 503 instead of 4xx. A mutation that cannot be
// logged is never applied and never acknowledged — fail closed.
var errDurability = errors.New("durability unavailable")

// walChanges converts applied public edge changes to WAL records.
func walChanges(changes []tesc.EdgeChange) []wal.EdgeChange {
	out := make([]wal.EdgeChange, len(changes))
	for i, c := range changes {
		out[i] = wal.EdgeChange{U: c.U, V: c.V, Insert: c.Insert}
	}
	return out
}

// publicChanges is walChanges' inverse, for replay.
func publicChanges(changes []wal.EdgeChange) []tesc.EdgeChange {
	out := make([]tesc.EdgeChange, len(changes))
	for i, c := range changes {
		out[i] = tesc.EdgeChange{U: c.U, V: c.V, Insert: c.Insert}
	}
	return out
}

// walAppend logs one record through the mutation WAL. A nil return on
// a SyncAlways log means the record is durable. Without a data dir —
// or before LoadData has opened the log — appends are no-ops and the
// server runs at the pre-WAL durability level (debounced snapshots
// only).
func (s *Server) walAppend(rec *wal.Record) error {
	p := s.persist
	if p == nil {
		return nil
	}
	lg := p.log()
	if lg == nil {
		return nil
	}
	return lg.Append(rec)
}

// edgeMutation is one durable edge-batch application.
type edgeMutation struct {
	snap       Snapshot
	applied    []tesc.EdgeChange
	migrated   int
	recomputed int
}

// applyEdges is the single serialized edge-mutation path: WAL append
// (log-before-publish), index-cache migration, monitor notification,
// publication, dirty mark. Both the HTTP handler (logIt=true) and WAL
// replay (logIt=false — the records being replayed ARE the log) go
// through it, so recovery exercises exactly the code production runs.
func (s *Server) applyEdges(e *GraphEntry, changes []tesc.EdgeChange, logIt bool) (edgeMutation, error) {
	var res edgeMutation
	snap, applied, err := e.MutateEdges(changes, func(old, next Snapshot, applied []tesc.EdgeChange) error {
		if logIt {
			// The append comes first: a mutation that cannot be made
			// durable must abort before the index cache learns about
			// the next graph version — a poisoned cache entry for a
			// version that never publishes would corrupt later reads.
			if err := s.walAppend(&wal.Record{
				Kind:         wal.KindEdges,
				Graph:        e.Name(),
				Epoch:        next.Epoch,
				GraphVersion: next.GraphVersion,
				Changes:      walChanges(applied),
			}); err != nil {
				return fmt.Errorf("%w: wal append: %v", errDurability, err)
			}
		}
		var dirty []int
		var dirtyLevel int
		res.migrated, res.recomputed, dirty, dirtyLevel = s.cache.Refresh(e, old, next, applied, s.indexWorkers)
		// Standing queries are notified inside the serialized mutation
		// path, before the successor snapshot publishes: no re-screen
		// can bind the new epoch without its invalidation queued. The
		// index repair's flipped-vicinity set rides along so the ball
		// BFS is not paid twice.
		s.monitors.NotifyEdgeDelta(e.Name(), old.Graph.Internal(), next.Graph.Internal(),
			internalChanges(applied), next.Epoch, internalNodes(dirty), dirtyLevel)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.snap, res.applied = snap, applied
	if len(applied) > 0 {
		s.markDirty(e.Name())
	}
	return res, nil
}

// applyEvents is applyEdges' twin for event mutations.
func (s *Server) applyEvents(e *GraphEntry, add, remove map[string][]int, logIt bool) error {
	err := e.MutateEventsNotify(add, remove, func(changed map[string][]graph.NodeID, nextEpoch uint64) error {
		if logIt {
			if err := s.walAppend(&wal.Record{
				Kind:   wal.KindEvents,
				Graph:  e.Name(),
				Epoch:  nextEpoch,
				Add:    add,
				Remove: remove,
			}); err != nil {
				return fmt.Errorf("%w: wal append: %v", errDurability, err)
			}
		}
		s.monitors.NotifyEventDelta(e.Name(), changed, nextEpoch)
		return nil
	})
	if err != nil {
		return err
	}
	s.markDirty(e.Name())
	return nil
}

// durableAck makes a non-logged structural change (graph registration,
// monitor create/delete) durable before the response acknowledges it.
// With the WAL open these rare operations checkpoint synchronously —
// they have no WAL record kind, and a snapshot write is their natural
// durability unit; without it (no -data, or before LoadData) they fall
// back to the debounced dirty mark.
func (s *Server) durableAck(name string) error {
	p := s.persist
	if p == nil {
		return nil
	}
	if p.log() == nil {
		s.markDirty(name)
		return nil
	}
	if _, err := s.Checkpoint(name); err != nil {
		return fmt.Errorf("%w: checkpoint: %v", errDurability, err)
	}
	return nil
}

// replayWAL applies the recovered log tail on top of the snapshot
// state, through the same applyEdges/applyEvents path the live server
// uses (index migration and monitor notification included). Records a
// snapshot already covers (epoch ≤ the restored entry's) are skipped;
// a gap or application failure halts replay for that graph only —
// its state stays at the last consistent epoch, other graphs recover
// fully. Records older than a graph's last KindDrop belong to a
// previous generation of the name and are never replayed into its
// successor.
func (s *Server) replayWAL(records []wal.Record) {
	lastDrop := make(map[string]int)
	for i := range records {
		if records[i].Kind == wal.KindDrop {
			lastDrop[records[i].Graph] = i
		}
	}
	halted := make(map[string]bool)
	for i := range records {
		r := &records[i]
		if r.Kind != wal.KindEdges && r.Kind != wal.KindEvents {
			continue
		}
		if j, dropped := lastDrop[r.Graph]; dropped && i < j {
			continue
		}
		if halted[r.Graph] {
			continue
		}
		e, ok := s.registry.Get(r.Graph)
		if !ok {
			// No snapshot restored the graph: either it was dropped
			// (its records are stale) or its registration checkpoint
			// was lost with the crash — in which case the client never
			// saw a 201 and there is nothing to recover.
			continue
		}
		cur := e.Snapshot()
		if r.Epoch <= cur.Epoch {
			continue // the snapshot already contains this mutation
		}
		if r.Epoch != cur.Epoch+1 {
			s.logf("wal: %s: epoch gap (log %d after entry %d); halting replay for this graph", r.Graph, r.Epoch, cur.Epoch)
			halted[r.Graph] = true
			continue
		}
		var err error
		switch r.Kind {
		case wal.KindEdges:
			if r.GraphVersion != cur.GraphVersion+1 {
				err = fmt.Errorf("graph version gap (log %d after entry %d)", r.GraphVersion, cur.GraphVersion)
				break
			}
			var res edgeMutation
			if res, err = s.applyEdges(e, publicChanges(r.Changes), false); err == nil && len(res.applied) != len(r.Changes) {
				err = fmt.Errorf("logged %d changes, %d took effect", len(r.Changes), len(res.applied))
			}
		case wal.KindEvents:
			err = s.applyEvents(e, r.Add, r.Remove, false)
		}
		if err != nil {
			s.logf("wal: %s: replaying epoch %d: %v; halting replay for this graph", r.Graph, r.Epoch, err)
			halted[r.Graph] = true
			continue
		}
		s.walReplayed.Add(1)
	}
	// recovery_epoch: the highest epoch any graph reached after
	// snapshot + log tail — the "exact pre-crash epoch" healthz
	// advertises.
	var maxEpoch uint64
	for _, name := range s.registry.Names() {
		if e, ok := s.registry.Get(name); ok && e.Epoch() > maxEpoch {
			maxEpoch = e.Epoch()
		}
	}
	s.recoveryEpoch.Store(maxEpoch)
}

// Kill abandons the server's durable machinery without flushing —
// the crash-test half of Close. Pending dirty marks are dropped,
// debounce timers stopped, the WAL abandoned unsynced. Used by the
// fault-injection tests to die mid-debounce; production crashes
// simply... crash.
func (s *Server) Kill() {
	p := s.persist
	if p == nil {
		return
	}
	p.mu.Lock()
	p.dead = true
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	lg := p.wal
	p.mu.Unlock()
	if lg != nil {
		lg.Kill()
	}
}

// Close flushes pending checkpoints and closes the WAL — the graceful
// shutdown path. Ordering matters and is pinned by a regression test:
// the flush (which checkpoints, then compacts covered segments) fully
// precedes the log close, so at no instant is a mutation in neither a
// durable snapshot nor a live log segment.
func (s *Server) Close() {
	s.FlushSnapshots()
	p := s.persist
	if p == nil {
		return
	}
	if lg := p.log(); lg != nil {
		lg.Close()
	}
}
