package server

import (
	"net/http"
	"testing"
	"time"
)

// TestHealthzTraversalCounters is the serving-tier acceptance check of
// the PR 4 hot-path work: correlate queries advance bfs_runs, a
// screening sweep advances it by its deduplicated traversal count, and
// density_memo_hits becomes visible — the operator's live view of the
// memo's effect.
func TestHealthzTraversalCounters(t *testing.T) {
	env := newTestEnv(t)

	var h0 map[string]any
	env.do(t, http.StatusOK, "GET", "/healthz", nil, &h0)
	if h0["bfs_runs"].(float64) != 0 || h0["density_memo_hits"].(float64) != 0 {
		t.Fatalf("fresh healthz counters non-zero: %+v", h0)
	}

	var cres correlateResponse
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "right", "h": 1, "sample_size": 60}, &cres)
	if cres.DensityBFS == 0 {
		t.Fatal("correlate reported zero density traversals")
	}
	var h1 map[string]any
	env.do(t, http.StatusOK, "GET", "/healthz", nil, &h1)
	if got := int64(h1["bfs_runs"].(float64)); got != cres.DensityBFS {
		t.Fatalf("bfs_runs = %d after one correlate, want %d", got, cres.DensityBFS)
	}

	// A third event forces a real multi-pair sweep; its samples overlap
	// across pairs, so the memo must register hits and the traversal
	// count must come in under pairs × sample size.
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"mid": {80, 81, 82, 83, 84, 85}}}, nil)
	var sres screenResponse
	env.do(t, http.StatusAccepted, "POST", "/v1/graphs/g/screen",
		map[string]any{"h": 1, "sample_size": 100}, &sres)
	var job JobView
	waitForJob(t, env, sres.JobID, &job)
	if job.Result == nil {
		t.Fatalf("job has no result: %+v", job)
	}
	if job.Result.MemoHits == 0 {
		t.Fatal("screen job reported zero memo hits on overlapping events")
	}
	if job.Result.BFSRuns == 0 || job.Result.BFSRuns >= int64(job.Result.Tested)*100 {
		t.Fatalf("screen BFSRuns = %d, want deduplicated (0 < runs < %d)",
			job.Result.BFSRuns, job.Result.Tested*100)
	}
	var h2 map[string]any
	env.do(t, http.StatusOK, "GET", "/healthz", nil, &h2)
	wantRuns := cres.DensityBFS + job.Result.BFSRuns
	if got := int64(h2["bfs_runs"].(float64)); got != wantRuns {
		t.Fatalf("bfs_runs = %d, want %d (correlate + sweep)", got, wantRuns)
	}
	if got := int64(h2["density_memo_hits"].(float64)); got != job.Result.MemoHits {
		t.Fatalf("density_memo_hits = %d, want %d", got, job.Result.MemoHits)
	}
}

// TestEnginePoolPerGraphVersion pins the pool invalidation contract:
// one pool per graph version, a fresh pool after an edge mutation, and
// never a downgrade to a stale snapshot's pool.
func TestEnginePoolPerGraphVersion(t *testing.T) {
	env := newTestEnv(t)
	e, ok := env.srv.Registry().Get("g")
	if !ok {
		t.Fatal("graph not registered")
	}
	snap1 := e.Snapshot()
	p1 := e.EnginePool(snap1)
	if p1 != e.EnginePool(snap1) {
		t.Fatal("same snapshot did not reuse the pool")
	}

	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/edges",
		map[string]any{"insert": [][2]int{{0, 199}}}, nil)
	snap2 := e.Snapshot()
	if snap2.GraphVersion == snap1.GraphVersion {
		t.Fatal("mutation did not bump the graph version")
	}
	p2 := e.EnginePool(snap2)
	if p2 == p1 {
		t.Fatal("pool survived a graph mutation")
	}
	// A query still holding the old snapshot gets a working pool but
	// must not displace the new version's.
	if stale := e.EnginePool(snap1); stale == p2 || stale == p1 {
		t.Fatal("stale snapshot was handed a current pool")
	}
	if e.EnginePool(snap2) != p2 {
		t.Fatal("stale snapshot displaced the current pool")
	}
}

// waitForJob polls the job endpoint until it leaves the running state.
func waitForJob(t *testing.T, env *testEnv, id string, out *JobView) {
	t.Helper()
	for i := 0; i < 500; i++ {
		env.do(t, http.StatusOK, "GET", "/v1/jobs/"+id, nil, out)
		if out.Status != JobRunning {
			if out.Status != JobDone {
				t.Fatalf("job failed: %+v", out)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}
