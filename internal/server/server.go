package server

import (
	"context"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"tesc/api"
	"tesc/internal/monitor"
	"tesc/internal/replica"
	"tesc/internal/wal"
)

// Config parameterizes the service.
type Config struct {
	// Addr is the listen address (default ":8537").
	Addr string
	// IndexCacheCapacity bounds the number of cached vicinity indexes
	// across all (graph, maxLevel) keys (default 8). Each index costs
	// O(|V|) space per level (§4.2), so the bound caps daemon memory.
	IndexCacheCapacity int
	// IndexWorkers is the goroutine-pool size for index construction
	// (0 = GOMAXPROCS).
	IndexWorkers int
	// DataDir, when non-empty, enables the persistent snapshot store:
	// LoadData warm-starts the registry and index cache from the
	// directory's *.tescsnap files, and mutated entries are checkpointed
	// back in the background (see docs/PERSISTENCE.md).
	DataDir string
	// CheckpointDelay debounces background checkpoints: a mutation
	// marks its graph dirty, and the flush runs this long after the
	// first unflushed mark (default 2s), folding mutation bursts into
	// one snapshot write.
	CheckpointDelay time.Duration
	// FsyncPolicy selects the WAL durability level: "always" (default;
	// every acknowledged mutation is fsynced before the response),
	// "interval" (group fsync on a timer), or "off" (OS page cache
	// only). Meaningful only with DataDir.
	FsyncPolicy string
	// FsyncInterval is the group-fsync period under FsyncPolicy
	// "interval" (default 100ms).
	FsyncInterval time.Duration
	// WALSegmentBytes caps a WAL segment before rotation (default
	// 64 MiB).
	WALSegmentBytes int64
	// FS overrides the filesystem all durable state goes through; nil
	// means the real one. Tests inject wal.FaultFS to crash the store
	// at any chosen operation.
	FS wal.FS
	// ReadOnly makes the server a read replica: client-facing mutation
	// endpoints return 403 and state changes arrive only through the
	// attached replication follower (queries, monitor refreshes and
	// checkpoints still serve).
	ReadOnly bool
	// Admission bounds what the front door admits: per-tenant quotas,
	// foreground/background concurrency limits, client deadlines, and
	// the graceful-drain window. The zero value selects sane defaults
	// (see AdmissionConfig); invalid values fall back to them too — an
	// embedded caller's typo must not disable overload protection.
	Admission AdmissionConfig
	// Log receives request-level diagnostics; nil disables logging.
	Log *log.Logger
}

// Server is the tescd HTTP service: a graph registry, a vicinity-index
// cache, and an asynchronous screening-job tracker behind a JSON API,
// optionally backed by a persistent snapshot store.
type Server struct {
	registry     *Registry
	cache        *IndexCache
	jobs         *Jobs
	monitors     *monitor.Manager
	indexWorkers int
	logger       *log.Logger
	mux          *http.ServeMux

	// adm is the overload-protection front door: every /v1 route runs
	// behind its admission chain (see admission.go). flights coalesces
	// identical in-flight correlate calls.
	adm     *admission
	flights flightGroup

	// persist is nil without Config.DataDir. snapLoaded counts graphs
	// restored from snapshots (boot + admission-time imports);
	// snapSaved counts checkpoints written.
	persist    *persistState
	snapSaved  atomic.Int64
	snapLoaded atomic.Int64

	// walReplayed counts WAL records applied during recovery;
	// recoveryEpoch is the highest epoch any graph reached after
	// snapshot + log replay. Both surface in healthz.
	walReplayed   atomic.Int64
	recoveryEpoch atomic.Uint64

	// bfsRuns counts density-phase h-hop traversals performed across
	// all correlate queries and screening sweeps; memoHits the density
	// evaluations screening served from the cross-pair memo instead of
	// a traversal. Their ratio is the live view of how much of the
	// §4.4 traversal bill the flat-kernel/memo path is saving.
	bfsRuns  atomic.Int64
	memoHits atomic.Int64

	// screensPlanned counts planned (top-k / threshold) screening jobs
	// completed; pairsPruned the candidate pairs those jobs discarded
	// without a full test — the live view of the sweep work the planner
	// is saving over exhaustive O(K²) screening.
	screensPlanned atomic.Int64
	pairsPruned    atomic.Int64

	// readOnly gates the client-facing mutation endpoints on a replica;
	// atomic because Promote flips it at runtime (cluster handoff) while
	// requests are in flight. recordsShipped counts WAL records served
	// to followers; follower, set by AttachFollower before serving,
	// surfaces replication lag and apply counters in healthz.
	readOnly       atomic.Bool
	recordsShipped atomic.Int64
	follower       *replica.Follower

	// routes records every registered mux pattern ("METHOD /path") — the
	// OpenAPI drift gate asserts it matches api.Routes exactly.
	routes []string
}

// New assembles a server from the config.
func New(cfg Config) *Server {
	if cfg.IndexCacheCapacity == 0 {
		cfg.IndexCacheCapacity = 8
	}
	if cfg.CheckpointDelay == 0 {
		cfg.CheckpointDelay = 2 * time.Second
	}
	adm, err := newAdmission(cfg.Admission)
	if err != nil {
		// Invalid admission settings fall back to the defaults rather
		// than running unprotected; cmd/tescd validates flags before
		// they reach here, so this only guards embedded callers.
		adm, _ = newAdmission(AdmissionConfig{})
	}
	s := &Server{
		registry:     NewRegistry(),
		cache:        NewIndexCache(cfg.IndexCacheCapacity),
		jobs:         NewJobs(),
		monitors:     monitor.NewManager(),
		indexWorkers: cfg.IndexWorkers,
		logger:       cfg.Log,
		mux:          http.NewServeMux(),
		adm:          adm,
	}
	if cfg.DataDir != "" {
		fsys := cfg.FS
		if fsys == nil {
			fsys = wal.OSFS{}
		}
		policy, err := wal.ParsePolicy(cfg.FsyncPolicy)
		if err != nil {
			// Config strings are validated by the flag parser in cmd/tescd
			// before they reach here; an embedded caller's typo falls back
			// to the strictest policy rather than silently weakening
			// durability.
			policy = wal.SyncAlways
		}
		s.persist = &persistState{
			dir:         cfg.DataDir,
			delay:       cfg.CheckpointDelay,
			fs:          fsys,
			walPolicy:   policy,
			walInterval: cfg.FsyncInterval,
			walSegBytes: cfg.WALSegmentBytes,
			dirty:       make(map[string]struct{}),
			durable:     make(map[string]uint64),
		}
	}
	s.readOnly.Store(cfg.ReadOnly)
	// Mutation endpoints go through the read-only gate; on a replica
	// they 403 so every state change arrives via replication, keeping
	// follower state bit-for-bit derivable from the primary's log.
	//
	// Every /v1 route also runs behind the admission chain (admit),
	// classed foreground (point reads, mutations, correlate — the
	// latency-sensitive path) or background (screening, monitor work,
	// checkpoints — the analytic path that sheds first under load).
	// healthz and the replica protocol stay ungated: operators must be
	// able to observe an overloaded server, and followers must keep
	// streaming so shedding never grows replication lag.
	s.handle("POST /v1/graphs", s.admit(classForeground, s.mutating(s.handleRegisterGraph)))
	s.handle("GET /v1/graphs", s.admit(classForeground, s.handleListGraphs))
	s.handle("GET /v1/graphs/{name}", s.admit(classForeground, s.handleGetGraph))
	s.handle("DELETE /v1/graphs/{name}", s.admit(classForeground, s.mutating(s.handleDeleteGraph)))
	s.handle("POST /v1/graphs/{name}/events", s.admit(classForeground, s.mutating(s.handleRegisterEvents)))
	s.handle("DELETE /v1/graphs/{name}/events/{event}", s.admit(classForeground, s.mutating(s.handleDeleteEvent)))
	s.handle("POST /v1/graphs/{name}/edges", s.admit(classForeground, s.mutating(s.handleMutateEdges)))
	s.handle("POST /v1/graphs/{name}/snapshot", s.admit(classBackground, s.handleCheckpoint))
	s.handle("POST /v1/graphs/{name}/correlate", s.admit(classForeground, s.handleCorrelate))
	s.handle("POST /v1/graphs/{name}/screen", s.admit(classBackgroundJob, s.handleScreen))
	s.handle("POST /v1/graphs/{name}/monitors", s.admit(classBackground, s.mutating(s.handleCreateMonitor)))
	s.handle("GET /v1/graphs/{name}/monitors", s.admit(classForeground, s.handleListMonitors))
	s.handle("GET /v1/graphs/{name}/monitors/{id}", s.admit(classForeground, s.handleGetMonitor))
	s.handle("DELETE /v1/graphs/{name}/monitors/{id}", s.admit(classForeground, s.mutating(s.handleDeleteMonitor)))
	s.handle("POST /v1/graphs/{name}/monitors/{id}/refresh", s.admit(classBackground, s.handleRefreshMonitor))
	s.handle("GET /v1/jobs/{id}", s.admit(classForeground, s.handleGetJob))
	s.handle("DELETE /v1/jobs/{id}", s.admit(classForeground, s.handleCancelJob))
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /v1/replica/status", s.handleReplicaStatus)
	s.handle("GET /v1/replica/graphs/{name}/snapshot", s.handleReplicaSnapshot)
	s.handle("GET /v1/replica/wal", s.handleReplicaWAL)
	return s
}

// handle registers a route, recording the pattern for Routes.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// Routes returns every registered mux pattern ("METHOD /path"). The
// OpenAPI drift gate compares it against the canonical api.Routes
// table, so a handler cannot be added off the books.
func (s *Server) Routes() []string {
	out := make([]string, len(s.routes))
	copy(out, s.routes)
	return out
}

// mutating gates a client-facing mutation handler behind the read-only
// flag.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.readOnly.Load() {
			writeError(w, api.CodeReadOnly, "read-only replica: send mutations to the primary")
			return
		}
		h(w, r)
	}
}

// ReadOnly reports whether client-facing mutations are currently
// rejected (the server is a replica).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Promote flips a read-only replica into a writable primary — the
// cluster handoff seam. Call it after the node's replication follower
// has caught up and stopped: from this instant client mutations are
// accepted and logged to the node's own WAL, so exactly one node in a
// placement group may be promoted at a time.
func (s *Server) Promote() { s.readOnly.Store(false) }

// Monitors exposes the standing-query manager (for tests and tooling).
func (s *Server) Monitors() *monitor.Manager { return s.monitors }

// Registry exposes the graph registry (for preloading at startup).
func (s *Server) Registry() *Registry { return s.registry }

// Cache exposes the vicinity-index cache (for warmup and metrics).
func (s *Server) Cache() *IndexCache { return s.cache }

// Handler returns the service's HTTP handler, for embedding or tests.
func (s *Server) Handler() http.Handler {
	if s.logger == nil {
		return s.mux
	}
	return logRequests(s.logger, s.mux)
}

// BeginDrain flips the server into drain mode: the admission chain
// answers every new request 503 "draining" (with Retry-After, so
// load balancers and retrying clients move to another replica) while
// in-flight requests run on. Idempotent.
func (s *Server) BeginDrain() {
	s.adm.draining.Store(true)
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.adm.draining.Load() }

// Drain runs the job half of a graceful stop: stop admitting (BeginDrain,
// idempotent), cancel still-running screen jobs — they land in
// "cancelled", planned jobs keeping their partial ranking — and wait for
// the job goroutines to exit or ctx to expire, reporting which happened.
// Callers embedding the server (tests, soak harnesses) pair it with
// Close, which flushes snapshots and closes the WAL; ListenAndServe does
// both on context cancellation.
func (s *Server) Drain(ctx context.Context) bool {
	s.BeginDrain()
	s.jobs.CancelAll()
	return s.jobs.Wait(ctx)
}

// ListenAndServe runs the service at addr until the context is
// canceled, then drains gracefully under the configured drain window
// (AdmissionConfig.DrainTimeout, default 5s):
//
//  1. stop admitting — new requests get a typed 503 "draining";
//  2. let in-flight requests finish (http.Server.Shutdown);
//  3. cancel still-running screen jobs (they land in "cancelled",
//     planned jobs keeping their partial ranking) and wait for the
//     job goroutines to exit;
//  4. flush pending snapshot checkpoints and close the WAL (Close),
//     so every acknowledged mutation survives the restart.
//
// The ordering is load-bearing: jobs are cancelled before Close so no
// sweep can race the WAL teardown, and the WAL closes last so anything
// acknowledged during the drain is on disk.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	if addr == "" {
		addr = ":8537"
	}
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.BeginDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.adm.cfg.DrainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		if !s.Drain(drainCtx) && s.logger != nil {
			s.logger.Printf("drain: job goroutines still running at the drain deadline")
		}
		s.Close()
		return err
	}
}

// logRequests wraps h with one log line per request.
func logRequests(logger *log.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
