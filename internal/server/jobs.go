package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tesc"
	"tesc/api"
)

// JobStatus and its states live in the public api package; the aliases
// keep this file and the handler layer reading naturally.
type JobStatus = api.JobStatus

const (
	JobRunning   = api.JobRunning
	JobDone      = api.JobDone
	JobFailed    = api.JobFailed
	JobCancelled = api.JobCancelled
)

// Job is one asynchronous screening run. Screening sweeps test O(|Q|²)
// pairs (§5.4) and can run for minutes on real vocabularies, so the
// service returns a job ID immediately and lets clients poll progress.
type Job struct {
	ID    string
	Graph string

	// cancel aborts the job's context; the screening sweep it feeds
	// checks the context between pairs and stops. Set at registration,
	// safe to call repeatedly.
	cancel context.CancelFunc
	// release returns the job's background admission slot; nil when the
	// job was started without one. Called exactly once when the job
	// finishes (the wrapper is idempotent).
	release func()

	mu       sync.Mutex
	status   JobStatus
	done     int
	total    int
	result   *tesc.ScreenResult
	planned  *tesc.ScreenTopKResult
	partial  []tesc.ScreenedPair
	err      string
	created  time.Time
	finished time.Time
}

// The screening wire shapes live in the public api package.
type (
	ScreenedPairView = api.ScreenedPair
	PlannerStatsView = api.PlannerStats
	ScreenResultView = api.ScreenResult
)

func screenedPairViews(pairs []tesc.ScreenedPair) []ScreenedPairView {
	out := make([]ScreenedPairView, len(pairs))
	for i, p := range pairs {
		out[i] = ScreenedPairView{
			A: p.A, B: p.B,
			OccA: p.OccA, OccB: p.OccB,
			Tau: p.Tau, Z: p.Z,
			P: p.P, AdjP: p.AdjP,
			Significant: p.Significant,
			Skipped:     p.Skipped,
		}
	}
	return out
}

func screenResultView(r *tesc.ScreenResult) *ScreenResultView {
	if r == nil {
		return nil
	}
	return &ScreenResultView{
		Pairs:    screenedPairViews(r.Pairs),
		Tested:   r.Tested,
		Skipped:  r.Skipped,
		Rejected: r.Rejected,
		BFSRuns:  r.BFSRuns,
		MemoHits: r.MemoHits,
	}
}

func plannedResultView(r *tesc.ScreenTopKResult) *ScreenResultView {
	if r == nil {
		return nil
	}
	rejected := 0
	for _, p := range r.Pairs {
		if p.Significant {
			rejected++
		}
	}
	return &ScreenResultView{
		Pairs:    screenedPairViews(r.Pairs),
		Tested:   r.FullTests,
		Skipped:  r.Skipped,
		Rejected: rejected,
		BFSRuns:  r.BFSRuns,
		MemoHits: r.MemoHits,
		Planner: &PlannerStatsView{
			Candidates:   r.Candidates,
			FullTests:    r.FullTests,
			PrunedEarly:  r.PrunedEarly,
			PrunedPrior:  r.PrunedPrior,
			Checkpoints:  r.Checkpoints,
			DensityEvals: r.DensityEvals,
		},
	}
}

// JobView is an immutable snapshot of a job — api.JobView on the wire.
// Partial is the planner's current ranked result set, visible only
// while a planned job is still running: pollers watch the ranking
// converge instead of staring at a counter.
type JobView = api.JobView

// Snapshot returns a consistent view of the job.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Graph:   j.Graph,
		Status:  j.status,
		Done:    j.done,
		Total:   j.total,
		Error:   j.err,
		Created: j.created,
	}
	if j.planned != nil {
		v.Result = plannedResultView(j.planned)
	} else {
		v.Result = screenResultView(j.result)
	}
	// Partial rankings stay visible on a cancelled planned job: the
	// pairs it finished are exact, and they are all the client gets.
	if (j.status == JobRunning || j.status == JobCancelled) && len(j.partial) > 0 {
		v.Partial = screenedPairViews(j.partial)
	}
	if !j.finished.IsZero() {
		f := j.finished
		v.Finished = &f
	}
	return v
}

// setProgress folds concurrent progress reports with max: screening
// workers call ScreenOptions.Progress without a lock, so completion
// counts can arrive out of order, and a gauge that last-write-wins
// would be seen moving backwards by pollers.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	if done > j.done {
		j.done = done
	}
	j.total = total
	j.mu.Unlock()
}

// setPartial replaces the job's in-flight ranked result set, suitable
// for ScreenTopKOptions.Stream (whose calls are serialized). The slice
// is copied: the planner reuses its backing array across improvements.
func (j *Job) setPartial(top []tesc.ScreenedPair) {
	cp := make([]tesc.ScreenedPair, len(top))
	copy(cp, top)
	j.mu.Lock()
	j.partial = cp
	j.mu.Unlock()
}

// maxFinishedJobs bounds how many finished jobs are retained for
// polling. A screening result holds one record per tested pair —
// O(|Q|²) for real vocabularies — so an unbounded map would grow the
// daemon's memory with every sweep. Running jobs are never pruned.
const maxFinishedJobs = 64

// Jobs tracks asynchronous screening jobs by ID. Every job runs under
// a context derived from the tracker's base context, so CancelAll (the
// drain path) aborts every sweep with one call, and individual jobs
// cancel through DELETE /v1/jobs/{id}.
type Jobs struct {
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu    sync.Mutex
	seq   int
	jobs  map[string]*Job
	order []string // insertion order, for pruning oldest finished first
}

// NewJobs returns an empty job tracker.
func NewJobs() *Jobs {
	ctx, cancel := context.WithCancel(context.Background())
	return &Jobs{baseCtx: ctx, baseCancel: cancel, jobs: make(map[string]*Job)}
}

// pruneLocked evicts the oldest finished jobs beyond maxFinishedJobs.
func (js *Jobs) pruneLocked() {
	finished := 0
	for _, id := range js.order {
		if j, ok := js.jobs[id]; ok && j.isFinished() {
			finished++
		}
	}
	if finished <= maxFinishedJobs {
		return
	}
	kept := js.order[:0]
	for _, id := range js.order {
		j, ok := js.jobs[id]
		if !ok {
			continue
		}
		if finished > maxFinishedJobs && j.isFinished() {
			delete(js.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	js.order = kept
}

func (j *Job) isFinished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status != JobRunning
}

// register creates a running job for the named graph and tracks it,
// deriving the job's cancellable context from the tracker's base.
func (js *Jobs) register(graphName string) (*Job, context.Context) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.seq++
	ctx, cancel := context.WithCancel(js.baseCtx)
	j := &Job{
		ID:      fmt.Sprintf("job-%d", js.seq),
		Graph:   graphName,
		cancel:  cancel,
		status:  JobRunning,
		created: time.Now(),
	}
	js.jobs[j.ID] = j
	js.order = append(js.order, j.ID)
	js.pruneLocked()
	return j, ctx
}

// finish transitions the job out of JobRunning; commit stores the
// result under the job lock on success. A cancellation error (the
// job's context was aborted) lands in JobCancelled, not JobFailed —
// the job did nothing wrong, somebody stopped wanting it.
func (j *Job) finish(err error, commit func()) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = JobDone
		commit()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = JobCancelled
		j.err = err.Error()
	default:
		j.status = JobFailed
		j.err = err.Error()
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources in every exit path
	if j.release != nil {
		j.release()
	}
}

// Start registers a new job for the named graph and runs fn in a fresh
// goroutine. fn receives the job's cancellable context (wire it into
// ScreenOptions.Ctx) and progress sink (ScreenOptions.Progress).
// release, when non-nil, is the job's admission slot, returned when the
// job finishes.
func (js *Jobs) Start(graphName string, release func(), fn func(ctx context.Context, progress func(done, total int)) (tesc.ScreenResult, error)) *Job {
	j, ctx := js.register(graphName)
	j.release = release
	js.wg.Add(1)
	go func() {
		defer js.wg.Done()
		res, err := fn(ctx, j.setProgress)
		j.finish(err, func() { j.result = &res })
	}()
	return j
}

// StartPlanned registers a planned (top-k / threshold) screening job.
// fn receives the job's context and the job itself so it can wire the
// progress sink and the partial-ranking stream (Job.setPartial) into
// ScreenTopKOptions. A cancelled planned sweep returns its ranking so
// far alongside the error; the pairs it completed are exact, so they
// are kept as the job's final partial.
func (js *Jobs) StartPlanned(graphName string, release func(), fn func(ctx context.Context, j *Job) (tesc.ScreenTopKResult, error)) *Job {
	j, ctx := js.register(graphName)
	j.release = release
	js.wg.Add(1)
	go func() {
		defer js.wg.Done()
		res, err := fn(ctx, j)
		if err != nil && len(res.Pairs) > 0 {
			j.setPartial(res.Pairs)
		}
		j.finish(err, func() {
			j.planned = &res
			j.partial = nil // the final ranking supersedes any partial
		})
	}()
	return j
}

// Cancel aborts the job with the given ID. Reports whether the job
// exists; cancelling a finished job is a no-op.
func (js *Jobs) Cancel(id string) bool {
	j, ok := js.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// CancelAll aborts every job started from this tracker — the drain
// path. New jobs registered afterwards are born cancelled.
func (js *Jobs) CancelAll() {
	js.baseCancel()
}

// Wait blocks until every started job goroutine has exited or ctx
// expires, reporting whether all finished in time.
func (js *Jobs) Wait(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		js.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}

// Get returns the job with the given ID, or false.
func (js *Jobs) Get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

// IDs returns all known job IDs, unordered.
func (js *Jobs) IDs() []string {
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]string, 0, len(js.jobs))
	for id := range js.jobs {
		out = append(out, id)
	}
	return out
}
