package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"tesc"
	"tesc/internal/graphio"
)

// ---- wire types -----------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

type registerGraphRequest struct {
	// Name is the registry key for all later queries.
	Name string `json:"name"`
	// EdgeList is an inline whitespace edge list ("u v" per line,
	// optional "# nodes N" header) — the tesc.ReadGraph format.
	EdgeList string `json:"edge_list,omitempty"`
	// Path loads the edge list from a server-side file instead
	// (gzip-transparent). Exactly one of EdgeList and Path must be set.
	Path string `json:"path,omitempty"`
}

type graphInfo struct {
	Name    string    `json:"name"`
	Nodes   int       `json:"nodes"`
	Edges   int64     `json:"edges"`
	Events  int       `json:"events"`
	Created time.Time `json:"created"`
}

type registerEventsRequest struct {
	// Events maps event names to occurrence node IDs.
	Events map[string][]int `json:"events"`
}

type registerEventsResponse struct {
	Graph  string `json:"graph"`
	Events int    `json:"events"` // distinct events now registered
}

type correlateRequest struct {
	// A and B name registered events; alternatively NodesA/NodesB give
	// explicit occurrence lists for ad-hoc queries.
	A      string `json:"a,omitempty"`
	B      string `json:"b,omitempty"`
	NodesA []int  `json:"nodes_a,omitempty"`
	NodesB []int  `json:"nodes_b,omitempty"`

	// The remaining fields mirror tesc.Options.
	H               int     `json:"h"`
	SampleSize      int     `json:"sample_size,omitempty"`
	Method          string  `json:"method,omitempty"`
	ImportanceBatch int     `json:"importance_batch,omitempty"`
	Tail            string  `json:"tail,omitempty"`
	Alpha           float64 `json:"alpha,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	UseSpearman     bool    `json:"use_spearman,omitempty"`
}

type correlateResponse struct {
	Tau         float64 `json:"tau"`
	Z           float64 `json:"z"`
	P           float64 `json:"p"`
	Significant bool    `json:"significant"`
	Verdict     string  `json:"verdict"`
	N           int     `json:"n"`
	Sampler     string  `json:"sampler"`
	Population  int     `json:"population"`
	SamplerBFS  int64   `json:"sampler_bfs"`
	DensityBFS  int64   `json:"density_bfs"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

type screenRequest struct {
	// The fields mirror tesc.ScreenOptions.
	H              int     `json:"h"`
	SampleSize     int     `json:"sample_size,omitempty"`
	Alpha          float64 `json:"alpha,omitempty"`
	Tail           string  `json:"tail,omitempty"`
	MinOccurrences int     `json:"min_occurrences,omitempty"`
	Bonferroni     bool    `json:"bonferroni,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
}

type screenResponse struct {
	JobID string `json:"job_id"`
}

// ---- helpers --------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// entry resolves the {name} path value to a registered graph, writing a
// 404 on failure.
func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*GraphEntry, bool) {
	name := r.PathValue("name")
	e, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return nil, false
	}
	return e, true
}

func parseMethod(s string) (tesc.Method, error) {
	switch s {
	case "", "batch-bfs":
		return tesc.BatchBFS, nil
	case "importance":
		return tesc.Importance, nil
	case "whole-graph":
		return tesc.WholeGraph, nil
	case "rejection":
		return tesc.Rejection, nil
	default:
		return 0, fmt.Errorf("unknown method %q (batch-bfs | importance | whole-graph | rejection)", s)
	}
}

func parseTail(s string) (tesc.Tail, error) {
	switch s {
	case "", "both":
		return tesc.BothTails, nil
	case "positive":
		return tesc.PositiveTail, nil
	case "negative":
		return tesc.NegativeTail, nil
	default:
		return 0, fmt.Errorf("unknown tail %q (both | positive | negative)", s)
	}
}

func (e *GraphEntry) info() graphInfo {
	return graphInfo{
		Name:    e.Name(),
		Nodes:   e.Graph().NumNodes(),
		Edges:   e.Graph().NumEdges(),
		Events:  e.NumEvents(),
		Created: e.Created(),
	}
}

// ---- handlers -------------------------------------------------------

// handleRegisterGraph implements POST /v1/graphs.
func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req registerGraphRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "name is required")
		return
	}
	if (req.EdgeList == "") == (req.Path == "") {
		writeError(w, http.StatusBadRequest, "exactly one of edge_list and path must be set")
		return
	}
	var (
		g   *tesc.Graph
		err error
	)
	if req.EdgeList != "" {
		g, err = tesc.ReadGraph(strings.NewReader(req.EdgeList))
	} else {
		var f interface {
			Read([]byte) (int, error)
			Close() error
		}
		f, err = graphio.OpenMaybeGzip(req.Path)
		if err == nil {
			g, err = tesc.ReadGraph(f)
			_ = f.Close()
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "loading graph: %v", err)
		return
	}
	e, err := s.registry.Register(req.Name, g)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, e.info())
}

// handleListGraphs implements GET /v1/graphs.
func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	names := s.registry.Names()
	out := make([]graphInfo, 0, len(names))
	for _, name := range names {
		if e, ok := s.registry.Get(name); ok {
			out = append(out, e.info())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetGraph implements GET /v1/graphs/{name}.
func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

// handleDeleteGraph implements DELETE /v1/graphs/{name}. Cached
// vicinity indexes of the graph are evicted with it.
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.registry.Remove(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	s.cache.EvictGraph(e)
	w.WriteHeader(http.StatusNoContent)
}

// handleRegisterEvents implements POST /v1/graphs/{name}/events.
func (s *Server) handleRegisterEvents(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req registerEventsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Events) == 0 {
		writeError(w, http.StatusBadRequest, "events must be non-empty")
		return
	}
	if err := e.AddEvents(req.Events); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, registerEventsResponse{Graph: e.Name(), Events: e.NumEvents()})
}

// handleCorrelate implements POST /v1/graphs/{name}/correlate: one TESC
// test with per-request options, reusing the graph and (for the
// index-backed samplers) the cached vicinity index.
func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req correlateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.H < 1 {
		writeError(w, http.StatusBadRequest, "h must be >= 1")
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tail, err := parseTail(req.Tail)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	va, vb, code, err := resolveEventPair(e, &req)
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}

	opts := tesc.Options{
		H:               req.H,
		SampleSize:      req.SampleSize,
		Method:          method,
		ImportanceBatch: req.ImportanceBatch,
		Tail:            tail,
		Alpha:           req.Alpha,
		Seed:            req.Seed,
		UseSpearman:     req.UseSpearman,
	}
	if method == tesc.Importance || method == tesc.Rejection {
		idx, err := s.cache.Get(e, req.H, s.indexWorkers)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "building vicinity index: %v", err)
			return
		}
		opts.Index = idx
	}

	start := time.Now()
	res, err := tesc.Correlation(e.Graph(), va, vb, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, correlateResponse{
		Tau:         res.Tau,
		Z:           res.Z,
		P:           res.P,
		Significant: res.Significant,
		Verdict:     res.Verdict,
		N:           res.N,
		Sampler:     res.Sampler,
		Population:  res.Population,
		SamplerBFS:  res.SamplerBFS,
		DensityBFS:  res.DensityBFS,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

// resolveEventPair turns a correlate request into two occurrence
// lists, from registered event names or inline node lists. The
// returned code distinguishes malformed requests (400) from unknown
// events (404).
func resolveEventPair(e *GraphEntry, req *correlateRequest) (va, vb []int, code int, err error) {
	switch {
	case req.A != "" && req.NodesA != nil:
		return nil, nil, http.StatusBadRequest, fmt.Errorf("set either a or nodes_a, not both")
	case req.B != "" && req.NodesB != nil:
		return nil, nil, http.StatusBadRequest, fmt.Errorf("set either b or nodes_b, not both")
	}
	va = req.NodesA
	if req.A != "" {
		if va, err = e.Occurrences(req.A); err != nil {
			return nil, nil, http.StatusNotFound, err
		}
	}
	vb = req.NodesB
	if req.B != "" {
		if vb, err = e.Occurrences(req.B); err != nil {
			return nil, nil, http.StatusNotFound, err
		}
	}
	if va == nil || vb == nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("both events must be given (a/nodes_a and b/nodes_b)")
	}
	return va, vb, 0, nil
}

// handleScreen implements POST /v1/graphs/{name}/screen: an
// asynchronous all-pairs screening sweep over the graph's registered
// events. Returns 202 with a job ID for progress polling.
func (s *Server) handleScreen(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req screenRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.H < 1 {
		writeError(w, http.StatusBadRequest, "h must be >= 1")
		return
	}
	tail, err := parseTail(req.Tail)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ev := e.EventSet()
	if len(ev) < 2 {
		writeError(w, http.StatusUnprocessableEntity, "screening needs at least 2 registered events, have %d", len(ev))
		return
	}
	g := e.Graph()
	opts := tesc.ScreenOptions{
		H:              req.H,
		SampleSize:     req.SampleSize,
		Alpha:          req.Alpha,
		Tail:           tail,
		MinOccurrences: req.MinOccurrences,
		Bonferroni:     req.Bonferroni,
		Workers:        req.Workers,
		Seed:           req.Seed,
	}
	job := s.jobs.Start(e.Name(), func(progress func(done, total int)) (tesc.ScreenResult, error) {
		opts.Progress = progress
		return tesc.Screen(g, ev, opts)
	})
	writeJSON(w, http.StatusAccepted, screenResponse{JobID: job.ID})
}

// handleGetJob implements GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"graphs":      len(s.registry.Names()),
		"indexes":     s.cache.Len(),
		"index_built": s.cache.Builds(),
	})
}
