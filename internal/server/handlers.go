package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"tesc"
	"tesc/api"
	"tesc/internal/graphio"
	"tesc/internal/screen"
	"tesc/internal/wal"
)

// ---- wire types -----------------------------------------------------

// Every request/response shape lives in the public api package — the
// single source of truth the OpenAPI spec and the typed client are
// generated from. The aliases keep handler code short; they ARE the
// api types, so nothing here can drift from the published contract.
type (
	errorResponse          = api.Error
	registerGraphRequest   = api.RegisterGraphRequest
	graphInfo              = api.GraphInfo
	registerEventsRequest  = api.RegisterEventsRequest
	registerEventsResponse = api.RegisterEventsResponse
	mutateEdgesRequest     = api.MutateEdgesRequest
	mutateEdgesResponse    = api.MutateEdgesResponse
	correlateRequest       = api.CorrelateRequest
	correlateResponse      = api.CorrelateResponse
	screenRequest          = api.ScreenRequest
	screenResponse         = api.ScreenAccepted
)

// maxInlineNodes caps the node universe of graphs registered through an
// inline edge_list body (16M nodes ≈ 128MB of offsets). Larger graphs
// load through the server-side path field.
const maxInlineNodes = 1 << 24

// ---- helpers --------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the unified error envelope (api.Error) under the
// code's canonical HTTP status. Every non-2xx response a handler
// produces goes through here or writeRetryable — there is exactly one
// error body shape on the wire.
func writeError(w http.ResponseWriter, code api.ErrorCode, format string, args ...any) {
	writeJSON(w, api.StatusOf(code), &api.Error{Code: code, Reason: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, api.CodeBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// graphName extracts and validates the {name} path value. Names that do
// not round-trip URL escaping are rejected at the router with a typed
// 400: such a name can never have been registered (creation enforces
// the same rule), and in a cluster it is the routing key a coordinator
// proxies on, so it must be byte-transparent through any proxy hop.
func graphName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if err := api.ValidateGraphName(name); err != nil {
		writeError(w, api.CodeInvalidName, "%v", err)
		return "", false
	}
	return name, true
}

// entry resolves the {name} path value to a registered graph, writing a
// typed 400 for unroutable names and a 404 for unknown ones.
func (s *Server) entry(w http.ResponseWriter, r *http.Request) (*GraphEntry, bool) {
	name, ok := graphName(w, r)
	if !ok {
		return nil, false
	}
	e, ok := s.registry.Get(name)
	if !ok {
		writeError(w, api.CodeNotFound, "unknown graph %q", name)
		return nil, false
	}
	return e, true
}

func parseMethod(s string) (tesc.Method, error) {
	switch s {
	case "", "batch-bfs":
		return tesc.BatchBFS, nil
	case "importance":
		return tesc.Importance, nil
	case "whole-graph":
		return tesc.WholeGraph, nil
	case "rejection":
		return tesc.Rejection, nil
	default:
		return 0, fmt.Errorf("unknown method %q (batch-bfs | importance | whole-graph | rejection)", s)
	}
}

func parseTail(s string) (tesc.Tail, error) {
	switch s {
	case "", "both":
		return tesc.BothTails, nil
	case "positive":
		return tesc.PositiveTail, nil
	case "negative":
		return tesc.NegativeTail, nil
	default:
		return 0, fmt.Errorf("unknown tail %q (both | positive | negative)", s)
	}
}

func (e *GraphEntry) info() graphInfo {
	snap := e.Snapshot()
	return graphInfo{
		Name:    e.Name(),
		Nodes:   snap.Graph.NumNodes(),
		Edges:   snap.Graph.NumEdges(),
		Events:  snap.Store.NumEvents(),
		Epoch:   snap.Epoch,
		Created: e.Created(),
	}
}

// ---- handlers -------------------------------------------------------

// handleRegisterGraph implements POST /v1/graphs.
func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req registerGraphRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := api.ValidateGraphName(req.Name); err != nil {
		writeError(w, api.CodeInvalidName, "%v", err)
		return
	}
	sources := 0
	for _, src := range []string{req.EdgeList, req.Path, req.Snapshot} {
		if src != "" {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, api.CodeBadRequest, "exactly one of edge_list, path and snapshot must be set")
		return
	}
	if req.Snapshot != "" {
		e, err := s.loadSnapshotFile(req.Name, req.Snapshot)
		if err != nil {
			// The duplicate-name check lives inside the registry lock;
			// report it as the same conflict the other sources return.
			code := api.CodeBadRequest
			if errors.Is(err, ErrAlreadyRegistered) {
				code = api.CodeConflict
			}
			writeError(w, code, "importing snapshot: %v", err)
			return
		}
		// Make the import durable in the data dir before the 201: a
		// registration has no WAL record kind, so its durability unit is
		// the checkpoint itself. If that fails the admission rolls back
		// — acknowledging a graph the next boot cannot restore would
		// break the WAL's no-lost-acks contract.
		if err := s.durableAck(req.Name); err != nil {
			s.registry.Remove(req.Name)
			s.cache.EvictGraph(e)
			s.monitors.DropGraph(req.Name)
			writeError(w, api.CodeUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, e.info())
		return
	}
	var (
		g   *tesc.Graph
		err error
	)
	if req.EdgeList != "" {
		// Inline bodies are untrusted: cap the universe so a one-line
		// request can't demand an O(n) allocation in the gigabytes.
		// Server-side -load/path graphs stay uncapped.
		g, err = tesc.ReadGraphMax(strings.NewReader(req.EdgeList), maxInlineNodes)
	} else {
		var f interface {
			Read([]byte) (int, error)
			Close() error
		}
		f, err = graphio.OpenMaybeGzip(req.Path)
		if err == nil {
			g, err = tesc.ReadGraph(f)
			_ = f.Close()
		}
	}
	if err != nil {
		writeError(w, api.CodeBadRequest, "loading graph: %v", err)
		return
	}
	e, err := s.registry.Register(req.Name, g)
	if err != nil {
		writeError(w, api.CodeConflict, "%v", err)
		return
	}
	if err := s.durableAck(req.Name); err != nil {
		s.registry.Remove(req.Name)
		writeError(w, api.CodeUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, e.info())
}

// handleListGraphs implements GET /v1/graphs.
func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	names := s.registry.Names()
	out := make([]graphInfo, 0, len(names))
	for _, name := range names {
		if e, ok := s.registry.Get(name); ok {
			out = append(out, e.info())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetGraph implements GET /v1/graphs/{name}.
func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

// handleDeleteGraph implements DELETE /v1/graphs/{name}. Cached
// vicinity indexes of the graph are evicted with it.
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name, ok := graphName(w, r)
	if !ok {
		return
	}
	if cur, ok := s.registry.Get(name); ok {
		// Log the drop before removing anything: a crash right after
		// the registry removal must not let this generation's WAL
		// records replay into a future graph registered under the same
		// name. A spurious drop record (the Get/Remove race losing to
		// another DELETE) is harmless — replay only skips records.
		if err := s.walAppend(&wal.Record{Kind: wal.KindDrop, Graph: name, Epoch: cur.Epoch()}); err != nil {
			writeError(w, api.CodeUnavailable, "durability unavailable: wal append: %v", err)
			return
		}
	}
	e, removed := s.registry.Remove(name)
	if !removed {
		writeError(w, api.CodeNotFound, "unknown graph %q", name)
		return
	}
	s.cache.EvictGraph(e)
	s.monitors.DropGraph(name)
	s.removeSnapshot(name)
	w.WriteHeader(http.StatusNoContent)
}

// handleRegisterEvents implements POST /v1/graphs/{name}/events.
func (s *Server) handleRegisterEvents(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req registerEventsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Events) == 0 && len(req.Remove) == 0 {
		writeError(w, api.CodeBadRequest, "events or remove must be non-empty")
		return
	}
	if err := s.applyEvents(e, req.Events, req.Remove, true); err != nil {
		code := api.CodeBadRequest
		switch {
		case errors.Is(err, errDurability):
			code = api.CodeUnavailable
		case strings.HasPrefix(err.Error(), "unknown event"):
			code = api.CodeNotFound
		}
		writeError(w, code, "%v", err)
		return
	}
	snap := e.Snapshot()
	writeJSON(w, http.StatusOK, registerEventsResponse{Graph: e.Name(), Events: snap.Store.NumEvents(), Epoch: snap.Epoch})
}

// handleDeleteEvent implements DELETE /v1/graphs/{name}/events/{event}:
// removes the event and all its occurrences.
func (s *Server) handleDeleteEvent(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	event := r.PathValue("event")
	if err := s.applyEvents(e, nil, map[string][]int{event: nil}, true); err != nil {
		code := api.CodeNotFound
		if errors.Is(err, errDurability) {
			code = api.CodeUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	snap := e.Snapshot()
	writeJSON(w, http.StatusOK, registerEventsResponse{Graph: e.Name(), Events: snap.Store.NumEvents(), Epoch: snap.Epoch})
}

// handleMutateEdges implements POST /v1/graphs/{name}/edges: a live
// edge-mutation batch. The entry publishes a fresh snapshot and every
// cached vicinity index of the graph is migrated by incremental repair
// — bounded BFS around the flipped edges (§4.2's locality) — before the
// new version becomes visible, so index-backed queries keep hitting the
// cache across mutations instead of paying a full O(|V|·BFS) rebuild.
func (s *Server) handleMutateEdges(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req mutateEdgesRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		writeError(w, api.CodeBadRequest, "insert or delete must be non-empty")
		return
	}
	changes := make([]tesc.EdgeChange, 0, len(req.Insert)+len(req.Delete))
	for _, p := range req.Insert {
		changes = append(changes, tesc.EdgeChange{U: p[0], V: p[1], Insert: true})
	}
	for _, p := range req.Delete {
		changes = append(changes, tesc.EdgeChange{U: p[0], V: p[1], Insert: false})
	}

	res, err := s.applyEdges(e, changes, true)
	if err != nil {
		code := api.CodeBadRequest
		if errors.Is(err, errDurability) {
			code = api.CodeUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	var inserted, deleted int
	for _, c := range res.applied {
		if c.Insert {
			inserted++
		} else {
			deleted++
		}
	}
	writeJSON(w, http.StatusOK, mutateEdgesResponse{
		Graph:            e.Name(),
		Epoch:            res.snap.Epoch,
		Nodes:            res.snap.Graph.NumNodes(),
		Edges:            res.snap.Graph.NumEdges(),
		Inserted:         inserted,
		Deleted:          deleted,
		Skipped:          len(changes) - len(res.applied),
		IndexesRefreshed: res.migrated,
		NodesRecomputed:  res.recomputed,
	})
}

// handleCheckpoint implements POST /v1/graphs/{name}/snapshot: a
// synchronous checkpoint of the graph's current epoch snapshot —
// graph, events, and every cached vicinity index — to the data
// directory. Operators use it to guarantee durability at a known
// point (before a planned restart, after a bulk load) instead of
// waiting for the background debounce.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	if s.persist == nil {
		writeError(w, api.CodeUnavailable, "no data directory configured (start tescd with -data)")
		return
	}
	info, err := s.Checkpoint(e.Name())
	if err != nil {
		writeError(w, api.CodeInternal, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleCorrelate implements POST /v1/graphs/{name}/correlate: one TESC
// test with per-request options, reusing the graph and (for the
// index-backed samplers) the cached vicinity index. Identical requests
// against the same snapshot epoch coalesce into one computation (see
// coalesce.go), and the request's context — carrying any client
// deadline the admission chain attached — propagates into the density
// phase so abandoned queries stop burning BFS work.
func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req correlateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.H < 1 {
		writeError(w, api.CodeBadRequest, "h must be >= 1")
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, api.CodeBadRequest, "%v", err)
		return
	}
	tail, err := parseTail(req.Tail)
	if err != nil {
		writeError(w, api.CodeBadRequest, "%v", err)
		return
	}
	// Bind the whole query to one snapshot: occurrences, graph and
	// vicinity index all come from the same epoch even if mutations
	// land while the query runs. The epoch is part of the coalescing
	// key, so a request never adopts a result from another version.
	snap := e.Snapshot()
	if !s.freshEnough(w, e.Name(), snap.Epoch, req.MinEpoch) {
		return
	}
	key := flightKey(e.Name(), snap.Epoch, &req)
	for {
		c, leader := s.flights.join(key)
		if leader {
			s.runCorrelate(r, e, snap, &req, method, tail, c)
			s.flights.complete(key, c)
			s.writeCorrelateOutcome(w, c)
			return
		}
		s.adm.coalesceHits.Add(1)
		select {
		case <-c.done:
			if c.ctxFail {
				// The leader's client gave up, not ours: loop and
				// re-join; whoever wins the next join recomputes.
				continue
			}
			s.writeCorrelateOutcome(w, c)
			return
		case <-r.Context().Done():
			s.writeCtxOutcome(w, r)
			return
		}
	}
}

// runCorrelate performs the actual correlate computation, filling the
// flight call's outcome fields (it never writes to the wire — the
// leader and every follower render the outcome themselves).
func (s *Server) runCorrelate(r *http.Request, e *GraphEntry, snap Snapshot, req *correlateRequest, method tesc.Method, tail tesc.Tail, c *flightCall) {
	va, vb, code, err := resolveEventPair(snap, req)
	if err != nil {
		c.errCode, c.errMsg = code, err.Error()
		return
	}
	opts := tesc.Options{
		H:               req.H,
		SampleSize:      req.SampleSize,
		Method:          method,
		ImportanceBatch: req.ImportanceBatch,
		Tail:            tail,
		Alpha:           req.Alpha,
		Seed:            req.Seed,
		UseSpearman:     req.UseSpearman,
		Ctx:             r.Context(),
	}
	if method == tesc.Importance || method == tesc.Rejection {
		idx, err := s.cache.Get(e, snap, req.H, s.indexWorkers)
		if err != nil {
			c.errCode, c.errMsg = api.CodeInternal, fmt.Sprintf("building vicinity index: %v", err)
			return
		}
		opts.Index = idx
	}
	// Pooled BFS engines for this graph version: concurrent queries
	// stop allocating O(|V|) mark arrays each.
	opts.Engines = e.EnginePool(snap)

	start := time.Now()
	res, err := tesc.Correlation(snap.Graph, va, vb, opts)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			c.errCode, c.errMsg, c.ctxFail = api.CodeTimeout, err.Error(), true
		case errors.Is(err, context.Canceled):
			// 499 is the de-facto "client closed request" status; the
			// write is a no-op on the closed connection, but the code
			// keeps the outcome honest in logs and tests.
			c.errCode, c.errMsg, c.ctxFail = api.CodeClientClosed, err.Error(), true
		default:
			c.errCode, c.errMsg = api.CodeUnprocessable, err.Error()
		}
		return
	}
	s.bfsRuns.Add(res.DensityBFS)
	c.resp = correlateResponse{
		Tau:         res.Tau,
		Z:           res.Z,
		P:           res.P,
		Significant: res.Significant,
		Verdict:     res.Verdict,
		N:           res.N,
		Sampler:     res.Sampler,
		Population:  res.Population,
		SamplerBFS:  res.SamplerBFS,
		DensityBFS:  res.DensityBFS,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Epoch:       snap.Epoch,
	}
}

// writeCorrelateOutcome renders a completed flight call to one client.
// Coalesced followers share the leader's response verbatim (including
// ElapsedMS — the computation's cost, paid once).
func (s *Server) writeCorrelateOutcome(w http.ResponseWriter, c *flightCall) {
	switch c.errCode {
	case "":
		writeJSON(w, http.StatusOK, c.resp)
	case api.CodeTimeout:
		s.adm.timeouts.Add(1)
		writeRetryable(w, time.Second, api.CodeTimeout, "%s", c.errMsg)
	default:
		writeError(w, c.errCode, "%s", c.errMsg)
	}
}

// writeCtxOutcome renders a request abandoned by its own context: 504
// for an expired deadline, 499 (best-effort; the connection is gone)
// for a client hang-up.
func (s *Server) writeCtxOutcome(w http.ResponseWriter, r *http.Request) {
	if errors.Is(context.Cause(r.Context()), context.DeadlineExceeded) {
		s.adm.timeouts.Add(1)
		writeRetryable(w, time.Second, api.CodeTimeout,
			"request deadline exceeded while waiting for a coalesced result")
		return
	}
	writeError(w, api.CodeClientClosed, "client closed request")
}

// freshEnough enforces a request's min_epoch floor: a graph still
// behind it (a lagging replica, or a caller racing its own write)
// answers 503 + Retry-After so clients distinguish "retry here
// shortly" from a real failure. The error wraps screen.ErrStaleEpoch —
// the same staleness signal the screening engine raises when a pinned
// snapshot falls behind — and the body carries the unified
// backpressure shape (reason "stale_epoch") every 429/503 shares.
func (s *Server) freshEnough(w http.ResponseWriter, name string, epoch, minEpoch uint64) bool {
	if minEpoch == 0 || epoch >= minEpoch {
		return true
	}
	writeRetryable(w, time.Second, api.CodeStaleEpoch,
		"%v: graph %q is at epoch %d, request needs %d", screen.ErrStaleEpoch, name, epoch, minEpoch)
	return false
}

// resolveEventPair turns a correlate request into two occurrence
// lists, from events registered in the snapshot or inline node lists.
// The returned code distinguishes malformed requests (bad_request)
// from unknown events (not_found).
func resolveEventPair(snap Snapshot, req *correlateRequest) (va, vb []int, code api.ErrorCode, err error) {
	switch {
	case req.A != "" && req.NodesA != nil:
		return nil, nil, api.CodeBadRequest, fmt.Errorf("set either a or nodes_a, not both")
	case req.B != "" && req.NodesB != nil:
		return nil, nil, api.CodeBadRequest, fmt.Errorf("set either b or nodes_b, not both")
	}
	va = req.NodesA
	if req.A != "" {
		if va, err = storeOccurrences(snap.Store, req.A); err != nil {
			return nil, nil, api.CodeNotFound, err
		}
	}
	vb = req.NodesB
	if req.B != "" {
		if vb, err = storeOccurrences(snap.Store, req.B); err != nil {
			return nil, nil, api.CodeNotFound, err
		}
	}
	if va == nil || vb == nil {
		return nil, nil, api.CodeBadRequest, fmt.Errorf("both events must be given (a/nodes_a and b/nodes_b)")
	}
	return va, vb, "", nil
}

// handleScreen implements POST /v1/graphs/{name}/screen: an
// asynchronous all-pairs screening sweep over the graph's registered
// events. Returns 202 with a job ID for progress polling.
func (s *Server) handleScreen(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req screenRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.H < 1 {
		writeError(w, api.CodeBadRequest, "h must be >= 1")
		return
	}
	tail, err := parseTail(req.Tail)
	if err != nil {
		writeError(w, api.CodeBadRequest, "%v", err)
		return
	}
	if req.TopK < 0 {
		writeError(w, api.CodeBadRequest, "top_k must be >= 0")
		return
	}
	planned := req.TopK > 0 || req.Theta != nil
	if req.TopK > 0 && req.Theta != nil {
		writeError(w, api.CodeBadRequest, "top_k and theta are mutually exclusive")
		return
	}
	if req.Theta != nil && (*req.Theta < -1 || *req.Theta > 1) {
		writeError(w, api.CodeBadRequest, "theta must lie in [-1, 1]")
		return
	}
	if planned && req.Bonferroni {
		writeError(w, api.CodeBadRequest, "bonferroni requires the exhaustive sweep: a planned screen reports raw p-values")
		return
	}
	if !planned && req.BoundAlpha != 0 {
		writeError(w, api.CodeBadRequest, "bound_alpha applies only to planned screens (set top_k or theta)")
		return
	}
	// One snapshot for the whole sweep: a long screening job keeps its
	// consistent graph + event view while mutations continue to land.
	snap := e.Snapshot()
	if !s.freshEnough(w, e.Name(), snap.Epoch, req.MinEpoch) {
		return
	}
	ev := eventSetOf(snap.Store)
	if len(ev) < 2 {
		writeError(w, api.CodeUnprocessable, "screening needs at least 2 registered events, have %d", len(ev))
		return
	}
	g := snap.Graph
	opts := tesc.ScreenOptions{
		H:              req.H,
		SampleSize:     req.SampleSize,
		Alpha:          req.Alpha,
		Tail:           tail,
		MinOccurrences: req.MinOccurrences,
		Bonferroni:     req.Bonferroni,
		Workers:        req.Workers,
		Seed:           req.Seed,
	}
	opts.Engines = e.EnginePool(snap)
	// A screen job holds a background admission slot for its whole
	// lifetime — the middleware only applied quota/drain/deadline for
	// this class (classBackgroundJob), so the concurrency bound is
	// claimed here and released when the job finishes. At saturation
	// the job is shed with a typed 503 before any work is spent.
	release, ok := s.adm.acquireJobSlot()
	if !ok {
		writeRetryable(w, 2*time.Second, api.CodeOverloadedBG,
			"background capacity exhausted (%d screen/monitor tasks in flight)", s.adm.bg.inflight())
		return
	}
	// The job runs under the tracker's cancellable context, NOT
	// r.Context(): the handler returns at the 202 and Go cancels the
	// request context with it, which must not kill the async sweep.
	// Cancellation comes from DELETE /v1/jobs/{id} or server drain.
	if planned {
		popts := tesc.ScreenTopKOptions{
			ScreenOptions: opts,
			K:             req.TopK,
			BoundAlpha:    req.BoundAlpha,
		}
		if req.Theta != nil {
			popts.Theta = *req.Theta
		}
		job := s.jobs.StartPlanned(e.Name(), release, func(ctx context.Context, j *Job) (tesc.ScreenTopKResult, error) {
			popts.Ctx = ctx
			popts.Progress = j.setProgress
			popts.Stream = j.setPartial
			res, err := tesc.ScreenTopK(g, ev, popts)
			if err == nil {
				s.bfsRuns.Add(res.BFSRuns)
				s.memoHits.Add(res.MemoHits)
				s.screensPlanned.Add(1)
				s.pairsPruned.Add(int64(res.PrunedEarly + res.PrunedPrior))
			}
			return res, err
		})
		writeJSON(w, http.StatusAccepted, screenResponse{JobID: job.ID})
		return
	}
	job := s.jobs.Start(e.Name(), release, func(ctx context.Context, progress func(done, total int)) (tesc.ScreenResult, error) {
		opts.Ctx = ctx
		opts.Progress = progress
		res, err := tesc.Screen(g, ev, opts)
		if err == nil {
			s.bfsRuns.Add(res.BFSRuns)
			s.memoHits.Add(res.MemoHits)
		}
		return res, err
	})
	writeJSON(w, http.StatusAccepted, screenResponse{JobID: job.ID})
}

// handleGetJob implements GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, api.CodeNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleCancelJob implements DELETE /v1/jobs/{id}: aborts a running
// screening job. The sweep observes the cancellation at its next
// per-pair check and the job lands in "cancelled" (planned jobs keep
// the ranking over the pairs they finished under "partial").
// Cancelling an already-finished job is a no-op; the response is the
// job's current view either way, so clients can poll the transition.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, api.CodeNotFound, "unknown job %q", id)
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var walAppends, walFsyncs int64
	if s.persist != nil {
		if lg := s.persist.log(); lg != nil {
			walAppends = lg.Appends()
			walFsyncs = lg.Fsyncs()
		}
	}
	health := api.Health{
		Status:               "ok",
		Graphs:               len(s.registry.Names()),
		Indexes:              s.cache.Len(),
		IndexBuilt:           s.cache.Builds(),
		IndexRefreshed:       s.cache.Refreshes(),
		IndexNodesRecomputed: s.cache.NodesRecomputed(),
		SnapshotSaved:        s.snapSaved.Load(),
		SnapshotLoaded:       s.snapLoaded.Load(),
		BFSRuns:              s.bfsRuns.Load(),
		DensityMemoHits:      s.memoHits.Load(),
		ScreensPlanned:       s.screensPlanned.Load(),
		ScreenPairsPruned:    s.pairsPruned.Load(),
		MonitorsActive:       s.monitors.Active(),
		MonitorReruns:        s.monitors.Reruns(),
		MonitorNodesReused:   s.monitors.NodesReused(),
		WALAppends:           walAppends,
		WALFsyncs:            walFsyncs,
		WALReplayed:          s.walReplayed.Load(),
		RecoveryEpoch:        s.recoveryEpoch.Load(),
		RecordsShipped:       s.recordsShipped.Load(),
		// SLO is the overload-protection section: per-class latency
		// quantiles (upper bucket bounds, ms) plus shed/quota/timeout/
		// coalesce accounting — the live view the bench gate holds tail
		// latency against. See docs/OVERLOAD.md.
		SLO:      s.adm.sloView(),
		ReadOnly: s.readOnly.Load(),
	}
	if f := s.follower; f != nil {
		m := f.Metrics()
		health.ReplicaHealth = &api.ReplicaHealth{
			ReplicaLagEpochs:  m.LagEpochs,
			RecordsApplied:    m.RecordsApplied,
			RecordsSkipped:    m.RecordsSkipped,
			ReplicaPulls:      m.Pulls,
			ReplicaBootstraps: m.Bootstraps,
			ReplicaDiscards:   m.Discards,
			ReplicaFaults:     m.Faults,
		}
	}
	writeJSON(w, http.StatusOK, health)
}
