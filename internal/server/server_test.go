package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tesc"
)

// testEnv is a running service plus the ground-truth inputs the HTTP
// requests are checked against.
type testEnv struct {
	srv    *Server
	ts     *httptest.Server
	graph  *tesc.Graph
	va, vb []int
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	// Two well-separated communities plus sparse bridges: event "left"
	// lives in the first community, "right" in the last, so the planted
	// structure is strongly assortative and the verdicts are stable.
	g := tesc.RandomCommunityGraph(5, 40, 6, 0.5, 42)
	srv := New(Config{IndexCacheCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	env := &testEnv{srv: srv, ts: ts, graph: g}
	for v := 0; v < 15; v++ {
		env.va = append(env.va, v)
	}
	for v := 160; v < 175; v++ {
		env.vb = append(env.vb, v)
	}

	var edges strings.Builder
	if err := g.WriteGraph(&edges); err != nil {
		t.Fatal(err)
	}
	env.do(t, http.StatusCreated, "POST", "/v1/graphs",
		map[string]any{"name": "g", "edge_list": edges.String()}, nil)
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"left": env.va, "right": env.vb}}, nil)
	return env
}

// do issues one JSON request and decodes the response into out,
// failing the test unless the status matches.
func (env *testEnv) do(t *testing.T, wantStatus int, method, path string, body, out any) {
	t.Helper()
	if err := env.doErr(wantStatus, method, path, body, out); err != nil {
		t.Fatal(err)
	}
}

func (env *testEnv) doErr(wantStatus int, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, env.ts.URL+path, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s = %d, want %d (body: %s)", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s %s: decoding %q: %w", method, path, raw, err)
		}
	}
	return nil
}

// TestEndToEndConcurrentCorrelate is the acceptance test of the
// tentpole: register a graph and events, fire concurrent importance-
// sampling correlate requests sharing one cached vicinity index, and
// check (a) every response matches the direct tesc.Correlation call
// and (b) the index was built exactly once.
func TestEndToEndConcurrentCorrelate(t *testing.T) {
	env := newTestEnv(t)
	const h, sampleSize, seed = 2, 300, 7

	idx, err := env.graph.BuildVicinityIndex(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tesc.Correlation(env.graph, env.va, env.vb, tesc.Options{
		H: h, SampleSize: sampleSize, Method: tesc.Importance, Index: idx, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	req := map[string]any{
		"a": "left", "b": "right",
		"h": h, "sample_size": sampleSize, "method": "importance", "seed": seed,
	}
	const clients = 16
	var wg sync.WaitGroup
	responses := make([]correlateResponse, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = env.doErr(http.StatusOK, "POST", "/v1/graphs/g/correlate", req, &responses[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		got := responses[i]
		if got.Tau != want.Tau || got.Z != want.Z || got.P != want.P ||
			got.Verdict != want.Verdict || got.N != want.N || got.Sampler != want.Sampler {
			t.Fatalf("client %d: response %+v does not match direct Correlation result %+v", i, got, want)
		}
	}
	if got := env.srv.Cache().Builds(); got != 1 {
		t.Fatalf("vicinity index built %d times for %d concurrent queries, want 1", got, clients)
	}

	// One more request: a pure cache hit.
	var again correlateResponse
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate", req, &again)
	if got := env.srv.Cache().Builds(); got != 1 {
		t.Fatalf("vicinity index built %d times after warm query, want 1 (cache hit expected)", got)
	}
	if again.Tau != want.Tau {
		t.Fatalf("warm query tau %v != %v", again.Tau, want.Tau)
	}
}

// TestCorrelateMethodsAndAdHocNodes exercises the non-index samplers
// and inline node lists against direct library calls.
func TestCorrelateMethodsAndAdHocNodes(t *testing.T) {
	env := newTestEnv(t)
	want, err := tesc.Correlation(env.graph, env.va, env.vb, tesc.Options{H: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var got correlateResponse
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate",
		map[string]any{"nodes_a": env.va, "nodes_b": env.vb, "h": 1, "seed": 3}, &got)
	if got.Tau != want.Tau || got.Z != want.Z || got.Verdict != want.Verdict {
		t.Fatalf("ad-hoc batch-bfs response %+v != direct %+v", got, want)
	}
	if got.Sampler != "batch-bfs" {
		t.Fatalf("default sampler = %q, want batch-bfs", got.Sampler)
	}

	var wg correlateResponse
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "right", "h": 1, "method": "whole-graph", "seed": 3}, &wg)
	if wg.Sampler != "whole-graph" {
		t.Fatalf("sampler = %q, want whole-graph", wg.Sampler)
	}
	if env.srv.Cache().Builds() != 0 {
		t.Fatal("non-index methods must not build vicinity indexes")
	}
}

// TestScreenJobLifecycle runs an asynchronous screening sweep and
// compares the polled result with the direct tesc.Screen call.
func TestScreenJobLifecycle(t *testing.T) {
	env := newTestEnv(t)
	// Two more events make 4 events → 6 pairs.
	extra := map[string][]int{
		"mid":    {80, 81, 82, 83, 84, 85, 86, 87},
		"spread": {0, 40, 80, 120, 160, 199},
	}
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/events", map[string]any{"events": extra}, nil)

	ev := tesc.EventSet{"left": env.va, "right": env.vb, "mid": extra["mid"], "spread": extra["spread"]}
	want, err := tesc.Screen(env.graph, ev, tesc.ScreenOptions{H: 1, SampleSize: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	var accepted screenResponse
	env.do(t, http.StatusAccepted, "POST", "/v1/graphs/g/screen",
		map[string]any{"h": 1, "sample_size": 200, "seed": 11}, &accepted)
	if accepted.JobID == "" {
		t.Fatal("empty job_id")
	}

	var view JobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		env.do(t, http.StatusOK, "GET", "/v1/jobs/"+accepted.JobID, nil, &view)
		if view.Status == JobDone || view.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s (progress %d/%d)", view.Status, view.Done, view.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Status != JobDone {
		t.Fatalf("job failed: %s", view.Error)
	}
	if view.Done != view.Total || view.Total != 6 {
		t.Fatalf("progress = %d/%d, want 6/6", view.Done, view.Total)
	}
	if view.Result == nil {
		t.Fatal("done job has no result")
	}
	if view.Result.Tested != want.Tested || view.Result.Rejected != want.Rejected {
		t.Fatalf("job result tested/rejected = %d/%d, want %d/%d",
			view.Result.Tested, view.Result.Rejected, want.Tested, want.Rejected)
	}
	if len(view.Result.Pairs) != len(want.Pairs) {
		t.Fatalf("job returned %d pairs, want %d", len(view.Result.Pairs), len(want.Pairs))
	}
	for i, p := range view.Result.Pairs {
		w := want.Pairs[i]
		got := ScreenedPairView{A: p.A, B: p.B, OccA: p.OccA, OccB: p.OccB,
			Tau: p.Tau, Z: p.Z, P: p.P, AdjP: p.AdjP, Significant: p.Significant, Skipped: p.Skipped}
		exp := ScreenedPairView{A: w.A, B: w.B, OccA: w.OccA, OccB: w.OccB,
			Tau: w.Tau, Z: w.Z, P: w.P, AdjP: w.AdjP, Significant: w.Significant, Skipped: w.Skipped}
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("pair %d: %+v != direct %+v", i, got, exp)
		}
	}
}

// TestGraphLifecycleAndErrors covers registration conflicts, listing,
// deletion with cache eviction, and the API's error codes.
func TestGraphLifecycleAndErrors(t *testing.T) {
	env := newTestEnv(t)

	var infos []graphInfo
	env.do(t, http.StatusOK, "GET", "/v1/graphs", nil, &infos)
	if len(infos) != 1 || infos[0].Name != "g" || infos[0].Nodes != 200 || infos[0].Events != 2 {
		t.Fatalf("graph listing = %+v", infos)
	}

	// Duplicate registration conflicts.
	env.do(t, http.StatusConflict, "POST", "/v1/graphs",
		map[string]any{"name": "g", "edge_list": "0 1\n"}, nil)
	// Unknown graph, event, job, and malformed requests.
	env.do(t, http.StatusNotFound, "POST", "/v1/graphs/nope/correlate",
		map[string]any{"a": "x", "b": "y", "h": 1}, nil)
	env.do(t, http.StatusNotFound, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "nope", "h": 1}, nil)
	env.do(t, http.StatusNotFound, "GET", "/v1/jobs/job-999", nil, nil)
	env.do(t, http.StatusBadRequest, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "right"}, nil) // missing h
	env.do(t, http.StatusBadRequest, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "right", "h": 1, "method": "magic"}, nil)
	env.do(t, http.StatusBadRequest, "POST", "/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"bad": {9999}}}, nil) // node out of range
	env.do(t, http.StatusBadRequest, "POST", "/v1/graphs",
		map[string]any{"name": "both", "edge_list": "0 1\n", "path": "/tmp/x"}, nil)

	// Importance sampling builds and caches an index; deleting the
	// graph evicts it.
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/correlate",
		map[string]any{"a": "left", "b": "right", "h": 1, "method": "importance"}, nil)
	if env.srv.Cache().Len() != 1 {
		t.Fatalf("cache Len = %d, want 1", env.srv.Cache().Len())
	}
	env.do(t, http.StatusNoContent, "DELETE", "/v1/graphs/g", nil, nil)
	if env.srv.Cache().Len() != 0 {
		t.Fatalf("cache Len after delete = %d, want 0 (indexes must be evicted with the graph)", env.srv.Cache().Len())
	}
	env.do(t, http.StatusNotFound, "GET", "/v1/graphs/g", nil, nil)
	env.do(t, http.StatusNotFound, "DELETE", "/v1/graphs/g", nil, nil)

	// Health endpoint stays up throughout.
	var health map[string]any
	env.do(t, http.StatusOK, "GET", "/healthz", nil, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestScreenNeedsTwoEvents guards the 422 path.
func TestScreenNeedsTwoEvents(t *testing.T) {
	g, err := tesc.BuildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	env := &testEnv{srv: srv, ts: ts, graph: g}
	env.do(t, http.StatusCreated, "POST", "/v1/graphs",
		map[string]any{"name": "tiny", "edge_list": "# nodes 4\n0 1\n1 2\n2 3\n"}, nil)
	env.do(t, http.StatusOK, "POST", "/v1/graphs/tiny/events",
		map[string]any{"events": map[string][]int{"only": {0, 1}}}, nil)
	env.do(t, http.StatusUnprocessableEntity, "POST", "/v1/graphs/tiny/screen",
		map[string]any{"h": 1}, nil)
}
