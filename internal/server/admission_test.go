package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tesc/api"
)

// fakeClock is a manually advanced clock for driving token-bucket
// refill deterministically.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTenantLimiterRefill(t *testing.T) {
	clk := newFakeClock()
	// 2 tokens/s, capacity 4: a fresh tenant bursts 4 requests, then
	// earns one more every 500ms.
	l := newTenantLimiter(2, 4, clk.now)

	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("acme"); !ok {
			t.Fatalf("burst request %d denied, want the full burst of 4 admitted", i)
		}
	}
	ok, wait := l.allow("acme")
	if ok {
		t.Fatal("5th request admitted from an empty bucket")
	}
	// Empty bucket at qps=2: the next whole token accrues in 500ms.
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", wait)
	}

	clk.advance(499 * time.Millisecond)
	if ok, _ := l.allow("acme"); ok {
		t.Fatal("admitted before a whole token accrued")
	}
	// The denied probe above re-stamped the bucket; from its fractional
	// balance one more ms completes the token.
	clk.advance(2 * time.Millisecond)
	if ok, _ := l.allow("acme"); !ok {
		t.Fatal("denied after a whole token accrued")
	}

	// A long idle period refills to capacity, never beyond.
	clk.advance(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("acme"); !ok {
			t.Fatalf("post-idle burst request %d denied, want capacity restored to 4", i)
		}
	}
	if ok, _ := l.allow("acme"); ok {
		t.Fatal("bucket refilled beyond its capacity")
	}
}

func TestTenantLimiterIsolation(t *testing.T) {
	clk := newFakeClock()
	l := newTenantLimiter(1, 2, clk.now)

	// The hog drains its own bucket dry.
	for i := 0; i < 10; i++ {
		l.allow("hog")
	}
	if ok, _ := l.allow("hog"); ok {
		t.Fatal("hog still admitted after draining its bucket")
	}
	// The polite tenant's bucket is untouched.
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("polite"); !ok {
			t.Fatalf("polite tenant request %d denied; the hog leaked into its bucket", i)
		}
	}
}

func TestTenantLimiterNilAdmitsAll(t *testing.T) {
	var l *tenantLimiter // quotas disabled
	for i := 0; i < 100; i++ {
		if ok, _ := l.allow("anyone"); !ok {
			t.Fatal("nil limiter denied a request")
		}
	}
	if got := newTenantLimiter(0, 5, nil); got != nil {
		t.Fatal("qps=0 should disable the limiter entirely")
	}
}

// A client minting a fresh tenant name per request must not grow the
// bucket map past maxTrackedTenants: newcomers land in the shared
// overflow bucket while every tracked bucket is active, and idle
// buckets are evicted once they refill.
func TestTenantLimiterOverflowAndEviction(t *testing.T) {
	clk := newFakeClock()
	l := newTenantLimiter(1, 1, clk.now)

	// Fill the map with active (drained) buckets.
	for i := 0; i < maxTrackedTenants; i++ {
		if ok, _ := l.allow(fmt.Sprintf("tenant-%d", i)); !ok {
			t.Fatalf("fresh tenant %d denied", i)
		}
	}
	if n := len(l.buckets); n != maxTrackedTenants {
		t.Fatalf("tracked buckets = %d, want %d", n, maxTrackedTenants)
	}

	// Every bucket is empty, so nothing is evictable: the first
	// newcomer takes the overflow bucket's single token...
	if ok, _ := l.allow("fresh-1"); !ok {
		t.Fatal("first overflow newcomer denied; the overflow bucket should start full")
	}
	// ...and the second newcomer shares the now-empty overflow bucket.
	if ok, _ := l.allow("fresh-2"); ok {
		t.Fatal("second overflow newcomer admitted; it should share the drained overflow bucket")
	}
	if n := len(l.buckets); n > maxTrackedTenants+1 {
		t.Fatalf("bucket map grew to %d under tenant churn, want <= %d", n, maxTrackedTenants+1)
	}

	// After the buckets refill they are idle and evictable; a newcomer
	// gets its own bucket again.
	clk.advance(2 * time.Second)
	if ok, _ := l.allow("fresh-3"); !ok {
		t.Fatal("newcomer denied after idle buckets became evictable")
	}
	if n := len(l.buckets); n >= maxTrackedTenants {
		t.Fatalf("eviction kept %d buckets, want the idle ones dropped", n)
	}
}

func TestClassGateAccounting(t *testing.T) {
	g := newClassGate(2)
	if !g.tryAcquire() || !g.tryAcquire() {
		t.Fatal("gate of 2 refused its first two slots")
	}
	if g.inflight() != 2 {
		t.Fatalf("inflight = %d, want 2", g.inflight())
	}
	if g.tryAcquire() {
		t.Fatal("gate admitted past its bound")
	}
	if g.acquire(10 * time.Millisecond) {
		t.Fatal("blocking acquire succeeded on a saturated gate")
	}
	g.release()
	if g.inflight() != 1 {
		t.Fatalf("inflight after release = %d, want 1", g.inflight())
	}
	if !g.tryAcquire() {
		t.Fatal("gate refused a freed slot")
	}
	g.release()
	g.release()
	if g.inflight() != 0 {
		t.Fatalf("inflight after full release = %d, want 0", g.inflight())
	}

	var unlimited *classGate
	for i := 0; i < 100; i++ {
		if !unlimited.tryAcquire() {
			t.Fatal("nil gate refused a slot")
		}
	}
	unlimited.release() // must not panic
	if unlimited.inflight() != 0 {
		t.Fatal("nil gate reports inflight work")
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	if got := h.quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %g, want 0", got)
	}

	// One 1ms observation: 1000µs lands in bucket 10 (2⁹..2¹⁰µs), whose
	// upper bound is 1.024ms.
	h.observe(time.Millisecond)
	if got := h.quantile(0.50); got != 1.024 {
		t.Fatalf("p50 = %g ms, want the 1.024ms bucket bound", got)
	}

	// 98 fast observations vs the one slow: p50 reports the fast
	// bucket, p99 the slow one. The bound is an upper bound — never
	// below the true latency.
	for i := 0; i < 98; i++ {
		h.observe(10 * time.Microsecond) // bucket 4, bound 16µs = 0.016ms
	}
	if got := h.quantile(0.50); got != 0.016 {
		t.Fatalf("p50 = %g ms, want 0.016", got)
	}
	if got := h.quantile(0.99); got != 1.024 {
		t.Fatalf("p99 = %g ms, want 1.024", got)
	}

	// Absurdly slow observations clamp into the final bucket instead of
	// indexing out of range.
	h.observe(48 * time.Hour)
	h.observe(-time.Second) // negative durations clamp to the first bucket
	if got := h.total(); got != 101 {
		t.Fatalf("total = %d, want 101", got)
	}
}

func TestAdmissionConfigNormalize(t *testing.T) {
	var c AdmissionConfig
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.MaxInflightFG != defaultMaxInflightFG {
		t.Fatalf("MaxInflightFG = %d, want %d", c.MaxInflightFG, defaultMaxInflightFG)
	}
	if c.MaxInflightBG < 4 {
		t.Fatalf("MaxInflightBG = %d, want >= 4", c.MaxInflightBG)
	}
	if c.MaxTimeout != defaultMaxTimeout || c.DrainTimeout != defaultDrainTimeout {
		t.Fatalf("timeout defaults = %v/%v", c.MaxTimeout, c.DrainTimeout)
	}

	c = AdmissionConfig{TenantQPS: 3}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.TenantBurst != 6 {
		t.Fatalf("default burst = %g, want 2x qps", c.TenantBurst)
	}
	c = AdmissionConfig{TenantQPS: 0.1, TenantBurst: 0.5}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.TenantBurst != 1 {
		t.Fatalf("sub-token burst normalized to %g, want 1 (a bucket that can never hold a token admits nothing)", c.TenantBurst)
	}

	for _, bad := range []AdmissionConfig{
		{TenantQPS: -1},
		{TenantQPS: math.NaN()},
		{TenantQPS: math.Inf(1)},
		{TenantQPS: 1, TenantBurst: -2},
		{TenantQPS: 1, TenantBurst: math.NaN()},
	} {
		if err := bad.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v", bad)
		}
	}
}

func TestTenantOf(t *testing.T) {
	req := func(header, name string) *http.Request {
		r := httptest.NewRequest("GET", "/v1/graphs/x", nil)
		if header != "" {
			r.Header.Set(tenantHeader, header)
		}
		if name != "" {
			r.SetPathValue("name", name)
		}
		return r
	}
	cases := []struct {
		header, name, want string
	}{
		{"team-7", "acme:web", "team-7"}, // header wins
		{"", "acme:web", "acme"},
		{"", "acme/web", "acme"},
		{"", "plain", "default"},
		{"", ":odd", "default"}, // empty prefix is no tenant
		{"", "", "default"},
	}
	for _, c := range cases {
		if got := tenantOf(req(c.header, c.name)); got != c.want {
			t.Errorf("tenantOf(header=%q, name=%q) = %q, want %q", c.header, c.name, got, c.want)
		}
	}
}

func TestClientTimeout(t *testing.T) {
	req := func(v string) *http.Request {
		r := httptest.NewRequest("GET", "/", nil)
		if v != "" {
			r.Header.Set(timeoutHeader, v)
		}
		return r
	}
	if _, ok := clientTimeout(req(""), time.Minute); ok {
		t.Fatal("absent header produced a deadline")
	}
	for _, bad := range []string{"abc", "-5", "0", "12.5", ""} {
		if _, ok := clientTimeout(req(bad), time.Minute); ok {
			t.Errorf("malformed header %q produced a deadline instead of being ignored", bad)
		}
	}
	if d, ok := clientTimeout(req("250"), time.Minute); !ok || d != 250*time.Millisecond {
		t.Fatalf("250ms header = (%v, %v)", d, ok)
	}
	if d, ok := clientTimeout(req("9999999"), time.Second); !ok || d != time.Second {
		t.Fatalf("oversized header = (%v, %v), want clamp to the 1s max", d, ok)
	}
}

// decodeRetryable asserts a response carries the unified backpressure
// shape: a Retry-After header and the {code, reason, retry_after_ms}
// envelope.
func decodeRetryable(t *testing.T, rr *httptest.ResponseRecorder) api.Error {
	t.Helper()
	if rr.Header().Get("Retry-After") == "" {
		t.Fatalf("status %d response is missing the Retry-After header (body: %s)", rr.Code, rr.Body.String())
	}
	var body api.Error
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("backpressure body %q is not the unified shape: %v", rr.Body.String(), err)
	}
	if body.Code == "" || body.Reason == "" || body.RetryAfterMS < 1000 {
		t.Fatalf("backpressure body incomplete: %+v", body)
	}
	if !body.Retryable() {
		t.Fatalf("backpressure code %q is not in the retryable set", body.Code)
	}
	return body
}

// The admission chain in isolation: drain, quota, and gate rejections
// each produce their typed status without invoking the handler.
func TestAdmitChain(t *testing.T) {
	clk := newFakeClock()
	cfg := AdmissionConfig{MaxInflightFG: 1, TenantQPS: 1, TenantBurst: 1, now: clk.now}
	srv := New(Config{Admission: cfg})
	var handled int
	h := srv.admit(classForeground, func(w http.ResponseWriter, r *http.Request) {
		handled++
		w.WriteHeader(http.StatusOK)
	})

	get := func(tenant string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("GET", "/v1/graphs", nil)
		if tenant != "" {
			r.Header.Set(tenantHeader, tenant)
		}
		rr := httptest.NewRecorder()
		h(rr, r)
		return rr
	}

	// Pass: fresh tenant, free gate.
	if rr := get("a"); rr.Code != http.StatusOK || handled != 1 {
		t.Fatalf("admitted request: code %d, handled %d", rr.Code, handled)
	}

	// Quota: the tenant's single token is spent.
	rr := get("a")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d, want 429", rr.Code)
	}
	if body := decodeRetryable(t, rr); body.Code != api.CodeTenantQuota {
		t.Fatalf("code = %q, want %q", body.Code, api.CodeTenantQuota)
	}
	if got := srv.adm.quota429.Load(); got != 1 {
		t.Fatalf("quota_429 counter = %d, want 1", got)
	}

	// Gate shed: saturate the single fg slot out-of-band.
	if !srv.adm.fg.tryAcquire() {
		t.Fatal("could not saturate the fg gate")
	}
	rr = get("b")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded request = %d, want 503", rr.Code)
	}
	if body := decodeRetryable(t, rr); body.Code != api.CodeOverloadedFG {
		t.Fatalf("code = %q, want %q", body.Code, api.CodeOverloadedFG)
	}
	if got := srv.adm.shedFG.Load(); got != 1 {
		t.Fatalf("shed_fg counter = %d, want 1", got)
	}
	srv.adm.fg.release()

	// Drain: everything answers 503 draining, ahead of quota and gates.
	srv.BeginDrain()
	rr = get("c")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining request = %d, want 503", rr.Code)
	}
	if body := decodeRetryable(t, rr); body.Code != api.CodeDraining {
		t.Fatalf("code = %q, want %q", body.Code, api.CodeDraining)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times, want only the admitted request", handled)
	}
}

// The chain attaches the client's X-Tesc-Timeout-Ms as a context
// deadline, clamped to the configured maximum.
func TestAdmitAttachesDeadline(t *testing.T) {
	srv := New(Config{Admission: AdmissionConfig{MaxTimeout: time.Second}})
	var deadline time.Time
	var hasDeadline bool
	h := srv.admit(classForeground, func(w http.ResponseWriter, r *http.Request) {
		deadline, hasDeadline = r.Context().Deadline()
	})

	r := httptest.NewRequest("GET", "/v1/graphs", nil)
	h(httptest.NewRecorder(), r)
	if hasDeadline {
		t.Fatal("request without a timeout header got a deadline")
	}

	r = httptest.NewRequest("GET", "/v1/graphs", nil)
	r.Header.Set(timeoutHeader, "100")
	start := time.Now()
	h(httptest.NewRecorder(), r)
	if !hasDeadline {
		t.Fatal("timeout header did not attach a deadline")
	}
	if d := deadline.Sub(start); d <= 0 || d > 150*time.Millisecond {
		t.Fatalf("deadline %v from now, want ~100ms", d)
	}

	r = httptest.NewRequest("GET", "/v1/graphs", nil)
	r.Header.Set(timeoutHeader, "3600000") // clamped to MaxTimeout=1s
	start = time.Now()
	h(httptest.NewRecorder(), r)
	if d := deadline.Sub(start); d > 1100*time.Millisecond {
		t.Fatalf("deadline %v from now, want clamp to the 1s max", d)
	}
}

// A job slot is released exactly once no matter how many times the
// wrapper is called, and saturation sheds with accounting.
func TestAcquireJobSlot(t *testing.T) {
	a, err := newAdmission(AdmissionConfig{MaxInflightBG: 1})
	if err != nil {
		t.Fatal(err)
	}
	release, ok := a.acquireJobSlot()
	if !ok {
		t.Fatal("job slot denied on an idle gate")
	}
	if _, ok := a.acquireJobSlot(); ok {
		t.Fatal("second job slot granted past the bound")
	}
	if a.shedBG.Load() != 1 {
		t.Fatalf("shed_bg = %d, want 1", a.shedBG.Load())
	}
	release()
	release() // idempotent: must not free a slot twice
	if a.bg.inflight() != 0 {
		t.Fatalf("inflight after release = %d, want 0", a.bg.inflight())
	}
	if _, ok := a.acquireJobSlot(); !ok {
		t.Fatal("slot not reusable after release")
	}
}

// Internal background work borrows a slot but proceeds ungated when the
// gate stays saturated past the timeout: durability must never wedge
// behind client jobs.
func TestAcquireBackgroundProceedsOnTimeout(t *testing.T) {
	a, err := newAdmission(AdmissionConfig{MaxInflightBG: 1})
	if err != nil {
		t.Fatal(err)
	}
	hold, _ := a.acquireJobSlot()
	start := time.Now()
	release := a.acquireBackground(20 * time.Millisecond)
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("acquireBackground returned before its patience ran out")
	}
	release() // no slot was granted; must not underflow the gate
	if a.bg.inflight() != 1 {
		t.Fatalf("inflight = %d, want the job's 1 slot untouched", a.bg.inflight())
	}
	hold()
	release = a.acquireBackground(time.Second)
	if a.bg.inflight() != 1 {
		t.Fatalf("inflight = %d, want the borrowed slot held", a.bg.inflight())
	}
	release()
	release()
	if a.bg.inflight() != 0 {
		t.Fatalf("inflight = %d after release, want 0", a.bg.inflight())
	}
}

// FuzzAdmissionConfig drives Normalize and the assembled chain over
// arbitrary limit/quota/deadline combinations: any config Normalize
// accepts must produce a chain that answers every request with either
// a success or a well-formed typed backpressure response.
func FuzzAdmissionConfig(f *testing.F) {
	f.Add(0, 0, 0.0, 0.0, int64(0), "")
	f.Add(1, 1, 1.0, 1.0, int64(50), "acme")
	f.Add(-1, -1, 0.5, 100.0, int64(1), "x")
	f.Add(7, 3, 1e9, 0.25, int64(-20), strings.Repeat("t", 300))
	f.Add(2, 2, math.SmallestNonzeroFloat64, 0.0, int64(1<<40), "hog")
	f.Fuzz(func(t *testing.T, fg, bg int, qps, burst float64, timeoutMS int64, tenant string) {
		cfg := AdmissionConfig{MaxInflightFG: fg, MaxInflightBG: bg, TenantQPS: qps, TenantBurst: burst}
		err := cfg.Normalize()
		if qps < 0 || math.IsNaN(qps) || math.IsInf(qps, 0) ||
			burst < 0 || math.IsNaN(burst) || math.IsInf(burst, 0) {
			if err == nil {
				t.Fatalf("Normalize accepted invalid quota qps=%g burst=%g", qps, burst)
			}
			return
		}
		if err != nil {
			t.Fatalf("Normalize rejected valid config fg=%d bg=%d qps=%g burst=%g: %v", fg, bg, qps, burst, err)
		}
		if cfg.MaxInflightFG == 0 || cfg.MaxInflightBG == 0 {
			t.Fatalf("Normalize left a zero inflight bound: %+v", cfg)
		}
		if cfg.TenantQPS > 0 && cfg.TenantBurst < 1 {
			t.Fatalf("Normalize left an unusable burst %g for qps %g", cfg.TenantBurst, cfg.TenantQPS)
		}
		if cfg.MaxTimeout <= 0 || cfg.DrainTimeout <= 0 {
			t.Fatalf("Normalize left a non-positive timeout: %+v", cfg)
		}

		srv := New(Config{Admission: cfg})
		h := srv.admit(classForeground, func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		for i := 0; i < 3; i++ {
			r := httptest.NewRequest("GET", "/v1/graphs", nil)
			if tenant != "" {
				r.Header.Set(tenantHeader, tenant)
			}
			if timeoutMS != 0 {
				r.Header.Set(timeoutHeader, fmt.Sprint(timeoutMS))
			}
			rr := httptest.NewRecorder()
			h(rr, r)
			switch rr.Code {
			case http.StatusOK:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if rr.Header().Get("Retry-After") == "" {
					t.Fatalf("%d response without Retry-After", rr.Code)
				}
				var body api.Error
				if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body.Reason == "" || body.Code == "" {
					t.Fatalf("%d body %q is not the unified backpressure shape (%v)", rr.Code, rr.Body.String(), err)
				}
			default:
				t.Fatalf("admission chain produced unexpected status %d", rr.Code)
			}
		}
	})
}
