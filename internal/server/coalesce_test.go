package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tesc/api"
)

func TestFlightGroupLeaderFollower(t *testing.T) {
	var g flightGroup
	c, leader := g.join("k")
	if !leader {
		t.Fatal("first join is not the leader")
	}
	c2, leader2 := g.join("k")
	if leader2 {
		t.Fatal("second join became a second leader")
	}
	if c2 != c {
		t.Fatal("follower joined a different call")
	}
	if _, other := g.join("other-key"); !other {
		t.Fatal("a different key should start its own flight")
	}

	c.resp = correlateResponse{Tau: 0.5}
	g.complete("k", c)
	select {
	case <-c.done:
	default:
		t.Fatal("complete did not close the done channel")
	}
	// The key was retired before done closed: a request arriving now
	// starts a fresh computation (the epoch may have advanced).
	if _, fresh := g.join("k"); !fresh {
		t.Fatal("join after complete should lead a fresh flight")
	}
}

func TestFlightKeyCanonicalizes(t *testing.T) {
	a := correlateRequest{A: "x", B: "y", H: 2, SampleSize: 100}
	b := a
	if flightKey("g", 3, &a) != flightKey("g", 3, &b) {
		t.Fatal("identical requests produced different keys")
	}
	for name, other := range map[string]string{
		"graph": flightKey("g2", 3, &a),
		"epoch": flightKey("g", 4, &a),
	} {
		if other == flightKey("g", 3, &a) {
			t.Fatalf("key ignores the %s", name)
		}
	}
	c := a
	c.Seed = 99
	if flightKey("g", 3, &c) == flightKey("g", 3, &a) {
		t.Fatal("key ignores request options")
	}
}

// Coalesced followers must return the leader's response bit-identically
// — including ElapsedMS, the computation's cost paid once. The test
// installs itself as the flight's leader, lets real HTTP requests pile
// up as followers, then publishes a sentinel outcome and checks every
// follower got exactly those bytes.
func TestCorrelateCoalesceBitIdentical(t *testing.T) {
	env := newTestEnv(t)

	var info graphInfo
	env.do(t, http.StatusOK, "GET", "/v1/graphs/g", nil, &info)

	req := correlateRequest{A: "left", B: "right", H: 2, SampleSize: 200, Method: "importance", Seed: 7}
	key := flightKey("g", info.Epoch, &req)
	c, leader := env.srv.flights.join(key)
	if !leader {
		t.Fatal("test failed to install itself as the flight leader")
	}

	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	const followers = 8
	bodies := make([][]byte, followers)
	errs := make([]error, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(env.ts.URL+"/v1/graphs/g/correlate", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}

	// Wait until every follower is parked on the flight: each one
	// counts a coalesce hit before blocking.
	deadline := time.Now().Add(5 * time.Second)
	for env.srv.adm.coalesceHits.Load() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight", env.srv.adm.coalesceHits.Load(), followers)
		}
		time.Sleep(time.Millisecond)
	}

	// Publish a sentinel outcome no real computation would produce.
	c.resp = correlateResponse{Tau: 0.123456, Z: 9.75, P: 0.000011, Verdict: "positive",
		Significant: true, N: 41, Sampler: "sentinel", Population: 1234,
		SamplerBFS: 5, DensityBFS: 6, ElapsedMS: 99.5, Epoch: info.Epoch}
	env.srv.flights.complete(key, c)
	wg.Wait()

	want, err := json.Marshal(c.resp)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n') // writeJSON uses an Encoder, which terminates with \n
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("follower %d body %q is not bit-identical to the leader outcome %q", i, bodies[i], want)
		}
	}
}

// A leader that dies on its own context (client hang-up, deadline) must
// not poison its followers: they re-join, one becomes the new leader
// and computes the real result.
func TestCoalesceLeaderCtxFailRetries(t *testing.T) {
	env := newTestEnv(t)

	var info graphInfo
	env.do(t, http.StatusOK, "GET", "/v1/graphs/g", nil, &info)

	req := correlateRequest{A: "left", B: "right", H: 2, SampleSize: 150, Method: "importance", Seed: 3}
	key := flightKey("g", info.Epoch, &req)
	c, leader := env.srv.flights.join(key)
	if !leader {
		t.Fatal("test failed to install itself as the flight leader")
	}

	done := make(chan error, 1)
	go func() {
		var out correlateResponse
		done <- env.doErr(http.StatusOK, "POST", "/v1/graphs/g/correlate", &req, &out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for env.srv.adm.coalesceHits.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	// The fake leader's client "hung up": publish a ctxFail outcome.
	c.errCode, c.errMsg, c.ctxFail = api.CodeClientClosed, "client closed request", true
	env.srv.flights.complete(key, c)

	// The follower must NOT adopt the 499 — its own client is still
	// here. It re-joins, becomes the new leader, and serves a real 200.
	if err := <-done; err != nil {
		t.Fatalf("follower after leader ctx-failure: %v", err)
	}
}

// newRecorderVia serves one request in-process through the server's
// handler, so the test can supply a request context the HTTP client
// API would never let it send.
func newRecorderVia(env *testEnv, r *http.Request) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	env.srv.Handler().ServeHTTP(rr, r)
	return rr
}

// A correlate request whose own context is already dead reports a typed
// outcome instead of burning BFS work: 504 (unified backpressure shape,
// reason "timeout") for an expired deadline, 499 for a client hang-up.
func TestCorrelateDeadContext(t *testing.T) {
	env := newTestEnv(t)
	body := func() *bytes.Reader {
		b, _ := json.Marshal(map[string]any{"a": "left", "b": "right", "h": 2, "sample_size": 200})
		return bytes.NewReader(b)
	}

	// Expired deadline → 504 with Retry-After and reason "timeout".
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r, err := http.NewRequestWithContext(ctx, "POST", "/v1/graphs/g/correlate", body())
	if err != nil {
		t.Fatal(err)
	}
	rr := newRecorderVia(env, r)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline correlate = %d, want 504 (body: %s)", rr.Code, rr.Body.String())
	}
	if got := decodeRetryable(t, rr); got.Code != api.CodeTimeout {
		t.Fatalf("code = %q, want %q", got.Code, api.CodeTimeout)
	}
	if env.srv.adm.timeouts.Load() == 0 {
		t.Fatal("timeout counter not incremented")
	}

	// Cancelled context (client gone) → 499, best-effort.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	r2, err := http.NewRequestWithContext(ctx2, "POST", "/v1/graphs/g/correlate", body())
	if err != nil {
		t.Fatal(err)
	}
	rr2 := newRecorderVia(env, r2)
	if rr2.Code != 499 {
		t.Fatalf("cancelled-context correlate = %d, want 499 (body: %s)", rr2.Code, rr2.Body.String())
	}
}
