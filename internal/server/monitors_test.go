package server

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"testing"
	"time"

	"tesc"
	"tesc/internal/graphgen"
)

// monitorJSON mirrors the monitor wire views for test decoding.
type monitorJSON struct {
	ID         string         `json:"id"`
	A          string         `json:"a"`
	B          string         `json:"b"`
	H          int            `json:"h"`
	Policy     string         `json:"policy"`
	Pending    int            `json:"pending_batches"`
	Last       *sampleJSON    `json:"last"`
	History    []sampleJSON   `json:"history"`
	Ran        bool           `json:"ran"`
	SampleSize int            `json:"sample_size"`
	Extra      map[string]any `json:"-"`
}

type sampleJSON struct {
	Epoch       uint64  `json:"epoch"`
	Batches     int     `json:"batches"`
	Tau         float64 `json:"tau"`
	Z           float64 `json:"z"`
	P           float64 `json:"p"`
	Significant bool    `json:"significant"`
	Skipped     string  `json:"skipped"`
	Reused      int64   `json:"nodes_reused"`
	Recomputed  int64   `json:"nodes_recomputed"`
}

func healthCounters(t *testing.T, env *testEnv) map[string]float64 {
	t.Helper()
	var raw map[string]any
	env.do(t, http.StatusOK, "GET", "/healthz", nil, &raw)
	out := make(map[string]float64)
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// TestMonitorEndToEnd is the standing-query acceptance test: register
// a monitor over a live graph, stream 100 FlipStream mutations through
// the HTTP API in coalesced batches, and assert (a) the history ring
// advances once per coalesced drain with the right batch count, (b)
// monitor_nodes_reused climbs — the incremental path is engaging, (c)
// a daemon restart from the snapshot store restores the monitor with
// its history epoch intact and it keeps tracking.
func TestMonitorEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{IndexCacheCapacity: 4, DataDir: dir, CheckpointDelay: time.Hour})
	env := newHTTPServer(t, srv)

	// A sparse 10k-node surrogate with the event pair clustered in one
	// region: random flips mostly land far from the reference sample,
	// which is exactly the locality the incremental path exploits.
	g := tesc.RandomCoauthorshipGraph(0.1, 42)
	var edges strings.Builder
	if err := g.WriteGraph(&edges); err != nil {
		t.Fatal(err)
	}
	var va, vb []int
	for v := 0; v < 30; v++ {
		va = append(va, v)
		vb = append(vb, 30+v)
	}
	env.do(t, http.StatusCreated, "POST", "/v1/graphs",
		map[string]any{"name": "g", "edge_list": edges.String()}, nil)
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"left": va, "right": vb}}, nil)

	// Unknown events are rejected up front.
	env.do(t, http.StatusNotFound, "POST", "/v1/graphs/g/monitors",
		map[string]any{"a": "left", "b": "ghost", "h": 2}, nil)

	var mon monitorJSON
	env.do(t, http.StatusCreated, "POST", "/v1/graphs/g/monitors",
		map[string]any{"a": "left", "b": "right", "h": 2, "sample_size": 150, "seed": 7, "policy": "manual"}, &mon)
	if mon.Last == nil || mon.Last.Epoch != 2 {
		t.Fatalf("baseline sample missing or mis-stamped: %+v", mon.Last)
	}
	if mon.Last.Recomputed == 0 {
		t.Fatal("baseline paid no density traversals")
	}
	id := mon.ID

	// Stream 100 FlipStream mutations: 2 rounds x 5 batches x 10 flips,
	// one synchronous drain per round — each drain must fold exactly
	// its round's 5 batches into ONE re-screen.
	stream := graphgen.NewFlipStream(g.Internal(), 0.5, rand.New(rand.NewPCG(5, 5)))
	epoch := uint64(2)
	reusedBefore := healthCounters(t, env)["monitor_nodes_reused"]
	for round := 0; round < 2; round++ {
		for batch := 0; batch < 5; batch++ {
			flips := stream.Take(10)
			var ins, del [][2]int
			for _, c := range flips {
				p := [2]int{int(c.U), int(c.V)}
				if c.Insert {
					ins = append(ins, p)
				} else {
					del = append(del, p)
				}
			}
			env.do(t, http.StatusOK, "POST", "/v1/graphs/g/edges",
				map[string]any{"insert": ins, "delete": del}, nil)
			epoch++
		}
		var refreshed monitorJSON
		env.do(t, http.StatusOK, "POST", fmt.Sprintf("/v1/graphs/g/monitors/%s/refresh", id), map[string]any{}, &refreshed)
		if !refreshed.Ran {
			t.Fatalf("round %d: refresh did not run", round)
		}
		if refreshed.Last.Epoch != epoch {
			t.Fatalf("round %d: re-screen bound to epoch %d, want %d", round, refreshed.Last.Epoch, epoch)
		}
		if refreshed.Last.Batches != 5 {
			t.Fatalf("round %d: re-screen folded %d batches, want 5 (coalescing)", round, refreshed.Last.Batches)
		}
	}

	var detail monitorJSON
	env.do(t, http.StatusOK, "GET", "/v1/graphs/g/monitors/"+id, nil, &detail)
	if len(detail.History) != 3 { // baseline + one entry per coalesced drain
		t.Fatalf("history = %d entries, want 3 (baseline + 2 coalesced drains)", len(detail.History))
	}
	health := healthCounters(t, env)
	if health["monitors_active"] != 1 {
		t.Fatalf("monitors_active = %v, want 1", health["monitors_active"])
	}
	if health["monitor_reruns"] != 2 {
		t.Fatalf("monitor_reruns = %v, want 2", health["monitor_reruns"])
	}
	if health["monitor_nodes_reused"] <= reusedBefore {
		t.Fatalf("monitor_nodes_reused did not climb (%v -> %v): the incremental path never engaged",
			reusedBefore, health["monitor_nodes_reused"])
	}

	// Checkpoint, shut the instance down, and warm-start a second one
	// from the same data directory: the monitor must come back with its
	// definition and history epoch.
	var ckpt struct {
		Monitors int `json:"monitors"`
	}
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/snapshot", map[string]any{}, &ckpt)
	if ckpt.Monitors != 1 {
		t.Fatalf("checkpoint persisted %d monitors, want 1", ckpt.Monitors)
	}

	srv2 := New(Config{IndexCacheCapacity: 4, DataDir: dir, CheckpointDelay: time.Hour})
	if n, err := srv2.LoadData(); err != nil || n != 1 {
		t.Fatalf("warm start: restored %d graphs, err=%v", n, err)
	}
	env2 := newHTTPServer(t, srv2)
	var restored monitorJSON
	env2.do(t, http.StatusOK, "GET", "/v1/graphs/g/monitors/"+id, nil, &restored)
	if len(restored.History) != len(detail.History) {
		t.Fatalf("restored history = %d entries, want %d", len(restored.History), len(detail.History))
	}
	if restored.Last == nil || restored.Last.Epoch != epoch {
		t.Fatalf("restored monitor lost its history epoch: %+v", restored.Last)
	}
	if got := healthCounters(t, env2)["monitors_active"]; got != 1 {
		t.Fatalf("restored monitors_active = %v, want 1", got)
	}

	// The restored monitor keeps tracking: mutate, drain, epoch advances.
	flips := stream.Take(5)
	var ins, del [][2]int
	for _, c := range flips {
		p := [2]int{int(c.U), int(c.V)}
		if c.Insert {
			ins = append(ins, p)
		} else {
			del = append(del, p)
		}
	}
	env2.do(t, http.StatusOK, "POST", "/v1/graphs/g/edges", map[string]any{"insert": ins, "delete": del}, nil)
	var again monitorJSON
	env2.do(t, http.StatusOK, "POST", fmt.Sprintf("/v1/graphs/g/monitors/%s/refresh", id), map[string]any{}, &again)
	if !again.Ran || again.Last.Epoch != epoch+1 {
		t.Fatalf("post-restore tracking: ran=%v epoch=%v, want epoch %d", again.Ran, again.Last, epoch+1)
	}

	// Delete tears the monitor down.
	env2.do(t, http.StatusNoContent, "DELETE", "/v1/graphs/g/monitors/"+id, nil, nil)
	env2.do(t, http.StatusNotFound, "GET", "/v1/graphs/g/monitors/"+id, nil, nil)
	if got := healthCounters(t, env2)["monitors_active"]; got != 0 {
		t.Fatalf("monitors_active after delete = %v, want 0", got)
	}
}

// TestMonitorAutoPolicyHTTP exercises the debounced path end to end: a
// burst of mutation batches triggers at most a few automatic
// re-screens, without any refresh call.
func TestMonitorAutoPolicyHTTP(t *testing.T) {
	srv := New(Config{IndexCacheCapacity: 4})
	env := newHTTPServer(t, srv)
	g := tesc.RandomCommunityGraph(4, 30, 6, 0.5, 9)
	var edges strings.Builder
	if err := g.WriteGraph(&edges); err != nil {
		t.Fatal(err)
	}
	env.do(t, http.StatusCreated, "POST", "/v1/graphs",
		map[string]any{"name": "g", "edge_list": edges.String()}, nil)
	var va, vb []int
	for v := 0; v < 12; v++ {
		va = append(va, v)
		vb = append(vb, 90+v)
	}
	env.do(t, http.StatusOK, "POST", "/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"a": va, "b": vb}}, nil)

	var mon monitorJSON
	env.do(t, http.StatusCreated, "POST", "/v1/graphs/g/monitors",
		map[string]any{"a": "a", "b": "b", "h": 1, "sample_size": 60, "seed": 3, "debounce_ms": 15}, &mon)

	stream := graphgen.NewFlipStream(g.Internal(), 0.5, rand.New(rand.NewPCG(6, 6)))
	const bursts = 8
	finalEpoch := uint64(2)
	for i := 0; i < bursts; i++ {
		c := stream.Take(1)[0]
		body := map[string]any{}
		if c.Insert {
			body["insert"] = [][2]int{{int(c.U), int(c.V)}}
		} else {
			body["delete"] = [][2]int{{int(c.U), int(c.V)}}
		}
		env.do(t, http.StatusOK, "POST", "/v1/graphs/g/edges", body, nil)
		finalEpoch++
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var detail monitorJSON
		env.do(t, http.StatusOK, "GET", "/v1/graphs/g/monitors/"+mon.ID, nil, &detail)
		if detail.Pending == 0 && detail.Last != nil && detail.Last.Epoch == finalEpoch {
			if runs := len(detail.History) - 1; runs < 1 || runs > bursts {
				t.Fatalf("auto policy ran %d re-screens for %d batches", runs, bursts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto monitor never caught up: %+v", detail)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
