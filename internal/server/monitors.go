package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"tesc"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/monitor"
	"tesc/internal/stats"
)

// ---- wire types -----------------------------------------------------

type createMonitorRequest struct {
	// ID optionally names the monitor; the server generates one when
	// empty.
	ID string `json:"id,omitempty"`
	// A and B name the monitored (registered) event pair. Leave both
	// empty and set top_k instead to register a watchlist: a standing
	// top-k screen over the graph's whole event vocabulary, re-ranked
	// incrementally as mutations land.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// TopK > 0 selects watchlist mode (mutually exclusive with a/b).
	TopK int `json:"top_k,omitempty"`
	// MinOccurrences filters watchlist candidates (default 1); fixed
	// pairs must leave it unset.
	MinOccurrences int `json:"min_occurrences,omitempty"`
	// The test parameters mirror the correlate request.
	H          int     `json:"h"`
	SampleSize int     `json:"sample_size,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	Tail       string  `json:"tail,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// Policy selects re-evaluation: "auto" (default; debounced
	// re-screens as deltas land) or "manual" (accumulate invalidations,
	// re-screen only on POST .../refresh).
	Policy string `json:"policy,omitempty"`
	// DebounceMS is the auto-mode coalescing window in milliseconds
	// (default 250): a burst of B mutation batches inside the window
	// triggers one re-screen, not B.
	DebounceMS int `json:"debounce_ms,omitempty"`
	// History bounds the per-monitor result ring (default 64).
	History int `json:"history,omitempty"`
}

// rankedPairView is one entry of a watchlist sample's ranked list.
type rankedPairView struct {
	A           string  `json:"a"`
	B           string  `json:"b"`
	Tau         float64 `json:"tau"`
	Z           float64 `json:"z"`
	P           float64 `json:"p"`
	Significant bool    `json:"significant"`
}

type monitorSampleView struct {
	Epoch       uint64    `json:"epoch"`
	At          time.Time `json:"at"`
	Batches     int       `json:"batches"`
	Tau         float64   `json:"tau"`
	Z           float64   `json:"z"`
	P           float64   `json:"p"`
	Significant bool      `json:"significant"`
	Skipped     string    `json:"skipped,omitempty"`
	// Top is a watchlist sample's ranked list; the head fields above
	// mirror its first entry.
	Top        []rankedPairView `json:"top,omitempty"`
	Reused     int64            `json:"nodes_reused"`
	Recomputed int64            `json:"nodes_recomputed"`
	ElapsedMS  float64          `json:"elapsed_ms"`
}

type monitorView struct {
	ID    string `json:"id"`
	Graph string `json:"graph"`
	A     string `json:"a,omitempty"`
	B     string `json:"b,omitempty"`
	// TopK and MinOccurrences are set on watchlists only.
	TopK           int     `json:"top_k,omitempty"`
	MinOccurrences int     `json:"min_occurrences,omitempty"`
	H              int     `json:"h"`
	SampleSize     int     `json:"sample_size"`
	Alpha          float64 `json:"alpha"`
	Tail           string  `json:"tail"`
	Seed           uint64  `json:"seed"`
	Policy         string  `json:"policy"`
	DebounceMS     int64   `json:"debounce_ms"`
	HistoryCap     int     `json:"history_cap"`
	Pending        int     `json:"pending_batches"`
	// Last is the most recent (re-)screen, when one exists.
	Last *monitorSampleView `json:"last,omitempty"`
}

type monitorDetailView struct {
	monitorView
	History []monitorSampleView `json:"history"`
}

func sampleView(s monitor.Sample) monitorSampleView {
	v := monitorSampleView{
		Epoch:       s.Epoch,
		At:          s.At,
		Batches:     s.Batches,
		Tau:         s.Tau,
		Z:           s.Z,
		P:           s.P,
		Significant: s.Significant,
		Skipped:     s.Skipped,
		Reused:      s.Reused,
		Recomputed:  s.Recomputed,
		ElapsedMS:   s.ElapsedMS,
	}
	if len(s.Top) > 0 {
		v.Top = make([]rankedPairView, len(s.Top))
		for i, p := range s.Top {
			v.Top[i] = rankedPairView{
				A: p.A, B: p.B,
				Tau: p.Tau, Z: p.Z, P: p.P,
				Significant: p.Significant,
			}
		}
	}
	return v
}

func (s *Server) monitorInfo(m *monitor.Monitor) monitorView {
	def := m.Def()
	v := monitorView{
		ID:             def.ID,
		Graph:          m.GraphName(),
		A:              def.A,
		B:              def.B,
		TopK:           def.TopK,
		MinOccurrences: def.MinOccurrences,
		H:              def.H,
		SampleSize:     def.SampleSize,
		Alpha:          def.Alpha,
		Tail:           tailName(def.Alternative),
		Seed:           def.Seed,
		Policy:         def.Mode.String(),
		DebounceMS:     def.Debounce.Milliseconds(),
		HistoryCap:     def.HistoryCap,
		Pending:        m.Pending(),
	}
	if last, ok := m.Last(); ok {
		sv := sampleView(last)
		v.Last = &sv
	}
	return v
}

func tailName(alt stats.Alternative) string {
	switch alt {
	case stats.Greater:
		return "positive"
	case stats.Less:
		return "negative"
	default:
		return "both"
	}
}

// parseTailAlt maps the wire tail names onto the statistic's
// alternative hypothesis (the monitor layer works in stats terms).
func parseTailAlt(s string) (stats.Alternative, error) {
	switch s {
	case "", "both":
		return stats.TwoSided, nil
	case "positive":
		return stats.Greater, nil
	case "negative":
		return stats.Less, nil
	default:
		return 0, fmt.Errorf("unknown tail %q (both | positive | negative)", s)
	}
}

// ---- mutation-path plumbing ----------------------------------------

// entrySnapshotFunc adapts a registry entry to the monitor package's
// snapshot source: one consistent (graph, store, epoch) triple per
// call.
func entrySnapshotFunc(e *GraphEntry) monitor.SnapshotFunc {
	return func() (*graph.Graph, *events.Store, uint64) {
		snap := e.Snapshot()
		return snap.Graph.Internal(), snap.Store, snap.Epoch
	}
}

// internalChanges converts public edge changes to the internal type.
func internalChanges(changes []tesc.EdgeChange) []graph.EdgeChange {
	out := make([]graph.EdgeChange, len(changes))
	for i, c := range changes {
		out[i] = graph.EdgeChange{U: graph.NodeID(c.U), V: graph.NodeID(c.V), Insert: c.Insert}
	}
	return out
}

// internalNodes converts public node IDs to the internal type,
// preserving nil.
func internalNodes(nodes []int) []graph.NodeID {
	if nodes == nil {
		return nil
	}
	out := make([]graph.NodeID, len(nodes))
	for i, v := range nodes {
		out[i] = graph.NodeID(v)
	}
	return out
}

// ---- handlers -------------------------------------------------------

// handleCreateMonitor implements POST /v1/graphs/{name}/monitors: it
// registers a standing query and runs its baseline screen
// synchronously, so the 201 response already carries a result at the
// current epoch.
func (s *Server) handleCreateMonitor(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req createMonitorRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	alt, err := parseTailAlt(req.Tail)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode, err := monitor.ParseMode(req.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := e.Snapshot()
	for _, name := range []string{req.A, req.B} {
		if name != "" && !snap.Store.Has(name) {
			writeError(w, http.StatusNotFound, "unknown event %q", name)
			return
		}
	}
	def := monitor.Definition{
		ID:             req.ID,
		A:              req.A,
		B:              req.B,
		TopK:           req.TopK,
		MinOccurrences: req.MinOccurrences,
		H:              req.H,
		SampleSize:     req.SampleSize,
		Alpha:          req.Alpha,
		Alternative:    alt,
		Seed:           req.Seed,
		Mode:           mode,
		Debounce:       time.Duration(req.DebounceMS) * time.Millisecond,
		HistoryCap:     req.History,
	}
	m, err := s.monitors.Create(e.Name(), def, entrySnapshotFunc(e))
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already registered") {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	// A monitor has no WAL record kind: its durability unit is the
	// graph's snapshot (monitor states persist in the MNTR section), so
	// the create checkpoints synchronously before the 201. On failure
	// the monitor rolls back — an acknowledged standing query must
	// survive a crash.
	if err := s.durableAck(e.Name()); err != nil {
		s.monitors.Delete(e.Name(), m.Def().ID)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.monitorInfo(m))
}

// handleListMonitors implements GET /v1/graphs/{name}/monitors.
func (s *Server) handleListMonitors(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	ms := s.monitors.List(e.Name())
	out := make([]monitorView, 0, len(ms))
	for _, m := range ms {
		out = append(out, s.monitorInfo(m))
	}
	writeJSON(w, http.StatusOK, out)
}

// monitorByPath resolves {name}/{id} to a registered monitor.
func (s *Server) monitorByPath(w http.ResponseWriter, r *http.Request) (*monitor.Monitor, *GraphEntry, bool) {
	e, ok := s.entry(w, r)
	if !ok {
		return nil, nil, false
	}
	id := r.PathValue("id")
	m, ok := s.monitors.Get(e.Name(), id)
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q has no monitor %q", e.Name(), id)
		return nil, nil, false
	}
	return m, e, true
}

// handleGetMonitor implements GET /v1/graphs/{name}/monitors/{id}:
// definition, pending-delta count, and the full history ring.
func (s *Server) handleGetMonitor(w http.ResponseWriter, r *http.Request) {
	m, _, ok := s.monitorByPath(w, r)
	if !ok {
		return
	}
	hist := m.History()
	detail := monitorDetailView{monitorView: s.monitorInfo(m), History: make([]monitorSampleView, len(hist))}
	for i, smp := range hist {
		detail.History[i] = sampleView(smp)
	}
	writeJSON(w, http.StatusOK, detail)
}

// handleDeleteMonitor implements DELETE /v1/graphs/{name}/monitors/{id}.
func (s *Server) handleDeleteMonitor(w http.ResponseWriter, r *http.Request) {
	m, e, ok := s.monitorByPath(w, r)
	if !ok {
		return
	}
	s.monitors.Delete(e.Name(), m.Def().ID)
	// Persist the deletion before the 204; a failed checkpoint still
	// deleted the monitor in memory (delete is idempotent — replaying
	// it at the next boot is the snapshot's job, not the client's), so
	// only the durability failure is surfaced.
	if err := s.durableAck(e.Name()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRefreshMonitor implements POST
// /v1/graphs/{name}/monitors/{id}/refresh: a synchronous drain —
// pending deltas are folded into one re-screen now. With ?force=1 the
// monitor re-screens even when nothing is pending (clients of manual
// monitors use it to re-evaluate on their own clock). Responds with
// the monitor detail; 200 when a re-screen ran, 204-equivalent body
// (ran=false) otherwise.
func (s *Server) handleRefreshMonitor(w http.ResponseWriter, r *http.Request) {
	m, e, ok := s.monitorByPath(w, r)
	if !ok {
		return
	}
	force := r.URL.Query().Get("force") == "1" || r.URL.Query().Get("force") == "true"
	_, ran, err := m.Refresh(force)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if ran {
		s.markDirty(e.Name())
	}
	writeJSON(w, http.StatusOK, struct {
		Ran bool `json:"ran"`
		monitorView
	}{Ran: ran, monitorView: s.monitorInfo(m)})
}
