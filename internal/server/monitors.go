package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"tesc"
	"tesc/api"
	"tesc/internal/events"
	"tesc/internal/graph"
	"tesc/internal/monitor"
	"tesc/internal/stats"
)

// ---- wire types -----------------------------------------------------

// The monitor wire shapes live in the public api package; the aliases
// keep this file's conversion helpers reading naturally.
type (
	createMonitorRequest = api.CreateMonitorRequest
	rankedPairView       = api.RankedPair
	monitorSampleView    = api.MonitorSample
	monitorView          = api.MonitorView
	monitorDetailView    = api.MonitorDetail
)

func sampleView(s monitor.Sample) monitorSampleView {
	v := monitorSampleView{
		Epoch:       s.Epoch,
		At:          s.At,
		Batches:     s.Batches,
		Tau:         s.Tau,
		Z:           s.Z,
		P:           s.P,
		Significant: s.Significant,
		Skipped:     s.Skipped,
		Reused:      s.Reused,
		Recomputed:  s.Recomputed,
		ElapsedMS:   s.ElapsedMS,
	}
	if len(s.Top) > 0 {
		v.Top = make([]rankedPairView, len(s.Top))
		for i, p := range s.Top {
			v.Top[i] = rankedPairView{
				A: p.A, B: p.B,
				Tau: p.Tau, Z: p.Z, P: p.P,
				Significant: p.Significant,
			}
		}
	}
	return v
}

func (s *Server) monitorInfo(m *monitor.Monitor) monitorView {
	def := m.Def()
	v := monitorView{
		ID:             def.ID,
		Graph:          m.GraphName(),
		A:              def.A,
		B:              def.B,
		TopK:           def.TopK,
		MinOccurrences: def.MinOccurrences,
		H:              def.H,
		SampleSize:     def.SampleSize,
		Alpha:          def.Alpha,
		Tail:           tailName(def.Alternative),
		Seed:           def.Seed,
		Policy:         def.Mode.String(),
		DebounceMS:     def.Debounce.Milliseconds(),
		HistoryCap:     def.HistoryCap,
		Pending:        m.Pending(),
	}
	if last, ok := m.Last(); ok {
		sv := sampleView(last)
		v.Last = &sv
	}
	return v
}

func tailName(alt stats.Alternative) string {
	switch alt {
	case stats.Greater:
		return "positive"
	case stats.Less:
		return "negative"
	default:
		return "both"
	}
}

// parseTailAlt maps the wire tail names onto the statistic's
// alternative hypothesis (the monitor layer works in stats terms).
func parseTailAlt(s string) (stats.Alternative, error) {
	switch s {
	case "", "both":
		return stats.TwoSided, nil
	case "positive":
		return stats.Greater, nil
	case "negative":
		return stats.Less, nil
	default:
		return 0, fmt.Errorf("unknown tail %q (both | positive | negative)", s)
	}
}

// ---- mutation-path plumbing ----------------------------------------

// entrySnapshotFunc adapts a registry entry to the monitor package's
// snapshot source: one consistent (graph, store, epoch) triple per
// call.
func entrySnapshotFunc(e *GraphEntry) monitor.SnapshotFunc {
	return func() (*graph.Graph, *events.Store, uint64) {
		snap := e.Snapshot()
		return snap.Graph.Internal(), snap.Store, snap.Epoch
	}
}

// internalChanges converts public edge changes to the internal type.
func internalChanges(changes []tesc.EdgeChange) []graph.EdgeChange {
	out := make([]graph.EdgeChange, len(changes))
	for i, c := range changes {
		out[i] = graph.EdgeChange{U: graph.NodeID(c.U), V: graph.NodeID(c.V), Insert: c.Insert}
	}
	return out
}

// internalNodes converts public node IDs to the internal type,
// preserving nil.
func internalNodes(nodes []int) []graph.NodeID {
	if nodes == nil {
		return nil
	}
	out := make([]graph.NodeID, len(nodes))
	for i, v := range nodes {
		out[i] = graph.NodeID(v)
	}
	return out
}

// ---- handlers -------------------------------------------------------

// handleCreateMonitor implements POST /v1/graphs/{name}/monitors: it
// registers a standing query and runs its baseline screen
// synchronously, so the 201 response already carries a result at the
// current epoch.
func (s *Server) handleCreateMonitor(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	var req createMonitorRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	alt, err := parseTailAlt(req.Tail)
	if err != nil {
		writeError(w, api.CodeBadRequest, "%v", err)
		return
	}
	mode, err := monitor.ParseMode(req.Policy)
	if err != nil {
		writeError(w, api.CodeBadRequest, "%v", err)
		return
	}
	snap := e.Snapshot()
	for _, name := range []string{req.A, req.B} {
		if name != "" && !snap.Store.Has(name) {
			writeError(w, api.CodeNotFound, "unknown event %q", name)
			return
		}
	}
	def := monitor.Definition{
		ID:             req.ID,
		A:              req.A,
		B:              req.B,
		TopK:           req.TopK,
		MinOccurrences: req.MinOccurrences,
		H:              req.H,
		SampleSize:     req.SampleSize,
		Alpha:          req.Alpha,
		Alternative:    alt,
		Seed:           req.Seed,
		Mode:           mode,
		Debounce:       time.Duration(req.DebounceMS) * time.Millisecond,
		HistoryCap:     req.History,
	}
	m, err := s.monitors.Create(e.Name(), def, entrySnapshotFunc(e))
	if err != nil {
		code := api.CodeBadRequest
		if strings.Contains(err.Error(), "already registered") {
			code = api.CodeConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	// A monitor has no WAL record kind: its durability unit is the
	// graph's snapshot (monitor states persist in the MNTR section), so
	// the create checkpoints synchronously before the 201. On failure
	// the monitor rolls back — an acknowledged standing query must
	// survive a crash.
	if err := s.durableAck(e.Name()); err != nil {
		s.monitors.Delete(e.Name(), m.Def().ID)
		writeError(w, api.CodeUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.monitorInfo(m))
}

// handleListMonitors implements GET /v1/graphs/{name}/monitors.
func (s *Server) handleListMonitors(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entry(w, r)
	if !ok {
		return
	}
	ms := s.monitors.List(e.Name())
	out := make([]monitorView, 0, len(ms))
	for _, m := range ms {
		out = append(out, s.monitorInfo(m))
	}
	writeJSON(w, http.StatusOK, out)
}

// monitorByPath resolves {name}/{id} to a registered monitor.
func (s *Server) monitorByPath(w http.ResponseWriter, r *http.Request) (*monitor.Monitor, *GraphEntry, bool) {
	e, ok := s.entry(w, r)
	if !ok {
		return nil, nil, false
	}
	id := r.PathValue("id")
	m, ok := s.monitors.Get(e.Name(), id)
	if !ok {
		writeError(w, api.CodeNotFound, "graph %q has no monitor %q", e.Name(), id)
		return nil, nil, false
	}
	return m, e, true
}

// handleGetMonitor implements GET /v1/graphs/{name}/monitors/{id}:
// definition, pending-delta count, and the full history ring.
func (s *Server) handleGetMonitor(w http.ResponseWriter, r *http.Request) {
	m, _, ok := s.monitorByPath(w, r)
	if !ok {
		return
	}
	hist := m.History()
	detail := monitorDetailView{MonitorView: s.monitorInfo(m), History: make([]monitorSampleView, len(hist))}
	for i, smp := range hist {
		detail.History[i] = sampleView(smp)
	}
	writeJSON(w, http.StatusOK, detail)
}

// handleDeleteMonitor implements DELETE /v1/graphs/{name}/monitors/{id}.
func (s *Server) handleDeleteMonitor(w http.ResponseWriter, r *http.Request) {
	m, e, ok := s.monitorByPath(w, r)
	if !ok {
		return
	}
	s.monitors.Delete(e.Name(), m.Def().ID)
	// Persist the deletion before the 204; a failed checkpoint still
	// deleted the monitor in memory (delete is idempotent — replaying
	// it at the next boot is the snapshot's job, not the client's), so
	// only the durability failure is surfaced.
	if err := s.durableAck(e.Name()); err != nil {
		writeError(w, api.CodeUnavailable, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRefreshMonitor implements POST
// /v1/graphs/{name}/monitors/{id}/refresh: a synchronous drain —
// pending deltas are folded into one re-screen now. With ?force=1 the
// monitor re-screens even when nothing is pending (clients of manual
// monitors use it to re-evaluate on their own clock). Responds with
// the monitor detail; 200 when a re-screen ran, 204-equivalent body
// (ran=false) otherwise.
func (s *Server) handleRefreshMonitor(w http.ResponseWriter, r *http.Request) {
	m, e, ok := s.monitorByPath(w, r)
	if !ok {
		return
	}
	force := r.URL.Query().Get("force") == "1" || r.URL.Query().Get("force") == "true"
	_, ran, err := m.Refresh(force)
	if err != nil {
		writeError(w, api.CodeUnprocessable, "%v", err)
		return
	}
	if ran {
		s.markDirty(e.Name())
	}
	writeJSON(w, http.StatusOK, api.MonitorRefreshResponse{Ran: ran, MonitorView: s.monitorInfo(m)})
}
