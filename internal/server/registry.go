// Package server implements tescd, a long-running HTTP/JSON service for
// TESC queries. It amortizes the two expensive offline steps the paper
// separates from query time — loading the graph and building the
// vicinity-size index (§4.2) — across many cheap online correlation
// queries: graphs are loaded once into a named registry, vicinity
// indexes are built on demand and kept in an LRU cache with
// single-flight construction, and screening sweeps run as asynchronous
// jobs with progress polling.
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tesc"
	"tesc/internal/events"
	"tesc/internal/graph"
)

// GraphEntry is one registered graph plus its accumulated event
// occurrences. All methods are safe for concurrent use.
type GraphEntry struct {
	name    string
	graph   *tesc.Graph
	created time.Time

	mu      sync.RWMutex
	builder *events.Builder
	store   *events.Store // frozen snapshot, rebuilt after each AddEvents
}

// Name returns the registry name of the graph.
func (e *GraphEntry) Name() string { return e.name }

// Graph returns the immutable graph.
func (e *GraphEntry) Graph() *tesc.Graph { return e.graph }

// Created returns the registration time.
func (e *GraphEntry) Created() time.Time { return e.created }

// AddEvents records event occurrences (event name → node IDs). Node IDs
// outside the graph's range are rejected before anything is recorded.
// Repeated registrations of the same occurrence accumulate intensity,
// matching events.Builder semantics.
func (e *GraphEntry) AddEvents(ev map[string][]int) error {
	n := e.graph.NumNodes()
	for name, nodes := range ev {
		if name == "" {
			return fmt.Errorf("empty event name")
		}
		for _, v := range nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("event %q: node %d outside [0,%d)", name, v, n)
			}
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, nodes := range ev {
		for _, v := range nodes {
			e.builder.Add(name, graph.NodeID(v))
		}
	}
	e.store = e.builder.Build()
	return nil
}

// AddStore replays a parsed event store into the entry, preserving
// per-occurrence intensities (§6's event-intensity extension, e.g. the
// optional third column of the graphio events format). The store's
// node universe must match the graph.
func (e *GraphEntry) AddStore(store *events.Store) error {
	if store.Universe() != e.graph.NumNodes() {
		return fmt.Errorf("event universe %d does not match graph nodes %d", store.Universe(), e.graph.NumNodes())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, name := range store.Names() {
		for _, v := range store.Occurrences(name) {
			e.builder.AddWeighted(name, v, store.Intensity(name, v))
		}
	}
	e.store = e.builder.Build()
	return nil
}

// Store returns the current immutable event snapshot.
func (e *GraphEntry) Store() *events.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// Occurrences returns the occurrence node IDs of the named event, or an
// error naming the event when it is unknown.
func (e *GraphEntry) Occurrences(name string) ([]int, error) {
	store := e.Store()
	if !store.Has(name) {
		return nil, fmt.Errorf("unknown event %q", name)
	}
	occ := store.Occurrences(name)
	out := make([]int, len(occ))
	for i, v := range occ {
		out[i] = int(v)
	}
	return out, nil
}

// EventSet snapshots all registered events as the public screening
// input type.
func (e *GraphEntry) EventSet() tesc.EventSet {
	store := e.Store()
	out := make(tesc.EventSet, store.NumEvents())
	for _, name := range store.Names() {
		occ := store.Occurrences(name)
		nodes := make([]int, len(occ))
		for i, v := range occ {
			nodes[i] = int(v)
		}
		out[name] = nodes
	}
	return out
}

// NumEvents returns the number of distinct registered events.
func (e *GraphEntry) NumEvents() int { return e.Store().NumEvents() }

// Registry is a named collection of loaded graphs. It is the unit of
// amortization: a graph is parsed and indexed once, then serves any
// number of queries.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*GraphEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*GraphEntry)}
}

// Register adds a graph under a unique name.
func (r *Registry) Register(name string, g *tesc.Graph) (*GraphEntry, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return nil, fmt.Errorf("graph %q already registered", name)
	}
	e := &GraphEntry{
		name:    name,
		graph:   g,
		created: time.Now(),
		builder: events.NewBuilder(g.NumNodes()),
	}
	e.store = e.builder.Build()
	r.graphs[name] = e
	return e, nil
}

// Get returns the entry for name, or false.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	return e, ok
}

// Remove deletes the named graph, returning the removed entry so the
// caller can release resources keyed on it (cached indexes).
func (r *Registry) Remove(name string) (*GraphEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	delete(r.graphs, name)
	return e, ok
}

// Names returns the registered graph names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
