// Package server implements tescd, a long-running HTTP/JSON service for
// TESC queries over evolving graphs. It amortizes the two expensive
// offline steps the paper separates from query time — loading the graph
// and building the vicinity-size index (§4.2) — across many cheap
// online correlation queries: graphs are loaded once into a named
// registry, vicinity indexes are built on demand and kept in an LRU
// cache with single-flight construction, and screening sweeps run as
// asynchronous jobs with progress polling.
//
// Graphs and event sets are mutable through the API, with epoch
// snapshots as the consistency model: every mutation (edge batch, event
// add/remove) publishes a fresh immutable snapshot and bumps the
// entry's epoch; a query binds to exactly one snapshot for its whole
// execution, so concurrent mutators never produce torn reads. Cached
// vicinity indexes are not invalidated on edge mutations — they are
// repaired in place via the paper's locality argument (an edge flip
// only perturbs |V^h_v| within h hops of its endpoints) and republished
// with the new snapshot.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tesc"
	"tesc/internal/events"
	"tesc/internal/graph"
)

// ErrAlreadyRegistered reports a graph-name collision; handlers match
// it with errors.Is to map registration conflicts to 409.
var ErrAlreadyRegistered = errors.New("already registered")

// Snapshot is one immutable, internally consistent version of a
// registered graph: the CSR graph, the frozen event store, and the
// version stamps. Queries take a snapshot once and use only it; the
// entry may move on concurrently.
type Snapshot struct {
	// Graph is the immutable graph snapshot.
	Graph *tesc.Graph
	// Store is the frozen event-occurrence snapshot.
	Store *events.Store
	// Epoch increases by one on every mutation of the entry, edge or
	// event; responses carry it so clients can tell which version
	// answered.
	Epoch uint64
	// GraphVersion increases only on edge mutations. It keys the
	// vicinity-index cache: an index is valid for exactly one graph
	// version, and an edge mutation migrates cached indexes to the next
	// version by incremental repair instead of eviction.
	GraphVersion uint64
}

// GraphEntry is one registered graph plus its accumulated event
// occurrences. All methods are safe for concurrent use.
type GraphEntry struct {
	name    string
	created time.Time

	// mutMu serializes mutations end to end (snapshot computation,
	// index refresh, publication), so epochs increase monotonically and
	// cache refreshes never interleave. Queries never take it.
	mutMu sync.Mutex

	mu      sync.RWMutex
	builder *events.Builder
	cur     Snapshot

	// poolMu guards the per-graph-version BFS engine pool. The pool is
	// bound to exactly one graph snapshot; an edge mutation publishes a
	// new graph and the next query lazily swaps in a fresh pool, so
	// engines can never serve traversals over a stale version.
	poolMu      sync.Mutex
	pool        *tesc.EnginePool
	poolVersion uint64
}

// Name returns the registry name of the graph.
func (e *GraphEntry) Name() string { return e.name }

// Created returns the registration time.
func (e *GraphEntry) Created() time.Time { return e.created }

// Snapshot returns the current immutable snapshot.
func (e *GraphEntry) Snapshot() Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cur
}

// Graph returns the current graph snapshot.
func (e *GraphEntry) Graph() *tesc.Graph { return e.Snapshot().Graph }

// Store returns the current event snapshot.
func (e *GraphEntry) Store() *events.Store { return e.Snapshot().Store }

// Epoch returns the current snapshot's epoch.
func (e *GraphEntry) Epoch() uint64 { return e.Snapshot().Epoch }

// EnginePool returns the shared BFS engine pool for the given snapshot
// of this entry, creating or replacing it when the snapshot's graph
// version is newer than the cached pool's. Queries pass the snapshot
// they bound to; a query racing a mutation with an older snapshot gets
// a private throwaway pool rather than polluting (or reviving) the
// newer version's pool — engine reuse is an optimization, version
// consistency is not negotiable.
func (e *GraphEntry) EnginePool(snap Snapshot) *tesc.EnginePool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	switch {
	case e.pool != nil && e.poolVersion == snap.GraphVersion:
		return e.pool
	case e.pool == nil || snap.GraphVersion > e.poolVersion:
		e.pool = snap.Graph.NewEnginePool()
		e.poolVersion = snap.GraphVersion
		return e.pool
	default: // stale snapshot mid-mutation: don't downgrade the cache
		return snap.Graph.NewEnginePool()
	}
}

// MutateEdges applies an edge-change batch and publishes the successor
// snapshot. No-op changes (inserting a present edge, deleting an absent
// one) are skipped; applied reports the changes that took effect. When
// at least one change took effect, refresh — if non-nil — runs between
// computing the successor and publishing it, with mutations still
// serialized, so the index cache can migrate its entries before any
// query can observe the new version; a refresh error aborts the whole
// mutation before publication (the WAL's log-before-publish hook: an
// unloggable mutation must never be acknowledged). An entirely
// ineffective batch publishes nothing and returns the current snapshot
// unchanged.
func (e *GraphEntry) MutateEdges(changes []tesc.EdgeChange, refresh func(old, next Snapshot, applied []tesc.EdgeChange) error) (Snapshot, []tesc.EdgeChange, error) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	old := e.Snapshot()
	newG, applied, err := old.Graph.ApplyEdgeChanges(changes)
	if err != nil {
		return Snapshot{}, nil, err
	}
	if len(applied) == 0 {
		return old, nil, nil
	}
	next := Snapshot{
		Graph:        newG,
		Store:        old.Store,
		Epoch:        old.Epoch + 1,
		GraphVersion: old.GraphVersion + 1,
	}
	if refresh != nil {
		if err := refresh(old, next, applied); err != nil {
			return Snapshot{}, nil, err
		}
	}
	e.mu.Lock()
	e.cur = next
	e.mu.Unlock()
	return next, applied, nil
}

// AddEvents records event occurrences (event name → node IDs). Node IDs
// outside the graph's range are rejected before anything is recorded.
// Repeated registrations of the same occurrence accumulate intensity,
// matching events.Builder semantics.
func (e *GraphEntry) AddEvents(ev map[string][]int) error {
	return e.mutateEvents(ev, nil, nil)
}

// RemoveEvents deletes event occurrences: each name maps to the node
// IDs to remove, an empty (or nil) list removing the whole event. The
// batch is validated against the current snapshot first and rejected
// whole on an unknown event or absent occurrence.
func (e *GraphEntry) RemoveEvents(ev map[string][]int) error {
	return e.mutateEvents(nil, ev, nil)
}

// MutateEvents applies additions and removals as one mutation (one
// epoch bump, one published snapshot).
func (e *GraphEntry) MutateEvents(add, remove map[string][]int) error {
	return e.mutateEvents(add, remove, nil)
}

// MutateEventsNotify is MutateEvents with a pre-publication hook: when
// the batch will take effect, notify runs — with mutations still
// serialized, before any reader can observe the successor snapshot —
// receiving the per-event occurrence nodes the batch touches and the
// epoch the mutation publishes. The monitor scheduler queues its
// density-cache invalidations there, so a standing query can never
// bind the new epoch without its invalidation already being queued
// (the same ordering the edge path gets from MutateEdges' refresh
// callback), and the WAL appends its record there — a notify error
// aborts the mutation before anything is applied or published.
func (e *GraphEntry) MutateEventsNotify(add, remove map[string][]int, notify func(changed map[string][]graph.NodeID, nextEpoch uint64) error) error {
	return e.mutateEvents(add, remove, notify)
}

func (e *GraphEntry) mutateEvents(add, remove map[string][]int, notify func(changed map[string][]graph.NodeID, nextEpoch uint64) error) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	old := e.Snapshot()
	n := old.Graph.NumNodes()
	for name, nodes := range add {
		if name == "" {
			return fmt.Errorf("empty event name")
		}
		for _, v := range nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("event %q: node %d outside [0,%d)", name, v, n)
			}
		}
	}
	// Validate removals fully before touching the builder, so a bad
	// batch is rejected whole. An occurrence added in the same batch may
	// also be removed (apply order is add, then remove).
	for name, nodes := range remove {
		addedNodes, addedAny := add[name]
		if !old.Store.Has(name) && !addedAny {
			return fmt.Errorf("unknown event %q", name)
		}
		for _, v := range nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("event %q: node %d outside [0,%d)", name, v, n)
			}
			if old.Store.Intensity(name, graph.NodeID(v)) > 0 {
				continue
			}
			inBatch := false
			for _, a := range addedNodes {
				if a == v {
					inBatch = true
					break
				}
			}
			if !inBatch {
				return fmt.Errorf("event %q has no occurrence on node %d", name, v)
			}
		}
	}
	if notify != nil {
		// The batch is fully validated and will apply; gather the
		// occurrence nodes it touches per event (a whole-event removal
		// touches every former occurrence) and notify before taking
		// e.mu — publication is still ahead of us.
		changed := make(map[string][]graph.NodeID, len(add)+len(remove))
		for name, nodes := range add {
			for _, v := range nodes {
				changed[name] = append(changed[name], graph.NodeID(v))
			}
		}
		for name, nodes := range remove {
			if len(nodes) == 0 {
				changed[name] = append(changed[name], old.Store.Occurrences(name)...)
				continue
			}
			for _, v := range nodes {
				changed[name] = append(changed[name], graph.NodeID(v))
			}
		}
		if err := notify(changed, old.Epoch+1); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, nodes := range add {
		for _, v := range nodes {
			e.builder.Add(name, graph.NodeID(v))
		}
	}
	for name, nodes := range remove {
		if len(nodes) == 0 {
			e.builder.RemoveEvent(name)
			continue
		}
		for _, v := range nodes {
			// Validated above; duplicates within the batch are idempotent.
			e.builder.Remove(name, graph.NodeID(v))
		}
	}
	e.cur.Store = e.builder.Build()
	e.cur.Epoch++
	return nil
}

// AddStore replays a parsed event store into the entry, preserving
// per-occurrence intensities (§6's event-intensity extension, e.g. the
// optional third column of the graphio events format). The store's
// node universe must match the graph.
func (e *GraphEntry) AddStore(store *events.Store) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if store.Universe() != e.Snapshot().Graph.NumNodes() {
		return fmt.Errorf("event universe %d does not match graph nodes %d", store.Universe(), e.Snapshot().Graph.NumNodes())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, name := range store.Names() {
		for _, v := range store.Occurrences(name) {
			e.builder.AddWeighted(name, v, store.Intensity(name, v))
		}
	}
	e.cur.Store = e.builder.Build()
	e.cur.Epoch++
	return nil
}

// Occurrences returns the occurrence node IDs of the named event in the
// given store, or an error naming the event when it is unknown.
func storeOccurrences(store *events.Store, name string) ([]int, error) {
	if !store.Has(name) {
		return nil, fmt.Errorf("unknown event %q", name)
	}
	occ := store.Occurrences(name)
	out := make([]int, len(occ))
	for i, v := range occ {
		out[i] = int(v)
	}
	return out, nil
}

// Occurrences returns the occurrence node IDs of the named event in the
// current snapshot, or an error naming the event when it is unknown.
func (e *GraphEntry) Occurrences(name string) ([]int, error) {
	return storeOccurrences(e.Store(), name)
}

// eventSetOf snapshots a store's events as the public screening input
// type.
func eventSetOf(store *events.Store) tesc.EventSet {
	out := make(tesc.EventSet, store.NumEvents())
	for _, name := range store.Names() {
		occ := store.Occurrences(name)
		nodes := make([]int, len(occ))
		for i, v := range occ {
			nodes[i] = int(v)
		}
		out[name] = nodes
	}
	return out
}

// EventSet snapshots all registered events as the public screening
// input type.
func (e *GraphEntry) EventSet() tesc.EventSet { return eventSetOf(e.Store()) }

// NumEvents returns the number of distinct registered events.
func (e *GraphEntry) NumEvents() int { return e.Store().NumEvents() }

// Registry is a named collection of loaded graphs. It is the unit of
// amortization: a graph is parsed and indexed once, then serves any
// number of queries.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*GraphEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*GraphEntry)}
}

// Register adds a graph under a unique name.
func (r *Registry) Register(name string, g *tesc.Graph) (*GraphEntry, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return nil, fmt.Errorf("graph %q %w", name, ErrAlreadyRegistered)
	}
	e := &GraphEntry{
		name:    name,
		created: time.Now(),
		builder: events.NewBuilder(g.NumNodes()),
	}
	e.cur = Snapshot{Graph: g, Store: e.builder.Build(), Epoch: 1, GraphVersion: 1}
	r.graphs[name] = e
	return e, nil
}

// RegisterRestored installs a warm-start entry deserialized from a
// snapshot: the event store and the epoch stamps continue exactly
// where the persisted entry left off, so clients comparing response
// epochs across a daemon restart never see time run backwards. A nil
// store restores a graph persisted before any events were registered.
func (r *Registry) RegisterRestored(name string, g *tesc.Graph, store *events.Store, epoch, graphVersion uint64) (*GraphEntry, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	if epoch < 1 || graphVersion < 1 {
		return nil, fmt.Errorf("graph %q: epoch %d / graph version %d must be >= 1", name, epoch, graphVersion)
	}
	var builder *events.Builder
	if store == nil {
		builder = events.NewBuilder(g.NumNodes())
		store = builder.Build()
	} else {
		if store.Universe() != g.NumNodes() {
			return nil, fmt.Errorf("graph %q: event universe %d does not match graph nodes %d", name, store.Universe(), g.NumNodes())
		}
		builder = events.BuilderFromStore(store)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return nil, fmt.Errorf("graph %q %w", name, ErrAlreadyRegistered)
	}
	e := &GraphEntry{
		name:    name,
		created: time.Now(),
		builder: builder,
	}
	e.cur = Snapshot{Graph: g, Store: store, Epoch: epoch, GraphVersion: graphVersion}
	r.graphs[name] = e
	return e, nil
}

// Get returns the entry for name, or false.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	return e, ok
}

// Remove deletes the named graph, returning the removed entry so the
// caller can release resources keyed on it (cached indexes).
func (r *Registry) Remove(name string) (*GraphEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	delete(r.graphs, name)
	return e, ok
}

// Names returns the registered graph names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
