package server

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"tesc"
)

// IndexKey identifies one cached vicinity index: the paper's offline
// |V^h_v| structure is per-graph and per-maximum-level (§4.2). The
// graph is identified by its registry entry, not its name, so deleting
// a graph and re-registering a different one under the same name can
// never serve the old graph's index.
type IndexKey struct {
	Entry    *GraphEntry
	MaxLevel int
}

// IndexCache is an LRU cache of vicinity indexes with single-flight
// construction: concurrent Get calls for the same key block on one
// build instead of each running the full O(|V|) BFS scan. Because an
// index covers all levels 1..MaxLevel, a query for level h is also
// served by any cached index of the same graph with MaxLevel ≥ h.
// Entries are evicted least-recently-used once Capacity is exceeded;
// a failed build is not cached, so the next Get retries.
//
// The cache is graph-version aware: each entry records the
// Snapshot.GraphVersion its index is bound to, and a lookup only hits
// when the versions agree (the index-backed samplers reject a
// mismatched index anyway). Edge mutations do not evict — Refresh
// migrates every cached index to the successor version by cloning it
// and repairing only the entries the flipped edges can have perturbed
// (VicinityIndex.ApplyDelta), which is the serving-tier payoff of the
// paper's "the index can be efficiently updated as the graph changes"
// (§4.2).
type IndexCache struct {
	capacity   int
	builds     atomic.Int64
	refreshes  atomic.Int64
	recomputed atomic.Int64

	// build constructs the index; overridable by tests to count or
	// stall construction.
	build func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error)

	mu      sync.Mutex
	entries map[IndexKey]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	// stale holds single-flight builds for readers whose snapshot the
	// cache has already moved past (a mutation landed mid-query). They
	// are not LRU-cached — the version is dead — but concurrent stale
	// readers of the same version share one build instead of each
	// paying a full scan.
	stale map[staleKey]*cacheEntry
}

// staleKey identifies one dead-version build: cache key + the graph
// version the lagging readers are bound to.
type staleKey struct {
	IndexKey
	gv uint64
}

type cacheEntry struct {
	key   IndexKey
	gv    uint64 // Snapshot.GraphVersion the index is (being) built for
	elem  *list.Element
	ready chan struct{} // closed when idx/err are set
	done  bool          // set under IndexCache.mu once the build finished
	idx   *tesc.VicinityIndex
	err   error
}

// NewIndexCache returns a cache holding at most capacity indexes
// (capacity < 1 means 1).
func NewIndexCache(capacity int) *IndexCache {
	if capacity < 1 {
		capacity = 1
	}
	return &IndexCache{
		capacity: capacity,
		build: func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error) {
			return g.BuildVicinityIndex(maxLevel, workers)
		},
		entries: make(map[IndexKey]*cacheEntry),
		lru:     list.New(),
		stale:   make(map[staleKey]*cacheEntry),
	}
}

// Get returns a vicinity index covering maxLevel for the snapshot's
// graph, building one with the given worker count on a miss. Exactly
// one build runs per (key, graph version) regardless of how many
// goroutines ask concurrently; the others wait for that build to
// finish. A completed index of the same graph version with a higher
// MaxLevel is reused instead of building a redundant lower-level one.
//
// The returned index is always bound to exactly snap.Graph. When the
// cache has already moved past the caller's snapshot (a mutation
// refreshed the entries mid-query), the index is built privately for
// the old snapshot and not cached, so a slow reader can never clobber
// the current version.
func (c *IndexCache) Get(e *GraphEntry, snap Snapshot, maxLevel, workers int) (*tesc.VicinityIndex, error) {
	key := IndexKey{Entry: e, MaxLevel: maxLevel}

	c.mu.Lock()
	if ce, ok := c.entries[key]; ok {
		switch {
		case ce.gv == snap.GraphVersion:
			c.lru.MoveToFront(ce.elem)
			c.mu.Unlock()
			<-ce.ready
			return ce.idx, ce.err
		case ce.gv > snap.GraphVersion:
			// The cache is ahead of this reader's snapshot: serve the
			// stale version with a single-flight side build, shared by
			// every reader still bound to it.
			return c.getStaleLocked(snap, key, workers)
		default:
			// The entry lags the snapshot (e.g. its build was in flight
			// during a mutation): replace it.
			c.removeLocked(ce)
		}
	}
	// A deeper completed index of the same graph version covers this
	// level (done is only written under c.mu, so the read is safe here).
	for k, ce := range c.entries {
		if k.Entry == e && k.MaxLevel > maxLevel && ce.done && ce.err == nil && ce.gv == snap.GraphVersion {
			c.lru.MoveToFront(ce.elem)
			c.mu.Unlock()
			return ce.idx, nil
		}
	}
	ce := &cacheEntry{key: key, gv: snap.GraphVersion, ready: make(chan struct{})}
	ce.elem = c.lru.PushFront(ce)
	c.entries[key] = ce
	c.evictLocked()
	c.mu.Unlock()

	c.builds.Add(1)
	ce.idx, ce.err = c.build(snap.Graph, maxLevel, workers)
	close(ce.ready)

	c.mu.Lock()
	ce.done = true
	if ce.err != nil {
		// Drop the failed entry unless it was already evicted or
		// replaced while building.
		if cur, ok := c.entries[key]; ok && cur == ce {
			c.removeLocked(ce)
		}
	}
	c.mu.Unlock()
	return ce.idx, ce.err
}

// getStaleLocked serves a reader whose snapshot the cache has moved
// past. Called with c.mu held; releases it. The build is single-flight
// per (key, dead version) and the result is dropped once every waiter
// has it — dead versions must not pin memory.
func (c *IndexCache) getStaleLocked(snap Snapshot, key IndexKey, workers int) (*tesc.VicinityIndex, error) {
	sk := staleKey{IndexKey: key, gv: snap.GraphVersion}
	if ce, ok := c.stale[sk]; ok {
		c.mu.Unlock()
		<-ce.ready
		return ce.idx, ce.err
	}
	ce := &cacheEntry{key: key, gv: snap.GraphVersion, ready: make(chan struct{})}
	c.stale[sk] = ce
	c.mu.Unlock()

	c.builds.Add(1)
	ce.idx, ce.err = c.build(snap.Graph, key.MaxLevel, workers)
	close(ce.ready)

	c.mu.Lock()
	delete(c.stale, sk)
	c.mu.Unlock()
	return ce.idx, ce.err
}

// Put installs a prebuilt index — one deserialized from a snapshot —
// under the entry at the snapshot's graph version. It does not count
// as a build: the whole point of warm-starting is that Builds stays at
// zero while the first queries hit the cache.
func (c *IndexCache) Put(e *GraphEntry, snap Snapshot, idx *tesc.VicinityIndex) {
	key := IndexKey{Entry: e, MaxLevel: idx.MaxLevel()}
	ce := &cacheEntry{key: key, gv: snap.GraphVersion, ready: make(chan struct{}), done: true, idx: idx}
	close(ce.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	ce.elem = c.lru.PushFront(ce)
	c.entries[key] = ce
	c.evictLocked()
}

// IndexesFor returns the completed, error-free cached indexes of the
// entry at the given graph version, in ascending MaxLevel order — the
// set a checkpoint persists alongside the graph.
func (c *IndexCache) IndexesFor(e *GraphEntry, gv uint64) []*tesc.VicinityIndex {
	c.mu.Lock()
	var out []*tesc.VicinityIndex
	for key, ce := range c.entries {
		if key.Entry == e && ce.done && ce.err == nil && ce.gv == gv {
			out = append(out, ce.idx)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].MaxLevel() < out[j].MaxLevel() })
	return out
}

// Refresh migrates every completed cached index of the entry from
// graph version old.GraphVersion to next: each index is cloned, the
// clone repaired incrementally with the applied edge changes
// (copy-on-write — readers of the old index are undisturbed), and the
// repaired clone republished under the new version. Called by the
// mutation path with the entry's mutations serialized. In-flight
// builds are left behind on the old version; a later Get at the new
// version replaces them. It returns the number of migrated indexes and
// the total index entries recomputed across them, plus the
// flipped-vicinity node set of the deepest migrated index (and its
// level): the dirty ball the repair already had to compute, surfaced
// so the monitor scheduler can invalidate standing-query density
// caches without re-walking it. dirty is nil when nothing migrated.
func (c *IndexCache) Refresh(e *GraphEntry, old, next Snapshot, applied []tesc.EdgeChange, workers int) (migrated, nodesRecomputed int, dirty []int, dirtyLevel int) {
	c.mu.Lock()
	var stale []*cacheEntry
	for key, ce := range c.entries {
		if key.Entry == e && ce.done && ce.err == nil && ce.gv == old.GraphVersion {
			stale = append(stale, ce)
		}
	}
	c.mu.Unlock()

	for _, ce := range stale {
		clone := ce.idx.Clone()
		d, err := clone.ApplyDeltaDirty(next.Graph, applied, workers)
		n := len(d)
		if err == nil && ce.key.MaxLevel > dirtyLevel {
			dirty, dirtyLevel = d, ce.key.MaxLevel
		}
		fresh := &cacheEntry{
			key:   ce.key,
			gv:    next.GraphVersion,
			ready: make(chan struct{}),
			done:  true,
			idx:   clone,
			err:   err,
		}
		close(fresh.ready)

		c.mu.Lock()
		if cur, ok := c.entries[ce.key]; ok && cur == ce {
			c.lru.Remove(ce.elem)
			delete(c.entries, ce.key)
			if err == nil {
				fresh.elem = c.lru.PushFront(fresh)
				c.entries[ce.key] = fresh
				migrated++
				nodesRecomputed += n
			}
		}
		c.mu.Unlock()
	}
	c.refreshes.Add(int64(migrated))
	c.recomputed.Add(int64(nodesRecomputed))
	return migrated, nodesRecomputed, dirty, dirtyLevel
}

// EvictGraph drops every cached index of the graph entry (all levels).
// Called when a graph is deregistered. An insert racing with the
// eviction leaves a harmless orphan: its key's entry pointer can never
// be resolved again, so it is never served and ages out of the LRU.
func (c *IndexCache) EvictGraph(e *GraphEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, ce := range c.entries {
		if key.Entry == e {
			c.removeLocked(ce)
		}
	}
}

// Len returns the number of cached (or in-flight) indexes.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Builds returns the number of full index constructions the cache has
// started — the cache's effectiveness metric (and the single-flight
// test's witness). Incremental refreshes do not count; their absence
// from this counter under a mutation workload is the dynamic
// subsystem's witness.
func (c *IndexCache) Builds() int64 { return c.builds.Load() }

// Refreshes returns the number of cached indexes migrated across graph
// versions by incremental repair instead of a rebuild.
func (c *IndexCache) Refreshes() int64 { return c.refreshes.Load() }

// NodesRecomputed returns the total index entries recomputed across all
// refreshes — against NumNodes × Refreshes, the measured locality of
// the update workload.
func (c *IndexCache) NodesRecomputed() int64 { return c.recomputed.Load() }

// evictLocked trims the LRU list to capacity. An evicted in-flight
// entry keeps building for its current waiters; it is simply no longer
// findable, so a later Get rebuilds.
func (c *IndexCache) evictLocked() {
	for len(c.entries) > c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			return
		}
		c.removeLocked(oldest.Value.(*cacheEntry))
	}
}

func (c *IndexCache) removeLocked(ce *cacheEntry) {
	c.lru.Remove(ce.elem)
	delete(c.entries, ce.key)
}
