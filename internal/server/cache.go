package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"tesc"
)

// IndexKey identifies one cached vicinity index: the paper's offline
// |V^h_v| structure is per-graph and per-maximum-level (§4.2). The
// graph is identified by its registry entry, not its name, so deleting
// a graph and re-registering a different one under the same name can
// never serve the old graph's index.
type IndexKey struct {
	Entry    *GraphEntry
	MaxLevel int
}

// IndexCache is an LRU cache of vicinity indexes with single-flight
// construction: concurrent Get calls for the same key block on one
// build instead of each running the full O(|V|) BFS scan. Because an
// index covers all levels 1..MaxLevel, a query for level h is also
// served by any cached index of the same graph with MaxLevel ≥ h.
// Entries are evicted least-recently-used once Capacity is exceeded;
// a failed build is not cached, so the next Get retries.
type IndexCache struct {
	capacity int
	builds   atomic.Int64

	// build constructs the index; overridable by tests to count or
	// stall construction.
	build func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error)

	mu      sync.Mutex
	entries map[IndexKey]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry
}

type cacheEntry struct {
	key   IndexKey
	elem  *list.Element
	ready chan struct{} // closed when idx/err are set
	done  bool          // set under IndexCache.mu once the build finished
	idx   *tesc.VicinityIndex
	err   error
}

// NewIndexCache returns a cache holding at most capacity indexes
// (capacity < 1 means 1).
func NewIndexCache(capacity int) *IndexCache {
	if capacity < 1 {
		capacity = 1
	}
	return &IndexCache{
		capacity: capacity,
		build: func(g *tesc.Graph, maxLevel, workers int) (*tesc.VicinityIndex, error) {
			return g.BuildVicinityIndex(maxLevel, workers)
		},
		entries: make(map[IndexKey]*cacheEntry),
		lru:     list.New(),
	}
}

// Get returns a vicinity index covering maxLevel for the graph entry,
// building one with the given worker count on a miss. Exactly one
// build runs per key regardless of how many goroutines ask
// concurrently; the others wait for that build to finish. A completed
// index of the same graph with a higher MaxLevel is reused instead of
// building a redundant lower-level one.
func (c *IndexCache) Get(e *GraphEntry, maxLevel, workers int) (*tesc.VicinityIndex, error) {
	key := IndexKey{Entry: e, MaxLevel: maxLevel}

	c.mu.Lock()
	if ce, ok := c.entries[key]; ok {
		c.lru.MoveToFront(ce.elem)
		c.mu.Unlock()
		<-ce.ready
		return ce.idx, ce.err
	}
	// A deeper completed index of the same graph covers this level
	// (done is only written under c.mu, so the read is safe here).
	for k, ce := range c.entries {
		if k.Entry == e && k.MaxLevel > maxLevel && ce.done && ce.err == nil {
			c.lru.MoveToFront(ce.elem)
			c.mu.Unlock()
			return ce.idx, nil
		}
	}
	ce := &cacheEntry{key: key, ready: make(chan struct{})}
	ce.elem = c.lru.PushFront(ce)
	c.entries[key] = ce
	c.evictLocked()
	c.mu.Unlock()

	c.builds.Add(1)
	ce.idx, ce.err = c.build(e.Graph(), maxLevel, workers)
	close(ce.ready)

	c.mu.Lock()
	ce.done = true
	if ce.err != nil {
		// Drop the failed entry unless it was already evicted or
		// replaced while building.
		if cur, ok := c.entries[key]; ok && cur == ce {
			c.removeLocked(ce)
		}
	}
	c.mu.Unlock()
	return ce.idx, ce.err
}

// EvictGraph drops every cached index of the graph entry (all levels).
// Called when a graph is deregistered. An insert racing with the
// eviction leaves a harmless orphan: its key's entry pointer can never
// be resolved again, so it is never served and ages out of the LRU.
func (c *IndexCache) EvictGraph(e *GraphEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, ce := range c.entries {
		if key.Entry == e {
			c.removeLocked(ce)
		}
	}
}

// Len returns the number of cached (or in-flight) indexes.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Builds returns the number of index constructions the cache has
// started — the cache's effectiveness metric (and the single-flight
// test's witness).
func (c *IndexCache) Builds() int64 { return c.builds.Load() }

// evictLocked trims the LRU list to capacity. An evicted in-flight
// entry keeps building for its current waiters; it is simply no longer
// findable, so a later Get rebuilds.
func (c *IndexCache) evictLocked() {
	for len(c.entries) > c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			return
		}
		c.removeLocked(oldest.Value.(*cacheEntry))
	}
}

func (c *IndexCache) removeLocked(ce *cacheEntry) {
	c.lru.Remove(ce.elem)
	delete(c.entries, ce.key)
}
