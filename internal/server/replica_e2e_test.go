package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"tesc/internal/replica"
)

// replicaEnv is a primary with a real HTTP listener plus a durable
// follower replicating from it over replica.HTTPTransport — the
// production wire path end to end.
type replicaEnv struct {
	t       *testing.T
	primary *Server
	pts     *httptest.Server
	folDir  string
	folSrv  *Server
	fts     *httptest.Server
	fol     *replica.Follower
}

func newReplicaEnv(t *testing.T) *replicaEnv {
	t.Helper()
	primDir := t.TempDir()
	primary := New(Config{IndexCacheCapacity: 4, DataDir: primDir, CheckpointDelay: time.Hour})
	if _, err := primary.LoadData(); err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(primary.Handler())
	t.Cleanup(pts.Close)
	t.Cleanup(primary.Close)
	return &replicaEnv{t: t, primary: primary, pts: pts, folDir: t.TempDir()}
}

// startFollower boots (or reboots) the follower over its persistent
// data directory and wires a Follower to the primary's public URL.
func (e *replicaEnv) startFollower() {
	e.t.Helper()
	e.folSrv = New(Config{IndexCacheCapacity: 4, DataDir: e.folDir, CheckpointDelay: time.Hour, ReadOnly: true})
	if _, err := e.folSrv.LoadData(); err != nil {
		e.t.Fatal(err)
	}
	e.fts = httptest.NewServer(e.folSrv.Handler())
	e.fol = replica.New(&replica.HTTPTransport{Base: e.pts.URL}, e.folSrv.FollowerState(), nil)
	e.folSrv.AttachFollower(e.fol)
}

func (e *replicaEnv) do(code int, method, url string, body any) map[string]any {
	e.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != code {
		e.t.Fatalf("%s %s: got %d, want %d: %s", method, url, resp.StatusCode, code, raw)
	}
	var out map[string]any
	if len(raw) > 0 && json.Unmarshal(raw, &out) != nil {
		return nil
	}
	return out
}

// churn applies n edge batches and one event batch to graph g.
func (e *replicaEnv) churn(g string, n int) {
	e.t.Helper()
	for i := 0; i < n; i++ {
		e.do(http.StatusOK, "POST", e.pts.URL+"/v1/graphs/"+g+"/edges",
			map[string]any{"insert": [][2]int{{i % 7, (i + 3) % 7}}})
	}
	e.do(http.StatusOK, "POST", e.pts.URL+"/v1/graphs/"+g+"/events",
		map[string]any{"events": map[string][]int{"pulse": {n % 7}}})
}

// converge pumps the follower until it matches the primary.
func (e *replicaEnv) converge() {
	e.t.Helper()
	for i := 0; i < 50; i++ {
		if err := e.fol.Sync(); err != nil {
			e.t.Fatalf("sync %d: %v", i, err)
		}
		if replicaStateString(e.primary) == replicaStateString(e.folSrv) {
			return
		}
	}
	e.t.Fatalf("follower did not converge:\nprimary:\n%s\nfollower:\n%s",
		replicaStateString(e.primary), replicaStateString(e.folSrv))
}

// replicaStateString renders every graph's epochs, adjacency and
// events canonically for bit-for-bit comparison.
func replicaStateString(s *Server) string {
	var b strings.Builder
	names := append([]string(nil), s.Registry().Names()...)
	sort.Strings(names)
	for _, name := range names {
		en, ok := s.Registry().Get(name)
		if !ok {
			continue
		}
		snap := en.Snapshot()
		fmt.Fprintf(&b, "%s epoch=%d gv=%d\n", name, snap.Epoch, snap.GraphVersion)
		for v := 0; v < snap.Graph.NumNodes(); v++ {
			nb := snap.Graph.Neighbors(v)
			sort.Ints(nb)
			fmt.Fprintf(&b, " %d:%v\n", v, nb)
		}
		evs := append([]string(nil), snap.Store.Names()...)
		sort.Strings(evs)
		for _, ev := range evs {
			occ := snap.Store.Occurrences(ev)
			fmt.Fprintf(&b, " ev %s %v\n", ev, occ)
		}
	}
	return b.String()
}

// TestReplicaE2E drives the full follower lifecycle over real HTTP:
// join mid-churn (snapshot bootstrap), stream to caught-up, survive a
// crash and resume from the local WAL tail and saved cursor, and keep
// serving reads while refusing writes.
func TestReplicaE2E(t *testing.T) {
	e := newReplicaEnv(t)

	// A small line graph, then mutations BEFORE the follower exists —
	// the join happens mid-churn and must bootstrap from a snapshot.
	e.do(http.StatusCreated, "POST", e.pts.URL+"/v1/graphs",
		map[string]any{"name": "g", "edge_list": "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n"})
	e.do(http.StatusOK, "POST", e.pts.URL+"/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"a": {0, 1}, "b": {5, 6}}})
	e.churn("g", 5)

	e.startFollower()
	e.converge()
	if m := e.fol.Metrics(); m.Bootstraps == 0 {
		t.Error("mid-churn join should have installed a snapshot bootstrap")
	}
	// More churn after the join streams as log records (the bootstrap
	// itself arrives inside the snapshot, not as applied records).
	e.churn("g", 4)
	e.converge()

	// healthz on both ends reflects the shipping.
	if h := e.do(http.StatusOK, "GET", e.pts.URL+"/healthz", nil); h["records_shipped"].(float64) == 0 {
		t.Errorf("primary records_shipped = %v, want > 0", h["records_shipped"])
	}
	h := e.do(http.StatusOK, "GET", e.fts.URL+"/healthz", nil)
	if h["replica_lag_epochs"].(float64) != 0 {
		t.Errorf("follower replica_lag_epochs = %v, want 0", h["replica_lag_epochs"])
	}
	if h["records_applied"].(float64) == 0 {
		t.Errorf("follower records_applied = %v, want > 0", h["records_applied"])
	}
	if h["read_only"] != true {
		t.Errorf("follower healthz read_only = %v, want true", h["read_only"])
	}

	// The follower serves reads but refuses mutations.
	e.do(http.StatusOK, "POST", e.fts.URL+"/v1/graphs/g/correlate",
		map[string]any{"a": "a", "b": "b", "h": 1, "sample_size": 40})
	e.do(http.StatusForbidden, "POST", e.fts.URL+"/v1/graphs/g/edges",
		map[string]any{"insert": [][2]int{{0, 3}}})
	e.do(http.StatusForbidden, "POST", e.fts.URL+"/v1/graphs", map[string]any{"name": "x"})
	e.do(http.StatusForbidden, "DELETE", e.fts.URL+"/v1/graphs/g", nil)

	// Kill the follower mid-stream (no flush), keep churning, reboot.
	// The restart must warm-start from the follower's own local WAL
	// tail and resume pulling from the saved cursor — no fresh
	// snapshot bootstrap for a graph it already holds.
	e.fol.Sync()
	e.fts.Close()
	e.folSrv.Kill()
	e.churn("g", 7)
	e.startFollower()
	defer e.fts.Close()
	defer e.folSrv.Close()
	e.converge()
	if m := e.fol.Metrics(); m.Bootstraps != 0 {
		t.Errorf("restarted follower re-bootstrapped %d times, want 0 (cursor resume)", m.Bootstraps)
	}
	if m := e.fol.Metrics(); m.RecordsApplied == 0 {
		t.Error("restarted follower applied no records despite churn")
	}

	// A graph dropped on the primary disappears from the follower too.
	e.do(http.StatusNoContent, "DELETE", e.pts.URL+"/v1/graphs/g", nil)
	e.converge()
	if names := e.folSrv.Registry().Names(); len(names) != 0 {
		t.Errorf("follower still holds %v after primary drop", names)
	}
}

// TestMinEpochStaleReads is the bounded-staleness regression: a query
// demanding a min_epoch beyond the replica's applied epoch must get
// 503 + Retry-After (so clients can wait out replication lag), and a
// satisfied min_epoch must serve normally.
func TestMinEpochStaleReads(t *testing.T) {
	e := newReplicaEnv(t)
	e.do(http.StatusCreated, "POST", e.pts.URL+"/v1/graphs",
		map[string]any{"name": "g", "edge_list": "0 1\n1 2\n2 3\n3 4\n"})
	e.do(http.StatusOK, "POST", e.pts.URL+"/v1/graphs/g/events",
		map[string]any{"events": map[string][]int{"a": {0, 1}, "b": {3, 4}}})

	stale := map[string]map[string]any{
		"/v1/graphs/g/correlate": {"a": "a", "b": "b", "h": 1, "sample_size": 40, "min_epoch": 999},
		"/v1/graphs/g/screen":    {"h": 1, "sample_size": 40, "min_epoch": 999},
	}
	for path, body := range stale {
		req, _ := http.NewRequest("POST", e.pts.URL+path, bytes.NewReader(mustJSON(t, body)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s min_epoch=999: got %d, want 503: %s", path, resp.StatusCode, raw)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s stale response missing Retry-After", path)
		}
		if !strings.Contains(string(raw), "needs 999") {
			t.Errorf("%s stale response body %q should name the demanded epoch", path, raw)
		}
	}

	// Satisfied min_epoch serves normally (epoch is ≥ 2 after the event
	// batch; min_epoch 1 is certainly covered).
	e.do(http.StatusOK, "POST", e.pts.URL+"/v1/graphs/g/correlate",
		map[string]any{"a": "a", "b": "b", "h": 1, "sample_size": 40, "min_epoch": 1})
	e.do(http.StatusAccepted, "POST", e.pts.URL+"/v1/graphs/g/screen",
		map[string]any{"h": 1, "sample_size": 40, "min_epoch": 1})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}
