package server

import (
	"reflect"
	"sync"
	"testing"

	"tesc/internal/events"
)

func TestRegistryRegisterGetRemove(t *testing.T) {
	g := testGraph(t)
	r := NewRegistry()
	if _, err := r.Register("", g); err == nil {
		t.Fatal("empty name must be rejected")
	}
	e, err := r.Register("a", g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("a", g); err == nil {
		t.Fatal("duplicate registration must be rejected")
	}
	if _, err := r.Register("b", g); err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names() = %v", got)
	}
	if got, ok := r.Get("a"); !ok || got != e {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	removed, ok := r.Remove("a")
	if !ok || removed != e {
		t.Fatalf("Remove(a) = %v, %v; want the registered entry", removed, ok)
	}
	if _, ok := r.Remove("a"); ok {
		t.Fatal("second Remove must report absence")
	}
}

func TestGraphEntryEvents(t *testing.T) {
	g := testGraph(t)
	r := NewRegistry()
	e, err := r.Register("g", g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Occurrences("x"); err == nil {
		t.Fatal("unknown event must error")
	}
	if err := e.AddEvents(map[string][]int{"x": {0, 99}}); err == nil {
		t.Fatal("out-of-range node must be rejected")
	}
	if e.NumEvents() != 0 {
		t.Fatal("rejected batch must not be partially applied")
	}
	if err := e.AddEvents(map[string][]int{"x": {2, 0}, "y": {1}}); err != nil {
		t.Fatal(err)
	}
	// A second batch accumulates instead of replacing.
	if err := e.AddEvents(map[string][]int{"x": {4}}); err != nil {
		t.Fatal(err)
	}
	occ, err := e.Occurrences("x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(occ, []int{0, 2, 4}) {
		t.Fatalf("Occurrences(x) = %v, want [0 2 4]", occ)
	}
	want := map[string][]int{"x": {0, 2, 4}, "y": {1}}
	got := map[string][]int(nil)
	if es := e.EventSet(); len(es) == 2 {
		got = map[string][]int{"x": es["x"], "y": es["y"]}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EventSet() = %v, want %v", got, want)
	}
}

// TestGraphEntryAddStore verifies that replaying a parsed event store
// preserves per-occurrence intensities (the -load-events path).
func TestGraphEntryAddStore(t *testing.T) {
	g := testGraph(t)
	r := NewRegistry()
	e, err := r.Register("g", g)
	if err != nil {
		t.Fatal(err)
	}
	b := events.NewBuilder(g.NumNodes())
	b.AddWeighted("kw", 0, 3.5)
	b.Add("kw", 2)
	if err := e.AddStore(b.Build()); err != nil {
		t.Fatal(err)
	}
	if got := e.Store().Intensity("kw", 0); got != 3.5 {
		t.Fatalf("Intensity(kw, 0) = %g, want 3.5 (weights must survive preload)", got)
	}
	wrong := events.NewBuilder(g.NumNodes() + 1)
	if err := e.AddStore(wrong.Build()); err == nil {
		t.Fatal("mismatched universe must be rejected")
	}
}

// TestGraphEntryConcurrentReadWrite exercises the snapshot semantics:
// readers always see a consistent frozen store while writers append.
func TestGraphEntryConcurrentReadWrite(t *testing.T) {
	g := testGraph(t)
	r := NewRegistry()
	e, err := r.Register("g", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEvents(map[string][]int{"x": {0}, "y": {1}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			if err := e.AddEvents(map[string][]int{"x": {node}}); err != nil {
				t.Error(err)
			}
		}(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := e.Occurrences("x"); err != nil {
					t.Error(err)
				}
				e.EventSet()
				e.NumEvents()
			}
		}()
	}
	wg.Wait()
	occ, err := e.Occurrences("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 5 {
		t.Fatalf("after concurrent writes Occurrences(x) = %v, want 5 nodes", occ)
	}
}
